/**
 * @file
 * A SPICE deck through the whole stack: parse the netlist text,
 * assemble the reduced MNA system G v = i, solve it on the analog
 * accelerator with Algorithm-2 refinement, and print the node
 * voltages next to the digital direct solve.
 *
 * The deck is the generated 4x4 RC grid — a corner-anchored resistor
 * mesh with a current injection at the far corner, the same workload
 * family the spice benches use. Circuit conductances sit three
 * decades below the stencil family's unit-scale coefficients, so
 * this path also demonstrates the compiler's gain scale-up rung:
 * the programmed matrix lands in the top octave of the gain range
 * and the integration time shortens by the same power of two.
 *
 * Build & run:   ./build/examples/spice_solve
 */

#include <cstdio>
#include <iostream>

#include "aa/analog/refine.hh"
#include "aa/analog/solver.hh"
#include "aa/common/table.hh"
#include "aa/la/direct.hh"
#include "aa/spice/generate.hh"
#include "aa/spice/mna.hh"

int
main()
{
    using namespace aa;

    spice::GridSpec grid;
    grid.rows = grid.cols = 4;
    std::string deck = spice::gridDeck(grid);
    std::cout << "generated deck (" << deck.size() << " bytes):\n"
              << deck << "\n";

    spice::AssembleResult asm_r = spice::assembleDeck(deck, {});
    if (!asm_r.ok) {
        std::cerr << asm_r.summary() << "\n";
        return 1;
    }
    const spice::MnaSystem &sys = asm_r.system;
    std::cout << "assembled: " << sys.unknowns() << " unknowns, "
              << sys.g.nnz() << " nonzeros\n\n";

    la::DenseMatrix g = sys.g.toDense();
    la::Vector exact = la::solveDense(g, sys.i);

    analog::AnalogSolverOptions opts;
    opts.spec.variation.enabled = false;
    opts.spec.adc_noise_sigma = 0.0;
    opts.auto_calibrate = false;
    analog::AnalogLinearSolver solver(opts);

    analog::RefineOptions ropts;
    ropts.tolerance = 1e-8;
    auto out = analog::refineSolve(solver, g, sys.i, ropts);
    if (!out.converged) {
        std::cerr << "refinement did not converge\n";
        return 1;
    }
    std::printf("refined in %zu passes, final residual %.3g\n\n",
                out.passes, out.final_residual);

    TextTable table("node voltages: analog + refinement vs digital "
                    "direct solve");
    table.setHeader({"node", "analog (V)", "digital (V)", "error"});
    for (std::size_t k = 0; k < sys.node_unknowns; ++k) {
        char analog_v[32], digital_v[32], err[32];
        std::snprintf(analog_v, sizeof analog_v, "%.6f", out.u[k]);
        std::snprintf(digital_v, sizeof digital_v, "%.6f",
                      exact[k]);
        std::snprintf(err, sizeof err, "%.2e", out.u[k] - exact[k]);
        table.addRow({sys.unknown_names[k], analog_v, digital_v,
                      err});
    }
    table.print(std::cout);

    // The same answer expanded to per-node voltages (eliminated
    // nodes report their pinned values).
    la::Vector v = sys.nodeVoltages(out.u);
    la::Vector v_exact = sys.nodeVoltages(exact);
    std::printf("\nmax node-voltage error vs digital: %.3g V\n",
                la::maxAbsDiff(v, v_exact));
    return 0;
}
