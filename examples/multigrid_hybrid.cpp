/**
 * @file
 * Hybrid multigrid: the analog accelerator as the coarse-grid solver
 * inside a digital V-cycle (paper Section IV-A: imprecise analog
 * solves "may also be used to support multigrid" because perfect
 * convergence is not required of the inner solver).
 *
 * Build & run:   ./build/examples/multigrid_hybrid
 */

#include <cstdio>
#include <iostream>

#include "aa/analog/hybrid_mg.hh"
#include "aa/common/table.hh"
#include "aa/la/direct.hh"
#include "aa/pde/poisson.hh"

int
main()
{
    using namespace aa;

    const std::size_t l = 31; // 961 unknowns, 4 grid levels
    auto problem = pde::assemblePoisson(
        2, l, [](double x, double y, double) {
            return 25.0 * x * y;
        });

    // Pure digital multigrid: exact Cholesky on the coarsest grid.
    solver::MgOptions digital_opts;
    digital_opts.tol = 1e-9;
    digital_opts.record_residuals = true;
    solver::Multigrid digital(2, l, digital_opts);
    auto dres = digital.solve(problem.b);

    // Hybrid: the 7x7 coarse level (49 unknowns) goes to the
    // accelerator, solved at ~8-bit precision per visit.
    analog::AnalogSolverOptions sopts;
    sopts.die_seed = 5;
    analog::AnalogLinearSolver accel(sopts);
    solver::MgOptions hybrid_opts;
    hybrid_opts.tol = 1e-9;
    hybrid_opts.record_residuals = true;
    auto hybrid =
        analog::makeHybridMultigrid(accel, 2, l, 7, hybrid_opts);
    auto hres = hybrid.solve(problem.b);

    TextTable table("digital vs hybrid multigrid (961 unknowns, "
                    "tol 1e-9)");
    table.setHeader({"", "cycles", "final residual", "converged"});
    table.addRow({"digital (exact coarse)", std::to_string(dres.cycles),
                  TextTable::sci(dres.final_residual),
                  dres.converged ? "yes" : "no"});
    table.addRow({"hybrid (analog coarse)", std::to_string(hres.cycles),
                  TextTable::sci(hres.final_residual),
                  hres.converged ? "yes" : "no"});
    table.print(std::cout);

    std::printf("\nper-cycle residuals:\n%-8s %-14s %-14s\n", "cycle",
                "digital", "hybrid");
    std::size_t n = std::max(dres.residual_history.size(),
                             hres.residual_history.size());
    for (std::size_t k = 0; k < n; ++k) {
        std::printf("%-8zu ", k + 1);
        if (k < dres.residual_history.size())
            std::printf("%-14.3e ", dres.residual_history[k]);
        else
            std::printf("%-14s ", "-");
        if (k < hres.residual_history.size())
            std::printf("%-14.3e\n", hres.residual_history[k]);
        else
            std::printf("%-14s\n", "-");
    }

    la::Vector exact =
        la::solveDense(problem.a.toDense(), problem.b);
    std::printf("\nhybrid max error vs direct solve: %.2e\n",
                la::maxAbsDiff(hres.x, exact));
    std::printf("accelerator visits to the coarse grid cost %.3g ms "
                "of analog time in total\n",
                accel.totalAnalogSeconds() * 1e3);
    std::printf("\nThe 8-bit coarse solves cost a few extra V-cycles "
                "but do not break\nconvergence: the fine digital "
                "levels absorb the analog imprecision.\n");
    return 0;
}
