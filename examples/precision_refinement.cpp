/**
 * @file
 * Algorithm 2 in detail: building arbitrary precision from an 8-bit
 * ADC. Each accelerator pass solves A u = residual; the digital host
 * accumulates the partial solutions and recomputes the residual in
 * double precision. The bits of precision grow roughly linearly with
 * passes — "irrespective of the resolution of the analog-to-digital
 * converter" (Section I).
 *
 * Build & run:   ./build/examples/precision_refinement
 */

#include <cmath>
#include <cstdio>

#include "aa/analog/solver.hh"
#include "aa/la/direct.hh"
#include "aa/pde/poisson.hh"

int
main()
{
    using namespace aa;

    // A 2D Poisson block small enough to map whole.
    auto problem = pde::assemblePoisson(
        2, 3, [](double x, double y, double) { return x + 2.0 * y; });
    la::DenseMatrix a = problem.a.toDense();
    const la::Vector &b = problem.b;
    la::Vector exact = la::solveDense(a, b);
    double bnorm = la::norm2(b);

    for (std::size_t adc_bits : {8u, 12u}) {
        analog::AnalogSolverOptions opts;
        opts.spec.adc_bits = adc_bits;
        opts.die_seed = 11;
        analog::AnalogLinearSolver solver(opts);

        std::printf("\n=== %zu-bit ADC ===\n", adc_bits);
        std::printf("%-6s %-14s %-14s %-10s\n", "pass",
                    "rel residual", "max error", "bits");

        // Algorithm 2, unrolled so every pass can be reported.
        la::Vector u(b.size());
        la::Vector residual = b;
        for (std::size_t pass = 0; pass <= 6; ++pass) {
            double rel = la::norm2(residual) / bnorm;
            double err = la::maxAbsDiff(u, exact);
            double bits =
                err > 0.0 ? -std::log2(err / la::normInf(exact))
                          : 52.0;
            std::printf("%-6zu %-14.3e %-14.3e %-10.1f\n", pass, rel,
                        err, bits);
            if (rel < 1e-12)
                break;

            double peak = la::normInf(residual);
            if (peak > 0.0)
                solver.setSolutionScaleHint(
                    peak / std::max(a.maxAbs(), 1e-12));
            auto out = solver.solve(a, residual);
            la::axpy(1.0, out.u, u);
            residual = b - a.apply(u);
        }
        std::printf("analog time spent: %.3g us\n",
                    solver.totalAnalogSeconds() * 1e6);
    }

    std::printf("\nNote how the 12-bit ADC gains ~4 extra bits per "
                "pass over the 8-bit one,\nand either reaches any "
                "requested precision — the ADC resolution sets the\n"
                "per-pass rate, not the ceiling.\n");
    return 0;
}
