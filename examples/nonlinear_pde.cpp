/**
 * @file
 * The paper's closing conjecture, made runnable (Section VI-F):
 * nonlinear systems of equations on the analog accelerator.
 *
 * A 1D reaction-diffusion steady state, -u'' + c u^3 = f, is solved
 * three ways: digital Newton-Raphson (the baseline the paper says is
 * "vexing for digital algorithms" at scale), the accelerator's direct
 * continuous-time flow du/dt = b - A u - phi(u) with phi in the SRAM
 * lookup tables, and hybrid Newton with analog Jacobian solves.
 *
 * Build & run:   ./build/examples/nonlinear_pde
 */

#include <cstdio>

#include "aa/analog/nonlinear.hh"
#include "aa/pde/poisson.hh"

int
main()
{
    using namespace aa;

    // -u'' + 40 u^3 = 30 on (0,1), u = 0 at the ends, 5 interior
    // nodes. The cubic term bends the solution well away from the
    // linear one.
    const std::size_t l = 5;
    auto prob = pde::assemblePoisson(
        1, l, [](double, double, double) { return 30.0; });
    solver::NonlinearSystem sys;
    sys.a = prob.a.toDense();
    sys.b = prob.b;
    sys.phi = [](double u) { return 40.0 * u * u * u; };
    sys.phi_prime = [](double u) { return 120.0 * u * u; };

    // 1. Digital Newton-Raphson.
    solver::NewtonOptions nopts;
    nopts.record_history = true;
    auto digital = solver::newtonSolve(sys, nopts);

    // 2. Direct analog flow: one continuous-time run, nonlinearity
    //    in the lookup tables.
    analog::AnalogSolverOptions aopts;
    aopts.die_seed = 13;
    analog::AnalogNonlinearSolver flow_solver(aopts);
    auto flow = flow_solver.solve(sys);

    // 3. Hybrid Newton: digital outer loop, analog Jacobian solves.
    analog::AnalogLinearSolver linear(aopts);
    analog::HybridNewtonOptions hopts;
    hopts.tol = 1e-4;
    hopts.record_history = true;
    auto hybrid = analog::hybridNewtonSolve(linear, sys, hopts);

    std::printf("steady state of -u'' + 40 u^3 = 30 (5 nodes)\n\n");
    std::printf("%-6s %-12s %-12s %-12s\n", "node", "newton",
                "analog flow", "hybrid");
    for (std::size_t i = 0; i < l; ++i)
        std::printf("%-6zu %-12.6f %-12.6f %-12.6f\n", i,
                    digital.x[i], flow.u[i], hybrid.u[i]);

    std::printf("\ndigital Newton:   %zu iterations, %zu Jacobian "
                "solves, residual %.2e\n",
                digital.iterations, digital.jacobian_solves,
                digital.final_residual);
    std::printf("analog flow:      1 continuous run, %.3g us of chip "
                "time, residual %.2e\n",
                flow.analog_seconds * 1e6, flow.final_residual);
    std::printf("hybrid Newton:    %zu iterations, %zu analog linear "
                "solves, residual %.2e\n",
                hybrid.iterations, hybrid.analog_linear_solves,
                hybrid.final_residual);

    std::printf("\nThe flow replaces the entire Newton iteration "
                "with one analog transient:\nno Jacobian is ever "
                "formed or factored. Its accuracy is the usual one-\n"
                "run ADC/LUT floor; the hybrid path trades runs for "
                "digital-grade accuracy.\n");
    return 0;
}
