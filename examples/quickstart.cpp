/**
 * @file
 * Quickstart: solve a system of linear equations on the analog
 * accelerator.
 *
 * This walks the full architecture of the paper once, end to end:
 * scale the problem into the hardware's dynamic range, compile it
 * onto chip resources, calibrate the die, run the continuous-time
 * gradient flow du/dt = b - A u to steady state, read the ADCs, and
 * (when one pass of ~8-bit precision is not enough) refine with
 * Algorithm 2.
 *
 * Build & run:   ./build/examples/quickstart
 */

#include <cstdio>

#include "aa/analog/refine.hh"
#include "aa/analog/solver.hh"
#include "aa/la/direct.hh"

int
main()
{
    using namespace aa;

    // The system of Figure 5, slightly bigger: A u = b with A
    // symmetric positive definite.
    la::DenseMatrix a = la::DenseMatrix::fromRows({
        {4.0, -1.0, 0.0},
        {-1.0, 4.0, -1.0},
        {0.0, -1.0, 4.0},
    });
    la::Vector b{1.0, 2.0, 3.0};

    // Ground truth from a digital direct solver.
    la::Vector exact = la::solveDense(a, b);

    // An accelerator with the prototype's electrical spec (20 KHz
    // bandwidth, 8-bit ADC/DAC, process variation + calibration).
    analog::AnalogSolverOptions opts;
    opts.die_seed = 2024; // pick a die; every die is reproducible
    analog::AnalogLinearSolver solver(opts);

    std::printf("solving a 3x3 SPD system on the analog accelerator\n");
    auto out = solver.solve(a, b);
    std::printf("\n%-12s %-12s %-12s\n", "exact", "analog", "error");
    for (std::size_t i = 0; i < b.size(); ++i) {
        std::printf("%-12.6f %-12.6f %-12.2e\n", exact[i], out.u[i],
                    out.u[i] - exact[i]);
    }
    std::printf("\nattempts: %zu (overflow retries %zu, underrange "
                "retries %zu)\n",
                out.attempts, out.overflow_retries,
                out.underrange_retries);
    std::printf("analog compute time: %.3g us at %g KHz bandwidth\n",
                out.analog_seconds * 1e6,
                solver.options().spec.bandwidth_hz / 1e3);
    std::printf("value scaling: gain s = %.3g, solution sigma = %.3g\n",
                out.gain_scale, out.solution_scale);

    // One run gives ~ADC precision. Algorithm 2 builds more.
    std::printf("\nrefining with Algorithm 2 (residual iteration):\n");
    analog::RefineOptions ropts;
    ropts.tolerance = 1e-9;
    auto refined = analog::refineSolve(solver, a, b, ropts);
    std::printf("passes: %zu, final relative residual: %.2e\n",
                refined.passes,
                refined.final_residual / la::norm2(b));
    std::printf("refined error vs exact: %.2e\n",
                la::maxAbsDiff(refined.u, exact));
    std::printf("\nconfiguration traffic over the SPI link: %zu bytes\n",
                solver.configBytes());
    return 0;
}
