/**
 * @file
 * The Figure 4 pipeline, end to end: a time-DEPENDENT PDE solved by
 * IMPLICIT time stepping, where every step requires a sparse linear
 * solve — and that solve goes to the analog accelerator.
 *
 * Backward Euler on the 1D heat equation du/dt = u_xx + f:
 *     (I + dt A) u_{n+1} = u_n + dt b
 * with A the discrete -laplacian. Implicit stepping is what makes
 * large dt stable; its price is one SLE per step — precisely the
 * kernel the paper proposes to accelerate.
 *
 * Build & run:   ./build/examples/implicit_heat
 */

#include <cmath>
#include <cstdio>

#include "aa/analog/implicit_step.hh"
#include "aa/analog/solver.hh"
#include "aa/la/direct.hh"
#include "aa/pde/manufactured.hh"
#include "aa/pde/poisson.hh"

int
main()
{
    using namespace aa;

    const std::size_t l = 7;
    const double dt = 0.02; // far beyond the explicit limit h^2/2
    const std::size_t steps = 12;

    auto prob = pde::manufacturedProblem(1, l);
    la::DenseMatrix a = prob.a.toDense();

    // Backward-Euler system matrix M = I + dt A (SPD).
    la::DenseMatrix m = a;
    m *= dt;
    for (std::size_t i = 0; i < l; ++i)
        m(i, i) += 1.0;

    analog::AnalogSolverOptions opts;
    opts.die_seed = 3;
    analog::AnalogLinearSolver accel(opts);

    la::Vector u_analog(l);  // starts cold
    la::Vector u_digital(l); // exact reference stepping

    double explicit_limit =
        2.0 / (4.0 / (prob.grid.spacing() * prob.grid.spacing()));
    std::printf("backward Euler on du/dt = u_xx + f, dt = %.3f "
                "(explicit stability limit: %.5f)\n\n",
                dt, explicit_limit);
    std::printf("%-6s %-14s %-14s %-12s\n", "step",
                "u_mid (analog)", "u_mid (exact)", "diff");

    std::size_t first_step_bytes = 0;
    std::size_t later_step_bytes = 0;
    for (std::size_t n = 0; n < steps; ++n) {
        la::Vector rhs_a = u_analog;
        la::axpy(dt, prob.b, rhs_a);
        auto out = accel.solve(m, rhs_a);
        u_analog = out.u;
        if (n == 0)
            first_step_bytes = out.phases.config_bytes;
        else
            later_step_bytes += out.phases.config_bytes;

        la::Vector rhs_d = u_digital;
        la::axpy(dt, prob.b, rhs_d);
        u_digital = la::solveDense(m, rhs_d);

        std::printf("%-6zu %-14.6f %-14.6f %-12.2e\n", n + 1,
                    u_analog[l / 2], u_digital[l / 2],
                    u_analog[l / 2] - u_digital[l / 2]);
    }

    // The trajectory approaches the elliptic steady state.
    la::Vector steady = la::solveDense(a, prob.b);
    std::printf("\nsteady state (elliptic solve) u_mid = %.6f\n",
                steady[l / 2]);
    std::printf("analog after %zu steps        u_mid = %.6f\n",
                steps, u_analog[l / 2]);
    std::printf("\n%zu implicit steps used %zu accelerator runs and "
                "%.3g ms of analog time.\n",
                steps, steps, accel.totalAnalogSeconds() * 1e3);
    std::printf("Every step solves the same matrix M: the program "
                "cache compiled %zu structure(s)\nfor %zu solves, so "
                "step 1 shipped %zu config bytes and steps 2..%zu "
                "averaged %zu\n(only the DAC biases change).\n",
                accel.cacheStats().misses,
                accel.cacheStats().hits + accel.cacheStats().misses,
                first_step_bytes, steps,
                later_step_bytes / (steps - 1));
    std::printf("Per-step ~8-bit solves do not accumulate: backward "
                "Euler is self-correcting,\nso the analog trajectory "
                "tracks the exact one within readout precision.\n");

    // When the grid outgrows one die, the same march runs decomposed:
    // backwardEulerPool compiles (I + dt A) once into a multi-die
    // block-Jacobi scheduler and reuses it for every step, each block
    // pinned to die (block mod pool size).
    const std::size_t big_l = 15;
    auto big = pde::manufacturedProblem(1, big_l);
    analog::AnalogSolverOptions popts;
    popts.die_seed = 3;
    analog::DiePool pool(3, popts);
    analog::ImplicitStepOptions sopts;
    sopts.dt = dt;
    sopts.steps = steps;
    sopts.decompose.max_block_vars = 5; // 3 strips on 3 dies
    sopts.decompose.tol = 1.0 / 256.0;
    sopts.decompose.threads = 0; // AASIM_THREADS
    auto march =
        analog::backwardEulerPool(pool, big.a, big.b, {}, sopts);
    la::Vector big_steady = la::solveDense(big.a.toDense(), big.b);
    std::printf("\ndecomposed march (%zu unknowns on %zu dies): %zu "
                "steps, %zu sweeps,\n%zu chip runs, u_mid %.6f vs "
                "steady %.6f (|diff| %.2e)\n",
                big_l, pool.size(), march.steps, march.outer_sweeps,
                march.block_solves, march.u[big_l / 2],
                big_steady[big_l / 2],
                std::fabs(march.u[big_l / 2] - big_steady[big_l / 2]));
    return 0;
}
