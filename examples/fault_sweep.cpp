/**
 * @file
 * Solve-success rate vs fault rate, with and without die quarantine.
 *
 * A three-die pool serves a steady two-pattern request stream while
 * seeded fault plans (stuck integrators, gain drift, ADC clipping,
 * calibration loss, config corruption, rare die death) fire on every
 * die at a swept per-window rate. Every response is residual-checked,
 * so the interesting number is not correctness — the service never
 * returns a silent wrong answer — but *where* the answers come from:
 * verified analog solves (the fast path) vs degraded digital CG
 * fallbacks.
 *
 * Quarantine is the difference between the two runs per rate: with
 * health tracking on, a die that keeps failing verification is
 * benched and its traffic moves to healthy dies; with it off, the
 * scheduler keeps feeding sick dies and burns the retry budget.
 *
 * Build & run:   ./build/examples/fault_sweep
 * The table feeds the fault-injection entry in EXPERIMENTS.md.
 */

#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "aa/analog/die_pool.hh"
#include "aa/common/logging.hh"
#include "aa/common/rng.hh"
#include "aa/common/table.hh"
#include "aa/fault/fault.hh"
#include "aa/service/service.hh"

namespace {

using namespace aa;

std::string
pct(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f%%", v);
    return buf;
}

/**
 * Episodic degradation: with probability `rate` per exec window a die
 * enters a long stuck-integrator episode (48 windows of pinned
 * readout — a drifted bias that stays until it anneals out), and with
 * rate/20 it dies outright. Persistent episodes, not single-window
 * glitches, are the regime quarantine exists for: a sick die keeps
 * failing verification until it is benched.
 */
fault::FaultPlan
episodicPlan(std::uint64_t seed, double rate)
{
    Rng rng(seed);
    fault::FaultPlan plan;
    for (std::size_t w = 0; w < 256; ++w) {
        double p_stuck = rng.uniform(0.0, 1.0);
        double p_death = rng.uniform(0.0, 1.0);
        if (p_stuck < rate)
            plan.add({fault::FaultKind::StuckIntegrator, w, 48, w,
                      -1.0});
        if (p_death < rate / 20.0)
            plan.add({fault::FaultKind::DieDeath, w, 0, 0, 0.0});
    }
    return plan;
}

analog::AnalogSolverOptions
dieOptions()
{
    analog::AnalogSolverOptions opts;
    opts.spec.variation.enabled = false;
    opts.spec.adc_noise_sigma = 0.0;
    opts.auto_calibrate = false;
    return opts;
}

std::vector<service::SolveRequest>
trace(std::size_t count)
{
    auto a = std::make_shared<const la::DenseMatrix>(
        la::DenseMatrix::fromRows({{4.0, -1.0}, {-1.0, 3.0}}));
    auto b = std::make_shared<const la::DenseMatrix>(
        la::DenseMatrix::fromRows(
            {{4.0, -1.0, 0.0}, {-1.0, 4.0, -1.0}, {0.0, -1.0, 4.0}}));
    std::vector<service::SolveRequest> out;
    for (std::size_t i = 0; i < count; ++i) {
        double f = 1.0 + 0.125 * static_cast<double>(i % 8);
        service::SolveRequest r;
        if (i % 2 == 0) {
            r.a = a;
            r.b = la::Vector{f, 2.0 * f};
        } else {
            r.a = b;
            r.b = la::Vector{f, 0.5 * f, -f};
        }
        out.push_back(std::move(r));
    }
    return out;
}

struct SweepPoint {
    double rate;
    bool quarantine;
    service::ServiceMetrics metrics;
    std::size_t requests;
};

SweepPoint
runPoint(double rate, bool quarantine)
{
    const std::size_t kDies = 3;
    const std::size_t kRequests = 48;

    analog::DieHealthPolicy policy; // quarantine_after = 3 by default
    if (!quarantine)
        policy.quarantine_after = kRequests * 10; // never trips
    analog::DiePool pool(kDies, dieOptions(), policy);

    for (std::size_t k = 0; k < kDies; ++k)
        pool.attachFaultInjector(
            k, std::make_shared<fault::FaultInjector>(
                   episodicPlan(977 * (k + 1), rate)));

    service::ServiceOptions sopts;
    sopts.threads = 2;
    service::SolveService svc(pool, sopts);
    // Submit in waves of 6 and drain between them: a steady stream
    // of scheduling rounds, so cooldowns tick, probation probes run,
    // and benched dies can earn their way back mid-run.
    std::vector<std::future<service::SolveResponse>> futures;
    auto all = trace(kRequests);
    for (std::size_t i = 0; i < all.size(); ++i) {
        futures.push_back(svc.submit(std::move(all[i])));
        if (i % 6 == 5)
            svc.drain();
    }
    for (auto &f : futures)
        f.get();
    svc.stop();
    return {rate, quarantine, svc.metrics(), kRequests};
}

} // namespace

int
main()
{
    setLogLevel(LogLevel::Quiet);

    TextTable table(
        "Solve stream vs per-window fault rate (48 requests, 3 dies)");
    table.setHeader({"fault_rate", "quarantine", "ok", "analog_ok",
                     "degraded", "failures", "reroutes", "benched",
                     "faults"});
    for (double rate : {0.0, 0.02, 0.05, 0.1, 0.2}) {
        for (bool quarantine : {true, false}) {
            SweepPoint p = runPoint(rate, quarantine);
            const service::ServiceMetrics &m = p.metrics;
            std::size_t analog_ok = m.ok - m.fallbacks;
            table.addRow(
                {TextTable::num(rate, 2),
                 quarantine ? "on" : "off",
                 std::to_string(m.ok) + "/" +
                     std::to_string(p.requests),
                 pct(100.0 * static_cast<double>(analog_ok) /
                     static_cast<double>(p.requests)),
                 std::to_string(m.fallbacks),
                 std::to_string(m.analog_failures),
                 std::to_string(m.reroutes),
                 std::to_string(m.quarantines),
                 std::to_string(m.faults_seen)});
        }
    }
    table.print(std::cout);
    std::cout << "\nEvery response above is residual-verified analog "
                 "or explicitly degraded digital CG;\nthe service "
                 "never returns a silent wrong answer.\n";
    return 0;
}
