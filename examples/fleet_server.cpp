/**
 * @file
 * The sharded solve fleet, end to end: four racks of accelerator
 * dies behind one front door. Requests route to a rack by consistent
 * hashing on their sparsity pattern, each rack's weighted-fair gate
 * keeps a flooding tenant inside its quota, and a heat-driven
 * placement policy replicates hot programs ahead of demand and
 * migrates placements off quarantined dies without recompiling.
 *
 * The demo pushes mixed-pattern multi-tenant traffic through a
 * 4-rack fleet, prints the routing table, the per-shard heat map,
 * the per-tenant admission ledger, and the placement event log
 * (replications and migrations), then benches a die mid-stream to
 * show a placement migrating off it. It closes with the fleet cost
 * table from the paper's Table-2 component model: solves/s per mm^2
 * and per W against rack count.
 *
 * Build & run:   ./build/examples/fleet_server
 */

#include <cstdio>
#include <future>
#include <memory>
#include <vector>

#include "aa/common/logging.hh"
#include "aa/compiler/program.hh"
#include "aa/cost/model.hh"
#include "aa/la/direct.hh"
#include "aa/pde/poisson.hh"
#include "aa/service/shard.hh"

namespace {

using namespace aa;

constexpr std::size_t kRacks = 4;
constexpr std::size_t kDiesPerRack = 2;
constexpr std::size_t kPatterns = 6;
constexpr std::size_t kN = 8; ///< every pattern is an 8x8 system

struct Pattern {
    std::shared_ptr<const la::DenseMatrix> a;
    la::Vector b;
    std::uint64_t hash = 0;
    std::size_t band = 0;
};

/** Six SPD banded 8x8 systems, band offset d = 1..6: same size (so
 *  every die's chip geometry matches and placements can migrate
 *  anywhere on a rack) but distinct sparsity patterns, so each gets
 *  its own hash, its own ring position, and its own compiled
 *  structure. */
std::vector<Pattern>
makePatterns()
{
    std::vector<Pattern> ps;
    for (std::size_t d = 1; d <= kPatterns; ++d) {
        la::DenseMatrix a(kN, kN);
        for (std::size_t i = 0; i < kN; ++i) {
            a(i, i) = 4.0;
            if (i + d < kN) {
                a(i, i + d) = -1.0;
                a(i + d, i) = -1.0;
            }
        }
        Pattern pat;
        pat.a = std::make_shared<const la::DenseMatrix>(std::move(a));
        pat.b = la::Vector(kN, 1.0);
        for (std::size_t i = 0; i < kN; ++i)
            pat.b[i] = 1.0 + 0.125 * static_cast<double>(i);
        pat.hash = compiler::sparsityHash(*pat.a);
        pat.band = d;
        ps.push_back(std::move(pat));
    }
    return ps;
}

service::SolveRequest
requestFor(const Pattern &p, const char *tenant, std::size_t i)
{
    service::SolveRequest r;
    r.a = p.a;
    r.b = p.b;
    r.tenant = tenant;
    la::scale(1.0 + 0.0625 * static_cast<double>(i % 5), r.b, r.b);
    return r;
}

void
settle(std::vector<std::future<service::SolveResponse>> &futures)
{
    for (auto &f : futures)
        f.get();
    futures.clear();
}

} // namespace

int
main()
{
    using namespace aa;

    setLogLevel(LogLevel::Quiet); // the printfs below tell the story

    analog::AnalogSolverOptions die_opts;
    die_opts.die_seed = 11;
    die_opts.program_cache_capacity = 2;

    service::FleetOptions fopts;
    fopts.racks = kRacks;
    fopts.dies_per_rack = kDiesPerRack;
    fopts.shard.admission_capacity = 64;
    fopts.shard.tenants = {{"cfd", 3.0}, {"ml", 1.0}};
    // Make the hot pattern's second copy visible within a few
    // rounds: at ~6 req/round steady heat, wanted replicas =
    // 1 + floor((6 - 3) / 2) = 2.
    fopts.shard.placement.hot_threshold = 3.0;
    fopts.shard.placement.per_replica_heat = 2.0;
    service::ShardedSolveService fleet(die_opts, fopts);

    std::vector<Pattern> patterns = makePatterns();

    std::printf("fleet: %zu racks x %zu dies, 2-slot program "
                "caches, tenants cfd(w=3) ml(w=1)\n\n",
                kRacks, kDiesPerRack);
    std::printf("consistent-hash routing table (8x8 banded "
                "systems, band offset d):\n");
    std::printf("%-9s %-4s %-18s %s\n", "pattern", "d", "hash",
                "rack");
    for (std::size_t p = 0; p < patterns.size(); ++p)
        std::printf("%-9zu %-4zu %016llx %zu\n", p,
                    patterns[p].band,
                    static_cast<unsigned long long>(patterns[p].hash),
                    fleet.rackOf(patterns[p].hash));

    // Mixed-tenant traffic: pattern 0 is hot (every tenant hammers
    // it), the rest see light traffic. Several drained bursts give
    // the round-boundary rebalancer heat to act on.
    std::vector<std::future<service::SolveResponse>> futures;
    for (std::size_t round = 0; round < 6; ++round) {
        for (std::size_t i = 0; i < 6; ++i)
            futures.push_back(fleet.submit(
                requestFor(patterns[0], i % 2 ? "ml" : "cfd", i)));
        for (std::size_t p = 1; p < patterns.size(); ++p)
            futures.push_back(fleet.submit(
                requestFor(patterns[p], "cfd", round)));
        fleet.drain();
        settle(futures);
    }

    service::FleetMetrics m = fleet.metrics();
    std::printf("\nper-shard heat map after %zu requests:\n",
                m.submitted);
    std::printf("%-5s %-9s %-4s %-8s %-9s %s\n", "rack", "pattern",
                "n", "heat", "replicas", "dies");
    for (const auto &s : m.shards)
        for (const auto &h : s.heat)
            std::printf("%-5zu %08llx… %-4zu %-8.2f %-9zu %zu\n",
                        s.rack,
                        static_cast<unsigned long long>(h.pattern >>
                                                        32),
                        h.n, h.heat, h.replicas,
                        kDiesPerRack);

    std::printf("\nplacement event log:\n");
    for (std::size_t r = 0; r < fleet.racks(); ++r)
        for (const auto &e : fleet.shard(r).drainPlacementEvents())
            std::printf("  rack %zu: %s\n", r, e.c_str());

    // Act one: bench the hot pattern's home die. Three consecutive
    // verification failures quarantine it — but the replica placed
    // ahead of demand is already live on the other die, so the
    // rebalancer only sheds the stranded copy and traffic never
    // misses the cache.
    std::size_t hot_rack = fleet.rackOf(patterns[0].hash);
    service::Shard &shard = fleet.shard(hot_rack);
    shard.pause();
    for (std::size_t i = 0; i < 3; ++i)
        shard.pool().recordFailure(0);
    shard.resume();
    std::printf("\nbenched die 0 of rack %zu (hot pattern's home); "
                "driving one more round...\n",
                hot_rack);
    for (std::size_t i = 0; i < 4; ++i)
        futures.push_back(
            fleet.submit(requestFor(patterns[0], "cfd", i)));
    fleet.drain();
    settle(futures);
    for (const auto &e : shard.drainPlacementEvents())
        std::printf("  rack %zu: %s\n", hot_rack, e.c_str());
    std::printf("the ahead-of-demand replica took over: the benched "
                "copy is shed,\nnothing recompiles, no request "
                "missed the cache.\n");

    // Act two: bench a die on the rack holding several single-copy
    // patterns. The next round's rebalance re-homes the stranded
    // placements onto the healthy die — compiled structures are
    // host-side, so the migration ships no recompile either.
    std::vector<std::vector<std::size_t>> owned(kRacks);
    for (std::size_t p = 1; p < patterns.size(); ++p)
        owned[fleet.rackOf(patterns[p].hash)].push_back(p);
    std::size_t cold_rack = 0;
    for (std::size_t r = 0; r < kRacks; ++r)
        if (owned[r].size() > owned[cold_rack].size())
            cold_rack = r;
    service::Shard &cold = fleet.shard(cold_rack);
    cold.pause();
    for (std::size_t i = 0; i < 3; ++i)
        cold.pool().recordFailure(0);
    cold.resume();
    std::printf("\nbenched die 0 of rack %zu (%zu single-copy "
                "patterns); one round later:\n",
                cold_rack, owned[cold_rack].size());
    // Drive a pattern living on the healthy die: the round ticks,
    // and the rebalancer re-homes the placements stranded on die 0
    // (which saw no traffic this round, so nothing demand-compiled).
    std::size_t drive_p = owned[cold_rack][0];
    for (std::size_t p : owned[cold_rack])
        if (!cold.pool().dieHasPattern(0, patterns[p].hash,
                                       patterns[p].b.size())) {
            drive_p = p;
            break;
        }
    futures.push_back(
        fleet.submit(requestFor(patterns[drive_p], "cfd", 0)));
    fleet.drain();
    settle(futures);
    std::printf("migration log:\n");
    for (const auto &e : cold.drainPlacementEvents())
        std::printf("  rack %zu: %s\n", cold_rack, e.c_str());

    // Act three: tenant "ml" (weight 1, quota 16 of 64 in-flight)
    // floods the hot rack while it is paused. The gate admits up to
    // the quota and bounces the rest with RejectedQuota — "cfd"
    // capacity stays untouched.
    shard.pause();
    std::size_t flood_ok = 0, flood_bounced = 0;
    for (std::size_t i = 0; i < 24; ++i)
        futures.push_back(
            fleet.submit(requestFor(patterns[0], "ml", i)));
    shard.resume();
    fleet.drain();
    for (auto &f : futures) {
        service::SolveResponse r = f.get();
        if (r.status == service::RequestStatus::Ok)
            ++flood_ok;
        else if (r.status == service::RequestStatus::RejectedQuota)
            ++flood_bounced;
    }
    futures.clear();
    std::printf("\nml floods 24 requests at rack %zu: %zu admitted, "
                "%zu rejected-quota\n",
                hot_rack, flood_ok, flood_bounced);

    std::printf("\nper-tenant admission (rack %zu):\n", hot_rack);
    std::printf("%-8s %-7s %-6s %-10s %-9s %s\n", "tenant", "weight",
                "quota", "submitted", "admitted", "rejected-quota");
    for (const auto &t : shard.tenantStats())
        std::printf("%-8s %-7.1f %-6zu %-10zu %-9zu %zu\n",
                    t.name.c_str(), t.weight, t.quota, t.submitted,
                    t.admitted, t.rejected_quota);

    m = fleet.metrics();
    std::printf("\nfleet counters: %zu submitted, %zu ok, "
                "cache hit ratio %.3f,\n%zu placements, "
                "%zu replications, %zu migrations, %zu sheds\n",
                m.submitted, m.ok, m.cacheHitRatio(), m.placements,
                m.replications, m.migrations, m.sheds);
    fleet.stop();

    // Fleet economics from the paper's Table-2 component model: the
    // density metrics are per-die constants; racks buy throughput
    // linearly until rack overhead eats the W-density.
    std::printf("\nfleet cost model (320 KHz design, 2D Poisson "
                "l=30, 25 W/rack overhead):\n");
    std::printf("%-6s %-6s %-12s %-10s %-12s %s\n", "racks", "dies",
                "area (mm^2)", "power (W)", "solves/s",
                "per mm^2 / per W");
    cost::AcceleratorDesign design = cost::design320kHz();
    cost::PoissonShape shape{2, 30};
    for (std::size_t racks : {1, 2, 4, 8}) {
        cost::FleetCost c = cost::fleetCost(
            design, shape, {racks, kDiesPerRack, 25.0});
        std::printf("%-6zu %-6zu %-12.1f %-10.2f %-12.1f "
                    "%.3f / %.1f\n",
                    racks, c.dies, c.total_area_mm2, c.total_power_w,
                    c.solves_per_second, c.solvesPerSecondPerMm2(),
                    c.solvesPerSecondPerWatt());
    }
    return 0;
}
