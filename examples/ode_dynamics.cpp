/**
 * @file
 * The accelerator in its native role: an ODE-dynamics solver whose
 * useful output is the time-varying waveform itself (paper Figure 1
 * and Equation 1: du/dt = a u + b).
 *
 * Renders the analog waveform next to the closed form and a digital
 * Euler integration (the paper's Algorithm 1), as an ASCII plot.
 *
 * Build & run:   ./build/examples/ode_dynamics
 */

#include <cmath>
#include <cstdio>
#include <string>

#include "aa/analog/ode_runner.hh"

namespace {

/** Draw one waveform as a crude terminal plot. */
void
plot(const std::vector<double> &ts, const std::vector<double> &us,
     double u_max, const char *title)
{
    std::printf("\n%s\n", title);
    constexpr int rows = 12;
    constexpr int cols = 64;
    std::vector<std::string> canvas(rows, std::string(cols, ' '));
    for (std::size_t k = 0; k < ts.size(); ++k) {
        int c = static_cast<int>(
            (ts[k] / ts.back()) * (cols - 1));
        int r = static_cast<int>((1.0 - us[k] / u_max) * (rows - 1));
        if (r >= 0 && r < rows && c >= 0 && c < cols)
            canvas[r][c] = '*';
    }
    for (int r = 0; r < rows; ++r)
        std::printf("%8.3f |%s\n",
                    u_max * (1.0 - (double)r / (rows - 1)),
                    canvas[r].c_str());
    std::printf("         +%s\n", std::string(cols, '-').c_str());
    std::printf("          t = 0 .. %.2f\n", ts.back());
}

} // namespace

int
main()
{
    using namespace aa;

    // Equation 1 with a = -2, b = 1, u(0) = 0:
    // u(t) = 0.5 (1 - e^(-2t)).
    const double a_coeff = -2.0;
    const double b_coeff = 1.0;
    const double t_end = 3.0;

    analog::AnalogSolverOptions opts;
    opts.spec.variation.enabled = true; // a real (calibrated) die
    analog::AnalogOdeSolver runner(opts);

    la::DenseMatrix a = la::DenseMatrix::fromRows({{a_coeff}});
    analog::OdeRunOptions ropts;
    ropts.samples = 64;
    auto wave = runner.simulate(a, la::Vector{b_coeff},
                                la::Vector{0.0}, t_end, ropts);

    plot(wave.times, wave.component(0), 0.6,
         "analog accelerator waveform  u(t), du/dt = -2u + 1");

    // Digital Algorithm 1 (explicit Euler) and the closed form.
    std::printf("\n%-8s %-12s %-12s %-12s\n", "t", "analog",
                "euler(1e-3)", "closed form");
    double u_euler = 0.0;
    double step = 1e-3;
    std::size_t idx = 0;
    for (double t = 0.0; t <= t_end + 1e-9; t += step) {
        while (idx + 1 < wave.times.size() &&
               wave.times[idx + 1] <= t)
            ++idx;
        bool report =
            std::fabs(std::remainder(t, 0.5)) < step / 2.0;
        if (report) {
            double closed =
                0.5 * (1.0 - std::exp(a_coeff * t));
            std::printf("%-8.2f %-12.6f %-12.6f %-12.6f\n", t,
                        wave.states[idx][0], u_euler, closed);
        }
        u_euler += step * (a_coeff * u_euler + b_coeff);
    }

    std::printf("\nanalog chip time for the whole trajectory: %.3g us"
                " (problem time %.1f s compressed by the integrator "
                "rate)\n",
                wave.analog_seconds * 1e6, t_end);
    std::printf("time scale: %.3g problem-seconds per analog-second\n",
                wave.time_scale);
    return 0;
}
