/**
 * @file
 * Domain decomposition mechanics (paper Section IV-B): how block size
 * trades accelerator size against outer-iteration count.
 *
 * The same 2D Poisson problem is solved with strips of different
 * widths on correspondingly sized dies. Bigger blocks mean more of
 * the problem is handled by the strongly convergent inner solver, so
 * the weakly convergent outer iteration needs fewer sweeps — "it is
 * still desirable to ensure the block matrices are large".
 *
 * Build & run:   ./build/examples/domain_decomposition
 */

#include <cstdio>
#include <iostream>

#include "aa/analog/decompose.hh"
#include "aa/analog/die_pool.hh"
#include "aa/common/table.hh"
#include "aa/la/direct.hh"
#include "aa/pde/poisson.hh"

int
main()
{
    using namespace aa;

    const std::size_t l = 10; // 100 unknowns
    auto problem = pde::assemblePoisson(
        2, l, [](double x, double y, double) {
            return 10.0 * x * (1.0 - y);
        });
    la::Vector exact =
        la::solveDense(problem.a.toDense(), problem.b);

    TextTable table("block size vs outer iterations (2D Poisson, "
                    "100 unknowns, tol 1/256)");
    table.setHeader({"block vars", "strips", "outer sweeps",
                     "chip runs", "max error", "die integrators"});

    for (std::size_t rows_per_block : {1u, 2u, 5u}) {
        std::size_t block_vars = rows_per_block * l;
        analog::AnalogSolverOptions sopts;
        sopts.die_seed = 3;
        analog::AnalogLinearSolver solver(sopts);

        analog::DecomposeOptions dopts;
        dopts.max_block_vars = block_vars;
        dopts.tol = 1.0 / 256.0;
        dopts.max_outer_iters = 500;

        auto partition =
            pde::stripPartition(problem.grid, block_vars);
        auto out = analog::solveDecomposed(
            problem.a, problem.b, partition,
            analog::analogBlockSolver(solver), dopts);

        table.addRow(
            {std::to_string(block_vars),
             std::to_string(out.blocks),
             std::to_string(out.outer_iterations),
             std::to_string(out.block_solves),
             TextTable::num(la::maxAbsDiff(out.u, exact), 3),
             std::to_string(solver.chipRef()
                                .config()
                                .geometry.integrators())});
    }
    table.print(std::cout);

    std::printf("\nThe digital reference (exact Cholesky blocks) "
                "shows the same outer-iteration\ncounts — the outer "
                "convergence is a property of the decomposition, not "
                "of the\nanalog inner solver:\n\n");

    TextTable ref("same sweep with exact digital block solves");
    ref.setHeader({"block vars", "outer sweeps"});
    for (std::size_t rows_per_block : {1u, 2u, 5u}) {
        analog::DecomposeOptions dopts;
        dopts.max_block_vars = rows_per_block * l;
        dopts.tol = 1.0 / 256.0;
        dopts.max_outer_iters = 500;
        auto partition =
            pde::stripPartition(problem.grid, rows_per_block * l);
        auto out = analog::solveDecomposed(
            problem.a, problem.b, partition,
            analog::choleskyBlockSolver(), dopts);
        ref.addRow({std::to_string(rows_per_block * l),
                    std::to_string(out.outer_iterations)});
    }
    ref.print(std::cout);

    // "Multiple accelerators": the same strips dispatched across a
    // pool of dies, block i pinned to die i mod pool size. The
    // threaded run is bit-identical to the serial one — only the
    // wall-clock changes (given enough host cores).
    std::printf("\nmulti-die dispatch: 20-var strips across 4 dies\n");
    auto pooled = [&](std::size_t threads) {
        analog::DiePool pool(4, [] {
            analog::AnalogSolverOptions o;
            o.die_seed = 3;
            return o;
        }());
        analog::DecomposeOptions dopts;
        dopts.max_block_vars = 2 * l;
        dopts.tol = 1.0 / 256.0;
        dopts.max_outer_iters = 500;
        dopts.threads = threads;
        auto out = analog::solveDecomposed(
            problem.a, problem.b,
            pde::stripPartition(problem.grid, 2 * l),
            pool.blockSolvers(), dopts);
        return std::make_pair(out, pool.report());
    };
    auto [serial, serial_rep] = pooled(1);
    auto [threaded, threaded_rep] = pooled(4);
    std::printf("  serial:   %zu sweeps, %zu chip runs, %.3g ms "
                "analog\n",
                serial.outer_iterations, serial.block_solves,
                serial_rep.total().analog_seconds * 1e3);
    std::printf("  threaded: %zu sweeps, %zu chip runs, %.3g ms "
                "analog\n",
                threaded.outer_iterations, threaded.block_solves,
                threaded_rep.total().analog_seconds * 1e3);
    std::printf("  bit-identical solutions: %s\n",
                serial.u.raw() == threaded.u.raw() ? "yes" : "NO");
    for (std::size_t k = 0; k < threaded_rep.dies.size(); ++k)
        std::printf("  die %zu: %zu solves, cache %zu hit / %zu "
                    "miss\n",
                    k, threaded_rep.dies[k].solves,
                    threaded_rep.dies[k].cache_hits,
                    threaded_rep.dies[k].cache_misses);
    return 0;
}
