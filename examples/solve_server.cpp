/**
 * @file
 * The solve-request service, end to end: a host front door over a
 * pool of accelerator dies. Clients submit asynchronous SolveRequests
 * (matrix, RHS, tolerance, deadline, priority) and get futures back;
 * the service batches compatible requests by sparsity pattern and
 * routes each pattern to the die whose ProgramCache already holds its
 * compiled structure, so steady-state traffic stays on the
 * delta-reconfiguration fast path. This is the serving story of the
 * paper's accelerator: analog arrays win on sustained request
 * streams, and the scheduler's job is keeping every die busy — and
 * warm.
 *
 * The demo pushes a mixed two-pattern Poisson workload through a
 * three-die pool twice — once cache-affine, once round-robin — and
 * prints both metric snapshots side by side, then shows priorities,
 * deadlines, and queue-full backpressure on the affine service.
 *
 * Build & run:   ./build/examples/solve_server
 */

#include <cstdio>
#include <future>
#include <memory>
#include <vector>

#include "aa/analog/die_pool.hh"
#include "aa/la/direct.hh"
#include "aa/pde/poisson.hh"
#include "aa/service/service.hh"

namespace {

using namespace aa;

const char *
statusName(service::RequestStatus s)
{
    switch (s) {
    case service::RequestStatus::Ok:
        return "ok";
    case service::RequestStatus::RejectedQueueFull:
        return "rejected-queue-full";
    case service::RequestStatus::RejectedShutdown:
        return "rejected-shutdown";
    case service::RequestStatus::RejectedInvalid:
        return "rejected-invalid";
    case service::RequestStatus::RejectedQuota:
        return "rejected-quota";
    case service::RequestStatus::DeadlineExpired:
        return "deadline-expired";
    case service::RequestStatus::Failed:
        return "failed";
    }
    return "?";
}

analog::AnalogSolverOptions
dieOptions()
{
    analog::AnalogSolverOptions opts;
    opts.die_seed = 11;
    // One resident structure per die: the contended program-memory
    // regime where routing policy decides the hit ratio.
    opts.program_cache_capacity = 1;
    return opts;
}

/** Run `count` mixed-pattern requests; return the final metrics. */
service::ServiceMetrics
runMixedStream(bool affinity, std::size_t count)
{
    analog::DiePool pool(3, dieOptions());
    service::ServiceOptions sopts;
    sopts.cache_affinity = affinity;
    sopts.queue_capacity = count;
    service::SolveService svc(pool, sopts);

    auto p2 = pde::assemblePoisson(
        2, 3, [](double x, double y, double) { return x + y; });
    auto p1 = pde::assemblePoisson(
        1, 8, [](double x, double, double) { return 1.0 + x; });
    auto a2d = std::make_shared<const la::DenseMatrix>(p2.a.toDense());
    auto a1d = std::make_shared<const la::DenseMatrix>(p1.a.toDense());

    // Warm-up wave: one request per pattern compiles the structures
    // (and, affine, pins each pattern to its home die) before the
    // steady stream arrives.
    std::vector<std::future<service::SolveResponse>> futures;
    auto push = [&](std::size_t i) {
        service::SolveRequest r;
        r.a = (i % 2 == 0) ? a2d : a1d;
        r.b = (i % 2 == 0) ? p2.b : p1.b;
        la::scale(1.0 + 0.0625 * static_cast<double>(i % 5), r.b,
                  r.b);
        futures.push_back(svc.submit(std::move(r)));
    };
    push(0);
    push(1);
    svc.drain();
    for (std::size_t i = 2; i < count; ++i)
        push(i);
    svc.drain();
    for (auto &f : futures)
        f.get();
    svc.stop();
    return svc.metrics();
}

} // namespace

int
main()
{
    using namespace aa;

    const std::size_t stream = 48;
    std::printf("mixed 2-pattern stream (%zu requests, 3 dies, "
                "1-slot program caches):\n\n",
                stream);
    service::ServiceMetrics affine = runMixedStream(true, stream);
    service::ServiceMetrics rr = runMixedStream(false, stream);

    std::printf("%-26s %-12s %-12s\n", "", "affine", "round-robin");
    std::printf("%-26s %-12zu %-12zu\n", "structure compiles",
                affine.cache_misses, rr.cache_misses);
    std::printf("%-26s %-12.3f %-12.3f\n", "cache hit ratio",
                affine.cacheHitRatio(), rr.cacheHitRatio());
    std::printf("%-26s %-12.3f %-12.3f\n", "affinity hit ratio",
                affine.affinityHitRatio(), rr.affinityHitRatio());
    std::printf("%-26s %-12zu %-12zu\n", "config bytes shipped",
                affine.config_bytes, rr.config_bytes);
    std::printf("%-26s %-12.2f %-12.2f\n", "latency p95 (us)",
                affine.latency_p95 * 1e6, rr.latency_p95 * 1e6);
    std::printf("\nAffine routing pins each pattern to a home die: "
                "after the cold\ncompiles, every request reuses the "
                "live crossbar and ships only\nDAC-bias deltas. "
                "Round-robin alternates patterns across every die,\n"
                "evicting the one-slot cache on each turn.\n");

    // Admission control, priorities, and deadlines on one service.
    analog::DiePool pool(2, dieOptions());
    service::ServiceOptions sopts;
    sopts.queue_capacity = 4;
    sopts.start_paused = true; // stage one deterministic round
    service::SolveService svc(pool, sopts);

    auto a = std::make_shared<const la::DenseMatrix>(
        la::DenseMatrix::fromRows({{4.0, -1.0}, {-1.0, 3.0}}));
    std::vector<std::future<service::SolveResponse>> futures;
    for (int i = 0; i < 6; ++i) {
        service::SolveRequest r;
        r.a = a;
        r.b = la::Vector{1.0 + i, 2.0};
        r.priority = (i == 3) ? 10 : 0; // one urgent request
        if (i == 2)
            r.deadline_seconds = 1e-9; // expires while queued
        futures.push_back(svc.submit(std::move(r)));
    }
    svc.resume();
    svc.drain();

    std::printf("\nbounded queue (capacity 4), one urgent, one "
                "hopeless deadline:\n\n");
    std::printf("%-4s %-22s %-6s %-6s\n", "req", "status", "die",
                "slot");
    for (std::size_t i = 0; i < futures.size(); ++i) {
        auto res = futures[i].get();
        if (res.status == service::RequestStatus::Ok)
            std::printf("%-4zu %-22s %-6zu %-6zu\n", i,
                        statusName(res.status), res.die,
                        res.exec_order);
        else
            std::printf("%-4zu %-22s (%s)\n", i,
                        statusName(res.status), res.reason.c_str());
    }
    svc.stop();

    service::ServiceMetrics m = svc.metrics();
    std::printf("\nservice counters: %zu submitted, %zu ok, %zu "
                "rejected (queue full),\n%zu deadline-expired, "
                "queue peak %zu, %zu scheduling round(s)\n",
                m.submitted, m.ok, m.rejected_full,
                m.deadline_expired, m.queue_peak, m.batches);
    std::printf("The urgent request ran first in its round; the "
                "overflow requests were\nbounced at submit() with a "
                "reason instead of queueing unboundedly.\n");
    return 0;
}
