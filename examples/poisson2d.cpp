/**
 * @file
 * An elliptic PDE solved with analog acceleration (paper Figure 6).
 *
 * A 2D Poisson problem with a hot boundary edge and a point-like
 * source is too large for the die, so it is cut into strips (domain
 * decomposition, Section IV-B), each strip solved on the accelerator,
 * with an outer block iteration for global convergence. The field is
 * rendered as an ASCII heat map next to the exact digital solve.
 *
 * Build & run:   ./build/examples/poisson2d
 */

#include <cmath>
#include <cstdio>

#include "aa/analog/decompose.hh"
#include "aa/la/direct.hh"
#include "aa/pde/poisson.hh"

namespace {

void
render(const aa::pde::StructuredGrid &grid, const aa::la::Vector &u,
       const char *title)
{
    const char shades[] = " .:-=+*#%@";
    double peak = aa::la::normInf(u);
    if (peak == 0.0)
        peak = 1.0;
    std::printf("\n%s (peak %.4f)\n", title, peak);
    std::size_t l = grid.pointsPerSide();
    for (std::size_t j = l; j-- > 0;) {
        std::printf("    ");
        for (std::size_t i = 0; i < l; ++i) {
            double v = u[grid.index(i, j)] / peak;
            int s = static_cast<int>(std::round(v * 9.0));
            s = std::max(0, std::min(9, s));
            std::printf("%c%c", shades[s], shades[s]);
        }
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    using namespace aa;

    // 12x12 interior grid (144 unknowns): hot edge at y = 1 plus a
    // source bump near (0.3, 0.3).
    const std::size_t l = 12;
    auto problem = pde::assemblePoisson(
        2, l,
        [](double x, double y, double) {
            double dx = x - 0.3, dy = y - 0.3;
            return 60.0 * std::exp(-40.0 * (dx * dx + dy * dy));
        },
        [](double, double y, double) {
            return y == 1.0 ? 1.0 : 0.0;
        });

    la::Vector exact =
        la::solveDense(problem.a.toDense(), problem.b);

    // One accelerator die sized for a 12-variable strip; the 144-
    // variable problem runs as 12 strip subproblems per sweep.
    analog::AnalogSolverOptions sopts;
    sopts.die_seed = 7;
    analog::AnalogLinearSolver solver(sopts);

    analog::DecomposeOptions dopts;
    dopts.max_block_vars = 2 * l; // two grid rows per block
    // A single accelerator run per block would floor the outer
    // iteration at the ADC readout quantization (sigma * LSB). The
    // Figure 6 pipeline therefore layers Algorithm 2 accuracy
    // boosting onto every block solve, which makes the paper's 1/256
    // stopping rule reachable.
    dopts.tol = 1.0 / 256.0;
    dopts.max_outer_iters = 200;
    dopts.record_history = true;

    auto partition = pde::stripPartition(problem.grid, 2 * l);
    auto out = analog::solveDecomposed(
        problem.a, problem.b, partition,
        analog::refinedAnalogBlockSolver(solver, 3), dopts);

    std::printf("grid: %zux%zu (%zu unknowns), %zu blocks of up to %zu\n",
                l, l, problem.grid.totalPoints(), out.blocks, dopts.max_block_vars);
    std::printf("outer sweeps: %zu, accelerator runs: %zu, "
                "converged: %s\n",
                out.outer_iterations, out.block_solves,
                out.converged ? "yes" : "no");
    std::printf("max error vs digital direct solve: %.4f "
                "(full scale %.4f)\n",
                la::maxAbsDiff(out.u, exact), la::normInf(exact));
    std::printf("total analog compute time: %.3g ms\n",
                solver.totalAnalogSeconds() * 1e3);

    render(problem.grid, exact, "digital direct solve");
    render(problem.grid, out.u,
           "analog accelerator (strips + outer iteration)");

    std::printf("\nouter-iteration convergence (max change per "
                "sweep):\n    ");
    for (std::size_t k = 0; k < out.change_history.size(); ++k) {
        if (k % 8 == 0 && k)
            std::printf("\n    ");
        std::printf("%.4f ", out.change_history[k]);
    }
    std::printf("\n");
    return 0;
}
