/**
 * @file
 * Figure 1 / Equation 1 / Algorithm 1: the single-ODE mapping
 * du/dt = a u + b. Regenerates the waveform three ways — analog
 * accelerator (circuit simulation), digital Euler (Algorithm 1 as
 * printed in the paper), and the closed form — and reports the
 * accelerator's waveform error.
 */

#include <cmath>

#include "aa/analog/ode_runner.hh"
#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace aa;
    bool tsv = bench::tsvMode(argc, argv);
    bench::quietLogs();

    const double a = -2.0, b = 1.0, uinit = 0.1, t_end = 2.5;

    analog::AnalogSolverOptions opts;
    opts.die_seed = 42;
    analog::AnalogOdeSolver runner(opts);
    la::DenseMatrix am = la::DenseMatrix::fromRows({{a}});
    analog::OdeRunOptions ropts;
    ropts.samples = 26;
    auto wave =
        runner.simulate(am, la::Vector{b}, la::Vector{uinit}, t_end,
                        ropts);

    TextTable table(
        "Figure 1: du/dt = -2u + 1, u(0) = 0.1 (waveforms)");
    table.setHeader({"t", "analog", "euler_1e-3", "closed_form",
                     "analog_err"});

    double max_err = 0.0;
    double u_euler = uinit;
    double t_euler = 0.0;
    const double h = 1e-3;
    for (std::size_t k = 0; k < wave.times.size(); ++k) {
        double t = wave.times[k];
        // Algorithm 1 advanced to the same time.
        while (t_euler + h / 2.0 < t) {
            u_euler += h * (a * u_euler + b);
            t_euler += h;
        }
        double closed =
            -b / a + (uinit + b / a) * std::exp(a * t);
        double err = wave.states[k][0] - closed;
        max_err = std::max(max_err, std::fabs(err));
        table.addRow({TextTable::num(t, 4),
                      TextTable::num(wave.states[k][0], 6),
                      TextTable::num(u_euler, 6),
                      TextTable::num(closed, 6),
                      TextTable::sci(err, 2)});
    }
    bench::emit(table, tsv);

    TextTable summary("Figure 1 summary");
    summary.setHeader({"metric", "value"});
    summary.addRow({"max waveform error (full scale 1)",
                    TextTable::sci(max_err, 3)});
    summary.addRow({"analog chip time (us)",
                    TextTable::num(wave.analog_seconds * 1e6, 4)});
    summary.addRow({"problem-time per analog-second",
                    TextTable::sci(wave.time_scale, 3)});
    summary.addRow({"rescale attempts",
                    std::to_string(wave.attempts)});
    bench::emit(summary, tsv);
    return 0;
}
