/**
 * @file
 * Figure 10: maximum-activity power of the analog accelerator designs
 * as a function of the number of grid points they simultaneously
 * solve. The paper's anchor: the 20 KHz design draws ~0.7 W at 2048
 * points, well below the TDP of clocked digital designs of equal
 * area.
 */

#include "aa/cost/model.hh"
#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace aa;
    bool tsv = bench::tsvMode(argc, argv);
    bench::quietLogs();

    cost::AcceleratorDesign designs[] = {
        cost::prototypeDesign(), cost::design80kHz(),
        cost::design320kHz(), cost::design1300kHz()};

    TextTable fig("Figure 10: maximum-activity power (W) vs grid "
                  "points (2D Poisson inventory)");
    fig.setHeader({"grid points", "20KHz", "80KHz", "320KHz",
                   "1.3MHz"});
    for (std::size_t l :
         {8u, 12u, 16u, 20u, 25u, 29u, 33u, 37u, 40u, 43u, 45u}) {
        cost::PoissonShape shape{2, l};
        std::vector<std::string> row{
            std::to_string(shape.gridPoints())};
        for (auto &d : designs) {
            row.push_back(TextTable::num(
                d.powerWatts(d.unitsFor(shape)), 4));
        }
        fig.addRow(row);
    }
    bench::emit(fig, tsv);

    cost::PoissonShape anchor{2, 45}; // 2025 points
    TextTable note("Figure 10 anchor");
    note.setHeader({"claim", "paper", "this model"});
    note.addRow({"20KHz power at ~2048 points (W)", "~0.7",
                 TextTable::num(
                     designs[0].powerWatts(
                         designs[0].unitsFor(anchor)),
                     3)});
    bench::emit(note, tsv);
    return 0;
}
