/**
 * @file
 * Figure 7: convergence-rate comparison of the classical iterative
 * methods on the paper's 3D Poisson problem — 16 points per side
 * (4096 grid points), boundary condition u = 1 on the x = 0 plane,
 * zero elsewhere. L2-norm error against the iteration count for
 * conjugate gradients, steepest descent, SOR, Gauss-Seidel, and
 * Jacobi. The paper's reading: CG has by far the steepest slope.
 */

#include "aa/la/direct.hh"
#include "aa/pde/poisson.hh"
#include "aa/solver/iterative.hh"
#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace aa;
    bool tsv = bench::tsvMode(argc, argv);
    bench::quietLogs();

    auto prob = pde::figure7Problem(16);
    la::CsrOperator op(prob.a);

    // Reference solution: CG far past the plotted range.
    solver::IterOptions ref_opts;
    ref_opts.tol = 1e-14;
    ref_opts.max_iters = 5000;
    la::Vector exact =
        solver::conjugateGradient(op, prob.b, ref_opts).x;

    const std::size_t iters = 35; // the figure's x-axis
    solver::IterOptions opts;
    opts.max_iters = iters;
    opts.tol = 0.0; // run the full span
    opts.exact = &exact;
    opts.omega = 1.5; // the untuned textbook choice, as in the paper

    auto cg = solver::conjugateGradient(op, prob.b, opts);
    auto steepest = solver::steepestDescent(op, prob.b, opts);
    auto so = solver::sor(prob.a, prob.b, opts);
    auto gs = solver::gaussSeidel(prob.a, prob.b, opts);
    auto ja = solver::jacobi(op, prob.b, opts);

    TextTable table(
        "Figure 7: L2-norm error vs iterations (3D Poisson, 16^3 = "
        "4096 points, u=1 on x=0)");
    table.setHeader({"iteration", "cg", "steepest", "sor(1.5)", "gs",
                     "jacobi"});
    auto at = [](const std::vector<double> &h, std::size_t k) {
        return k < h.size() ? TextTable::sci(h[k], 3)
                            : std::string("-");
    };
    for (std::size_t k = 0; k < iters; ++k) {
        table.addRow({std::to_string(k + 1),
                      at(cg.error_history, k),
                      at(steepest.error_history, k),
                      at(so.error_history, k),
                      at(gs.error_history, k),
                      at(ja.error_history, k)});
    }
    bench::emit(table, tsv);

    TextTable rank("Figure 7 reading: error after 35 iterations "
                   "(lower = faster convergence)");
    rank.setHeader({"method", "final L2 error"});
    rank.addRow({"cg", TextTable::sci(cg.error_history.back(), 3)});
    rank.addRow({"steepest",
                 TextTable::sci(steepest.error_history.back(), 3)});
    rank.addRow({"sor(1.5)",
                 TextTable::sci(so.error_history.back(), 3)});
    rank.addRow({"gs", TextTable::sci(gs.error_history.back(), 3)});
    rank.addRow({"jacobi",
                 TextTable::sci(ja.error_history.back(), 3)});
    bench::emit(rank, tsv);
    return 0;
}
