/**
 * @file
 * Ablation (paper Section V-B "Choice of ADC resolution"): sweep the
 * ADC width. More bits slow each analog run (more decades to settle)
 * and also force the equal-precision digital comparison to iterate
 * longer — the trade the paper describes when moving the projections
 * from the prototype's 8 bits to 12 bits.
 */

#include "aa/analog/solver.hh"
#include "aa/cost/digital.hh"
#include "aa/cost/model.hh"
#include "aa/la/direct.hh"
#include "aa/pde/poisson.hh"
#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace aa;
    bool tsv = bench::tsvMode(argc, argv);
    bench::quietLogs();

    auto problem = pde::assemblePoisson(
        2, 3, [](double x, double y, double) { return x + y; });
    la::DenseMatrix a = problem.a.toDense();
    la::Vector exact = la::solveDense(a, problem.b);

    cost::CpuModel cpu;
    TextTable table("ADC resolution sweep: single-run accuracy, "
                    "analog settle time, and the digital "
                    "equal-precision cost (2D Poisson)");
    table.setHeader({"ADC bits", "1-run max error",
                     "analog settle model (s, N=625)",
                     "CG iters (N=625)", "CG model time (s)"});

    for (std::size_t bits : {6u, 8u, 10u, 12u}) {
        analog::AnalogSolverOptions opts;
        opts.spec.adc_bits = bits;
        opts.die_seed = 17;
        analog::AnalogLinearSolver solver(opts);
        auto out = solver.solve(a, problem.b);
        double err = la::maxAbsDiff(out.u, exact);

        cost::AcceleratorDesign design(20e3, bits);
        cost::PoissonShape shape{2, 25};
        auto m = cost::measureCgPoisson(2, 25, bits, cpu, 1);

        table.addRow({std::to_string(bits), TextTable::sci(err, 3),
                      TextTable::sci(
                          design.solveTimeSeconds(shape), 3),
                      std::to_string(m.iterations),
                      TextTable::sci(m.model_seconds, 3)});
    }
    bench::emit(table, tsv);
    return 0;
}
