/**
 * @file
 * Ablation: the value/time scaling trade (Section VI-D) and the two
 * assumptions the projections rest on.
 *
 * Part 1 measures the time cost of gain scaling directly: the same
 * system programmed with progressively larger coefficient magnitudes
 * stretches analog solve time by exactly the scale factor.
 *
 * Part 2 quantifies the sensitivity notes from DESIGN.md: where the
 * analog/CPU parity point lands as a function of the usable gain
 * range — including the pessimistic per-branch-unit-range reading
 * (g_eff ~ 1.4) under which the paper's crossover all but vanishes.
 */

#include <cmath>

#include "aa/analog/solver.hh"
#include "aa/cost/digital.hh"
#include "aa/cost/model.hh"
#include "aa/la/direct.hh"
#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace aa;
    bool tsv = bench::tsvMode(argc, argv);
    bench::quietLogs();

    // --- Part 1: time stretches by the gain scale -----------------
    analog::AnalogSolverOptions opts;
    opts.spec.variation.enabled = false;
    opts.spec.adc_noise_sigma = 0.0;
    opts.auto_calibrate = false;
    analog::AnalogLinearSolver solver(opts);

    la::DenseMatrix base =
        la::DenseMatrix::fromRows({{20.0, -5.0}, {-5.0, 15.0}});
    la::Vector b{5.0, 2.0};

    TextTable part1(
        "Section VI-D: value/time scaling. A system k-times larger "
        "maps to the SAME hardware configuration and physical solve "
        "time — the machine trades dynamic range for time, "
        "stretching by s relative to a hypothetical unscaled run");
    part1.setHeader({"max|a_ij|", "gain scale s", "analog time (us)",
                     "unscaled-equivalent time (us)", "u0", "u1"});
    for (double k : {1.0, 4.0, 16.0, 64.0}) {
        la::DenseMatrix a = base;
        a *= k;
        la::Vector bk;
        la::scale(k, b, bk);
        auto out = solver.solve(a, bk);
        part1.addRow({TextTable::num(20.0 * k, 4),
                      TextTable::num(out.gain_scale, 4),
                      TextTable::num(out.analog_seconds * 1e6, 4),
                      TextTable::num(out.analog_seconds /
                                         out.gain_scale * 1e6,
                                     4),
                      TextTable::num(out.u[0], 4),
                      TextTable::num(out.u[1], 4)});
    }
    bench::emit(part1, tsv);

    TextTable reading1("Section VI-D reading");
    reading1.setHeader({"note"});
    reading1.addRow(
        {"physical solve time and solution are invariant in k: "
         "A/s, b/s map to identical gains and biases"});
    reading1.addRow(
        {"s grows linearly with k: the time an unscaled machine "
         "would have needed shrinks as 1/k, so the scaled run is "
         "s-times 'slower' than the coefficients alone suggest"});
    bench::emit(reading1, tsv);

    // --- Part 2: parity point vs usable gain range ----------------
    cost::CpuModel cpu;
    TextTable part2("sensitivity: 20KHz analog/CPU parity point vs "
                    "usable gain g (DESIGN.md section 5b)");
    part2.setHeader({"g_eff", "interpretation",
                     "parity grid points (2D)"});
    struct G {
        double g;
        const char *meaning;
    } gs[] = {
        {32.0, "paper-faithful (branch compliance assumed)"},
        {8.0, "conservative VGA range"},
        {1.4, "per-branch unit range (pessimistic)"},
    };
    for (const auto &[g, meaning] : gs) {
        // Find the smallest N where the analog model beats the CPU
        // model at equivalent 8-bit precision.
        std::size_t parity = 0;
        for (std::size_t l = 4; l <= 220; l += 4) {
            cost::AcceleratorDesign design(20e3, 8, g);
            cost::PoissonShape shape{2, l};
            auto m = cost::measureCgPoisson(2, l, 8, cpu, 1);
            if (design.solveTimeSeconds(shape) <= m.model_seconds) {
                parity = shape.gridPoints();
                break;
            }
        }
        part2.addRow({TextTable::num(g, 3), meaning,
                      parity ? std::to_string(parity)
                             : std::string("> 48400 (not reached)")});
    }
    bench::emit(part2, tsv);
    return 0;
}
