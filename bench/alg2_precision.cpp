/**
 * @file
 * Algorithm 2: building precision in the analog result. Per-pass
 * residuals and effective solution bits for 8-bit and 12-bit ADCs on
 * a mapped Poisson block — the quantitative version of the paper's
 * "precision ... can be increased arbitrarily irrespective of the
 * resolution of the analog-to-digital converter".
 */

#include <cmath>

#include "aa/analog/solver.hh"
#include "aa/la/direct.hh"
#include "aa/pde/poisson.hh"
#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace aa;
    bool tsv = bench::tsvMode(argc, argv);
    bench::quietLogs();

    auto problem = pde::assemblePoisson(
        2, 3, [](double x, double y, double) { return x + 2.0 * y; });
    la::DenseMatrix a = problem.a.toDense();
    const la::Vector &b = problem.b;
    la::Vector exact = la::solveDense(a, b);
    double bnorm = la::norm2(b);
    double uscale = la::normInf(exact);

    TextTable table("Algorithm 2: relative residual, solution bits "
                    "and config traffic per refinement pass");
    table.setHeader({"pass", "8-bit resid", "8-bit bits",
                     "12-bit resid", "12-bit bits", "8-bit cfg B",
                     "12-bit cfg B"});

    constexpr std::size_t passes = 7;
    std::vector<std::string> cells[passes + 1];
    // Config bytes each pass shipped (row p = traffic of the solve
    // that produced that row's state; row 0 = nothing yet). With the
    // program cache + shadow registers, every pass after the first
    // rebinds DAC biases only.
    std::size_t traffic[2][passes + 1] = {};

    for (std::size_t col = 0; col < 2; ++col) {
        analog::AnalogSolverOptions opts;
        opts.spec.adc_bits = col == 0 ? 8 : 12;
        opts.die_seed = 11;
        analog::AnalogLinearSolver solver(opts);

        la::Vector u(b.size());
        la::Vector residual = b;
        for (std::size_t pass = 0; pass <= passes; ++pass) {
            double rel = la::norm2(residual) / bnorm;
            double err = la::maxAbsDiff(u, exact);
            double bits =
                err > 0.0 ? -std::log2(err / uscale) : 52.0;
            cells[pass].push_back(TextTable::sci(rel, 2));
            cells[pass].push_back(TextTable::num(bits, 3));
            if (pass == passes)
                break;
            double peak = la::normInf(residual);
            if (peak > 0.0)
                solver.setSolutionScaleHint(
                    peak / std::max(a.maxAbs(), 1e-12));
            auto out = solver.solve(a, residual);
            traffic[col][pass + 1] = out.phases.config_bytes;
            la::axpy(1.0, out.u, u);
            residual = b - a.apply(u);
        }
    }
    for (std::size_t pass = 0; pass <= passes; ++pass) {
        table.addRow({std::to_string(pass), cells[pass][0],
                      cells[pass][1], cells[pass][2], cells[pass][3],
                      std::to_string(traffic[0][pass]),
                      std::to_string(traffic[1][pass])});
    }
    bench::emit(table, tsv);

    TextTable note("Algorithm 2 reading");
    note.setHeader({"claim", "observed"});
    note.addRow({"precision grows linearly with passes",
                 "yes: ~5-6 bits per 8-bit pass"});
    note.addRow({"ADC bits set the rate, not the ceiling",
                 "yes: both reach double-precision-limited floors"});
    bench::emit(note, tsv);
    return 0;
}
