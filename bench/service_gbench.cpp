/**
 * @file
 * Solve-request service throughput: the cache-affine scheduler vs the
 * round-robin baseline on a mixed two-pattern workload over a
 * three-die pool. Both benchmarks push identical request bursts
 * through an identical pool; the only difference is
 * ServiceOptions::cache_affinity. The die count is deliberately odd:
 * with an even pool a strictly alternating two-pattern trace would
 * make round-robin accidentally affine (die k always sees the same
 * pattern), hiding exactly the effect under test.
 *
 * Each die's program cache is capped at one resident structure
 * (program_cache_capacity = 1 — the contended on-die program memory
 * regime), and a warm-up burst runs before the timed loop so the
 * counters measure steady state: the affine scheduler holds the
 * ProgramCache hit ratio at 1.0 (every pattern stays resident on its
 * home die) while round-robin keeps evicting and recompiling as the
 * two patterns alternate across every die. The JSON artifact
 * (BENCH_service.json) records steady_cache_hit_ratio,
 * config_bytes_per_req, and affinity_ratio alongside the solves/sec
 * items_per_second rate.
 */

#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "aa/analog/die_pool.hh"
#include "aa/common/logging.hh"
#include "aa/pde/poisson.hh"
#include "aa/service/service.hh"
#include "aa/service/shard.hh"
#include "bench_util.hh"

namespace {

using namespace aa;

const bool g_build_context = [] {
    aa::bench::recordBuildContext(
        [](const char *k, const std::string &v) {
            benchmark::AddCustomContext(k, v);
        });
    return true;
}();

constexpr std::size_t kDies = 3;
constexpr std::size_t kBurst = 24; ///< requests per timed iteration

/** The two-pattern workload: a dense 2D Poisson operator (n = 9) and
 *  a tridiagonal 1D operator (n = 8) with nonzero forcings. */
struct Workload {
    std::shared_ptr<const la::DenseMatrix> a2d, a1d;
    la::Vector b2d, b1d;

    Workload()
    {
        auto p2 = pde::assemblePoisson(
            2, 3, [](double x, double y, double) { return x + y; });
        auto p1 = pde::assemblePoisson(
            1, 8, [](double x, double, double) { return 1.0 + x; });
        a2d = std::make_shared<const la::DenseMatrix>(
            p2.a.toDense());
        a1d = std::make_shared<const la::DenseMatrix>(
            p1.a.toDense());
        b2d = p2.b;
        b1d = p1.b;
    }

    /** Request i of a burst: alternate patterns, vary the RHS so the
     *  delta-reconfiguration path has real bias updates to ship. */
    service::SolveRequest
    request(std::size_t i) const
    {
        service::SolveRequest r;
        double f = 1.0 + 0.0625 * static_cast<double>(i % 7);
        if (i % 2 == 0) {
            r.a = a2d;
            r.b = b2d;
        } else {
            r.a = a1d;
            r.b = b1d;
        }
        la::scale(f, r.b, r.b);
        return r;
    }
};

void
submitBurstAndDrain(service::SolveService &svc, const Workload &work)
{
    std::vector<std::future<service::SolveResponse>> futures;
    futures.reserve(kBurst);
    for (std::size_t i = 0; i < kBurst; ++i)
        futures.push_back(svc.submit(work.request(i)));
    svc.drain();
    for (auto &f : futures)
        benchmark::DoNotOptimize(f.get().u.data());
}

void
serviceThroughputBenchmark(benchmark::State &state, bool affinity,
                           bool batch = false, bool pipeline = false,
                           std::size_t pipeline_depth = 2)
{
    setLogLevel(LogLevel::Quiet);
    Workload work;

    analog::AnalogSolverOptions die_opts;
    die_opts.spec.variation.enabled = false;
    die_opts.spec.adc_noise_sigma = 0.0;
    die_opts.auto_calibrate = false;
    die_opts.die_seed = 40;
    die_opts.program_cache_capacity = 1;
    analog::DiePool pool(kDies, die_opts);

    service::ServiceOptions sopts;
    sopts.cache_affinity = affinity;
    sopts.batch_multi_rhs = batch;
    sopts.pipeline = pipeline;
    sopts.pipeline_depth = pipeline_depth;
    sopts.queue_capacity = kBurst * 2;
    service::SolveService svc(pool, sopts);

    // Warm-up: first-touch compiles and calibration happen here, so
    // the timed loop (and the counters below) see steady state.
    submitBurstAndDrain(svc, work);
    service::ServiceMetrics base = svc.metrics();

    for (auto _ : state)
        submitBurstAndDrain(svc, work);

    service::ServiceMetrics m = svc.metrics();
    // Die duty cycle over the timed window: integrate-seconds per
    // die-wall-second. The pipeline exists to raise this (one host
    // core simulating every die serializes the gains; see
    // EXPERIMENTS.md for the caveat).
    double window = m.wall_seconds - base.wall_seconds;
    double integrate = 0.0;
    for (std::size_t k = 0; k < m.dies.size(); ++k)
        integrate += m.dies[k].integrate_seconds -
                     base.dies[k].integrate_seconds;
    state.counters["die_occupancy"] =
        window > 0.0
            ? integrate / (window * static_cast<double>(kDies))
            : 0.0;
    if (pipeline)
        state.counters["pipeline_depth"] =
            static_cast<double>(pipeline_depth);
    std::size_t hits = m.cache_hits - base.cache_hits;
    std::size_t misses = m.cache_misses - base.cache_misses;
    std::size_t lookups = hits + misses;
    std::size_t requests = m.ok - base.ok;
    state.counters["steady_cache_hit_ratio"] =
        static_cast<double>(hits) /
        static_cast<double>(lookups ? lookups : 1);
    state.counters["steady_cache_misses"] =
        static_cast<double>(misses);
    state.counters["config_bytes_per_req"] =
        static_cast<double>(m.config_bytes - base.config_bytes) /
        static_cast<double>(requests ? requests : 1);
    state.counters["affinity_ratio"] =
        static_cast<double>(m.affinity_hits - base.affinity_hits) /
        static_cast<double>(requests ? requests : 1);
    state.counters["latency_p95_us"] = m.latency_p95 * 1e6;
    if (batch) {
        std::size_t batched =
            m.rhs_batched_requests - base.rhs_batched_requests;
        state.counters["rhs_batched_ratio"] =
            static_cast<double>(batched) /
            static_cast<double>(requests ? requests : 1);
        state.counters["rhs_batches"] = static_cast<double>(
            m.rhs_batches - base.rhs_batches);
    }
    state.counters["dies"] = static_cast<double>(kDies);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(kBurst));
    svc.stop();
}

void
BM_ServiceThroughputAffine(benchmark::State &state)
{
    serviceThroughputBenchmark(state, true);
}
// UseRealTime: the submitting thread blocks in drain() while the
// dies work, so wall clock — not this thread's CPU time — is the
// number solves/sec must come from.
BENCHMARK(BM_ServiceThroughputAffine)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void
BM_ServiceThroughputRoundRobin(benchmark::State &state)
{
    serviceThroughputBenchmark(state, false);
}
BENCHMARK(BM_ServiceThroughputRoundRobin)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/** The affine scheduler with batch_multi_rhs on: each die's grouped
 *  same-pattern run executes as one solveBatch, paying the cache
 *  fetch and eigen analysis once per group, and members after the
 *  first reuse the range the first member's ladder discovered —
 *  one attempt, no config bytes for this workload's scaled RHS.
 *  Compare items_per_second and config_bytes_per_req against the
 *  affine lane for the amortization. */
void
BM_ServiceThroughputBatched(benchmark::State &state)
{
    serviceThroughputBenchmark(state, true, true);
}
BENCHMARK(BM_ServiceThroughputBatched)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/** The affine scheduler with pipelined per-die execution: persistent
 *  stager/executor pairs overlap off-die binding work (scaling,
 *  eigen analysis, staged config deltas) with on-die integration,
 *  and the CG fallback runs on its own lane. Same burst, same pool —
 *  compare items_per_second and die_occupancy against the barriered
 *  affine lane. The arg sweeps pipeline_depth (per-die FIFO bound);
 *  EXPERIMENTS.md records the occupancy-vs-depth table. */
void
BM_ServicePipelined(benchmark::State &state)
{
    serviceThroughputBenchmark(
        state, true, false, true,
        static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_ServicePipelined)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- sharded fleet -----------------------------------------------

constexpr std::size_t kPatterns = 8;
constexpr std::size_t kFleetBurst = kPatterns; ///< 1 req/pattern
constexpr std::size_t kDiesPerRack = 2;

/** Eight distinct 1D Poisson patterns (n = 4..11): far more
 *  patterns than a single rack's dies can keep resident at
 *  program_cache_capacity = 1, so an under-provisioned fleet
 *  recompiles and re-ships structures all day while a 4-rack fleet
 *  reaches one-warm-die-per-pattern steady state. */
struct FleetWorkload {
    std::vector<std::shared_ptr<const la::DenseMatrix>> mats;
    std::vector<la::Vector> rhs;

    FleetWorkload()
    {
        for (std::size_t p = 0; p < kPatterns; ++p) {
            auto sys = pde::assemblePoisson(
                1, 4 + p,
                [](double x, double, double) { return 1.0 + x; });
            mats.push_back(std::make_shared<const la::DenseMatrix>(
                sys.a.toDense()));
            rhs.push_back(sys.b);
        }
    }

    service::SolveRequest
    request(std::size_t i) const
    {
        service::SolveRequest r;
        std::size_t p = i % kPatterns;
        double f = 1.0 + 0.0625 * static_cast<double>(i % 7);
        r.a = mats[p];
        r.b = rhs[p];
        la::scale(f, r.b, r.b);
        return r;
    }
};

void
submitFleetBurstAndDrain(service::ShardedSolveService &fleet,
                         const FleetWorkload &work)
{
    std::vector<std::future<service::SolveResponse>> futures;
    futures.reserve(kFleetBurst);
    for (std::size_t i = 0; i < kFleetBurst; ++i)
        futures.push_back(fleet.submit(work.request(i)));
    fleet.drain();
    for (auto &f : futures)
        benchmark::DoNotOptimize(f.get().u.data());
}

/** Identical eight-pattern bursts against fleets of 1/2/4 racks
 *  (2 dies each, 1-slot program caches). Residency is the lever:
 *  more racks means more warm caches, fewer recompiles, and less
 *  config traffic per request — which is CPU work saved even on a
 *  single host core. Wall-clock scaling beyond that needs
 *  cores >= racks (same caveat as the multi-die benches). */
void
shardedThroughputBenchmark(benchmark::State &state, std::size_t racks)
{
    setLogLevel(LogLevel::Quiet);
    FleetWorkload work;

    analog::AnalogSolverOptions die_opts;
    die_opts.spec.variation.enabled = false;
    die_opts.spec.adc_noise_sigma = 0.0;
    die_opts.auto_calibrate = false;
    die_opts.die_seed = 40;
    die_opts.program_cache_capacity = 2;

    service::FleetOptions fopts;
    fopts.racks = racks;
    fopts.dies_per_rack = kDiesPerRack;
    fopts.shard.admission_capacity = kFleetBurst * 2;
    service::ShardedSolveService fleet(die_opts, fopts);

    submitFleetBurstAndDrain(fleet, work); // warm-up
    service::FleetMetrics base = fleet.metrics();

    for (auto _ : state)
        submitFleetBurstAndDrain(fleet, work);

    service::FleetMetrics m = fleet.metrics();
    std::size_t hits = m.cache_hits - base.cache_hits;
    std::size_t misses = m.cache_misses - base.cache_misses;
    std::size_t lookups = hits + misses;
    std::size_t requests = m.completed - base.completed;
    state.counters["steady_cache_hit_ratio"] =
        static_cast<double>(hits) /
        static_cast<double>(lookups ? lookups : 1);
    state.counters["config_bytes_per_req"] =
        static_cast<double>(m.config_bytes - base.config_bytes) /
        static_cast<double>(requests ? requests : 1);
    state.counters["replications"] =
        static_cast<double>(m.replications);
    state.counters["migrations"] = static_cast<double>(m.migrations);
    state.counters["racks"] = static_cast<double>(racks);
    state.counters["dies"] =
        static_cast<double>(racks * kDiesPerRack);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(kFleetBurst));
    fleet.stop();
}

void
BM_ServiceSharded1Racks(benchmark::State &state)
{
    shardedThroughputBenchmark(state, 1);
}
BENCHMARK(BM_ServiceSharded1Racks)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void
BM_ServiceSharded2Racks(benchmark::State &state)
{
    shardedThroughputBenchmark(state, 2);
}
BENCHMARK(BM_ServiceSharded2Racks)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void
BM_ServiceSharded4Racks(benchmark::State &state)
{
    shardedThroughputBenchmark(state, 4);
}
BENCHMARK(BM_ServiceSharded4Racks)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/** Weighted-fair admission under flood: tenant "batch" (weight 1)
 *  submits 2.5x its share every burst while "interactive" (weight 3)
 *  stays inside its quota. The gate must keep interactive's
 *  completions at its full submission rate and bounce the overflow
 *  with RejectedQuota — starvation would show up as
 *  interactive_completed_ratio < 1. */
void
BM_ServiceTenantFairness(benchmark::State &state)
{
    setLogLevel(LogLevel::Quiet);
    Workload work;

    analog::AnalogSolverOptions die_opts;
    die_opts.spec.variation.enabled = false;
    die_opts.spec.adc_noise_sigma = 0.0;
    die_opts.auto_calibrate = false;
    die_opts.die_seed = 40;
    die_opts.program_cache_capacity = 1;

    service::FleetOptions fopts;
    fopts.racks = 1;
    fopts.dies_per_rack = kDiesPerRack;
    fopts.shard.admission_capacity = 16; // quotas: 12 / 4
    fopts.shard.tenants = {{"interactive", 3.0}, {"batch", 1.0}};
    service::ShardedSolveService fleet(die_opts, fopts);

    const std::size_t kBatchFlood = 10;
    const std::size_t kInteractive = 4;
    std::size_t interactive_sent = 0, interactive_done = 0;
    std::size_t quota_bounced = 0, completed = 0;

    auto burst = [&] {
        std::vector<std::future<service::SolveResponse>> futures;
        // The flood lands first every burst; fairness means the
        // interactive tenant still gets its full share.
        for (std::size_t i = 0; i < kBatchFlood; ++i) {
            auto r = work.request(i);
            r.tenant = "batch";
            futures.push_back(fleet.submit(std::move(r)));
        }
        for (std::size_t i = 0; i < kInteractive; ++i) {
            auto r = work.request(i);
            r.tenant = "interactive";
            futures.push_back(fleet.submit(std::move(r)));
            ++interactive_sent;
        }
        fleet.drain();
        for (std::size_t i = 0; i < futures.size(); ++i) {
            service::SolveResponse r = futures[i].get();
            if (r.status == service::RequestStatus::Ok) {
                ++completed;
                if (i >= kBatchFlood)
                    ++interactive_done;
            } else if (r.status ==
                       service::RequestStatus::RejectedQuota) {
                ++quota_bounced;
            }
        }
    };

    burst(); // warm-up
    for (auto _ : state)
        burst();

    state.counters["interactive_completed_ratio"] =
        static_cast<double>(interactive_done) /
        static_cast<double>(interactive_sent ? interactive_sent : 1);
    state.counters["quota_rejects_per_burst"] =
        static_cast<double>(quota_bounced) /
        static_cast<double>(state.iterations() + 1);
    state.SetItemsProcessed(static_cast<std::int64_t>(completed));
    fleet.stop();
}
BENCHMARK(BM_ServiceTenantFairness)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

} // namespace
