/**
 * @file
 * Solve-request service throughput: the cache-affine scheduler vs the
 * round-robin baseline on a mixed two-pattern workload over a
 * three-die pool. Both benchmarks push identical request bursts
 * through an identical pool; the only difference is
 * ServiceOptions::cache_affinity. The die count is deliberately odd:
 * with an even pool a strictly alternating two-pattern trace would
 * make round-robin accidentally affine (die k always sees the same
 * pattern), hiding exactly the effect under test.
 *
 * Each die's program cache is capped at one resident structure
 * (program_cache_capacity = 1 — the contended on-die program memory
 * regime), and a warm-up burst runs before the timed loop so the
 * counters measure steady state: the affine scheduler holds the
 * ProgramCache hit ratio at 1.0 (every pattern stays resident on its
 * home die) while round-robin keeps evicting and recompiling as the
 * two patterns alternate across every die. The JSON artifact
 * (BENCH_service.json) records steady_cache_hit_ratio,
 * config_bytes_per_req, and affinity_ratio alongside the solves/sec
 * items_per_second rate.
 */

#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "aa/analog/die_pool.hh"
#include "aa/common/logging.hh"
#include "aa/pde/poisson.hh"
#include "aa/service/service.hh"
#include "bench_util.hh"

namespace {

using namespace aa;

const bool g_build_context = [] {
    aa::bench::recordBuildContext(
        [](const char *k, const std::string &v) {
            benchmark::AddCustomContext(k, v);
        });
    return true;
}();

constexpr std::size_t kDies = 3;
constexpr std::size_t kBurst = 24; ///< requests per timed iteration

/** The two-pattern workload: a dense 2D Poisson operator (n = 9) and
 *  a tridiagonal 1D operator (n = 8) with nonzero forcings. */
struct Workload {
    std::shared_ptr<const la::DenseMatrix> a2d, a1d;
    la::Vector b2d, b1d;

    Workload()
    {
        auto p2 = pde::assemblePoisson(
            2, 3, [](double x, double y, double) { return x + y; });
        auto p1 = pde::assemblePoisson(
            1, 8, [](double x, double, double) { return 1.0 + x; });
        a2d = std::make_shared<const la::DenseMatrix>(
            p2.a.toDense());
        a1d = std::make_shared<const la::DenseMatrix>(
            p1.a.toDense());
        b2d = p2.b;
        b1d = p1.b;
    }

    /** Request i of a burst: alternate patterns, vary the RHS so the
     *  delta-reconfiguration path has real bias updates to ship. */
    service::SolveRequest
    request(std::size_t i) const
    {
        service::SolveRequest r;
        double f = 1.0 + 0.0625 * static_cast<double>(i % 7);
        if (i % 2 == 0) {
            r.a = a2d;
            r.b = b2d;
        } else {
            r.a = a1d;
            r.b = b1d;
        }
        la::scale(f, r.b, r.b);
        return r;
    }
};

void
submitBurstAndDrain(service::SolveService &svc, const Workload &work)
{
    std::vector<std::future<service::SolveResponse>> futures;
    futures.reserve(kBurst);
    for (std::size_t i = 0; i < kBurst; ++i)
        futures.push_back(svc.submit(work.request(i)));
    svc.drain();
    for (auto &f : futures)
        benchmark::DoNotOptimize(f.get().u.data());
}

void
serviceThroughputBenchmark(benchmark::State &state, bool affinity,
                           bool batch = false)
{
    setLogLevel(LogLevel::Quiet);
    Workload work;

    analog::AnalogSolverOptions die_opts;
    die_opts.spec.variation.enabled = false;
    die_opts.spec.adc_noise_sigma = 0.0;
    die_opts.auto_calibrate = false;
    die_opts.die_seed = 40;
    die_opts.program_cache_capacity = 1;
    analog::DiePool pool(kDies, die_opts);

    service::ServiceOptions sopts;
    sopts.cache_affinity = affinity;
    sopts.batch_multi_rhs = batch;
    sopts.queue_capacity = kBurst * 2;
    service::SolveService svc(pool, sopts);

    // Warm-up: first-touch compiles and calibration happen here, so
    // the timed loop (and the counters below) see steady state.
    submitBurstAndDrain(svc, work);
    service::ServiceMetrics base = svc.metrics();

    for (auto _ : state)
        submitBurstAndDrain(svc, work);

    service::ServiceMetrics m = svc.metrics();
    std::size_t hits = m.cache_hits - base.cache_hits;
    std::size_t misses = m.cache_misses - base.cache_misses;
    std::size_t lookups = hits + misses;
    std::size_t requests = m.ok - base.ok;
    state.counters["steady_cache_hit_ratio"] =
        static_cast<double>(hits) /
        static_cast<double>(lookups ? lookups : 1);
    state.counters["steady_cache_misses"] =
        static_cast<double>(misses);
    state.counters["config_bytes_per_req"] =
        static_cast<double>(m.config_bytes - base.config_bytes) /
        static_cast<double>(requests ? requests : 1);
    state.counters["affinity_ratio"] =
        static_cast<double>(m.affinity_hits - base.affinity_hits) /
        static_cast<double>(requests ? requests : 1);
    state.counters["latency_p95_us"] = m.latency_p95 * 1e6;
    if (batch) {
        std::size_t batched =
            m.rhs_batched_requests - base.rhs_batched_requests;
        state.counters["rhs_batched_ratio"] =
            static_cast<double>(batched) /
            static_cast<double>(requests ? requests : 1);
        state.counters["rhs_batches"] = static_cast<double>(
            m.rhs_batches - base.rhs_batches);
    }
    state.counters["dies"] = static_cast<double>(kDies);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(kBurst));
    svc.stop();
}

void
BM_ServiceThroughputAffine(benchmark::State &state)
{
    serviceThroughputBenchmark(state, true);
}
// UseRealTime: the submitting thread blocks in drain() while the
// dies work, so wall clock — not this thread's CPU time — is the
// number solves/sec must come from.
BENCHMARK(BM_ServiceThroughputAffine)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void
BM_ServiceThroughputRoundRobin(benchmark::State &state)
{
    serviceThroughputBenchmark(state, false);
}
BENCHMARK(BM_ServiceThroughputRoundRobin)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/** The affine scheduler with batch_multi_rhs on: each die's grouped
 *  same-pattern run executes as one solveBatch, paying the cache
 *  fetch and eigen analysis once per group, and members after the
 *  first reuse the range the first member's ladder discovered —
 *  one attempt, no config bytes for this workload's scaled RHS.
 *  Compare items_per_second and config_bytes_per_req against the
 *  affine lane for the amortization. */
void
BM_ServiceThroughputBatched(benchmark::State &state)
{
    serviceThroughputBenchmark(state, true, true);
}
BENCHMARK(BM_ServiceThroughputBatched)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

} // namespace
