/**
 * @file
 * Ablation: which analog non-idealities cost how much accuracy, and
 * what calibration buys back (Section III-B's offset/gain/
 * nonlinearity story, quantified). One fixed problem is solved on a
 * ladder of increasingly realistic dies.
 */

#include "aa/analog/solver.hh"
#include "aa/la/direct.hh"
#include "aa/pde/poisson.hh"
#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace aa;
    bool tsv = bench::tsvMode(argc, argv);
    bench::quietLogs();

    auto problem = pde::assemblePoisson(
        2, 3, [](double x, double y, double) { return x + y; });
    la::DenseMatrix a = problem.a.toDense();
    la::Vector exact = la::solveDense(a, problem.b);
    double uscale = la::normInf(exact);

    struct Config {
        const char *name;
        bool variation;
        bool calibrate;
        double noise;
        circuit::SimMode mode;
    } ladder[] = {
        {"ideal blocks, ideal dynamics", false, false, 0.0,
         circuit::SimMode::Ideal},
        {"ideal blocks, bandwidth-limited", false, false, 0.0,
         circuit::SimMode::Bandwidth},
        {"process variation, no calibration", true, false, 0.0,
         circuit::SimMode::Bandwidth},
        {"process variation + calibration", true, true, 0.0,
         circuit::SimMode::Bandwidth},
        {"+ ADC noise (1e-3)", true, true, 1e-3,
         circuit::SimMode::Bandwidth},
        {"+ ADC noise (1e-2)", true, true, 1e-2,
         circuit::SimMode::Bandwidth},
    };

    TextTable table("non-ideality ladder: single-run error across "
                    "three dies (max over u, relative to peak)");
    table.setHeader({"configuration", "die 1", "die 2", "die 3"});

    for (const auto &c : ladder) {
        std::vector<std::string> row{c.name};
        for (std::uint64_t die : {101u, 202u, 303u}) {
            analog::AnalogSolverOptions opts;
            opts.spec.variation.enabled = c.variation;
            opts.spec.adc_noise_sigma = c.noise;
            opts.spec.mode = c.mode;
            opts.auto_calibrate = c.calibrate;
            opts.die_seed = die;
            opts.adc_samples = 8;
            analog::AnalogLinearSolver solver(opts);
            auto out = solver.solve(a, problem.b);
            row.push_back(TextTable::sci(
                la::maxAbsDiff(out.u, exact) / uscale, 2));
        }
        table.addRow(row);
    }
    bench::emit(table, tsv);

    TextTable note("reading");
    note.setHeader({"note"});
    note.addRow({"calibration pulls the variation error back near "
                 "the quantization floor (~1/256)"});
    note.addRow({"averaged reads (analogAvg x8) absorb small ADC "
                 "noise; large noise dominates again"});
    bench::emit(note, tsv);
    return 0;
}
