/**
 * @file
 * Table III: time, area (hardware), and energy scaling trends for
 * analog acceleration vs conjugate gradients across 1D/2D/3D
 * connectivity. The exponents are FIT from swept measurements — the
 * analog series from the cost model (validated against circuit
 * simulation in fig8), the CG series from real solver runs — and
 * compared against the paper's stated trends:
 *
 *   analog: HW ~ N, time ~ N (2D), energy ~ N^2
 *   CG:     steps ~ sqrt(N) (2D), time ~ N^1.5 (2D), ~N (3D)
 */

#include <cmath>

#include "aa/common/stats.hh"
#include "aa/cost/digital.hh"
#include "aa/cost/model.hh"
#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace aa;
    bool tsv = bench::tsvMode(argc, argv);
    bench::quietLogs();

    auto design = cost::prototypeDesign();
    cost::CpuModel cpu;

    struct Fit {
        double hw, time, energy, cg_steps, cg_time;
    };
    Fit fits[3];

    // Flatten every (dim, side) pair into one task list so the sweep
    // keeps all workers busy across dimensions (the CG runs dominate
    // and their cost varies widely). Fits stay serial: they need the
    // whole per-dimension series.
    struct Task {
        std::size_t dim, l;
    };
    std::vector<Task> tasks;
    for (std::size_t dim : {1u, 2u, 3u}) {
        std::vector<std::size_t> sides;
        if (dim == 1)
            sides = {64, 128, 256, 512};
        else if (dim == 2)
            sides = {8, 12, 16, 24};
        else
            sides = {4, 6, 8, 10};
        for (std::size_t l : sides)
            tasks.push_back({dim, l});
    }

    struct Meas {
        double n, hw, time, energy, steps, cg_time;
    };
    auto meas = bench::sweep(tasks.size(), [&](std::size_t i) {
        cost::PoissonShape shape{tasks[i].dim, tasks[i].l};
        auto units = design.unitsFor(shape);
        auto m = cost::measureCgPoisson(tasks[i].dim, tasks[i].l, 8,
                                        cpu, 1);
        return Meas{static_cast<double>(shape.gridPoints()),
                    static_cast<double>(
                        units.integrators + units.multipliers +
                        units.fanouts + units.adcs + units.dacs),
                    design.solveTimeSeconds(shape),
                    design.solveEnergyJoules(shape),
                    static_cast<double>(m.iterations),
                    m.model_seconds};
    });

    for (std::size_t dim : {1u, 2u, 3u}) {
        std::vector<double> ns, hw, time, energy, steps, cg_time;
        for (std::size_t i = 0; i < tasks.size(); ++i) {
            if (tasks[i].dim != dim)
                continue;
            ns.push_back(meas[i].n);
            hw.push_back(meas[i].hw);
            time.push_back(meas[i].time);
            energy.push_back(meas[i].energy);
            steps.push_back(meas[i].steps);
            cg_time.push_back(meas[i].cg_time);
        }
        Fit &f = fits[dim - 1];
        f.hw = fitPowerLaw(ns, hw).slope;
        f.time = fitPowerLaw(ns, time).slope;
        f.energy = fitPowerLaw(ns, energy).slope;
        f.cg_steps = fitPowerLaw(ns, steps).slope;
        f.cg_time = fitPowerLaw(ns, cg_time).slope;
    }

    TextTable table("Table III: fitted scaling exponents p in "
                    "metric ~ N^p (paper expectation in parens)");
    table.setHeader({"connectivity", "analog HW", "analog time",
                     "analog energy", "CG steps", "CG time+energy"});
    const char *expect_hw[] = {"(1)", "(1)", "(1)"};
    const char *expect_time[] = {"(2)", "(1)", "(0.67)"};
    const char *expect_energy[] = {"(3)", "(2)", "(1.67)"};
    const char *expect_steps[] = {"(1)", "(0.5)", "(weak ~0.33)"};
    const char *expect_cgtime[] = {"(2)", "(1.5)", "(~1.33)"};
    const char *dims[] = {"1D", "2D", "3D"};
    for (int d = 0; d < 3; ++d) {
        auto cell = [](double v, const char *e) {
            return TextTable::num(v, 3) + " " + e;
        };
        table.addRow({dims[d], cell(fits[d].hw, expect_hw[d]),
                      cell(fits[d].time, expect_time[d]),
                      cell(fits[d].energy, expect_energy[d]),
                      cell(fits[d].cg_steps, expect_steps[d]),
                      cell(fits[d].cg_time, expect_cgtime[d])});
    }
    bench::emit(table, tsv);

    TextTable note("Table III notes");
    note.setHeader({"note"});
    note.addRow({"analog time ~ N^(2/d): the scaled lambda_min "
                 "shrinks as 1/L^2 regardless of dimension"});
    note.addRow({"the paper's 3D verdict — analog loses its edge — "
                 "follows from energy ~ N^(1+2/d) vs CG's ~N^(1+1/d)"});
    bench::emit(note, tsv);
    return 0;
}
