/**
 * @file
 * SPICE front-end microbenchmarks: deck parsing, MNA assembly, and
 * circuit matrices through the analog solve path — then a mixed
 * stencil + circuit service workload with the per-die program-cache
 * hit/miss/eviction counters recorded as benchmark counters.
 *
 * The mixed-service lanes are the headline: a circuit matrix is just
 * another sparsity structure to the ProgramCache, so a pool serving
 * both workload families at program_cache_capacity = 1 thrashes
 * exactly as the eviction counter says it does, while capacity 2
 * holds one structure of each family resident per die. The JSON
 * artifact (BENCH_spice.json) records steady_cache_hit_ratio and
 * steady_cache_evictions for both regimes.
 */

#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "aa/analog/die_pool.hh"
#include "aa/analog/refine.hh"
#include "aa/analog/solver.hh"
#include "aa/common/logging.hh"
#include "aa/la/vector.hh"
#include "aa/pde/poisson.hh"
#include "aa/service/service.hh"
#include "aa/spice/generate.hh"
#include "aa/spice/mna.hh"
#include "aa/spice/netlist.hh"
#include "bench_util.hh"

namespace {

using namespace aa;

const bool g_build_context = [] {
    aa::bench::recordBuildContext(
        [](const char *k, const std::string &v) {
            benchmark::AddCustomContext(k, v);
        });
    return true;
}();

/** Parse throughput on a generated grid deck (components/sec). */
void
BM_SpiceParse(benchmark::State &state)
{
    setLogLevel(LogLevel::Quiet);
    spice::GridSpec spec;
    spec.rows = spec.cols = static_cast<std::size_t>(state.range(0));
    std::string deck = spice::gridDeck(spec);
    std::size_t components = 0;
    for (auto _ : state) {
        spice::ParseResult r = spice::parseNetlistString(deck);
        benchmark::DoNotOptimize(r.netlist.components.data());
        components = r.netlist.components.size();
    }
    state.counters["components"] = static_cast<double>(components);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(components));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(deck.size()));
}
BENCHMARK(BM_SpiceParse)->Arg(4)->Arg(8)->Arg(16);

/** Parse + assemble: deck text to the reduced SPD system G v = i. */
void
BM_SpiceAssemble(benchmark::State &state)
{
    setLogLevel(LogLevel::Quiet);
    spice::GridSpec spec;
    spec.rows = spec.cols = static_cast<std::size_t>(state.range(0));
    std::string deck = spice::gridDeck(spec);
    std::size_t unknowns = 0, nnz = 0;
    for (auto _ : state) {
        spice::AssembleResult r = spice::assembleDeck(deck, {});
        benchmark::DoNotOptimize(r.system.g.rows());
        unknowns = r.system.g.rows();
        nnz = r.system.g.nnz();
    }
    state.counters["unknowns"] = static_cast<double>(unknowns);
    state.counters["nnz"] = static_cast<double>(nnz);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpiceAssemble)->Arg(4)->Arg(8)->Arg(16);

analog::AnalogSolverOptions
quietDie()
{
    analog::AnalogSolverOptions opts;
    opts.spec.variation.enabled = false;
    opts.spec.adc_noise_sigma = 0.0;
    opts.auto_calibrate = false;
    opts.die_seed = 40;
    return opts;
}

/** One verified analog solve of the grid MNA system. Circuit systems
 *  run at the single-run relative-residual floor (~0.2 here — the
 *  RHS norm is far below ||G|| ||v||), so verification accepts 0.5;
 *  the refine lane below is where tolerance is bought. */
void
BM_SpiceAnalogSolve(benchmark::State &state)
{
    setLogLevel(LogLevel::Quiet);
    spice::AssembleResult r =
        spice::assembleDeck(spice::gridDeck({3, 3}), {});
    la::DenseMatrix g = r.system.g.toDense();

    analog::AnalogLinearSolver solver(quietDie());
    analog::VerifyOptions vopts;
    vopts.rel_residual = 0.5;
    for (auto _ : state) {
        auto out = solver.solveVerified(g, r.system.i, {}, vopts);
        benchmark::DoNotOptimize(out.outcome.u.data());
    }
    state.counters["unknowns"] = static_cast<double>(g.rows());
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpiceAnalogSolve);

/** Algorithm-2 refinement of the same system to 1e-8 — the
 *  node-voltages-match-digital acceptance path. */
void
BM_SpiceRefine(benchmark::State &state)
{
    setLogLevel(LogLevel::Quiet);
    spice::AssembleResult r =
        spice::assembleDeck(spice::gridDeck({3, 3}), {});
    la::DenseMatrix g = r.system.g.toDense();

    analog::AnalogLinearSolver solver(quietDie());
    analog::RefineOptions ropts;
    ropts.tolerance = 1e-8;
    std::size_t passes = 0;
    for (auto _ : state) {
        auto out = analog::refineSolve(solver, g, r.system.i, ropts);
        benchmark::DoNotOptimize(out.u.data());
        passes = out.passes;
    }
    state.counters["refine_passes"] = static_cast<double>(passes);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpiceRefine);

// --- mixed stencil + circuit service traffic ----------------------

constexpr std::size_t kBurst = 24;

/** Interleaved traffic: a 2D Poisson stencil (n = 9) and the RC-grid
 *  MNA system (n = 9 after reduction) — same order, different
 *  sparsity structure and three-decades-smaller coefficients, so the
 *  two families share nothing in the program cache. */
struct MixedWorkload {
    std::shared_ptr<const la::DenseMatrix> stencil, circuit;
    la::Vector b_stencil, b_circuit;

    MixedWorkload()
    {
        auto p = pde::assemblePoisson(
            2, 3, [](double x, double y, double) { return x + y; });
        stencil =
            std::make_shared<const la::DenseMatrix>(p.a.toDense());
        b_stencil = p.b;

        spice::AssembleResult r =
            spice::assembleDeck(spice::gridDeck({3, 3}), {});
        circuit = std::make_shared<const la::DenseMatrix>(
            r.system.g.toDense());
        b_circuit = r.system.i;
    }

    service::SolveRequest
    request(std::size_t i) const
    {
        service::SolveRequest r;
        double f = 1.0 + 0.0625 * static_cast<double>(i % 7);
        if (i % 2 == 0) {
            r.a = stencil;
            r.b = b_stencil;
        } else {
            r.a = circuit;
            r.b = b_circuit;
        }
        la::scale(f, r.b, r.b);
        return r;
    }
};

/** Mixed traffic at the given per-die program-cache capacity, on
 *  ONE die with requests serialized (submit + drain each): a multi-
 *  die pool would home each family on its own die, and a paused
 *  burst coalesces same-pattern requests into one group — both hide
 *  the capacity pressure this lane exists to measure. At capacity 1
 *  every request evicts the other family's program (hit ratio 0,
 *  one eviction per request); at capacity 2 both structures stay
 *  resident and steady-state evictions are zero. */
void
mixedServiceBenchmark(benchmark::State &state, std::size_t capacity)
{
    setLogLevel(LogLevel::Quiet);
    MixedWorkload work;

    analog::AnalogSolverOptions die_opts = quietDie();
    die_opts.program_cache_capacity = capacity;
    analog::DiePool pool(1, die_opts);

    service::ServiceOptions sopts;
    sopts.queue_capacity = kBurst * 2;
    service::SolveService svc(pool, sopts);

    auto burst = [&] {
        for (std::size_t i = 0; i < kBurst; ++i) {
            auto f = svc.submit(work.request(i));
            svc.drain();
            benchmark::DoNotOptimize(f.get().u.data());
        }
    };

    burst(); // warm-up: first-touch compiles land here
    service::ServiceMetrics base = svc.metrics();

    for (auto _ : state)
        burst();

    service::ServiceMetrics m = svc.metrics();
    std::size_t hits = m.cache_hits - base.cache_hits;
    std::size_t misses = m.cache_misses - base.cache_misses;
    std::size_t lookups = hits + misses;
    state.counters["steady_cache_hit_ratio"] =
        static_cast<double>(hits) /
        static_cast<double>(lookups ? lookups : 1);
    state.counters["steady_cache_misses"] =
        static_cast<double>(misses);
    state.counters["steady_cache_evictions"] = static_cast<double>(
        m.cache_evictions - base.cache_evictions);
    state.counters["cache_capacity"] = static_cast<double>(capacity);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(kBurst));
    svc.stop();
}

void
BM_ServiceMixedThrash(benchmark::State &state)
{
    mixedServiceBenchmark(state, 1);
}
// UseRealTime: the submitting thread blocks in drain() while the
// dies work (same rationale as service_gbench).
BENCHMARK(BM_ServiceMixedThrash)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void
BM_ServiceMixedResident(benchmark::State &state)
{
    mixedServiceBenchmark(state, 2);
}
BENCHMARK(BM_ServiceMixedResident)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

} // namespace
