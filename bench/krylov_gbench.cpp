/**
 * @file
 * The analog-preconditioned Krylov lane's head-to-head (records
 * BENCH_krylov.json): FGMRES with one unrefined analog solve per
 * apply against unpreconditioned host FGMRES on convection-diffusion
 * (the system the pure gradient-flow mapping cannot serve at all),
 * and flexible CG both ways on the controlled-kappa SPD family.
 *
 * The headline counters are iteration counts, not wall time: the
 * simulator charges integration wall time per analog apply, so the
 * crossover story in EXPERIMENTS.md is "how many outer iterations
 * does one cheap ~8-bit analog apply save", with
 * precond_iteration_ratio >= 2 the acceptance bar for the lane.
 */

#include <cstdint>
#include <memory>

#include <benchmark/benchmark.h>

#include "aa/analog/solver.hh"
#include "aa/common/logging.hh"
#include "aa/la/dense_matrix.hh"
#include "aa/la/generate.hh"
#include "aa/la/operator.hh"
#include "aa/pde/convection.hh"
#include "aa/solver/krylov.hh"
#include "bench_util.hh"

namespace {

using namespace aa;

const bool g_build_context = [] {
    aa::bench::recordBuildContext(
        [](const char *k, const std::string &v) {
            benchmark::AddCustomContext(k, v);
        });
    return true;
}();

analog::AnalogSolverOptions
quietDie()
{
    analog::AnalogSolverOptions opts;
    opts.spec.variation.enabled = false;
    opts.spec.adc_noise_sigma = 0.0;
    opts.auto_calibrate = false;
    opts.die_seed = 40;
    return opts;
}

/** Analog-preconditioned FGMRES on convection-diffusion at cell
 *  Peclet 0.8 — one unrefined analog solve per outer apply. */
void
BM_PrecondFgmresConvection(benchmark::State &state)
{
    setLogLevel(LogLevel::Quiet);
    pde::ConvectionDiffusionProblem p = pde::convectionBenchmark(
        2, static_cast<std::size_t>(state.range(0)), 0.8, 7);
    la::DenseMatrix a = p.a.toDense();

    analog::AnalogLinearSolver solver(quietDie());
    analog::PrecondSolveOptions popts;
    popts.tolerance = 1e-8;
    analog::PreconditionedSolveOutcome out;
    for (auto _ : state) {
        out = solver.solvePreconditioned(a, p.b, popts);
        benchmark::DoNotOptimize(out.u.data());
    }
    state.counters["unknowns"] = static_cast<double>(a.rows());
    state.counters["outer_iterations"] =
        static_cast<double>(out.iterations);
    state.counters["precond_applies"] =
        static_cast<double>(out.precond_applies);
    state.counters["converged"] = out.converged ? 1.0 : 0.0;
    state.counters["analog_seconds_per_solve"] = out.analog_seconds;
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PrecondFgmresConvection)->Arg(4)->Arg(6);

/** The same systems through unpreconditioned host FGMRES — the
 *  iteration count the analog preconditioner must at least halve. */
void
BM_HostFgmresConvection(benchmark::State &state)
{
    setLogLevel(LogLevel::Quiet);
    pde::ConvectionDiffusionProblem p = pde::convectionBenchmark(
        2, static_cast<std::size_t>(state.range(0)), 0.8, 7);
    la::DenseMatrix a = p.a.toDense();
    la::DenseOperator op(a);

    solver::KrylovOptions o;
    o.tol = 1e-8;
    solver::KrylovResult r;
    for (auto _ : state) {
        r = solver::fgmres(op, p.b, solver::identityPreconditioner(),
                           o);
        benchmark::DoNotOptimize(r.x.data());
    }
    state.counters["unknowns"] = static_cast<double>(a.rows());
    state.counters["iterations"] = static_cast<double>(r.iterations);
    state.counters["converged"] = r.converged ? 1.0 : 0.0;
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HostFgmresConvection)->Arg(4)->Arg(6);

/** Flexible CG with the analog preconditioner on the controlled-
 *  kappa SPD family (range arg = kappa). */
void
BM_PrecondCgSpd(benchmark::State &state)
{
    setLogLevel(LogLevel::Quiet);
    const double kappa = static_cast<double>(state.range(0));
    la::DenseMatrix a = la::spdLogSpectrum(16, kappa, 11);
    la::Vector b = la::seededRhs(16, 13);

    analog::AnalogLinearSolver solver(quietDie());
    analog::PrecondSolveOptions popts;
    popts.tolerance = 1e-8;
    analog::PreconditionedSolveOutcome out;
    for (auto _ : state) {
        out = solver.solvePreconditioned(a, b, popts);
        benchmark::DoNotOptimize(out.u.data());
    }
    state.counters["kappa"] = kappa;
    state.counters["outer_iterations"] =
        static_cast<double>(out.iterations);
    state.counters["precond_applies"] =
        static_cast<double>(out.precond_applies);
    state.counters["converged"] = out.converged ? 1.0 : 0.0;
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PrecondCgSpd)->Arg(20)->Arg(100);

/** Unpreconditioned host CG on the same SPD instances. */
void
BM_HostCgSpd(benchmark::State &state)
{
    setLogLevel(LogLevel::Quiet);
    const double kappa = static_cast<double>(state.range(0));
    la::DenseMatrix a = la::spdLogSpectrum(16, kappa, 11);
    la::Vector b = la::seededRhs(16, 13);
    la::DenseOperator op(a);

    solver::KrylovOptions o;
    o.tol = 1e-8;
    solver::KrylovResult r;
    for (auto _ : state) {
        r = solver::flexibleCg(op, b,
                               solver::identityPreconditioner(), o);
        benchmark::DoNotOptimize(r.x.data());
    }
    state.counters["kappa"] = kappa;
    state.counters["iterations"] = static_cast<double>(r.iterations);
    state.counters["converged"] = r.converged ? 1.0 : 0.0;
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HostCgSpd)->Arg(20)->Arg(100);

} // namespace
