/**
 * @file
 * Shared helpers for the figure/table regeneration binaries: a
 * --tsv flag so outputs are machine-readable, the common quiet
 * solver options, and a parallel sweep driver for the independent
 * per-row solves.
 */

#ifndef AA_BENCH_BENCH_UTIL_HH
#define AA_BENCH_BENCH_UTIL_HH

#include <cstddef>
#include <cstring>
#include <iostream>
#include <vector>

#include "aa/common/logging.hh"
#include "aa/common/parallel.hh"
#include "aa/common/table.hh"

namespace aa::bench {

/** True when the binary was invoked with --tsv. */
inline bool
tsvMode(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--tsv") == 0)
            return true;
    return false;
}

/** Print a table in the selected format. */
inline void
emit(const TextTable &table, bool tsv)
{
    if (tsv)
        table.printTsv(std::cout);
    else
        table.print(std::cout);
}

/** Quiet the info chatter for clean bench output. */
inline void
quietLogs()
{
    setLogLevel(LogLevel::Quiet);
}

/**
 * Parallel sweep: results[i] = fn(i), fanned across AASIM_THREADS
 * workers. A thin alias for aa::parallelMap so the benches and the
 * library's multi-die scheduler share one pool/merge implementation
 * and one thread-count knob; see common/parallel.hh for the ownership
 * and determinism contract.
 */
template <typename Fn>
auto
sweep(std::size_t n, Fn &&fn)
{
    return parallelMap(n, std::forward<Fn>(fn));
}

} // namespace aa::bench

#endif // AA_BENCH_BENCH_UTIL_HH
