/**
 * @file
 * Shared helpers for the figure/table regeneration binaries: a
 * --tsv flag so outputs are machine-readable, the common quiet
 * solver options, and a parallel sweep driver for the independent
 * per-row solves.
 */

#ifndef AA_BENCH_BENCH_UTIL_HH
#define AA_BENCH_BENCH_UTIL_HH

#include <cstddef>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "aa/common/logging.hh"
#include "aa/common/parallel.hh"
#include "aa/common/table.hh"

namespace aa::bench {

/**
 * CMake build type this translation unit was compiled under
 * (RelWithDebInfo, Debug, ...). Injected by bench/CMakeLists.txt;
 * "unknown" means the binary was built outside the CMake tree.
 */
inline const char *
buildType()
{
#ifdef AA_BUILD_TYPE
    return AA_BUILD_TYPE;
#else
    return "unknown";
#endif
}

/** Compiler id + version, e.g. "gcc 12.2.0" or "clang 15.0.7". */
inline std::string
compilerId()
{
#if defined(__clang__)
    return std::string("clang ") + std::to_string(__clang_major__) +
           "." + std::to_string(__clang_minor__) + "." +
           std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
    return std::string("gcc ") + std::to_string(__GNUC__) + "." +
           std::to_string(__GNUC_MINOR__) + "." +
           std::to_string(__GNUC_PATCHLEVEL__);
#else
    return "unknown";
#endif
}

/** The effective CXX flags the bench objects were compiled with. */
inline const char *
buildFlags()
{
#ifdef AA_CXX_FLAGS
    return AA_CXX_FLAGS;
#else
    return "unknown";
#endif
}

/**
 * Record the build provenance of *this* binary into a bench artifact
 * via the caller-supplied add(key, value) sink (the gbench binaries
 * pass benchmark::AddCustomContext). google-benchmark's own
 * "library_build_type" context key describes how *libbenchmark* was
 * built (debug on this system), not our code, which is why a past
 * BENCH_kernels.json read as a debug capture despite -O2 objects —
 * these keys make the artifact's real optimization level auditable,
 * and tools/check.sh warns when aasim_build_type reads Debug.
 */
template <typename AddFn>
inline void
recordBuildContext(AddFn &&add)
{
    add("aasim_build_type", std::string(buildType()));
    add("aasim_compiler", compilerId());
    add("aasim_cxx_flags", std::string(buildFlags()));
}

/** True when the binary was invoked with --tsv. */
inline bool
tsvMode(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--tsv") == 0)
            return true;
    return false;
}

/** Print a table in the selected format. */
inline void
emit(const TextTable &table, bool tsv)
{
    if (tsv)
        table.printTsv(std::cout);
    else
        table.print(std::cout);
}

/** Quiet the info chatter for clean bench output. */
inline void
quietLogs()
{
    setLogLevel(LogLevel::Quiet);
}

/**
 * Parallel sweep: results[i] = fn(i), fanned across AASIM_THREADS
 * workers. A thin alias for aa::parallelMap so the benches and the
 * library's multi-die scheduler share one pool/merge implementation
 * and one thread-count knob; see common/parallel.hh for the ownership
 * and determinism contract.
 */
template <typename Fn>
auto
sweep(std::size_t n, Fn &&fn)
{
    return parallelMap(n, std::forward<Fn>(fn));
}

} // namespace aa::bench

#endif // AA_BENCH_BENCH_UTIL_HH
