/**
 * @file
 * Shared helpers for the figure/table regeneration binaries: a
 * --tsv flag so outputs are machine-readable, and the common quiet
 * solver options.
 */

#ifndef AA_BENCH_BENCH_UTIL_HH
#define AA_BENCH_BENCH_UTIL_HH

#include <cstring>
#include <iostream>

#include "aa/common/logging.hh"
#include "aa/common/table.hh"

namespace aa::bench {

/** True when the binary was invoked with --tsv. */
inline bool
tsvMode(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--tsv") == 0)
            return true;
    return false;
}

/** Print a table in the selected format. */
inline void
emit(const TextTable &table, bool tsv)
{
    if (tsv)
        table.printTsv(std::cout);
    else
        table.print(std::cout);
}

/** Quiet the info chatter for clean bench output. */
inline void
quietLogs()
{
    setLogLevel(LogLevel::Quiet);
}

} // namespace aa::bench

#endif // AA_BENCH_BENCH_UTIL_HH
