/**
 * @file
 * Shared helpers for the figure/table regeneration binaries: a
 * --tsv flag so outputs are machine-readable, the common quiet
 * solver options, and a parallel sweep driver for the independent
 * per-row solves.
 */

#ifndef AA_BENCH_BENCH_UTIL_HH
#define AA_BENCH_BENCH_UTIL_HH

#include <cstddef>
#include <cstring>
#include <iostream>
#include <vector>

#include "aa/common/logging.hh"
#include "aa/common/parallel.hh"
#include "aa/common/table.hh"

namespace aa::bench {

/** True when the binary was invoked with --tsv. */
inline bool
tsvMode(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--tsv") == 0)
            return true;
    return false;
}

/** Print a table in the selected format. */
inline void
emit(const TextTable &table, bool tsv)
{
    if (tsv)
        table.printTsv(std::cout);
    else
        table.print(std::cout);
}

/** Quiet the info chatter for clean bench output. */
inline void
quietLogs()
{
    setLogLevel(LogLevel::Quiet);
}

/**
 * Parallel sweep: results[i] = fn(i) with one independent task per
 * index, fanned across defaultThreadCount() workers (AASIM_THREADS
 * overrides; 1 runs inline). Each task must own all mutable solver
 * state — one Simulator/die per task, netlists shared read-only —
 * and results merge by index, so the emitted tables are identical
 * whatever the thread count.
 */
template <typename Fn>
auto
sweep(std::size_t n, Fn &&fn)
{
    using T = decltype(fn(std::size_t{0}));
    std::vector<T> out(n);
    parallelFor(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
}

} // namespace aa::bench

#endif // AA_BENCH_BENCH_UTIL_HH
