/**
 * @file
 * Ablation (Section II-B): "there is a trade-off between ADC
 * sampling frequency and resolution, so in this work we use only the
 * steady-state result of analog computing". Quantified: the Figure-1
 * waveform is read through the chip's ADCs at increasing output
 * densities; each doubling of sampling rate beyond the ADC's
 * full-resolution rate costs one effective bit, and the waveform
 * error grows accordingly — while the steady-state value, sampled
 * slowly, keeps full resolution.
 */

#include <cmath>

#include "aa/analog/ode_runner.hh"
#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace aa;
    bool tsv = bench::tsvMode(argc, argv);
    bench::quietLogs();

    // du/dt = -2u + 1 from 0: u(t) = 0.5(1 - e^-2t).
    la::DenseMatrix a = la::DenseMatrix::fromRows({{-2.0}});
    la::Vector b{1.0};
    const double t_end = 2.5;

    analog::AnalogSolverOptions opts;
    opts.spec.variation.enabled = false;
    opts.spec.adc_noise_sigma = 0.0;
    opts.auto_calibrate = false;
    // A faster converter than the prototype's (full resolution to
    // 200 kS/s) so the sweep spans the whole bits-vs-rate curve;
    // with the prototype's 1 kS/s every transient capture is already
    // floored at the minimum width.
    opts.spec.adc_full_res_rate_hz = 2e5;
    analog::AnalogOdeSolver runner(opts);

    TextTable table("waveform readout through the ADC: samples "
                    "requested vs effective bits vs error");
    table.setHeader({"samples over the run", "implied rate (S/s)",
                     "effective bits", "max waveform error",
                     "rms waveform error"});

    for (std::size_t samples : {4u, 16u, 64u, 256u}) {
        analog::OdeRunOptions ropts;
        ropts.samples = samples;
        ropts.read_via_adc = true;
        auto wave =
            runner.simulate(a, b, la::Vector{0.0}, t_end, ropts);

        double max_err = 0.0, sum_sq = 0.0;
        for (std::size_t k = 0; k < wave.times.size(); ++k) {
            double t = wave.times[k];
            double closed = 0.5 * (1.0 - std::exp(-2.0 * t));
            double e = wave.states[k][0] - closed;
            max_err = std::max(max_err, std::fabs(e));
            sum_sq += e * e;
        }
        double rms = std::sqrt(
            sum_sq / static_cast<double>(wave.times.size()));
        double rate = static_cast<double>(samples) /
                      (t_end / wave.time_scale);
        table.addRow({std::to_string(samples),
                      TextTable::sci(rate, 2),
                      std::to_string(wave.effective_adc_bits),
                      TextTable::num(max_err, 3),
                      TextTable::num(rms, 3)});
    }
    bench::emit(table, tsv);

    TextTable note("reading");
    note.setHeader({"note"});
    note.addRow({"denser waveforms force faster conversions and "
                 "cost bits: the Section II-B trade"});
    note.addRow({"the linear-algebra flow sidesteps it by sampling "
                 "only the steady state at full resolution"});
    bench::emit(note, tsv);
    return 0;
}
