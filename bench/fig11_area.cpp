/**
 * @file
 * Figure 11: silicon area of the analog accelerator designs as a
 * function of the grid points they hold, from Table II unit areas
 * with the core fraction scaled by bandwidth. High-bandwidth designs
 * blow through the 600 mm^2 ceiling at small problem sizes.
 */

#include "aa/cost/model.hh"
#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace aa;
    bool tsv = bench::tsvMode(argc, argv);
    bench::quietLogs();

    cost::AcceleratorDesign designs[] = {
        cost::prototypeDesign(), cost::design80kHz(),
        cost::design320kHz(), cost::design1300kHz()};

    TextTable fig("Figure 11: area (mm^2) vs grid points (2D "
                  "Poisson inventory); ceiling = 600 mm^2");
    fig.setHeader({"grid points", "20KHz", "80KHz", "320KHz",
                   "1.3MHz"});
    for (std::size_t l :
         {8u, 12u, 16u, 20u, 25u, 29u, 33u, 37u, 40u, 43u, 45u}) {
        cost::PoissonShape shape{2, l};
        std::vector<std::string> row{
            std::to_string(shape.gridPoints())};
        for (auto &d : designs) {
            row.push_back(TextTable::num(
                d.areaMm2(d.unitsFor(shape)), 4));
        }
        fig.addRow(row);
    }
    bench::emit(fig, tsv);

    TextTable note("Figure 11/Section V-A anchor");
    note.setHeader({"claim", "paper", "this model"});
    cost::PoissonShape p650{2, 25}; // 625 ~ the 650-integrator point
    note.addRow(
        {"area of a ~650-integrator 20KHz accelerator (mm^2)",
         "~150",
         TextTable::num(designs[0].areaMm2(
                            designs[0].unitsFor(p650)),
                        4)});
    bench::emit(note, tsv);
    return 0;
}
