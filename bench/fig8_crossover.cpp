/**
 * @file
 * Figure 8: time to converge to equivalent precision — analog
 * accelerator vs digital CG — against the number of 2D grid points,
 * with the paper's headline "parity at roughly 650 integrators" for
 * the 20 KHz design.
 *
 * Methodology mirrors the paper: the analog series is *measured* from
 * full circuit simulation at small N (our stand-in for their
 * prototype + Cadence runs) and *modelled* beyond; the digital series
 * is real stencil CG (measured iterations) priced with the paper's
 * 20-cycles-per-row-iteration Xeon model, plus this machine's wall
 * clock for reference.
 */

#include <cmath>
#include <vector>

#include "aa/analog/solver.hh"
#include "aa/cost/digital.hh"
#include "aa/cost/model.hh"
#include "aa/pde/poisson.hh"
#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace aa;
    bool tsv = bench::tsvMode(argc, argv);
    bench::quietLogs();

    auto proto = cost::prototypeDesign();
    cost::AcceleratorDesign proj80(80e3, 8); // iso-precision 80 KHz
    cost::CpuModel cpu;

    // --- Part 1: circuit-simulation measurements at small N -------
    // One independent solve per worker: each task builds its own die
    // (solver), so the sweep fans across AASIM_THREADS workers while
    // the merged rows stay identical to a serial run (variation and
    // ADC noise are off; the solves are deterministic).
    const std::vector<std::size_t> meas_levels{2, 3, 4, 5};
    struct MeasuredRow {
        std::size_t points;
        double sim_s;
        double model_s;
    };
    auto meas_rows = bench::sweep(meas_levels.size(), [&](
                                      std::size_t i) {
        std::size_t l = meas_levels[i];
        analog::AnalogSolverOptions sopts;
        sopts.spec.variation.enabled = false;
        sopts.spec.adc_noise_sigma = 0.0;
        sopts.auto_calibrate = false;
        sopts.underrange_threshold = -1.0;
        analog::AnalogLinearSolver solver(sopts);
        auto prob = pde::assemblePoisson(
            2, l, pde::zeroSource(),
            [](double x, double, double) {
                return x == 0.0 ? 0.4 : 0.0;
            });
        la::Vector b = prob.b;
        // Keep the bias range from dominating the scaling so the
        // measurement matches the model's gain-driven regime.
        double cap = 0.5 * prob.a.maxAbs() / sopts.spec.max_gain;
        la::scale(cap / la::normInf(b), b, b);
        auto out = solver.solve(prob.a.toDense(), b);
        double model =
            proto.solveTimeSeconds(cost::PoissonShape{2, l});
        return MeasuredRow{l * l, out.analog_seconds, model};
    });

    TextTable measured(
        "Figure 8a: measured analog solve time (full circuit "
        "simulation, 20 KHz die)");
    measured.setHeader({"grid points", "circuit-sim time (s)",
                        "model time (s)", "ratio"});
    for (const MeasuredRow &r : meas_rows)
        measured.addRow({std::to_string(r.points),
                         TextTable::sci(r.sim_s, 3),
                         TextTable::sci(r.model_s, 3),
                         TextTable::num(r.sim_s / r.model_s, 3)});
    bench::emit(measured, tsv);

    // --- Part 2: the figure's series ------------------------------
    // The deterministic columns (CG iterations, model times, analog
    // projections) sweep in parallel; host wall clocks are re-measured
    // serially afterwards so concurrent workers don't distort them.
    const std::vector<std::size_t> sides{4,  6,  8,  11, 16, 20, 23,
                                         26, 28, 30, 32, 34, 36, 38,
                                         40};
    struct FigRow {
        std::size_t points;
        double cg_model_s;
        double analog20_s;
        double analog80_s;
        std::size_t iters;
    };
    auto fig_rows = bench::sweep(sides.size(), [&](std::size_t i) {
        std::size_t l = sides[i];
        auto m = cost::measureCgPoisson(2, l, 8, cpu, 1);
        cost::PoissonShape shape{2, l};
        return FigRow{shape.gridPoints(), m.model_seconds,
                      proto.solveTimeSeconds(shape),
                      proj80.solveTimeSeconds(shape), m.iterations};
    });
    std::vector<double> wall_s(sides.size());
    for (std::size_t i = 0; i < sides.size(); ++i)
        wall_s[i] =
            cost::measureCgPoisson(2, sides[i], 8, cpu, 3).wall_seconds;

    TextTable fig("Figure 8b: convergence time vs total grid points "
                  "(2D Poisson, equivalent precision 1/256)");
    fig.setHeader({"grid points", "digital CG model (s)",
                   "digital CG wall (s)", "analog 20KHz (s)",
                   "analog 80KHz proj (s)", "CG iters"});
    std::size_t crossover = 0;
    for (std::size_t i = 0; i < fig_rows.size(); ++i) {
        const FigRow &r = fig_rows[i];
        if (crossover == 0 && r.analog20_s <= r.cg_model_s)
            crossover = r.points;
        fig.addRow({std::to_string(r.points),
                    TextTable::sci(r.cg_model_s, 3),
                    TextTable::sci(wall_s[i], 3),
                    TextTable::sci(r.analog20_s, 3),
                    TextTable::sci(r.analog80_s, 3),
                    std::to_string(r.iters)});
    }
    bench::emit(fig, tsv);

    TextTable summary("Figure 8 reading");
    summary.setHeader({"claim", "paper", "this reproduction"});
    summary.addRow({"20KHz analog/CPU speed parity (grid points)",
                    "~650",
                    crossover ? std::to_string(crossover)
                              : std::string("beyond range")});
    summary.addRow({"analog time scaling in N", "linear",
                    "linear (see Table 3 bench)"});
    bench::emit(summary, tsv);
    return 0;
}
