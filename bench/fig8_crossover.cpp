/**
 * @file
 * Figure 8: time to converge to equivalent precision — analog
 * accelerator vs digital CG — against the number of 2D grid points,
 * with the paper's headline "parity at roughly 650 integrators" for
 * the 20 KHz design.
 *
 * Methodology mirrors the paper: the analog series is *measured* from
 * full circuit simulation at small N (our stand-in for their
 * prototype + Cadence runs) and *modelled* beyond; the digital series
 * is real stencil CG (measured iterations) priced with the paper's
 * 20-cycles-per-row-iteration Xeon model, plus this machine's wall
 * clock for reference.
 */

#include <cmath>

#include "aa/analog/solver.hh"
#include "aa/cost/digital.hh"
#include "aa/cost/model.hh"
#include "aa/pde/poisson.hh"
#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace aa;
    bool tsv = bench::tsvMode(argc, argv);
    bench::quietLogs();

    auto proto = cost::prototypeDesign();
    cost::AcceleratorDesign proj80(80e3, 8); // iso-precision 80 KHz
    cost::CpuModel cpu;

    // --- Part 1: circuit-simulation measurements at small N -------
    analog::AnalogSolverOptions sopts;
    sopts.spec.variation.enabled = false;
    sopts.spec.adc_noise_sigma = 0.0;
    sopts.auto_calibrate = false;
    sopts.underrange_threshold = -1.0;
    analog::AnalogLinearSolver solver(sopts);

    TextTable measured(
        "Figure 8a: measured analog solve time (full circuit "
        "simulation, 20 KHz die)");
    measured.setHeader({"grid points", "circuit-sim time (s)",
                        "model time (s)", "ratio"});
    for (std::size_t l : {2u, 3u, 4u, 5u}) {
        auto prob = pde::assemblePoisson(
            2, l, pde::zeroSource(),
            [](double x, double, double) {
                return x == 0.0 ? 0.4 : 0.0;
            });
        la::Vector b = prob.b;
        // Keep the bias range from dominating the scaling so the
        // measurement matches the model's gain-driven regime.
        double cap = 0.5 * prob.a.maxAbs() /
                     sopts.spec.max_gain;
        la::scale(cap / la::normInf(b), b, b);
        auto out = solver.solve(prob.a.toDense(), b);
        double model =
            proto.solveTimeSeconds(cost::PoissonShape{2, l});
        measured.addRow(
            {std::to_string(l * l),
             TextTable::sci(out.analog_seconds, 3),
             TextTable::sci(model, 3),
             TextTable::num(out.analog_seconds / model, 3)});
    }
    bench::emit(measured, tsv);

    // --- Part 2: the figure's series ------------------------------
    TextTable fig("Figure 8b: convergence time vs total grid points "
                  "(2D Poisson, equivalent precision 1/256)");
    fig.setHeader({"grid points", "digital CG model (s)",
                   "digital CG wall (s)", "analog 20KHz (s)",
                   "analog 80KHz proj (s)", "CG iters"});
    std::size_t crossover = 0;
    for (std::size_t l : {4u,  6u,  8u,  11u, 16u, 20u, 23u, 26u,
                          28u, 30u, 32u, 34u, 36u, 38u, 40u}) {
        auto m = cost::measureCgPoisson(2, l, 8, cpu, 3);
        cost::PoissonShape shape{2, l};
        double analog20 = proto.solveTimeSeconds(shape);
        double analog80 = proj80.solveTimeSeconds(shape);
        if (crossover == 0 && analog20 <= m.model_seconds)
            crossover = shape.gridPoints();
        fig.addRow({std::to_string(shape.gridPoints()),
                    TextTable::sci(m.model_seconds, 3),
                    TextTable::sci(m.wall_seconds, 3),
                    TextTable::sci(analog20, 3),
                    TextTable::sci(analog80, 3),
                    std::to_string(m.iterations)});
    }
    bench::emit(fig, tsv);

    TextTable summary("Figure 8 reading");
    summary.setHeader({"claim", "paper", "this reproduction"});
    summary.addRow({"20KHz analog/CPU speed parity (grid points)",
                    "~650",
                    crossover ? std::to_string(crossover)
                              : std::string("beyond range")});
    summary.addRow({"analog time scaling in N", "linear",
                    "linear (see Table 3 bench)"});
    bench::emit(summary, tsv);
    return 0;
}
