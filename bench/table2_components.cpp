/**
 * @file
 * Table II: the per-unit power/area measurements of the prototype
 * chip with their analog-core fractions, plus the bandwidth-scaled
 * values the projections are built from (core scales with alpha,
 * non-core fixed).
 */

#include "aa/cost/model.hh"
#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace aa;
    bool tsv = bench::tsvMode(argc, argv);
    bench::quietLogs();

    cost::ComponentTable t;
    struct Row {
        const char *name;
        const cost::UnitCost *unit;
    } rows[] = {
        {"integrator", &t.integrator}, {"fanout", &t.fanout},
        {"multiplier", &t.multiplier}, {"ADC", &t.adc},
        {"DAC", &t.dac},
    };

    TextTable table("Table II: prototype component measurements "
                    "(Guo et al., 65nm, 20 KHz)");
    table.setHeader({"unit", "power (uW)", "core power frac",
                     "area (mm^2)", "core area frac"});
    for (const auto &r : rows) {
        table.addRow({r.name,
                      TextTable::num(r.unit->power_w * 1e6, 3),
                      TextTable::num(r.unit->core_power_fraction, 2),
                      TextTable::num(r.unit->area_mm2, 3),
                      TextTable::num(r.unit->core_area_fraction, 2)});
    }
    bench::emit(table, tsv);

    TextTable scaled("Table II scaled: per-unit power (uW) at each "
                     "design bandwidth (core x alpha)");
    scaled.setHeader({"unit", "20KHz (a=1)", "80KHz (a=4)",
                      "320KHz (a=16)", "1.3MHz (a=65)"});
    for (const auto &r : rows) {
        scaled.addRow({r.name,
                       TextTable::num(r.unit->powerAt(1) * 1e6, 4),
                       TextTable::num(r.unit->powerAt(4) * 1e6, 4),
                       TextTable::num(r.unit->powerAt(16) * 1e6, 4),
                       TextTable::num(r.unit->powerAt(65) * 1e6, 4)});
    }
    bench::emit(scaled, tsv);

    TextTable area("Table II scaled: per-unit area (mm^2) at each "
                   "design bandwidth");
    area.setHeader({"unit", "20KHz", "80KHz", "320KHz", "1.3MHz"});
    for (const auto &r : rows) {
        area.addRow({r.name,
                     TextTable::num(r.unit->areaAt(1), 4),
                     TextTable::num(r.unit->areaAt(4), 4),
                     TextTable::num(r.unit->areaAt(16), 4),
                     TextTable::num(r.unit->areaAt(65), 4)});
    }
    bench::emit(area, tsv);
    return 0;
}
