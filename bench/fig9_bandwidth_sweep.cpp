/**
 * @file
 * Figure 9: convergence time vs grid points for the 20/80/320 KHz
 * and 1.3 MHz analog designs against digital CG, with the high-
 * bandwidth projections cut short where they hit the 600 mm^2 die
 * ceiling (the size of the largest GPUs) — the paper's area-limits-
 * performance story.
 */

#include "aa/cost/digital.hh"
#include "aa/cost/model.hh"
#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace aa;
    bool tsv = bench::tsvMode(argc, argv);
    bench::quietLogs();

    cost::AcceleratorDesign designs[] = {
        cost::prototypeDesign(), cost::design80kHz(),
        cost::design320kHz(), cost::design1300kHz()};
    const char *names[] = {"20KHz", "80KHz", "320KHz", "1.3MHz"};

    std::size_t caps[4];
    for (int d = 0; d < 4; ++d)
        caps[d] = designs[d].maxGridPoints(2);

    cost::CpuModel cpu;
    TextTable fig("Figure 9: convergence time (s) vs grid points; "
                  "'-' = design exceeds 600 mm^2");
    fig.setHeader({"grid points", "digital CG", "analog 20KHz",
                   "analog 80KHz", "analog 320KHz", "analog 1.3MHz"});

    // Every printed value is deterministic (CG iteration counts and
    // model projections), so the rows sweep one-per-worker and merge
    // by index into the same table a serial run prints.
    const std::vector<std::size_t> sides{4,  6,  8,  10, 13,
                                         16, 19, 22, 25};
    auto rows = bench::sweep(sides.size(), [&](std::size_t i) {
        std::size_t l = sides[i];
        cost::PoissonShape shape{2, l};
        std::size_t n = shape.gridPoints();
        // Each design is compared at its own ADC precision.
        auto m8 = cost::measureCgPoisson(2, l, 8, cpu, 1);
        std::vector<std::string> row{std::to_string(n),
                                     TextTable::sci(
                                         m8.model_seconds, 3)};
        for (int d = 0; d < 4; ++d) {
            if (n > caps[d]) {
                row.push_back("-");
            } else {
                row.push_back(TextTable::sci(
                    designs[d].solveTimeSeconds(shape), 3));
            }
        }
        return row;
    });
    for (const auto &row : rows)
        fig.addRow(row);
    bench::emit(fig, tsv);

    TextTable cuts("Figure 9 cut-offs: largest 2D problem within "
                   "600 mm^2");
    cuts.setHeader({"design", "max grid points"});
    for (int d = 0; d < 4; ++d)
        cuts.addRow({names[d], std::to_string(caps[d])});
    bench::emit(cuts, tsv);
    return 0;
}
