/**
 * @file
 * Extension bench (paper Section VI-F): does the nonlinear problem
 * class look better for analog than the linear one? For growing 1D
 * reaction-diffusion systems -u'' + c u^3 = f we count the digital
 * cost (Newton iterations x Jacobian solve cost) against the analog
 * flow's single continuous run, using the same modelling machinery
 * as Figures 8-12.
 *
 * The structural observation the paper anticipates: digital cost per
 * problem multiplies by the Newton iteration count, while the analog
 * flow's solve time stays within a small factor of the linear case —
 * the nonlinearity rides along in the LUTs for free.
 */

#include <cmath>

#include "aa/analog/nonlinear.hh"
#include "aa/cost/model.hh"
#include "aa/pde/poisson.hh"
#include "aa/solver/iterative.hh"
#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace aa;
    bool tsv = bench::tsvMode(argc, argv);
    bench::quietLogs();

    cost::CpuModel cpu;

    TextTable table(
        "Extension: nonlinear 1D reaction-diffusion, digital Newton "
        "vs analog flow (measured small-N circuit sims)");
    table.setHeader({"nodes", "newton iters",
                     "digital CG solves equiv",
                     "analog flow time (us, measured)",
                     "flow err vs newton", "flow attempts"});

    analog::AnalogSolverOptions aopts;
    aopts.spec.variation.enabled = false;
    aopts.spec.adc_noise_sigma = 0.0;
    aopts.auto_calibrate = false;
    analog::AnalogNonlinearSolver flow_solver(aopts);

    for (std::size_t l : {3u, 5u, 7u, 9u}) {
        auto prob = pde::assemblePoisson(
            1, l, [](double, double, double) { return 30.0; });
        solver::NonlinearSystem sys;
        sys.a = prob.a.toDense();
        sys.b = prob.b;
        sys.phi = [](double u) { return 40.0 * u * u * u; };
        sys.phi_prime = [](double u) { return 120.0 * u * u; };

        auto newton = solver::newtonSolve(sys);

        // Digital cost unit: each Newton step is (at least) one
        // linear solve of the same size; iterative inner solvers pay
        // the full Figure-8 cost per step.
        auto flow = flow_solver.solve(sys);
        double err = la::maxAbsDiff(flow.u, newton.x) /
                     std::max(1.0, la::normInf(newton.x));

        table.addRow({std::to_string(l),
                      std::to_string(newton.iterations),
                      std::to_string(newton.jacobian_solves),
                      TextTable::num(flow.analog_seconds * 1e6, 4),
                      TextTable::sci(err, 2),
                      std::to_string(flow.attempts)});
    }
    bench::emit(table, tsv);

    // Model-level projection: the analog flow's time is set by the
    // linear part's scaled lambda_min — identical to the linear
    // solve — while digital pays per Newton iteration.
    TextTable proj("projection: cost multiple of nonlinear over "
                   "linear solves (2D shapes)");
    proj.setHeader({"grid points", "digital (x newton iters ~6)",
                    "analog flow (x1, nonlinearity in LUTs)"});
    for (std::size_t l : {8u, 16u, 32u}) {
        cost::PoissonShape shape{2, l};
        proj.addRow({std::to_string(shape.gridPoints()), "~6x",
                     "~1x"});
    }
    bench::emit(proj, tsv);

    TextTable note("reading");
    note.setHeader({"note"});
    note.addRow({"the analog flow solves the nonlinear system in one "
                 "transient: no Jacobians, no outer iteration"});
    note.addRow({"digital Newton multiplies the Figure-8 linear cost "
                 "by its iteration count - the gap the paper "
                 "conjectures analog can exploit"});
    note.addRow({"accuracy stays at the one-run ADC/LUT floor; "
                 "hybrid Newton (analog Jacobian solves) recovers "
                 "digital-grade accuracy at ~iters x linear cost"});
    bench::emit(note, tsv);
    return 0;
}
