/**
 * @file
 * Google-benchmark microbenchmarks of the hot kernels: the stencil
 * and CSR operator applies behind every digital baseline, one CG
 * iteration, one multigrid V-cycle, and the analog circuit
 * simulator's right-hand-side evaluation (the cost driver of the
 * "Cadence-equivalent" measurements).
 */

#include <benchmark/benchmark.h>

#include "aa/circuit/simulator.hh"
#include "aa/common/logging.hh"
#include "aa/pde/poisson.hh"
#include "aa/solver/iterative.hh"
#include "aa/solver/multigrid.hh"

namespace {

using namespace aa;

void
BM_StencilApply2D(benchmark::State &state)
{
    std::size_t l = static_cast<std::size_t>(state.range(0));
    pde::PoissonStencil stencil(2, l);
    la::Vector x(stencil.size(), 1.0), y;
    for (auto _ : state) {
        stencil.apply(x, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(stencil.applyFlops()));
}
BENCHMARK(BM_StencilApply2D)->Arg(16)->Arg(32)->Arg(64);

void
BM_CsrApply2D(benchmark::State &state)
{
    std::size_t l = static_cast<std::size_t>(state.range(0));
    auto prob = pde::assemblePoisson(2, l);
    la::Vector x(prob.a.rows(), 1.0);
    for (auto _ : state) {
        la::Vector y = prob.a.apply(x);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(prob.a.nnz()));
}
BENCHMARK(BM_CsrApply2D)->Arg(16)->Arg(32)->Arg(64);

void
BM_CgSolve2D(benchmark::State &state)
{
    std::size_t l = static_cast<std::size_t>(state.range(0));
    pde::PoissonStencil stencil(2, l);
    la::Vector b(stencil.size(), 1.0);
    solver::IterOptions opts;
    opts.criterion = solver::Criterion::MaxChange;
    opts.tol = 1.0 / 256.0;
    for (auto _ : state) {
        auto res = solver::conjugateGradient(stencil, b, opts);
        benchmark::DoNotOptimize(res.x.data());
    }
}
BENCHMARK(BM_CgSolve2D)->Arg(16)->Arg(32);

void
BM_MultigridVcycle2D(benchmark::State &state)
{
    std::size_t l = static_cast<std::size_t>(state.range(0));
    solver::Multigrid mg(2, l);
    la::Vector b(mg.fineSize(), 1.0);
    la::Vector x(mg.fineSize());
    for (auto _ : state) {
        x = mg.vcycleOnce(std::move(x), b);
        benchmark::DoNotOptimize(x.data());
    }
}
BENCHMARK(BM_MultigridVcycle2D)->Arg(15)->Arg(31);

/** One Dopri5 step's worth of circuit RHS evaluations. */
void
BM_CircuitRhs(benchmark::State &state)
{
    setLogLevel(LogLevel::Quiet);
    // A representative gradient-flow netlist: n integrators with
    // tridiagonal coupling.
    std::size_t n = static_cast<std::size_t>(state.range(0));
    circuit::Netlist net;
    circuit::AnalogSpec spec;
    spec.variation.enabled = false;

    std::vector<circuit::BlockId> integ(n), fan(n);
    for (std::size_t i = 0; i < n; ++i)
        integ[i] = net.add(circuit::BlockKind::Integrator);
    circuit::BlockParams fp;
    fp.copies = 4;
    for (std::size_t i = 0; i < n; ++i) {
        fan[i] = net.add(circuit::BlockKind::Fanout, fp);
        net.connect(net.out(integ[i]), net.in(fan[i]));
    }
    auto add_mul = [&](double g, circuit::PortRef from,
                       circuit::BlockId to) {
        circuit::BlockParams mp;
        mp.gain = g;
        auto m = net.add(circuit::BlockKind::MulGain, mp);
        net.connect(from, net.in(m));
        net.connect(net.out(m), net.in(to));
    };
    for (std::size_t i = 0; i < n; ++i) {
        add_mul(-2.0, net.out(fan[i], 0), integ[i]);
        if (i > 0)
            add_mul(0.5, net.out(fan[i], 1), integ[i - 1]);
        if (i + 1 < n)
            add_mul(0.5, net.out(fan[i], 2), integ[i + 1]);
    }

    circuit::Simulator sim(net, spec, 1);
    circuit::RunOptions opts;
    opts.timeout = 20.0 / spec.lagRate();
    for (auto _ : state) {
        auto res = sim.run(opts);
        benchmark::DoNotOptimize(res.rhs_evals);
    }
}
BENCHMARK(BM_CircuitRhs)->Arg(4)->Arg(16)->Arg(64);

} // namespace
