/**
 * @file
 * Google-benchmark microbenchmarks of the hot kernels: the stencil
 * and CSR operator applies behind every digital baseline, one CG
 * iteration, one multigrid V-cycle, and the analog circuit
 * simulator's right-hand-side evaluation (the cost driver of the
 * "Cadence-equivalent" measurements).
 *
 * The BM_Rhs* fixtures also count global operator new calls per RHS
 * evaluation (reported as the allocs_per_eval counter): the compiled
 * EvalPlan promises zero allocations on the hot path, and the JSON
 * artifact (BENCH_kernels.json) records it.
 */

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <thread>

#include <benchmark/benchmark.h>

#include "aa/analog/decompose.hh"
#include "aa/analog/die_pool.hh"
#include "bench_util.hh"
#include "aa/chip/chip.hh"
#include "aa/circuit/plan.hh"
#include "aa/circuit/simulator.hh"
#include "aa/common/logging.hh"
#include "aa/compiler/program.hh"
#include "aa/compiler/scaling.hh"
#include "aa/isa/driver.hh"
#include "aa/pde/partition.hh"
#include "aa/pde/poisson.hh"
#include "aa/solver/iterative.hh"
#include "aa/solver/multigrid.hh"

/** Global allocation counter behind the allocs_per_eval metric. */
static std::atomic<std::int64_t> g_alloc_count{0};

// The replaced operator new allocates with malloc, so pairing the
// replaced delete with free is correct; GCC can't see the pairing.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void *
operator new(std::size_t size)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

#pragma GCC diagnostic pop

namespace {

using namespace aa;

/**
 * Pre-plan (per-block-walk) RHS costs on the 32x32 Poisson grid
 * netlist, measured on this machine before the EvalPlan rewrite.
 * Recorded into the JSON context so BENCH_kernels.json carries the
 * before/after speedup alongside the live BM_Rhs* numbers.
 */
const bool g_baseline_context = [] {
    aa::bench::recordBuildContext(
        [](const char *k, const std::string &v) {
            benchmark::AddCustomContext(k, v);
        });
    benchmark::AddCustomContext("preplan_rhs_ideal_32_ns_per_eval",
                                "260641");
    benchmark::AddCustomContext(
        "preplan_rhs_bandwidth_32_ns_per_eval", "217718");
    benchmark::AddCustomContext("preplan_sim_ctor_32_ideal_ms",
                                "32.88");
    // Pre-refactor full-reconfigure path (SleMapping rebuilt and the
    // whole configuration re-shipped every pass), measured on this
    // machine before the structure/binding split: per-pass downstream
    // bytes of the alg2_precision 12-bit column (n = 9), and one
    // map+configure rebuild.
    benchmark::AddCustomContext(
        "prerefactor_alg2_12bit_first_pass_bytes_down", "4686");
    benchmark::AddCustomContext(
        "prerefactor_alg2_12bit_steady_pass_bytes_down", "3149");
    benchmark::AddCustomContext(
        "prerefactor_map_configure_n9_ns_per_iter", "99898");
    // The BM_DecomposeSweep* pair compares the same deterministic
    // multi-die sweep dispatched serially vs. on the shared thread
    // pool; wall-clock speedup requires as many hardware cores as
    // dies, so record the core count the numbers were taken on.
    benchmark::AddCustomContext(
        "decompose_sweep_hardware_threads",
        std::to_string(std::thread::hardware_concurrency()));
    return true;
}();

void
BM_StencilApply2D(benchmark::State &state)
{
    std::size_t l = static_cast<std::size_t>(state.range(0));
    pde::PoissonStencil stencil(2, l);
    la::Vector x(stencil.size(), 1.0), y;
    for (auto _ : state) {
        stencil.apply(x, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(stencil.applyFlops()));
}
BENCHMARK(BM_StencilApply2D)->Arg(16)->Arg(32)->Arg(64);

void
BM_CsrApply2D(benchmark::State &state)
{
    std::size_t l = static_cast<std::size_t>(state.range(0));
    auto prob = pde::assemblePoisson(2, l);
    la::Vector x(prob.a.rows(), 1.0);
    for (auto _ : state) {
        la::Vector y = prob.a.apply(x);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(prob.a.nnz()));
}
BENCHMARK(BM_CsrApply2D)->Arg(16)->Arg(32)->Arg(64);

/**
 * The EvalPlan's CSR gather-sum (circuit::csrGatherSum) on a
 * synthetic fan-in table shaped like a compiled netlist: mostly
 * short rows (fanout/gain taps) with a tail of wide integrator rows.
 * This is the RHS's memory-bound inner loop; items_per_second counts
 * gathered sources. The unroll keeps one accumulator chain, so the
 * kernel stays bit-identical to the naive walk (the plan-equivalence
 * suite enforces that) — the win is index-load ILP and prefetch,
 * not reassociation.
 */
void
BM_GatherCsr(benchmark::State &state)
{
    std::size_t rows = static_cast<std::size_t>(state.range(0));
    std::uint64_t seed = 0x9e3779b97f4a7c15ull;
    auto next = [&seed] {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        return seed;
    };
    std::vector<circuit::PlanIdx> offsets(rows + 1, 0);
    std::vector<circuit::PlanIdx> srcs;
    std::size_t values = rows * 4;
    for (std::size_t r = 0; r < rows; ++r) {
        // 7 of 8 rows are narrow (1..4 sources); every 8th is a wide
        // accumulation row (16..47), like an integrator's fan-in.
        std::size_t fanin = (r % 8 == 7) ? 16 + next() % 32
                                         : 1 + next() % 4;
        for (std::size_t j = 0; j < fanin; ++j)
            srcs.push_back(
                static_cast<circuit::PlanIdx>(next() % values));
        offsets[r + 1] = static_cast<circuit::PlanIdx>(srcs.size());
    }
    la::Vector vals(values);
    for (std::size_t i = 0; i < values; ++i)
        vals[i] = 1.0 / static_cast<double>(i + 1);

    for (auto _ : state) {
        double sum = 0.0;
        for (std::size_t r = 0; r < rows; ++r)
            sum += circuit::csrGatherSum(srcs.data(), offsets[r],
                                         offsets[r + 1],
                                         vals.data());
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(srcs.size()));
}
BENCHMARK(BM_GatherCsr)->Arg(1024)->Arg(16384);

void
BM_CgSolve2D(benchmark::State &state)
{
    std::size_t l = static_cast<std::size_t>(state.range(0));
    pde::PoissonStencil stencil(2, l);
    la::Vector b(stencil.size(), 1.0);
    solver::IterOptions opts;
    opts.criterion = solver::Criterion::MaxChange;
    opts.tol = 1.0 / 256.0;
    for (auto _ : state) {
        auto res = solver::conjugateGradient(stencil, b, opts);
        benchmark::DoNotOptimize(res.x.data());
    }
}
BENCHMARK(BM_CgSolve2D)->Arg(16)->Arg(32);

void
BM_MultigridVcycle2D(benchmark::State &state)
{
    std::size_t l = static_cast<std::size_t>(state.range(0));
    solver::Multigrid mg(2, l);
    la::Vector b(mg.fineSize(), 1.0);
    la::Vector x(mg.fineSize());
    for (auto _ : state) {
        x = mg.vcycleOnce(std::move(x), b);
        benchmark::DoNotOptimize(x.data());
    }
}
BENCHMARK(BM_MultigridVcycle2D)->Arg(15)->Arg(31);

/** One Dopri5 step's worth of circuit RHS evaluations. */
void
BM_CircuitRhs(benchmark::State &state)
{
    setLogLevel(LogLevel::Quiet);
    // A representative gradient-flow netlist: n integrators with
    // tridiagonal coupling.
    std::size_t n = static_cast<std::size_t>(state.range(0));
    circuit::Netlist net;
    circuit::AnalogSpec spec;
    spec.variation.enabled = false;

    std::vector<circuit::BlockId> integ(n), fan(n);
    for (std::size_t i = 0; i < n; ++i)
        integ[i] = net.add(circuit::BlockKind::Integrator);
    circuit::BlockParams fp;
    fp.copies = 4;
    for (std::size_t i = 0; i < n; ++i) {
        fan[i] = net.add(circuit::BlockKind::Fanout, fp);
        net.connect(net.out(integ[i]), net.in(fan[i]));
    }
    auto add_mul = [&](double g, circuit::PortRef from,
                       circuit::BlockId to) {
        circuit::BlockParams mp;
        mp.gain = g;
        auto m = net.add(circuit::BlockKind::MulGain, mp);
        net.connect(from, net.in(m));
        net.connect(net.out(m), net.in(to));
    };
    for (std::size_t i = 0; i < n; ++i) {
        add_mul(-2.0, net.out(fan[i], 0), integ[i]);
        if (i > 0)
            add_mul(0.5, net.out(fan[i], 1), integ[i - 1]);
        if (i + 1 < n)
            add_mul(0.5, net.out(fan[i], 2), integ[i + 1]);
    }

    circuit::Simulator sim(net, spec, 1);
    circuit::RunOptions opts;
    opts.timeout = 20.0 / spec.lagRate();
    for (auto _ : state) {
        auto res = sim.run(opts);
        benchmark::DoNotOptimize(res.rhs_evals);
    }
}
BENCHMARK(BM_CircuitRhs)->Arg(4)->Arg(16)->Arg(64);

/** Deliver `want` copies of one output via a chained fanout tree. */
std::vector<circuit::PortRef>
fanTree(circuit::Netlist &net, circuit::PortRef src, std::size_t want)
{
    std::vector<circuit::PortRef> leaves{src};
    std::size_t next = 0;
    while (leaves.size() - next < want) {
        circuit::PortRef take = leaves[next++];
        circuit::BlockParams fp;
        fp.copies = 4;
        circuit::BlockId f = net.add(circuit::BlockKind::Fanout, fp);
        net.connect(take, net.in(f));
        for (std::size_t o = 0; o < 4; ++o)
            leaves.push_back(net.out(f, o));
    }
    return {leaves.begin() + static_cast<std::ptrdiff_t>(next),
            leaves.end()};
}

/**
 * The side x side 2D Poisson gradient-flow netlist the analog solver
 * compiles: one integrator per grid point, a 5-point stencil of
 * gained couplings through fanout trees, and a DAC bias per node.
 */
circuit::Netlist
poissonGridNetlist(std::size_t side)
{
    circuit::Netlist net;
    std::vector<circuit::BlockId> integ(side * side);
    for (auto &b : integ)
        b = net.add(circuit::BlockKind::Integrator);
    auto idx = [&](std::size_t i, std::size_t j) {
        return i * side + j;
    };
    for (std::size_t i = 0; i < side; ++i) {
        for (std::size_t j = 0; j < side; ++j) {
            std::size_t n = idx(i, j);
            std::size_t need = 1; // center tap
            need += (i > 0) + (i + 1 < side) + (j > 0) +
                    (j + 1 < side);
            auto copies = fanTree(net, net.out(integ[n]), need);
            std::size_t c = 0;
            auto mul = [&](double g, std::size_t to) {
                circuit::BlockParams mp;
                mp.gain = g;
                circuit::BlockId m =
                    net.add(circuit::BlockKind::MulGain, mp);
                net.connect(copies[c++], net.in(m));
                net.connect(net.out(m), net.in(integ[to]));
            };
            mul(-4.0 / 32.0, n);
            if (i > 0)
                mul(1.0 / 32.0, idx(i - 1, j));
            if (i + 1 < side)
                mul(1.0 / 32.0, idx(i + 1, j));
            if (j > 0)
                mul(1.0 / 32.0, idx(i, j - 1));
            if (j + 1 < side)
                mul(1.0 / 32.0, idx(i, j + 1));
            circuit::BlockParams dp;
            dp.level = 0.01;
            circuit::BlockId d = net.add(circuit::BlockKind::Dac, dp);
            net.connect(net.out(d), net.in(integ[n]));
        }
    }
    return net;
}

/**
 * Single compiled-plan RHS evaluations on the Poisson grid netlist;
 * allocs_per_eval must report 0 (the plan's zero-allocation
 * contract).
 */
void
rhsBenchmark(benchmark::State &state, circuit::SimMode mode)
{
    setLogLevel(LogLevel::Quiet);
    std::size_t side = static_cast<std::size_t>(state.range(0));
    circuit::Netlist net = poissonGridNetlist(side);
    circuit::AnalogSpec spec;
    spec.variation.enabled = false;
    spec.mode = mode;

    circuit::Simulator sim(net, spec, 1);
    la::Vector y(sim.stateCount(), 0.1), dydt(sim.stateCount());
    double t = 0.0;
    for (auto _ : state) {
        sim.evalRhs(t, y, dydt);
        benchmark::DoNotOptimize(dydt.data());
    }

    const int probes = 64;
    std::int64_t before = g_alloc_count.load();
    for (int i = 0; i < probes; ++i)
        sim.evalRhs(t, y, dydt);
    std::int64_t delta = g_alloc_count.load() - before;
    state.counters["allocs_per_eval"] =
        static_cast<double>(delta) / probes;
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(side * side));
}

void
BM_RhsIdeal(benchmark::State &state)
{
    rhsBenchmark(state, circuit::SimMode::Ideal);
}
BENCHMARK(BM_RhsIdeal)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void
BM_RhsBandwidth(benchmark::State &state)
{
    rhsBenchmark(state, circuit::SimMode::Bandwidth);
}
BENCHMARK(BM_RhsBandwidth)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

/** Lowering the netlist into an EvalPlan (per-Simulator/refreshWiring
 *  cost; one-shot adjacency keeps it near-linear in blocks+edges). */
void
BM_PlanBuild(benchmark::State &state)
{
    setLogLevel(LogLevel::Quiet);
    std::size_t side = static_cast<std::size_t>(state.range(0));
    circuit::Netlist net = poissonGridNetlist(side);
    circuit::AnalogSpec spec;
    spec.variation.enabled = false;
    spec.mode = circuit::SimMode::Ideal;
    for (auto _ : state) {
        circuit::EvalPlan plan(net, spec);
        benchmark::DoNotOptimize(plan.outPortCount());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(net.numBlocks()));
}
BENCHMARK(BM_PlanBuild)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

/** Shared fixture state for the configuration-path benchmarks: a
 *  Poisson system compiled for a die that exactly fits it. */
struct ConfigureSetup {
    la::DenseMatrix a;
    compiler::ScaledSystem scaled;
    std::unique_ptr<chip::Chip> chip;
    std::unique_ptr<isa::AcceleratorDriver> driver;
    std::unique_ptr<compiler::CompiledStructure> structure;

    explicit ConfigureSetup(std::size_t level)
    {
        // Nonzero forcing so the bindings carry real DAC biases (the
        // delta path would otherwise ship nothing at all).
        auto prob = pde::assemblePoisson(
            2, level,
            [](double x, double y, double) { return x + 2.0 * y; });
        a = prob.a.toDense();
        chip::ChipConfig cfg;
        cfg.spec.variation.enabled = false;
        cfg.geometry =
            compiler::geometryFor(compiler::demandOf(a, prob.b));
        chip = std::make_unique<chip::Chip>(cfg);
        driver = std::make_unique<isa::AcceleratorDriver>(*chip);
        scaled =
            compiler::scaleSystem(a, prob.b, {}, cfg.spec, 1.0);
        structure = std::make_unique<compiler::CompiledStructure>(
            scaled.a, *chip);
    }
};

/**
 * The cold path: ship the whole program — clearConfig, every crossbar
 * connection, every value, commit — as the pre-refactor solve loop
 * did on every attempt. resetShadow() forgets the register file so
 * nothing is suppressed.
 */
void
BM_ConfigureFull(benchmark::State &state)
{
    setLogLevel(LogLevel::Quiet);
    ConfigureSetup s(static_cast<std::size_t>(state.range(0)));
    double lambda =
        compiler::estimateConvergenceRate(s.scaled.a, true);
    compiler::ParameterBinding binding(*s.structure, s.scaled,
                                       lambda);
    std::size_t bytes0 = s.driver->configBytes();
    for (auto _ : state) {
        s.driver->resetShadow();
        s.structure->configureStructure(*s.driver);
        binding.apply(*s.structure, *s.driver);
    }
    state.counters["config_bytes"] = benchmark::Counter(
        static_cast<double>(s.driver->configBytes() - bytes0) /
        static_cast<double>(state.iterations()));
}
BENCHMARK(BM_ConfigureFull)->Arg(2)->Arg(3);

/**
 * The hot path: the structure is live on the die and only the DAC
 * biases change (a refinement pass, an implicit timestep); the shadow
 * registers reduce the reconfiguration to the delta.
 */
void
BM_ConfigureDelta(benchmark::State &state)
{
    setLogLevel(LogLevel::Quiet);
    ConfigureSetup s(static_cast<std::size_t>(state.range(0)));
    double lambda =
        compiler::estimateConvergenceRate(s.scaled.a, true);
    compiler::ParameterBinding binding_a(*s.structure, s.scaled,
                                         lambda);
    // A second RHS with the same structure and gain scale: only the
    // biases differ between the two bindings.
    compiler::ScaledSystem half = s.scaled;
    la::scale(0.5, s.scaled.b, half.b);
    compiler::ParameterBinding binding_b(*s.structure, half, lambda);

    s.structure->configureStructure(*s.driver);
    binding_a.apply(*s.structure, *s.driver);
    std::size_t bytes0 = s.driver->configBytes();
    bool flip = false;
    for (auto _ : state) {
        (flip ? binding_a : binding_b).apply(*s.structure, *s.driver);
        flip = !flip;
    }
    state.counters["config_bytes"] = benchmark::Counter(
        static_cast<double>(s.driver->configBytes() - bytes0) /
        static_cast<double>(state.iterations()));
}
BENCHMARK(BM_ConfigureDelta)->Arg(2)->Arg(3);

/**
 * One K-member solveBatch per iteration: a Poisson system (n = 9)
 * with K scaled right-hand sides, the service's steady multi-RHS
 * workload. Member 0 walks the canonical unhinted ladder (on this
 * system: a floored first rung, an underrange retry, a rung walk of
 * delta traffic); members after it start from the derived range
 * hint, land the working rung in one attempt, and ship nothing. So
 * config_bytes_per_rhs — the steady-state delta traffic averaged
 * over the batch — must fall as ~1/K (the amortization the JSON
 * artifact records), while items_per_second rises with the skipped
 * retries and the once-per-batch structure fetch + eigen analysis.
 */
void
BM_SolveBatch(benchmark::State &state)
{
    setLogLevel(LogLevel::Quiet);
    std::size_t k = static_cast<std::size_t>(state.range(0));
    auto prob = pde::assemblePoisson(
        2, 2, [](double x, double y, double) { return x + 2.0 * y; });
    la::DenseMatrix a = prob.a.toDense();
    std::vector<la::Vector> bs;
    bs.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
        la::Vector b(prob.b.size());
        la::scale(1.0 + 0.0625 * static_cast<double>(i % 7), prob.b,
                  b);
        bs.push_back(std::move(b));
    }

    analog::AnalogSolverOptions opts;
    opts.spec.variation.enabled = false;
    opts.spec.adc_noise_sigma = 0.0;
    opts.auto_calibrate = false;
    analog::AnalogLinearSolver solver(opts);
    auto warm = solver.solveBatch(a, bs); // compile + first bind here

    std::size_t bytes0 = solver.configBytes();
    for (auto _ : state) {
        auto outs = solver.solveBatch(a, bs);
        benchmark::DoNotOptimize(outs.data());
    }
    double total = static_cast<double>(state.iterations()) *
                   static_cast<double>(k);
    state.counters["config_bytes_per_rhs"] =
        static_cast<double>(solver.configBytes() - bytes0) / total;
    state.SetItemsProcessed(static_cast<std::int64_t>(total));
}
BENCHMARK(BM_SolveBatch)->Arg(1)->Arg(4)->Arg(16);

/**
 * One full decomposed solve per iteration through a pre-compiled
 * BlockJacobiScheduler: a 2D Poisson problem cut into strips, one
 * strip block per sweep task, four dies with a fixed seed. The
 * Serial/Pool pair differs only in DecomposeOptions::threads, and by
 * the determinism contract both run the identical solve (same sweep
 * count, same per-die programs) — the delta is pure dispatch.
 */
void
decomposeSweepBenchmark(benchmark::State &state, std::size_t threads)
{
    setLogLevel(LogLevel::Quiet);
    std::size_t l = static_cast<std::size_t>(state.range(0));
    auto prob = pde::assemblePoisson(
        2, l, [](double x, double y, double) { return x + y; });
    analog::AnalogSolverOptions die_opts;
    die_opts.die_seed = 40;
    analog::DiePool pool(4, die_opts);
    analog::DecomposeOptions opts;
    opts.tol = 1.0 / 256.0;
    opts.max_outer_iters = 50;
    opts.threads = threads;
    analog::BlockJacobiScheduler sched(
        prob.a, pde::stripPartition(prob.grid, l),
        pool.blockSolvers(), opts);
    // Warm-up: compiles (and caches) every per-die program so the
    // timed loop measures steady-state sweeps, not first-touch
    // calibration/compilation.
    auto warm = sched.solve(prob.b);
    std::size_t sweeps = 0, solves = 0;
    for (auto _ : state) {
        auto out = sched.solve(prob.b);
        sweeps += out.outer_iterations;
        solves += out.block_solves;
        benchmark::DoNotOptimize(out.u.data());
    }
    double iters = static_cast<double>(state.iterations());
    state.counters["outer_sweeps"] =
        static_cast<double>(sweeps) / iters;
    state.counters["block_solves"] =
        static_cast<double>(solves) / iters;
    state.counters["blocks"] = static_cast<double>(sched.blocks());
    state.counters["dies"] = static_cast<double>(sched.dies());
}

void
BM_DecomposeSweepSerial(benchmark::State &state)
{
    decomposeSweepBenchmark(state, 1);
}
BENCHMARK(BM_DecomposeSweepSerial)->Arg(8)->Unit(benchmark::kMillisecond);

void
BM_DecomposeSweepPool(benchmark::State &state)
{
    decomposeSweepBenchmark(state, 4);
}
BENCHMARK(BM_DecomposeSweepPool)->Arg(8)->Unit(benchmark::kMillisecond);

} // namespace
