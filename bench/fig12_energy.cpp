/**
 * @file
 * Figure 12: energy to solution vs grid points — GPU running CG
 * (225 pJ/FMA model, iterations measured from the real solver)
 * against the four analog designs (power x solve time). The paper's
 * readings: the 80 KHz design saves roughly a third of the GPU
 * energy in its feasible range; gains saturate past 80 KHz; high-
 * bandwidth designs are area-capped early.
 */

#include "aa/cost/digital.hh"
#include "aa/cost/model.hh"
#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace aa;
    bool tsv = bench::tsvMode(argc, argv);
    bench::quietLogs();

    cost::AcceleratorDesign designs[] = {
        cost::prototypeDesign(), cost::design80kHz(),
        cost::design320kHz(), cost::design1300kHz()};
    std::size_t caps[4];
    for (int d = 0; d < 4; ++d)
        caps[d] = designs[d].maxGridPoints(2);

    cost::GpuModel gpu;
    cost::CpuModel cpu;

    TextTable fig("Figure 12: solution energy (J) vs grid points; "
                  "'-' = beyond 600 mm^2");
    fig.setHeader({"grid points", "GPU CG", "20KHz", "80KHz",
                   "320KHz", "1.3MHz"});
    double ratio_at_625 = 0.0;
    for (std::size_t l : {6u, 10u, 14u, 18u, 22u, 25u, 28u, 31u}) {
        cost::PoissonShape shape{2, l};
        std::size_t n = shape.gridPoints();
        // GPU runs to each design's precision; use the prototype's
        // 8-bit equivalence as in Figure 8.
        auto m = cost::measureCgPoisson(2, l, 8, cpu, 1);
        double gpu_energy = gpu.energyJoules(n, m.iterations);
        std::vector<std::string> row{std::to_string(n),
                                     TextTable::sci(gpu_energy, 3)};
        for (int d = 0; d < 4; ++d) {
            if (n > caps[d]) {
                row.push_back("-");
                continue;
            }
            cost::AcceleratorDesign iso(
                designs[d].bandwidthHz(), 8,
                32.0); // iso-precision comparison at 8 bits
            double e = iso.solveEnergyJoules(shape);
            row.push_back(TextTable::sci(e, 3));
            if (l == 25 && d == 1)
                ratio_at_625 = e / gpu_energy;
        }
        fig.addRow(row);
    }
    bench::emit(fig, tsv);

    TextTable summary("Figure 12 reading");
    summary.setHeader({"claim", "paper", "this reproduction"});
    summary.addRow(
        {"80KHz energy vs GPU at ~625 points", "~2/3 (1/3 saved)",
         TextTable::num(ratio_at_625, 3)});
    {
        cost::PoissonShape shape{2, 20};
        double e20 =
            cost::AcceleratorDesign(20e3, 8).solveEnergyJoules(shape);
        double e80 =
            cost::AcceleratorDesign(80e3, 8).solveEnergyJoules(shape);
        double e320 = cost::AcceleratorDesign(320e3, 8)
                          .solveEnergyJoules(shape);
        summary.addRow({"energy gain 20->80 KHz", "noticeable",
                        TextTable::num(e20 / e80, 3)});
        summary.addRow({"energy gain 80->320 KHz",
                        "~none (saturated)",
                        TextTable::num(e80 / e320, 3)});
    }
    bench::emit(summary, tsv);
    return 0;
}
