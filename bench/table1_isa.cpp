/**
 * @file
 * Table I: the accelerator instruction set. Prints the table, then
 * exercises every instruction in one real host/device session (the
 * Figure 5 two-variable problem) and reports the command trace with
 * its wire cost over the SPI link.
 */

#include <map>

#include "aa/compiler/mapper.hh"
#include "aa/isa/driver.hh"
#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace aa;
    bool tsv = bench::tsvMode(argc, argv);
    bench::quietLogs();

    TextTable table("Table I: analog accelerator instruction set");
    table.setHeader({"type", "instruction", "description"});
    table.addRow({"Control", "init",
                  "find calibration codes for all function units"});
    table.addRow({"Config", "setConn",
                  "create an analog connection between two units"});
    table.addRow({"Config", "setIntInitial",
                  "set integrator ODE initial condition"});
    table.addRow({"Config", "setMulGain", "set multiplier gain"});
    table.addRow({"Config", "setFunction",
                  "load nonlinear function into lookup table"});
    table.addRow({"Config", "setDacConstant",
                  "set DAC constant additive bias"});
    table.addRow({"Config", "setTimeout",
                  "stop computation after a time budget"});
    table.addRow({"Config", "cfgCommit",
                  "write configuration changes to chip registers"});
    table.addRow({"Control", "execStart",
                  "release integrators from initial conditions"});
    table.addRow({"Control", "execStop",
                  "hold integrators at their present value"});
    table.addRow({"Data in", "setAnaInputEn",
                  "open the chip's analog input channel"});
    table.addRow({"Data in", "writeParallel",
                  "write the 8-bit digital input bus"});
    table.addRow({"Data out", "readSerial", "read all ADC outputs"});
    table.addRow({"Data out", "analogAvg",
                  "averaged multi-sample ADC read"});
    table.addRow({"Exception", "readExp",
                  "read the per-unit overflow exception vector"});
    bench::emit(table, tsv);

    // One full session: Figure 5's 2x2 system through every
    // instruction class.
    chip::ChipConfig cfg;
    cfg.die_seed = 99;
    chip::Chip chip(cfg);
    isa::AcceleratorDriver driver(chip);

    driver.init();
    driver.writeParallel(0x2a);
    driver.setFunction(chip.luts()[0],
                       [](double x) { return x * x; });

    la::DenseMatrix a =
        la::DenseMatrix::fromRows({{0.8, 0.2}, {0.2, 0.6}});
    la::Vector b{0.4, 0.4};
    auto sys = compiler::scaleSystem(a, b, {}, cfg.spec);
    compiler::SleMapping mapping(sys, chip);
    mapping.configure(driver);
    auto exec = driver.execStart();
    driver.execStop();
    auto exp = driver.readExp();
    auto serial = driver.readSerial();
    la::Vector u = mapping.readSolution(driver, 8);

    TextTable session("Table I exercised: one host/device session "
                      "(Figure 5 system)");
    session.setHeader({"metric", "value"});
    session.addRow({"commands sent",
                    std::to_string(driver.trace().size())});
    session.addRow({"bytes host->device",
                    std::to_string(driver.link().bytesDown())});
    session.addRow({"bytes device->host",
                    std::to_string(driver.link().bytesUp())});
    session.addRow({"SPI transfer time (ms)",
                    TextTable::num(
                        driver.link().transferSeconds() * 1e3, 3)});
    session.addRow({"analog compute time (us)",
                    TextTable::num(exec.analog_time * 1e6, 3)});
    session.addRow({"exceptions", chip.anyException() ? "yes" : "no"});
    session.addRow({"u0 (expect 0.364)", TextTable::num(u[0], 4)});
    session.addRow({"u1 (expect 0.545)", TextTable::num(u[1], 4)});
    session.addRow({"ADC codes read back",
                    std::to_string(serial.size())});
    bench::emit(session, tsv);

    // Per-opcode appearance counts in the trace.
    TextTable counts("instruction mix of the session");
    counts.setHeader({"instruction", "count"});
    std::map<isa::Opcode, std::size_t> mix;
    for (const auto &cmd : driver.trace())
        ++mix[cmd.op];
    for (const auto &[op, count] : mix)
        counts.addRow({isa::opcodeName(op), std::to_string(count)});
    bench::emit(counts, tsv);
    return 0;
}
