# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(aasim_solve_single "/root/repo/build/tools/aasim_solve" "--matrix" "/root/repo/tools/testdata/spd3.mtx" "--quiet")
set_tests_properties(aasim_solve_single PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(aasim_solve_refined "/root/repo/build/tools/aasim_solve" "--matrix" "/root/repo/tools/testdata/spd3.mtx" "--refine" "1e-6" "--quiet")
set_tests_properties(aasim_solve_refined PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(aasim_solve_decomposed "/root/repo/build/tools/aasim_solve" "--matrix" "/root/repo/tools/testdata/spd3.mtx" "--block-vars" "2" "--quiet")
set_tests_properties(aasim_solve_decomposed PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
