# Empty dependencies file for aasim_solve.
# This may be replaced when dependencies are built.
