file(REMOVE_RECURSE
  "CMakeFiles/aasim_solve.dir/aasim_solve.cpp.o"
  "CMakeFiles/aasim_solve.dir/aasim_solve.cpp.o.d"
  "aasim_solve"
  "aasim_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aasim_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
