
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table3_scaling.cpp" "bench/CMakeFiles/table3_scaling.dir/table3_scaling.cpp.o" "gcc" "bench/CMakeFiles/table3_scaling.dir/table3_scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analog/CMakeFiles/aa_analog.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/aa_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/aa_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/aa_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/chip/CMakeFiles/aa_chip.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/aa_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/aa_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/pde/CMakeFiles/aa_pde.dir/DependInfo.cmake"
  "/root/repo/build/src/ode/CMakeFiles/aa_ode.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/aa_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
