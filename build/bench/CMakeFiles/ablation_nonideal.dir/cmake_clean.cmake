file(REMOVE_RECURSE
  "CMakeFiles/ablation_nonideal.dir/ablation_nonideal.cpp.o"
  "CMakeFiles/ablation_nonideal.dir/ablation_nonideal.cpp.o.d"
  "ablation_nonideal"
  "ablation_nonideal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nonideal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
