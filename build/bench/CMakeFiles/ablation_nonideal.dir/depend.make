# Empty dependencies file for ablation_nonideal.
# This may be replaced when dependencies are built.
