# Empty dependencies file for fig7_convergence.
# This may be replaced when dependencies are built.
