# Empty dependencies file for fig9_bandwidth_sweep.
# This may be replaced when dependencies are built.
