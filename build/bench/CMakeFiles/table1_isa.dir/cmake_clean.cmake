file(REMOVE_RECURSE
  "CMakeFiles/table1_isa.dir/table1_isa.cpp.o"
  "CMakeFiles/table1_isa.dir/table1_isa.cpp.o.d"
  "table1_isa"
  "table1_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
