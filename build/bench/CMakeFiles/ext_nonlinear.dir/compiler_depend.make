# Empty compiler generated dependencies file for ext_nonlinear.
# This may be replaced when dependencies are built.
