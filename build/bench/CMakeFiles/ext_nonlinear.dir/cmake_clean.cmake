file(REMOVE_RECURSE
  "CMakeFiles/ext_nonlinear.dir/ext_nonlinear.cpp.o"
  "CMakeFiles/ext_nonlinear.dir/ext_nonlinear.cpp.o.d"
  "ext_nonlinear"
  "ext_nonlinear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_nonlinear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
