# Empty compiler generated dependencies file for alg2_precision.
# This may be replaced when dependencies are built.
