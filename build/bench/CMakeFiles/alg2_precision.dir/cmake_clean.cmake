file(REMOVE_RECURSE
  "CMakeFiles/alg2_precision.dir/alg2_precision.cpp.o"
  "CMakeFiles/alg2_precision.dir/alg2_precision.cpp.o.d"
  "alg2_precision"
  "alg2_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alg2_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
