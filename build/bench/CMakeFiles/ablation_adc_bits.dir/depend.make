# Empty dependencies file for ablation_adc_bits.
# This may be replaced when dependencies are built.
