file(REMOVE_RECURSE
  "CMakeFiles/ablation_adc_bits.dir/ablation_adc_bits.cpp.o"
  "CMakeFiles/ablation_adc_bits.dir/ablation_adc_bits.cpp.o.d"
  "ablation_adc_bits"
  "ablation_adc_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adc_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
