file(REMOVE_RECURSE
  "CMakeFiles/fig10_power.dir/fig10_power.cpp.o"
  "CMakeFiles/fig10_power.dir/fig10_power.cpp.o.d"
  "fig10_power"
  "fig10_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
