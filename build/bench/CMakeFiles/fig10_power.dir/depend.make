# Empty dependencies file for fig10_power.
# This may be replaced when dependencies are built.
