# Empty compiler generated dependencies file for fig8_crossover.
# This may be replaced when dependencies are built.
