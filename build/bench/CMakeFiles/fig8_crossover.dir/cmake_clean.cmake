file(REMOVE_RECURSE
  "CMakeFiles/fig8_crossover.dir/fig8_crossover.cpp.o"
  "CMakeFiles/fig8_crossover.dir/fig8_crossover.cpp.o.d"
  "fig8_crossover"
  "fig8_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
