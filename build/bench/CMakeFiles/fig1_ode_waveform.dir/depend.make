# Empty dependencies file for fig1_ode_waveform.
# This may be replaced when dependencies are built.
