file(REMOVE_RECURSE
  "CMakeFiles/fig1_ode_waveform.dir/fig1_ode_waveform.cpp.o"
  "CMakeFiles/fig1_ode_waveform.dir/fig1_ode_waveform.cpp.o.d"
  "fig1_ode_waveform"
  "fig1_ode_waveform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_ode_waveform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
