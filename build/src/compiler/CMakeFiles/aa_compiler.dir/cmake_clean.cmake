file(REMOVE_RECURSE
  "CMakeFiles/aa_compiler.dir/mapper.cc.o"
  "CMakeFiles/aa_compiler.dir/mapper.cc.o.d"
  "CMakeFiles/aa_compiler.dir/scaling.cc.o"
  "CMakeFiles/aa_compiler.dir/scaling.cc.o.d"
  "libaa_compiler.a"
  "libaa_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aa_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
