# Empty compiler generated dependencies file for aa_compiler.
# This may be replaced when dependencies are built.
