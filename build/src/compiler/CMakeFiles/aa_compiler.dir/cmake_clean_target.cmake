file(REMOVE_RECURSE
  "libaa_compiler.a"
)
