file(REMOVE_RECURSE
  "CMakeFiles/aa_solver.dir/iterative.cc.o"
  "CMakeFiles/aa_solver.dir/iterative.cc.o.d"
  "CMakeFiles/aa_solver.dir/multigrid.cc.o"
  "CMakeFiles/aa_solver.dir/multigrid.cc.o.d"
  "CMakeFiles/aa_solver.dir/newton.cc.o"
  "CMakeFiles/aa_solver.dir/newton.cc.o.d"
  "libaa_solver.a"
  "libaa_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aa_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
