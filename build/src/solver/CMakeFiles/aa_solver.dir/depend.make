# Empty dependencies file for aa_solver.
# This may be replaced when dependencies are built.
