file(REMOVE_RECURSE
  "libaa_solver.a"
)
