file(REMOVE_RECURSE
  "CMakeFiles/aa_analog.dir/decompose.cc.o"
  "CMakeFiles/aa_analog.dir/decompose.cc.o.d"
  "CMakeFiles/aa_analog.dir/die_pool.cc.o"
  "CMakeFiles/aa_analog.dir/die_pool.cc.o.d"
  "CMakeFiles/aa_analog.dir/hybrid_mg.cc.o"
  "CMakeFiles/aa_analog.dir/hybrid_mg.cc.o.d"
  "CMakeFiles/aa_analog.dir/nonlinear.cc.o"
  "CMakeFiles/aa_analog.dir/nonlinear.cc.o.d"
  "CMakeFiles/aa_analog.dir/ode_runner.cc.o"
  "CMakeFiles/aa_analog.dir/ode_runner.cc.o.d"
  "CMakeFiles/aa_analog.dir/refine.cc.o"
  "CMakeFiles/aa_analog.dir/refine.cc.o.d"
  "CMakeFiles/aa_analog.dir/solver.cc.o"
  "CMakeFiles/aa_analog.dir/solver.cc.o.d"
  "libaa_analog.a"
  "libaa_analog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aa_analog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
