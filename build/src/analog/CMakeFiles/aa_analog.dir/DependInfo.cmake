
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analog/decompose.cc" "src/analog/CMakeFiles/aa_analog.dir/decompose.cc.o" "gcc" "src/analog/CMakeFiles/aa_analog.dir/decompose.cc.o.d"
  "/root/repo/src/analog/die_pool.cc" "src/analog/CMakeFiles/aa_analog.dir/die_pool.cc.o" "gcc" "src/analog/CMakeFiles/aa_analog.dir/die_pool.cc.o.d"
  "/root/repo/src/analog/hybrid_mg.cc" "src/analog/CMakeFiles/aa_analog.dir/hybrid_mg.cc.o" "gcc" "src/analog/CMakeFiles/aa_analog.dir/hybrid_mg.cc.o.d"
  "/root/repo/src/analog/nonlinear.cc" "src/analog/CMakeFiles/aa_analog.dir/nonlinear.cc.o" "gcc" "src/analog/CMakeFiles/aa_analog.dir/nonlinear.cc.o.d"
  "/root/repo/src/analog/ode_runner.cc" "src/analog/CMakeFiles/aa_analog.dir/ode_runner.cc.o" "gcc" "src/analog/CMakeFiles/aa_analog.dir/ode_runner.cc.o.d"
  "/root/repo/src/analog/refine.cc" "src/analog/CMakeFiles/aa_analog.dir/refine.cc.o" "gcc" "src/analog/CMakeFiles/aa_analog.dir/refine.cc.o.d"
  "/root/repo/src/analog/solver.cc" "src/analog/CMakeFiles/aa_analog.dir/solver.cc.o" "gcc" "src/analog/CMakeFiles/aa_analog.dir/solver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compiler/CMakeFiles/aa_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/aa_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/pde/CMakeFiles/aa_pde.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/aa_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/chip/CMakeFiles/aa_chip.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/aa_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/ode/CMakeFiles/aa_ode.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/aa_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
