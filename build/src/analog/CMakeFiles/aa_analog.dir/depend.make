# Empty dependencies file for aa_analog.
# This may be replaced when dependencies are built.
