file(REMOVE_RECURSE
  "libaa_analog.a"
)
