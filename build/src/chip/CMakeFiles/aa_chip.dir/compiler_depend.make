# Empty compiler generated dependencies file for aa_chip.
# This may be replaced when dependencies are built.
