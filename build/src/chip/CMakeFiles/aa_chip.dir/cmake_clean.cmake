file(REMOVE_RECURSE
  "CMakeFiles/aa_chip.dir/calibration.cc.o"
  "CMakeFiles/aa_chip.dir/calibration.cc.o.d"
  "CMakeFiles/aa_chip.dir/chip.cc.o"
  "CMakeFiles/aa_chip.dir/chip.cc.o.d"
  "libaa_chip.a"
  "libaa_chip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aa_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
