file(REMOVE_RECURSE
  "libaa_chip.a"
)
