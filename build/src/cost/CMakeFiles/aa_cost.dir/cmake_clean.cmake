file(REMOVE_RECURSE
  "CMakeFiles/aa_cost.dir/digital.cc.o"
  "CMakeFiles/aa_cost.dir/digital.cc.o.d"
  "CMakeFiles/aa_cost.dir/model.cc.o"
  "CMakeFiles/aa_cost.dir/model.cc.o.d"
  "libaa_cost.a"
  "libaa_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aa_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
