file(REMOVE_RECURSE
  "libaa_cost.a"
)
