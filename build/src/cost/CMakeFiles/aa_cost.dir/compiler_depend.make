# Empty compiler generated dependencies file for aa_cost.
# This may be replaced when dependencies are built.
