# Empty dependencies file for aa_la.
# This may be replaced when dependencies are built.
