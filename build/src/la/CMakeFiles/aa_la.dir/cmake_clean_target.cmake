file(REMOVE_RECURSE
  "libaa_la.a"
)
