
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/la/csr_matrix.cc" "src/la/CMakeFiles/aa_la.dir/csr_matrix.cc.o" "gcc" "src/la/CMakeFiles/aa_la.dir/csr_matrix.cc.o.d"
  "/root/repo/src/la/dense_matrix.cc" "src/la/CMakeFiles/aa_la.dir/dense_matrix.cc.o" "gcc" "src/la/CMakeFiles/aa_la.dir/dense_matrix.cc.o.d"
  "/root/repo/src/la/direct.cc" "src/la/CMakeFiles/aa_la.dir/direct.cc.o" "gcc" "src/la/CMakeFiles/aa_la.dir/direct.cc.o.d"
  "/root/repo/src/la/eigen.cc" "src/la/CMakeFiles/aa_la.dir/eigen.cc.o" "gcc" "src/la/CMakeFiles/aa_la.dir/eigen.cc.o.d"
  "/root/repo/src/la/io.cc" "src/la/CMakeFiles/aa_la.dir/io.cc.o" "gcc" "src/la/CMakeFiles/aa_la.dir/io.cc.o.d"
  "/root/repo/src/la/operator.cc" "src/la/CMakeFiles/aa_la.dir/operator.cc.o" "gcc" "src/la/CMakeFiles/aa_la.dir/operator.cc.o.d"
  "/root/repo/src/la/vector.cc" "src/la/CMakeFiles/aa_la.dir/vector.cc.o" "gcc" "src/la/CMakeFiles/aa_la.dir/vector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
