file(REMOVE_RECURSE
  "CMakeFiles/aa_la.dir/csr_matrix.cc.o"
  "CMakeFiles/aa_la.dir/csr_matrix.cc.o.d"
  "CMakeFiles/aa_la.dir/dense_matrix.cc.o"
  "CMakeFiles/aa_la.dir/dense_matrix.cc.o.d"
  "CMakeFiles/aa_la.dir/direct.cc.o"
  "CMakeFiles/aa_la.dir/direct.cc.o.d"
  "CMakeFiles/aa_la.dir/eigen.cc.o"
  "CMakeFiles/aa_la.dir/eigen.cc.o.d"
  "CMakeFiles/aa_la.dir/io.cc.o"
  "CMakeFiles/aa_la.dir/io.cc.o.d"
  "CMakeFiles/aa_la.dir/operator.cc.o"
  "CMakeFiles/aa_la.dir/operator.cc.o.d"
  "CMakeFiles/aa_la.dir/vector.cc.o"
  "CMakeFiles/aa_la.dir/vector.cc.o.d"
  "libaa_la.a"
  "libaa_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aa_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
