
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pde/grid.cc" "src/pde/CMakeFiles/aa_pde.dir/grid.cc.o" "gcc" "src/pde/CMakeFiles/aa_pde.dir/grid.cc.o.d"
  "/root/repo/src/pde/heat.cc" "src/pde/CMakeFiles/aa_pde.dir/heat.cc.o" "gcc" "src/pde/CMakeFiles/aa_pde.dir/heat.cc.o.d"
  "/root/repo/src/pde/manufactured.cc" "src/pde/CMakeFiles/aa_pde.dir/manufactured.cc.o" "gcc" "src/pde/CMakeFiles/aa_pde.dir/manufactured.cc.o.d"
  "/root/repo/src/pde/partition.cc" "src/pde/CMakeFiles/aa_pde.dir/partition.cc.o" "gcc" "src/pde/CMakeFiles/aa_pde.dir/partition.cc.o.d"
  "/root/repo/src/pde/poisson.cc" "src/pde/CMakeFiles/aa_pde.dir/poisson.cc.o" "gcc" "src/pde/CMakeFiles/aa_pde.dir/poisson.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/aa_la.dir/DependInfo.cmake"
  "/root/repo/build/src/ode/CMakeFiles/aa_ode.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
