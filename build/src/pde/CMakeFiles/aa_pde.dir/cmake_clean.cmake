file(REMOVE_RECURSE
  "CMakeFiles/aa_pde.dir/grid.cc.o"
  "CMakeFiles/aa_pde.dir/grid.cc.o.d"
  "CMakeFiles/aa_pde.dir/heat.cc.o"
  "CMakeFiles/aa_pde.dir/heat.cc.o.d"
  "CMakeFiles/aa_pde.dir/manufactured.cc.o"
  "CMakeFiles/aa_pde.dir/manufactured.cc.o.d"
  "CMakeFiles/aa_pde.dir/partition.cc.o"
  "CMakeFiles/aa_pde.dir/partition.cc.o.d"
  "CMakeFiles/aa_pde.dir/poisson.cc.o"
  "CMakeFiles/aa_pde.dir/poisson.cc.o.d"
  "libaa_pde.a"
  "libaa_pde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aa_pde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
