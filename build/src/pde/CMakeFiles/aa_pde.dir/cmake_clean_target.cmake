file(REMOVE_RECURSE
  "libaa_pde.a"
)
