# Empty compiler generated dependencies file for aa_pde.
# This may be replaced when dependencies are built.
