
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/block.cc" "src/circuit/CMakeFiles/aa_circuit.dir/block.cc.o" "gcc" "src/circuit/CMakeFiles/aa_circuit.dir/block.cc.o.d"
  "/root/repo/src/circuit/netlist.cc" "src/circuit/CMakeFiles/aa_circuit.dir/netlist.cc.o" "gcc" "src/circuit/CMakeFiles/aa_circuit.dir/netlist.cc.o.d"
  "/root/repo/src/circuit/nonideal.cc" "src/circuit/CMakeFiles/aa_circuit.dir/nonideal.cc.o" "gcc" "src/circuit/CMakeFiles/aa_circuit.dir/nonideal.cc.o.d"
  "/root/repo/src/circuit/plan.cc" "src/circuit/CMakeFiles/aa_circuit.dir/plan.cc.o" "gcc" "src/circuit/CMakeFiles/aa_circuit.dir/plan.cc.o.d"
  "/root/repo/src/circuit/simulator.cc" "src/circuit/CMakeFiles/aa_circuit.dir/simulator.cc.o" "gcc" "src/circuit/CMakeFiles/aa_circuit.dir/simulator.cc.o.d"
  "/root/repo/src/circuit/spec.cc" "src/circuit/CMakeFiles/aa_circuit.dir/spec.cc.o" "gcc" "src/circuit/CMakeFiles/aa_circuit.dir/spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ode/CMakeFiles/aa_ode.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/aa_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
