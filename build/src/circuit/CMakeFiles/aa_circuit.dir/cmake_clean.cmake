file(REMOVE_RECURSE
  "CMakeFiles/aa_circuit.dir/block.cc.o"
  "CMakeFiles/aa_circuit.dir/block.cc.o.d"
  "CMakeFiles/aa_circuit.dir/netlist.cc.o"
  "CMakeFiles/aa_circuit.dir/netlist.cc.o.d"
  "CMakeFiles/aa_circuit.dir/nonideal.cc.o"
  "CMakeFiles/aa_circuit.dir/nonideal.cc.o.d"
  "CMakeFiles/aa_circuit.dir/plan.cc.o"
  "CMakeFiles/aa_circuit.dir/plan.cc.o.d"
  "CMakeFiles/aa_circuit.dir/simulator.cc.o"
  "CMakeFiles/aa_circuit.dir/simulator.cc.o.d"
  "CMakeFiles/aa_circuit.dir/spec.cc.o"
  "CMakeFiles/aa_circuit.dir/spec.cc.o.d"
  "libaa_circuit.a"
  "libaa_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aa_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
