file(REMOVE_RECURSE
  "libaa_circuit.a"
)
