# Empty compiler generated dependencies file for aa_circuit.
# This may be replaced when dependencies are built.
