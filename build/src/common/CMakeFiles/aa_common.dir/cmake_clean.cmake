file(REMOVE_RECURSE
  "CMakeFiles/aa_common.dir/logging.cc.o"
  "CMakeFiles/aa_common.dir/logging.cc.o.d"
  "CMakeFiles/aa_common.dir/parallel.cc.o"
  "CMakeFiles/aa_common.dir/parallel.cc.o.d"
  "CMakeFiles/aa_common.dir/stats.cc.o"
  "CMakeFiles/aa_common.dir/stats.cc.o.d"
  "CMakeFiles/aa_common.dir/table.cc.o"
  "CMakeFiles/aa_common.dir/table.cc.o.d"
  "libaa_common.a"
  "libaa_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aa_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
