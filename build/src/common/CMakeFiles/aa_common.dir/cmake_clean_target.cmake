file(REMOVE_RECURSE
  "libaa_common.a"
)
