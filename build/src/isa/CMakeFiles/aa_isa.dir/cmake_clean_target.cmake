file(REMOVE_RECURSE
  "libaa_isa.a"
)
