file(REMOVE_RECURSE
  "CMakeFiles/aa_isa.dir/command.cc.o"
  "CMakeFiles/aa_isa.dir/command.cc.o.d"
  "CMakeFiles/aa_isa.dir/driver.cc.o"
  "CMakeFiles/aa_isa.dir/driver.cc.o.d"
  "libaa_isa.a"
  "libaa_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aa_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
