# Empty dependencies file for aa_isa.
# This may be replaced when dependencies are built.
