file(REMOVE_RECURSE
  "CMakeFiles/aa_ode.dir/csv.cc.o"
  "CMakeFiles/aa_ode.dir/csv.cc.o.d"
  "CMakeFiles/aa_ode.dir/integrator.cc.o"
  "CMakeFiles/aa_ode.dir/integrator.cc.o.d"
  "CMakeFiles/aa_ode.dir/system.cc.o"
  "CMakeFiles/aa_ode.dir/system.cc.o.d"
  "CMakeFiles/aa_ode.dir/trajectory.cc.o"
  "CMakeFiles/aa_ode.dir/trajectory.cc.o.d"
  "libaa_ode.a"
  "libaa_ode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aa_ode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
