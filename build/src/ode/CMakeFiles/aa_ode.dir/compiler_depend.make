# Empty compiler generated dependencies file for aa_ode.
# This may be replaced when dependencies are built.
