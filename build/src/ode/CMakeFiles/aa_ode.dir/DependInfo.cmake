
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ode/csv.cc" "src/ode/CMakeFiles/aa_ode.dir/csv.cc.o" "gcc" "src/ode/CMakeFiles/aa_ode.dir/csv.cc.o.d"
  "/root/repo/src/ode/integrator.cc" "src/ode/CMakeFiles/aa_ode.dir/integrator.cc.o" "gcc" "src/ode/CMakeFiles/aa_ode.dir/integrator.cc.o.d"
  "/root/repo/src/ode/system.cc" "src/ode/CMakeFiles/aa_ode.dir/system.cc.o" "gcc" "src/ode/CMakeFiles/aa_ode.dir/system.cc.o.d"
  "/root/repo/src/ode/trajectory.cc" "src/ode/CMakeFiles/aa_ode.dir/trajectory.cc.o" "gcc" "src/ode/CMakeFiles/aa_ode.dir/trajectory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/aa_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
