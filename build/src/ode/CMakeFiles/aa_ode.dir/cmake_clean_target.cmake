file(REMOVE_RECURSE
  "libaa_ode.a"
)
