
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/la/csr_test.cc" "tests/CMakeFiles/la_test.dir/la/csr_test.cc.o" "gcc" "tests/CMakeFiles/la_test.dir/la/csr_test.cc.o.d"
  "/root/repo/tests/la/dense_test.cc" "tests/CMakeFiles/la_test.dir/la/dense_test.cc.o" "gcc" "tests/CMakeFiles/la_test.dir/la/dense_test.cc.o.d"
  "/root/repo/tests/la/direct_test.cc" "tests/CMakeFiles/la_test.dir/la/direct_test.cc.o" "gcc" "tests/CMakeFiles/la_test.dir/la/direct_test.cc.o.d"
  "/root/repo/tests/la/eigen_test.cc" "tests/CMakeFiles/la_test.dir/la/eigen_test.cc.o" "gcc" "tests/CMakeFiles/la_test.dir/la/eigen_test.cc.o.d"
  "/root/repo/tests/la/io_test.cc" "tests/CMakeFiles/la_test.dir/la/io_test.cc.o" "gcc" "tests/CMakeFiles/la_test.dir/la/io_test.cc.o.d"
  "/root/repo/tests/la/operator_test.cc" "tests/CMakeFiles/la_test.dir/la/operator_test.cc.o" "gcc" "tests/CMakeFiles/la_test.dir/la/operator_test.cc.o.d"
  "/root/repo/tests/la/vector_test.cc" "tests/CMakeFiles/la_test.dir/la/vector_test.cc.o" "gcc" "tests/CMakeFiles/la_test.dir/la/vector_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/aa_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
