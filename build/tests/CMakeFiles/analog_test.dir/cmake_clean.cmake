file(REMOVE_RECURSE
  "CMakeFiles/analog_test.dir/analog/adc_readout_test.cc.o"
  "CMakeFiles/analog_test.dir/analog/adc_readout_test.cc.o.d"
  "CMakeFiles/analog_test.dir/analog/decompose_test.cc.o"
  "CMakeFiles/analog_test.dir/analog/decompose_test.cc.o.d"
  "CMakeFiles/analog_test.dir/analog/die_pool_test.cc.o"
  "CMakeFiles/analog_test.dir/analog/die_pool_test.cc.o.d"
  "CMakeFiles/analog_test.dir/analog/hybrid_test.cc.o"
  "CMakeFiles/analog_test.dir/analog/hybrid_test.cc.o.d"
  "CMakeFiles/analog_test.dir/analog/nonlinear_test.cc.o"
  "CMakeFiles/analog_test.dir/analog/nonlinear_test.cc.o.d"
  "CMakeFiles/analog_test.dir/analog/ode_runner_test.cc.o"
  "CMakeFiles/analog_test.dir/analog/ode_runner_test.cc.o.d"
  "CMakeFiles/analog_test.dir/analog/refine_test.cc.o"
  "CMakeFiles/analog_test.dir/analog/refine_test.cc.o.d"
  "CMakeFiles/analog_test.dir/analog/solver_test.cc.o"
  "CMakeFiles/analog_test.dir/analog/solver_test.cc.o.d"
  "analog_test"
  "analog_test.pdb"
  "analog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
