
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/circuit/blocks_test.cc" "tests/CMakeFiles/circuit_test.dir/circuit/blocks_test.cc.o" "gcc" "tests/CMakeFiles/circuit_test.dir/circuit/blocks_test.cc.o.d"
  "/root/repo/tests/circuit/lut_dynamics_test.cc" "tests/CMakeFiles/circuit_test.dir/circuit/lut_dynamics_test.cc.o" "gcc" "tests/CMakeFiles/circuit_test.dir/circuit/lut_dynamics_test.cc.o.d"
  "/root/repo/tests/circuit/modes_test.cc" "tests/CMakeFiles/circuit_test.dir/circuit/modes_test.cc.o" "gcc" "tests/CMakeFiles/circuit_test.dir/circuit/modes_test.cc.o.d"
  "/root/repo/tests/circuit/netlist_test.cc" "tests/CMakeFiles/circuit_test.dir/circuit/netlist_test.cc.o" "gcc" "tests/CMakeFiles/circuit_test.dir/circuit/netlist_test.cc.o.d"
  "/root/repo/tests/circuit/nonideal_test.cc" "tests/CMakeFiles/circuit_test.dir/circuit/nonideal_test.cc.o" "gcc" "tests/CMakeFiles/circuit_test.dir/circuit/nonideal_test.cc.o.d"
  "/root/repo/tests/circuit/plan_equivalence_test.cc" "tests/CMakeFiles/circuit_test.dir/circuit/plan_equivalence_test.cc.o" "gcc" "tests/CMakeFiles/circuit_test.dir/circuit/plan_equivalence_test.cc.o.d"
  "/root/repo/tests/circuit/simulator_test.cc" "tests/CMakeFiles/circuit_test.dir/circuit/simulator_test.cc.o" "gcc" "tests/CMakeFiles/circuit_test.dir/circuit/simulator_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/aa_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/ode/CMakeFiles/aa_ode.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/aa_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
