file(REMOVE_RECURSE
  "CMakeFiles/circuit_test.dir/circuit/blocks_test.cc.o"
  "CMakeFiles/circuit_test.dir/circuit/blocks_test.cc.o.d"
  "CMakeFiles/circuit_test.dir/circuit/lut_dynamics_test.cc.o"
  "CMakeFiles/circuit_test.dir/circuit/lut_dynamics_test.cc.o.d"
  "CMakeFiles/circuit_test.dir/circuit/modes_test.cc.o"
  "CMakeFiles/circuit_test.dir/circuit/modes_test.cc.o.d"
  "CMakeFiles/circuit_test.dir/circuit/netlist_test.cc.o"
  "CMakeFiles/circuit_test.dir/circuit/netlist_test.cc.o.d"
  "CMakeFiles/circuit_test.dir/circuit/nonideal_test.cc.o"
  "CMakeFiles/circuit_test.dir/circuit/nonideal_test.cc.o.d"
  "CMakeFiles/circuit_test.dir/circuit/plan_equivalence_test.cc.o"
  "CMakeFiles/circuit_test.dir/circuit/plan_equivalence_test.cc.o.d"
  "CMakeFiles/circuit_test.dir/circuit/simulator_test.cc.o"
  "CMakeFiles/circuit_test.dir/circuit/simulator_test.cc.o.d"
  "circuit_test"
  "circuit_test.pdb"
  "circuit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
