
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/isa/command_test.cc" "tests/CMakeFiles/isa_test.dir/isa/command_test.cc.o" "gcc" "tests/CMakeFiles/isa_test.dir/isa/command_test.cc.o.d"
  "/root/repo/tests/isa/driver_test.cc" "tests/CMakeFiles/isa_test.dir/isa/driver_test.cc.o" "gcc" "tests/CMakeFiles/isa_test.dir/isa/driver_test.cc.o.d"
  "/root/repo/tests/isa/roundtrip_property_test.cc" "tests/CMakeFiles/isa_test.dir/isa/roundtrip_property_test.cc.o" "gcc" "tests/CMakeFiles/isa_test.dir/isa/roundtrip_property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/aa_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/chip/CMakeFiles/aa_chip.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/aa_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/ode/CMakeFiles/aa_ode.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/aa_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
