file(REMOVE_RECURSE
  "CMakeFiles/solver_test.dir/solver/cg_test.cc.o"
  "CMakeFiles/solver_test.dir/solver/cg_test.cc.o.d"
  "CMakeFiles/solver_test.dir/solver/iterative_test.cc.o"
  "CMakeFiles/solver_test.dir/solver/iterative_test.cc.o.d"
  "CMakeFiles/solver_test.dir/solver/multigrid_test.cc.o"
  "CMakeFiles/solver_test.dir/solver/multigrid_test.cc.o.d"
  "CMakeFiles/solver_test.dir/solver/newton_test.cc.o"
  "CMakeFiles/solver_test.dir/solver/newton_test.cc.o.d"
  "CMakeFiles/solver_test.dir/solver/transfer_test.cc.o"
  "CMakeFiles/solver_test.dir/solver/transfer_test.cc.o.d"
  "solver_test"
  "solver_test.pdb"
  "solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
