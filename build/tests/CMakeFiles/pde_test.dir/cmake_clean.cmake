file(REMOVE_RECURSE
  "CMakeFiles/pde_test.dir/pde/grid_test.cc.o"
  "CMakeFiles/pde_test.dir/pde/grid_test.cc.o.d"
  "CMakeFiles/pde_test.dir/pde/heat_test.cc.o"
  "CMakeFiles/pde_test.dir/pde/heat_test.cc.o.d"
  "CMakeFiles/pde_test.dir/pde/manufactured_test.cc.o"
  "CMakeFiles/pde_test.dir/pde/manufactured_test.cc.o.d"
  "CMakeFiles/pde_test.dir/pde/partition_test.cc.o"
  "CMakeFiles/pde_test.dir/pde/partition_test.cc.o.d"
  "CMakeFiles/pde_test.dir/pde/poisson_test.cc.o"
  "CMakeFiles/pde_test.dir/pde/poisson_test.cc.o.d"
  "pde_test"
  "pde_test.pdb"
  "pde_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pde_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
