file(REMOVE_RECURSE
  "CMakeFiles/chip_test.dir/chip/calibration_test.cc.o"
  "CMakeFiles/chip_test.dir/chip/calibration_test.cc.o.d"
  "CMakeFiles/chip_test.dir/chip/capture_test.cc.o"
  "CMakeFiles/chip_test.dir/chip/capture_test.cc.o.d"
  "CMakeFiles/chip_test.dir/chip/chip_test.cc.o"
  "CMakeFiles/chip_test.dir/chip/chip_test.cc.o.d"
  "CMakeFiles/chip_test.dir/chip/exceptions_test.cc.o"
  "CMakeFiles/chip_test.dir/chip/exceptions_test.cc.o.d"
  "chip_test"
  "chip_test.pdb"
  "chip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
