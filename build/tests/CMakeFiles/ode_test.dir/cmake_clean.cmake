file(REMOVE_RECURSE
  "CMakeFiles/ode_test.dir/ode/convergence_test.cc.o"
  "CMakeFiles/ode_test.dir/ode/convergence_test.cc.o.d"
  "CMakeFiles/ode_test.dir/ode/csv_test.cc.o"
  "CMakeFiles/ode_test.dir/ode/csv_test.cc.o.d"
  "CMakeFiles/ode_test.dir/ode/integrator_test.cc.o"
  "CMakeFiles/ode_test.dir/ode/integrator_test.cc.o.d"
  "CMakeFiles/ode_test.dir/ode/trajectory_test.cc.o"
  "CMakeFiles/ode_test.dir/ode/trajectory_test.cc.o.d"
  "ode_test"
  "ode_test.pdb"
  "ode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
