# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/la_test[1]_include.cmake")
include("/root/repo/build/tests/ode_test[1]_include.cmake")
include("/root/repo/build/tests/pde_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/circuit_test[1]_include.cmake")
include("/root/repo/build/tests/chip_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_test[1]_include.cmake")
include("/root/repo/build/tests/analog_test[1]_include.cmake")
include("/root/repo/build/tests/cost_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
