file(REMOVE_RECURSE
  "CMakeFiles/ode_dynamics.dir/ode_dynamics.cpp.o"
  "CMakeFiles/ode_dynamics.dir/ode_dynamics.cpp.o.d"
  "ode_dynamics"
  "ode_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ode_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
