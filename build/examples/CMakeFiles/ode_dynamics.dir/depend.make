# Empty dependencies file for ode_dynamics.
# This may be replaced when dependencies are built.
