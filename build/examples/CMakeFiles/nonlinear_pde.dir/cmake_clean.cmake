file(REMOVE_RECURSE
  "CMakeFiles/nonlinear_pde.dir/nonlinear_pde.cpp.o"
  "CMakeFiles/nonlinear_pde.dir/nonlinear_pde.cpp.o.d"
  "nonlinear_pde"
  "nonlinear_pde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonlinear_pde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
