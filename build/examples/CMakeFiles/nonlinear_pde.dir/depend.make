# Empty dependencies file for nonlinear_pde.
# This may be replaced when dependencies are built.
