file(REMOVE_RECURSE
  "CMakeFiles/multigrid_hybrid.dir/multigrid_hybrid.cpp.o"
  "CMakeFiles/multigrid_hybrid.dir/multigrid_hybrid.cpp.o.d"
  "multigrid_hybrid"
  "multigrid_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multigrid_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
