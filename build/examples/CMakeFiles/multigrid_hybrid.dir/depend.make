# Empty dependencies file for multigrid_hybrid.
# This may be replaced when dependencies are built.
