file(REMOVE_RECURSE
  "CMakeFiles/poisson2d.dir/poisson2d.cpp.o"
  "CMakeFiles/poisson2d.dir/poisson2d.cpp.o.d"
  "poisson2d"
  "poisson2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poisson2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
