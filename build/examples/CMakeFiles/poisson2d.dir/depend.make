# Empty dependencies file for poisson2d.
# This may be replaced when dependencies are built.
