# Empty dependencies file for precision_refinement.
# This may be replaced when dependencies are built.
