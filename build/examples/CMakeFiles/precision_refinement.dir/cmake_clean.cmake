file(REMOVE_RECURSE
  "CMakeFiles/precision_refinement.dir/precision_refinement.cpp.o"
  "CMakeFiles/precision_refinement.dir/precision_refinement.cpp.o.d"
  "precision_refinement"
  "precision_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precision_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
