#include <gtest/gtest.h>

#include <cmath>

#include "aa/analog/solver.hh"
#include "aa/common/rng.hh"
#include "aa/la/direct.hh"

namespace aa {
namespace {

/** Random diagonally dominant SPD system with unit-scale solution. */
struct RandomCase {
    la::DenseMatrix a;
    la::Vector b;
    la::Vector exact;
};

RandomCase
makeCase(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    la::DenseMatrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        double row_sum = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j)
                continue;
            double v = rng.uniform(-0.3, 0.3);
            a(i, j) = v;
        }
    }
    // Symmetrize, then dominate the diagonal.
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < i; ++j) {
            double v = 0.5 * (a(i, j) + a(j, i));
            a(i, j) = a(j, i) = v;
        }
    for (std::size_t i = 0; i < n; ++i) {
        double off = 0.0;
        for (std::size_t j = 0; j < n; ++j)
            if (j != i)
                off += std::fabs(a(i, j));
        a(i, i) = off + rng.uniform(0.5, 1.5);
    }

    RandomCase c;
    c.exact = la::Vector(n);
    for (std::size_t i = 0; i < n; ++i)
        c.exact[i] = rng.uniform(-0.8, 0.8);
    c.b = a.apply(c.exact);
    c.a = std::move(a);
    return c;
}

/**
 * Property sweep: the analog solver handles random SPD systems of
 * several sizes and seeds, always landing within ADC precision of
 * the true solution (scaled by sigma).
 */
class AnalogSolverProperty
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::uint64_t>>
{};

TEST_P(AnalogSolverProperty, SolvesWithinAdcPrecision)
{
    auto [n, seed] = GetParam();
    RandomCase c = makeCase(n, seed);

    analog::AnalogSolverOptions opts;
    opts.spec.variation.enabled = false;
    opts.spec.adc_noise_sigma = 0.0;
    opts.auto_calibrate = false;
    analog::AnalogLinearSolver solver(opts);
    auto out = solver.solve(c.a, c.b);

    double lsb = 2.0 / 255.0;
    double budget =
        out.solution_scale * lsb * 2.0 + 1e-6;
    EXPECT_LT(la::maxAbsDiff(out.u, c.exact), budget)
        << "n=" << n << " seed=" << seed
        << " sigma=" << out.solution_scale;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AnalogSolverProperty,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 5),
                       ::testing::Values<std::uint64_t>(11, 29, 47)));

/**
 * Property: scaling invariance. Multiplying A and b by any positive
 * factor must leave the recovered solution unchanged (the value/time
 * scaling soundness argument of Section VI-D).
 */
class ScalingInvariance : public ::testing::TestWithParam<double>
{};

TEST_P(ScalingInvariance, SolutionUnchangedUnderSystemScaling)
{
    double factor = GetParam();
    RandomCase c = makeCase(3, 123);

    analog::AnalogSolverOptions opts;
    opts.spec.variation.enabled = false;
    opts.spec.adc_noise_sigma = 0.0;
    opts.auto_calibrate = false;

    analog::AnalogLinearSolver s1(opts);
    auto base = s1.solve(c.a, c.b);

    la::DenseMatrix a2 = c.a;
    a2 *= factor;
    la::Vector b2;
    la::scale(factor, c.b, b2);
    analog::AnalogLinearSolver s2(opts);
    auto scaled = s2.solve(a2, b2);

    EXPECT_LT(la::maxAbsDiff(base.u, scaled.u), 0.03);
}

INSTANTIATE_TEST_SUITE_P(Factors, ScalingInvariance,
                         ::testing::Values(0.5, 10.0, 1000.0));

/**
 * Property: die-to-die reproducibility. The same seed yields the
 * same answer bit-for-bit; different dies differ but both stay
 * within the accuracy envelope after calibration.
 */
TEST(DieVariation, ReproduciblePerSeedAndBoundedAcrossDies)
{
    RandomCase c = makeCase(2, 5);

    auto run = [&](std::uint64_t die) {
        analog::AnalogSolverOptions opts;
        opts.die_seed = die;
        analog::AnalogLinearSolver solver(opts);
        return solver.solve(c.a, c.b).u;
    };
    la::Vector u1 = run(77);
    la::Vector u1_again = run(77);
    la::Vector u2 = run(78);
    EXPECT_EQ(u1.raw(), u1_again.raw());
    EXPECT_LT(la::maxAbsDiff(u1, c.exact), 0.05);
    EXPECT_LT(la::maxAbsDiff(u2, c.exact), 0.05);
}

} // namespace
} // namespace aa
