#include <gtest/gtest.h>

#include "aa/analog/refine.hh"
#include "aa/analog/solver.hh"
#include "aa/common/rng.hh"
#include "aa/la/direct.hh"

namespace aa {
namespace {

/**
 * The chip's register-file story: configuration is "akin to the
 * program"; one die runs many different problems back to back with
 * nothing but crossbar/register rewrites in between. These tests
 * stress that reconfiguration path.
 */

la::DenseMatrix
randomSpd(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    la::DenseMatrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < i; ++j)
            a(i, j) = a(j, i) = rng.uniform(-0.3, 0.3);
    for (std::size_t i = 0; i < n; ++i) {
        double off = 0.0;
        for (std::size_t j = 0; j < n; ++j)
            if (j != i)
                off += std::fabs(a(i, j));
        a(i, i) = off + rng.uniform(0.5, 1.5);
    }
    return a;
}

TEST(Reconfiguration, ManyProblemsOnOneDie)
{
    analog::AnalogSolverOptions opts;
    opts.spec.variation.enabled = false;
    opts.spec.adc_noise_sigma = 0.0;
    opts.auto_calibrate = false;
    analog::AnalogLinearSolver solver(opts);

    // Ten different systems, alternating sizes, one physical die
    // (regrown once for the larger size, then stable).
    for (std::uint64_t k = 0; k < 10; ++k) {
        std::size_t n = (k % 2) ? 4 : 2;
        la::DenseMatrix a = randomSpd(n, 500 + k);
        Rng rng(900 + k);
        la::Vector exact(n);
        for (auto &v : exact)
            v = rng.uniform(-0.7, 0.7);
        la::Vector b = a.apply(exact);

        auto out = solver.solve(a, b);
        EXPECT_LT(la::maxAbsDiff(out.u, exact),
                  out.solution_scale * 3.0 / 255.0 + 1e-6)
            << "problem " << k;
    }
}

TEST(Reconfiguration, CalibrationSurvivesReconfiguration)
{
    // Calibrate once; the trims must keep paying off across many
    // remappings ("remain constant ... between solving different
    // problems", Section III-B).
    analog::AnalogSolverOptions opts;
    opts.die_seed = 71; // realistic variation + calibration
    analog::AnalogLinearSolver solver(opts);

    for (std::uint64_t k = 0; k < 5; ++k) {
        la::DenseMatrix a = randomSpd(3, 600 + k);
        Rng rng(700 + k);
        la::Vector exact(3);
        for (auto &v : exact)
            v = rng.uniform(-0.6, 0.6);
        la::Vector b = a.apply(exact);
        auto out = solver.solve(a, b);
        EXPECT_LT(la::maxAbsDiff(out.u, exact), 0.05)
            << "problem " << k;
    }
    // The die was calibrated exactly once.
    EXPECT_TRUE(solver.chipRef().calibrated());
}

TEST(Reconfiguration, RefinementInterleavedWithFreshProblems)
{
    // Algorithm 2 on problem A, a different problem B in between,
    // then more refinement on A: per-solve configuration must not
    // leak across.
    analog::AnalogSolverOptions opts;
    opts.spec.variation.enabled = false;
    opts.spec.adc_noise_sigma = 0.0;
    opts.auto_calibrate = false;
    analog::AnalogLinearSolver solver(opts);

    la::DenseMatrix a1 = randomSpd(3, 11);
    la::Vector b1 = a1.apply(la::Vector{0.3, -0.4, 0.5});
    la::DenseMatrix a2 = randomSpd(3, 22);
    la::Vector b2 = a2.apply(la::Vector{0.1, 0.6, -0.2});

    analog::RefineOptions ropts;
    ropts.tolerance = 1e-8;
    auto r1 = analog::refineSolve(solver, a1, b1, ropts);
    auto other = solver.solve(a2, b2);
    auto r1_again = analog::refineSolve(solver, a1, b1, ropts);

    EXPECT_TRUE(r1.converged);
    EXPECT_TRUE(r1_again.converged);
    EXPECT_LT(la::maxAbsDiff(r1.u, r1_again.u), 1e-6);
    EXPECT_LT(la::maxAbsDiff(other.u,
                             la::Vector{0.1, 0.6, -0.2}),
              0.02);
}

} // namespace
} // namespace aa
