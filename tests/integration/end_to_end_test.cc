#include <gtest/gtest.h>

#include "aa/analog/decompose.hh"
#include "aa/analog/refine.hh"
#include "aa/analog/solver.hh"
#include "aa/cost/model.hh"
#include "aa/la/direct.hh"
#include "aa/pde/manufactured.hh"
#include "aa/solver/iterative.hh"

namespace aa {
namespace {

analog::AnalogSolverOptions
quietOptions()
{
    analog::AnalogSolverOptions opts;
    opts.spec.variation.enabled = false;
    opts.spec.adc_noise_sigma = 0.0;
    opts.auto_calibrate = false;
    return opts;
}

TEST(EndToEnd, PoissonViaAnalogMatchesDigitalCgAtEqualPrecision)
{
    // The paper's core comparison at small scale: both solvers run
    // to the 1/256 rule and must agree with the exact solution to
    // that precision.
    auto prob = pde::manufacturedProblem(2, 3);
    la::Vector exact_sol =
        la::solveDense(prob.a.toDense(), prob.b);

    // Digital CG with the paper's stopping rule.
    la::CsrOperator op(prob.a);
    solver::IterOptions copts;
    copts.criterion = solver::Criterion::MaxChange;
    copts.tol = la::normInf(exact_sol) / 256.0;
    auto cg = solver::conjugateGradient(op, prob.b, copts);
    EXPECT_TRUE(cg.converged);

    // Analog accelerator.
    analog::AnalogLinearSolver asolver(quietOptions());
    auto analog_out = asolver.solve(prob.a.toDense(), prob.b);

    double tol = la::normInf(exact_sol) / 256.0 * 4.0;
    EXPECT_LT(la::maxAbsDiff(cg.x, exact_sol), tol);
    EXPECT_LT(la::maxAbsDiff(analog_out.u, exact_sol), tol);
}

TEST(EndToEnd, RefinedAnalogReachesDigitalPrecision)
{
    auto prob = pde::manufacturedProblem(2, 3);
    la::Vector exact_sol =
        la::solveDense(prob.a.toDense(), prob.b);
    analog::AnalogLinearSolver asolver(quietOptions());
    analog::RefineOptions ropts;
    ropts.tolerance = 1e-9;
    auto out =
        analog::refineSolve(asolver, prob.a.toDense(), prob.b, ropts);
    EXPECT_TRUE(out.converged);
    EXPECT_LT(la::maxAbsDiff(out.u, exact_sol), 1e-7);
}

TEST(EndToEnd, DecomposedAnalogSolveOfOversizedProblem)
{
    // 5x5 grid = 25 vars on blocks of 5: the full Section IV-B
    // pipeline (scale -> map -> run -> outer iteration).
    auto prob = pde::manufacturedProblem(2, 5);
    la::Vector exact_sol =
        la::solveDense(prob.a.toDense(), prob.b);

    analog::AnalogLinearSolver asolver(quietOptions());
    analog::DecomposeOptions dopts;
    dopts.max_block_vars = 5;
    dopts.tol = 1.0 / 512.0;
    dopts.max_outer_iters = 200;
    auto out = analog::solveDecomposedAnalog(asolver, prob.a,
                                             prob.b, dopts);
    EXPECT_TRUE(out.converged);
    double scale = std::max(1.0, la::normInf(exact_sol));
    EXPECT_LT(la::maxAbsDiff(out.u, exact_sol), 0.03 * scale);
}

TEST(EndToEnd, CostModelAgreesWithCircuitSimulationTrend)
{
    // The methodology check: measured circuit-simulation solve
    // times for growing N scale like the analytical model. The model
    // assumes gain-range-driven scaling (s = maxAbs(A)/(0.95 g)), so
    // the workload's b is kept small enough that the bias range
    // never dominates s, and range retries are disabled.
    analog::AnalogSolverOptions opts = quietOptions();
    opts.underrange_threshold = -1.0;
    analog::AnalogLinearSolver solver(opts);

    cost::AcceleratorDesign design(opts.spec.bandwidth_hz,
                                   opts.spec.adc_bits,
                                   opts.spec.max_gain);
    std::vector<double> measured, modeled;
    for (std::size_t l : {2u, 3u, 4u}) {
        auto prob = pde::manufacturedProblem(1, l);
        la::Vector b;
        double cap =
            0.5 * prob.a.maxAbs() / opts.spec.max_gain;
        la::scale(cap / la::normInf(prob.b), prob.b, b);
        auto out = solver.solve(prob.a.toDense(), b);
        ASSERT_EQ(out.attempts, 1u) << "l=" << l;
        measured.push_back(out.analog_seconds);
        modeled.push_back(
            design.solveTimeSeconds(cost::PoissonShape{1, l}));
    }
    // Ratios between consecutive sizes agree within ~50%: the model
    // captures the trend the circuit simulation exhibits.
    for (std::size_t k = 1; k < measured.size(); ++k) {
        double measured_ratio = measured[k] / measured[k - 1];
        double model_ratio = modeled[k] / modeled[k - 1];
        EXPECT_NEAR(measured_ratio / model_ratio, 1.0, 0.5);
    }
}

TEST(EndToEnd, AnalogWaveformFeedsDigitalPostprocessing)
{
    // The "outputs processed further digitally" scenario: solve on
    // the accelerator, compute the residual digitally, confirm the
    // digital host can certify the solution.
    auto prob = pde::manufacturedProblem(2, 3);
    analog::AnalogLinearSolver asolver(quietOptions());
    auto out = asolver.solve(prob.a.toDense(), prob.b);
    la::Vector r = prob.b - prob.a.apply(out.u);
    double rel = la::norm2(r) / la::norm2(prob.b);
    EXPECT_LT(rel, 0.05);
}

} // namespace
} // namespace aa
