/**
 * @file
 * Solve-request service: the determinism contract (a trace through
 * the service is bit-identical to driving a die directly in the
 * stamped execution order), admission control and backpressure,
 * priority and deadline handling, cache-affine routing vs the
 * round-robin baseline, and metrics accounting. The TSan leg of
 * tools/check.sh runs this binary at AASIM_THREADS=1 and =4.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "aa/analog/die_pool.hh"
#include "aa/analog/refine.hh"
#include "aa/common/logging.hh"
#include "aa/service/service.hh"
#include "common/solve_properties.hh"
#include "common/trace_matcher.hh"

namespace aa::service {
namespace {

const bool g_quiet = [] {
    setLogLevel(LogLevel::Quiet);
    return true;
}();

analog::AnalogSolverOptions
quietOptions()
{
    analog::AnalogSolverOptions opts;
    opts.spec.variation.enabled = false;
    opts.spec.adc_noise_sigma = 0.0;
    opts.auto_calibrate = false;
    return opts;
}

/** Pattern A: a dense 2x2 SPD system. */
std::shared_ptr<const la::DenseMatrix>
matrixA()
{
    return std::make_shared<const la::DenseMatrix>(
        la::DenseMatrix::fromRows({{4.0, -1.0}, {-1.0, 3.0}}));
}

/** Pattern B: a tridiagonal 3x3 SPD system (distinct hash and n). */
std::shared_ptr<const la::DenseMatrix>
matrixB()
{
    return std::make_shared<const la::DenseMatrix>(
        la::DenseMatrix::fromRows({{4.0, -1.0, 0.0},
                                   {-1.0, 4.0, -1.0},
                                   {0.0, -1.0, 4.0}}));
}

SolveRequest
request(std::shared_ptr<const la::DenseMatrix> a, la::Vector b,
        int priority = 0)
{
    SolveRequest r;
    r.a = std::move(a);
    r.b = std::move(b);
    r.priority = priority;
    return r;
}

/** An alternating A/B trace with per-request RHS variants. */
std::vector<SolveRequest>
mixedTrace(std::size_t count)
{
    auto a = matrixA();
    auto b = matrixB();
    std::vector<SolveRequest> trace;
    for (std::size_t i = 0; i < count; ++i) {
        double f = 1.0 + 0.125 * static_cast<double>(i);
        if (i % 2 == 0)
            trace.push_back(request(a, la::Vector{f, 2.0 * f}));
        else
            trace.push_back(
                request(b, la::Vector{f, 0.5 * f, -f}));
    }
    return trace;
}

TEST(Service, TraceIsBitIdenticalToDirectDie)
{
    // Two single-die pools from the same base options are identical
    // fabrication corners: one backs the service, the other replays
    // the stamped execution order directly on the solver API.
    analog::DiePool service_pool(1, quietOptions());
    analog::DiePool direct_pool(1, quietOptions());

    ServiceOptions sopts;
    sopts.start_paused = true; // queue the whole trace as one round
    SolveService svc(service_pool, sopts);

    auto trace = mixedTrace(6);
    std::vector<std::future<SolveResponse>> futures;
    for (auto &req : trace)
        futures.push_back(svc.submit(SolveRequest(req)));
    svc.resume();
    svc.drain();

    std::vector<SolveResponse> responses;
    for (auto &f : futures)
        responses.push_back(f.get());
    svc.stop();

    // Replay directly in the service's stamped execution order; every
    // response must match bit for bit.
    std::vector<std::size_t> order(responses.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t x, std::size_t y) {
                  return responses[x].exec_order <
                         responses[y].exec_order;
              });
    for (std::size_t idx : order) {
        const SolveResponse &r = responses[idx];
        ASSERT_EQ(r.status, RequestStatus::Ok);
        auto direct =
            direct_pool.die(0).solve(*trace[idx].a, trace[idx].b);
        testutil::expectSolutionsBitEqual(
            direct.u, r.u, "request " + std::to_string(idx));
        EXPECT_EQ(r.attempts, direct.attempts);
        // The structural solve trace must match too: same config
        // traffic, same cache behaviour, request by request.
        EXPECT_TRUE(testutil::phasesMatch(direct.phases, r.phases))
            << "request " << idx;
    }
}

TEST(Service, BatchingGroupsCompatibleRequests)
{
    analog::DiePool pool(1, quietOptions());
    ServiceOptions sopts;
    sopts.start_paused = true;
    SolveService svc(pool, sopts);

    auto a = matrixA();
    auto b = matrixB();
    auto f0 = svc.submit(request(a, {1.0, 2.0}));
    auto f1 = svc.submit(request(b, {1.0, 0.0, 1.0}));
    auto f2 = svc.submit(request(a, {0.5, 1.0}));
    svc.resume();
    svc.drain();
    svc.stop();

    SolveResponse r0 = f0.get(), r1 = f1.get(), r2 = f2.get();
    // Pattern A's two requests run back to back on the one live
    // configuration; B runs after the group.
    EXPECT_EQ(r0.exec_order, 0u);
    EXPECT_EQ(r2.exec_order, 1u);
    EXPECT_EQ(r1.exec_order, 2u);
    // The grouped second A request reuses the compiled structure.
    EXPECT_EQ(r2.phases.cache_hits, 1u);
    EXPECT_TRUE(r2.phases.structure_reused);

    auto report = pool.report();
    EXPECT_EQ(report.total().cache_misses, 2u); // one per pattern
    EXPECT_EQ(report.total().solves, 3u);
}

TEST(Service, AffinityRoutesPatternsToWarmDies)
{
    analog::DiePool pool(2, quietOptions());
    ServiceOptions sopts;
    sopts.start_paused = true;
    SolveService svc(pool, sopts);

    auto submitRound = [&] {
        std::vector<std::future<SolveResponse>> fs;
        for (auto &req : mixedTrace(4))
            fs.push_back(svc.submit(std::move(req)));
        return fs;
    };

    // Cold round: the two pattern groups land on distinct dies.
    auto round1 = submitRound();
    svc.resume();
    svc.drain();
    std::size_t die_a = round1[0].get().die;
    std::size_t die_b = round1[1].get().die;
    EXPECT_NE(die_a, die_b);
    EXPECT_EQ(round1[2].get().die, die_a);
    EXPECT_EQ(round1[3].get().die, die_b);

    // Warm round: every request is routed back to the die holding its
    // compiled structure, and nothing recompiles.
    svc.pause();
    auto round2 = submitRound();
    svc.resume();
    svc.drain();
    for (std::size_t i = 0; i < round2.size(); ++i) {
        SolveResponse r = round2[i].get();
        EXPECT_TRUE(r.affine_hit) << "request " << i;
        EXPECT_EQ(r.die, i % 2 == 0 ? die_a : die_b);
        EXPECT_EQ(r.phases.cache_misses, 0u);
    }
    svc.stop();

    ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.cache_misses, 2u); // one compile per pattern, ever
    EXPECT_EQ(m.affinity_hits, 4u);
    EXPECT_EQ(m.completed, 8u);
}

TEST(Service, AffinityBeatsRoundRobinOnMixedPatterns)
{
    // The acceptance workload: a steady alternating two-pattern
    // stream over a 3-die pool. Affine routing pins each pattern to
    // one warm die; round-robin re-ships structures every request.
    const std::size_t kRequests = 24;
    auto runMode = [&](bool affine) {
        analog::DiePool pool(3, quietOptions());
        ServiceOptions sopts;
        sopts.cache_affinity = affine;
        SolveService svc(pool, sopts);
        std::vector<std::future<SolveResponse>> fs;
        for (auto &req : mixedTrace(kRequests))
            fs.push_back(svc.submit(std::move(req)));
        for (auto &f : fs)
            EXPECT_EQ(f.get().status, RequestStatus::Ok);
        svc.stop();
        return svc.metrics();
    };

    ServiceMetrics affine = runMode(true);
    ServiceMetrics rr = runMode(false);
    EXPECT_EQ(affine.completed, kRequests);
    EXPECT_EQ(rr.completed, kRequests);

    // Strictly higher steady-state hit ratio: affinity compiles each
    // pattern once; round-robin compiles it on every die it touches.
    EXPECT_GT(affine.cacheHitRatio(), rr.cacheHitRatio());
    EXPECT_EQ(affine.cache_misses, 2u);
    EXPECT_GT(rr.cache_misses, affine.cache_misses);
    // And the affine stream pays less configuration traffic, since a
    // warm die only rebinds values on its live structure.
    EXPECT_LT(affine.config_bytes, rr.config_bytes);
}

TEST(Service, BackpressureRejectsWhenQueueIsFull)
{
    analog::DiePool pool(1, quietOptions());
    ServiceOptions sopts;
    sopts.queue_capacity = 2;
    sopts.start_paused = true;
    SolveService svc(pool, sopts);

    auto a = matrixA();
    auto f0 = svc.submit(request(a, {1.0, 2.0}));
    auto f1 = svc.submit(request(a, {2.0, 1.0}));
    auto f2 = svc.submit(request(a, {3.0, 3.0}));

    // The overflow request is rejected immediately, with a reason.
    ASSERT_EQ(f2.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    SolveResponse r2 = f2.get();
    EXPECT_EQ(r2.status, RequestStatus::RejectedQueueFull);
    EXPECT_NE(r2.reason.find("capacity 2"), std::string::npos);

    svc.resume();
    svc.drain();
    EXPECT_EQ(f0.get().status, RequestStatus::Ok);
    EXPECT_EQ(f1.get().status, RequestStatus::Ok);
    svc.stop();

    ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.rejected_full, 1u);
    EXPECT_EQ(m.submitted, 2u);
    EXPECT_EQ(m.queue_peak, 2u);
    EXPECT_EQ(m.queue_depth, 0u);
}

TEST(Service, SubmitAfterStopIsRejected)
{
    analog::DiePool pool(1, quietOptions());
    SolveService svc(pool);
    svc.stop();
    auto f = svc.submit(request(matrixA(), {1.0, 2.0}));
    SolveResponse r = f.get();
    EXPECT_EQ(r.status, RequestStatus::RejectedShutdown);
    EXPECT_EQ(svc.metrics().rejected_shutdown, 1u);
}

TEST(Service, MalformedRequestsAreRejected)
{
    analog::DiePool pool(1, quietOptions());
    SolveService svc(pool);

    SolveRequest null_matrix;
    null_matrix.b = la::Vector{1.0};
    EXPECT_EQ(svc.submit(std::move(null_matrix)).get().status,
              RequestStatus::RejectedInvalid);

    auto mismatched = request(matrixA(), {1.0, 2.0, 3.0});
    EXPECT_EQ(svc.submit(std::move(mismatched)).get().status,
              RequestStatus::RejectedInvalid);

    auto bad_warm_start = request(matrixA(), {1.0, 2.0});
    bad_warm_start.u0 = la::Vector{1.0, 2.0, 3.0};
    EXPECT_EQ(svc.submit(std::move(bad_warm_start)).get().status,
              RequestStatus::RejectedInvalid);

    svc.stop();
    EXPECT_EQ(svc.metrics().rejected_invalid, 3u);
    EXPECT_EQ(svc.metrics().submitted, 0u);
}

TEST(Service, PriorityOrdersExecutionWithinARound)
{
    analog::DiePool pool(1, quietOptions());
    ServiceOptions sopts;
    sopts.start_paused = true;
    SolveService svc(pool, sopts);

    auto low = svc.submit(request(matrixA(), {1.0, 2.0}, 0));
    auto high = svc.submit(request(matrixB(), {1.0, 0.0, 1.0}, 5));
    svc.resume();
    svc.drain();
    svc.stop();

    EXPECT_LT(high.get().exec_order, low.get().exec_order);
}

TEST(Service, DeadlineExpiredInQueueSkipsTheSolve)
{
    analog::DiePool pool(1, quietOptions());
    ServiceOptions sopts;
    sopts.start_paused = true;
    SolveService svc(pool, sopts);

    auto req = request(matrixA(), {1.0, 2.0});
    req.deadline_seconds = 1e-4;
    auto f = svc.submit(std::move(req));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    svc.resume();
    svc.drain();
    svc.stop();

    SolveResponse r = f.get();
    EXPECT_EQ(r.status, RequestStatus::DeadlineExpired);
    EXPECT_TRUE(r.u.empty()); // never reached a die
    EXPECT_EQ(svc.metrics().deadline_expired, 1u);
    EXPECT_EQ(pool.report().total().solves, 0u);
}

TEST(Service, RefinementMeetsToleranceAndCountsRetries)
{
    analog::DiePool pool(1, quietOptions());
    SolveService svc(pool);

    auto a = matrixA();
    auto req = request(a, {1.0, 2.0});
    req.tolerance = 1e-8;
    req.max_refine_passes = 6;
    SolveResponse r = svc.submit(std::move(req)).get();
    svc.stop();

    ASSERT_EQ(r.status, RequestStatus::Ok);
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.residual, 1e-8);
    EXPECT_GE(r.refine_passes, 2u); // ADC floor forces extra passes
    EXPECT_EQ(svc.metrics().retries, r.refine_passes - 1);

    // The digital cross-check.
    la::Vector residual = req.b; // moved-from above; rebuild
    residual = la::Vector{1.0, 2.0} - a->apply(r.u);
    EXPECT_LE(la::norm2(residual), 1e-8 * la::norm2(la::Vector{1.0, 2.0}));
}

TEST(Service, ThreadCountDoesNotChangeResults)
{
    // Same trace, same seeds, dispatch concurrency 1 vs. 4: every
    // response must be bitwise identical (per-die sequences are fixed
    // by the deterministic router; threads only overlap dies).
    auto runWith = [&](std::size_t threads) {
        analog::DiePool pool(3, quietOptions());
        ServiceOptions sopts;
        sopts.threads = threads;
        sopts.start_paused = true;
        SolveService svc(pool, sopts);
        std::vector<std::future<SolveResponse>> fs;
        for (auto &req : mixedTrace(9))
            fs.push_back(svc.submit(std::move(req)));
        svc.resume();
        svc.drain();
        svc.stop();
        std::vector<SolveResponse> rs;
        for (auto &f : fs)
            rs.push_back(f.get());
        return rs;
    };

    auto serial = runWith(1);
    auto threaded = runWith(4);
    ASSERT_EQ(serial.size(), threaded.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].die, threaded[i].die);
        EXPECT_EQ(serial[i].exec_order, threaded[i].exec_order);
        testutil::expectSolutionsBitEqual(
            serial[i].u, threaded[i].u,
            "request " + std::to_string(i));
        EXPECT_TRUE(testutil::phasesMatch(serial[i].phases,
                                          threaded[i].phases))
            << "request " << i;
        EXPECT_TRUE(testutil::chainsMatch(serial[i].failure_chain,
                                          threaded[i].failure_chain))
            << "request " << i;
    }
}

TEST(Service, BatchedResponsesAgreeAndAmortizeConfig)
{
    // batch_multi_rhs folds each die's contiguous same-matrix runs
    // into one solveBatch call. Member 0 of every batch is
    // bit-identical to the solo path; members after it start from the
    // derived range hint (sigma_prev scaled by the RHS-peak ratio),
    // so proportional group members reproduce the discovered rung in
    // one attempt and ship no config bytes. Answers agree with the
    // solo path at round-off level (the sigma they unscale by
    // differs only in its last ulps); what changes is the cost:
    // fewer attempts, strictly less config traffic.
    //
    // The pattern is chosen stiff (diagonal 8) so its floored first
    // rung underranges: every unhinted solo solve pays a scale-up
    // retry and re-ships the rung walk, which is exactly the traffic
    // the derived hints eliminate.
    auto stiff = std::make_shared<const la::DenseMatrix>(
        la::DenseMatrix::fromRows({{8.0, -1.0}, {-1.0, 8.0}}));
    auto trace = [&] {
        std::vector<SolveRequest> t;
        for (std::size_t i = 0; i < 8; ++i) {
            double f = 1.0 + 0.125 * static_cast<double>(i);
            t.push_back(request(stiff, la::Vector{f, 2.0 * f}));
        }
        return t;
    };

    struct Run {
        std::vector<SolveResponse> responses;
        ServiceMetrics metrics;
        analog::PoolReport report;
    };
    auto runWith = [&](bool batch) {
        analog::DiePool pool(1, quietOptions());
        ServiceOptions sopts;
        sopts.start_paused = true; // one round: groups stay contiguous
        sopts.batch_multi_rhs = batch;
        SolveService svc(pool, sopts);
        std::vector<std::future<SolveResponse>> fs;
        for (auto &req : trace())
            fs.push_back(svc.submit(std::move(req)));
        svc.resume();
        svc.drain();
        Run run;
        for (auto &f : fs)
            run.responses.push_back(f.get());
        run.metrics = svc.metrics();
        svc.stop();
        run.report = pool.report();
        return run;
    };

    Run solo = runWith(false);
    Run batched = runWith(true);
    ASSERT_EQ(solo.responses.size(), batched.responses.size());
    std::size_t solo_attempts = 0, batched_attempts = 0;
    for (std::size_t i = 0; i < solo.responses.size(); ++i) {
        const SolveResponse &s = solo.responses[i];
        const SolveResponse &b = batched.responses[i];
        ASSERT_EQ(s.status, RequestStatus::Ok) << "request " << i;
        ASSERT_EQ(b.status, RequestStatus::Ok) << "request " << i;
        EXPECT_EQ(s.die, b.die) << "request " << i;
        EXPECT_EQ(s.exec_order, b.exec_order) << "request " << i;
        ASSERT_EQ(s.u.size(), b.u.size());
        for (std::size_t j = 0; j < s.u.size(); ++j) {
            if (b.exec_order == 0) {
                // The batch's first member IS the solo solve.
                EXPECT_EQ(s.u[j], b.u[j]) << "component " << j;
            } else {
                EXPECT_NEAR(s.u[j], b.u[j],
                            1e-12 *
                                std::max(1.0, std::fabs(s.u[j])))
                    << "request " << i << " component " << j;
            }
        }
        EXPECT_LE(b.attempts, s.attempts) << "request " << i;
        EXPECT_EQ(s.converged, b.converged) << "request " << i;
        EXPECT_EQ(s.verified, b.verified) << "request " << i;
        solo_attempts += s.attempts;
        batched_attempts += b.attempts;
    }

    // Derived hints let the later batch members skip the unhinted
    // ladder's range discovery: fewer total attempts, strictly less
    // delta traffic on the wire.
    EXPECT_LT(batched_attempts, solo_attempts);
    EXPECT_LT(batched.metrics.config_bytes,
              solo.metrics.config_bytes);

    // One pattern, one die, one round: a single batch of eight.
    EXPECT_EQ(solo.metrics.rhs_batches, 0u);
    EXPECT_EQ(batched.metrics.rhs_batches, 1u);
    EXPECT_EQ(batched.metrics.rhs_batched_requests, 8u);
    EXPECT_EQ(batched.report.total().batches, 1u);
    EXPECT_EQ(batched.report.total().solves, 8u);

    // The batch also amortizes the per-request cache fetch (1 miss
    // + 7 hits collapse to the 1 miss) and the eigen analysis.
    EXPECT_EQ(solo.metrics.cache_misses, 1u);
    EXPECT_EQ(solo.metrics.cache_hits, 7u);
    EXPECT_EQ(batched.metrics.cache_misses, 1u);
    EXPECT_EQ(batched.metrics.cache_hits, 0u);
}

TEST(Service, MetricsAccountForTheWholeStream)
{
    analog::DiePool pool(2, quietOptions());
    SolveService svc(pool);
    std::vector<std::future<SolveResponse>> fs;
    for (auto &req : mixedTrace(12))
        fs.push_back(svc.submit(std::move(req)));
    for (auto &f : fs)
        EXPECT_EQ(f.get().status, RequestStatus::Ok);
    svc.drain();
    svc.stop();

    ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.submitted, 12u);
    EXPECT_EQ(m.completed, 12u);
    EXPECT_EQ(m.ok, 12u);
    EXPECT_EQ(m.queue_depth, 0u);
    EXPECT_GE(m.batches, 1u);

    std::size_t die_requests = 0;
    double busy = 0.0;
    for (const DieServiceStats &d : m.dies) {
        die_requests += d.requests;
        busy += d.busy_seconds;
    }
    EXPECT_EQ(die_requests, 12u);
    EXPECT_GT(busy, 0.0);

    EXPECT_GT(m.latency_p50, 0.0);
    EXPECT_LE(m.latency_p50, m.latency_p95);
    EXPECT_LE(m.latency_p95, m.latency_p99);
    EXPECT_LE(m.latency_p99, m.latency_max);

    // The pool-level report sees the same work (the service records
    // its usage through DiePool::recordUsage).
    EXPECT_EQ(pool.report().total().solves, 12u);
}

} // namespace
} // namespace aa::service
