/**
 * @file
 * The sharded fleet's contracts: a 1-rack/1-die fleet is
 * bit-identical to a plain SolveService; the consistent-hash ring
 * moves a bounded fraction of patterns on membership changes and
 * only onto the joining rack; weighted-fair admission lets no tenant
 * starve another (and drains tenants interleaved, not
 * arrival-ordered); heat-driven placement replicates hot programs
 * ahead of demand; and placements migrate off quarantined dies with
 * zero recompiles. The TSan --fleet leg of tools/check.sh runs this
 * binary at AASIM_THREADS=1 and =4.
 */

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "aa/analog/die_pool.hh"
#include "aa/common/logging.hh"
#include "aa/compiler/program.hh"
#include "aa/service/placement.hh"
#include "aa/service/shard.hh"
#include "aa/service/service.hh"
#include "common/solve_properties.hh"
#include "common/trace_matcher.hh"

namespace aa::service {
namespace {

const bool g_quiet = [] {
    setLogLevel(LogLevel::Quiet);
    return true;
}();

analog::AnalogSolverOptions
quietOptions()
{
    analog::AnalogSolverOptions opts;
    opts.spec.variation.enabled = false;
    opts.spec.adc_noise_sigma = 0.0;
    opts.auto_calibrate = false;
    return opts;
}

/** Pattern A: a dense 2x2 SPD system. */
std::shared_ptr<const la::DenseMatrix>
matrixA()
{
    return std::make_shared<const la::DenseMatrix>(
        la::DenseMatrix::fromRows({{4.0, -1.0}, {-1.0, 3.0}}));
}

/** Pattern B: a tridiagonal 3x3 SPD system (distinct hash and n). */
std::shared_ptr<const la::DenseMatrix>
matrixB()
{
    return std::make_shared<const la::DenseMatrix>(
        la::DenseMatrix::fromRows({{4.0, -1.0, 0.0},
                                   {-1.0, 4.0, -1.0},
                                   {0.0, -1.0, 4.0}}));
}

SolveRequest
request(std::shared_ptr<const la::DenseMatrix> a, la::Vector b,
        std::string tenant = "")
{
    SolveRequest r;
    r.a = std::move(a);
    r.b = std::move(b);
    r.tenant = std::move(tenant);
    return r;
}

std::vector<SolveRequest>
mixedTrace(std::size_t count)
{
    auto a = matrixA();
    auto b = matrixB();
    std::vector<SolveRequest> trace;
    for (std::size_t i = 0; i < count; ++i) {
        double f = 1.0 + 0.125 * static_cast<double>(i);
        if (i % 2 == 0)
            trace.push_back(request(a, la::Vector{f, 2.0 * f}));
        else
            trace.push_back(request(b, la::Vector{f, 0.5 * f, -f}));
    }
    return trace;
}

TEST(Fleet, SingleRackTraceIsBitIdenticalToPlainService)
{
    // The degeneracy contract: one rack, one die, and the sharded
    // front door must execute a trace exactly like today's plain
    // SolveService — same dies, same execution slots, same bits,
    // same structural phase traces.
    analog::DiePool plain_pool(1, quietOptions());
    ServiceOptions sopts;
    sopts.start_paused = true;
    SolveService plain(plain_pool, sopts);

    FleetOptions fopts;
    fopts.racks = 1;
    fopts.dies_per_rack = 1;
    fopts.shard.service.start_paused = true;
    ShardedSolveService fleet(quietOptions(), fopts);

    auto trace = mixedTrace(6);
    std::vector<std::future<SolveResponse>> pf, ff;
    for (auto &req : trace) {
        pf.push_back(plain.submit(SolveRequest(req)));
        ff.push_back(fleet.submit(SolveRequest(req)));
    }
    plain.resume();
    plain.drain();
    plain.stop();
    fleet.resume();
    fleet.drain();
    fleet.stop();

    for (std::size_t i = 0; i < trace.size(); ++i) {
        SolveResponse p = pf[i].get();
        SolveResponse f = ff[i].get();
        ASSERT_EQ(p.status, RequestStatus::Ok) << "request " << i;
        ASSERT_EQ(f.status, RequestStatus::Ok) << "request " << i;
        EXPECT_EQ(p.die, f.die) << "request " << i;
        EXPECT_EQ(p.exec_order, f.exec_order) << "request " << i;
        EXPECT_EQ(p.attempts, f.attempts) << "request " << i;
        testutil::expectSolutionsBitEqual(
            p.u, f.u, "request " + std::to_string(i));
        EXPECT_TRUE(testutil::phasesMatch(p.phases, f.phases))
            << "request " << i;
    }
}

TEST(Fleet, RoutesPatternsToTheOwningRack)
{
    FleetOptions fopts;
    fopts.racks = 4;
    fopts.dies_per_rack = 1;
    ShardedSolveService fleet(quietOptions(), fopts);

    std::uint64_t ha = compiler::sparsityHash(*matrixA());
    std::uint64_t hb = compiler::sparsityHash(*matrixB());
    std::size_t rack_a = fleet.rackOf(ha);
    std::size_t rack_b = fleet.rackOf(hb);
    // Routing is pure: asking again gives the same answer.
    EXPECT_EQ(fleet.rackOf(ha), rack_a);
    EXPECT_EQ(fleet.rackOf(hb), rack_b);

    std::vector<std::future<SolveResponse>> fs;
    for (auto &req : mixedTrace(8))
        fs.push_back(fleet.submit(std::move(req)));
    for (auto &f : fs)
        EXPECT_EQ(f.get().status, RequestStatus::Ok);
    fleet.stop();

    // Each pattern's whole stream landed on its owning rack.
    std::vector<std::size_t> expect(fleet.racks(), 0);
    expect[rack_a] += 4;
    expect[rack_b] += 4;
    FleetMetrics m = fleet.metrics();
    EXPECT_EQ(m.submitted, 8u);
    EXPECT_EQ(m.completed, 8u);
    for (std::size_t r = 0; r < fleet.racks(); ++r)
        EXPECT_EQ(m.shards[r].service.submitted, expect[r])
            << "rack " << r;
}

TEST(Ring, MembershipChangeMovesBoundedFractionOntoNewRack)
{
    const std::size_t kKeys = 4096;
    ConsistentHashRing ring(64);
    for (std::size_t r = 0; r < 4; ++r)
        ring.addRack(r);

    std::vector<std::size_t> before(kKeys);
    for (std::size_t k = 0; k < kKeys; ++k)
        before[k] = ring.owner(k * 2654435761ULL);

    // Adding rack 4: every moved key moves TO the new rack (no
    // reshuffling between survivors), and the moved fraction is
    // near 1/5 — well under the 2/5 bound we assert.
    ring.addRack(4);
    std::size_t moved = 0;
    for (std::size_t k = 0; k < kKeys; ++k) {
        std::size_t owner = ring.owner(k * 2654435761ULL);
        if (owner != before[k]) {
            ++moved;
            EXPECT_EQ(owner, 4u) << "key " << k
                                 << " moved between old racks";
        }
    }
    EXPECT_GT(moved, 0u);
    EXPECT_LT(moved, kKeys * 2 / 5);

    // Removing it restores the exact previous assignment.
    ring.removeRack(4);
    for (std::size_t k = 0; k < kKeys; ++k)
        ASSERT_EQ(ring.owner(k * 2654435761ULL), before[k])
            << "key " << k;
}

TEST(Shard, FloodingTenantCannotStarveTheOther)
{
    // Both tenants declared at weight 1 on a capacity-8 gate: each
    // is entitled to 4 in-flight slots. Bob floods 10 requests; the
    // quota bounces 6 of them immediately, alice's 4 all admit, and
    // the round interleaves the two tenants by weighted-fair rank
    // instead of draining bob first.
    ShardOptions opts;
    opts.admission_capacity = 8;
    opts.tenants = {{"alice", 1.0}, {"bob", 1.0}};
    opts.service.start_paused = true;
    Shard shard(1, quietOptions(), opts);

    auto a = matrixA();
    std::vector<std::future<SolveResponse>> bob, alice;
    for (std::size_t i = 0; i < 10; ++i)
        bob.push_back(shard.submit(
            request(a, {1.0 + 0.1 * i, 2.0}, "bob")));
    for (std::size_t i = 0; i < 4; ++i)
        alice.push_back(shard.submit(
            request(a, {3.0 + 0.1 * i, 1.0}, "alice")));
    shard.resume();
    shard.drain();
    shard.stop();

    std::size_t bob_ok = 0, bob_quota = 0;
    std::vector<std::size_t> bob_exec;
    for (auto &f : bob) {
        SolveResponse r = f.get();
        if (r.status == RequestStatus::Ok) {
            ++bob_ok;
            bob_exec.push_back(r.exec_order);
        } else {
            EXPECT_EQ(r.status, RequestStatus::RejectedQuota);
            EXPECT_NE(r.reason.find("bob"), std::string::npos);
            ++bob_quota;
        }
    }
    EXPECT_EQ(bob_ok, 4u);
    EXPECT_EQ(bob_quota, 6u);

    // Both tenants progress; weighted-fair ranks interleave them
    // (bob's k-th admission at slot 2k, alice's at 2k+1) even
    // though every bob request was submitted first.
    for (std::size_t i = 0; i < alice.size(); ++i) {
        SolveResponse r = alice[i].get();
        ASSERT_EQ(r.status, RequestStatus::Ok) << "alice " << i;
        EXPECT_EQ(r.exec_order, 2 * i + 1) << "alice " << i;
    }
    std::sort(bob_exec.begin(), bob_exec.end());
    for (std::size_t i = 0; i < bob_exec.size(); ++i)
        EXPECT_EQ(bob_exec[i], 2 * i) << "bob " << i;

    std::vector<TenantStats> tenants = shard.tenantStats();
    ASSERT_EQ(tenants.size(), 2u);
    EXPECT_EQ(tenants[0].name, "alice");
    EXPECT_EQ(tenants[0].quota, 4u);
    EXPECT_EQ(tenants[0].admitted, 4u);
    EXPECT_EQ(tenants[0].completed, 4u);
    EXPECT_EQ(tenants[0].rejected_quota, 0u);
    EXPECT_EQ(tenants[1].name, "bob");
    EXPECT_EQ(tenants[1].admitted, 4u);
    EXPECT_EQ(tenants[1].completed, 4u);
    EXPECT_EQ(tenants[1].rejected_quota, 6u);
    EXPECT_EQ(tenants[1].in_flight, 0u);

    ServiceMetrics m = shard.metrics();
    EXPECT_EQ(m.rejected_quota, 6u);
    EXPECT_EQ(m.completed, 8u);
}

TEST(Shard, HotPatternReplicatesAheadOfDemand)
{
    // A hot pattern earns a second copy without the second die ever
    // seeing its traffic: the policy installs the compiled structure
    // at a round boundary, and no recompile ever happens.
    ShardOptions opts;
    opts.service.start_paused = true;
    opts.placement.heat_decay = 0.9;
    opts.placement.hot_threshold = 2.0;
    opts.placement.per_replica_heat = 1.0;
    opts.placement.max_replicas = 2;
    Shard shard(2, quietOptions(), opts);

    auto a = matrixA();
    std::uint64_t ha = compiler::sparsityHash(*a);
    std::vector<std::future<SolveResponse>> fs;
    for (std::size_t i = 0; i < 6; ++i)
        fs.push_back(
            shard.submit(request(a, {1.0 + 0.1 * i, 2.0})));
    shard.resume();
    shard.drain();
    for (auto &f : fs)
        EXPECT_EQ(f.get().status, RequestStatus::Ok);

    // One round of 6 requests: heat 6 * 0.9 = 5.4 after the decay,
    // well past the threshold — the round-end rebalance replicated
    // the structure onto the idle die.
    PlacementStats stats = shard.placementStats();
    EXPECT_EQ(stats.replications, 1u);
    EXPECT_EQ(stats.placements, 1u);
    EXPECT_EQ(stats.migrations, 0u);
    EXPECT_TRUE(shard.pool().dieHasPattern(0, ha, 2));
    EXPECT_TRUE(shard.pool().dieHasPattern(1, ha, 2));

    std::vector<PatternHeat> heat = shard.heatMap();
    ASSERT_EQ(heat.size(), 1u);
    EXPECT_EQ(heat[0].pattern, ha);
    EXPECT_EQ(heat[0].replicas, 2u);
    EXPECT_GT(heat[0].heat, opts.placement.hot_threshold);

    // The copy is a real cache entry, not a recompile: the whole
    // shard still paid exactly one compile for the pattern.
    shard.stop();
    EXPECT_EQ(shard.metrics().cache_misses, 1u);

    std::vector<std::string> events = shard.drainPlacementEvents();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_NE(events[0].find("replicate"), std::string::npos);
}

TEST(Placement, MigratesOffBenchedDieAndCopyHitsWithoutRecompile)
{
    // Unit-level migration: die 0 holds a warm pattern, gets
    // quarantined, and the policy re-homes the compiled structure
    // onto die 1 (chip-less, so any geometry installs). The copy is
    // a real cache entry — die 1's first solve of the pattern hits
    // without compiling.
    analog::DiePool pool(2, quietOptions());
    PlacementOptions popts;
    popts.heat_decay = 0.9;
    popts.hot_threshold = 2.0;
    popts.per_replica_heat = 100.0; // single copy wanted
    popts.max_replicas = 1;
    PlacementPolicy policy(popts);

    auto a = matrixA();
    std::uint64_t ha = compiler::sparsityHash(*a);
    pool.die(0).solve(*a, {1.0, 2.0});
    for (std::size_t i = 0; i < 3; ++i)
        policy.record(ha, 2);
    policy.rebalance(pool); // healthy pool: decay only, no motion
    EXPECT_EQ(policy.stats().migrations, 0u);
    ASSERT_TRUE(pool.dieHasPattern(0, ha, 2));

    for (std::size_t i = 0; i < 3; ++i)
        pool.recordFailure(0);
    ASSERT_FALSE(pool.dieAvailable(0));

    policy.rebalance(pool);
    PlacementStats stats = policy.stats();
    EXPECT_EQ(stats.migrations, 1u);
    EXPECT_EQ(stats.sheds, 1u);
    EXPECT_EQ(stats.replications, 0u);
    EXPECT_FALSE(pool.dieHasPattern(0, ha, 2));
    EXPECT_TRUE(pool.dieHasPattern(1, ha, 2));

    std::vector<std::string> events = policy.drainEvents();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_NE(events[0].find("migrate"), std::string::npos);
    EXPECT_NE(events[1].find("shed"), std::string::npos);

    // The migrated structure serves die 1's first solve of the
    // pattern: zero compiles, a cache hit on a die that never saw
    // this pattern's traffic before.
    auto out = pool.die(1).solve(*a, {2.0, 1.0});
    EXPECT_EQ(out.phases.cache_misses, 0u);
    EXPECT_GE(out.phases.cache_hits, 1u);
}

TEST(Shard, ShedsStalePlacementOffQuarantinedDie)
{
    ShardOptions opts;
    opts.service.start_paused = true;
    opts.placement.heat_decay = 0.9;
    opts.placement.hot_threshold = 2.0;
    opts.placement.per_replica_heat = 100.0;
    opts.placement.max_replicas = 1;
    Shard shard(2, quietOptions(), opts);

    auto a = matrixA();
    std::uint64_t ha = compiler::sparsityHash(*a);

    // Round 1: warm pattern A on die 0.
    std::vector<std::future<SolveResponse>> round1;
    for (std::size_t i = 0; i < 3; ++i)
        round1.push_back(
            shard.submit(request(a, {1.0 + 0.1 * i, 2.0})));
    shard.resume();
    shard.drain();
    for (auto &f : round1)
        EXPECT_EQ(f.get().status, RequestStatus::Ok);
    ASSERT_TRUE(shard.pool().dieHasPattern(0, ha, 2));

    // Bench die 0 between rounds (the round-boundary ownership
    // window): three consecutive verification failures quarantine it.
    shard.pause();
    for (std::size_t i = 0; i < 3; ++i)
        shard.pool().recordFailure(0);
    ASSERT_FALSE(shard.pool().dieAvailable(0));

    // Round 2: A's traffic reroutes to the surviving die (which
    // demand-loads the pattern), and the round-end rebalance sheds
    // the stale placement off the benched die.
    auto fa = shard.submit(request(a, {2.0, 1.0}));
    shard.resume();
    shard.drain();
    SolveResponse ra = fa.get();
    EXPECT_EQ(ra.status, RequestStatus::Ok);
    EXPECT_EQ(ra.die, 1u);

    PlacementStats stats = shard.placementStats();
    EXPECT_GE(stats.sheds, 1u);
    EXPECT_FALSE(shard.pool().dieHasPattern(0, ha, 2));
    EXPECT_TRUE(shard.pool().dieHasPattern(1, ha, 2));
    shard.stop();
}

TEST(Fleet, ThreadCountDoesNotChangeResults)
{
    // 2 racks x 2 dies, dispatch concurrency 1 vs 4: every response
    // bitwise identical (the ring, the gates, and the per-rack
    // routers are all timing-blind).
    auto runWith = [&](std::size_t threads) {
        FleetOptions fopts;
        fopts.racks = 2;
        fopts.dies_per_rack = 2;
        fopts.shard.service.threads = threads;
        fopts.shard.service.start_paused = true;
        ShardedSolveService fleet(quietOptions(), fopts);
        std::vector<std::future<SolveResponse>> fs;
        for (auto &req : mixedTrace(12))
            fs.push_back(fleet.submit(std::move(req)));
        fleet.resume();
        fleet.drain();
        fleet.stop();
        std::vector<SolveResponse> rs;
        for (auto &f : fs)
            rs.push_back(f.get());
        return rs;
    };

    auto serial = runWith(1);
    auto threaded = runWith(4);
    ASSERT_EQ(serial.size(), threaded.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].die, threaded[i].die);
        EXPECT_EQ(serial[i].exec_order, threaded[i].exec_order);
        testutil::expectSolutionsBitEqual(
            serial[i].u, threaded[i].u,
            "request " + std::to_string(i));
        EXPECT_TRUE(testutil::phasesMatch(serial[i].phases,
                                          threaded[i].phases))
            << "request " << i;
    }
}

} // namespace
} // namespace aa::service
