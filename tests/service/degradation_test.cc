/**
 * @file
 * Service degradation path: when analog capacity disappears — dies
 * dead, dies quarantined, or fallback disabled — the service must
 * still answer every request honestly: digital CG marked degraded,
 * or an explicit failure carrying the per-die chain. Plus the
 * deadline-classification regression: giving up on a deadline is
 * never counted as a completion.
 */

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "aa/analog/die_pool.hh"
#include "aa/common/logging.hh"
#include "aa/fault/fault.hh"
#include "aa/service/service.hh"
#include "common/solve_properties.hh"

namespace aa::service {
namespace {

const bool g_quiet = [] {
    setLogLevel(LogLevel::Quiet);
    return true;
}();

std::shared_ptr<const la::DenseMatrix>
matrixA()
{
    return std::make_shared<const la::DenseMatrix>(
        la::DenseMatrix::fromRows({{4.0, -1.0}, {-1.0, 3.0}}));
}

/** Kill every die in the pool on its first exec window. */
void
killAllDies(analog::DiePool &pool)
{
    for (std::size_t k = 0; k < pool.size(); ++k) {
        fault::FaultPlan plan;
        plan.add({fault::FaultKind::DieDeath, 0, 0, 0, 0.0});
        pool.attachFaultInjector(
            k, std::make_shared<fault::FaultInjector>(plan));
    }
}

TEST(Degradation, TotalDieDeathStillAnswersEveryRequest)
{
    // 100% die death: the pool goes dark on first contact, yet every
    // response arrives (no hangs), is Ok, degraded, and correct.
    analog::DiePool pool(2, testutil::quietSolverOptions());
    killAllDies(pool);
    ServiceOptions sopts;
    sopts.start_paused = true;
    SolveService svc(pool, sopts);

    auto a = matrixA();
    const std::size_t kRequests = 6;
    std::vector<la::Vector> rhs;
    std::vector<std::future<SolveResponse>> futures;
    for (std::size_t i = 0; i < kRequests; ++i) {
        SolveRequest req;
        req.a = a;
        req.b = la::Vector{1.0 + 0.25 * static_cast<double>(i), 2.0};
        rhs.push_back(req.b);
        futures.push_back(svc.submit(std::move(req)));
    }
    svc.resume();
    svc.drain();
    svc.stop();

    for (std::size_t i = 0; i < kRequests; ++i) {
        SolveResponse r = futures[i].get();
        ASSERT_EQ(r.status, RequestStatus::Ok) << r.reason;
        EXPECT_TRUE(r.degraded) << "request " << i;
        EXPECT_TRUE(r.verified) << "request " << i;
        EXPECT_TRUE(r.converged) << "request " << i;
        EXPECT_LE(testutil::relResidual(*a, rhs[i], r.u), 1e-8)
            << "request " << i;
    }

    // Both dies are terminally dead.
    EXPECT_EQ(pool.health(0).state, analog::DieState::Dead);
    EXPECT_EQ(pool.health(1).state, analog::DieState::Dead);
    EXPECT_TRUE(pool.availableDies().empty());

    ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.completed, kRequests);
    EXPECT_EQ(m.ok, kRequests);
    EXPECT_EQ(m.failed, 0u);
    EXPECT_EQ(m.deadline_expired, 0u);
    EXPECT_EQ(m.fallbacks, kRequests); // every answer was digital
    EXPECT_GE(m.analog_failures, 1u);  // the deaths were observed
    EXPECT_GE(m.faults_seen, 2u);      // one death event per die
    // Every answer claims exactly the digital lane.
    testutil::expectLaneCountersExclusive(m);
    EXPECT_EQ(m.lane_digital, kRequests);
}

TEST(Degradation, FallbackDisabledFailsLoudlyWithTheChain)
{
    analog::DiePool pool(1, testutil::quietSolverOptions());
    killAllDies(pool);
    ServiceOptions sopts;
    sopts.digital_fallback = false;
    SolveService svc(pool, sopts);

    SolveRequest req;
    req.a = matrixA();
    req.b = la::Vector{1.0, 2.0};
    SolveResponse r = svc.submit(std::move(req)).get();
    svc.stop();

    // Never a silent wrong answer: with no fallback the request
    // fails explicitly and names the die that died.
    EXPECT_EQ(r.status, RequestStatus::Failed);
    EXPECT_FALSE(r.degraded);
    EXPECT_NE(r.failure_chain.find("die 0"), std::string::npos);
    ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.failed, 1u);
    EXPECT_EQ(m.completed, 1u);
    EXPECT_EQ(m.ok, 0u);
    // A Failed response claims no lane; the partition stays exact.
    testutil::expectLaneCountersExclusive(m);
}

TEST(Degradation, StuckDiesAreQuarantinedAndTheStreamDegrades)
{
    // Both dies pinned wrong forever: verification rejects every
    // analog answer, health tracking benches both dies, and the
    // whole stream degrades to digital CG — all Ok, none silent.
    analog::DiePool pool(2, testutil::quietSolverOptions());
    for (std::size_t k = 0; k < pool.size(); ++k) {
        fault::FaultPlan plan;
        plan.add(
            {fault::FaultKind::StuckIntegrator, 0, 0, 0, -1.0});
        pool.attachFaultInjector(
            k, std::make_shared<fault::FaultInjector>(plan));
    }
    ServiceOptions sopts;
    sopts.start_paused = true;
    sopts.max_die_recoveries = 0; // keep the failures cheap
    SolveService svc(pool, sopts);

    auto a = matrixA();
    const std::size_t kRequests = 6;
    std::vector<la::Vector> rhs;
    std::vector<std::future<SolveResponse>> futures;
    for (std::size_t i = 0; i < kRequests; ++i) {
        SolveRequest req;
        req.a = a;
        req.b = la::Vector{1.0 + 0.25 * static_cast<double>(i), 2.0};
        rhs.push_back(req.b);
        futures.push_back(svc.submit(std::move(req)));
    }
    svc.resume();
    svc.drain();
    svc.stop();

    for (std::size_t i = 0; i < kRequests; ++i) {
        SolveResponse r = futures[i].get();
        ASSERT_EQ(r.status, RequestStatus::Ok) << r.reason;
        EXPECT_TRUE(r.degraded) << "request " << i;
        EXPECT_LE(testutil::relResidual(*a, rhs[i], r.u), 1e-8)
            << "request " << i;
        EXPECT_FALSE(r.failure_chain.empty()) << "request " << i;
    }

    ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.fallbacks, kRequests);
    EXPECT_GE(m.analog_failures, 2u * pool.healthPolicy()
                                          .quarantine_after);
    EXPECT_EQ(m.quarantines, 2u); // both dies benched
    EXPECT_GE(m.reroutes, 1u);
    EXPECT_EQ(m.ok, kRequests);
    testutil::expectLaneCountersExclusive(m);
}

TEST(Degradation, DeadlineExpiryIsClassifiedExpiredNotCompleted)
{
    // The regression: a request that gives up on its deadline —
    // queued or mid retry chain — must count as deadline_expired,
    // never as completed.
    analog::DiePool pool(1, testutil::quietSolverOptions());
    ServiceOptions sopts;
    sopts.start_paused = true;
    SolveService svc(pool, sopts);

    SolveRequest req;
    req.a = matrixA();
    req.b = la::Vector{1.0, 2.0};
    req.deadline_seconds = 1e-3;
    auto f = svc.submit(std::move(req));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    svc.resume();
    svc.drain();
    svc.stop();

    SolveResponse r = f.get();
    ASSERT_EQ(r.status, RequestStatus::DeadlineExpired);
    ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.deadline_expired, 1u);
    EXPECT_EQ(m.completed, 0u); // the bug counted it here too
    EXPECT_EQ(m.ok, 0u);
    EXPECT_EQ(m.failed, 0u);
}

TEST(Degradation, DeadlineExpiryDuringRetryChainIsNotACompletion)
{
    // Same classification through the retry-chain path: the single
    // die fails verification, and by the time the failure is handled
    // the deadline has passed. Timing decides *which* path gives up
    // (queued / retry chain / fallback still in budget); the
    // accounting invariant must hold on every path: exactly one of
    // completed / deadline_expired, never both.
    analog::DiePool pool(1, testutil::quietSolverOptions());
    fault::FaultPlan plan;
    plan.add({fault::FaultKind::StuckIntegrator, 0, 0, 0, -1.0});
    pool.attachFaultInjector(
        0, std::make_shared<fault::FaultInjector>(plan));
    ServiceOptions sopts;
    sopts.max_die_recoveries = 1; // recovery recalibrates: slow path
    SolveService svc(pool, sopts);

    SolveRequest req;
    req.a = matrixA();
    req.b = la::Vector{1.0, 2.0};
    req.deadline_seconds = 2e-3;
    SolveResponse r = svc.submit(std::move(req)).get();
    svc.stop();

    ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.completed + m.deadline_expired, 1u);
    if (r.status == RequestStatus::DeadlineExpired) {
        EXPECT_EQ(m.deadline_expired, 1u);
        EXPECT_EQ(m.completed, 0u);
        EXPECT_NE(r.reason.find("deadline"), std::string::npos);
    } else {
        // Machine beat the deadline: the answer must still be
        // accountable, not silent.
        ASSERT_EQ(r.status, RequestStatus::Ok);
        EXPECT_TRUE(r.degraded);
        EXPECT_EQ(m.completed, 1u);
        EXPECT_EQ(m.deadline_expired, 0u);
    }
}

} // namespace
} // namespace aa::service
