/**
 * @file
 * Pipelined per-die execution: determinism and liveness. The core
 * contract under test is that ServiceOptions::pipeline changes only
 * *when* work happens (stager/executor overlap, the digital-CG
 * lane), never *what* a healthy request stream computes: responses
 * are bit-identical to the barriered dispatch, run to run and at any
 * die count, because routing queries the scheduler's residency model
 * and the prepared-solve path replays the exact canonical ladder.
 *
 * Accepted, documented divergences (not asserted equal here): the
 * shadow register file's skipped-write statistics differ on the
 * staged-flush path, and under fault churn the pipelined service may
 * interleave retry rounds differently than the barrier would — the
 * per-request *outcomes* still match where asserted below.
 *
 * The TSan leg of tools/check.sh runs this binary at AASIM_THREADS=1
 * and =4; the --fleet leg runs the sharded passthrough test.
 */

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "aa/analog/die_pool.hh"
#include "aa/common/logging.hh"
#include "aa/fault/fault.hh"
#include "aa/la/vector.hh"
#include "aa/service/service.hh"
#include "aa/service/shard.hh"
#include "common/solve_properties.hh"

namespace aa::service {
namespace {

const bool g_quiet = [] {
    setLogLevel(LogLevel::Quiet);
    return true;
}();

analog::AnalogSolverOptions
quietOptions()
{
    return testutil::quietSolverOptions();
}

/** Pattern A: a dense 2x2 SPD system. */
std::shared_ptr<const la::DenseMatrix>
matrixA()
{
    return std::make_shared<const la::DenseMatrix>(
        la::DenseMatrix::fromRows({{4.0, -1.0}, {-1.0, 3.0}}));
}

/** Pattern B: a tridiagonal 3x3 SPD system (distinct hash and n). */
std::shared_ptr<const la::DenseMatrix>
matrixB()
{
    return std::make_shared<const la::DenseMatrix>(
        la::DenseMatrix::fromRows({{4.0, -1.0, 0.0},
                                   {-1.0, 4.0, -1.0},
                                   {0.0, -1.0, 4.0}}));
}

/** A large 1-D Laplacian: cheap to route, slow to CG to 1e-10 —
 *  the fallback lane's grinding wheel. */
std::shared_ptr<const la::DenseMatrix>
matrixLaplacian(std::size_t n)
{
    la::DenseMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        m(i, i) = 2.0;
        if (i + 1 < n) {
            m(i, i + 1) = -1.0;
            m(i + 1, i) = -1.0;
        }
    }
    return std::make_shared<const la::DenseMatrix>(std::move(m));
}

SolveRequest
request(std::shared_ptr<const la::DenseMatrix> a, la::Vector b)
{
    SolveRequest r;
    r.a = std::move(a);
    r.b = std::move(b);
    return r;
}

/** An alternating A/B trace with per-request RHS variants. */
std::vector<SolveRequest>
mixedTrace(std::size_t count)
{
    auto a = matrixA();
    auto b = matrixB();
    std::vector<SolveRequest> trace;
    for (std::size_t i = 0; i < count; ++i) {
        double f = 1.0 + 0.125 * static_cast<double>(i);
        if (i % 2 == 0)
            trace.push_back(request(a, la::Vector{f, 2.0 * f}));
        else
            trace.push_back(request(b, la::Vector{f, 0.5 * f, -f}));
    }
    return trace;
}

/** Queue the whole trace while paused, dispatch, collect responses
 *  in submission order. */
std::vector<SolveResponse>
runTrace(analog::DiePool &pool, ServiceOptions sopts,
         const std::vector<SolveRequest> &trace)
{
    sopts.start_paused = true;
    SolveService svc(pool, sopts);
    std::vector<std::future<SolveResponse>> futures;
    futures.reserve(trace.size());
    for (const SolveRequest &req : trace)
        futures.push_back(svc.submit(SolveRequest(req)));
    svc.resume();
    svc.drain();
    std::vector<SolveResponse> out;
    out.reserve(futures.size());
    for (auto &f : futures)
        out.push_back(f.get());
    svc.stop();
    return out;
}

/** Everything that must be a pure function of the request stream —
 *  the full response minus wall-clock timing. The shared outcome
 *  surface goes through the property harness; on top of it the
 *  pipeline contract also pins the retry/refine/cache accounting,
 *  which the harness deliberately leaves to mode-specific suites. */
void
expectSameResponse(const SolveResponse &x, const SolveResponse &y,
                   std::size_t i)
{
    const std::string what = "request " + std::to_string(i);
    testutil::expectResponseOutcomeIdentical(x, y, what);
    EXPECT_EQ(x.affine_hit, y.affine_hit) << what;
    EXPECT_EQ(x.attempts, y.attempts) << what;
    EXPECT_EQ(x.refine_passes, y.refine_passes) << what;
    EXPECT_EQ(x.residual, y.residual) << what;
    EXPECT_EQ(x.phases.config_bytes, y.phases.config_bytes) << what;
    EXPECT_EQ(x.phases.cache_hits, y.phases.cache_hits) << what;
    EXPECT_EQ(x.phases.cache_misses, y.phases.cache_misses) << what;
}

TEST(Pipeline, HealthyTrafficBitIdenticalToBarrieredDispatch)
{
    // The tentpole contract: pipelining must not change a single bit
    // of what a healthy stream computes — same solutions, routing,
    // execution slots, config traffic, cache behavior — at one die
    // and across a pool, over multiple scheduling rounds.
    for (std::size_t dies : {std::size_t{1}, std::size_t{3}}) {
        analog::DiePool barriered_pool(dies, quietOptions());
        analog::DiePool pipelined_pool(dies, quietOptions());
        auto trace = mixedTrace(10);

        ServiceOptions barriered;
        barriered.max_batch = 4; // three rounds: 4 + 4 + 2
        std::vector<SolveResponse> base =
            runTrace(barriered_pool, barriered, trace);

        ServiceOptions pipelined = barriered;
        pipelined.pipeline = true;
        std::vector<SolveResponse> piped =
            runTrace(pipelined_pool, pipelined, trace);

        ASSERT_EQ(base.size(), piped.size());
        for (std::size_t i = 0; i < base.size(); ++i) {
            expectSameResponse(base[i], piped[i], i);
            EXPECT_EQ(piped[i].status, RequestStatus::Ok)
                << "dies=" << dies << " request " << i;
        }
    }
}

TEST(Pipeline, RunToRunDeterminism)
{
    // Two identical pipelined services over identical pools must
    // produce identical response streams — scheduling is a pure
    // function of the drained rounds, never of thread timing.
    ServiceOptions sopts;
    sopts.pipeline = true;
    sopts.max_batch = 3;
    auto trace = mixedTrace(9);

    analog::DiePool pool1(2, quietOptions());
    std::vector<SolveResponse> first = runTrace(pool1, sopts, trace);
    analog::DiePool pool2(2, quietOptions());
    std::vector<SolveResponse> second = runTrace(pool2, sopts, trace);

    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        expectSameResponse(first[i], second[i], i);
}

TEST(Pipeline, PipelineDepthDoesNotChangeResults)
{
    // Depth only trades staged-delta staleness against smoothing;
    // results are depth-invariant.
    auto trace = mixedTrace(8);
    std::vector<std::vector<SolveResponse>> runs;
    for (std::size_t depth : {std::size_t{1}, std::size_t{4}}) {
        ServiceOptions sopts;
        sopts.pipeline = true;
        sopts.pipeline_depth = depth;
        sopts.max_batch = 4;
        analog::DiePool pool(2, quietOptions());
        runs.push_back(runTrace(pool, sopts, trace));
    }
    ASSERT_EQ(runs[0].size(), runs[1].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i)
        expectSameResponse(runs[0][i], runs[1][i], i);
}

TEST(Pipeline, MultiRhsBatchesMatchBarrieredDispatch)
{
    // Batch segmentation moved from executeDie into the stager; the
    // units it forms — and their outcomes — must match the barriered
    // batcher exactly.
    auto a = matrixA();
    std::vector<SolveRequest> trace;
    for (std::size_t i = 0; i < 8; ++i) {
        double f = 1.0 + 0.25 * static_cast<double>(i);
        trace.push_back(request(a, la::Vector{f, -0.5 * f}));
    }

    ServiceOptions barriered;
    barriered.batch_multi_rhs = true;
    analog::DiePool pool_base(1, quietOptions());
    std::vector<SolveResponse> base =
        runTrace(pool_base, barriered, trace);

    ServiceOptions pipelined = barriered;
    pipelined.pipeline = true;
    analog::DiePool pool_piped(1, quietOptions());
    std::vector<SolveResponse> piped =
        runTrace(pool_piped, pipelined, trace);

    ASSERT_EQ(base.size(), piped.size());
    for (std::size_t i = 0; i < base.size(); ++i)
        expectSameResponse(base[i], piped[i], i);
}

TEST(Pipeline, FailureChainsMatchBarrieredDispatch)
{
    // One die pinned wrong forever: every analog answer fails
    // verification, the chain exhausts immediately (nowhere to
    // reroute), and the digital-CG lane answers. Chains, statuses,
    // and CG solutions must match the barriered service bit for bit.
    auto pinDie = [](analog::DiePool &pool) {
        fault::FaultPlan plan;
        plan.add({fault::FaultKind::StuckIntegrator, 0, 0, 0, -1.0});
        pool.attachFaultInjector(
            0, std::make_shared<fault::FaultInjector>(plan));
    };
    auto a = matrixA();
    std::vector<SolveRequest> trace;
    for (std::size_t i = 0; i < 5; ++i)
        trace.push_back(request(
            a, la::Vector{1.0 + 0.25 * static_cast<double>(i), 2.0}));

    ServiceOptions barriered;
    barriered.max_die_recoveries = 0;
    analog::DiePool pool_base(1, quietOptions());
    pinDie(pool_base);
    std::vector<SolveResponse> base =
        runTrace(pool_base, barriered, trace);

    ServiceOptions pipelined = barriered;
    pipelined.pipeline = true;
    analog::DiePool pool_piped(1, quietOptions());
    pinDie(pool_piped);
    std::vector<SolveResponse> piped =
        runTrace(pool_piped, pipelined, trace);

    ASSERT_EQ(base.size(), piped.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
        EXPECT_EQ(base[i].status, piped[i].status) << i;
        EXPECT_EQ(base[i].degraded, piped[i].degraded) << i;
        EXPECT_EQ(base[i].failure_chain, piped[i].failure_chain)
            << i;
        EXPECT_EQ(base[i].reroutes, piped[i].reroutes) << i;
        ASSERT_EQ(base[i].u.size(), piped[i].u.size()) << i;
        for (std::size_t j = 0; j < base[i].u.size(); ++j)
            EXPECT_EQ(base[i].u[j], piped[i].u[j]) << i;
        EXPECT_TRUE(piped[i].degraded) << i;
    }
}

TEST(Pipeline, FallbackLaneDoesNotStallHealthyDie)
{
    // The PR-5 stall, pipelined edition: a quarantine-triggered CG
    // fallback on die 0 must not delay die 1's in-flight analog
    // stream beyond one round. Die 0 dies on first contact; its four
    // big requests exhaust (max_reroutes=0) onto the fallback lane,
    // where their CG solves grind for many milliseconds — while die
    // 1 keeps answering small solves from the next round. At least
    // one round-2 die-1 completion must land before the last CG
    // does; if the fallback lane serialized with dispatch, round 2
    // could not start until every CG finished.
    analog::DiePool pool(2, quietOptions());
    {
        fault::FaultPlan plan;
        plan.add({fault::FaultKind::DieDeath, 0, 0, 0, 0.0});
        pool.attachFaultInjector(
            0, std::make_shared<fault::FaultInjector>(plan));
    }

    struct Tag {
        std::size_t rows;
        double b0;
    };
    std::mutex order_mu;
    std::vector<Tag> completion_order;

    ServiceOptions sopts;
    sopts.pipeline = true;
    sopts.start_paused = true;
    sopts.max_reroutes = 0;
    sopts.max_batch = 5; // round 1: the 4 big + 1 small
    sopts.on_complete = [&](const SolveRequest &req,
                            const SolveResponse &) {
        std::lock_guard<std::mutex> lock(order_mu);
        completion_order.push_back({req.a->rows(), req.b[0]});
    };
    SolveService svc(pool, sopts);

    const std::size_t kBig = 128;
    auto big = matrixLaplacian(kBig);
    auto small = matrixB();
    std::vector<std::future<SolveResponse>> futures;
    // Round 1: the doomed big group (cold-routes to die 0) plus one
    // small request establishing die 1's lane.
    for (std::size_t i = 0; i < 4; ++i) {
        la::Vector b(kBig, 0.0);
        b[0] = 1.0 + static_cast<double>(i);
        futures.push_back(svc.submit(request(big, std::move(b))));
    }
    futures.push_back(svc.submit(request(small, {1.0, 0.5, -1.0})));
    // Round 2: die 1's healthy stream (b0 >= 100 marks round 2).
    for (std::size_t i = 0; i < 6; ++i) {
        double f = 100.0 + static_cast<double>(i);
        futures.push_back(
            svc.submit(request(small, {f, 0.5 * f, -f})));
    }
    svc.resume();
    svc.drain();
    svc.stop();

    for (std::size_t i = 0; i < futures.size(); ++i) {
        SolveResponse r = futures[i].get();
        ASSERT_EQ(r.status, RequestStatus::Ok) << i << ": "
                                               << r.reason;
        if (i < 4) {
            EXPECT_TRUE(r.degraded) << i;
            EXPECT_EQ(r.die, 0u) << i;
        } else {
            EXPECT_FALSE(r.degraded) << i;
            EXPECT_EQ(r.die, 1u) << i;
        }
    }

    std::size_t last_big = 0;
    std::size_t first_round2_small = completion_order.size();
    for (std::size_t i = 0; i < completion_order.size(); ++i) {
        if (completion_order[i].rows == kBig)
            last_big = i;
        else if (completion_order[i].b0 >= 100.0 &&
                 i < first_round2_small)
            first_round2_small = i;
    }
    EXPECT_LT(first_round2_small, last_big)
        << "die 1's round-2 stream waited for the fallback lane";
}

TEST(Pipeline, StopMidStreamCompletesEveryFuture)
{
    // stop() while lanes are mid-flight: everything admitted must
    // still resolve — the scheduler drains reroutes, the lanes
    // drain their FIFOs, and no promise is abandoned.
    analog::DiePool pool(2, quietOptions());
    ServiceOptions sopts;
    sopts.pipeline = true;
    SolveService svc(pool, sopts);
    auto trace = mixedTrace(12);
    std::vector<std::future<SolveResponse>> futures;
    for (auto &req : trace)
        futures.push_back(svc.submit(SolveRequest(req)));
    svc.stop();
    for (auto &f : futures) {
        SolveResponse r = f.get();
        EXPECT_TRUE(r.status == RequestStatus::Ok ||
                    r.status == RequestStatus::RejectedShutdown);
    }
}

TEST(Pipeline, OccupancyMetricsAccumulate)
{
    // The duty-cycle metric the pipeline exists to raise: integrate
    // seconds accumulate per die and the occupancy helpers read them
    // against the service's wall clock.
    analog::DiePool pool(2, quietOptions());
    ServiceOptions sopts;
    sopts.pipeline = true;
    std::vector<SolveResponse> rs =
        runTrace(pool, sopts, mixedTrace(8));
    for (const SolveResponse &r : rs)
        ASSERT_EQ(r.status, RequestStatus::Ok) << r.reason;

    // Metrics were snapshotted inside runTrace's service; take a
    // fresh service over the same pool just to exercise the helper
    // math deterministically instead: build one here.
    analog::DiePool pool2(1, quietOptions());
    ServiceOptions sopts2;
    sopts2.pipeline = true;
    sopts2.start_paused = true;
    SolveService svc(pool2, sopts2);
    std::vector<std::future<SolveResponse>> futures;
    for (auto &req : mixedTrace(6))
        futures.push_back(svc.submit(std::move(req)));
    svc.resume();
    svc.drain();
    ServiceMetrics m = svc.metrics();
    svc.stop();
    for (auto &f : futures)
        EXPECT_EQ(f.get().status, RequestStatus::Ok);

    EXPECT_GT(m.wall_seconds, 0.0);
    double total_integrate = 0.0;
    for (const DieServiceStats &d : m.dies)
        total_integrate += d.integrate_seconds;
    EXPECT_GT(total_integrate, 0.0);
    EXPECT_GT(m.dieOccupancy(0), 0.0);
    EXPECT_GT(m.poolOccupancy(), 0.0);
    EXPECT_LE(m.poolOccupancy(), 1.0);
}

TEST(Pipeline, ShardedFleetPassesPipelineThrough)
{
    // ShardOptions.service is a full ServiceOptions: a fleet can run
    // every rack pipelined, and the fleet rollup reports occupancy.
    FleetOptions fopts;
    fopts.racks = 2;
    fopts.dies_per_rack = 2;
    fopts.shard.service.pipeline = true;
    ShardedSolveService fleet(quietOptions(), fopts);

    auto trace = mixedTrace(10);
    std::vector<std::future<SolveResponse>> futures;
    for (auto &req : trace)
        futures.push_back(fleet.submit(std::move(req)));
    fleet.drain();
    FleetMetrics m = fleet.metrics();
    fleet.stop();

    for (auto &f : futures)
        EXPECT_EQ(f.get().status, RequestStatus::Ok);
    EXPECT_EQ(m.completed, trace.size());
    EXPECT_GT(m.die_wall_seconds, 0.0);
    EXPECT_GT(m.integrate_seconds, 0.0);
    EXPECT_GT(m.occupancy(), 0.0);
    EXPECT_LE(m.occupancy(), 1.0);
}

} // namespace
} // namespace aa::service
