#include <gtest/gtest.h>

#include <cmath>

#include "aa/analog/ode_runner.hh"

namespace aa::analog {
namespace {

AnalogSolverOptions
quietOptions()
{
    AnalogSolverOptions opts;
    opts.spec.variation.enabled = false;
    opts.spec.adc_noise_sigma = 0.0;
    opts.auto_calibrate = false;
    return opts;
}

TEST(AdcReadout, WaveformThroughAdcTracksScope)
{
    la::DenseMatrix a = la::DenseMatrix::fromRows({{-1.0}});
    la::Vector b{0.5};

    AnalogSolverOptions opts = quietOptions();
    opts.spec.adc_full_res_rate_hz = 1e6; // keep resolution high
    AnalogOdeSolver runner(opts);

    OdeRunOptions scope_opts;
    scope_opts.samples = 32;
    auto scope = runner.simulate(a, b, la::Vector{0.0}, 2.0,
                                 scope_opts);

    OdeRunOptions adc_opts;
    adc_opts.samples = 32;
    adc_opts.read_via_adc = true;
    auto adc = runner.simulate(a, b, la::Vector{0.0}, 2.0, adc_opts);

    EXPECT_EQ(scope.effective_adc_bits, 0u); // unquantized probe
    EXPECT_GE(adc.effective_adc_bits, 6u);
    ASSERT_GT(adc.times.size(), 8u);

    double lsb =
        2.0 /
        static_cast<double>((1 << adc.effective_adc_bits) - 1);
    for (std::size_t k = 0; k < adc.times.size(); k += 3) {
        double t = adc.times[k];
        double closed = 0.5 * (1.0 - std::exp(-t));
        EXPECT_NEAR(adc.states[k][0], closed, lsb + 0.01)
            << "t=" << t;
    }
}

TEST(AdcReadout, DenseSamplingDegradesResolution)
{
    la::DenseMatrix a = la::DenseMatrix::fromRows({{-1.0}});
    la::Vector b{0.5};

    AnalogSolverOptions opts = quietOptions();
    opts.spec.adc_full_res_rate_hz = 2e5;
    AnalogOdeSolver runner(opts);

    auto bits_at = [&](std::size_t samples) {
        OdeRunOptions ropts;
        ropts.samples = samples;
        ropts.read_via_adc = true;
        return runner
            .simulate(a, b, la::Vector{0.0}, 2.0, ropts)
            .effective_adc_bits;
    };
    EXPECT_GT(bits_at(4), bits_at(256));
}

TEST(AdcReadout, MultiVariableCaptureKeepsColumns)
{
    la::DenseMatrix a =
        la::DenseMatrix::fromRows({{-1.0, 0.0}, {0.0, -3.0}});
    la::Vector b{0.5, 0.9};

    AnalogSolverOptions opts = quietOptions();
    opts.spec.adc_full_res_rate_hz = 1e6;
    AnalogOdeSolver runner(opts);
    OdeRunOptions ropts;
    ropts.samples = 24;
    ropts.read_via_adc = true;
    auto wave = runner.simulate(a, b, la::Vector(2), 2.0, ropts);
    ASSERT_GT(wave.times.size(), 4u);
    // Faster pole on variable 1: it gets closer to its asymptote.
    double t = wave.times.back();
    EXPECT_NEAR(wave.states.back()[0],
                0.5 * (1.0 - std::exp(-t)), 0.05);
    EXPECT_NEAR(wave.states.back()[1],
                0.3 * (1.0 - std::exp(-3.0 * t)), 0.05);
}

} // namespace
} // namespace aa::analog
