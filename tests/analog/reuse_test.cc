#include <gtest/gtest.h>

#include "aa/analog/refine.hh"
#include "aa/analog/solver.hh"
#include "aa/la/direct.hh"
#include "aa/pde/poisson.hh"
#include "common/solve_properties.hh"
#include "common/trace_matcher.hh"

namespace aa::analog {
namespace {

AnalogSolverOptions
quietOptions()
{
    return testutil::quietSolverOptions();
}

TEST(Reuse, CachedStructureSolveIsBitwiseIdentical)
{
    la::DenseMatrix a =
        la::DenseMatrix::fromRows({{4.0, -1.0}, {-1.0, 3.0}});
    la::Vector b{1.0, 2.0};

    // One solver runs the system twice: the second solve reuses the
    // cached structure and the live crossbar.
    AnalogLinearSolver warm(quietOptions());
    auto first = warm.solve(a, b);
    auto second = warm.solve(a, b);
    EXPECT_EQ(second.phases.cache_hits, 1u);
    EXPECT_TRUE(second.phases.structure_reused);

    // A fresh solver (same die seed) compiles from scratch — and its
    // structural trace must match the warm solver's first solve
    // exactly (same compile, same config traffic).
    AnalogLinearSolver cold(quietOptions());
    auto fresh = cold.solve(a, b);
    EXPECT_EQ(fresh.phases.cache_misses, 1u);
    EXPECT_FALSE(fresh.phases.structure_reused);
    EXPECT_TRUE(testutil::phasesMatch(first.phases, fresh.phases));

    // Bitwise: the cached program must change nothing numeric.
    testutil::expectSolutionsBitEqual(fresh.u, second.u, "second");
    testutil::expectSolutionsBitEqual(fresh.u, first.u, "first");
    EXPECT_EQ(second.attempts, fresh.attempts);
    EXPECT_EQ(second.gain_scale, fresh.gain_scale);
    EXPECT_EQ(second.solution_scale, fresh.solution_scale);
}

TEST(Reuse, SecondSolveShipsOnlyDeltas)
{
    la::DenseMatrix a =
        la::DenseMatrix::fromRows({{4.0, -1.0}, {-1.0, 3.0}});
    la::Vector b{1.0, 2.0};
    AnalogLinearSolver solver(quietOptions());
    auto first = solver.solve(a, b);
    // A genuinely different direction rebinds only the DAC biases —
    // a fraction of the full program (gains are a pure function of
    // A, so the multiplier plane never reships).
    la::Vector b2{2.0, 1.0};
    auto second = solver.solve(a, b2);
    EXPECT_GT(second.phases.config_bytes, 0u);
    EXPECT_LT(second.phases.config_bytes * 2,
              first.phases.config_bytes);
    // A *scaled* RHS is the degenerate best case: the bias floor
    // pins b_s at full DAC scale, so f * b2 binds bit-identical
    // registers and the shadow file suppresses every write.
    la::Vector b3{1.0, 0.5};
    auto third = solver.solve(a, b3);
    EXPECT_EQ(third.phases.config_bytes, 0u);
}

TEST(Reuse, RefinementPassesCollapseToDeltaTraffic)
{
    // Algorithm 2 on a mapped Poisson block with a 12-bit ADC: the
    // first pass compiles and ships the whole program; later passes
    // rebind DAC biases on the cached structure (the solver's range
    // memory skips the re-ranging attempt once the first pass has
    // realized one sigma-doubling). The issue's acceptance bar: the
    // second pass ships an order of magnitude fewer configBytes than
    // the first. Uses the prototype die model (variation and ADC
    // noise on, fixed seed) like bench/alg2_precision; the RHS is
    // A x for a spike-shaped x so max|u| sits mid-range and every
    // pass settles after a single doubling.
    auto problem = pde::assemblePoisson(
        2, 3, [](double x, double y, double) { return x + 2.0 * y; });
    la::DenseMatrix a = problem.a.toDense();
    la::Vector x(problem.b.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = (i == 4) ? 1.0 : 0.4;
    la::Vector b = a.apply(x);

    AnalogSolverOptions sopts;
    sopts.spec.adc_bits = 12;
    sopts.die_seed = 11;
    AnalogLinearSolver solver(sopts);

    RefineOptions ropts;
    ropts.tolerance = 1e-12;
    ropts.max_passes = 4;
    ropts.record_history = true;
    auto out = refineSolve(solver, a, b, ropts);
    ASSERT_GE(out.config_bytes_history.size(), 2u);
    for (std::size_t p = 1; p < out.config_bytes_history.size(); ++p) {
        EXPECT_LE(out.config_bytes_history[p] * 10,
                  out.config_bytes_history[0])
            << "pass " << p;
    }
    EXPECT_EQ(solver.cacheStats().misses, 1u);
}

TEST(Reuse, ProgramCacheCapacityOptionBoundsResidency)
{
    // One-slot program memory: alternating two patterns evicts and
    // recompiles every solve — the contended regime the service
    // bench runs its round-robin baseline in.
    AnalogSolverOptions opts = quietOptions();
    opts.program_cache_capacity = 1;
    AnalogLinearSolver solver(opts);
    EXPECT_EQ(solver.programCache().capacity(), 1u);

    la::DenseMatrix dense =
        la::DenseMatrix::fromRows({{4.0, -1.0}, {-1.0, 3.0}});
    la::DenseMatrix diag =
        la::DenseMatrix::fromRows({{2.0, 0.0}, {0.0, 3.0}});
    la::Vector b{1.0, 2.0};
    solver.solve(dense, b);
    solver.solve(diag, b);  // evicts dense
    solver.solve(dense, b); // recompile
    EXPECT_EQ(solver.cacheStats().misses, 3u);
    EXPECT_EQ(solver.cacheStats().hits, 0u);
    EXPECT_EQ(solver.cacheStats().evictions, 2u);
}

TEST(Reuse, PhaseReportAccountsTheSolve)
{
    la::DenseMatrix a =
        la::DenseMatrix::fromRows({{4.0, -1.0}, {-1.0, 3.0}});
    la::Vector b{1.0, 2.0};
    AnalogLinearSolver solver(quietOptions());
    auto out = solver.solve(a, b);
    EXPECT_GT(out.phases.config_bytes, 0u);
    EXPECT_EQ(out.phases.config_bytes, solver.configBytes());
    EXPECT_GE(out.phases.compile_seconds, 0.0);
    EXPECT_GT(out.phases.run_seconds, 0.0);
    EXPECT_GT(out.phases.readout_seconds, 0.0);
    EXPECT_EQ(out.phases.cache_misses, 1u);
}

} // namespace
} // namespace aa::analog
