#include <gtest/gtest.h>

#include <cmath>

#include "aa/analog/refine.hh"
#include "aa/la/direct.hh"

namespace aa::analog {
namespace {

AnalogSolverOptions
quietOptions()
{
    AnalogSolverOptions opts;
    opts.spec.variation.enabled = false;
    opts.spec.adc_noise_sigma = 0.0;
    opts.auto_calibrate = false;
    return opts;
}

TEST(Refine, BuildsPrecisionBeyondAdc)
{
    // Algorithm 2's claim: arbitrary precision from an 8-bit ADC.
    la::DenseMatrix a =
        la::DenseMatrix::fromRows({{4.0, -1.0}, {-1.0, 3.0}});
    la::Vector b{1.0, 2.0};
    la::Vector exact = la::solveDense(a, b);

    AnalogLinearSolver solver(quietOptions());
    RefineOptions opts;
    opts.tolerance = 1e-8;
    auto out = refineSolve(solver, a, b, opts);
    EXPECT_TRUE(out.converged);
    EXPECT_LT(la::maxAbsDiff(out.u, exact), 1e-7);
    // Far beyond a single 8-bit run.
    EXPECT_GT(out.passes, 1u);
}

TEST(Refine, ResidualDropsEveryPass)
{
    la::DenseMatrix a =
        la::DenseMatrix::fromRows({{4.0, -1.0}, {-1.0, 3.0}});
    la::Vector b{1.0, 2.0};
    AnalogLinearSolver solver(quietOptions());
    RefineOptions opts;
    opts.tolerance = 1e-9;
    auto out = refineSolve(solver, a, b, opts);
    ASSERT_GE(out.residual_history.size(), 2u);
    for (std::size_t k = 1; k < out.residual_history.size(); ++k) {
        EXPECT_LE(out.residual_history[k],
                  out.residual_history[k - 1] * 1.01);
    }
    // Each pass is worth several bits: total reduction is orders of
    // magnitude.
    EXPECT_LT(out.final_residual, 1e-8 * la::norm2(b));
}

TEST(Refine, PassBudgetRespected)
{
    la::DenseMatrix a =
        la::DenseMatrix::fromRows({{4.0, -1.0}, {-1.0, 3.0}});
    la::Vector b{1.0, 2.0};
    AnalogLinearSolver solver(quietOptions());
    RefineOptions opts;
    opts.tolerance = 1e-15; // unreachable
    opts.max_passes = 3;
    auto out = refineSolve(solver, a, b, opts);
    EXPECT_EQ(out.passes, 3u);
    EXPECT_FALSE(out.converged);
}

TEST(Refine, TwelveBitAdcNeedsFewerPasses)
{
    la::DenseMatrix a =
        la::DenseMatrix::fromRows({{4.0, -1.0}, {-1.0, 3.0}});
    la::Vector b{1.0, 2.0};

    auto passes_for = [&](std::size_t bits) {
        AnalogSolverOptions sopts = quietOptions();
        sopts.spec.adc_bits = bits;
        AnalogLinearSolver solver(sopts);
        RefineOptions opts;
        opts.tolerance = 1e-8;
        return refineSolve(solver, a, b, opts).passes;
    };
    EXPECT_LE(passes_for(12), passes_for(8));
}

TEST(Refine, ZeroRhsConvergesImmediately)
{
    la::DenseMatrix a = la::DenseMatrix::identity(2);
    AnalogLinearSolver solver(quietOptions());
    auto out = refineSolve(solver, a, la::Vector(2), {});
    EXPECT_TRUE(out.converged);
    EXPECT_EQ(out.passes, 0u);
    EXPECT_LT(la::norm2(out.u), 1e-12);
}

TEST(Refine, TracksAnalogTimeSpent)
{
    la::DenseMatrix a =
        la::DenseMatrix::fromRows({{4.0, -1.0}, {-1.0, 3.0}});
    la::Vector b{1.0, 2.0};
    AnalogLinearSolver solver(quietOptions());
    auto out = refineSolve(solver, a, b, {});
    EXPECT_GT(out.analog_seconds, 0.0);
    EXPECT_LE(out.analog_seconds, solver.totalAnalogSeconds());
}

TEST(Refine, WorksWithNoisyCalibratedDie)
{
    AnalogSolverOptions sopts;
    sopts.die_seed = 9;
    AnalogLinearSolver solver(sopts);
    la::DenseMatrix a =
        la::DenseMatrix::fromRows({{4.0, -1.0}, {-1.0, 3.0}});
    la::Vector b{1.0, 2.0};
    la::Vector exact = la::solveDense(a, b);
    RefineOptions opts;
    // Residual gain errors on a real die floor the achievable
    // refinement; a modest tolerance must still be reachable.
    opts.tolerance = 1e-3;
    opts.max_passes = 30;
    auto out = refineSolve(solver, a, b, opts);
    EXPECT_TRUE(out.converged);
    EXPECT_LT(la::maxAbsDiff(out.u, exact), 1e-2);
}

} // namespace
} // namespace aa::analog
