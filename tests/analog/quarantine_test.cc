/**
 * @file
 * DiePool health state machine properties: consecutive verification
 * failures bench a die, cooldowns evolve with scheduler rounds (never
 * wall clock), probation is a single-probe readmission, re-quarantine
 * cooldowns grow exponentially up to a cap, and a dead die is never
 * routed again.
 */

#include <gtest/gtest.h>

#include "aa/analog/die_pool.hh"
#include "aa/common/logging.hh"
#include "aa/fault/fault.hh"

namespace aa::analog {
namespace {

const bool g_quiet = [] {
    setLogLevel(LogLevel::Quiet);
    return true;
}();

AnalogSolverOptions
quietOptions()
{
    AnalogSolverOptions opts;
    opts.spec.variation.enabled = false;
    opts.spec.adc_noise_sigma = 0.0;
    opts.auto_calibrate = false;
    return opts;
}

TEST(Quarantine, ConsecutiveFailuresBenchTheDie)
{
    DiePool pool(2, quietOptions());
    const DieHealthPolicy &policy = pool.healthPolicy();
    ASSERT_GE(policy.quarantine_after, 2u);

    // One failure short of the threshold: still routable.
    for (std::size_t i = 0; i + 1 < policy.quarantine_after; ++i)
        pool.recordFailure(0);
    EXPECT_TRUE(pool.dieAvailable(0));
    EXPECT_EQ(pool.health(0).state, DieState::Healthy);

    // The K-th consecutive failure quarantines.
    pool.recordFailure(0);
    EXPECT_FALSE(pool.dieAvailable(0));
    EXPECT_EQ(pool.health(0).state, DieState::Quarantined);
    EXPECT_EQ(pool.health(0).quarantines, 1u);
    EXPECT_EQ(pool.health(0).cooldown_remaining,
              policy.cooldown_rounds);

    // The healthy die keeps the pool routable.
    EXPECT_EQ(pool.availableDies(), std::vector<std::size_t>{1});
    EXPECT_EQ(pool.availableBlockSolvers().size(), 1u);
}

TEST(Quarantine, SuccessResetsTheFailureStreak)
{
    DiePool pool(1, quietOptions());
    const std::size_t k = pool.healthPolicy().quarantine_after;
    for (std::size_t round = 0; round < 3; ++round) {
        for (std::size_t i = 0; i + 1 < k; ++i)
            pool.recordFailure(0);
        pool.recordSuccess(0);
    }
    // 3 * (K-1) failures, but never K consecutive: still healthy.
    EXPECT_TRUE(pool.dieAvailable(0));
    EXPECT_EQ(pool.health(0).state, DieState::Healthy);
    EXPECT_EQ(pool.health(0).consecutive_failures, 0u);
}

TEST(Quarantine, CooldownExpiryGrantsProbationThenHealth)
{
    DiePool pool(1, quietOptions());
    const DieHealthPolicy &policy = pool.healthPolicy();
    for (std::size_t i = 0; i < policy.quarantine_after; ++i)
        pool.recordFailure(0);
    ASSERT_EQ(pool.health(0).state, DieState::Quarantined);

    // Not routable for the whole cooldown.
    for (std::size_t r = 0; r < policy.cooldown_rounds; ++r) {
        EXPECT_FALSE(pool.dieAvailable(0)) << "round " << r;
        pool.tickRound();
    }
    // Cooldown spent: one probe allowed.
    EXPECT_EQ(pool.health(0).state, DieState::Probation);
    EXPECT_TRUE(pool.dieAvailable(0));

    // The probe verifies: fully readmitted.
    pool.recordSuccess(0);
    EXPECT_EQ(pool.health(0).state, DieState::Healthy);
}

TEST(Quarantine, ProbationFailureRequarantinesWithGrownCooldown)
{
    DiePool pool(1, quietOptions());
    const DieHealthPolicy &policy = pool.healthPolicy();
    for (std::size_t i = 0; i < policy.quarantine_after; ++i)
        pool.recordFailure(0);
    for (std::size_t r = 0; r < policy.cooldown_rounds; ++r)
        pool.tickRound();
    ASSERT_EQ(pool.health(0).state, DieState::Probation);

    // One failed probe is enough — no second streak required.
    pool.recordFailure(0);
    EXPECT_EQ(pool.health(0).state, DieState::Quarantined);
    EXPECT_EQ(pool.health(0).quarantines, 2u);
    std::size_t grown = static_cast<std::size_t>(
        static_cast<double>(policy.cooldown_rounds) *
        policy.cooldown_growth);
    EXPECT_EQ(pool.health(0).cooldown_remaining, grown);
}

TEST(Quarantine, CooldownGrowthIsCapped)
{
    DieHealthPolicy policy;
    policy.quarantine_after = 1;
    policy.cooldown_rounds = 4;
    policy.cooldown_growth = 4.0;
    policy.max_cooldown_rounds = 10;
    DiePool pool(1, quietOptions(), policy);

    pool.recordFailure(0); // first quarantine: 4 rounds
    EXPECT_EQ(pool.health(0).cooldown_remaining, 4u);
    for (std::size_t r = 0; r < 4; ++r)
        pool.tickRound();
    pool.recordFailure(0); // would be 16; capped at 10
    EXPECT_EQ(pool.health(0).cooldown_remaining, 10u);
    for (std::size_t r = 0; r < 10; ++r)
        pool.tickRound();
    pool.recordFailure(0); // still capped
    EXPECT_EQ(pool.health(0).cooldown_remaining, 10u);
}

TEST(Quarantine, DeadDieIsNeverReadmitted)
{
    DiePool pool(2, quietOptions());
    pool.recordFailure(1, /*dead=*/true);
    EXPECT_EQ(pool.health(1).state, DieState::Dead);
    EXPECT_FALSE(pool.dieAvailable(1));

    // No number of rounds resurrects it.
    for (std::size_t r = 0; r < 200; ++r)
        pool.tickRound();
    EXPECT_EQ(pool.health(1).state, DieState::Dead);
    EXPECT_FALSE(pool.dieAvailable(1));
    EXPECT_EQ(pool.availableDies(), std::vector<std::size_t>{0});
}

TEST(Quarantine, HealthEvolutionIsDeterministic)
{
    // Two pools fed the identical record/tick sequence land in the
    // identical state — health is a pure function of the sequence.
    auto drive = [](DiePool &pool) {
        pool.recordFailure(0);
        pool.recordFailure(0);
        pool.recordSuccess(0);
        for (int i = 0; i < 5; ++i)
            pool.recordFailure(0);
        for (int i = 0; i < 3; ++i)
            pool.tickRound();
    };
    DiePool p1(1, quietOptions());
    DiePool p2(1, quietOptions());
    drive(p1);
    drive(p2);
    EXPECT_EQ(p1.health(0).state, p2.health(0).state);
    EXPECT_EQ(p1.health(0).failures, p2.health(0).failures);
    EXPECT_EQ(p1.health(0).quarantines, p2.health(0).quarantines);
    EXPECT_EQ(p1.health(0).cooldown_remaining,
              p2.health(0).cooldown_remaining);
}

TEST(Quarantine, AttachedInjectorDeathReachesTheSolver)
{
    // Integration with the fault layer: a DieDeath scheduled for the
    // first exec window makes the solve throw (never return a wrong
    // answer), and the pool's fault log sees the event.
    DiePool pool(1, quietOptions());
    fault::FaultPlan plan;
    plan.add({fault::FaultKind::DieDeath, 0, 0, 0, 0.0});
    pool.attachFaultInjector(
        0, std::make_shared<fault::FaultInjector>(plan));

    la::DenseMatrix a =
        la::DenseMatrix::fromRows({{4.0, -1.0}, {-1.0, 3.0}});
    la::Vector b{1.0, 2.0};
    EXPECT_THROW(pool.die(0).solve(a, b), fault::DieDeadError);
    EXPECT_GE(pool.faultsSeen(), 1u);
}

} // namespace
} // namespace aa::analog
