#include <gtest/gtest.h>

#include "aa/analog/decompose.hh"
#include "aa/la/direct.hh"
#include "aa/pde/poisson.hh"

namespace aa::analog {
namespace {

AnalogSolverOptions
quietOptions()
{
    AnalogSolverOptions opts;
    opts.spec.variation.enabled = false;
    opts.spec.adc_noise_sigma = 0.0;
    opts.auto_calibrate = false;
    return opts;
}

TEST(Decompose, BlockJacobiWithExactBlocksConverges)
{
    auto prob = pde::assemblePoisson(
        2, 4, [](double x, double y, double) { return x + y; });
    la::Vector exact = la::solveDense(prob.a.toDense(), prob.b);

    auto partition = pde::stripPartition(prob.grid, 4);
    DecomposeOptions opts;
    opts.tol = 1e-10;
    auto out = solveDecomposed(prob.a, prob.b, partition,
                               choleskyBlockSolver(), opts);
    EXPECT_TRUE(out.converged);
    EXPECT_EQ(out.blocks, 4u);
    EXPECT_LT(la::maxAbsDiff(out.u, exact), 1e-8);
}

TEST(Decompose, PaperExampleThreeStrips)
{
    // Section IV-B: the 3x3 problem as three 1D subproblems.
    auto prob = pde::assemblePoisson(
        2, 3, [](double, double, double) { return 1.0; });
    auto partition = pde::stripPartition(prob.grid, 3);
    ASSERT_EQ(partition.size(), 3u);
    DecomposeOptions opts;
    opts.tol = 1e-10;
    auto out = solveDecomposed(prob.a, prob.b, partition,
                               choleskyBlockSolver(), opts);
    EXPECT_TRUE(out.converged);
    la::Vector exact = la::solveDense(prob.a.toDense(), prob.b);
    EXPECT_LT(la::maxAbsDiff(out.u, exact), 1e-8);
}

TEST(Decompose, ChangeHistoryDecaysMonotonically)
{
    auto prob = pde::assemblePoisson(
        2, 4, [](double, double, double) { return 1.0; });
    DecomposeOptions opts;
    opts.tol = 1e-9;
    opts.record_history = true;
    auto out =
        solveDecomposed(prob.a, prob.b, pde::stripPartition(prob.grid, 4),
                        choleskyBlockSolver(), opts);
    ASSERT_GE(out.change_history.size(), 3u);
    for (std::size_t k = 2; k < out.change_history.size(); ++k)
        EXPECT_LT(out.change_history[k], out.change_history[k - 1]);
}

TEST(Decompose, LargerBlocksConvergeInFewerSweeps)
{
    // "It is still desirable to ensure the block matrices are large"
    // (Section IV-B): fewer cuts, faster outer convergence.
    auto prob = pde::assemblePoisson(
        2, 6, [](double, double, double) { return 1.0; });
    DecomposeOptions opts;
    opts.tol = 1e-8;
    auto small = solveDecomposed(
        prob.a, prob.b, pde::stripPartition(prob.grid, 6),
        choleskyBlockSolver(), opts);
    auto large = solveDecomposed(
        prob.a, prob.b, pde::stripPartition(prob.grid, 18),
        choleskyBlockSolver(), opts);
    EXPECT_TRUE(small.converged && large.converged);
    EXPECT_LT(large.outer_iterations, small.outer_iterations);
}

TEST(Decompose, AnalogBlockSolverMatchesPaperPrecision)
{
    // Full story: a 2D Poisson problem too big for the die is cut
    // into strips solved on ONE accelerator, reaching the paper's
    // 1/256 stopping rule.
    auto prob = pde::assemblePoisson(
        2, 4, [](double x, double, double) { return 4.0 * x; });
    la::Vector exact = la::solveDense(prob.a.toDense(), prob.b);

    AnalogLinearSolver solver(quietOptions());
    DecomposeOptions opts;
    opts.max_block_vars = 4;
    opts.tol = 1.0 / 256.0;
    opts.max_outer_iters = 100;
    auto out = solveDecomposedAnalog(solver, prob.a, prob.b, opts);
    EXPECT_TRUE(out.converged);
    EXPECT_GT(out.block_solves, 4u);
    double scale = std::max(1.0, la::normInf(exact));
    EXPECT_LT(la::maxAbsDiff(out.u, exact), 0.02 * scale);
}

TEST(DecomposeDeath, OverlappingPartitionFatal)
{
    auto prob = pde::assemblePoisson(1, 4);
    std::vector<pde::IndexSet> bad = {{0, 1}, {1, 2, 3}};
    EXPECT_EXIT(solveDecomposed(prob.a, prob.b, bad,
                                choleskyBlockSolver(), {}),
                ::testing::ExitedWithCode(1), "two blocks");
}

TEST(DecomposeDeath, UncoveredRowFatal)
{
    auto prob = pde::assemblePoisson(1, 4);
    std::vector<pde::IndexSet> bad = {{0, 1}, {3}};
    EXPECT_EXIT(solveDecomposed(prob.a, prob.b, bad,
                                choleskyBlockSolver(), {}),
                ::testing::ExitedWithCode(1), "uncovered");
}

} // namespace
} // namespace aa::analog
