#include <gtest/gtest.h>

#include <cmath>

#include "aa/analog/solver.hh"
#include "aa/la/direct.hh"

namespace aa::analog {
namespace {

AnalogSolverOptions
quietOptions()
{
    AnalogSolverOptions opts;
    opts.spec.variation.enabled = false;
    opts.spec.adc_noise_sigma = 0.0;
    opts.auto_calibrate = false; // nothing to calibrate when ideal
    return opts;
}

TEST(AnalogSolver, SolvesSmallSpdSystemToAdcPrecision)
{
    la::DenseMatrix a =
        la::DenseMatrix::fromRows({{4.0, -1.0}, {-1.0, 3.0}});
    la::Vector b{1.0, 2.0};
    la::Vector exact = la::solveDense(a, b);

    AnalogLinearSolver solver(quietOptions());
    auto out = solver.solve(a, b);
    EXPECT_TRUE(out.converged);
    // One run is worth ~8 bits.
    EXPECT_LT(la::maxAbsDiff(out.u, exact), 2.0 / 255.0 * 1.5);
}

TEST(AnalogSolver, HandlesCoefficientsBeyondGainRange)
{
    // Value/time scaling path: entries far beyond max_gain.
    la::DenseMatrix a =
        la::DenseMatrix::fromRows({{400.0, -100.0}, {-100.0, 300.0}});
    la::Vector b{100.0, 50.0};
    la::Vector exact = la::solveDense(a, b);

    AnalogLinearSolver solver(quietOptions());
    auto out = solver.solve(a, b);
    EXPECT_GT(out.gain_scale, 1.0);
    EXPECT_LT(la::maxAbsDiff(out.u, exact),
              0.02 * std::max(1.0, la::normInf(exact)));
}

TEST(AnalogSolver, OverflowRetryScalesSolutionDown)
{
    // A small-lambda system: the solution peak (~2.7) well exceeds
    // the bias floor (sigma >= b_peak / 0.95 = 1.68), so the first
    // run genuinely latches the overflow comparators rather than
    // being rescued by the floor, and the exception loop must raise
    // sigma to succeed.
    la::DenseMatrix a = la::DenseMatrix::fromRows({{0.8, -0.4},
                                                   {-0.4, 0.8}});
    la::Vector b{1.6, 0.0}; // u = {8/3, 4/3}
    AnalogLinearSolver solver(quietOptions());
    auto out = solver.solve(a, b);
    EXPECT_GT(out.overflow_retries, 0u);
    EXPECT_GE(out.solution_scale, 2.0);
    // Readout precision is sigma-relative: allow ~2 LSB of the 8-bit
    // ADC at the final solution scale.
    double tol = 2.0 * out.solution_scale * 2.0 / 256.0;
    EXPECT_NEAR(out.u[0], 8.0 / 3.0, tol);
    EXPECT_NEAR(out.u[1], 4.0 / 3.0, tol);
}

TEST(AnalogSolver, UnderrangeRetryRecoversPrecision)
{
    // A tiny solution (~0.01) wastes the ADC range at sigma = 1; the
    // host scales up and the absolute error shrinks accordingly.
    la::DenseMatrix a = la::DenseMatrix::fromRows({{1.0, 0.0},
                                                   {0.0, 1.0}});
    la::Vector b{0.012, -0.008};
    AnalogLinearSolver solver(quietOptions());
    auto out = solver.solve(a, b);
    EXPECT_GT(out.underrange_retries, 0u);
    EXPECT_LT(out.solution_scale, 0.1);
    // Error now bounded by sigma * LSB rather than 1 * LSB.
    EXPECT_LT(std::fabs(out.u[0] - 0.012), 0.001);
}

TEST(AnalogSolver, SolveTimeScalesWithBandwidth)
{
    la::DenseMatrix a =
        la::DenseMatrix::fromRows({{4.0, -1.0}, {-1.0, 3.0}});
    la::Vector b{1.0, 2.0};

    auto time_at = [&](double bw) {
        AnalogSolverOptions opts = quietOptions();
        opts.spec.bandwidth_hz = bw;
        AnalogLinearSolver solver(opts);
        return solver.solve(a, b).analog_seconds;
    };
    double t20 = time_at(20e3);
    double t80 = time_at(80e3);
    EXPECT_NEAR(t20 / t80, 4.0, 1.0);
}

TEST(AnalogSolver, DiePersistsAcrossSolves)
{
    AnalogLinearSolver solver(quietOptions());
    la::DenseMatrix a =
        la::DenseMatrix::fromRows({{4.0, -1.0}, {-1.0, 3.0}});
    solver.solve(a, {1.0, 2.0});
    auto &chip1 = solver.chipRef();
    solver.solve(a, {0.5, -0.5});
    auto &chip2 = solver.chipRef();
    EXPECT_EQ(&chip1, &chip2);
    EXPECT_GT(solver.totalAnalogSeconds(), 0.0);
    EXPECT_GT(solver.configBytes(), 0u);
}

TEST(AnalogSolver, RegrowsForLargerProblems)
{
    AnalogLinearSolver solver(quietOptions());
    la::DenseMatrix small =
        la::DenseMatrix::fromRows({{2.0, 0.0}, {0.0, 2.0}});
    solver.solve(small, {0.5, 0.5});
    std::size_t mb_before =
        solver.chipRef().config().geometry.macroblocks;

    la::DenseMatrix big(6, 6);
    for (std::size_t i = 0; i < 6; ++i)
        big(i, i) = 2.0;
    la::Vector b6(6, 0.5);
    auto out = solver.solve(big, b6);
    EXPECT_GT(solver.chipRef().config().geometry.macroblocks,
              mb_before);
    la::Vector exact = la::solveDense(big, b6);
    EXPECT_LT(la::maxAbsDiff(out.u, exact), 0.01);
}

TEST(AnalogSolver, CalibratedNoisyDieStaysAccurate)
{
    // The realistic path: process variation + calibration + noise.
    AnalogSolverOptions opts;
    opts.die_seed = 33;
    opts.auto_calibrate = true;
    AnalogLinearSolver solver(opts);
    la::DenseMatrix a =
        la::DenseMatrix::fromRows({{4.0, -1.0}, {-1.0, 3.0}});
    la::Vector b{1.0, 2.0};
    la::Vector exact = la::solveDense(a, b);
    auto out = solver.solve(a, b);
    // Calibration residue + ADC keeps this within a couple percent.
    EXPECT_LT(la::maxAbsDiff(out.u, exact), 0.03);
}

TEST(AnalogSolver, InitialGuessDoesNotChangeAnswer)
{
    AnalogLinearSolver solver(quietOptions());
    la::DenseMatrix a =
        la::DenseMatrix::fromRows({{4.0, -1.0}, {-1.0, 3.0}});
    la::Vector b{1.0, 2.0};
    auto cold = solver.solve(a, b);
    auto warm = solver.solve(a, b, cold.u);
    EXPECT_LT(la::maxAbsDiff(cold.u, warm.u), 0.02);
}

TEST(AnalogSolverDeath, DimensionMismatchFatal)
{
    AnalogLinearSolver solver(quietOptions());
    la::DenseMatrix a = la::DenseMatrix::identity(2);
    EXPECT_EXIT(solver.solve(a, la::Vector(3)),
                ::testing::ExitedWithCode(1), "dimension");
}

} // namespace
} // namespace aa::analog
