#include <gtest/gtest.h>

#include "aa/analog/die_pool.hh"
#include "aa/la/direct.hh"
#include "aa/pde/poisson.hh"

namespace aa::analog {
namespace {

AnalogSolverOptions
realisticOptions()
{
    AnalogSolverOptions opts; // variation + calibration on
    opts.die_seed = 40;
    return opts;
}

TEST(DiePool, DiesAreDistinctCorners)
{
    DiePool pool(3, realisticOptions());
    ASSERT_EQ(pool.size(), 3u);

    la::DenseMatrix a =
        la::DenseMatrix::fromRows({{4.0, -1.0}, {-1.0, 3.0}});
    la::Vector b{1.0, 2.0};
    la::Vector u0 = pool.die(0).solve(a, b).u;
    la::Vector u1 = pool.die(1).solve(a, b).u;
    la::Vector u2 = pool.die(2).solve(a, b).u;

    // Different dies give (slightly) different answers...
    bool any_diff = la::maxAbsDiff(u0, u1) > 0.0 ||
                    la::maxAbsDiff(u1, u2) > 0.0;
    EXPECT_TRUE(any_diff);
    // ...but all within the calibrated accuracy envelope.
    la::Vector exact = la::solveDense(a, b);
    EXPECT_LT(la::maxAbsDiff(u0, exact), 0.03);
    EXPECT_LT(la::maxAbsDiff(u1, exact), 0.03);
    EXPECT_LT(la::maxAbsDiff(u2, exact), 0.03);
}

TEST(DiePool, RoundRobinCycles)
{
    DiePool pool(2, realisticOptions());
    auto &first = pool.nextDie();
    auto &second = pool.nextDie();
    auto &third = pool.nextDie();
    EXPECT_NE(&first, &second);
    EXPECT_EQ(&first, &third);
}

TEST(DiePool, DecompositionAcrossHeterogeneousDies)
{
    // The paper's "solved separately on multiple accelerators":
    // strips of a 2D problem distributed over three different chips
    // still converge globally.
    auto prob = pde::assemblePoisson(
        2, 4, [](double x, double y, double) { return x + y; });
    la::Vector exact = la::solveDense(prob.a.toDense(), prob.b);

    DiePool pool(3, realisticOptions());
    DecomposeOptions dopts;
    dopts.max_block_vars = 4;
    dopts.tol = 1.0 / 256.0;
    dopts.max_outer_iters = 200;
    auto out = solveDecomposed(prob.a, prob.b,
                               pde::stripPartition(prob.grid, 4),
                               pool.refinedBlockSolver(2), dopts);
    EXPECT_TRUE(out.converged);
    double scale = std::max(1.0, la::normInf(exact));
    EXPECT_LT(la::maxAbsDiff(out.u, exact), 0.03 * scale);
    EXPECT_GT(pool.totalAnalogSeconds(), 0.0);
}

TEST(DiePool, PoolIsDeterministicPerBaseSeed)
{
    la::DenseMatrix a =
        la::DenseMatrix::fromRows({{4.0, -1.0}, {-1.0, 3.0}});
    la::Vector b{1.0, 2.0};

    DiePool pool1(2, realisticOptions());
    DiePool pool2(2, realisticOptions());
    EXPECT_EQ(pool1.die(1).solve(a, b).u.raw(),
              pool2.die(1).solve(a, b).u.raw());
}

TEST(DiePoolDeath, EmptyPoolFatal)
{
    EXPECT_EXIT(DiePool(0), ::testing::ExitedWithCode(1),
                "at least one die");
}

TEST(DiePoolDeath, DieIndexRangeChecked)
{
    DiePool pool(2, realisticOptions());
    EXPECT_EXIT(pool.die(2), ::testing::ExitedWithCode(1), "die 2");
}

} // namespace
} // namespace aa::analog
