#include <gtest/gtest.h>

#include <cmath>

#include "aa/analog/ode_runner.hh"

namespace aa::analog {
namespace {

AnalogSolverOptions
quietOptions()
{
    AnalogSolverOptions opts;
    opts.spec.variation.enabled = false;
    opts.spec.adc_noise_sigma = 0.0;
    opts.auto_calibrate = false;
    return opts;
}

TEST(OdeRunner, ScalarDecayMatchesClosedForm)
{
    // Equation 1 with a = -1, b = 0: u(t) = uinit * e^-t.
    AnalogOdeSolver runner(quietOptions());
    la::DenseMatrix a = la::DenseMatrix::fromRows({{-1.0}});
    auto wave = runner.simulate(a, la::Vector{0.0},
                                la::Vector{0.8}, 3.0);
    ASSERT_GE(wave.times.size(), 10u);
    for (std::size_t k = 0; k < wave.times.size(); k += 20) {
        double t = wave.times[k];
        EXPECT_NEAR(wave.states[k][0], 0.8 * std::exp(-t), 0.02)
            << "t=" << t;
    }
}

TEST(OdeRunner, ForcedSystemApproachesEquilibrium)
{
    // du/dt = -2u + 1: u(inf) = 0.5 from u(0) = 0.
    AnalogOdeSolver runner(quietOptions());
    la::DenseMatrix a = la::DenseMatrix::fromRows({{-2.0}});
    auto wave = runner.simulate(a, la::Vector{1.0},
                                la::Vector{0.0}, 4.0);
    EXPECT_NEAR(wave.states.back()[0], 0.5, 0.02);
    // Monotone rise.
    EXPECT_LT(wave.states.front()[0], wave.states.back()[0]);
}

TEST(OdeRunner, CoupledOscillatorKeepsPhase)
{
    // u0' = u1, u1' = -u0: a circle. Check quadrature relationship
    // at a quarter period.
    AnalogOdeSolver runner(quietOptions());
    la::DenseMatrix a =
        la::DenseMatrix::fromRows({{0.0, 1.0}, {-1.0, 0.0}});
    double quarter = M_PI / 2.0;
    auto wave = runner.simulate(a, la::Vector(2),
                                la::Vector{0.8, 0.0}, quarter);
    EXPECT_NEAR(wave.states.back()[0], 0.0, 0.05);
    EXPECT_NEAR(wave.states.back()[1], -0.8, 0.05);
}

TEST(OdeRunner, TimeScaleReflectsGainScaling)
{
    // Coefficients beyond the gain range stretch analog time by s
    // (Section VI-D): the waveform still matches problem time.
    AnalogOdeSolver runner(quietOptions());
    la::DenseMatrix a = la::DenseMatrix::fromRows({{-100.0}});
    auto wave = runner.simulate(a, la::Vector{0.0},
                                la::Vector{0.9}, 0.05);
    // 100 > max_gain = 32 forces s > 1, so the problem-per-analog
    // time ratio drops below the raw integrator rate.
    circuit::AnalogSpec spec = quietOptions().spec;
    EXPECT_LT(wave.time_scale, spec.integratorRate() * 0.99);
    EXPECT_NEAR(wave.states.back()[0], 0.9 * std::exp(-5.0), 0.02);
}

TEST(OdeRunner, OverflowRaisesSolutionBound)
{
    // Dynamics that swing past full scale: u' = 2.5 - u from 0
    // approaches 2.5, overflowing at bound 1; the retry loop must
    // rescale.
    AnalogOdeSolver runner(quietOptions());
    la::DenseMatrix a = la::DenseMatrix::fromRows({{-1.0}});
    OdeRunOptions ropts;
    ropts.solution_bound = 1.0;
    auto wave = runner.simulate(a, la::Vector{2.5}, la::Vector{0.0},
                                4.0, ropts);
    EXPECT_GT(wave.attempts, 1u);
    EXPECT_NEAR(wave.states.back()[0], 2.5 * (1 - std::exp(-4.0)),
                0.08);
}

TEST(OdeRunner, SampleCountHonored)
{
    AnalogOdeSolver runner(quietOptions());
    la::DenseMatrix a = la::DenseMatrix::fromRows({{-1.0}});
    OdeRunOptions ropts;
    ropts.samples = 33;
    auto wave = runner.simulate(a, la::Vector{0.0}, la::Vector{0.5},
                                1.0, ropts);
    EXPECT_EQ(wave.times.size(), 33u);
    EXPECT_EQ(wave.states.size(), 33u);
    EXPECT_DOUBLE_EQ(wave.times.front(), 0.0);
    EXPECT_NEAR(wave.times.back(), 1.0, 1e-6);
}

TEST(OdeRunner, ComponentExtraction)
{
    AnalogOdeSolver runner(quietOptions());
    la::DenseMatrix a =
        la::DenseMatrix::fromRows({{-1.0, 0.0}, {0.0, -2.0}});
    auto wave = runner.simulate(a, la::Vector(2),
                                la::Vector{0.5, 0.5}, 1.0);
    auto u1 = wave.component(1);
    EXPECT_EQ(u1.size(), wave.times.size());
    EXPECT_NEAR(u1.back(), 0.5 * std::exp(-2.0), 0.02);
}

} // namespace
} // namespace aa::analog
