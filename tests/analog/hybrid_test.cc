#include <gtest/gtest.h>

#include "aa/analog/hybrid_mg.hh"
#include "aa/la/direct.hh"
#include "aa/pde/manufactured.hh"

namespace aa::analog {
namespace {

AnalogSolverOptions
quietOptions()
{
    AnalogSolverOptions opts;
    opts.spec.variation.enabled = false;
    opts.spec.adc_noise_sigma = 0.0;
    opts.auto_calibrate = false;
    return opts;
}

TEST(HybridMg, AnalogCoarseSolverReturnsUsableSolution)
{
    AnalogLinearSolver solver(quietOptions());
    auto coarse = analogCoarseSolver(solver);
    auto prob = pde::manufacturedProblem(1, 3);
    la::Vector x = coarse(prob.a, prob.b);
    la::Vector exact = la::solveDense(prob.a.toDense(), prob.b);
    EXPECT_LT(la::maxAbsDiff(x, exact),
              0.02 * std::max(1.0, la::normInf(exact)));
}

TEST(HybridMg, ConvergesDespiteLowPrecisionCoarseSolves)
{
    // Section IV-A's claim: multigrid absorbs inaccurate, low
    // precision coarse solutions.
    AnalogLinearSolver solver(quietOptions());
    solver::MgOptions mg_opts;
    mg_opts.tol = 1e-8;
    auto mg = makeHybridMultigrid(solver, 1, 15, 3, mg_opts);

    auto prob = pde::manufacturedProblem(1, 15);
    auto res = mg.solve(prob.b);
    EXPECT_TRUE(res.converged);
    la::Vector exact = la::solveDense(prob.a.toDense(), prob.b);
    EXPECT_LT(la::maxAbsDiff(res.x, exact), 1e-6);
}

TEST(HybridMg, TwoDimensionalHybridSolve)
{
    AnalogLinearSolver solver(quietOptions());
    solver::MgOptions mg_opts;
    mg_opts.tol = 1e-7;
    auto mg = makeHybridMultigrid(solver, 2, 7, 3, mg_opts);

    auto prob = pde::manufacturedProblem(2, 7);
    auto res = mg.solve(prob.b);
    EXPECT_TRUE(res.converged);
    la::Vector exact = la::solveDense(prob.a.toDense(), prob.b);
    EXPECT_LT(la::maxAbsDiff(res.x, exact), 1e-5);
}

TEST(HybridMg, NeedsModestlyMoreCyclesThanExact)
{
    auto prob = pde::manufacturedProblem(1, 15);
    solver::MgOptions exact_opts;
    exact_opts.tol = 1e-8;
    solver::Multigrid exact_mg(1, 15, exact_opts);
    auto exact_res = exact_mg.solve(prob.b);

    AnalogLinearSolver solver(quietOptions());
    solver::MgOptions hyb_opts;
    hyb_opts.tol = 1e-8;
    auto hybrid = makeHybridMultigrid(solver, 1, 15, 3, hyb_opts);
    auto hyb_res = hybrid.solve(prob.b);

    EXPECT_TRUE(exact_res.converged && hyb_res.converged);
    // The 8-bit coarse solve costs at most a handful of extra
    // V-cycles.
    EXPECT_LE(hyb_res.cycles, exact_res.cycles + 6);
}

} // namespace
} // namespace aa::analog
