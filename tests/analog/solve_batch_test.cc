/**
 * @file
 * solveBatch contract tests. The contract is exact and replayable:
 * member 0 is bit-identical to a solo solve (canonical ladder, sticky
 * hint honored); member k > 0 is bit-identical to a solo solve hinted
 * with sigma_{k-1} * |b_k| / |b_{k-1}| — the derived range reuse that
 * lets a proportional right-hand side rebind the registers the die
 * already holds, run once, and ship zero config bytes. Batch-shared
 * work (structure fetch, eigen analysis) is paid once and attributed
 * to member 0.
 */

#include <string>

#include <gtest/gtest.h>

#include "aa/analog/refine.hh"
#include "aa/analog/solver.hh"
#include "aa/la/direct.hh"
#include "common/solve_properties.hh"
#include "common/trace_matcher.hh"

namespace aa::analog {
namespace {

AnalogSolverOptions
quietOptions()
{
    return testutil::quietSolverOptions();
}

la::DenseMatrix
testMatrix()
{
    return la::DenseMatrix::fromRows({{4.0, -1.0, 0.0},
                                      {-1.0, 3.0, -1.0},
                                      {0.0, -1.0, 2.0}});
}

/** RHS set mixing directions and magnitudes: a base vector, a scaled
 *  copy (the zero-delta rebind case), a different direction, and one
 *  small enough to trip the underrange retry. */
std::vector<la::Vector>
testRhs()
{
    return {la::Vector{1.0, 2.0, 0.5}, la::Vector{0.5, 1.0, 0.25},
            la::Vector{-2.0, 0.5, 1.0}, la::Vector{0.01, 0.005, 0.0}};
}

/**
 * The batch's documented sequential equivalent: member 0 solo (any
 * sticky hint the caller set is consumed there), member k > 0 solo
 * under the derived hint sigma_{k-1} * |b_k| / |b_{k-1}|.
 */
std::vector<AnalogSolveOutcome>
sequentialReplay(AnalogLinearSolver &solver, const la::DenseMatrix &a,
                 const std::vector<la::Vector> &bs,
                 const std::vector<la::Vector> &u0s = {})
{
    std::vector<AnalogSolveOutcome> outs;
    for (std::size_t k = 0; k < bs.size(); ++k) {
        if (k > 0) {
            double prev = la::normInf(bs[k - 1]);
            double cur = la::normInf(bs[k]);
            if (outs.back().solution_scale > 0.0 && prev > 0.0 &&
                cur > 0.0)
                solver.setSolutionScaleHint(
                    outs.back().solution_scale * (cur / prev));
        }
        outs.push_back(solver.solve(
            a, bs[k], u0s.empty() ? la::Vector{} : u0s[k]));
    }
    return outs;
}

void
expectOutcomesIdentical(const AnalogSolveOutcome &seq,
                        const AnalogSolveOutcome &bat, std::size_t k)
{
    testutil::expectSolutionsBitEqual(
        seq.u, bat.u, "member " + std::to_string(k));
    EXPECT_EQ(seq.converged, bat.converged) << "member " << k;
    EXPECT_EQ(seq.attempts, bat.attempts) << "member " << k;
    EXPECT_EQ(seq.overflow_retries, bat.overflow_retries)
        << "member " << k;
    EXPECT_EQ(seq.underrange_retries, bat.underrange_retries)
        << "member " << k;
    EXPECT_EQ(seq.solution_scale, bat.solution_scale) << "member " << k;
    EXPECT_EQ(seq.gain_scale, bat.gain_scale) << "member " << k;
    // The die sees the same register evolution either way, so the
    // delta traffic per member is identical too.
    EXPECT_EQ(seq.phases.config_bytes, bat.phases.config_bytes)
        << "member " << k;
    EXPECT_EQ(seq.phases.structure_reused, bat.phases.structure_reused)
        << "member " << k;
}

TEST(SolveBatch, MatchesSequentialReplayBitForBit)
{
    la::DenseMatrix a = testMatrix();
    std::vector<la::Vector> bs = testRhs();

    AnalogLinearSolver sequential(quietOptions());
    auto seq = sequentialReplay(sequential, a, bs);

    AnalogLinearSolver batched(quietOptions());
    auto bat = batched.solveBatch(a, bs);

    ASSERT_EQ(bat.size(), bs.size());
    for (std::size_t k = 0; k < bs.size(); ++k)
        expectOutcomesIdentical(seq[k], bat[k], k);

    // Sequential pays one cache fetch per solve (1 miss + K-1 hits);
    // the batch fetches once, attributed to member 0.
    EXPECT_EQ(bat[0].phases.cache_misses, 1u);
    for (std::size_t k = 0; k < bs.size(); ++k) {
        EXPECT_EQ(bat[k].phases.cache_hits, 0u) << "member " << k;
        if (k > 0) {
            EXPECT_EQ(bat[k].phases.cache_misses, 0u)
                << "member " << k;
        }
    }
    EXPECT_EQ(batched.cacheStats().hits + batched.cacheStats().misses,
              1u);
    EXPECT_EQ(sequential.cacheStats().hits, bs.size() - 1);
}

TEST(SolveBatch, BatchOfOneEqualsSolve)
{
    la::DenseMatrix a = testMatrix();
    la::Vector b{1.0, 2.0, 0.5};

    AnalogLinearSolver single(quietOptions());
    auto one = single.solve(a, b);

    AnalogLinearSolver batched(quietOptions());
    auto bat = batched.solveBatch(a, {b});

    ASSERT_EQ(bat.size(), 1u);
    expectOutcomesIdentical(one, bat[0], 0);
    // K=1 even keeps the full structural story: one miss, no hits.
    EXPECT_TRUE(testutil::phasesMatch(one.phases, bat[0].phases));
}

TEST(SolveBatch, ScaledRhsMembersShipZeroConfigBytes)
{
    // The workload batching exists for: one matrix, right-hand sides
    // differing by a scalar. The derived hint reproduces member 0's
    // working rung exactly (the stretch and b_s = b / (s sigma) are
    // both ratio-invariant), so members past the first bind
    // bit-identical registers — the shadow file suppresses every
    // write.
    la::DenseMatrix a = testMatrix();
    la::Vector b0{1.0, 2.0, 0.5};
    std::vector<la::Vector> bs;
    for (double f : {1.0, 1.25, 0.75, 2.0}) {
        la::Vector b(b0.size());
        for (std::size_t i = 0; i < b0.size(); ++i)
            b[i] = f * b0[i];
        bs.push_back(std::move(b));
    }

    AnalogLinearSolver solver(quietOptions());
    auto outs = solver.solveBatch(a, bs);
    ASSERT_EQ(outs.size(), bs.size());
    EXPECT_GT(outs[0].phases.config_bytes, 0u); // first pays setup
    for (std::size_t k = 1; k < outs.size(); ++k) {
        EXPECT_EQ(outs[k].phases.config_bytes, 0u) << "member " << k;
        EXPECT_TRUE(outs[k].phases.structure_reused) << "member " << k;
        // The derived hint lands each member on the working rung
        // directly: one accelerator run, no ladder.
        EXPECT_EQ(outs[k].attempts, 1u) << "member " << k;
    }
    // Solutions still scale with f, exactly.
    la::Vector exact = la::solveDense(a, b0);
    for (std::size_t k = 0; k < outs.size(); ++k) {
        double f = outs[k].solution_scale / outs[0].solution_scale;
        for (std::size_t i = 0; i < exact.size(); ++i)
            EXPECT_NEAR(outs[k].u[i], f * outs[0].u[i], 1e-12)
                << "member " << k << " component " << i;
    }
}

TEST(SolveBatch, PerMemberHintsMatchHintedSequential)
{
    la::DenseMatrix a = testMatrix();
    std::vector<la::Vector> bs = testRhs();
    std::vector<double> hints{0.8, 0.4, 0.9, 0.004};

    AnalogLinearSolver sequential(quietOptions());
    std::vector<AnalogSolveOutcome> seq;
    for (std::size_t k = 0; k < bs.size(); ++k) {
        sequential.setSolutionScaleHint(hints[k]);
        seq.push_back(sequential.solve(a, bs[k]));
    }

    AnalogLinearSolver batched(quietOptions());
    auto bat = batched.solveBatch(a, bs, {}, hints);

    ASSERT_EQ(bat.size(), bs.size());
    for (std::size_t k = 0; k < bs.size(); ++k)
        expectOutcomesIdentical(seq[k], bat[k], k);
}

TEST(SolveBatch, StickyHintSeedsMemberZeroOnly)
{
    la::DenseMatrix a = testMatrix();
    std::vector<la::Vector> bs = {la::Vector{1.0, 2.0, 0.5},
                                  la::Vector{1.0, 2.0, 0.5}};

    AnalogLinearSolver sequential(quietOptions());
    sequential.setSolutionScaleHint(0.8);
    auto seq = sequentialReplay(sequential, a, bs);

    AnalogLinearSolver batched(quietOptions());
    batched.setSolutionScaleHint(0.8);
    auto bat = batched.solveBatch(a, bs);

    ASSERT_EQ(bat.size(), 2u);
    for (std::size_t k = 0; k < bs.size(); ++k)
        expectOutcomesIdentical(seq[k], bat[k], k);
}

TEST(SolveBatch, InitialGuessesAreAppliedPerMember)
{
    la::DenseMatrix a = testMatrix();
    std::vector<la::Vector> bs = {la::Vector{1.0, 2.0, 0.5},
                                  la::Vector{-2.0, 0.5, 1.0}};
    std::vector<la::Vector> u0s = {la::Vector{0.2, 0.5, 0.2},
                                   la::Vector{-0.5, 0.1, 0.4}};

    AnalogLinearSolver sequential(quietOptions());
    auto seq = sequentialReplay(sequential, a, bs, u0s);

    AnalogLinearSolver batched(quietOptions());
    auto bat = batched.solveBatch(a, bs, u0s);

    ASSERT_EQ(bat.size(), bs.size());
    for (std::size_t k = 0; k < bs.size(); ++k)
        expectOutcomesIdentical(seq[k], bat[k], k);
}

TEST(RefineSolveBatch, MatchesSequentialRefinement)
{
    // Lockstep refinement: each pass batches the still-active
    // members' residual systems. The numbers a member sees are a pure
    // function of (A, its b, its hint), so per-member convergence is
    // bit-identical to refining that member alone — the batch only
    // changes who pays the per-pass structure fetch.
    la::DenseMatrix a = testMatrix();
    std::vector<la::Vector> bs = {la::Vector{1.0, 2.0, 0.5},
                                  la::Vector{-2.0, 0.5, 1.0},
                                  la::Vector{0.25, 0.5, 0.125}};
    RefineOptions ro;
    ro.tolerance = 1e-10;
    ro.max_passes = 12;

    std::vector<RefineOutcome> seq;
    for (const la::Vector &b : bs) {
        AnalogLinearSolver solver(quietOptions());
        seq.push_back(refineSolve(solver, a, b, ro));
    }

    AnalogLinearSolver batched(quietOptions());
    auto bat = refineSolveBatch(batched, a, bs, ro);

    ASSERT_EQ(bat.size(), bs.size());
    for (std::size_t k = 0; k < bs.size(); ++k) {
        EXPECT_TRUE(bat[k].converged) << "member " << k;
        EXPECT_EQ(seq[k].converged, bat[k].converged) << "member " << k;
        EXPECT_EQ(seq[k].passes, bat[k].passes) << "member " << k;
        testutil::expectSolutionsBitEqual(
            seq[k].u, bat[k].u, "member " + std::to_string(k));
        EXPECT_EQ(seq[k].final_residual, bat[k].final_residual)
            << "member " << k;
    }

    // Per-pass economics: one fetch per pass covers every member (1
    // miss on the first pass, then hits), and after the first pass
    // the refinement hint pins the stretched gain plane, so later
    // passes ship only bias deltas.
    std::size_t total_passes = 0;
    for (const RefineOutcome &out : bat)
        total_passes = std::max(total_passes, out.passes);
    EXPECT_EQ(batched.cacheStats().misses, 1u);
    EXPECT_EQ(batched.cacheStats().hits, total_passes - 1);
    const auto &bytes = bat[0].config_bytes_history;
    ASSERT_GE(bytes.size(), 2u);
    for (std::size_t p = 2; p < bytes.size(); ++p)
        EXPECT_LT(bytes[p], bytes[0]) << "pass " << p;
}

TEST(SolveBatchDeath, RejectsMalformedBatches)
{
    la::DenseMatrix a = testMatrix();
    AnalogLinearSolver solver(quietOptions());
    EXPECT_EXIT((void)solver.solveBatch(a, {}),
                ::testing::ExitedWithCode(1), "empty batch");
    EXPECT_EXIT((void)solver.solveBatch(
                    a, {la::Vector{1.0, 2.0, 0.5}, la::Vector{1.0}}),
                ::testing::ExitedWithCode(1), "dimension mismatch");
    EXPECT_EXIT((void)solver.solveBatch(a, {la::Vector{1.0, 2.0, 0.5}},
                                        {la::Vector{0.0, 0.0, 0.0},
                                         la::Vector{0.0, 0.0, 0.0}}),
                ::testing::ExitedWithCode(1), "u0 count");
    EXPECT_EXIT((void)solver.solveBatch(a, {la::Vector{1.0, 2.0, 0.5}},
                                        {}, {0.5, 0.5}),
                ::testing::ExitedWithCode(1), "hint count");
}

} // namespace
} // namespace aa::analog
