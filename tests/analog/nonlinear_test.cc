#include <gtest/gtest.h>

#include <cmath>

#include "aa/analog/nonlinear.hh"
#include "aa/pde/poisson.hh"

namespace aa::analog {
namespace {

AnalogSolverOptions
quietOptions()
{
    AnalogSolverOptions opts;
    opts.spec.variation.enabled = false;
    opts.spec.adc_noise_sigma = 0.0;
    opts.auto_calibrate = false;
    return opts;
}

solver::NonlinearSystem
scalarCubic()
{
    // u + u^3 = 1.2: root ~0.7705.
    solver::NonlinearSystem sys;
    sys.a = la::DenseMatrix::fromRows({{1.0}});
    sys.b = la::Vector{1.2};
    sys.phi = [](double u) { return u * u * u; };
    sys.phi_prime = [](double u) { return 3.0 * u * u; };
    return sys;
}

solver::NonlinearSystem
cubicPoisson1D(std::size_t l, double c, double f_value)
{
    auto prob = pde::assemblePoisson(
        1, l, [f_value](double, double, double) { return f_value; });
    solver::NonlinearSystem sys;
    sys.a = prob.a.toDense();
    sys.b = prob.b;
    sys.phi = [c](double u) { return c * u * u * u; };
    sys.phi_prime = [c](double u) { return 3.0 * c * u * u; };
    return sys;
}

TEST(NonlinearFlow, ScalarCubicRoot)
{
    auto sys = scalarCubic();
    la::Vector exact = solver::newtonSolve(sys).x;

    AnalogNonlinearSolver solver(quietOptions());
    auto out = solver.solve(sys);
    EXPECT_TRUE(out.converged);
    // LUT quantization (8-bit) plus ADC: a few LSB of error.
    EXPECT_NEAR(out.u[0], exact[0], 0.03);
}

TEST(NonlinearFlow, CubicPoissonMatchesNewton)
{
    auto sys = cubicPoisson1D(3, 30.0, 25.0);
    la::Vector exact = solver::newtonSolve(sys).x;

    AnalogNonlinearSolver solver(quietOptions());
    auto out = solver.solve(sys);
    EXPECT_TRUE(out.converged);
    EXPECT_LT(la::maxAbsDiff(out.u, exact),
              0.05 * std::max(1.0, la::normInf(exact)));
    // Digitally checked residual is small relative to b.
    EXPECT_LT(out.final_residual, 0.1 * la::norm2(sys.b));
}

TEST(NonlinearFlow, NonlinearityActuallyEngaged)
{
    // The flow must land on the nonlinear root, not the linear one.
    auto sys = cubicPoisson1D(3, 30.0, 25.0);
    la::Vector linear_root =
        solver::newtonSolve(
            {sys.a, sys.b, nullptr, nullptr})
            .x;
    la::Vector nonlinear_root = solver::newtonSolve(sys).x;
    ASSERT_GT(la::maxAbsDiff(linear_root, nonlinear_root), 0.05);

    AnalogNonlinearSolver solver(quietOptions());
    auto out = solver.solve(sys);
    double to_nonlinear = la::maxAbsDiff(out.u, nonlinear_root);
    double to_linear = la::maxAbsDiff(out.u, linear_root);
    EXPECT_LT(to_nonlinear, to_linear);
}

TEST(NonlinearFlow, OverflowRetryRaisesSigma)
{
    // Root near 2.1: overflows at sigma = 1.
    solver::NonlinearSystem sys;
    sys.a = la::DenseMatrix::fromRows({{1.0}});
    sys.b = la::Vector{2.5};
    sys.phi = [](double u) { return 0.04 * u * u * u; };
    sys.phi_prime = [](double u) { return 0.12 * u * u; };
    la::Vector exact = solver::newtonSolve(sys).x;

    AnalogNonlinearSolver solver(quietOptions());
    auto out = solver.solve(sys);
    EXPECT_GT(out.attempts, 1u);
    EXPECT_GT(out.solution_scale, 1.0);
    EXPECT_NEAR(out.u[0], exact[0], 0.1);
}

TEST(NonlinearFlow, CalibratedNoisyDieWorks)
{
    AnalogSolverOptions opts; // realistic defaults
    opts.die_seed = 21;
    AnalogNonlinearSolver solver(opts);
    auto sys = scalarCubic();
    la::Vector exact = solver::newtonSolve(sys).x;
    auto out = solver.solve(sys);
    EXPECT_NEAR(out.u[0], exact[0], 0.05);
}

TEST(HybridNewton, MatchesDigitalNewton)
{
    auto sys = cubicPoisson1D(3, 30.0, 25.0);
    la::Vector exact = solver::newtonSolve(sys).x;

    AnalogLinearSolver linear(quietOptions());
    HybridNewtonOptions opts;
    opts.tol = 1e-4;
    auto out = hybridNewtonSolve(linear, sys, opts);
    EXPECT_TRUE(out.converged);
    EXPECT_LT(la::maxAbsDiff(out.u, exact),
              0.01 * std::max(1.0, la::normInf(exact)));
    EXPECT_GT(out.analog_linear_solves, 1u);
}

TEST(HybridNewton, InexactStepsConvergeLinearly)
{
    auto sys = cubicPoisson1D(3, 30.0, 25.0);
    AnalogLinearSolver linear(quietOptions());
    HybridNewtonOptions opts;
    opts.tol = 1e-4;
    opts.record_history = true;
    opts.max_iters = 40;
    auto out = hybridNewtonSolve(linear, sys, opts);
    ASSERT_TRUE(out.converged);
    // Residual decreases monotonically despite ~8-bit steps.
    for (std::size_t k = 1; k < out.residual_history.size(); ++k)
        EXPECT_LT(out.residual_history[k],
                  out.residual_history[k - 1] * 1.05);
}

TEST(HybridNewton, PureLinearSystemOneIteration)
{
    solver::NonlinearSystem sys;
    sys.a = la::DenseMatrix::fromRows({{4, -1}, {-1, 3}});
    sys.b = la::Vector{1, 2};
    AnalogLinearSolver linear(quietOptions());
    HybridNewtonOptions opts;
    opts.tol = 0.05;
    auto out = hybridNewtonSolve(linear, sys, opts);
    EXPECT_TRUE(out.converged);
    EXPECT_LE(out.iterations, 2u);
}

TEST(NonlinearFlowDeath, MissingPhiFatal)
{
    solver::NonlinearSystem sys;
    sys.a = la::DenseMatrix::identity(1);
    sys.b = la::Vector{0.5};
    AnalogNonlinearSolver solver(quietOptions());
    EXPECT_EXIT(solver.solve(sys), ::testing::ExitedWithCode(1),
                "no nonlinearity");
}

} // namespace
} // namespace aa::analog
