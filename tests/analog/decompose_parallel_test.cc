/**
 * @file
 * The multi-die scheduler's determinism contract: block i always
 * runs on die (i mod dies) in ascending block order, and merged
 * outcomes (solution, change history, counters) are bit-identical at
 * any thread count and any pool size — the tables a sweep emits must
 * not depend on AASIM_THREADS.
 */

#include <gtest/gtest.h>

#include "aa/analog/die_pool.hh"
#include "aa/analog/hybrid_mg.hh"
#include "aa/analog/implicit_step.hh"
#include "aa/common/logging.hh"
#include "aa/la/direct.hh"
#include "aa/pde/poisson.hh"

namespace aa::analog {
namespace {

const bool g_quiet = [] {
    setLogLevel(LogLevel::Quiet);
    return true;
}();

AnalogSolverOptions
cornerOptions()
{
    // Variation, calibration, and readout noise all on: the strongest
    // determinism test is a fully stochastic-per-die pipeline.
    AnalogSolverOptions opts;
    opts.die_seed = 40;
    return opts;
}

DecomposeOptions
sweepOptions(std::size_t threads)
{
    DecomposeOptions opts;
    opts.tol = 1.0 / 256.0;
    opts.max_outer_iters = 200;
    opts.record_history = true;
    opts.threads = threads;
    return opts;
}

/** One full decomposed solve on a fresh pool of `dies` dies. */
DecomposeOutcome
runSweep(std::size_t dies, std::size_t threads)
{
    auto prob = pde::assemblePoisson(
        2, 4, [](double x, double y, double) { return x + y; });
    DiePool pool(dies, cornerOptions());
    return solveDecomposed(prob.a, prob.b,
                           pde::stripPartition(prob.grid, 4),
                           pool.blockSolvers(),
                           sweepOptions(threads));
}

void
expectIdentical(const DecomposeOutcome &a, const DecomposeOutcome &b)
{
    EXPECT_EQ(a.u.raw(), b.u.raw());
    EXPECT_EQ(a.change_history, b.change_history);
    EXPECT_EQ(a.converged, b.converged);
    EXPECT_EQ(a.outer_iterations, b.outer_iterations);
    EXPECT_EQ(a.blocks, b.blocks);
    EXPECT_EQ(a.block_solves, b.block_solves);
    EXPECT_EQ(a.dies, b.dies);
    EXPECT_EQ(a.per_die_solves, b.per_die_solves);
}

TEST(DecomposeParallel, BitIdenticalAtAnyThreadCountAndPoolSize)
{
    for (std::size_t dies : {std::size_t{1}, std::size_t{3}}) {
        DecomposeOutcome serial = runSweep(dies, 1);
        EXPECT_TRUE(serial.converged);
        EXPECT_EQ(serial.dies, dies);
        for (std::size_t threads :
             {std::size_t{2}, std::size_t{dies}}) {
            if (threads < 2)
                continue;
            DecomposeOutcome threaded = runSweep(dies, threads);
            SCOPED_TRACE("dies=" + std::to_string(dies) +
                         " threads=" + std::to_string(threads));
            expectIdentical(serial, threaded);
        }
    }
}

TEST(DecomposeParallel, CountersMergeByDieIndex)
{
    DecomposeOutcome out = runSweep(3, 3);
    ASSERT_EQ(out.per_die_solves.size(), 3u);
    // 4 blocks mod 3 dies: die 0 owns blocks {0, 3}, dies 1-2 own
    // one block each, every sweep.
    EXPECT_EQ(out.per_die_solves[0], 2 * out.outer_iterations);
    EXPECT_EQ(out.per_die_solves[1], out.outer_iterations);
    EXPECT_EQ(out.per_die_solves[2], out.outer_iterations);
    std::size_t sum = 0;
    for (std::size_t s : out.per_die_solves)
        sum += s;
    EXPECT_EQ(sum, out.block_solves);
}

TEST(DecomposeParallel, PerDieCacheStatsDisjointAndDeterministic)
{
    auto prob = pde::assemblePoisson(
        2, 4, [](double x, double, double) { return 4.0 * x; });
    auto partition = pde::stripPartition(prob.grid, 4);

    auto run = [&](std::size_t threads) {
        DiePool pool(3, cornerOptions());
        auto out = solveDecomposed(prob.a, prob.b, partition,
                                   pool.blockSolvers(),
                                   sweepOptions(threads));
        return std::make_pair(out, pool.report());
    };
    auto [out_s, rep_s] = run(1);
    auto [out_p, rep_p] = run(3);
    expectIdentical(out_s, out_p);

    ASSERT_EQ(rep_s.dies.size(), 3u);
    ASSERT_EQ(rep_p.dies.size(), 3u);
    std::size_t total_solves = 0;
    for (std::size_t k = 0; k < 3; ++k) {
        // Each die's counters are its own: identical at any thread
        // count, and every solve hit exactly one cache lookup.
        EXPECT_EQ(rep_s.dies[k].solves, rep_p.dies[k].solves);
        EXPECT_EQ(rep_s.dies[k].cache_hits, rep_p.dies[k].cache_hits);
        EXPECT_EQ(rep_s.dies[k].cache_misses,
                  rep_p.dies[k].cache_misses);
        EXPECT_EQ(rep_p.dies[k].cache_hits +
                      rep_p.dies[k].cache_misses,
                  rep_p.dies[k].solves);
        EXPECT_EQ(rep_p.dies[k].solves, out_p.per_die_solves[k]);
        total_solves += rep_p.dies[k].solves;
    }
    EXPECT_EQ(total_solves, out_p.block_solves);
    EXPECT_GT(rep_p.total().analog_seconds, 0.0);
    EXPECT_EQ(rep_p.total().solves, out_p.block_solves);
}

TEST(DecomposeParallel, ConvergesToDirectSolution)
{
    auto prob = pde::assemblePoisson(
        2, 4, [](double x, double y, double) { return x + y; });
    la::Vector exact = la::solveDense(prob.a.toDense(), prob.b);
    DecomposeOutcome out = runSweep(3, 3);
    EXPECT_TRUE(out.converged);
    double scale = std::max(1.0, la::normInf(exact));
    EXPECT_LT(la::maxAbsDiff(out.u, exact), 0.03 * scale);
}

TEST(DecomposeParallel, SchedulerReusesCompiledSweep)
{
    // Two solves through one scheduler: the second reuses every
    // per-die program (cache hits only, no new compiles).
    auto prob = pde::assemblePoisson(
        2, 4, [](double, double, double) { return 1.0; });
    DiePool pool(2, cornerOptions());
    BlockJacobiScheduler sched(prob.a,
                               pde::stripPartition(prob.grid, 4),
                               pool.blockSolvers(), sweepOptions(2));
    EXPECT_EQ(sched.blocks(), 4u);
    EXPECT_EQ(sched.dies(), 2u);

    auto first = sched.solve(prob.b);
    EXPECT_TRUE(first.converged);
    std::size_t misses_after_first = pool.report().total().cache_misses;
    auto second = sched.solve(prob.b);
    EXPECT_TRUE(second.converged);
    EXPECT_EQ(pool.report().total().cache_misses, misses_after_first);
    // Same problem, same per-die state evolution entry points do not
    // hold for the second call (dies advanced), but the solution must
    // still match the direct one.
    la::Vector exact = la::solveDense(prob.a.toDense(), prob.b);
    double scale = std::max(1.0, la::normInf(exact));
    EXPECT_LT(la::maxAbsDiff(second.u, exact), 0.03 * scale);
}

TEST(DecomposeParallel, RefinedBankConverges)
{
    auto prob = pde::assemblePoisson(
        2, 4, [](double x, double y, double) { return x + y; });
    la::Vector exact = la::solveDense(prob.a.toDense(), prob.b);
    auto partition = pde::stripPartition(prob.grid, 4);

    auto run = [&](std::size_t threads) {
        DiePool pool(3, cornerOptions());
        return solveDecomposed(prob.a, prob.b, partition,
                               pool.refinedBlockSolvers(2),
                               sweepOptions(threads));
    };
    DecomposeOutcome serial = run(1);
    DecomposeOutcome threaded = run(3);
    expectIdentical(serial, threaded);
    EXPECT_TRUE(threaded.converged);
    double scale = std::max(1.0, la::normInf(exact));
    EXPECT_LT(la::maxAbsDiff(threaded.u, exact), 0.03 * scale);
}

TEST(ImplicitStepParallel, TrajectoryBitIdenticalAcrossThreads)
{
    auto prob = pde::assemblePoisson(
        1, 9, [](double x, double, double) { return 2.0 * x; });

    auto march = [&](std::size_t threads) {
        DiePool pool(2, cornerOptions());
        ImplicitStepOptions opts;
        opts.dt = 0.02;
        opts.steps = 4;
        opts.decompose = sweepOptions(threads);
        opts.decompose.max_block_vars = 3;
        opts.record_trajectory = true;
        return backwardEulerPool(pool, prob.a, prob.b, {}, opts);
    };
    ImplicitStepOutcome serial = march(1);
    ImplicitStepOutcome threaded = march(2);

    EXPECT_TRUE(serial.all_converged);
    EXPECT_EQ(serial.steps, 4u);
    EXPECT_EQ(serial.block_solves, threaded.block_solves);
    EXPECT_EQ(serial.outer_sweeps, threaded.outer_sweeps);
    EXPECT_EQ(serial.per_die_solves, threaded.per_die_solves);
    ASSERT_EQ(serial.trajectory.size(), threaded.trajectory.size());
    for (std::size_t n = 0; n < serial.trajectory.size(); ++n)
        EXPECT_EQ(serial.trajectory[n].raw(),
                  threaded.trajectory[n].raw())
            << "step " << n;
}

TEST(ImplicitStepParallel, ApproachesEllipticSteadyState)
{
    auto prob = pde::assemblePoisson(
        1, 9, [](double x, double, double) { return 2.0 * x; });
    la::Vector steady = la::solveDense(prob.a.toDense(), prob.b);

    DiePool pool(2, cornerOptions());
    ImplicitStepOptions opts;
    opts.dt = 0.1;
    opts.steps = 30;
    opts.decompose = sweepOptions(2);
    opts.decompose.max_block_vars = 3;
    auto out = backwardEulerPool(pool, prob.a, prob.b, {}, opts);

    double scale = std::max(1.0, la::normInf(steady));
    EXPECT_LT(la::maxAbsDiff(out.u, steady), 0.05 * scale);
    EXPECT_EQ(out.block_solves, out.outer_sweeps * 3);
}

TEST(HybridPoolCoarse, VcycleConvergesAndIsThreadCountInvariant)
{
    auto problem = pde::assemblePoisson(
        2, 7, [](double x, double y, double) { return 25.0 * x * y; });

    auto run = [&](std::size_t threads) {
        DiePool pool(2, cornerOptions());
        solver::MgOptions mg_opts;
        mg_opts.tol = 1e-8;
        DecomposeOptions dec = sweepOptions(threads);
        dec.max_block_vars = 4; // 3x3 coarse level -> 3 blocks
        auto mg = makeHybridMultigrid(pool, 2, 7, 3, mg_opts, dec);
        return mg.solve(problem.b);
    };
    auto serial = run(1);
    auto threaded = run(2);
    EXPECT_TRUE(serial.converged);
    EXPECT_TRUE(threaded.converged);
    EXPECT_EQ(serial.cycles, threaded.cycles);
    EXPECT_EQ(serial.x.raw(), threaded.x.raw());

    la::Vector exact =
        la::solveDense(problem.a.toDense(), problem.b);
    EXPECT_LT(la::maxAbsDiff(threaded.x, exact), 1e-6);
}

} // namespace
} // namespace aa::analog
