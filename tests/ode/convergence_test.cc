#include <gtest/gtest.h>

#include <cmath>

#include "aa/common/stats.hh"
#include "aa/ode/integrator.hh"

namespace aa::ode {
namespace {

/**
 * Property: each fixed-step method converges at its theoretical
 * order. Measured by halving dt on u' = -u over [0,1] and fitting the
 * error power law.
 */
struct OrderCase {
    Method method;
    double expected_order;
};

class FixedStepOrder : public ::testing::TestWithParam<OrderCase>
{};

TEST_P(FixedStepOrder, ErrorScalesAtTheoreticalOrder)
{
    auto [method, expected] = GetParam();
    CallbackOde sys(1, [](double, const Vector &y, Vector &d) {
        d[0] = -y[0];
    });
    double exact = std::exp(-1.0);

    std::vector<double> hs, errs;
    for (double dt : {0.1, 0.05, 0.025, 0.0125}) {
        IntegrateOptions opts;
        opts.method = method;
        opts.dt = dt;
        auto res = integrate(sys, Vector{1.0}, 0.0, 1.0, opts);
        hs.push_back(dt);
        errs.push_back(std::fabs(res.y[0] - exact));
    }
    auto fit = aa::fitPowerLaw(hs, errs);
    EXPECT_NEAR(fit.slope, expected, 0.25)
        << methodName(method);
    EXPECT_GT(fit.r2, 0.99);
}

INSTANTIATE_TEST_SUITE_P(
    Orders, FixedStepOrder,
    ::testing::Values(OrderCase{Method::Euler, 1.0},
                      OrderCase{Method::Heun, 2.0},
                      OrderCase{Method::Rk4, 4.0}),
    [](const auto &info) {
        return methodName(info.param.method);
    });

/**
 * Property: adaptive methods meet tighter tolerances with more work
 * but never exceed them grossly.
 */
class AdaptiveTolerance
    : public ::testing::TestWithParam<std::tuple<Method, double>>
{};

TEST_P(AdaptiveTolerance, FinalErrorTracksTolerance)
{
    auto [method, tol] = GetParam();
    CallbackOde sys(2, [](double, const Vector &y, Vector &d) {
        d[0] = y[1];
        d[1] = -y[0];
    });
    IntegrateOptions opts;
    opts.method = method;
    opts.dt = 0.5;
    opts.abs_tol = tol;
    opts.rel_tol = tol;
    auto res = integrate(sys, Vector{1.0, 0.0}, 0.0, 1.0, opts);
    double err0 = std::fabs(res.y[0] - std::cos(1.0));
    double err1 = std::fabs(res.y[1] + std::sin(1.0));
    // Global error may exceed per-step tolerance, but not by orders
    // of magnitude on this short smooth run.
    EXPECT_LT(err0 + err1, 1000.0 * tol);
}

INSTANTIATE_TEST_SUITE_P(
    Tols, AdaptiveTolerance,
    ::testing::Combine(::testing::Values(Method::Rkf45,
                                         Method::Dopri5),
                       ::testing::Values(1e-6, 1e-9, 1e-12)));

TEST(AdaptiveEffort, TighterToleranceCostsMoreEvals)
{
    CallbackOde sys(1, [](double t, const Vector &y, Vector &d) {
        d[0] = std::sin(10.0 * t) - 0.5 * y[0];
    });
    auto run = [&](double tol) {
        IntegrateOptions opts;
        opts.method = Method::Dopri5;
        opts.dt = 0.1;
        opts.abs_tol = tol;
        opts.rel_tol = tol;
        return integrate(sys, Vector{0.0}, 0.0, 5.0, opts).rhs_evals;
    };
    EXPECT_LT(run(1e-4), run(1e-10));
}

} // namespace
} // namespace aa::ode
