#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "aa/la/dense_matrix.hh"
#include "aa/ode/integrator.hh"

namespace aa::ode {
namespace {

/** du/dt = -u, u(0) = 1 -> u(t) = e^-t. */
CallbackOde
decayOde()
{
    return CallbackOde(1, [](double, const Vector &y, Vector &d) {
        d[0] = -y[0];
    });
}

TEST(Integrate, EulerMatchesAlgorithmOne)
{
    // Paper Algorithm 1: explicit Euler over du/dt = a*u + b.
    double a = -2.0, b = 1.0, uinit = 0.0;
    double time = 1.0;
    std::size_t steps = 1000;

    // Hand-rolled Algorithm 1 exactly as printed.
    double step_size = time / static_cast<double>(steps);
    double u = uinit;
    for (std::size_t s = 0; s < steps; ++s) {
        double delta = a * u + b;
        u = u + step_size * delta;
    }

    CallbackOde sys(1, [&](double, const Vector &y, Vector &d) {
        d[0] = a * y[0] + b;
    });
    IntegrateOptions opts;
    opts.method = Method::Euler;
    opts.dt = step_size;
    auto res = integrate(sys, Vector{uinit}, 0.0, time, opts);
    EXPECT_EQ(res.reason, StopReason::ReachedTEnd);
    EXPECT_EQ(res.steps, steps);
    EXPECT_NEAR(res.y[0], u, 1e-12);
}

TEST(Integrate, Rk4AccurateOnDecay)
{
    IntegrateOptions opts;
    opts.method = Method::Rk4;
    opts.dt = 0.01;
    auto res = integrate(decayOde(), Vector{1.0}, 0.0, 1.0, opts);
    EXPECT_NEAR(res.y[0], std::exp(-1.0), 1e-9);
}

TEST(Integrate, AdaptiveMethodsHitTolerance)
{
    for (Method m : {Method::Rkf45, Method::Dopri5}) {
        IntegrateOptions opts;
        opts.method = m;
        opts.dt = 0.5;
        opts.abs_tol = 1e-10;
        opts.rel_tol = 1e-10;
        auto res = integrate(decayOde(), Vector{1.0}, 0.0, 2.0, opts);
        EXPECT_NEAR(res.y[0], std::exp(-2.0), 1e-8)
            << methodName(m);
    }
}

TEST(Integrate, AdaptiveRejectsOversizedSteps)
{
    // A stiff-ish system forces rejections with a huge initial dt.
    CallbackOde sys(1, [](double, const Vector &y, Vector &d) {
        d[0] = -50.0 * y[0];
    });
    IntegrateOptions opts;
    opts.method = Method::Dopri5;
    opts.dt = 1.0;
    auto res = integrate(sys, Vector{1.0}, 0.0, 1.0, opts);
    EXPECT_GT(res.rejected, 0u);
    EXPECT_NEAR(res.y[0], std::exp(-50.0), 1e-6);
}

TEST(Integrate, SteadyStateStopsEarly)
{
    IntegrateOptions opts;
    opts.method = Method::Rk4;
    opts.dt = 0.01;
    opts.steady_tol = 1e-6;
    auto res =
        integrate(decayOde(), Vector{1.0}, 0.0,
                  std::numeric_limits<double>::infinity(), opts);
    EXPECT_EQ(res.reason, StopReason::SteadyState);
    // |du/dt| = |u| < 1e-6 at the stop.
    EXPECT_LT(std::fabs(res.y[0]), 1e-5);
}

TEST(Integrate, EventStopFires)
{
    CallbackOde sys(1, [](double, const Vector &, Vector &d) {
        d[0] = 1.0; // u = t
    });
    IntegrateOptions opts;
    opts.method = Method::Euler;
    opts.dt = 0.001;
    opts.stop_when = [](double, const Vector &y) {
        return y[0] >= 0.5;
    };
    auto res = integrate(sys, Vector{0.0}, 0.0, 10.0, opts);
    EXPECT_EQ(res.reason, StopReason::Event);
    EXPECT_NEAR(res.y[0], 0.5, 0.01);
}

TEST(Integrate, StepLimitReported)
{
    IntegrateOptions opts;
    opts.method = Method::Euler;
    opts.dt = 1e-6;
    opts.max_steps = 10;
    auto res = integrate(decayOde(), Vector{1.0}, 0.0, 1.0, opts);
    EXPECT_EQ(res.reason, StopReason::HitStepLimit);
    EXPECT_EQ(res.steps, 10u);
}

TEST(Integrate, ObserverSeesInitialAndEachStep)
{
    std::size_t calls = 0;
    IntegrateOptions opts;
    opts.method = Method::Euler;
    opts.dt = 0.25;
    opts.observer = [&](double, const Vector &) { ++calls; };
    auto res = integrate(decayOde(), Vector{1.0}, 0.0, 1.0, opts);
    EXPECT_EQ(calls, res.steps + 1);
}

TEST(Integrate, MultiVariableCoupledSystem)
{
    // Harmonic oscillator: x'' = -x as a 2-state system; after a
    // full period the state returns.
    CallbackOde sys(2, [](double, const Vector &y, Vector &d) {
        d[0] = y[1];
        d[1] = -y[0];
    });
    IntegrateOptions opts;
    opts.method = Method::Dopri5;
    opts.abs_tol = 1e-12;
    opts.rel_tol = 1e-10;
    opts.dt = 0.1;
    double period = 2.0 * 3.14159265358979323846;
    auto res = integrate(sys, Vector{1.0, 0.0}, 0.0, period, opts);
    EXPECT_NEAR(res.y[0], 1.0, 1e-6);
    EXPECT_NEAR(res.y[1], 0.0, 1e-6);
}

TEST(Integrate, GradientFlowReachesLinearSolution)
{
    la::DenseMatrix a = la::DenseMatrix::fromRows({{3, 1}, {1, 2}});
    Vector b{1, 1};
    GradientFlowOde sys(a, b);
    IntegrateOptions opts;
    opts.method = Method::Rk4;
    opts.dt = 0.01;
    opts.steady_tol = 1e-10;
    auto res =
        integrate(sys, Vector(2), 0.0,
                  std::numeric_limits<double>::infinity(), opts);
    // Exact solution of A u = b: u = (0.2, 0.4).
    EXPECT_NEAR(res.y[0], 0.2, 1e-8);
    EXPECT_NEAR(res.y[1], 0.4, 1e-8);
}

TEST(Integrate, NamesAreStable)
{
    EXPECT_STREQ(methodName(Method::Euler), "euler");
    EXPECT_STREQ(methodName(Method::Dopri5), "dopri5");
    EXPECT_STREQ(stopReasonName(StopReason::SteadyState),
                 "steady_state");
    EXPECT_TRUE(isAdaptive(Method::Rkf45));
    EXPECT_FALSE(isAdaptive(Method::Rk4));
}

TEST(IntegrateDeath, InfiniteHorizonWithoutStopIsFatal)
{
    IntegrateOptions opts;
    EXPECT_EXIT(integrate(decayOde(), Vector{1.0}, 0.0,
                          std::numeric_limits<double>::infinity(),
                          opts),
                ::testing::ExitedWithCode(1), "steady or event");
}

TEST(IntegrateDeath, WrongStateSizeIsFatal)
{
    IntegrateOptions opts;
    EXPECT_EXIT(integrate(decayOde(), Vector(2), 0.0, 1.0, opts),
                ::testing::ExitedWithCode(1), "size");
}

} // namespace
} // namespace aa::ode
