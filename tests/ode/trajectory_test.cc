#include <gtest/gtest.h>

#include <cmath>

#include "aa/ode/integrator.hh"
#include "aa/ode/trajectory.hh"

namespace aa::ode {
namespace {

TEST(Trajectory, RecordsAllSamplesAtStrideOne)
{
    Trajectory traj;
    CallbackOde sys(1, [](double, const Vector &, Vector &d) {
        d[0] = 1.0;
    });
    IntegrateOptions opts;
    opts.method = Method::Euler;
    opts.dt = 0.25;
    opts.observer = traj.observer();
    auto res = integrate(sys, Vector{0.0}, 0.0, 1.0, opts);
    EXPECT_EQ(traj.samples(), res.steps + 1);
    EXPECT_DOUBLE_EQ(traj.time(0), 0.0);
    EXPECT_DOUBLE_EQ(traj.state(0)[0], 0.0);
}

TEST(Trajectory, StrideSkipsSamples)
{
    Trajectory traj(2);
    auto obs = traj.observer();
    Vector y{1.0};
    for (int i = 0; i < 6; ++i)
        obs(static_cast<double>(i), y);
    EXPECT_EQ(traj.samples(), 3u); // t = 0, 2, 4
    EXPECT_DOUBLE_EQ(traj.time(2), 4.0);
}

TEST(Trajectory, ComponentExtractsWaveform)
{
    Trajectory traj;
    auto obs = traj.observer();
    obs(0.0, Vector{1.0, 10.0});
    obs(1.0, Vector{2.0, 20.0});
    auto w = traj.component(1);
    ASSERT_EQ(w.size(), 2u);
    EXPECT_DOUBLE_EQ(w[0], 10.0);
    EXPECT_DOUBLE_EQ(w[1], 20.0);
}

TEST(Trajectory, SampleAtInterpolatesLinearly)
{
    Trajectory traj;
    auto obs = traj.observer();
    obs(0.0, Vector{0.0});
    obs(2.0, Vector{4.0});
    EXPECT_DOUBLE_EQ(traj.sampleAt(1.0)[0], 2.0);
    // Clamping outside the range.
    EXPECT_DOUBLE_EQ(traj.sampleAt(-1.0)[0], 0.0);
    EXPECT_DOUBLE_EQ(traj.sampleAt(9.0)[0], 4.0);
}

TEST(Trajectory, WaveformMatchesAnalyticDecay)
{
    Trajectory traj;
    CallbackOde sys(1, [](double, const Vector &y, Vector &d) {
        d[0] = -y[0];
    });
    IntegrateOptions opts;
    opts.method = Method::Dopri5;
    opts.dt = 0.05;
    opts.abs_tol = 1e-10;
    opts.rel_tol = 1e-10;
    opts.observer = traj.observer();
    integrate(sys, Vector{1.0}, 0.0, 2.0, opts);
    for (double t : {0.3, 0.9, 1.7}) {
        EXPECT_NEAR(traj.sampleAt(t)[0], std::exp(-t), 1e-3);
    }
}

TEST(TrajectoryDeath, SampleWithoutSamplesPanics)
{
    Trajectory traj;
    EXPECT_DEATH(traj.sampleAt(0.0), "no samples");
}

} // namespace
} // namespace aa::ode
