#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "aa/ode/csv.hh"

namespace aa::ode {
namespace {

Trajectory
sampleTrajectory()
{
    Trajectory traj;
    auto obs = traj.observer();
    obs(0.0, la::Vector{1.0, -2.0});
    obs(0.5, la::Vector{0.5, -1.0});
    obs(1.0, la::Vector{0.25, 0.0});
    return traj;
}

TEST(Csv, DefaultHeaderAndRows)
{
    std::ostringstream os;
    writeCsv(sampleTrajectory(), os);
    std::istringstream in(os.str());
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "t,s0,s1");
    std::getline(in, line);
    EXPECT_EQ(line, "0,1,-2");
    std::getline(in, line);
    EXPECT_EQ(line, "0.5,0.5,-1");
    std::getline(in, line);
    EXPECT_EQ(line, "1,0.25,0");
    EXPECT_FALSE(std::getline(in, line));
}

TEST(Csv, CustomNames)
{
    std::ostringstream os;
    writeCsv(sampleTrajectory(), os, {"u", "du"});
    EXPECT_EQ(os.str().substr(0, 7), "t,u,du\n");
}

TEST(Csv, FileRoundTrip)
{
    std::string path = ::testing::TempDir() + "aa_csv_test.csv";
    writeCsvFile(sampleTrajectory(), path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header, "t,s0,s1");
    std::remove(path.c_str());
}

TEST(Csv, HighPrecisionValuesSurvive)
{
    Trajectory traj;
    auto obs = traj.observer();
    obs(1.0 / 3.0, la::Vector{2.0 / 3.0});
    std::ostringstream os;
    writeCsv(traj, os);
    EXPECT_NE(os.str().find("0.333333333333"), std::string::npos);
    EXPECT_NE(os.str().find("0.666666666667"), std::string::npos);
}

TEST(CsvDeath, EmptyTrajectoryFatal)
{
    Trajectory traj;
    std::ostringstream os;
    EXPECT_EXIT(writeCsv(traj, os), ::testing::ExitedWithCode(1),
                "empty");
}

TEST(CsvDeath, WrongNameCountFatal)
{
    std::ostringstream os;
    EXPECT_EXIT(writeCsv(sampleTrajectory(), os, {"only-one"}),
                ::testing::ExitedWithCode(1), "names");
}

} // namespace
} // namespace aa::ode
