/**
 * @file
 * Parser and assembler error paths (satellite: structured diagnostics,
 * never a crash). Every malformed deck here must come back as
 * Diagnostics carrying 1-based line numbers — the whole file runs
 * under ASan/UBSan in the sanitize leg of tools/check.sh, so any
 * out-of-bounds or UB on these paths fails loudly.
 */

#include <gtest/gtest.h>

#include <string>

#include "aa/spice/mna.hh"
#include "aa/spice/netlist.hh"

namespace aa::spice {
namespace {

bool
hasError(const std::vector<Diagnostic> &diags,
         const std::string &needle, std::size_t line = 0)
{
    for (const Diagnostic &d : diags) {
        if (d.severity != Diagnostic::Severity::Error)
            continue;
        if (d.message.find(needle) == std::string::npos)
            continue;
        if (line != 0 && d.line != line)
            continue;
        return true;
    }
    return false;
}

std::string
joined(const ParseResult &r)
{
    return r.summary();
}

TEST(ParserErrors, MissingEnd)
{
    ParseResult r = parseNetlistString("no terminator\n"
                                       "r1 a 0 1k\n"
                                       "r2 a 0 2k\n");
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(hasError(r.diagnostics, ".end")) << joined(r);
}

TEST(ParserErrors, EmptyDeck)
{
    ParseResult r = parseNetlistString("");
    EXPECT_FALSE(r.ok);
    ParseResult r2 = parseNetlistString("title only\n.end\n");
    EXPECT_FALSE(r2.ok);
    EXPECT_TRUE(hasError(r2.diagnostics, "no components"))
        << joined(r2);
}

TEST(ParserErrors, DuplicateComponentName)
{
    ParseResult r = parseNetlistString("dupes\n"
                                       "r1 a 0 1k\n"
                                       "r1 a 0 2k\n"
                                       ".end\n");
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(hasError(r.diagnostics, "duplicate", 3)) << joined(r);
}

TEST(ParserErrors, ZeroValuedResistor)
{
    ParseResult r = parseNetlistString("short circuit\n"
                                       "v1 a 0 dc 1\n"
                                       "r1 a 0 0\n"
                                       ".end\n");
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(hasError(r.diagnostics, "zero", 3)) << joined(r);
}

TEST(ParserErrors, NegativeComponentValues)
{
    ParseResult r = parseNetlistString("negatives\n"
                                       "r1 a 0 -1k\n"
                                       "c1 a 0 -1u\n"
                                       "r2 a 0 1k\n"
                                       ".end\n");
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(hasError(r.diagnostics, "negative", 2)) << joined(r);
    EXPECT_TRUE(hasError(r.diagnostics, "negative", 3)) << joined(r);
}

TEST(ParserErrors, DanglingNode)
{
    // "stub" is touched by exactly one terminal.
    ParseResult r = parseNetlistString("dangler\n"
                                       "v1 a 0 dc 1\n"
                                       "r1 a b 1k\n"
                                       "r2 b 0 1k\n"
                                       "r3 b stub 5k\n"
                                       ".end\n");
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(hasError(r.diagnostics, "dangling", 5)) << joined(r);
}

TEST(ParserErrors, NoGroundNode)
{
    ParseResult r = parseNetlistString("floating world\n"
                                       "r1 a b 1k\n"
                                       "r2 b a 2k\n"
                                       ".end\n");
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(hasError(r.diagnostics, "ground")) << joined(r);
}

TEST(ParserErrors, MalformedValue)
{
    ParseResult r = parseNetlistString("bad value\n"
                                       "r1 a 0 lots\n"
                                       "r2 a 0 1k\n"
                                       ".end\n");
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(hasError(r.diagnostics, "value", 2)) << joined(r);
}

TEST(ParserErrors, MissingFields)
{
    ParseResult r = parseNetlistString("short card\n"
                                       "r1 a\n"
                                       "r2 a 0 1k\n"
                                       ".end\n");
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(hasError(r.diagnostics, "", 2)) << joined(r);
}

TEST(ParserErrors, UnknownComponentLetter)
{
    ParseResult r = parseNetlistString("transistor deck\n"
                                       "q1 c b e model\n"
                                       "r1 a 0 1k\n"
                                       "r2 a 0 1k\n"
                                       ".end\n");
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(hasError(r.diagnostics, "unknown card", 2))
        << joined(r);
}

TEST(ParserErrors, UnknownDirective)
{
    ParseResult r = parseNetlistString("directive deck\n"
                                       "r1 a 0 1k\n"
                                       "r2 a 0 1k\n"
                                       ".tran 1u 1m\n"
                                       ".end\n");
    // Unsupported dot-cards are warnings, not errors: the deck's
    // topology is still fully usable.
    EXPECT_TRUE(r.ok) << joined(r);
    bool warned = false;
    for (const Diagnostic &d : r.diagnostics)
        if (d.severity == Diagnostic::Severity::Warning && d.line == 4)
            warned = true;
    EXPECT_TRUE(warned) << joined(r);
}

TEST(ParserErrors, VoltageSourceSelfLoop)
{
    ParseResult r = parseNetlistString("self loop\n"
                                       "v1 a a dc 5\n"
                                       "r1 a 0 1k\n"
                                       "r2 a 0 1k\n"
                                       ".end\n");
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(hasError(r.diagnostics, "shorts", 2)) << joined(r);
}

TEST(ParserErrors, UnknownSubckt)
{
    ParseResult r = parseNetlistString("missing def\n"
                                       "v1 in 0 dc 1\n"
                                       "x1 in out nosuchthing\n"
                                       "rload out 0 1k\n"
                                       ".end\n");
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(hasError(r.diagnostics, "nosuchthing", 3))
        << joined(r);
}

TEST(ParserErrors, SubcktPortMismatch)
{
    ParseResult r = parseNetlistString("port arity\n"
                                       ".subckt two a b\n"
                                       "r1 a b 1k\n"
                                       ".ends\n"
                                       "v1 in 0 dc 1\n"
                                       "x1 in mid out two\n"
                                       "rload out 0 1k\n"
                                       ".end\n");
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(hasError(r.diagnostics, "port", 6)) << joined(r);
}

TEST(ParserErrors, RecursiveSubckt)
{
    ParseResult r = parseNetlistString("infinite circuit\n"
                                       ".subckt loop a b\n"
                                       "r1 a b 1k\n"
                                       "x1 a b loop\n"
                                       ".ends\n"
                                       "v1 in 0 dc 1\n"
                                       "xtop in out loop\n"
                                       "rload out 0 1k\n"
                                       ".end\n");
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(hasError(r.diagnostics, "recursive")) << joined(r);
}

TEST(ParserErrors, UnclosedSubckt)
{
    ParseResult r = parseNetlistString("unclosed\n"
                                       ".subckt open a b\n"
                                       "r1 a b 1k\n"
                                       "v1 in 0 dc 1\n"
                                       ".end\n");
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(hasError(r.diagnostics, ".ends", 2)) << joined(r);
}

TEST(ParserErrors, StrayEnds)
{
    ParseResult r = parseNetlistString("stray\n"
                                       "r1 a 0 1k\n"
                                       ".ends\n"
                                       "r2 a 0 1k\n"
                                       ".end\n");
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(hasError(r.diagnostics, ".ends", 3)) << joined(r);
}

TEST(ParserErrors, DiagnosticStrFormat)
{
    ParseResult r = parseNetlistString("dupes\n"
                                       "r1 a 0 1k\n"
                                       "r1 a 0 2k\n"
                                       ".end\n");
    ASSERT_FALSE(r.ok);
    ASSERT_FALSE(r.diagnostics.empty());
    std::string s = r.diagnostics.front().str();
    EXPECT_NE(s.find("error"), std::string::npos) << s;
    EXPECT_NE(s.find("line 3"), std::string::npos) << s;
}

TEST(ParserErrors, GarbageNeverCrashes)
{
    // Adversarial inputs: every one must produce diagnostics, not UB.
    const char *decks[] = {
        "\n",
        "+ continuation with no card\n.end\n",
        "title\n+ leading continuation\n.end\n",
        "t\nr\n.end\n",
        "t\nr1\n.end\n",
        "t\n.subckt\n.ends\n.end\n",
        "t\n.subckt s\n.ends\n.end\n",
        "t\nx1 a b\n.end\n",
        "t\nv1 a 0 dc\n.end\n",
        "t\nr1 a 0 1k extra tokens here\n.end\n",
        "t\n.subckt s a a\nr1 a 0 1k\n.ends\nx1 b s\n.end\n",
        "t\n\x01\x02\x03 binary junk\n.end\n",
        "t\nr1 \t a \t 0 \t 1k\n.end\n",
    };
    for (const char *deck : decks) {
        ParseResult r = parseNetlistString(deck);
        // Must return; ok may be either way for the benign ones, but
        // diagnostics must be self-consistent.
        EXPECT_EQ(r.ok, r.errorCount() == 0u) << deck;
    }
}

TEST(AssembleErrors, FloatingVoltageSourceReduced)
{
    // v2 floats between two non-ground nodes with no source chain to
    // ground: the reduced (SPD) shape cannot express it.
    std::string deck = "floating source\n"
                       "i1 0 a dc 1m\n"
                       "r1 a b 1k\n"
                       "v2 b c dc 2\n"
                       "r2 c 0 1k\n"
                       "r3 a 0 10k\n"
                       ".end\n";
    AssembleResult red = assembleDeck(deck, {});
    EXPECT_FALSE(red.ok);
    bool found = false;
    for (const Diagnostic &d : red.diagnostics)
        if (d.message.find("float") != std::string::npos &&
            d.line == 4)
            found = true;
    EXPECT_TRUE(found) << red.summary();

    // Full MNA handles it fine.
    MnaOptions full;
    full.reduce = false;
    AssembleResult f = assembleDeck(deck, full);
    EXPECT_TRUE(f.ok) << f.summary();
    EXPECT_EQ(f.system.branch_unknowns, 1u);
}

TEST(AssembleErrors, ConflictingPins)
{
    // Two grounded sources disagree about node a.
    AssembleResult r = assembleDeck("conflict\n"
                                    "v1 a 0 dc 1\n"
                                    "v2 a 0 dc 2\n"
                                    "r1 a 0 1k\n"
                                    ".end\n",
                                    {});
    EXPECT_FALSE(r.ok);
    bool found = false;
    for (const Diagnostic &d : r.diagnostics)
        if (d.message.find("conflict") != std::string::npos)
            found = true;
    EXPECT_TRUE(found) << r.summary();
}

TEST(AssembleErrors, IslandWithoutConductivePath)
{
    // a-b hangs off ground only through a current source and, in DC,
    // an open capacitor: no conductive anchor, so DC assembly must
    // reject it — but the transient companion (C/dt) conducts, so the
    // same deck assembles clean in Transient mode.
    std::string deck = "island\n"
                       "i1 0 a dc 1m\n"
                       "r1 a b 1k\n"
                       "c1 b 0 1u\n"
                       "c2 a 0 2u\n"
                       ".end\n";
    AssembleResult dc = assembleDeck(deck, {});
    EXPECT_FALSE(dc.ok);
    bool found = false;
    for (const Diagnostic &d : dc.diagnostics)
        if (d.message.find("no conductive path") != std::string::npos)
            found = true;
    EXPECT_TRUE(found) << dc.summary();

    MnaOptions tr;
    tr.mode = AnalysisMode::Transient;
    tr.dt = 1e-6;
    AssembleResult t = assembleDeck(deck, tr);
    EXPECT_TRUE(t.ok) << t.summary();
    EXPECT_EQ(t.system.unknowns(), 2u);
}

TEST(AssembleErrors, AllNodesPinnedIsDegenerate)
{
    // Every node pinned by a source: nothing left to solve for.
    AssembleResult r = assembleDeck("all pinned\n"
                                    "v1 a 0 dc 1\n"
                                    "r1 a 0 1k\n"
                                    ".end\n",
                                    {});
    EXPECT_FALSE(r.ok);
    bool found = false;
    for (const Diagnostic &d : r.diagnostics)
        if (d.message.find("no unknowns") != std::string::npos)
            found = true;
    EXPECT_TRUE(found) << r.summary();
}

} // namespace
} // namespace aa::spice
