/**
 * @file
 * SPICE netlist parser: dialect features (title, comments,
 * continuations, unit suffixes, subckt flattening) and the
 * deterministic node-interning contract.
 */

#include <gtest/gtest.h>

#include <string>

#include "aa/spice/generate.hh"
#include "aa/spice/netlist.hh"

namespace aa::spice {
namespace {

TEST(SpiceValue, EngineeringSuffixes)
{
    double v = 0.0;
    EXPECT_TRUE(parseSpiceValue("1k", &v));
    EXPECT_DOUBLE_EQ(v, 1e3);
    EXPECT_TRUE(parseSpiceValue("2.2u", &v));
    EXPECT_DOUBLE_EQ(v, 2.2e-6);
    EXPECT_TRUE(parseSpiceValue("3meg", &v));
    EXPECT_DOUBLE_EQ(v, 3e6);
    EXPECT_TRUE(parseSpiceValue("3MEG", &v));
    EXPECT_DOUBLE_EQ(v, 3e6);
    EXPECT_TRUE(parseSpiceValue("4.7m", &v));
    EXPECT_DOUBLE_EQ(v, 4.7e-3); // m is milli, not mega
    EXPECT_TRUE(parseSpiceValue("100p", &v));
    EXPECT_DOUBLE_EQ(v, 100e-12);
    EXPECT_TRUE(parseSpiceValue("1.5f", &v));
    EXPECT_DOUBLE_EQ(v, 1.5e-15);
    EXPECT_TRUE(parseSpiceValue("2n", &v));
    EXPECT_DOUBLE_EQ(v, 2e-9);
    EXPECT_TRUE(parseSpiceValue("6g", &v));
    EXPECT_DOUBLE_EQ(v, 6e9);
    EXPECT_TRUE(parseSpiceValue("0.5t", &v));
    EXPECT_DOUBLE_EQ(v, 0.5e12);
}

TEST(SpiceValue, UnitTextAfterSuffixIgnored)
{
    double v = 0.0;
    EXPECT_TRUE(parseSpiceValue("10kohm", &v));
    EXPECT_DOUBLE_EQ(v, 10e3);
    EXPECT_TRUE(parseSpiceValue("100nF", &v));
    EXPECT_DOUBLE_EQ(v, 100e-9);
    EXPECT_TRUE(parseSpiceValue("5volts", &v));
    EXPECT_DOUBLE_EQ(v, 5.0);
}

TEST(SpiceValue, PlainAndScientific)
{
    double v = 0.0;
    EXPECT_TRUE(parseSpiceValue("470", &v));
    EXPECT_DOUBLE_EQ(v, 470.0);
    EXPECT_TRUE(parseSpiceValue("1e3", &v));
    EXPECT_DOUBLE_EQ(v, 1e3);
    EXPECT_TRUE(parseSpiceValue("-2.5e-4", &v));
    EXPECT_DOUBLE_EQ(v, -2.5e-4);
}

TEST(SpiceValue, RejectsNonNumbers)
{
    double v = 123.0;
    EXPECT_FALSE(parseSpiceValue("abc", &v));
    EXPECT_FALSE(parseSpiceValue("", &v));
    EXPECT_FALSE(parseSpiceValue("k1", &v));
    EXPECT_DOUBLE_EQ(v, 123.0); // untouched on failure
}

TEST(SpiceValue, FormatRoundTrips)
{
    for (double value : {2.2e-6, 1e3, 4.7e6, 470.0, 1.5e-12, 0.33}) {
        double back = 0.0;
        ASSERT_TRUE(parseSpiceValue(formatSpiceValue(value), &back))
            << formatSpiceValue(value);
        EXPECT_NEAR(back, value, 1e-9 * value);
    }
}

TEST(Parser, BasicDeck)
{
    ParseResult r = parseNetlistString("voltage divider\n"
                                       "v1 in 0 dc 10\n"
                                       "r1 in mid 1k\n"
                                       "r2 mid 0 1k\n"
                                       ".end\n");
    ASSERT_TRUE(r.ok) << r.summary();
    EXPECT_EQ(r.netlist.title, "voltage divider");
    ASSERT_EQ(r.netlist.components.size(), 3u);
    EXPECT_EQ(r.netlist.nodeCount(), 2u); // in, mid
    const Component &v1 = r.netlist.components[0];
    EXPECT_EQ(v1.kind, ComponentKind::VoltageSource);
    EXPECT_EQ(v1.name, "v1");
    EXPECT_DOUBLE_EQ(v1.value, 10.0);
    EXPECT_EQ(v1.line, 2u);
    EXPECT_EQ(r.netlist.components[1].node_pos, 1u); // "in"
    EXPECT_EQ(r.netlist.components[1].node_neg, 2u); // "mid"
    EXPECT_EQ(r.netlist.components[2].node_neg, 0u); // ground
}

TEST(Parser, CommentsAndBlankLines)
{
    ParseResult r = parseNetlistString(
        "comment deck\n"
        "* a full-line comment\n"
        "\n"
        "r1 a 0 1k ; inline comment\n"
        "r2 a 0 2k $ dollar comment\n"
        "* another\n"
        ".end\n");
    ASSERT_TRUE(r.ok) << r.summary();
    EXPECT_EQ(r.netlist.components.size(), 2u);
}

TEST(Parser, LineContinuations)
{
    ParseResult r = parseNetlistString("continuation deck\n"
                                       "r1 a\n"
                                       "+ 0\n"
                                       "+ 1k\n"
                                       "r2 a 0 2.2k\n"
                                       ".end\n");
    ASSERT_TRUE(r.ok) << r.summary();
    ASSERT_EQ(r.netlist.components.size(), 2u);
    EXPECT_DOUBLE_EQ(r.netlist.components[0].value, 1e3);
    EXPECT_EQ(r.netlist.components[0].line, 2u); // card starts there
}

TEST(Parser, GroundAliases)
{
    ParseResult r = parseNetlistString("ground names\n"
                                       "r1 a gnd 1k\n"
                                       "r2 a GND 2k\n"
                                       "r3 a ground 3k\n"
                                       "r4 a 0 4k\n"
                                       ".end\n");
    ASSERT_TRUE(r.ok) << r.summary();
    for (const Component &c : r.netlist.components)
        EXPECT_EQ(c.node_neg, 0u) << c.name;
    EXPECT_EQ(r.netlist.nodeCount(), 1u);
}

TEST(Parser, CaseInsensitive)
{
    ParseResult r = parseNetlistString("case deck\n"
                                       "R1 A B 1K\n"
                                       "r2 b 0 2k\n"
                                       "V1 a 0 DC 5\n"
                                       ".END\n");
    ASSERT_TRUE(r.ok) << r.summary();
    EXPECT_EQ(r.netlist.components[0].name, "r1");
    // A and a intern to the same node.
    EXPECT_EQ(r.netlist.components[0].node_pos,
              r.netlist.components[2].node_pos);
}

TEST(Parser, SourceWithoutDcKeyword)
{
    ParseResult r = parseNetlistString("plain source\n"
                                       "i1 0 a 1m\n"
                                       "r1 a 0 1k\n"
                                       ".end\n");
    ASSERT_TRUE(r.ok) << r.summary();
    EXPECT_DOUBLE_EQ(r.netlist.components[0].value, 1e-3);
}

TEST(Parser, SubcktFlattening)
{
    ParseResult r = parseNetlistString(
        "subckt deck\n"
        ".subckt divider top out\n"
        "r1 top out 1k\n"
        "r2 out 0 1k\n"
        ".ends\n"
        "v1 in 0 dc 6\n"
        "x1 in tap divider\n"
        "x2 tap tap2 divider\n"
        ".end\n");
    ASSERT_TRUE(r.ok) << r.summary();
    // 1 source + 2 instances x 2 resistors.
    ASSERT_EQ(r.netlist.components.size(), 5u);
    EXPECT_EQ(r.netlist.components[1].name, "x1.r1");
    EXPECT_EQ(r.netlist.components[3].name, "x2.r1");
    // Ports map to caller nodes: x1.r1 runs in -> tap.
    const Component &x1r1 = r.netlist.components[1];
    const Component &x2r1 = r.netlist.components[3];
    EXPECT_EQ(x1r1.node_neg, x2r1.node_pos); // shared "tap"
    // nodes: in, tap, tap2 (no internal nodes in this subckt).
    EXPECT_EQ(r.netlist.nodeCount(), 3u);
}

TEST(Parser, SubcktInternalNodesArePrefixed)
{
    ParseResult r = parseNetlistString("internal nodes\n"
                                       ".subckt pi a b\n"
                                       "r1 a mid 1k\n"
                                       "r2 mid b 1k\n"
                                       "c1 mid 0 1n\n"
                                       ".ends\n"
                                       "v1 in 0 dc 1\n"
                                       "x1 in out pi\n"
                                       "rload out 0 10k\n"
                                       ".end\n");
    ASSERT_TRUE(r.ok) << r.summary();
    bool found = false;
    for (std::size_t k = 0; k < r.netlist.node_names.size(); ++k)
        if (r.netlist.node_names[k] == "x1.mid")
            found = true;
    EXPECT_TRUE(found);
}

TEST(Parser, NestedSubcktInstantiation)
{
    ParseResult r = parseNetlistString("nested\n"
                                       ".subckt leaf a b\n"
                                       "r1 a b 1k\n"
                                       ".ends\n"
                                       ".subckt pair a b\n"
                                       "x1 a m leaf\n"
                                       "x2 m b leaf\n"
                                       ".ends\n"
                                       "v1 in 0 dc 1\n"
                                       "xtop in out pair\n"
                                       "rload out 0 1k\n"
                                       ".end\n");
    ASSERT_TRUE(r.ok) << r.summary();
    ASSERT_EQ(r.netlist.components.size(), 4u);
    EXPECT_EQ(r.netlist.components[1].name, "xtop.x1.r1");
    EXPECT_EQ(r.netlist.components[2].name, "xtop.x2.r1");
}

TEST(Parser, ContentAfterEndIgnored)
{
    ParseResult r = parseNetlistString("end deck\n"
                                       "r1 a 0 1k\n"
                                       "r2 a 0 2k\n"
                                       ".end\n"
                                       "r3 b 0 junk_not_parsed\n");
    ASSERT_TRUE(r.ok) << r.summary();
    EXPECT_EQ(r.netlist.components.size(), 2u);
}

TEST(Parser, DeterministicNodeInterning)
{
    std::string deck = randomDeck({/*seed=*/7, /*nodes=*/10});
    ParseResult a = parseNetlistString(deck);
    ParseResult b = parseNetlistString(deck);
    ASSERT_TRUE(a.ok) << a.summary();
    ASSERT_TRUE(b.ok);
    ASSERT_EQ(a.netlist.node_names, b.netlist.node_names);
    ASSERT_EQ(a.netlist.components.size(),
              b.netlist.components.size());
    for (std::size_t k = 0; k < a.netlist.components.size(); ++k) {
        EXPECT_EQ(a.netlist.components[k].node_pos,
                  b.netlist.components[k].node_pos);
        EXPECT_EQ(a.netlist.components[k].node_neg,
                  b.netlist.components[k].node_neg);
        EXPECT_EQ(a.netlist.components[k].value,
                  b.netlist.components[k].value);
    }
}

TEST(Generate, DecksAreDeterministic)
{
    EXPECT_EQ(randomDeck({42, 15, 10}), randomDeck({42, 15, 10}));
    EXPECT_NE(randomDeck({42, 15, 10}), randomDeck({43, 15, 10}));
    EXPECT_EQ(gridDeck({3, 4}), gridDeck({3, 4}));
    EXPECT_EQ(ladderDeck({6}), ladderDeck({6}));
    EXPECT_EQ(meshDeck({5}), meshDeck({5}));
}

TEST(Generate, AllGeneratorsParseClean)
{
    for (const std::string &deck :
         {ladderDeck({8}), gridDeck({4, 5}), meshDeck({6}),
          randomDeck({3, 20, 12})}) {
        ParseResult r = parseNetlistString(deck);
        EXPECT_TRUE(r.ok) << r.summary() << "\n" << deck;
        EXPECT_EQ(r.errorCount(), 0u);
    }
}

TEST(Generate, MeshUsesSubcktInternals)
{
    ParseResult r = parseNetlistString(meshDeck({4}));
    ASSERT_TRUE(r.ok) << r.summary();
    std::size_t mids = 0;
    for (const std::string &n : r.netlist.node_names)
        if (n.size() > 4 && n.substr(n.size() - 4) == ".mid")
            ++mids;
    EXPECT_EQ(mids, 4u); // one internal node per cell
}

} // namespace
} // namespace aa::spice
