/**
 * @file
 * Circuit matrices as service traffic, mixed with the stencil family
 * at matched n: hash separation in the program cache, exact hit and
 * eviction accounting under capacity pressure, affinity routing back
 * to the warm die, and thread-count bit-identity of a mixed trace.
 * The TSan leg of tools/check.sh runs this binary at AASIM_THREADS=1
 * and =4.
 */

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "aa/analog/die_pool.hh"
#include "aa/common/logging.hh"
#include "aa/compiler/program.hh"
#include "aa/service/service.hh"
#include "aa/spice/generate.hh"
#include "aa/spice/mna.hh"
#include "common/solve_properties.hh"
#include "common/trace_matcher.hh"

namespace aa::service {
namespace {

const bool g_quiet = [] {
    setLogLevel(LogLevel::Quiet);
    return true;
}();

/** The circuit and stencil workloads (both n = 9) come from the
 *  shared property harness; this suite adds the cache/affinity and
 *  bit-identity stories specific to mixed SPICE traffic. */
using testutil::Workload;

SolveRequest
request(const Workload &w, double rhs_scale = 1.0)
{
    SolveRequest r;
    r.a = w.a;
    r.b = rhs_scale * w.b;
    return r;
}

TEST(SpiceService, MatchedSizeDistinctPrograms)
{
    Workload circuit = testutil::circuitWorkload();
    Workload stencil = testutil::stencilWorkload();
    ASSERT_EQ(circuit.a->rows(), stencil.a->rows());
    // Same n, different irregular sparsity: the cache key must not
    // collide or the router would alias the two programs.
    EXPECT_NE(compiler::sparsityHash(*circuit.a),
              compiler::sparsityHash(*stencil.a));
}

/** Run an alternating circuit/stencil trace one request per round
 *  (submit + drain each), so the router cannot group same-pattern
 *  requests and the cache sees a genuinely irregular pattern swap on
 *  every request. */
void
runAlternating(SolveService &svc, const Workload &circuit,
               const Workload &stencil, std::size_t requests)
{
    for (std::size_t i = 0; i < requests; ++i) {
        auto f = svc.submit(request(
            i % 2 == 0 ? circuit : stencil,
            1.0 + 0.25 * static_cast<double>(i)));
        svc.drain();
        EXPECT_EQ(f.get().status, RequestStatus::Ok) << i;
    }
}

TEST(SpiceService, CapacityOneThrashesWithExactCounts)
{
    // One die whose program cache holds a single structure, fed an
    // alternating circuit/stencil trace one round at a time: every
    // request must evict the other pattern, so the counters are
    // exact — N misses, 0 hits, N-1 evictions.
    auto opts = testutil::quietSolverOptions();
    opts.program_cache_capacity = 1;
    analog::DiePool pool(1, opts);
    SolveService svc(pool, {});

    const std::size_t kRequests = 8;
    Workload circuit = testutil::circuitWorkload();
    Workload stencil = testutil::stencilWorkload();
    runAlternating(svc, circuit, stencil, kRequests);
    svc.stop();

    ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.completed, kRequests);
    EXPECT_EQ(m.cache_misses, kRequests);
    EXPECT_EQ(m.cache_hits, 0u);
    // The first compile fills the empty slot; each of the other N-1
    // compiles evicts its predecessor.
    EXPECT_EQ(m.cache_evictions, kRequests - 1u);
    // Per-die stats must reconcile exactly with the totals.
    ASSERT_EQ(m.dies.size(), 1u);
    EXPECT_EQ(m.dies[0].cache_misses, kRequests);
    EXPECT_EQ(m.dies[0].cache_hits, 0u);
    EXPECT_EQ(m.dies[0].cache_evictions, kRequests - 1u);
    EXPECT_EQ(m.dies[0].requests, kRequests);
}

TEST(SpiceService, CapacityTwoHoldsBothPatterns)
{
    // The identical trace, capacity 2: after the two cold compiles
    // every request hits and nothing is ever evicted — the counter
    // story inverts exactly.
    auto opts = testutil::quietSolverOptions();
    opts.program_cache_capacity = 2;
    analog::DiePool pool(1, opts);
    SolveService svc(pool, {});

    const std::size_t kRequests = 8;
    Workload circuit = testutil::circuitWorkload();
    Workload stencil = testutil::stencilWorkload();
    runAlternating(svc, circuit, stencil, kRequests);
    svc.stop();

    ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.cache_misses, 2u); // one compile per pattern, ever
    EXPECT_EQ(m.cache_hits, kRequests - 2u);
    EXPECT_EQ(m.cache_evictions, 0u);
    ASSERT_EQ(m.dies.size(), 1u);
    EXPECT_EQ(m.dies[0].cache_evictions, 0u);
}

TEST(SpiceService, AffinityKeepsCircuitAndStencilOnWarmDies)
{
    analog::DiePool pool(2, testutil::quietSolverOptions());
    ServiceOptions sopts;
    sopts.start_paused = true;
    SolveService svc(pool, sopts);

    Workload circuit = testutil::circuitWorkload();
    Workload stencil = testutil::stencilWorkload();
    auto submitRound = [&] {
        std::vector<std::future<SolveResponse>> fs;
        for (std::size_t i = 0; i < 4; ++i)
            fs.push_back(svc.submit(request(
                i % 2 == 0 ? circuit : stencil,
                1.0 + 0.5 * static_cast<double>(i))));
        return fs;
    };

    // Cold round: the two pattern groups land on distinct dies.
    auto round1 = submitRound();
    svc.resume();
    svc.drain();
    std::size_t die_c = round1[0].get().die;
    std::size_t die_s = round1[1].get().die;
    EXPECT_NE(die_c, die_s);

    // Warm round: circuit traffic goes back to the circuit die,
    // stencil to the stencil die, zero recompiles.
    svc.pause();
    auto round2 = submitRound();
    svc.resume();
    svc.drain();
    for (std::size_t i = 0; i < round2.size(); ++i) {
        SolveResponse r = round2[i].get();
        EXPECT_TRUE(r.affine_hit) << "request " << i;
        EXPECT_EQ(r.die, i % 2 == 0 ? die_c : die_s) << i;
        EXPECT_EQ(r.phases.cache_misses, 0u) << i;
    }
    svc.stop();

    ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.cache_misses, 2u);
    EXPECT_EQ(m.affinity_hits, 4u);
    EXPECT_EQ(m.completed, 8u);
}

TEST(SpiceService, CircuitAnswersAreCorrectThroughTheService)
{
    // The service path must agree with the deck's digital solution,
    // to refinement tolerance.
    spice::AssembleResult asm_r =
        spice::assembleDeck(spice::gridDeck({3, 3}), {});
    ASSERT_TRUE(asm_r.ok) << asm_r.summary();
    auto a = std::make_shared<const la::DenseMatrix>(
        asm_r.system.g.toDense());

    analog::DiePool pool(1, testutil::quietSolverOptions());
    SolveService svc(pool, {});
    SolveRequest req;
    req.a = a;
    req.b = asm_r.system.i;
    req.tolerance = 1e-8;
    req.max_refine_passes = 20;
    SolveResponse r = svc.submit(std::move(req)).get();
    svc.stop();

    ASSERT_EQ(r.status, RequestStatus::Ok);
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.residual, 1e-8);
    // The residual bound was verified by the service; spot-check the
    // expansion to node voltages against the physics.
    la::Vector v = asm_r.system.nodeVoltages(r.u);
    ASSERT_EQ(v.size(), 9u);
    // All injected current leaves through the anchor: v(n0_0) = IR.
    EXPECT_NEAR(v[0], 1e-3 * 470.0, 1e-4);
}

TEST(SpiceService, MixedTraceBitIdenticalAcrossThreadCounts)
{
    // The acceptance gate: a mixed stencil+circuit trace through a
    // 3-die pool produces bitwise-identical responses at dispatch
    // concurrency 1 and 4.
    Workload circuit = testutil::circuitWorkload();
    Workload stencil = testutil::stencilWorkload();
    auto runWith = [&](std::size_t threads) {
        analog::DiePool pool(3, testutil::quietSolverOptions());
        ServiceOptions sopts;
        sopts.threads = threads;
        sopts.start_paused = true;
        SolveService svc(pool, sopts);
        std::vector<std::future<SolveResponse>> fs;
        for (std::size_t i = 0; i < 9; ++i)
            fs.push_back(svc.submit(request(
                i % 3 == 0 ? stencil : circuit,
                1.0 + 0.125 * static_cast<double>(i))));
        svc.resume();
        svc.drain();
        svc.stop();
        std::vector<SolveResponse> rs;
        for (auto &f : fs)
            rs.push_back(f.get());
        return rs;
    };

    auto serial = runWith(1);
    auto threaded = runWith(4);
    ASSERT_EQ(serial.size(), threaded.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        testutil::expectResponseOutcomeIdentical(
            serial[i], threaded[i],
            "request " + std::to_string(i));
        EXPECT_TRUE(testutil::phasesMatch(serial[i].phases,
                                          threaded[i].phases))
            << "request " << i;
    }
}

} // namespace
} // namespace aa::service
