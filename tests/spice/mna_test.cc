/**
 * @file
 * MNA assembly correctness: hand-computable circuits against both
 * assembly shapes, SPD guarantees for the reduced form, physics sanity
 * (current conservation), and the determinism contract — identical
 * sparsityHash across re-parses, distinct from a stencil's at equal n.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "aa/compiler/program.hh"
#include "aa/la/direct.hh"
#include "aa/la/io.hh"
#include "aa/la/vector.hh"
#include "aa/pde/poisson.hh"
#include "aa/spice/generate.hh"
#include "aa/spice/mna.hh"

namespace aa::spice {
namespace {

const MnaOptions kReduced{};
const MnaOptions kFull{AnalysisMode::Dc, 1e-6, /*reduce=*/false};

TEST(Mna, VoltageDividerReduced)
{
    AssembleResult r = assembleDeck("divider\n"
                                    "v1 in 0 dc 10\n"
                                    "r1 in mid 1k\n"
                                    "r2 mid 0 1k\n"
                                    ".end\n",
                                    kReduced);
    ASSERT_TRUE(r.ok) << r.summary();
    const MnaSystem &s = r.system;
    // "in" is pinned by v1; only "mid" is unknown.
    ASSERT_EQ(s.unknowns(), 1u);
    EXPECT_EQ(s.branch_unknowns, 0u);
    EXPECT_EQ(s.unknown_names[0], "mid");
    EXPECT_NEAR(s.g.at(0, 0), 2e-3, 1e-15);
    EXPECT_NEAR(s.i[0], 10.0 * 1e-3, 1e-15);

    la::Vector u = la::solveDense(s.g.toDense(), s.i);
    EXPECT_NEAR(u[0], 5.0, 1e-12);

    la::Vector v = s.nodeVoltages(u);
    ASSERT_EQ(v.size(), 2u); // in, mid in first-appearance order
    EXPECT_NEAR(v[0], 10.0, 1e-12);
    EXPECT_NEAR(v[1], 5.0, 1e-12);
}

TEST(Mna, VoltageDividerFullMna)
{
    AssembleResult r = assembleDeck("divider\n"
                                    "v1 in 0 dc 10\n"
                                    "r1 in mid 1k\n"
                                    "r2 mid 0 1k\n"
                                    ".end\n",
                                    kFull);
    ASSERT_TRUE(r.ok) << r.summary();
    const MnaSystem &s = r.system;
    ASSERT_EQ(s.unknowns(), 3u); // in, mid, i(v1)
    EXPECT_EQ(s.branch_unknowns, 1u);
    EXPECT_EQ(s.unknown_names[2], "i(v1)");
    EXPECT_TRUE(s.g.isSymmetric());
    // Saddle point: indefinite, so Cholesky must refuse it.
    EXPECT_FALSE(la::Cholesky::factor(s.g.toDense()).has_value());

    la::Vector u = la::solveDense(s.g.toDense(), s.i);
    EXPECT_NEAR(u[0], 10.0, 1e-9);
    EXPECT_NEAR(u[1], 5.0, 1e-9);
    // KCL at "in": (v_in - v_mid)/1k + i_branch = 0.
    EXPECT_NEAR(u[2], -5e-3, 1e-12);
}

TEST(Mna, CurrentSourceInjection)
{
    AssembleResult r = assembleDeck("injection\n"
                                    "i1 0 out dc 2m\n"
                                    "r1 out 0 1k\n"
                                    ".end\n",
                                    kReduced);
    ASSERT_TRUE(r.ok) << r.summary();
    // `I 0 out`: current flows from ground through the source into
    // out, so i[out] = +2 mA and v = i R = 2 V.
    ASSERT_EQ(r.system.unknowns(), 1u);
    EXPECT_NEAR(r.system.i[0], 2e-3, 1e-15);
    la::Vector u = la::solveDense(r.system.g.toDense(), r.system.i);
    EXPECT_NEAR(u[0], 2.0, 1e-12);
}

TEST(Mna, InductorIsDcShort)
{
    // v1 -> l1 (short) -> r2 -> rload: b sits at the source voltage
    // through the inductor, then a 1k/1k divider gives v_c = 1.
    std::string deck = "inductor dc\n"
                       "v1 a 0 dc 2\n"
                       "l1 a b 1m\n"
                       "r2 b c 1k\n"
                       "rload c 0 1k\n"
                       ".end\n";
    AssembleResult red = assembleDeck(deck, kReduced);
    ASSERT_TRUE(red.ok) << red.summary();
    ASSERT_EQ(red.system.unknowns(), 1u); // a and b both pinned
    la::Vector ur =
        la::solveDense(red.system.g.toDense(), red.system.i);
    la::Vector vr = red.system.nodeVoltages(ur);
    ASSERT_EQ(vr.size(), 3u);
    EXPECT_NEAR(vr[0], 2.0, 1e-12); // a
    EXPECT_NEAR(vr[1], 2.0, 1e-12); // b, pinned through the short
    EXPECT_NEAR(vr[2], 1.0, 1e-12); // c

    AssembleResult full = assembleDeck(deck, kFull);
    ASSERT_TRUE(full.ok) << full.summary();
    // Branch unknowns for v1 AND the DC-short inductor.
    ASSERT_EQ(full.system.branch_unknowns, 2u);
    la::Vector uf =
        la::solveDense(full.system.g.toDense(), full.system.i);
    la::Vector vf = full.system.nodeVoltages(uf);
    for (std::size_t k = 0; k < 3; ++k)
        EXPECT_NEAR(vf[k], vr[k], 1e-9) << k;
}

TEST(Mna, TransientCompanionsConduct)
{
    // In transient mode the ladder caps become C/dt conductances, so
    // taps no longer float at the drive voltage.
    MnaOptions tr;
    tr.mode = AnalysisMode::Transient;
    tr.dt = 1e-6;
    AssembleResult r = assembleDeck(
        ladderDeck({/*sections=*/3, /*r_ohms=*/1e3,
                    /*c_farads=*/1e-6, /*drive_volts=*/1.0}),
        tr);
    ASSERT_TRUE(r.ok) << r.summary();
    ASSERT_EQ(r.system.unknowns(), 3u);
    // C/dt = 1 S dwarfs the 1 mS series conductance: SPD and strongly
    // diagonally dominant.
    EXPECT_TRUE(r.system.g.isSymmetric());
    EXPECT_TRUE(r.system.g.isDiagonallyDominant());
    ASSERT_TRUE(la::Cholesky::factor(r.system.g.toDense()));
    la::Vector u = la::solveDense(r.system.g.toDense(), r.system.i);
    for (std::size_t k = 0; k < u.size(); ++k) {
        EXPECT_GT(u[k], 0.0);
        EXPECT_LT(u[k], 1.0); // strictly attenuated below the drive
    }
}

TEST(Mna, DcLadderFloatsAtDriveVoltage)
{
    // DC: caps open, no load current, every tap = drive voltage.
    AssembleResult r = assembleDeck(
        ladderDeck({/*sections=*/5, /*r_ohms=*/2.2e3,
                    /*c_farads=*/1e-6, /*drive_volts=*/3.3}),
        kReduced);
    ASSERT_TRUE(r.ok) << r.summary();
    la::Vector u = la::solveDense(r.system.g.toDense(), r.system.i);
    la::Vector v = r.system.nodeVoltages(u);
    for (std::size_t k = 0; k < v.size(); ++k)
        EXPECT_NEAR(v[k], 3.3, 1e-9) << k;
}

TEST(Mna, GridCurrentConservation)
{
    // The anchor resistor is the grid's only DC path to ground, so
    // the whole injected current exits through it:
    // v(anchor node) = I * R_anchor exactly.
    GridSpec spec;
    spec.rows = 3;
    spec.cols = 3;
    AssembleResult r = assembleDeck(gridDeck(spec), kReduced);
    ASSERT_TRUE(r.ok) << r.summary();
    ASSERT_EQ(r.system.unknowns(), 9u);
    EXPECT_TRUE(r.system.g.isSymmetric());
    ASSERT_TRUE(la::Cholesky::factor(r.system.g.toDense()));

    la::Vector u = la::solveDense(r.system.g.toDense(), r.system.i);
    // Node n0_0 is interned first (the generator emits it first).
    EXPECT_EQ(r.system.unknown_names[0], "n0_0");
    EXPECT_NEAR(u[0], spec.inject_amps * spec.r_anchor_ohms, 1e-9);
}

TEST(Mna, ReducedMatchesFullOnRandomTopology)
{
    std::string deck = randomDeck({/*seed=*/11, /*nodes=*/14,
                                   /*extra_edges=*/10,
                                   /*r_min_ohms=*/100.0,
                                   /*r_max_ohms=*/1e5});
    AssembleResult red = assembleDeck(deck, kReduced);
    AssembleResult full = assembleDeck(deck, kFull);
    ASSERT_TRUE(red.ok) << red.summary();
    ASSERT_TRUE(full.ok) << full.summary();
    la::Vector vr = red.system.nodeVoltages(
        la::solveDense(red.system.g.toDense(), red.system.i));
    la::Vector vf = full.system.nodeVoltages(
        la::solveDense(full.system.g.toDense(), full.system.i));
    ASSERT_EQ(vr.size(), vf.size());
    double scale = normInf(vr);
    for (std::size_t k = 0; k < vr.size(); ++k)
        EXPECT_NEAR(vr[k], vf[k], 1e-9 * scale) << k;
}

TEST(Mna, AllGeneratedDecksReducedSpd)
{
    for (const std::string &deck :
         {ladderDeck({}), gridDeck({}), meshDeck({}),
          randomDeck({5, 16, 12})}) {
        AssembleResult r = assembleDeck(deck, kReduced);
        ASSERT_TRUE(r.ok) << r.summary() << "\n" << deck;
        EXPECT_TRUE(r.system.g.isSymmetric());
        EXPECT_TRUE(la::Cholesky::factor(r.system.g.toDense()))
            << "not SPD:\n"
            << deck;
    }
}

TEST(Mna, SparsityHashStableAcrossReparses)
{
    std::string deck = meshDeck({/*cells=*/8});
    AssembleResult a = assembleDeck(deck, kReduced);
    AssembleResult b = assembleDeck(deck, kReduced);
    ASSERT_TRUE(a.ok) << a.summary();
    ASSERT_TRUE(b.ok);
    EXPECT_EQ(compiler::sparsityHash(a.system.g.toDense()),
              compiler::sparsityHash(b.system.g.toDense()));
    // Same nnz positions AND values: bit-identical dense forms.
    la::DenseMatrix da = a.system.g.toDense();
    la::DenseMatrix db = b.system.g.toDense();
    ASSERT_EQ(da.rows(), db.rows());
    EXPECT_EQ(da.frobeniusDiff(db), 0.0);
}

TEST(Mna, CircuitHashDiffersFromStencilAtMatchedN)
{
    // A 3x3 resistor grid and the 2D l=3 Poisson stencil are both
    // n = 9, but the circuit's anchor/injection pattern is different
    // irregular sparsity — the service's program cache must treat
    // them as distinct programs.
    AssembleResult circuit =
        assembleDeck(gridDeck({3, 3}), kReduced);
    ASSERT_TRUE(circuit.ok) << circuit.summary();
    pde::PoissonProblem stencil = pde::assemblePoisson(2, 3);
    ASSERT_EQ(circuit.system.unknowns(), stencil.a.rows());
    EXPECT_NE(compiler::sparsityHash(circuit.system.g.toDense()),
              compiler::sparsityHash(stencil.a.toDense()));
}

TEST(Mna, WideValueRangeSurvivesAssembly)
{
    // 5 decades of resistance: entries span ~1e-6..1e-1 S. Assembly
    // must keep them exact (no normalization at this layer — range
    // handling is the compiler's job).
    AssembleResult r = assembleDeck("wide range\n"
                                    "i1 0 a dc 1m\n"
                                    "rbig a b 1meg\n"
                                    "rsmall b 0 10\n"
                                    "rmid a 0 10k\n"
                                    "rx b a 22k\n"
                                    ".end\n",
                                    kReduced);
    ASSERT_TRUE(r.ok) << r.summary();
    EXPECT_NEAR(r.system.g.at(0, 0), 1e-6 + 1e-4 + 1.0 / 22e3,
                1e-18);
    EXPECT_NEAR(r.system.g.at(1, 1), 1e-6 + 0.1 + 1.0 / 22e3,
                1e-12);
}

TEST(Mna, DeckToMatrixMarketRoundTrip)
{
    // The interchange path: an assembled deck exports as a symmetric
    // .mtx (the storage SuiteSparse circuit sets use) and reloads
    // bit-exactly — so external circuit matrices and generated decks
    // flow through one loader.
    AssembleResult r = assembleDeck(gridDeck({3, 3}), {});
    ASSERT_TRUE(r.ok) << r.summary();
    ASSERT_TRUE(r.system.g.isSymmetric());

    std::stringstream buf;
    la::writeMatrixMarket(r.system.g, buf, /*symmetric=*/true);
    la::CsrMatrix back = la::readMatrixMarket(buf);
    ASSERT_EQ(back.rows(), r.system.g.rows());
    EXPECT_EQ(back.nnz(), r.system.g.nnz());
    EXPECT_EQ(back.toDense().frobeniusDiff(r.system.g.toDense()),
              0.0);
    // The sparsity hash — the program-cache key — survives the trip.
    EXPECT_EQ(compiler::sparsityHash(back.toDense()),
              compiler::sparsityHash(r.system.g.toDense()));
}

} // namespace
} // namespace aa::spice
