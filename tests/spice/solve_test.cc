/**
 * @file
 * Circuit matrices through the analog solve path: verified single
 * solves, Algorithm-2 refinement to stencil-workload tolerance, the
 * range-hint/re-ranging ladder on wide-value decks, and block-Jacobi
 * decomposition for decks bigger than one die.
 *
 * The acceptance bound: refinement to tolerance t leaves
 * ||b - G u|| <= t ||b||, so the voltage error is at most
 * kappa(G) * t * ||v||. The decks here keep component values within a
 * few decades (kappa ~ 1e2..1e3), so t = 1e-8 guarantees node
 * voltages match the digital direct solve to ~1e-5 relative — the
 * same bound the Poisson stencil tests use.
 */

#include <gtest/gtest.h>

#include <string>

#include "aa/analog/decompose.hh"
#include "aa/analog/refine.hh"
#include "aa/analog/solver.hh"
#include "aa/la/direct.hh"
#include "aa/spice/generate.hh"
#include "aa/spice/mna.hh"

namespace aa::spice {
namespace {

analog::AnalogSolverOptions
quietOptions()
{
    analog::AnalogSolverOptions opts;
    opts.spec.variation.enabled = false;
    opts.spec.adc_noise_sigma = 0.0;
    opts.auto_calibrate = false;
    return opts;
}

/** Assemble a deck in reduced (SPD) DC form or die trying. */
MnaSystem
assembled(const std::string &deck)
{
    AssembleResult r = assembleDeck(deck, {});
    EXPECT_TRUE(r.ok) << r.summary();
    return std::move(r.system);
}

TEST(SpiceSolve, GridDeckVerifiedAnalogSolve)
{
    MnaSystem sys = assembled(gridDeck({3, 3}));
    la::DenseMatrix g = sys.g.toDense();
    la::Vector exact = la::solveDense(g, sys.i);

    // Circuit systems have ||b|| far below ||G|| * ||v|| (the nodal
    // currents nearly cancel), so the 8-bit readout error amplifies
    // in the RELATIVE residual: a clean single run lands near
    // ||G||_inf * sigma / 256 / ||b|| ~ 0.2 here, not the stencil
    // workloads' 1/256. Widen the acceptance accordingly; the
    // refinement test below is where tolerance is actually bought.
    analog::AnalogLinearSolver solver(quietOptions());
    analog::VerifyOptions vopts;
    vopts.rel_residual = 0.5;
    auto out = solver.solveVerified(g, sys.i, {}, vopts);
    ASSERT_TRUE(out.ok) << out.reason;
    EXPECT_TRUE(out.outcome.converged);
    EXPECT_LE(out.rel_residual, 0.5);
    // The voltage answer itself is still ADC-accurate: error is
    // bounded by the readout LSB times sigma, a few percent of the
    // solution scale.
    EXPECT_LT(la::maxAbsDiff(out.outcome.u, exact),
              0.2 * la::normInf(exact));
}

TEST(SpiceSolve, GridDeckRefinesToStencilTolerance)
{
    // The tentpole acceptance check: generated RC-grid deck ->
    // parse -> assemble -> analog solve with refinement -> node
    // voltages match the digital direct solve.
    MnaSystem sys = assembled(gridDeck({3, 3}));
    la::DenseMatrix g = sys.g.toDense();
    la::Vector exact = la::solveDense(g, sys.i);

    analog::AnalogLinearSolver solver(quietOptions());
    analog::RefineOptions ropts;
    ropts.tolerance = 1e-8;
    auto out = analog::refineSolve(solver, g, sys.i, ropts);
    ASSERT_TRUE(out.converged);
    EXPECT_LT(out.final_residual, 1e-8 * la::norm2(sys.i));
    EXPECT_LT(la::maxAbsDiff(out.u, exact),
              1e-5 * la::normInf(exact));

    // The same refined answer expands to named node voltages.
    la::Vector v = sys.nodeVoltages(out.u);
    la::Vector v_exact = sys.nodeVoltages(exact);
    EXPECT_LT(la::maxAbsDiff(v, v_exact), 1e-5 * la::normInf(v_exact));
}

TEST(SpiceSolve, LadderWithVoltageSourceRefines)
{
    // Source elimination feeds the RHS; refinement must still close.
    MnaSystem sys = assembled(ladderDeck(
        {/*sections=*/6, /*r_ohms=*/1e3, /*c_farads=*/1e-6,
         /*drive_volts=*/2.0, /*r_growth=*/1.3}));
    la::DenseMatrix g = sys.g.toDense();
    la::Vector exact = la::solveDense(g, sys.i);

    analog::AnalogLinearSolver solver(quietOptions());
    analog::RefineOptions ropts;
    ropts.tolerance = 1e-8;
    auto out = analog::refineSolve(solver, g, sys.i, ropts);
    ASSERT_TRUE(out.converged);
    EXPECT_LT(la::maxAbsDiff(out.u, exact),
              1e-5 * la::normInf(exact));
}

TEST(SpiceSolve, WideRangeDeckWalksScalingLadder)
{
    // Three decades of resistance: circuit conductances land far from
    // the unit-ish stencil coefficients, so the first configuration
    // over- or under-ranges and the exception ladder has to re-scale.
    MnaSystem sys = assembled(randomDeck({/*seed=*/21, /*nodes=*/8,
                                          /*extra_edges=*/6,
                                          /*r_min_ohms=*/50.0,
                                          /*r_max_ohms=*/5e4}));
    la::DenseMatrix g = sys.g.toDense();
    la::Vector exact = la::solveDense(g, sys.i);

    analog::AnalogLinearSolver solver(quietOptions());
    analog::VerifyOptions vopts;
    vopts.rel_residual = 0.5; // single-run circuit floor (see above)
    auto out = solver.solveVerified(g, sys.i, {}, vopts);
    ASSERT_TRUE(out.ok) << out.reason;
    // The ladder ran: every solve takes at least one attempt, and the
    // voltage answer lands within the coarse single-run bound.
    EXPECT_GE(out.outcome.attempts, 1u);
    EXPECT_LT(la::maxAbsDiff(out.outcome.u, exact),
              0.2 * la::normInf(exact));

    // A range hint from the first run fast-paths a repeat solve.
    solver.setSolutionScaleHint(out.outcome.solution_scale);
    auto hinted = solver.solveVerified(g, sys.i, {}, vopts);
    ASSERT_TRUE(hinted.ok) << hinted.reason;
    EXPECT_LE(hinted.outcome.attempts, out.outcome.attempts);
}

TEST(SpiceSolve, LargeDeckSolvesByDecomposition)
{
    // 6x6 grid = 36 unknowns: more than one prototype die maps, so
    // the deck rides the block-Jacobi outer iteration (Section IV-B).
    // The workload is the grid's backward-Euler companion system —
    // what a transient loop solves every step. (The DC grid with its
    // single ground anchor is deliberately NOT used here: block
    // Jacobi contracts like 1 - O(1/kappa) and the one-anchor
    // Laplacian has kappa ~ 1e2, so the outer iteration crawls. The
    // C/dt companion terms put 0.1 S on every diagonal and the
    // sweep converges like a diagonally dominant system should.)
    MnaOptions tr;
    tr.mode = AnalysisMode::Transient;
    tr.dt = 1e-5;
    AssembleResult r = assembleDeck(gridDeck({6, 6}), tr);
    ASSERT_TRUE(r.ok) << r.summary();
    MnaSystem &sys = r.system;
    la::Vector exact = la::solveDense(sys.g.toDense(), sys.i);

    analog::AnalogLinearSolver solver(quietOptions());
    analog::DecomposeOptions dopts;
    dopts.max_block_vars = 9;
    auto out =
        analog::solveDecomposedAnalog(solver, sys.g, sys.i, dopts);
    ASSERT_TRUE(out.converged);
    EXPECT_EQ(out.blocks, 4u);
    EXPECT_GT(out.block_solves, out.blocks);
    EXPECT_LT(la::maxAbsDiff(out.u, exact),
              0.05 * la::normInf(exact));

    // Accuracy boosting (Figure 6): refined block solves let the
    // outer iteration close far below the single-run ADC floor.
    analog::DecomposeOptions tight = dopts;
    tight.tol = 1e-6;
    auto refined = analog::solveDecomposed(
        sys.g, sys.i,
        pde::rangePartition(sys.g.rows(), tight.max_block_vars),
        analog::refinedAnalogBlockSolver(solver, 3, 1e-8), tight);
    ASSERT_TRUE(refined.converged);
    EXPECT_LT(la::maxAbsDiff(refined.u, exact),
              1e-3 * la::normInf(exact));
}

TEST(SpiceSolve, TransientMatrixSolvesLikeDc)
{
    // The backward-Euler companion matrix (what a time loop programs
    // once and re-uses per step) goes through the same verified path.
    MnaOptions tr;
    tr.mode = AnalysisMode::Transient;
    tr.dt = 1e-5;
    AssembleResult r = assembleDeck(gridDeck({3, 3}), tr);
    ASSERT_TRUE(r.ok) << r.summary();
    la::DenseMatrix g = r.system.g.toDense();
    la::Vector exact = la::solveDense(g, r.system.i);

    analog::AnalogLinearSolver solver(quietOptions());
    analog::RefineOptions ropts;
    ropts.tolerance = 1e-8;
    auto out = analog::refineSolve(solver, g, r.system.i, ropts);
    ASSERT_TRUE(out.converged);
    EXPECT_LT(la::maxAbsDiff(out.u, exact),
              1e-5 * la::normInf(exact));
}

} // namespace
} // namespace aa::spice
