/**
 * @file
 * FaultPlan / FaultInjector unit properties: sampling is a pure
 * function of (seed, rates, horizon); each fault kind transforms
 * exactly the hook it models; timed faults expire on exec windows;
 * the fired-record chain is stable and readable.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "aa/common/logging.hh"
#include "aa/fault/fault.hh"

namespace aa::fault {
namespace {

const bool g_quiet = [] {
    setLogLevel(LogLevel::Quiet);
    return true;
}();

FaultRates
someRates()
{
    FaultRates r;
    r.stuck_integrator = 0.10;
    r.gain_drift = 0.10;
    r.adc_saturation = 0.10;
    r.calibration_loss = 0.05;
    r.config_corruption = 0.10;
    r.die_death = 0.02;
    return r;
}

TEST(FaultPlan, SampleIsAPureFunctionOfSeed)
{
    FaultPlan p1 = FaultPlan::sample(42, someRates(), 64);
    FaultPlan p2 = FaultPlan::sample(42, someRates(), 64);
    ASSERT_EQ(p1.events().size(), p2.events().size());
    EXPECT_FALSE(p1.empty()); // these rates over 64 windows must fire
    for (std::size_t i = 0; i < p1.events().size(); ++i) {
        const FaultEvent &a = p1.events()[i];
        const FaultEvent &b = p2.events()[i];
        EXPECT_EQ(a.kind, b.kind) << "event " << i;
        EXPECT_EQ(a.at_exec, b.at_exec) << "event " << i;
        EXPECT_EQ(a.duration, b.duration) << "event " << i;
        EXPECT_EQ(a.unit, b.unit) << "event " << i;
        EXPECT_EQ(a.magnitude, b.magnitude) << "event " << i;
    }
}

TEST(FaultPlan, DifferentSeedsGiveDifferentSchedules)
{
    FaultPlan p1 = FaultPlan::sample(1, someRates(), 128);
    FaultPlan p2 = FaultPlan::sample(2, someRates(), 128);
    bool differ = p1.events().size() != p2.events().size();
    for (std::size_t i = 0;
         !differ && i < p1.events().size(); ++i)
        differ = p1.events()[i].kind != p2.events()[i].kind ||
                 p1.events()[i].at_exec != p2.events()[i].at_exec ||
                 p1.events()[i].unit != p2.events()[i].unit;
    EXPECT_TRUE(differ);
}

TEST(FaultPlan, ZeroRatesSampleNothing)
{
    EXPECT_TRUE(FaultPlan::sample(7, FaultRates{}, 256).empty());
}

TEST(FaultPlan, EventsStaySortedByExecWindow)
{
    FaultPlan plan;
    plan.add({FaultKind::GainDrift, 9, 1, 0, 1.1});
    plan.add({FaultKind::StuckIntegrator, 2, 1, 0, 0.5});
    plan.add({FaultKind::AdcSaturation, 5, 1, 0, 0.2});
    ASSERT_EQ(plan.events().size(), 3u);
    EXPECT_EQ(plan.events()[0].at_exec, 2u);
    EXPECT_EQ(plan.events()[1].at_exec, 5u);
    EXPECT_EQ(plan.events()[2].at_exec, 9u);

    FaultPlan sampled = FaultPlan::sample(5, someRates(), 128);
    for (std::size_t i = 1; i < sampled.events().size(); ++i)
        EXPECT_LE(sampled.events()[i - 1].at_exec,
                  sampled.events()[i].at_exec);
}

TEST(FaultInjector, StuckIntegratorPinsOnlyItsUnitWhileActive)
{
    FaultPlan plan;
    plan.add({FaultKind::StuckIntegrator, 0, 1, 1, 0.5});
    FaultInjector inj(plan);

    inj.onExecWindow(); // window 0: fault active
    EXPECT_EQ(inj.onReadout(1, 2, 0.123), 0.5);
    EXPECT_EQ(inj.onReadout(0, 2, 0.123), 0.123);

    inj.onExecWindow(); // window 1: duration 1 expired
    EXPECT_EQ(inj.onReadout(1, 2, 0.123), 0.123);
    EXPECT_EQ(inj.firedCount(), 1u);
}

TEST(FaultInjector, AdcSaturationClampsSymmetrically)
{
    FaultPlan plan;
    plan.add({FaultKind::AdcSaturation, 0, 2, 0, 0.25});
    FaultInjector inj(plan);
    inj.onExecWindow();
    EXPECT_EQ(inj.onReadout(0, 1, 0.9), 0.25);
    EXPECT_EQ(inj.onReadout(0, 1, -0.9), -0.25);
    EXPECT_EQ(inj.onReadout(0, 1, 0.1), 0.1);
}

TEST(FaultInjector, CalibrationLossOffsetsReadsUntilReinit)
{
    FaultPlan plan;
    plan.add({FaultKind::CalibrationLoss, 0, 0, 0, 0.1});
    FaultInjector inj(plan);
    inj.onExecWindow();
    EXPECT_DOUBLE_EQ(inj.onReadout(0, 2, 0.2), 0.3);
    EXPECT_DOUBLE_EQ(inj.onReadout(1, 2, 0.2), 0.3); // every ADC
    inj.onInit(); // recalibration repairs the trims
    EXPECT_EQ(inj.onReadout(0, 2, 0.2), 0.2);
}

TEST(FaultInjector, ConfigCorruptionFlipsExactlyOneWrite)
{
    FaultPlan plan;
    plan.add({FaultKind::ConfigCorruption, 0, 1, 3, 0.0});
    FaultInjector inj(plan);
    inj.onExecWindow();
    double corrupted = inj.onValueWrite(0.5);
    EXPECT_NE(corrupted, 0.5);
    EXPECT_TRUE(std::isfinite(corrupted)); // mantissa bit, not exponent
    EXPECT_EQ(inj.onValueWrite(0.5), 0.5); // one-shot
}

TEST(FaultInjector, GainDriftMultipliesGainWrites)
{
    FaultPlan plan;
    plan.add({FaultKind::GainDrift, 0, 1, 0, 0.9});
    FaultInjector inj(plan);
    inj.onExecWindow();
    EXPECT_DOUBLE_EQ(inj.onGainWrite(1.0), 0.9);
    EXPECT_EQ(inj.onValueWrite(1.0), 1.0); // non-gain writes untouched
}

TEST(FaultInjector, DieDeathThrowsOnEveryCommand)
{
    FaultPlan plan;
    plan.add({FaultKind::DieDeath, 1, 0, 0, 0.0});
    FaultInjector inj(plan);
    inj.onExecWindow(); // window 0: still alive
    EXPECT_FALSE(inj.dead());
    EXPECT_THROW(inj.onExecWindow(), DieDeadError); // window 1: dark
    EXPECT_TRUE(inj.dead());
    EXPECT_THROW(inj.checkAlive(), DieDeadError);
    EXPECT_EQ(inj.firedCount(), 1u);
}

TEST(FaultInjector, ChainStringIsStableAndReadable)
{
    FaultPlan plan;
    plan.add({FaultKind::StuckIntegrator, 0, 1, 2, 0.5});
    plan.add({FaultKind::DieDeath, 2, 0, 0, 0.0});
    FaultInjector inj(plan);
    inj.onExecWindow();
    inj.onExecWindow();
    EXPECT_THROW(inj.onExecWindow(), DieDeadError);
    EXPECT_EQ(inj.chainString(),
              "stuck-integrator@0#2 die-death@2#0");
}

} // namespace
} // namespace aa::fault
