/**
 * @file
 * Chaos suite: seeded fault sweeps over the full service stack. The
 * invariants under ANY injected fault:
 *
 *   1. No silent wrong answers — every Ok response is either
 *      residual-verified analog or an explicitly degraded digital
 *      fallback, and its solution independently satisfies the
 *      matching residual bar.
 *   2. Determinism — the same seed reproduces the same per-die fault
 *      chains, per-request failure chains, routing, and bit-identical
 *      solutions, at any dispatch thread count.
 *
 * The TSan leg of tools/check.sh replays this binary at
 * AASIM_THREADS=1 and =4 (the suite also pins explicit thread counts
 * internally for the 1-vs-4 comparison).
 */

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "aa/analog/die_pool.hh"
#include "aa/common/logging.hh"
#include "aa/fault/fault.hh"
#include "aa/service/service.hh"
#include "common/trace_matcher.hh"

namespace aa::service {
namespace {

const bool g_quiet = [] {
    setLogLevel(LogLevel::Quiet);
    return true;
}();

analog::AnalogSolverOptions
quietOptions()
{
    analog::AnalogSolverOptions opts;
    opts.spec.variation.enabled = false;
    opts.spec.adc_noise_sigma = 0.0;
    opts.auto_calibrate = false;
    return opts;
}

std::shared_ptr<const la::DenseMatrix>
matrixA()
{
    return std::make_shared<const la::DenseMatrix>(
        la::DenseMatrix::fromRows({{4.0, -1.0}, {-1.0, 3.0}}));
}

std::shared_ptr<const la::DenseMatrix>
matrixB()
{
    return std::make_shared<const la::DenseMatrix>(
        la::DenseMatrix::fromRows({{4.0, -1.0, 0.0},
                                   {-1.0, 4.0, -1.0},
                                   {0.0, -1.0, 4.0}}));
}

std::vector<SolveRequest>
mixedTrace(std::size_t count)
{
    auto a = matrixA();
    auto b = matrixB();
    std::vector<SolveRequest> trace;
    for (std::size_t i = 0; i < count; ++i) {
        double f = 1.0 + 0.125 * static_cast<double>(i);
        SolveRequest r;
        if (i % 2 == 0) {
            r.a = a;
            r.b = la::Vector{f, 2.0 * f};
        } else {
            r.a = b;
            r.b = la::Vector{f, 0.5 * f, -f};
        }
        trace.push_back(std::move(r));
    }
    return trace;
}

double
relResidual(const la::DenseMatrix &a, const la::Vector &b,
            const la::Vector &u)
{
    la::Vector r = b - a.apply(u);
    return la::norm2(r) / la::norm2(b);
}

/** Everything a chaos run should reproduce bit for bit. */
struct RunResult {
    std::vector<SolveRequest> trace; ///< what was submitted
    std::vector<SolveResponse> responses; ///< in submission order
    std::vector<std::string> die_chains;  ///< injector logs, by die
    ServiceMetrics metrics;
};

RunResult
runScenario(const std::vector<fault::FaultPlan> &plans,
            std::size_t threads, std::size_t requests)
{
    RunResult out;
    analog::DiePool pool(plans.size(), quietOptions());
    for (std::size_t k = 0; k < plans.size(); ++k)
        pool.attachFaultInjector(
            k, std::make_shared<fault::FaultInjector>(plans[k]));

    ServiceOptions sopts;
    sopts.threads = threads;
    sopts.start_paused = true;
    SolveService svc(pool, sopts);

    out.trace = mixedTrace(requests);
    std::vector<std::future<SolveResponse>> futures;
    for (const SolveRequest &req : out.trace)
        futures.push_back(svc.submit(SolveRequest(req)));
    svc.resume();
    svc.drain();
    svc.stop();
    for (auto &f : futures)
        out.responses.push_back(f.get());
    for (std::size_t k = 0; k < pool.size(); ++k)
        out.die_chains.push_back(
            pool.faultInjector(k)->chainString());
    out.metrics = svc.metrics();
    return out;
}

/** The no-silent-wrong-answer invariant over one run. */
void
expectAllAnswersAccountable(const RunResult &run)
{
    ASSERT_EQ(run.responses.size(), run.trace.size());
    for (std::size_t i = 0; i < run.responses.size(); ++i) {
        const SolveResponse &r = run.responses[i];
        // No deadlines and fallback enabled: everything is answered.
        ASSERT_EQ(r.status, RequestStatus::Ok)
            << "request " << i << ": " << r.reason;
        EXPECT_TRUE(r.degraded || r.verified)
            << "request " << i << " returned unaccountable answer";
        // Independently recompute the residual the service claims.
        double bar = r.degraded ? 1e-6 : 0.2 + 1e-9;
        EXPECT_LE(relResidual(*run.trace[i].a, run.trace[i].b, r.u),
                  bar)
            << "request " << i
            << (r.degraded ? " (degraded)" : " (verified analog)")
            << " chain: " << r.failure_chain;
    }
}

/** Bit-identity of two runs of the same scenario. */
void
expectRunsIdentical(const RunResult &x, const RunResult &y)
{
    ASSERT_EQ(x.die_chains.size(), y.die_chains.size());
    for (std::size_t k = 0; k < x.die_chains.size(); ++k)
        EXPECT_TRUE(testutil::chainsMatch(x.die_chains[k],
                                          y.die_chains[k]))
            << "die " << k;

    ASSERT_EQ(x.responses.size(), y.responses.size());
    for (std::size_t i = 0; i < x.responses.size(); ++i) {
        const SolveResponse &a = x.responses[i];
        const SolveResponse &b = y.responses[i];
        EXPECT_EQ(a.status, b.status) << "request " << i;
        EXPECT_EQ(a.die, b.die) << "request " << i;
        EXPECT_EQ(a.exec_order, b.exec_order) << "request " << i;
        EXPECT_EQ(a.degraded, b.degraded) << "request " << i;
        EXPECT_EQ(a.verified, b.verified) << "request " << i;
        EXPECT_EQ(a.reroutes, b.reroutes) << "request " << i;
        EXPECT_TRUE(testutil::chainsMatch(a.failure_chain,
                                          b.failure_chain))
            << "request " << i;
        ASSERT_EQ(a.u.size(), b.u.size()) << "request " << i;
        for (std::size_t j = 0; j < a.u.size(); ++j)
            EXPECT_EQ(a.u[j], b.u[j])
                << "request " << i << " component " << j;
    }

    EXPECT_EQ(x.metrics.faults_seen, y.metrics.faults_seen);
    EXPECT_EQ(x.metrics.analog_failures, y.metrics.analog_failures);
    EXPECT_EQ(x.metrics.recoveries, y.metrics.recoveries);
    EXPECT_EQ(x.metrics.reroutes, y.metrics.reroutes);
    EXPECT_EQ(x.metrics.quarantines, y.metrics.quarantines);
    EXPECT_EQ(x.metrics.fallbacks, y.metrics.fallbacks);
    EXPECT_EQ(x.metrics.completed, y.metrics.completed);
    EXPECT_EQ(x.metrics.ok, y.metrics.ok);
}

fault::FaultRates
chaosRates()
{
    fault::FaultRates r;
    r.stuck_integrator = 0.05;
    r.gain_drift = 0.05;
    r.adc_saturation = 0.05;
    r.calibration_loss = 0.03;
    r.config_corruption = 0.05;
    r.die_death = 0.01;
    return r;
}

std::vector<fault::FaultPlan>
sampledPlans(std::uint64_t seed, std::size_t dies)
{
    std::vector<fault::FaultPlan> plans;
    for (std::size_t k = 0; k < dies; ++k)
        plans.push_back(
            fault::FaultPlan::sample(seed * 131 + k, chaosRates(), 64));
    return plans;
}

TEST(Chaos, SingleFaultScenariosNeverGiveSilentWrongAnswers)
{
    // One explicit fault on die 0 of a two-die pool, every kind in
    // turn; die 1 stays clean. Whatever the kind does — pin a
    // readout, clip an ADC, corrupt a write, kill the die — the
    // stream must come back verified or explicitly degraded.
    struct Scenario {
        const char *label;
        fault::FaultEvent event;
    };
    const Scenario scenarios[] = {
        {"stuck", {fault::FaultKind::StuckIntegrator, 1, 2, 0, -0.8}},
        {"drift", {fault::FaultKind::GainDrift, 1, 2, 0, 1.35}},
        {"saturation", {fault::FaultKind::AdcSaturation, 1, 2, 0, 0.1}},
        {"decal", {fault::FaultKind::CalibrationLoss, 1, 0, 0, 0.15}},
        {"corrupt", {fault::FaultKind::ConfigCorruption, 1, 1, 2, 0.0}},
        {"death", {fault::FaultKind::DieDeath, 1, 0, 0, 0.0}},
    };
    for (const Scenario &s : scenarios) {
        SCOPED_TRACE(s.label);
        std::vector<fault::FaultPlan> plans(2);
        plans[0].add(s.event);
        RunResult run = runScenario(plans, 2, 8);
        EXPECT_GE(run.metrics.faults_seen, 1u); // the fault armed
        expectAllAnswersAccountable(run);
    }
}

TEST(Chaos, IdenticalSeedReproducesTheFailureChainBitForBit)
{
    for (std::uint64_t seed : {3ull, 29ull}) {
        SCOPED_TRACE(seed);
        std::vector<fault::FaultPlan> plans = sampledPlans(seed, 3);
        RunResult first = runScenario(plans, 2, 10);
        RunResult second = runScenario(plans, 2, 10);
        expectAllAnswersAccountable(first);
        expectRunsIdentical(first, second);
    }
}

TEST(Chaos, ThreadCountDoesNotChangeFailureHandling)
{
    std::vector<fault::FaultPlan> plans = sampledPlans(17, 3);
    RunResult serial = runScenario(plans, 1, 10);
    RunResult threaded = runScenario(plans, 4, 10);
    expectAllAnswersAccountable(serial);
    expectAllAnswersAccountable(threaded);
    expectRunsIdentical(serial, threaded);
}

} // namespace
} // namespace aa::service
