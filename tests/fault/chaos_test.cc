/**
 * @file
 * Chaos suite: seeded fault sweeps over the full service stack. The
 * invariants under ANY injected fault:
 *
 *   1. No silent wrong answers — every Ok response is either
 *      residual-verified analog or an explicitly degraded digital
 *      fallback, and its solution independently satisfies the
 *      matching residual bar.
 *   2. Determinism — the same seed reproduces the same per-die fault
 *      chains, per-request failure chains, routing, and bit-identical
 *      solutions, at any dispatch thread count.
 *
 * Both invariants (and the lane-counter exclusivity that rides along)
 * are asserted through the shared property harness in
 * tests/common/solve_properties.hh. The TSan leg of tools/check.sh
 * replays this binary at AASIM_THREADS=1 and =4 (the suite also pins
 * explicit thread counts internally for the 1-vs-4 comparison).
 */

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "aa/common/logging.hh"
#include "aa/fault/fault.hh"
#include "aa/service/service.hh"
#include "common/solve_properties.hh"

namespace aa::service {
namespace {

const bool g_quiet = [] {
    setLogLevel(LogLevel::Quiet);
    return true;
}();

std::shared_ptr<const la::DenseMatrix>
matrixA()
{
    return std::make_shared<const la::DenseMatrix>(
        la::DenseMatrix::fromRows({{4.0, -1.0}, {-1.0, 3.0}}));
}

std::shared_ptr<const la::DenseMatrix>
matrixB()
{
    return std::make_shared<const la::DenseMatrix>(
        la::DenseMatrix::fromRows({{4.0, -1.0, 0.0},
                                   {-1.0, 4.0, -1.0},
                                   {0.0, -1.0, 4.0}}));
}

std::vector<SolveRequest>
mixedTrace(std::size_t count)
{
    auto a = matrixA();
    auto b = matrixB();
    std::vector<SolveRequest> trace;
    for (std::size_t i = 0; i < count; ++i) {
        double f = 1.0 + 0.125 * static_cast<double>(i);
        SolveRequest r;
        if (i % 2 == 0) {
            r.a = a;
            r.b = la::Vector{f, 2.0 * f};
        } else {
            r.a = b;
            r.b = la::Vector{f, 0.5 * f, -f};
        }
        trace.push_back(std::move(r));
    }
    return trace;
}

testutil::ServiceRunResult
runScenario(const std::vector<fault::FaultPlan> &plans,
            std::size_t threads, std::size_t requests)
{
    testutil::ServiceRunSpec spec;
    spec.dies = plans.size();
    spec.threads = threads;
    spec.plans = plans;
    return testutil::runServiceTrace(mixedTrace(requests), spec);
}

TEST(Chaos, SingleFaultScenariosNeverGiveSilentWrongAnswers)
{
    // One explicit fault on die 0 of a two-die pool, every kind in
    // turn; die 1 stays clean. Whatever the kind does — pin a
    // readout, clip an ADC, corrupt a write, kill the die — the
    // stream must come back verified or explicitly degraded.
    struct Scenario {
        const char *label;
        fault::FaultEvent event;
    };
    const Scenario scenarios[] = {
        {"stuck", {fault::FaultKind::StuckIntegrator, 1, 2, 0, -0.8}},
        {"drift", {fault::FaultKind::GainDrift, 1, 2, 0, 1.35}},
        {"saturation", {fault::FaultKind::AdcSaturation, 1, 2, 0, 0.1}},
        {"decal", {fault::FaultKind::CalibrationLoss, 1, 0, 0, 0.15}},
        {"corrupt", {fault::FaultKind::ConfigCorruption, 1, 1, 2, 0.0}},
        {"death", {fault::FaultKind::DieDeath, 1, 0, 0, 0.0}},
    };
    for (const Scenario &s : scenarios) {
        SCOPED_TRACE(s.label);
        std::vector<fault::FaultPlan> plans(2);
        plans[0].add(s.event);
        testutil::ServiceRunResult run = runScenario(plans, 2, 8);
        EXPECT_GE(run.metrics.faults_seen, 1u); // the fault armed
        testutil::expectAllAnswersAccountable(run);
        testutil::expectLaneCountersExclusive(run.metrics);
    }
}

TEST(Chaos, IdenticalSeedReproducesTheFailureChainBitForBit)
{
    for (std::uint64_t seed : {3ull, 29ull}) {
        SCOPED_TRACE(seed);
        std::vector<fault::FaultPlan> plans =
            testutil::sampledFaultPlans(seed, 3);
        testutil::ServiceRunResult first = runScenario(plans, 2, 10);
        testutil::ServiceRunResult second = runScenario(plans, 2, 10);
        testutil::expectAllAnswersAccountable(first);
        testutil::expectRunsIdentical(first, second);
    }
}

TEST(Chaos, ThreadCountDoesNotChangeFailureHandling)
{
    std::vector<fault::FaultPlan> plans =
        testutil::sampledFaultPlans(17, 3);
    testutil::ServiceRunResult serial = runScenario(plans, 1, 10);
    testutil::ServiceRunResult threaded = runScenario(plans, 4, 10);
    testutil::expectAllAnswersAccountable(serial);
    testutil::expectAllAnswersAccountable(threaded);
    testutil::expectRunsIdentical(serial, threaded);
}

TEST(Chaos, FaultsDuringPreconditionerAppliesStayAccountable)
{
    // The preconditioned-Krylov lane under fire: a nonsymmetric
    // stream (Auto routes it straight to the lane, so every analog
    // op is a preconditioner apply) against one die that pins an
    // integrator and one that dies mid-run. Whatever each apply
    // returns, the outer FGMRES measures its exit residual digitally
    // — the stream must come back accountable with a stable failure
    // story at any thread count.
    testutil::Workload w = testutil::convectionWorkload();
    auto trace = testutil::laneTrace(
        w, {"auto", LanePreference::Auto, 1e-8, false}, 6);

    testutil::ServiceRunSpec spec;
    spec.dies = 2;
    spec.service.precond_max_iters = 12;
    fault::FaultPlan stuck;
    stuck.add({fault::FaultKind::StuckIntegrator, 1, 2, 0, -0.8});
    fault::FaultPlan death;
    death.add({fault::FaultKind::DieDeath, 3, 0, 0, 0.0});
    spec.plans = {stuck, death};

    spec.threads = 1;
    testutil::ServiceRunResult serial =
        testutil::runServiceTrace(trace, spec);
    spec.threads = 4;
    testutil::ServiceRunResult threaded =
        testutil::runServiceTrace(trace, spec);

    EXPECT_GE(serial.metrics.faults_seen, 1u);
    EXPECT_GE(serial.metrics.precond_attempts, 1u);
    testutil::expectAllAnswersAccountable(serial);
    testutil::expectLaneCountersExclusive(serial.metrics);
    testutil::expectRunsIdentical(serial, threaded);
}

TEST(Chaos, DeadDieMidKrylovReroutesWithTheChainRecorded)
{
    // Die 0 dies on its very first exec window; preconditioned
    // requests must either reroute to die 1 (chain names die 0) or
    // degrade — never hang, never answer silently.
    testutil::Workload w = testutil::convectionWorkload();
    auto trace = testutil::laneTrace(
        w, {"precond", LanePreference::PrecondKrylov, 1e-8, false},
        4);

    testutil::ServiceRunSpec spec;
    spec.dies = 2;
    spec.service.precond_max_iters = 12;
    fault::FaultPlan death;
    death.add({fault::FaultKind::DieDeath, 0, 0, 0, 0.0});
    spec.plans = {death, {}};

    testutil::ServiceRunResult run =
        testutil::runServiceTrace(trace, spec);
    testutil::expectAllAnswersAccountable(run);
    testutil::expectLaneCountersExclusive(run.metrics);
    // The dead die shows up in at least one failure chain, and the
    // stream still got analog-preconditioned answers from die 1.
    bool chain_names_die0 = false;
    for (const SolveResponse &r : run.responses)
        if (r.failure_chain.find("die 0") != std::string::npos)
            chain_names_die0 = true;
    EXPECT_TRUE(chain_names_die0);
    EXPECT_GE(run.metrics.lane_precond, 1u);
    EXPECT_GE(run.metrics.reroutes, 1u);
}

} // namespace
} // namespace aa::service
