#include <gtest/gtest.h>

#include "aa/compiler/mapper.hh"
#include "aa/la/eigen.hh"
#include "aa/la/direct.hh"

namespace aa::compiler {
namespace {

chip::ChipConfig
testConfig(std::size_t macroblocks = 4)
{
    chip::ChipConfig cfg;
    cfg.geometry.macroblocks = macroblocks;
    cfg.spec.variation.enabled = false;
    cfg.spec.adc_noise_sigma = 0.0;
    return cfg;
}

ScaledSystem
scaled2x2()
{
    auto a = la::DenseMatrix::fromRows({{0.8, 0.2}, {0.2, 0.6}});
    la::Vector b{0.4, 0.4};
    chip::ChipConfig cfg = testConfig();
    return scaleSystem(a, b, {}, cfg.spec);
}

TEST(Demand, CountsUnitsOfDenseSystem)
{
    auto a = la::DenseMatrix::fromRows({{0.8, 0.2}, {0.2, 0.6}});
    la::Vector b{0.4, 0.4};
    auto d = demandOf(a, b);
    EXPECT_EQ(d.integrators, 2u);
    EXPECT_EQ(d.multipliers, 4u); // all entries nonzero
    EXPECT_EQ(d.adcs, 2u);
    EXPECT_EQ(d.dacs, 2u);
    // Each variable feeds 2 multipliers + 1 ADC = 3 leaves -> 2
    // two-copy fanouts each.
    EXPECT_EQ(d.fanout_blocks, 4u);
}

TEST(Demand, SparsityReducesMultipliers)
{
    auto a = la::DenseMatrix::fromRows(
        {{1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}});
    la::Vector b{0.1, 0.1, 0.1};
    auto d = demandOf(a, b);
    EXPECT_EQ(d.multipliers, 3u);
    // Each variable feeds 1 multiplier + 1 ADC = 2 leaves -> 1
    // fanout block.
    EXPECT_EQ(d.fanout_blocks, 3u);
}

TEST(Demand, WiderFanoutsNeedFewerBlocks)
{
    auto a = la::DenseMatrix::fromRows({{0.8, 0.2}, {0.2, 0.6}});
    la::Vector b{0.4, 0.4};
    auto two = demandOf(a, b, 2);
    auto four = demandOf(a, b, 4);
    EXPECT_LT(four.fanout_blocks, two.fanout_blocks);
}

TEST(Demand, FitsOnChecksEveryResource)
{
    ResourceDemand d;
    d.integrators = 4;
    d.multipliers = 8;
    d.fanout_blocks = 8;
    d.adcs = 2;
    d.dacs = 2;
    chip::ChipGeometry proto;
    EXPECT_TRUE(d.fitsOn(proto));
    d.adcs = 3;
    EXPECT_FALSE(d.fitsOn(proto));
}

TEST(GeometryFor, CoversTheDemand)
{
    auto a = la::DenseMatrix::fromRows({{0.8, 0.2}, {0.2, 0.6}});
    la::Vector b{0.4, 0.4};
    auto d = demandOf(a, b);
    auto g = geometryFor(d);
    EXPECT_TRUE(d.fitsOn(g));
}

TEST(GeometryFor, AdcSharingDominatesSmallSystems)
{
    // n variables need n ADCs => 2n macroblocks at the prototype's
    // 2-mb sharing.
    ResourceDemand d;
    d.integrators = 3;
    d.adcs = 3;
    d.dacs = 3;
    auto g = geometryFor(d);
    EXPECT_GE(g.macroblocks, 6u);
}

TEST(Mapping, AssignsDistinctUnitsPerVariable)
{
    chip::Chip chip(testConfig());
    SleMapping mapping(scaled2x2(), chip);
    EXPECT_EQ(mapping.numVars(), 2u);
    EXPECT_NE(mapping.integratorOf(0).v, mapping.integratorOf(1).v);
    EXPECT_NE(mapping.adcOf(0).v, mapping.adcOf(1).v);
}

TEST(Mapping, LambdaMinMatchesEigenSolve)
{
    auto sys = scaled2x2();
    chip::Chip chip(testConfig());
    SleMapping mapping(sys, chip);
    double expected = la::smallestEigenvalueSpd(sys.a).value;
    EXPECT_NEAR(mapping.lambdaMin(), expected, 1e-8);
}

TEST(Mapping, RecommendedTimeoutCoversConvergence)
{
    auto sys = scaled2x2();
    chip::Chip chip(testConfig());
    SleMapping mapping(sys, chip);
    const auto &spec = chip.config().spec;
    double t = mapping.recommendedTimeout(spec);
    // At least a few decay constants of the slowest mode.
    double tau =
        1.0 / (spec.integratorRate() * mapping.lambdaMin());
    EXPECT_GT(t, 3.0 * tau);
    EXPECT_LT(t, 100.0 * tau);
}

TEST(Mapping, ConfiguredChipSolvesTheSystem)
{
    auto sys = scaled2x2();
    chip::Chip chip(testConfig());
    isa::AcceleratorDriver driver(chip);
    SleMapping mapping(sys, chip);
    mapping.configure(driver);
    auto res = driver.execStart();
    EXPECT_FALSE(res.any_exception);
    la::Vector u_hat = mapping.readSolution(driver, 4);
    la::Vector expected = la::solveDense(sys.a, sys.b);
    EXPECT_LT(la::maxAbsDiff(u_hat, expected), 0.02);
}

TEST(Mapping, UpdateBiasesRerunsWithoutRemap)
{
    auto sys = scaled2x2();
    chip::Chip chip(testConfig());
    isa::AcceleratorDriver driver(chip);
    SleMapping mapping(sys, chip);
    mapping.configure(driver);
    driver.execStart();

    la::Vector new_b{0.1, 0.0};
    mapping.updateBiases(driver, new_b);
    driver.cfgCommit();
    driver.execStart();
    la::Vector u_hat = mapping.readSolution(driver, 4);
    la::Vector expected = la::solveDense(sys.a, new_b);
    EXPECT_LT(la::maxAbsDiff(u_hat, expected), 0.02);
}

TEST(Mapping, UpdateInitialStateTakesEffect)
{
    auto sys = scaled2x2();
    chip::Chip chip(testConfig());
    isa::AcceleratorDriver driver(chip);
    SleMapping mapping(sys, chip);
    mapping.configure(driver);
    mapping.updateInitialState(driver, la::Vector{0.5, 0.5});
    // A tiny timeout: the state barely moves from the new ICs.
    driver.setTimeout(1);
    driver.cfgCommit();
    driver.execStart();
    la::Vector u_hat = mapping.readSolution(driver, 4);
    EXPECT_NEAR(u_hat[0], 0.5, 0.05);
    EXPECT_NEAR(u_hat[1], 0.5, 0.05);
}

TEST(MappingDeath, TooSmallChipFatal)
{
    // A 3-variable dense system needs 3 ADCs: the 4-macroblock
    // prototype has 2.
    auto a = la::DenseMatrix::fromRows(
        {{1.0, 0.1, 0.1}, {0.1, 1.0, 0.1}, {0.1, 0.1, 1.0}});
    la::Vector b{0.1, 0.2, 0.3};
    chip::ChipConfig cfg = testConfig();
    chip::Chip chip(cfg);
    auto sys = scaleSystem(a, b, {}, cfg.spec);
    EXPECT_EXIT(SleMapping(sys, chip), ::testing::ExitedWithCode(1),
                "chip has");
}

TEST(Mapping, LargerGeometryFitsBiggerProblem)
{
    auto a = la::DenseMatrix::fromRows(
        {{1.0, 0.1, 0.1}, {0.1, 1.0, 0.1}, {0.1, 0.1, 1.0}});
    la::Vector b{0.1, 0.2, 0.3};
    auto g = geometryFor(demandOf(a, b));
    chip::ChipConfig cfg = testConfig(g.macroblocks);
    chip::Chip chip(cfg);
    isa::AcceleratorDriver driver(chip);
    auto sys = scaleSystem(a, b, {}, cfg.spec);
    SleMapping mapping(sys, chip);
    mapping.configure(driver);
    driver.execStart();
    la::Vector u_hat = mapping.readSolution(driver, 4);
    la::Vector expected = la::solveDense(sys.a, sys.b);
    EXPECT_LT(la::maxAbsDiff(u_hat, expected), 0.02);
}

} // namespace
} // namespace aa::compiler
