#include <gtest/gtest.h>

#include "aa/compiler/mapper.hh"
#include "aa/compiler/program.hh"
#include "aa/la/direct.hh"

namespace aa::compiler {
namespace {

chip::ChipConfig
testConfig(std::size_t macroblocks = 4)
{
    chip::ChipConfig cfg;
    cfg.geometry.macroblocks = macroblocks;
    cfg.spec.variation.enabled = false;
    cfg.spec.adc_noise_sigma = 0.0;
    return cfg;
}

la::DenseMatrix
spd2x2()
{
    return la::DenseMatrix::fromRows({{0.8, 0.2}, {0.2, 0.6}});
}

TEST(SparsityHash, IgnoresValuesButNotPattern)
{
    auto a = spd2x2();
    auto half = a;
    half *= 0.5;
    // Same pattern, different values: structure key unchanged.
    EXPECT_EQ(sparsityHash(a), sparsityHash(half));

    auto sparse = a;
    sparse(0, 1) = 0.0;
    EXPECT_NE(sparsityHash(a), sparsityHash(sparse));
}

TEST(SparsityHash, DistinguishesTransposedPatterns)
{
    auto upper =
        la::DenseMatrix::fromRows({{1.0, 0.3}, {0.0, 1.0}});
    auto lower =
        la::DenseMatrix::fromRows({{1.0, 0.0}, {0.3, 1.0}});
    EXPECT_NE(sparsityHash(upper), sparsityHash(lower));
}

TEST(GeometryKey, TracksUnitInventories)
{
    chip::ChipGeometry g;
    chip::ChipGeometry bigger = g;
    bigger.macroblocks = g.macroblocks * 2;
    EXPECT_EQ(geometryKeyOf(g), geometryKeyOf(g));
    EXPECT_NE(geometryKeyOf(g), geometryKeyOf(bigger));

    chip::ChipGeometry wider = g;
    wider.fanout_copies = g.fanout_copies + 2;
    EXPECT_NE(geometryKeyOf(g), geometryKeyOf(wider));
}

TEST(Structure, MatchesSleMappingAssignments)
{
    auto a = spd2x2();
    la::Vector b{0.4, 0.4};
    chip::ChipConfig cfg = testConfig();
    chip::Chip chip(cfg);
    auto sys = scaleSystem(a, b, {}, cfg.spec);

    CompiledStructure cs(a, chip);
    SleMapping mapping(sys, chip);
    ASSERT_EQ(cs.numVars(), mapping.numVars());
    for (std::size_t i = 0; i < cs.numVars(); ++i) {
        EXPECT_EQ(cs.integratorOf(i).v, mapping.integratorOf(i).v);
        EXPECT_EQ(cs.adcOf(i).v, mapping.adcOf(i).v);
    }
    EXPECT_EQ(cs.numGains(), 4u); // dense 2x2
}

TEST(Structure, BindingSolvesLikeMonolithicMapping)
{
    auto a = spd2x2();
    la::Vector b{0.4, 0.4};
    chip::ChipConfig cfg = testConfig();
    chip::Chip chip(cfg);
    isa::AcceleratorDriver driver(chip);
    auto sys = scaleSystem(a, b, {}, cfg.spec);

    CompiledStructure cs(a, chip);
    ParameterBinding binding(cs, sys,
                             estimateConvergenceRate(sys.a, true));
    cs.configureStructure(driver);
    binding.apply(cs, driver);
    auto res = driver.execStart();
    EXPECT_FALSE(res.any_exception);
    la::Vector u_hat = cs.readSolution(driver, 4);
    la::Vector expected = la::solveDense(sys.a, sys.b);
    EXPECT_LT(la::maxAbsDiff(u_hat, expected), 0.02);
}

TEST(Structure, RebindShipsOnlyValues)
{
    auto a = spd2x2();
    la::Vector b{0.4, 0.4};
    chip::ChipConfig cfg = testConfig();
    chip::Chip chip(cfg);
    isa::AcceleratorDriver driver(chip);
    auto sys = scaleSystem(a, b, {}, cfg.spec);

    CompiledStructure cs(a, chip);
    double lambda = estimateConvergenceRate(sys.a, true);
    ParameterBinding binding(cs, sys, lambda);
    cs.configureStructure(driver);
    binding.apply(cs, driver);
    std::size_t after_full = driver.configBytes();

    // New right-hand side, same structure: only the DAC biases (and
    // the commit) travel.
    la::Vector b2{0.1, 0.3};
    auto sys2 = scaleSystem(a, b2, {}, cfg.spec);
    ParameterBinding binding2(cs, sys2, lambda);
    binding2.apply(cs, driver);
    std::size_t delta = driver.configBytes() - after_full;
    EXPECT_GT(delta, 0u);
    EXPECT_LT(delta * 4, after_full);

    driver.execStart();
    la::Vector u_hat = cs.readSolution(driver, 4);
    la::Vector expected = la::solveDense(sys2.a, sys2.b);
    EXPECT_LT(la::maxAbsDiff(u_hat, expected), 0.02);
}

TEST(Cache, CountsHitsAndMisses)
{
    chip::Chip chip(testConfig());
    ProgramCache cache;
    auto a = spd2x2();

    auto s1 = cache.fetch(a, chip);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 0u);

    auto half = a;
    half *= 0.5; // same pattern: must hit
    auto s2 = cache.fetch(half, chip);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(s1.get(), s2.get());

    auto sparse = a;
    sparse(0, 1) = 0.0; // new pattern: miss
    auto s3 = cache.fetch(sparse, chip);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_NE(s1.get(), s3.get());
    EXPECT_EQ(cache.size(), 2u);
}

TEST(Cache, EvictsLeastRecentlyUsed)
{
    chip::Chip chip(testConfig());
    ProgramCache cache(2);

    auto dense = spd2x2();
    auto diag =
        la::DenseMatrix::fromRows({{1.0, 0.0}, {0.0, 1.0}});
    auto tri =
        la::DenseMatrix::fromRows({{1.0, 0.2}, {0.0, 1.0}});

    auto s_dense = cache.fetch(dense, chip);
    cache.fetch(diag, chip);
    cache.fetch(dense, chip); // refresh: diag is now LRU
    cache.fetch(tri, chip);   // evicts diag
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.size(), 2u);

    auto s_dense2 = cache.fetch(dense, chip);
    EXPECT_EQ(s_dense.get(), s_dense2.get()); // survived
    std::size_t misses = cache.stats().misses;
    cache.fetch(diag, chip); // was evicted: recompile
    EXPECT_EQ(cache.stats().misses, misses + 1);
}

TEST(Cache, ClearDropsEntriesAndKeepsCounting)
{
    chip::Chip chip(testConfig());
    ProgramCache cache;
    auto a = spd2x2();
    cache.fetch(a, chip);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    cache.fetch(a, chip);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(Cache, GeometryIsPartOfTheKey)
{
    chip::Chip small(testConfig(4));
    chip::Chip big(testConfig(8));
    ProgramCache cache;
    auto a = spd2x2();
    cache.fetch(a, small);
    cache.fetch(a, big);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(Cache, ContainsIsObservational)
{
    chip::Chip chip(testConfig());
    ProgramCache cache(2);
    auto dense = spd2x2();
    auto diag = la::DenseMatrix::fromRows({{1.0, 0.0}, {0.0, 1.0}});

    EXPECT_FALSE(cache.contains(sparsityHash(dense), dense.rows()));
    cache.fetch(dense, chip); // MRU: dense
    cache.fetch(diag, chip);  // MRU: diag, LRU: dense
    EXPECT_TRUE(cache.contains(sparsityHash(dense), dense.rows()));
    EXPECT_TRUE(cache.contains(sparsityHash(diag), diag.rows()));

    // Probing must not refresh LRU order or bump the counters: after
    // many contains(dense) calls, dense is still the eviction victim.
    CacheStats before = cache.stats();
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(
            cache.contains(sparsityHash(dense), dense.rows()));
    EXPECT_EQ(cache.stats().hits, before.hits);
    EXPECT_EQ(cache.stats().misses, before.misses);

    auto tri = la::DenseMatrix::fromRows({{1.0, 0.2}, {0.0, 1.0}});
    cache.fetch(tri, chip); // evicts dense despite the probes
    EXPECT_FALSE(cache.contains(sparsityHash(dense), dense.rows()));
    EXPECT_TRUE(cache.contains(sparsityHash(diag), diag.rows()));
}

TEST(Cache, KeysListsResidentsMostRecentFirst)
{
    chip::Chip chip(testConfig());
    ProgramCache cache;
    auto dense = spd2x2();
    auto diag = la::DenseMatrix::fromRows({{1.0, 0.0}, {0.0, 1.0}});
    cache.fetch(dense, chip);
    cache.fetch(diag, chip);

    auto keys = cache.keys();
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0].pattern, sparsityHash(diag));
    EXPECT_EQ(keys[1].pattern, sparsityHash(dense));
    EXPECT_EQ(keys[0].n, 2u);
    EXPECT_EQ(keys[0].geometry,
              geometryKeyOf(chip.config().geometry));
}

} // namespace
} // namespace aa::compiler
