#include <cmath>

#include <gtest/gtest.h>

#include "aa/compiler/scaling.hh"
#include "aa/la/direct.hh"

namespace aa::compiler {
namespace {

circuit::AnalogSpec
spec()
{
    circuit::AnalogSpec s;
    s.max_gain = 10.0;
    return s;
}

TEST(Scaling, InRangeSystemUntouched)
{
    auto a = la::DenseMatrix::fromRows({{2, -1}, {-1, 2}});
    la::Vector b{0.5, 0.5};
    auto out = scaleSystem(a, b, {}, spec());
    EXPECT_DOUBLE_EQ(out.plan.gain_scale, 1.0);
    EXPECT_DOUBLE_EQ(out.a.maxAbs(), 2.0);
    EXPECT_DOUBLE_EQ(out.b[0], 0.5);
}

TEST(Scaling, LargeCoefficientsCompressed)
{
    // The paper's inset: A with entries beyond the gain range is
    // programmed as A/s.
    auto a = la::DenseMatrix::fromRows({{100, -25}, {-25, 80}});
    la::Vector b{50, 10};
    auto out = scaleSystem(a, b, {}, spec());
    EXPECT_GT(out.plan.gain_scale, 1.0);
    EXPECT_LE(out.a.maxAbs(), 10.0);
    EXPECT_LE(la::normInf(out.b), 1.0);
}

TEST(Scaling, TinyCoefficientsScaledUp)
{
    // Circuit matrices arrive in siemens — 3-4 decades below the
    // gain range. s < 1 (an exact power of two) expands them into
    // the top octave so the feedback can overpower quantized-DAC
    // bias; solve time shrinks by the same factor.
    auto a = la::DenseMatrix::fromRows(
        {{2e-3, -1e-3}, {-1e-3, 2e-3}});
    la::Vector b{1e-3, 0.0};
    auto out = scaleSystem(a, b, {}, spec());
    EXPECT_LT(out.plan.gain_scale, 1.0);
    double s = out.plan.gain_scale;
    EXPECT_DOUBLE_EQ(std::exp2(std::round(std::log2(s))), s);
    EXPECT_GT(out.a.maxAbs(), 0.95 * 10.0 / 2.0); // top octave
    EXPECT_LE(out.a.maxAbs(), 0.95 * 10.0);
    EXPECT_LT(out.plan.timeFactor(), 1.0);
    // The DAC floor still pins b_s at full scale via sigma.
    EXPECT_LE(la::normInf(out.b), 1.0);

    // Soundness: u = sigma * (A_s^-1 b_s) exactly.
    la::Vector exact = la::solveDense(a, b);
    la::Vector recovered =
        unscaleSolution(la::solveDense(out.a, out.b), out.plan);
    EXPECT_LT(la::maxAbsDiff(recovered, exact), 1e-9);
}

TEST(Scaling, UnitRangeCoefficientsKeepUnitScale)
{
    // The scale-up rung triggers strictly below max|a| = 0.25:
    // anything in [0.25, headroom * max_gain] keeps s = 1, so
    // existing stencil and ODE plans (and their golden traces) are
    // untouched.
    for (double m : {0.25, 0.6, 1.0, 4.0}) {
        auto a = la::DenseMatrix::fromRows({{m, 0.0}, {0.0, m}});
        la::Vector b{0.1, 0.1};
        auto out = scaleSystem(a, b, {}, spec());
        EXPECT_DOUBLE_EQ(out.plan.gain_scale, 1.0) << m;
    }
}

TEST(Scaling, SolutionInvariantUnderGainScale)
{
    // Core soundness claim: u = A^-1 b = A_s^-1 b_s.
    auto a = la::DenseMatrix::fromRows({{40, -10}, {-10, 30}});
    la::Vector b{20, 5};
    la::Vector exact = la::solveDense(a, b);
    auto out = scaleSystem(a, b, {}, spec());
    la::Vector scaled_solution = la::solveDense(out.a, out.b);
    la::Vector recovered = unscaleSolution(scaled_solution, out.plan);
    EXPECT_LT(la::maxAbsDiff(recovered, exact), 1e-12);
}

TEST(Scaling, SolutionScaleShrinksReadback)
{
    // With sigma = 4, the mapped problem solves u/4.
    auto a = la::DenseMatrix::fromRows({{1.0, 0.0}, {0.0, 1.0}});
    la::Vector b{3.2, -2.0}; // |u| up to 3.2 > full scale
    auto out = scaleSystem(a, b, {}, spec(), 4.0);
    la::Vector u_hat = la::solveDense(out.a, out.b);
    EXPECT_LE(la::normInf(u_hat), 1.0);
    la::Vector u = unscaleSolution(u_hat, out.plan);
    EXPECT_NEAR(u[0], 3.2, 1e-12);
    EXPECT_NEAR(u[1], -2.0, 1e-12);
}

TEST(Scaling, TimeFactorEqualsGainScale)
{
    auto a = la::DenseMatrix::fromRows({{100, 0}, {0, 100}});
    la::Vector b{1, 1};
    auto out = scaleSystem(a, b, {}, spec());
    EXPECT_DOUBLE_EQ(out.plan.timeFactor(), out.plan.gain_scale);
    // s must pull 100 under 0.95 * 10.
    EXPECT_NEAR(out.plan.gain_scale, 100.0 / 9.5, 1e-12);
}

TEST(Scaling, BiasAloneRaisesSolutionScaleNotGain)
{
    auto a = la::DenseMatrix::fromRows({{1, 0}, {0, 1}});
    la::Vector b{5.0, 0.0}; // bias beyond the DAC range
    auto out = scaleSystem(a, b, {}, spec());
    // b never touches s: gains stay a pure function of (A, spec) so
    // rebinding a new RHS ships no multiplier writes. The DAC range
    // floors sigma instead, pinning b_s at full scale.
    EXPECT_DOUBLE_EQ(out.plan.gain_scale, 1.0);
    EXPECT_GT(out.plan.solution_scale, 1.0);
    EXPECT_LE(la::normInf(out.b), 1.0);
    EXPECT_NEAR(la::normInf(out.b), 0.95, 1e-12);
}

TEST(Scaling, InitialGuessScaledAndClipped)
{
    auto a = la::DenseMatrix::fromRows({{1, 0}, {0, 1}});
    la::Vector b{0.1, 0.1};
    la::Vector u0{4.0, 0.5};
    auto out = scaleSystem(a, b, u0, spec(), 2.0);
    // 4.0 / 2.0 = 2.0 clips to full scale; 0.5 / 2 = 0.25 passes.
    EXPECT_DOUBLE_EQ(out.u0[0], 1.0);
    EXPECT_DOUBLE_EQ(out.u0[1], 0.25);
}

TEST(Scaling, EmptyGuessBecomesZeros)
{
    auto a = la::DenseMatrix::fromRows({{1, 0}, {0, 1}});
    la::Vector b{0.1, 0.1};
    auto out = scaleSystem(a, b, {}, spec());
    EXPECT_EQ(out.u0.size(), 2u);
    EXPECT_DOUBLE_EQ(out.u0[0], 0.0);
}

TEST(ScalingDeath, DimensionMismatchFatal)
{
    auto a = la::DenseMatrix::fromRows({{1, 0}, {0, 1}});
    EXPECT_EXIT(scaleSystem(a, la::Vector(3), {}, spec()),
                ::testing::ExitedWithCode(1), "dimension");
}

TEST(ScalingDeath, NonPositiveSigmaFatal)
{
    auto a = la::DenseMatrix::fromRows({{1}});
    EXPECT_EXIT(scaleSystem(a, la::Vector(1), {}, spec(), 0.0),
                ::testing::ExitedWithCode(1), "positive");
}

} // namespace
} // namespace aa::compiler
