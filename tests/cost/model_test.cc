#include <gtest/gtest.h>

#include <cmath>

#include "aa/cost/model.hh"

namespace aa::cost {
namespace {

TEST(Table2, PrototypeValuesMatchThePaper)
{
    ComponentTable t;
    EXPECT_DOUBLE_EQ(t.integrator.power_w, 28e-6);
    EXPECT_DOUBLE_EQ(t.integrator.area_mm2, 0.040);
    EXPECT_DOUBLE_EQ(t.fanout.power_w, 37e-6);
    EXPECT_DOUBLE_EQ(t.multiplier.area_mm2, 0.050);
    EXPECT_DOUBLE_EQ(t.adc.core_area_fraction, 0.83);
    EXPECT_DOUBLE_EQ(t.dac.core_power_fraction, 1.00);
}

TEST(Table2, ScalingAtAlphaOneIsIdentity)
{
    ComponentTable t;
    EXPECT_DOUBLE_EQ(t.integrator.powerAt(1.0),
                     t.integrator.power_w);
    EXPECT_DOUBLE_EQ(t.adc.areaAt(1.0), t.adc.area_mm2);
}

TEST(Table2, OnlyCoreFractionScales)
{
    ComponentTable t;
    // Integrator: 80% core power. At alpha = 4:
    // 28u * (0.8*4 + 0.2) = 28u * 3.4.
    EXPECT_NEAR(t.integrator.powerAt(4.0), 28e-6 * 3.4, 1e-12);
    // DAC is 100% core power: scales fully.
    EXPECT_NEAR(t.dac.powerAt(4.0), 4.6e-6 * 4.0, 1e-12);
}

TEST(PoissonShape, CountsExact)
{
    PoissonShape s2{2, 4};
    EXPECT_EQ(s2.gridPoints(), 16u);
    EXPECT_EQ(s2.offDiagonalNnz(), 2u * 2u * 3u * 4u); // 48
    EXPECT_EQ(s2.nnz(), 64u);

    PoissonShape s3{3, 3};
    EXPECT_EQ(s3.gridPoints(), 27u);
    EXPECT_EQ(s3.offDiagonalNnz(), 2u * 3u * 2u * 9u); // 108
}

TEST(PoissonShape, LambdaMinScaledShrinksWithGridSize)
{
    PoissonShape small{2, 8};
    PoissonShape big{2, 32};
    double g = 32.0;
    EXPECT_GT(small.lambdaMinScaled(g), big.lambdaMinScaled(g));
    // Asymptotically proportional to 1/L^2.
    double ratio =
        small.lambdaMinScaled(g) / big.lambdaMinScaled(g);
    double expected = std::pow(33.0 / 9.0, 2);
    EXPECT_NEAR(ratio, expected, 0.05 * expected);
}

TEST(PoissonShape, ConditionNumberGrowsAsLSquared)
{
    PoissonShape s{2, 15};
    PoissonShape s2{2, 31};
    double ratio = s2.conditionNumber() / s.conditionNumber();
    EXPECT_NEAR(ratio, 4.0, 0.5);
}

TEST(Design, AlphaAgainstPrototype)
{
    EXPECT_DOUBLE_EQ(prototypeDesign().alpha(), 1.0);
    EXPECT_DOUBLE_EQ(design80kHz().alpha(), 4.0);
    EXPECT_DOUBLE_EQ(design320kHz().alpha(), 16.0);
    EXPECT_DOUBLE_EQ(design1300kHz().alpha(), 65.0);
}

TEST(Design, PowerMatchesFigure10Anchor)
{
    // Figure 10: the 20 KHz design uses ~0.7 W at 2048 grid points.
    auto design = prototypeDesign();
    PoissonShape shape{2, 45}; // 2025 points
    double p = design.powerWatts(design.unitsFor(shape));
    EXPECT_GT(p, 0.5);
    EXPECT_LT(p, 1.0);
}

TEST(Design, SolveTimeLinearInGridPoints)
{
    auto design = prototypeDesign();
    double t1 = design.solveTimeSeconds({2, 16});
    double t2 = design.solveTimeSeconds({2, 32});
    // N quadruples (ish); solve time must scale ~(L+1)^2.
    EXPECT_NEAR(t2 / t1, std::pow(33.0 / 17.0, 2), 0.2);
}

TEST(Design, BandwidthSpeedsSolvesProportionally)
{
    PoissonShape shape{2, 20};
    double t20 = prototypeDesign().solveTimeSeconds(shape);
    double t80 = design80kHz().solveTimeSeconds(shape);
    // 80 KHz also has a 12-bit ADC: 13/9 more decades to converge.
    EXPECT_NEAR(t20 / t80, 4.0 * 9.0 / 13.0, 0.05);
}

TEST(Design, HighBandwidthHitsDieCeilingSooner)
{
    std::size_t cap20 = prototypeDesign().maxGridPoints(2);
    std::size_t cap80 = design80kHz().maxGridPoints(2);
    std::size_t cap320 = design320kHz().maxGridPoints(2);
    std::size_t cap1300 = design1300kHz().maxGridPoints(2);
    EXPECT_GT(cap20, cap80);
    EXPECT_GT(cap80, cap320);
    EXPECT_GT(cap320, cap1300);
    // Figure 9's story: the fast designs cut off in the hundreds.
    EXPECT_LT(cap320, 650u);
    EXPECT_GT(cap80, 650u);
}

TEST(Design, ParityNearPaperCrossover)
{
    // The headline anchor: at ~650 grid points the 20 KHz design's
    // solve time is within ~2x of the modelled Xeon CG time.
    PoissonShape shape{2, 25}; // 625 points
    double analog = prototypeDesign().solveTimeSeconds(shape);
    // CG iterations to the 1/256 rule at this size: ~sqrt(kappa).
    CpuModel cpu;
    double kappa = shape.conditionNumber();
    auto iters = static_cast<std::size_t>(
        0.5 * std::sqrt(kappa) * std::log(2.0 * 256.0));
    double digital = cpu.timeSeconds(shape.gridPoints(), iters);
    EXPECT_GT(analog / digital, 0.3);
    EXPECT_LT(analog / digital, 3.0);
}

TEST(Design, EnergyEfficiencySaturatesPast80kHz)
{
    // Figure 12: "efficiency gains cease after bandwidth reaches
    // 80 KHz". Energy = power x time; past the point where core
    // power dominates, both scale reciprocally.
    // Compare iso-precision designs (12-bit ADCs throughout) so the
    // bandwidth effect is isolated.
    PoissonShape shape{2, 20};
    double e20 = AcceleratorDesign(20e3, 12).solveEnergyJoules(shape);
    double e80 = AcceleratorDesign(80e3, 12).solveEnergyJoules(shape);
    double e320 =
        AcceleratorDesign(320e3, 12).solveEnergyJoules(shape);
    double gain_20_80 = e20 / e80;
    double gain_80_320 = e80 / e320;
    EXPECT_GT(gain_20_80, gain_80_320);
    EXPECT_LT(gain_80_320, 1.2);
}

TEST(Design, UnitAccountingFollowsAssumptions)
{
    CostAssumptions keep_diag;
    keep_diag.fold_diagonal_into_integrator = false;
    AcceleratorDesign folded(20e3, 8);
    AcceleratorDesign unfolded(20e3, 8, 32.0, keep_diag);
    PoissonShape shape{2, 10};
    EXPECT_LT(folded.unitsFor(shape).multipliers,
              unfolded.unitsFor(shape).multipliers);
}

TEST(CpuModel, TwentyCyclesPerRowIteration)
{
    CpuModel cpu;
    // 1000 rows, 100 iterations: 2e6 cycles at 2.67 GHz.
    EXPECT_NEAR(cpu.timeSeconds(1000, 100), 2e6 / 2.67e9, 1e-12);
}

TEST(GpuModel, EnergyPerFma)
{
    GpuModel gpu;
    EXPECT_NEAR(gpu.energyJoules(1000, 100),
                225e-12 * 10.0 * 1000 * 100, 1e-15);
}

TEST(Fleet, ScalesLinearlyInRacksAndDies)
{
    AcceleratorDesign design = design320kHz();
    PoissonShape shape{2, 30};
    FleetCost one = fleetCost(design, shape, {1, 1, 0.0});
    FleetCost fleet = fleetCost(design, shape, {4, 3, 0.0});
    EXPECT_EQ(fleet.dies, 12u);
    EXPECT_NEAR(fleet.total_area_mm2, 12.0 * one.total_area_mm2,
                1e-9);
    EXPECT_NEAR(fleet.total_power_w, 12.0 * one.total_power_w, 1e-9);
    EXPECT_NEAR(fleet.solves_per_second, 12.0 * one.solves_per_second,
                1e-9 * fleet.solves_per_second);
}

TEST(Fleet, DensityMetricsInvariantInFleetSize)
{
    // solves/s per mm^2 and per W depend on the die design point,
    // not on how many of them the fleet deploys (overhead = 0).
    AcceleratorDesign design = design80kHz();
    PoissonShape shape{2, 20};
    FleetCost one = fleetCost(design, shape, {1, 1, 0.0});
    FleetCost fleet = fleetCost(design, shape, {8, 2, 0.0});
    EXPECT_NEAR(fleet.solvesPerSecondPerMm2(),
                one.solvesPerSecondPerMm2(),
                1e-12 * one.solvesPerSecondPerMm2());
    EXPECT_NEAR(fleet.solvesPerSecondPerWatt(),
                one.solvesPerSecondPerWatt(),
                1e-12 * one.solvesPerSecondPerWatt());
}

TEST(Fleet, RackOverheadLowersPowerDensity)
{
    AcceleratorDesign design = design80kHz();
    PoissonShape shape{2, 20};
    FleetCost lean = fleetCost(design, shape, {4, 2, 0.0});
    FleetCost loaded = fleetCost(design, shape, {4, 2, 25.0});
    EXPECT_NEAR(loaded.total_power_w, lean.total_power_w + 100.0,
                1e-9);
    EXPECT_LT(loaded.solvesPerSecondPerWatt(),
              lean.solvesPerSecondPerWatt());
    EXPECT_NEAR(loaded.solvesPerSecondPerMm2(),
                lean.solvesPerSecondPerMm2(),
                1e-12 * lean.solvesPerSecondPerMm2());
}

TEST(DesignDeath, BadBandwidthFatal)
{
    EXPECT_EXIT(AcceleratorDesign(0.0), ::testing::ExitedWithCode(1),
                "bandwidth");
}

} // namespace
} // namespace aa::cost
