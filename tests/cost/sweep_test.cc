#include <gtest/gtest.h>

#include <cmath>

#include "aa/cost/model.hh"

namespace aa::cost {
namespace {

/** Property: power, area, and solve time vary monotonically with
 *  problem size for every design point and dimension. */
class MonotoneInN
    : public ::testing::TestWithParam<std::tuple<double, std::size_t>>
{};

TEST_P(MonotoneInN, PowerAreaTimeGrowWithGrid)
{
    auto [bandwidth, dim] = GetParam();
    AcceleratorDesign design(bandwidth, 12);
    double prev_power = 0.0, prev_area = 0.0, prev_time = 0.0;
    for (std::size_t l = 3; l <= 24; l += 3) {
        PoissonShape shape{dim, l};
        auto units = design.unitsFor(shape);
        double p = design.powerWatts(units);
        double a = design.areaMm2(units);
        double t = design.solveTimeSeconds(shape);
        EXPECT_GT(p, prev_power) << "l=" << l;
        EXPECT_GT(a, prev_area) << "l=" << l;
        EXPECT_GT(t, prev_time) << "l=" << l;
        prev_power = p;
        prev_area = a;
        prev_time = t;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Designs, MonotoneInN,
    ::testing::Combine(::testing::Values(20e3, 80e3, 1.3e6),
                       ::testing::Values<std::size_t>(1, 2, 3)));

/** Property: at fixed problem, higher bandwidth means more power,
 *  more area, less time; energy is bounded between the extremes. */
class MonotoneInBandwidth
    : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(MonotoneInBandwidth, TradeoffsOrdered)
{
    std::size_t l = GetParam();
    PoissonShape shape{2, l};
    double prev_power = 0.0, prev_area = 0.0;
    double prev_time = 1e9;
    for (double bw : {20e3, 80e3, 320e3, 1.3e6}) {
        AcceleratorDesign design(bw, 12);
        auto units = design.unitsFor(shape);
        double p = design.powerWatts(units);
        double a = design.areaMm2(units);
        double t = design.solveTimeSeconds(shape);
        EXPECT_GT(p, prev_power);
        EXPECT_GT(a, prev_area);
        EXPECT_LT(t, prev_time);
        prev_power = p;
        prev_area = a;
        prev_time = t;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MonotoneInBandwidth,
                         ::testing::Values<std::size_t>(5, 10, 20));

TEST(CapacityInverse, MaxGridPointsConsistentWithArea)
{
    for (double bw : {20e3, 80e3, 320e3}) {
        AcceleratorDesign design(bw, 12);
        std::size_t cap = design.maxGridPoints(2);
        ASSERT_GT(cap, 0u);
        // The capacity's side length fits; one more side does not.
        auto side = static_cast<std::size_t>(std::sqrt(
            static_cast<double>(cap)));
        EXPECT_LE(design.areaMm2(design.unitsFor(PoissonShape{2, side})),
                  kDieCeilingMm2);
        EXPECT_GT(design.areaMm2(design.unitsFor(PoissonShape{2, side + 1})),
                  kDieCeilingMm2);
    }
}

TEST(CapacityInverse, TinyBudgetGivesZero)
{
    AcceleratorDesign design(1.3e6, 12);
    EXPECT_EQ(design.maxGridPoints(2, 0.01), 0u);
}

TEST(LambdaMin, HigherGainConvergesFaster)
{
    PoissonShape shape{2, 16};
    EXPECT_GT(shape.lambdaMinScaled(32.0),
              shape.lambdaMinScaled(8.0));
    // And exactly linearly.
    EXPECT_NEAR(shape.lambdaMinScaled(32.0) /
                    shape.lambdaMinScaled(8.0),
                4.0, 1e-12);
}

TEST(SolveTime, MoreAdcBitsTakeLonger)
{
    PoissonShape shape{2, 16};
    AcceleratorDesign bits8(20e3, 8);
    AcceleratorDesign bits12(20e3, 12);
    EXPECT_NEAR(bits12.solveTimeSeconds(shape) /
                    bits8.solveTimeSeconds(shape),
                13.0 / 9.0, 1e-12);
}

TEST(Energy, EqualsPowerTimesTime)
{
    AcceleratorDesign design(80e3, 12);
    PoissonShape shape{2, 12};
    EXPECT_DOUBLE_EQ(design.solveEnergyJoules(shape),
                     design.powerWatts(design.unitsFor(shape)) *
                         design.solveTimeSeconds(shape));
}

TEST(Units, HigherDimensionCostsMorePerPoint)
{
    AcceleratorDesign design(20e3, 8);
    // Same N = 64: 1D (l=64) vs 2D (l=8) vs 3D (l=4).
    auto u1 = design.unitsFor({1, 64});
    auto u2 = design.unitsFor({2, 8});
    auto u3 = design.unitsFor({3, 4});
    EXPECT_LT(u1.multipliers, u2.multipliers);
    EXPECT_LT(u2.multipliers, u3.multipliers);
    EXPECT_EQ(u1.integrators, u2.integrators);
    EXPECT_EQ(u2.integrators, u3.integrators);
}

} // namespace
} // namespace aa::cost
