#include <gtest/gtest.h>

#include "aa/cost/digital.hh"

namespace aa::cost {
namespace {

TEST(MeasureCg, ConvergesAndTimes)
{
    auto m = measureCgPoisson(2, 10, 8);
    EXPECT_TRUE(m.converged);
    EXPECT_GT(m.iterations, 3u);
    EXPECT_GT(m.wall_seconds, 0.0);
    EXPECT_GT(m.model_seconds, 0.0);
    EXPECT_GT(m.flops, 0u);
}

TEST(MeasureCg, ModelTimeUsesCycleFormula)
{
    CpuModel cpu;
    auto m = measureCgPoisson(2, 8, 8, cpu, 1);
    double expected =
        cpu.timeSeconds(64, m.iterations);
    EXPECT_DOUBLE_EQ(m.model_seconds, expected);
}

TEST(MeasureCg, TighterPrecisionNeedsMoreIterations)
{
    auto m8 = measureCgPoisson(2, 12, 8, {}, 1);
    auto m12 = measureCgPoisson(2, 12, 12, {}, 1);
    EXPECT_GE(m12.iterations, m8.iterations);
}

TEST(MeasureCg, IterationsGrowWithGridSize)
{
    auto small = measureCgPoisson(2, 8, 8, {}, 1);
    auto large = measureCgPoisson(2, 24, 8, {}, 1);
    EXPECT_GT(large.iterations, small.iterations);
}

TEST(MeasureCg, ThreeDimensionalProblemsWork)
{
    auto m = measureCgPoisson(3, 6, 8, {}, 1);
    EXPECT_TRUE(m.converged);
    EXPECT_GT(m.iterations, 1u);
}

} // namespace
} // namespace aa::cost
