#include <gtest/gtest.h>

#include <cmath>

#include "aa/chip/calibration.hh"
#include "aa/chip/chip.hh"

namespace aa::chip {
namespace {

ChipConfig
noisyConfig(std::uint64_t seed)
{
    ChipConfig cfg;
    cfg.die_seed = seed;
    cfg.spec.adc_noise_sigma = 5e-4;
    // Realistic variation: the whole point of calibrating.
    cfg.spec.variation.enabled = true;
    return cfg;
}

TEST(Calibration, TrimsEveryTrimmablePort)
{
    Chip chip(noisyConfig(3));
    auto report = calibrate(chip.netlist(), chip.simulator(),
                            0xfeed);
    // 4 integrators + 8 multipliers + 8 fanouts x 2 copies + 2 DACs.
    EXPECT_EQ(report.trims.size(), 4u + 8u + 16u + 2u);
    EXPECT_GT(report.measurements, 0u);
}

TEST(Calibration, ReducesDcErrorOnMultipliers)
{
    Chip chip(noisyConfig(7));
    auto &sim = chip.simulator();
    auto &net = chip.netlist();

    // Uncalibrated DC error at mid scale, across multipliers.
    double before = 0.0;
    for (auto m : chip.multipliers()) {
        net.params(m).gain = 1.0;
        before += std::fabs(sim.dcTransfer(m, 0.5) - 0.5);
    }
    calibrate(net, sim, 0xfeed);
    double after = 0.0;
    for (auto m : chip.multipliers()) {
        net.params(m).gain = 1.0;
        after += std::fabs(sim.dcTransfer(m, 0.5) - 0.5);
    }
    EXPECT_LT(after, before);
}

TEST(Calibration, ResidualsBoundedByAdcResolution)
{
    Chip chip(noisyConfig(5));
    auto report =
        calibrate(chip.netlist(), chip.simulator(), 0xfeed);
    double lsb = 2.0 / 255.0;
    for (const auto &rec : report.trims) {
        // Binary search through the ADC cannot do better than ~1
        // LSB; it must get within a few.
        EXPECT_LT(rec.offset_residual, 4.0 * lsb);
        EXPECT_LT(rec.gain_residual, 4.0 * lsb);
    }
}

TEST(Calibration, DifferentDiesGetDifferentTrims)
{
    Chip chip1(noisyConfig(100));
    Chip chip2(noisyConfig(200));
    auto r1 = calibrate(chip1.netlist(), chip1.simulator(), 1);
    auto r2 = calibrate(chip2.netlist(), chip2.simulator(), 1);
    ASSERT_EQ(r1.trims.size(), r2.trims.size());
    bool any_diff = false;
    for (std::size_t i = 0; i < r1.trims.size(); ++i) {
        any_diff |= r1.trims[i].offset_code != r2.trims[i].offset_code;
        any_diff |= r1.trims[i].gain_code != r2.trims[i].gain_code;
    }
    EXPECT_TRUE(any_diff);
}

TEST(Calibration, ImprovesComputationAccuracy)
{
    // The paper's motivation: an uncalibrated die solves less
    // accurately than a calibrated one. Solve u = 0.25 both ways.
    auto solve_error = [](bool do_init) {
        ChipConfig cfg = noisyConfig(17);
        Chip chip(cfg);
        if (do_init)
            chip.init();
        auto integ = chip.integrators()[0];
        auto fan = chip.fanouts()[0];
        auto mul = chip.multipliers()[0];
        auto dac = chip.dacs()[0];
        auto adc = chip.adcs()[0];
        const auto &net = chip.netlist();
        chip.setConn(net.out(integ), net.in(fan));
        chip.setConn(net.out(fan, 0), net.in(adc));
        chip.setConn(net.out(fan, 1), net.in(mul));
        chip.setConn(net.out(mul), net.in(integ));
        chip.setConn(net.out(dac), net.in(integ));
        chip.setMulGain(mul, -2.0);
        chip.setDacConstant(dac, 0.5);
        chip.setTimeout(2000);
        chip.cfgCommit();
        chip.execStart();
        return std::fabs(chip.analogAvg(adc, 16) - 0.25);
    };
    double uncal = solve_error(false);
    double cal = solve_error(true);
    EXPECT_LT(cal, uncal + 1e-9);
    EXPECT_LT(cal, 0.02);
}

TEST(Calibration, MarksChipCalibrated)
{
    Chip chip(noisyConfig(1));
    EXPECT_FALSE(chip.calibrated());
    chip.init();
    EXPECT_TRUE(chip.calibrated());
}

} // namespace
} // namespace aa::chip
