#include <gtest/gtest.h>

#include "aa/chip/chip.hh"

namespace aa::chip {
namespace {

ChipConfig
testConfig()
{
    ChipConfig cfg;
    cfg.spec.variation.enabled = false;
    cfg.spec.adc_noise_sigma = 0.0;
    return cfg;
}

/** Configure a loop whose steady state is `target` (may overflow). */
void
configureLoop(Chip &chip, double gain, double bias)
{
    auto integ = chip.integrators()[0];
    auto fan = chip.fanouts()[0];
    auto mul = chip.multipliers()[0];
    auto dac = chip.dacs()[0];
    auto adc = chip.adcs()[0];
    const auto &net = chip.netlist();
    chip.setConn(net.out(integ), net.in(fan));
    chip.setConn(net.out(fan, 0), net.in(adc));
    chip.setConn(net.out(fan, 1), net.in(mul));
    chip.setConn(net.out(mul), net.in(integ));
    chip.setConn(net.out(dac), net.in(integ));
    chip.setMulGain(mul, gain);
    chip.setDacConstant(dac, bias);
    chip.setTimeout(2000);
    chip.cfgCommit();
}

TEST(Exceptions, CleanRunReportsNone)
{
    Chip chip(testConfig());
    configureLoop(chip, -2.0, 0.5); // steady 0.25: in range
    chip.execStart();
    auto exp = chip.readExp();
    for (auto v : exp)
        EXPECT_EQ(v, 0);
    EXPECT_FALSE(chip.anyException());
}

TEST(Exceptions, OverflowingSteadyStateLatches)
{
    Chip chip(testConfig());
    // Steady state would be 0.5/0.4 = 1.25 > full scale.
    configureLoop(chip, -0.4, 0.5);
    auto res = chip.execStart();
    EXPECT_TRUE(res.any_exception);
    EXPECT_TRUE(chip.anyException());
}

TEST(Exceptions, VectorIdentifiesTheOffendingUnit)
{
    Chip chip(testConfig());
    configureLoop(chip, -0.4, 0.5);
    chip.execStart();
    auto exp = chip.readExp();
    // The integrator that saturated is flagged.
    EXPECT_NE(exp[chip.integrators()[0].v], 0);
    // An uninvolved integrator is not.
    EXPECT_EQ(exp[chip.integrators()[3].v], 0);
}

TEST(Exceptions, ClearThenHealthyRunStaysClean)
{
    Chip chip(testConfig());
    configureLoop(chip, -0.4, 0.5);
    chip.execStart();
    ASSERT_TRUE(chip.anyException());

    // Host reaction (Section III-B): scale the problem down, clear,
    // retry. Halving the bias halves the steady state into range.
    chip.clearExceptions();
    chip.setDacConstant(chip.dacs()[0], 0.25);
    chip.cfgCommit();
    auto res = chip.execStart();
    EXPECT_FALSE(res.any_exception);
    EXPECT_NEAR(chip.readAdc(chip.adcs()[0]), 0.625, 0.02);
}

TEST(Exceptions, LatchesAreStickyAcrossReads)
{
    Chip chip(testConfig());
    configureLoop(chip, -0.4, 0.5);
    chip.execStart();
    EXPECT_TRUE(chip.anyException());
    (void)chip.readExp();
    // Reading does not clear.
    EXPECT_TRUE(chip.anyException());
}

} // namespace
} // namespace aa::chip
