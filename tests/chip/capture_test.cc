#include <gtest/gtest.h>

#include <cmath>

#include "aa/chip/chip.hh"

namespace aa::chip {
namespace {

ChipConfig
testConfig()
{
    ChipConfig cfg;
    cfg.spec.variation.enabled = false;
    cfg.spec.adc_noise_sigma = 0.0;
    return cfg;
}

/** Figure-1 loop with the ADC watching u(t). */
void
configureLoop(Chip &chip)
{
    auto integ = chip.integrators()[0];
    auto fan = chip.fanouts()[0];
    auto mul = chip.multipliers()[0];
    auto dac = chip.dacs()[0];
    auto adc = chip.adcs()[0];
    const auto &net = chip.netlist();
    chip.setConn(net.out(integ), net.in(fan));
    chip.setConn(net.out(fan, 0), net.in(adc));
    chip.setConn(net.out(fan, 1), net.in(mul));
    chip.setConn(net.out(mul), net.in(integ));
    chip.setConn(net.out(dac), net.in(integ));
    chip.setMulGain(mul, -2.0);
    chip.setDacConstant(dac, 0.5);
    chip.setTimeout(200); // 200 us
    chip.cfgCommit();
}

TEST(EffectiveAdcBits, FullResolutionAtLowRates)
{
    circuit::AnalogSpec spec;
    EXPECT_EQ(spec.effectiveAdcBits(10.0), spec.adc_bits);
    EXPECT_EQ(spec.effectiveAdcBits(spec.adc_full_res_rate_hz),
              spec.adc_bits);
}

TEST(EffectiveAdcBits, OneBitPerOctaveBeyondFullRes)
{
    circuit::AnalogSpec spec; // 8 bits, full res to 1 kHz
    EXPECT_EQ(spec.effectiveAdcBits(2e3), 7u);
    EXPECT_EQ(spec.effectiveAdcBits(4e3), 6u);
    EXPECT_EQ(spec.effectiveAdcBits(16e3), 4u);
}

TEST(EffectiveAdcBits, FlooredAtMinBits)
{
    circuit::AnalogSpec spec;
    EXPECT_EQ(spec.effectiveAdcBits(1e9), spec.adc_min_bits);
}

TEST(Capture, DigitizesTheTransient)
{
    Chip chip(testConfig());
    configureLoop(chip);
    chip.enableWaveformCapture(1e6, {chip.adcs()[0]});
    chip.execStart();
    const auto &wave = chip.capturedWaveform();
    ASSERT_GT(wave.times.size(), 20u);
    ASSERT_EQ(wave.samples.size(), wave.times.size());
    // The waveform rises from ~0 toward 0.25 — within the coarse
    // resolution fast sampling leaves (1 MS/s floors the ADC at 4
    // effective bits, LSB = 2/15: the paper's Section II-B trade).
    EXPECT_EQ(wave.effective_bits, 4u);
    double half_lsb = 1.0 / 15.0;
    EXPECT_NEAR(wave.samples.front()[0], 0.0, half_lsb + 1e-9);
    EXPECT_NEAR(wave.samples.back()[0], 0.25, half_lsb + 1e-9);
    // Samples are monotone in time.
    for (std::size_t k = 1; k < wave.times.size(); ++k)
        EXPECT_GT(wave.times[k], wave.times[k - 1]);
}

TEST(Capture, FastSamplingCostsResolution)
{
    Chip chip(testConfig());
    configureLoop(chip);

    chip.enableWaveformCapture(1e3, {chip.adcs()[0]});
    chip.execStart();
    auto slow_bits = chip.capturedWaveform().effective_bits;

    chip.enableWaveformCapture(1e6, {chip.adcs()[0]});
    chip.execStart();
    auto fast_bits = chip.capturedWaveform().effective_bits;

    EXPECT_EQ(slow_bits, chip.config().spec.adc_bits);
    EXPECT_LT(fast_bits, slow_bits);

    // Quantization visibly coarsens: the fast capture's distinct
    // levels are limited by its bit width.
    const auto &wave = chip.capturedWaveform();
    std::set<double> levels;
    for (const auto &row : wave.samples)
        levels.insert(row[0]);
    EXPECT_LE(levels.size(),
              static_cast<std::size_t>(1) << fast_bits);
}

TEST(Capture, MatchesScopeAtModerateRate)
{
    Chip chip(testConfig());
    configureLoop(chip);

    // Scope probe of the exact integrator state for reference.
    std::vector<std::pair<double, double>> scope;
    auto &sim = chip.simulator();
    std::size_t idx = sim.stateIndexOf(
        chip.netlist().out(chip.integrators()[0], 0));
    chip.setExecObserver(
        [&](double t, const la::Vector &y) {
            scope.emplace_back(t, y[idx]);
        });
    chip.enableWaveformCapture(2e5, {chip.adcs()[0]});
    chip.execStart();
    chip.setExecObserver(nullptr);

    const auto &wave = chip.capturedWaveform();
    ASSERT_FALSE(wave.times.empty());
    // Each captured sample is close to the nearest scope point
    // (quantization at the effective bits + fanout copy).
    double lsb = 2.0 / static_cast<double>(
                           (1 << wave.effective_bits) - 1);
    for (std::size_t k = 0; k < wave.times.size(); k += 7) {
        double t = wave.times[k];
        auto it = std::lower_bound(
            scope.begin(), scope.end(), t,
            [](const auto &p, double tt) { return p.first < tt; });
        if (it == scope.end())
            break;
        EXPECT_NEAR(wave.samples[k][0], it->second, lsb + 0.01);
    }
}

TEST(Capture, DisableStopsCapturing)
{
    Chip chip(testConfig());
    configureLoop(chip);
    chip.enableWaveformCapture(1e5, {chip.adcs()[0]});
    chip.execStart();
    ASSERT_FALSE(chip.capturedWaveform().times.empty());
    chip.disableWaveformCapture();
    chip.execStart();
    // The result from the earlier capture is preserved, not grown.
    auto n = chip.capturedWaveform().times.size();
    chip.execStart();
    EXPECT_EQ(chip.capturedWaveform().times.size(), n);
}

TEST(CaptureDeath, NonAdcBlockFatal)
{
    Chip chip(testConfig());
    EXPECT_EXIT(chip.enableWaveformCapture(
                    1e3, {chip.integrators()[0]}),
                ::testing::ExitedWithCode(1), "not a");
}

TEST(CaptureDeath, BadRateFatal)
{
    Chip chip(testConfig());
    EXPECT_EXIT(chip.enableWaveformCapture(0.0, {chip.adcs()[0]}),
                ::testing::ExitedWithCode(1), "positive");
}

} // namespace
} // namespace aa::chip
