#include <gtest/gtest.h>

#include "aa/chip/chip.hh"

namespace aa::chip {
namespace {

ChipConfig
testConfig()
{
    ChipConfig cfg;
    cfg.spec.variation.enabled = false;
    cfg.spec.adc_noise_sigma = 0.0;
    return cfg;
}

TEST(ChipGeometry, PrototypeInventory)
{
    ChipGeometry g; // defaults = the prototype
    EXPECT_EQ(g.macroblocks, 4u);
    EXPECT_EQ(g.integrators(), 4u);
    EXPECT_EQ(g.multipliers(), 8u);
    EXPECT_EQ(g.fanouts(), 8u);
    EXPECT_EQ(g.adcs(), 2u);
    EXPECT_EQ(g.dacs(), 2u);
    EXPECT_EQ(g.luts(), 2u);
    EXPECT_EQ(g.extIns(), 4u);
    EXPECT_EQ(g.extOuts(), 4u);
}

TEST(ChipGeometry, SharedUnitsRoundUp)
{
    ChipGeometry g;
    g.macroblocks = 5;
    EXPECT_EQ(g.adcs(), 3u);
}

TEST(Chip, ResourceVectorsMatchGeometry)
{
    Chip chip(testConfig());
    EXPECT_EQ(chip.integrators().size(), 4u);
    EXPECT_EQ(chip.multipliers().size(), 8u);
    EXPECT_EQ(chip.fanouts().size(), 8u);
    EXPECT_EQ(chip.adcs().size(), 2u);
    EXPECT_EQ(chip.dacs().size(), 2u);
    EXPECT_EQ(chip.luts().size(), 2u);
}

TEST(Chip, SolvesOneVariableProblemEndToEnd)
{
    // du/dt = b - a*u via direct chip configuration: u -> 0.25.
    Chip chip(testConfig());
    auto integ = chip.integrators()[0];
    auto fan = chip.fanouts()[0];
    auto mul = chip.multipliers()[0];
    auto dac = chip.dacs()[0];
    auto adc = chip.adcs()[0];
    const auto &net = chip.netlist();

    chip.setConn(net.out(integ), net.in(fan));
    chip.setConn(net.out(fan, 0), net.in(adc));
    chip.setConn(net.out(fan, 1), net.in(mul));
    chip.setConn(net.out(mul), net.in(integ));
    chip.setConn(net.out(dac), net.in(integ));
    chip.setMulGain(mul, -2.0);
    chip.setDacConstant(dac, 0.5);
    chip.setIntInitial(integ, 0.0);
    chip.setTimeout(1000); // 1 ms at the 1 MHz control clock
    chip.cfgCommit();

    auto res = chip.execStart();
    chip.execStop();
    EXPECT_FALSE(res.any_exception);
    EXPECT_NEAR(chip.readAdc(adc), 0.25, 0.01);
}

TEST(Chip, TimeoutSecondsUsesControlClock)
{
    ChipConfig cfg = testConfig();
    cfg.ctrl_clock_hz = 2e6;
    Chip chip(cfg);
    chip.setTimeout(1000);
    EXPECT_DOUBLE_EQ(chip.timeoutSeconds(), 5e-4);
}

TEST(Chip, SteadyDetectStopsBeforeTimeout)
{
    Chip chip(testConfig());
    auto integ = chip.integrators()[0];
    auto mul = chip.multipliers()[0];
    auto fan = chip.fanouts()[0];
    auto dac = chip.dacs()[0];
    const auto &net = chip.netlist();
    chip.setConn(net.out(integ), net.in(fan));
    chip.setConn(net.out(fan, 0), net.in(mul));
    chip.setConn(net.out(mul), net.in(integ));
    chip.setConn(net.out(dac), net.in(integ));
    chip.setMulGain(mul, -2.0);
    chip.setDacConstant(dac, 0.5);
    chip.setTimeout(1'000'000); // a whole second
    chip.setSteadyDetect(1.0);
    chip.cfgCommit();
    auto res = chip.execStart();
    EXPECT_TRUE(res.steady);
    EXPECT_FALSE(res.timed_out);
    EXPECT_LT(res.analog_time, 1.0);
}

TEST(Chip, WriteParallelRegisterHolds)
{
    Chip chip(testConfig());
    chip.writeParallel(0xa5);
    EXPECT_EQ(chip.parallelRegister(), 0xa5);
}

TEST(Chip, ReadSerialReturnsAllAdcCodes)
{
    Chip chip(testConfig());
    auto dac = chip.dacs()[0];
    auto adc0 = chip.adcs()[0];
    const auto &net = chip.netlist();
    chip.setConn(net.out(dac), net.in(adc0));
    chip.setDacConstant(dac, 0.5);
    chip.setTimeout(10);
    chip.cfgCommit();
    chip.execStart();
    auto bytes = chip.readSerial();
    ASSERT_EQ(bytes.size(), 2u); // two 8-bit ADCs
    EXPECT_NEAR(static_cast<double>(bytes[0]), 191.0, 2.0);
    // The second ADC floats at 0 current -> mid-scale code.
    EXPECT_NEAR(static_cast<double>(bytes[1]), 128.0, 2.0);
}

TEST(Chip, ClearConnectionsAllowsRemapping)
{
    Chip chip(testConfig());
    auto dac = chip.dacs()[0];
    auto adc = chip.adcs()[0];
    const auto &net = chip.netlist();
    chip.setConn(net.out(dac), net.in(adc));
    chip.clearConnections();
    // The same output can be reconnected after clearing.
    chip.setConn(net.out(dac), net.in(adc));
    chip.setDacConstant(dac, -0.5);
    chip.setTimeout(10);
    chip.cfgCommit();
    chip.execStart();
    EXPECT_NEAR(chip.readAdc(adc), -0.5, 0.02);
}

TEST(Chip, SetFunctionLoadsQuantizedTable)
{
    Chip chip(testConfig());
    auto lut = chip.luts()[0];
    chip.setFunction(lut, [](double x) { return x * x; });
    const auto &table = chip.netlist().params(lut).table;
    ASSERT_EQ(table.size(), chip.config().spec.lut_depth);
    EXPECT_NEAR(table.front(), 1.0, 0.01); // (-1)^2
    EXPECT_NEAR(table.back(), 1.0, 0.01);
    EXPECT_NEAR(table[table.size() / 2], 0.0, 0.01);
}

TEST(ChipDeath, ExecBeforeCommitFatal)
{
    Chip chip(testConfig());
    chip.setTimeout(10);
    EXPECT_EXIT(chip.execStart(), ::testing::ExitedWithCode(1),
                "cfgCommit");
}

TEST(ChipDeath, ExecWithoutAnyStopFatal)
{
    Chip chip(testConfig());
    chip.cfgCommit();
    EXPECT_EXIT(chip.execStart(), ::testing::ExitedWithCode(1),
                "never stop");
}

TEST(ChipDeath, GainBeyondRangeFatal)
{
    Chip chip(testConfig());
    double over = chip.config().spec.max_gain * 1.01;
    EXPECT_EXIT(chip.setMulGain(chip.multipliers()[0], over),
                ::testing::ExitedWithCode(1), "scale the problem");
}

TEST(ChipDeath, WrongKindHandleFatal)
{
    Chip chip(testConfig());
    EXPECT_EXIT(chip.setMulGain(chip.integrators()[0], 1.0),
                ::testing::ExitedWithCode(1), "not a");
}

TEST(ChipDeath, InitialConditionBeyondFullScaleFatal)
{
    Chip chip(testConfig());
    EXPECT_EXIT(chip.setIntInitial(chip.integrators()[0], 1.5),
                ::testing::ExitedWithCode(1), "full scale");
}

} // namespace
} // namespace aa::chip
