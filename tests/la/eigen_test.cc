#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "aa/la/eigen.hh"

namespace aa::la {
namespace {

TEST(Eigen, DiagonalMatrixExtremes)
{
    auto a = DenseMatrix::fromRows(
        {{1, 0, 0}, {0, 5, 0}, {0, 0, 3}});
    DenseOperator op(a);
    auto lmax = largestEigenvalue(op);
    EXPECT_TRUE(lmax.converged);
    EXPECT_NEAR(lmax.value, 5.0, 1e-7);
    auto lmin = smallestEigenvalueSpd(a);
    EXPECT_TRUE(lmin.converged);
    EXPECT_NEAR(lmin.value, 1.0, 1e-7);
}

TEST(Eigen, TridiagonalLaplacianAnalytic)
{
    // Eigenvalues of the n-point 1D Laplacian (h = 1) are
    // 2 - 2 cos(k*pi/(n+1)).
    std::size_t n = 9;
    DenseMatrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        a(i, i) = 2.0;
        if (i > 0)
            a(i, i - 1) = -1.0;
        if (i + 1 < n)
            a(i, i + 1) = -1.0;
    }
    double expected_min =
        2.0 - 2.0 * std::cos(std::numbers::pi / (double)(n + 1));
    double expected_max =
        2.0 - 2.0 * std::cos((double)n * std::numbers::pi /
                             (double)(n + 1));
    DenseOperator op(a);
    EXPECT_NEAR(largestEigenvalue(op).value, expected_max, 1e-6);
    EXPECT_NEAR(smallestEigenvalueSpd(a).value, expected_min, 1e-6);
}

TEST(Eigen, ConditionNumberIdentityIsOne)
{
    auto id = DenseMatrix::identity(4);
    EXPECT_NEAR(conditionNumberSpd(id), 1.0, 1e-8);
}

TEST(Eigen, ConditionNumberDiagonal)
{
    auto a = DenseMatrix::fromRows({{10, 0}, {0, 0.1}});
    EXPECT_NEAR(conditionNumberSpd(a), 100.0, 1e-5);
}

TEST(Eigen, ConvergesFromFixedSeeds)
{
    auto a = DenseMatrix::fromRows({{4, 1}, {1, 3}});
    for (std::uint64_t seed : {1u, 7u, 99u}) {
        EigenOptions opts;
        opts.seed = seed;
        auto est = smallestEigenvalueSpd(a, opts);
        EXPECT_TRUE(est.converged);
        // Exact: (7 - sqrt(5)) / 2.
        EXPECT_NEAR(est.value, (7.0 - std::sqrt(5.0)) / 2.0, 1e-7);
    }
}

TEST(EigenDeath, SmallestOnIndefiniteIsFatal)
{
    auto a = DenseMatrix::fromRows({{1, 2}, {2, 1}});
    EXPECT_EXIT(smallestEigenvalueSpd(a),
                ::testing::ExitedWithCode(1), "not SPD");
}

} // namespace
} // namespace aa::la
