#include <gtest/gtest.h>

#include <cmath>

#include "aa/common/rng.hh"
#include "aa/la/direct.hh"

namespace aa::la {
namespace {

DenseMatrix
randomSpd(std::size_t n, std::uint64_t seed)
{
    // A = B^T B + n*I is comfortably SPD.
    aa::Rng rng(seed);
    DenseMatrix b(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            b(i, j) = rng.uniform(-1.0, 1.0);
    DenseMatrix a = b.transpose() * b;
    for (std::size_t i = 0; i < n; ++i)
        a(i, i) += static_cast<double>(n);
    return a;
}

TEST(Cholesky, FactorsAndSolves2x2)
{
    auto a = DenseMatrix::fromRows({{4, 2}, {2, 3}});
    auto chol = Cholesky::factor(a);
    ASSERT_TRUE(chol.has_value());
    Vector x = chol->solve({2, 3});
    // Check A x = b.
    Vector ax = a.apply(x);
    EXPECT_NEAR(ax[0], 2.0, 1e-12);
    EXPECT_NEAR(ax[1], 3.0, 1e-12);
}

TEST(Cholesky, RejectsIndefinite)
{
    auto a = DenseMatrix::fromRows({{1, 2}, {2, 1}});
    EXPECT_FALSE(Cholesky::factor(a).has_value());
}

TEST(Cholesky, RejectsSingular)
{
    auto a = DenseMatrix::fromRows({{1, 1}, {1, 1}});
    EXPECT_FALSE(Cholesky::factor(a).has_value());
}

TEST(Cholesky, LowerTimesTransposeReconstructs)
{
    auto a = randomSpd(6, 101);
    auto chol = Cholesky::factor(a);
    ASSERT_TRUE(chol.has_value());
    const auto &l = chol->lower();
    auto recon = l * l.transpose();
    EXPECT_LT(recon.frobeniusDiff(a), 1e-10);
}

TEST(Cholesky, LogDetMatchesLu)
{
    auto a = randomSpd(5, 55);
    auto chol = Cholesky::factor(a);
    auto lu = Lu::factor(a);
    ASSERT_TRUE(chol && lu);
    EXPECT_NEAR(chol->logDet(), std::log(lu->determinant()), 1e-9);
}

TEST(Lu, SolvesNonsymmetric)
{
    auto a = DenseMatrix::fromRows({{0, 2, 1}, {1, 1, 0}, {3, 0, 1}});
    Vector b{5, 3, 7};
    auto lu = Lu::factor(a);
    ASSERT_TRUE(lu.has_value());
    Vector x = lu->solve(b);
    Vector ax = a.apply(x);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(ax[i], b[i], 1e-12);
}

TEST(Lu, PivotingHandlesZeroLeadingEntry)
{
    auto a = DenseMatrix::fromRows({{0, 1}, {1, 0}});
    auto lu = Lu::factor(a);
    ASSERT_TRUE(lu.has_value());
    EXPECT_NEAR(lu->determinant(), -1.0, 1e-12);
}

TEST(Lu, DetectsSingular)
{
    auto a = DenseMatrix::fromRows({{1, 2}, {2, 4}});
    EXPECT_FALSE(Lu::factor(a).has_value());
}

TEST(Lu, DeterminantOfDiagonal)
{
    auto a = DenseMatrix::fromRows({{2, 0}, {0, 5}});
    auto lu = Lu::factor(a);
    ASSERT_TRUE(lu.has_value());
    EXPECT_NEAR(lu->determinant(), 10.0, 1e-12);
}

TEST(SolveDense, RandomSystemsRoundTrip)
{
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        auto a = randomSpd(8, seed);
        aa::Rng rng(seed + 100);
        Vector x_true(8);
        for (auto &v : x_true)
            v = rng.uniform(-5.0, 5.0);
        Vector b = a.apply(x_true);
        Vector x = solveDense(a, b);
        EXPECT_LT(maxAbsDiff(x, x_true), 1e-9);
    }
}

TEST(Inverse, TimesOriginalIsIdentity)
{
    auto a = randomSpd(5, 77);
    auto inv = inverse(a);
    auto prod = a * inv;
    EXPECT_LT(prod.frobeniusDiff(DenseMatrix::identity(5)), 1e-9);
}

TEST(SolveDenseDeath, SingularIsFatal)
{
    auto a = DenseMatrix::fromRows({{1, 1}, {1, 1}});
    EXPECT_EXIT(solveDense(a, {1, 1}), ::testing::ExitedWithCode(1),
                "singular");
}

} // namespace
} // namespace aa::la
