#include <gtest/gtest.h>

#include "aa/la/csr_matrix.hh"

namespace aa::la {
namespace {

CsrMatrix
sample3x3()
{
    // [ 4 -1  0]
    // [-1  4 -1]
    // [ 0 -1  4]
    return CsrMatrix::fromTriplets(3, 3,
                                   {{0, 0, 4},
                                    {0, 1, -1},
                                    {1, 0, -1},
                                    {1, 1, 4},
                                    {1, 2, -1},
                                    {2, 1, -1},
                                    {2, 2, 4}});
}

TEST(CsrMatrix, BuildAndDims)
{
    auto m = sample3x3();
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m.nnz(), 7u);
}

TEST(CsrMatrix, DuplicateTripletsCoalesce)
{
    auto m = CsrMatrix::fromTriplets(
        2, 2, {{0, 0, 1.0}, {0, 0, 2.0}, {1, 1, 5.0}});
    EXPECT_EQ(m.nnz(), 2u);
    EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
}

TEST(CsrMatrix, UnsortedTripletsSort)
{
    auto m = CsrMatrix::fromTriplets(
        2, 2, {{1, 1, 4.0}, {0, 1, 2.0}, {0, 0, 1.0}});
    EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(m.at(1, 1), 4.0);
}

TEST(CsrMatrix, ApplyMatchesDense)
{
    auto m = sample3x3();
    Vector x{1, 2, 3};
    Vector via_dense = m.toDense().apply(x);
    Vector direct = m.apply(x);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_DOUBLE_EQ(direct[i], via_dense[i]);
}

TEST(CsrMatrix, ApplyAddAccumulates)
{
    auto m = CsrMatrix::identity(3);
    Vector x{1, 2, 3};
    Vector y{10, 10, 10};
    m.applyAdd(2.0, x, y);
    EXPECT_EQ(y, (Vector{12, 14, 16}));
}

TEST(CsrMatrix, StructuralZeroLookup)
{
    auto m = sample3x3();
    EXPECT_DOUBLE_EQ(m.at(0, 2), 0.0);
    EXPECT_DOUBLE_EQ(m.at(2, 0), 0.0);
}

TEST(CsrMatrix, DiagonalExtraction)
{
    auto m = sample3x3();
    EXPECT_EQ(m.diagonal(), (Vector{4, 4, 4}));
}

TEST(CsrMatrix, RowSpans)
{
    auto m = sample3x3();
    auto cols = m.rowCols(1);
    auto vals = m.rowVals(1);
    ASSERT_EQ(cols.size(), 3u);
    EXPECT_EQ(cols[0], 0u);
    EXPECT_EQ(cols[1], 1u);
    EXPECT_EQ(cols[2], 2u);
    EXPECT_DOUBLE_EQ(vals[1], 4.0);
}

TEST(CsrMatrix, MaxAbsAndScale)
{
    auto m = sample3x3();
    EXPECT_DOUBLE_EQ(m.maxAbs(), 4.0);
    m.scaleValues(0.5);
    EXPECT_DOUBLE_EQ(m.maxAbs(), 2.0);
    EXPECT_DOUBLE_EQ(m.at(0, 1), -0.5);
}

TEST(CsrMatrix, SymmetryChecks)
{
    EXPECT_TRUE(sample3x3().isSymmetric());
    auto asym = CsrMatrix::fromTriplets(2, 2,
                                        {{0, 1, 1.0}, {1, 1, 2.0}});
    EXPECT_FALSE(asym.isSymmetric());
}

TEST(CsrMatrix, DiagonalDominance)
{
    EXPECT_TRUE(sample3x3().isDiagonallyDominant());
    auto weak = CsrMatrix::fromTriplets(
        2, 2, {{0, 0, 1.0}, {0, 1, 5.0}, {1, 1, 2.0}});
    EXPECT_FALSE(weak.isDiagonallyDominant());
}

TEST(CsrMatrix, FromDenseDropsZeros)
{
    auto d = DenseMatrix::fromRows({{1, 0}, {0, 2}});
    auto m = CsrMatrix::fromDense(d);
    EXPECT_EQ(m.nnz(), 2u);
}

TEST(CsrMatrix, PrincipalSubmatrix)
{
    auto m = sample3x3();
    auto sub = m.principalSubmatrix({0, 2});
    EXPECT_EQ(sub.rows(), 2u);
    EXPECT_DOUBLE_EQ(sub.at(0, 0), 4.0);
    EXPECT_DOUBLE_EQ(sub.at(1, 1), 4.0);
    // (0,2) is a structural zero in the parent: no coupling survives.
    EXPECT_DOUBLE_EQ(sub.at(0, 1), 0.0);

    auto mid = m.principalSubmatrix({1, 2});
    EXPECT_DOUBLE_EQ(mid.at(0, 1), -1.0);
}

TEST(CsrMatrixDeath, OutOfRangeTripletFatal)
{
    EXPECT_EXIT(CsrMatrix::fromTriplets(2, 2, {{2, 0, 1.0}}),
                ::testing::ExitedWithCode(1), "outside");
}

TEST(CsrMatrixDeath, UnsortedSubmatrixIndicesPanic)
{
    auto m = sample3x3();
    EXPECT_DEATH(m.principalSubmatrix({2, 0}), "sorted");
}

} // namespace
} // namespace aa::la
