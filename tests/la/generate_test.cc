/**
 * @file
 * The controlled-conditioning generator contract. spdLogSpectrum's
 * whole reason to exist is that its three knobs are exact:
 * (n, kappa, seed) reproduces the matrix bit for bit, kappa(A) IS
 * kappa (not "roughly"), and the sparsity pattern — hence the program
 * cache's sparsityHash — depends on n alone, so every instance of a
 * size shares one CompiledStructure no matter how ill-conditioned.
 */

#include <gtest/gtest.h>

#include "aa/compiler/program.hh"
#include "aa/la/eigen.hh"
#include "aa/la/generate.hh"
#include "aa/la/operator.hh"

namespace aa::la {
namespace {

TEST(Generate, SameKnobsReproduceTheMatrixBitForBit)
{
    DenseMatrix a = spdLogSpectrum(8, 20.0, 11);
    DenseMatrix b = spdLogSpectrum(8, 20.0, 11);
    ASSERT_EQ(a.rows(), b.rows());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            EXPECT_EQ(a(i, j), b(i, j)) << i << "," << j;

    Vector r1 = seededRhs(8, 13);
    Vector r2 = seededRhs(8, 13);
    ASSERT_EQ(r1.size(), r2.size());
    for (std::size_t i = 0; i < r1.size(); ++i)
        EXPECT_EQ(r1[i], r2[i]) << i;
}

TEST(Generate, DifferentSeedsRotateDifferently)
{
    DenseMatrix a = spdLogSpectrum(8, 20.0, 11);
    DenseMatrix b = spdLogSpectrum(8, 20.0, 12);
    bool any_differ = false;
    for (std::size_t i = 0; i < a.rows() && !any_differ; ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            if (a(i, j) != b(i, j)) {
                any_differ = true;
                break;
            }
    EXPECT_TRUE(any_differ);
}

TEST(Generate, ConditionNumberIsTheRequestedKappa)
{
    for (double kappa : {5.0, 20.0, 200.0}) {
        SCOPED_TRACE(kappa);
        DenseMatrix a = spdLogSpectrum(10, kappa, 3);
        EXPECT_TRUE(a.isSymmetric());
        // ||A||_2 = 1 by construction (spectrum in [1/kappa, 1]).
        DenseOperator op(a);
        EigenEstimate lmax = largestEigenvalue(op);
        ASSERT_TRUE(lmax.converged);
        EXPECT_NEAR(lmax.value, 1.0, 1e-6);
        EXPECT_NEAR(conditionNumberSpd(a), kappa, kappa * 1e-6);
    }
}

TEST(Generate, SizeOneIsTheIdentity)
{
    DenseMatrix a = spdLogSpectrum(1, 100.0, 7);
    ASSERT_EQ(a.rows(), 1u);
    EXPECT_EQ(a(0, 0), 1.0);
}

TEST(Generate, SparsityHashDependsOnSizeAlone)
{
    // Dense by construction: conditioning and rotation must not
    // change the pattern, so the program cache compiles one
    // structure per size across a whole kappa sweep.
    std::uint64_t h = compiler::sparsityHash(spdLogSpectrum(8, 20.0, 11));
    EXPECT_EQ(h, compiler::sparsityHash(spdLogSpectrum(8, 500.0, 99)));
    EXPECT_EQ(h, compiler::sparsityHash(spdLogSpectrum(8, 2.0, 1)));
    EXPECT_NE(h, compiler::sparsityHash(spdLogSpectrum(9, 20.0, 11)));
}

TEST(Generate, SeededRhsIsUnitNorm)
{
    for (std::uint64_t seed : {1ull, 13ull, 97ull}) {
        SCOPED_TRACE(seed);
        Vector b = seededRhs(8, seed);
        EXPECT_NEAR(norm2(b), 1.0, 1e-12);
    }
    // Distinct seeds give distinct directions.
    Vector x = seededRhs(8, 13);
    Vector y = seededRhs(8, 14);
    bool any_differ = false;
    for (std::size_t i = 0; i < x.size(); ++i)
        if (x[i] != y[i])
            any_differ = true;
    EXPECT_TRUE(any_differ);
}

} // namespace
} // namespace aa::la
