#include <gtest/gtest.h>

#include "aa/la/operator.hh"

namespace aa::la {
namespace {

TEST(CsrOperator, ApplyAndDiagonal)
{
    auto m = CsrMatrix::fromTriplets(
        2, 2, {{0, 0, 2.0}, {0, 1, 1.0}, {1, 1, 3.0}});
    CsrOperator op(m);
    EXPECT_EQ(op.size(), 2u);
    EXPECT_EQ(op.applyCopy({1, 1}), (Vector{3, 3}));
    EXPECT_EQ(op.diagonal(), (Vector{2, 3}));
    EXPECT_EQ(op.applyFlops(), 3u);
}

TEST(DenseOperator, ApplyAndDiagonal)
{
    auto m = DenseMatrix::fromRows({{1, 2}, {3, 4}});
    DenseOperator op(m);
    EXPECT_EQ(op.applyCopy({1, 0}), (Vector{1, 3}));
    EXPECT_EQ(op.diagonal(), (Vector{1, 4}));
    EXPECT_EQ(op.applyFlops(), 4u);
}

TEST(OperatorDeath, NonSquareCsrIsFatal)
{
    auto m = CsrMatrix::fromTriplets(2, 3, {{0, 0, 1.0}});
    EXPECT_EXIT(CsrOperator{m}, ::testing::ExitedWithCode(1),
                "square");
}

TEST(OperatorDeath, NonSquareDenseIsFatal)
{
    DenseMatrix m(2, 3);
    EXPECT_EXIT(DenseOperator{m}, ::testing::ExitedWithCode(1),
                "square");
}

} // namespace
} // namespace aa::la
