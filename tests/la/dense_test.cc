#include <gtest/gtest.h>

#include "aa/la/dense_matrix.hh"

namespace aa::la {
namespace {

TEST(DenseMatrix, FromRowsAndAccess)
{
    auto m = DenseMatrix::fromRows({{1, 2}, {3, 4}});
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 2u);
    EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(DenseMatrix, IdentityApply)
{
    auto id = DenseMatrix::identity(3);
    Vector x{1, 2, 3};
    EXPECT_EQ(id.apply(x), x);
}

TEST(DenseMatrix, ApplyKnownResult)
{
    auto m = DenseMatrix::fromRows({{1, 2}, {3, 4}});
    Vector x{1, 1};
    EXPECT_EQ(m.apply(x), (Vector{3, 7}));
}

TEST(DenseMatrix, ApplyTransposeMatchesTransposedApply)
{
    auto m = DenseMatrix::fromRows({{1, 2, 0}, {0, 3, 4}});
    Vector y{1, 2};
    Vector via_t = m.transpose().apply(y);
    Vector direct = m.applyTranspose(y);
    EXPECT_EQ(via_t.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i)
        EXPECT_DOUBLE_EQ(direct[i], via_t[i]);
}

TEST(DenseMatrix, MultiplyAgainstIdentity)
{
    auto m = DenseMatrix::fromRows({{1, 2}, {3, 4}});
    auto p = m * DenseMatrix::identity(2);
    EXPECT_DOUBLE_EQ(p.frobeniusDiff(m), 0.0);
}

TEST(DenseMatrix, MultiplyKnownProduct)
{
    auto a = DenseMatrix::fromRows({{1, 2}, {3, 4}});
    auto b = DenseMatrix::fromRows({{0, 1}, {1, 0}});
    auto p = a * b;
    auto expect = DenseMatrix::fromRows({{2, 1}, {4, 3}});
    EXPECT_DOUBLE_EQ(p.frobeniusDiff(expect), 0.0);
}

TEST(DenseMatrix, AddSubScale)
{
    auto a = DenseMatrix::fromRows({{1, 2}, {3, 4}});
    auto sum = a + a;
    auto diff = sum - a;
    EXPECT_DOUBLE_EQ(diff.frobeniusDiff(a), 0.0);
    auto scaled = a;
    scaled *= 2.0;
    EXPECT_DOUBLE_EQ(scaled.frobeniusDiff(sum), 0.0);
}

TEST(DenseMatrix, MaxAbs)
{
    auto m = DenseMatrix::fromRows({{1, -9}, {3, 4}});
    EXPECT_DOUBLE_EQ(m.maxAbs(), 9.0);
}

TEST(DenseMatrix, SymmetryCheck)
{
    auto sym = DenseMatrix::fromRows({{2, 1}, {1, 2}});
    auto asym = DenseMatrix::fromRows({{2, 1}, {0, 2}});
    EXPECT_TRUE(sym.isSymmetric());
    EXPECT_FALSE(asym.isSymmetric());
    auto rect = DenseMatrix(2, 3);
    EXPECT_FALSE(rect.isSymmetric());
}

TEST(DenseMatrixDeath, RaggedRowsPanic)
{
    EXPECT_DEATH(DenseMatrix::fromRows({{1, 2}, {3}}), "ragged");
}

TEST(DenseMatrixDeath, ApplySizeMismatchPanics)
{
    auto m = DenseMatrix::identity(2);
    Vector x(3);
    EXPECT_DEATH(m.apply(x), "size mismatch");
}

} // namespace
} // namespace aa::la
