#include <gtest/gtest.h>

#include <cmath>

#include "aa/la/vector.hh"

namespace aa::la {
namespace {

TEST(Vector, ConstructionAndFill)
{
    Vector v(4, 2.5);
    EXPECT_EQ(v.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(v[i], 2.5);
}

TEST(Vector, InitializerList)
{
    Vector v{1.0, 2.0, 3.0};
    EXPECT_EQ(v.size(), 3u);
    EXPECT_DOUBLE_EQ(v[1], 2.0);
}

TEST(Vector, ArithmeticOperators)
{
    Vector a{1, 2, 3};
    Vector b{4, 5, 6};
    Vector sum = a + b;
    Vector diff = b - a;
    Vector scaled = 2.0 * a;
    EXPECT_EQ(sum, (Vector{5, 7, 9}));
    EXPECT_EQ(diff, (Vector{3, 3, 3}));
    EXPECT_EQ(scaled, (Vector{2, 4, 6}));
}

TEST(Vector, DotAndNorms)
{
    Vector a{3, 4};
    EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
    EXPECT_DOUBLE_EQ(norm2(a), 5.0);
    EXPECT_DOUBLE_EQ(normInf(a), 4.0);
    EXPECT_DOUBLE_EQ(norm1(a), 7.0);
}

TEST(Vector, NormsOfNegativeEntries)
{
    Vector a{-3, 1, -2};
    EXPECT_DOUBLE_EQ(normInf(a), 3.0);
    EXPECT_DOUBLE_EQ(norm1(a), 6.0);
}

TEST(Vector, Axpy)
{
    Vector x{1, 1, 1};
    Vector y{0, 1, 2};
    axpy(3.0, x, y);
    EXPECT_EQ(y, (Vector{3, 4, 5}));
}

TEST(Vector, Xpby)
{
    Vector x{1, 2};
    Vector y{10, 20};
    xpby(x, 0.5, y);
    EXPECT_EQ(y, (Vector{6, 12}));
}

TEST(Vector, ScaleIntoDestination)
{
    Vector x{2, 4};
    Vector y;
    scale(0.5, x, y);
    EXPECT_EQ(y, (Vector{1, 2}));
}

TEST(Vector, MaxAbsDiff)
{
    Vector a{1, 2, 3};
    Vector b{1, 2.5, 2};
    EXPECT_DOUBLE_EQ(maxAbsDiff(a, b), 1.0);
}

TEST(Vector, EmptyNormsAreZero)
{
    Vector e;
    EXPECT_DOUBLE_EQ(norm2(e), 0.0);
    EXPECT_DOUBLE_EQ(normInf(e), 0.0);
}

TEST(VectorDeath, AtOutOfRangePanics)
{
    Vector v(2);
    EXPECT_DEATH(v.at(2), "Vector::at");
}

TEST(VectorDeath, MismatchedSizesPanic)
{
    Vector a(2), b(3);
    EXPECT_DEATH(dot(a, b), "size mismatch");
    EXPECT_DEATH(axpy(1.0, a, b), "size mismatch");
}

} // namespace
} // namespace aa::la
