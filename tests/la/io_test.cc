#include <gtest/gtest.h>

#include <sstream>

#include "aa/la/io.hh"

namespace aa::la {
namespace {

TEST(MatrixMarket, ReadsGeneralCoordinate)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "% a comment line\n"
        "2 3 3\n"
        "1 1 1.5\n"
        "2 3 -2.0\n"
        "1 2 0.25\n");
    CsrMatrix m = readMatrixMarket(in);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m.nnz(), 3u);
    EXPECT_DOUBLE_EQ(m.at(0, 0), 1.5);
    EXPECT_DOUBLE_EQ(m.at(0, 1), 0.25);
    EXPECT_DOUBLE_EQ(m.at(1, 2), -2.0);
}

TEST(MatrixMarket, ExpandsSymmetricStorage)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 4\n"
        "1 1 4.0\n"
        "2 1 -1.0\n"
        "3 2 -1.0\n"
        "3 3 4.0\n");
    CsrMatrix m = readMatrixMarket(in);
    EXPECT_EQ(m.nnz(), 6u);
    EXPECT_DOUBLE_EQ(m.at(0, 1), -1.0);
    EXPECT_DOUBLE_EQ(m.at(1, 0), -1.0);
    EXPECT_TRUE(m.isSymmetric());
}

TEST(MatrixMarket, DiagonalNotDuplicatedInSymmetric)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "2 2 2\n"
        "1 1 3.0\n"
        "2 2 5.0\n");
    CsrMatrix m = readMatrixMarket(in);
    EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(m.at(1, 1), 5.0);
    EXPECT_EQ(m.nnz(), 2u);
}

TEST(MatrixMarket, RoundTripWritesAndReads)
{
    auto m = CsrMatrix::fromTriplets(
        3, 3,
        {{0, 0, 1.0}, {0, 2, 0.125}, {1, 1, -3.5}, {2, 0, 7.0}});
    std::stringstream buf;
    writeMatrixMarket(m, buf);
    CsrMatrix back = readMatrixMarket(buf);
    EXPECT_EQ(back.rows(), 3u);
    EXPECT_EQ(back.nnz(), 4u);
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_DOUBLE_EQ(back.at(i, j), m.at(i, j));
}

TEST(MatrixMarket, SymmetricWriteStoresLowerTriangleOnly)
{
    // The 1D Poisson 3-point pattern on 4 points: 10 nnz, of which
    // the 3 superdiagonal entries are implied — 7 stored.
    auto m = CsrMatrix::fromTriplets(
        4, 4,
        {{0, 0, 2.0}, {0, 1, -1.0}, {1, 0, -1.0}, {1, 1, 2.0},
         {1, 2, -1.0}, {2, 1, -1.0}, {2, 2, 2.0}, {2, 3, -1.0},
         {3, 2, -1.0}, {3, 3, 2.0}});
    std::stringstream buf;
    writeMatrixMarket(m, buf, /*symmetric=*/true);
    std::string text = buf.str();
    EXPECT_NE(text.find("coordinate real symmetric"),
              std::string::npos);
    EXPECT_NE(text.find("4 4 7\n"), std::string::npos);

    CsrMatrix back = readMatrixMarket(buf);
    EXPECT_EQ(back.nnz(), m.nnz());
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            EXPECT_DOUBLE_EQ(back.at(i, j), m.at(i, j));
}

TEST(MatrixMarketDeath, SymmetricWriteOfAsymmetricFatal)
{
    auto m = CsrMatrix::fromTriplets(2, 2,
                                     {{0, 1, 1.0}, {1, 0, 2.0}});
    std::stringstream buf;
    EXPECT_EXIT(writeMatrixMarket(m, buf, /*symmetric=*/true),
                ::testing::ExitedWithCode(1), "symmetry");
}

TEST(MatrixMarket, CaseInsensitiveBanner)
{
    std::istringstream in(
        "%%MatrixMarket MATRIX Coordinate REAL General\n"
        "1 1 1\n"
        "1 1 2.0\n");
    CsrMatrix m = readMatrixMarket(in);
    EXPECT_DOUBLE_EQ(m.at(0, 0), 2.0);
}

TEST(VectorMarket, ReadsArrayFormat)
{
    std::istringstream in("%%MatrixMarket matrix array real general\n"
                          "% rhs\n"
                          "3 1\n"
                          "1.0\n"
                          "-0.5\n"
                          "2.25\n");
    Vector v = readVectorMarket(in);
    EXPECT_EQ(v, (Vector{1.0, -0.5, 2.25}));
}

TEST(VectorMarket, RoundTrip)
{
    Vector v{0.1, -0.2, 1.0 / 3.0};
    std::stringstream buf;
    writeVectorMarket(v, buf);
    Vector back = readVectorMarket(buf);
    ASSERT_EQ(back.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_DOUBLE_EQ(back[i], v[i]);
}

TEST(MatrixMarketDeath, MissingBannerFatal)
{
    std::istringstream in("2 2 1\n1 1 1.0\n");
    EXPECT_EXIT(readMatrixMarket(in), ::testing::ExitedWithCode(1),
                "banner");
}

TEST(MatrixMarketDeath, TruncatedEntriesFatal)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 3\n"
        "1 1 1.0\n");
    EXPECT_EXIT(readMatrixMarket(in), ::testing::ExitedWithCode(1),
                "truncated");
}

TEST(MatrixMarketDeath, OutOfRangeEntryFatal)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "3 1 1.0\n");
    EXPECT_EXIT(readMatrixMarket(in), ::testing::ExitedWithCode(1),
                "outside");
}

TEST(MatrixMarketDeath, PatternFormatRejected)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "1 1 1\n"
        "1 1\n");
    EXPECT_EXIT(readMatrixMarket(in), ::testing::ExitedWithCode(1),
                "real");
}

TEST(VectorMarketDeath, MultiColumnRejected)
{
    std::istringstream in("%%MatrixMarket matrix array real general\n"
                          "2 2\n"
                          "1\n1\n1\n1\n");
    EXPECT_EXIT(readVectorMarket(in), ::testing::ExitedWithCode(1),
                "single column");
}

TEST(IoDeath, MissingFileFatal)
{
    EXPECT_EXIT(readMatrixMarketFile("/nonexistent/x.mtx"),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace aa::la
