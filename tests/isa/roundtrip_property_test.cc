#include <gtest/gtest.h>

#include "aa/common/rng.hh"
#include "aa/isa/command.hh"

namespace aa::isa {
namespace {

/** Draw a random, structurally valid command. */
Command
randomCommand(Rng &rng)
{
    static const Opcode all[] = {
        Opcode::Init,          Opcode::SetConn,
        Opcode::SetIntInitial, Opcode::SetMulGain,
        Opcode::SetFunction,   Opcode::SetDacConstant,
        Opcode::SetTimeout,    Opcode::CfgCommit,
        Opcode::ExecStart,     Opcode::ExecStop,
        Opcode::SetAnaInputEn, Opcode::WriteParallel,
        Opcode::ReadSerial,    Opcode::AnalogAvg,
        Opcode::ReadExp,       Opcode::ClearConfig};
    Command cmd;
    cmd.op = all[rng.uniformInt(0, 15)];
    switch (cmd.op) {
      case Opcode::SetConn:
        cmd.block = static_cast<std::uint16_t>(
            rng.uniformInt(0, 0xffff));
        cmd.port = static_cast<std::uint8_t>(rng.uniformInt(0, 3));
        cmd.block2 = static_cast<std::uint16_t>(
            rng.uniformInt(0, 0xffff));
        cmd.port2 = static_cast<std::uint8_t>(rng.uniformInt(0, 3));
        break;
      case Opcode::SetIntInitial:
      case Opcode::SetMulGain:
      case Opcode::SetDacConstant:
        cmd.block = static_cast<std::uint16_t>(
            rng.uniformInt(0, 0xffff));
        cmd.value = static_cast<float>(rng.uniform(-1e6, 1e6));
        break;
      case Opcode::SetFunction: {
        cmd.block = static_cast<std::uint16_t>(
            rng.uniformInt(0, 0xffff));
        auto n = static_cast<std::size_t>(rng.uniformInt(0, 256));
        for (std::size_t i = 0; i < n; ++i)
            cmd.table.push_back(static_cast<std::uint8_t>(
                rng.uniformInt(0, 255)));
        break;
      }
      case Opcode::SetTimeout:
        cmd.count = static_cast<std::uint32_t>(
            rng.uniformInt(0, 0xffffffffll));
        break;
      case Opcode::SetAnaInputEn:
        cmd.block = static_cast<std::uint16_t>(
            rng.uniformInt(0, 0xffff));
        cmd.byte = static_cast<std::uint8_t>(rng.uniformInt(0, 1));
        break;
      case Opcode::WriteParallel:
        cmd.byte = static_cast<std::uint8_t>(
            rng.uniformInt(0, 255));
        break;
      case Opcode::AnalogAvg:
        cmd.block = static_cast<std::uint16_t>(
            rng.uniformInt(0, 0xffff));
        cmd.count = static_cast<std::uint32_t>(
            rng.uniformInt(1, 1024));
        break;
      default:
        break;
    }
    return cmd;
}

/** Property: encode/decode is the identity on valid commands. */
class CommandRoundTrip
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(CommandRoundTrip, EncodeDecodeIdentity)
{
    Rng rng(GetParam());
    for (int i = 0; i < 500; ++i) {
        Command cmd = randomCommand(rng);
        Command back = decodeCommand(encodeCommand(cmd));
        EXPECT_EQ(back, cmd) << "iteration " << i << " op "
                             << opcodeName(cmd.op);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CommandRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 4u));

/** Property: responses round-trip for arbitrary payloads. */
class ResponseRoundTrip
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ResponseRoundTrip, EncodeDecodeIdentity)
{
    Rng rng(GetParam());
    for (int i = 0; i < 500; ++i) {
        Response resp;
        resp.status = static_cast<std::uint8_t>(
            rng.uniformInt(0, 255));
        auto n = static_cast<std::size_t>(rng.uniformInt(0, 512));
        for (std::size_t k = 0; k < n; ++k)
            resp.data.push_back(static_cast<std::uint8_t>(
                rng.uniformInt(0, 255)));
        EXPECT_EQ(decodeResponse(encodeResponse(resp)), resp);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResponseRoundTrip,
                         ::testing::Values(7u, 8u));

TEST(FrameLength, EncodedSizeMatchesHeader)
{
    Rng rng(99);
    for (int i = 0; i < 200; ++i) {
        auto frame = encodeCommand(randomCommand(rng));
        ASSERT_GE(frame.size(), 3u);
        std::size_t declared =
            frame[1] | (static_cast<std::size_t>(frame[2]) << 8);
        EXPECT_EQ(frame.size(), declared + 3u);
    }
}

} // namespace
} // namespace aa::isa
