#include <gtest/gtest.h>

#include "aa/isa/driver.hh"

namespace aa::isa {
namespace {

chip::ChipConfig
testConfig()
{
    chip::ChipConfig cfg;
    cfg.spec.variation.enabled = false;
    cfg.spec.adc_noise_sigma = 0.0;
    return cfg;
}

/** Drive the Figure 1 problem wholly through the ISA. */
struct DriverFixture : ::testing::Test {
    chip::Chip chip{testConfig()};
    AcceleratorDriver driver{chip};

    void
    configureLoop(double gain, double bias)
    {
        auto integ = chip.integrators()[0];
        auto fan = chip.fanouts()[0];
        auto mul = chip.multipliers()[0];
        auto dac = chip.dacs()[0];
        auto adc = chip.adcs()[0];
        const auto &net = chip.netlist();
        driver.setConn(net.out(integ), net.in(fan));
        driver.setConn(net.out(fan, 0), net.in(adc));
        driver.setConn(net.out(fan, 1), net.in(mul));
        driver.setConn(net.out(mul), net.in(integ));
        driver.setConn(net.out(dac), net.in(integ));
        driver.setMulGain(mul, gain);
        driver.setDacConstant(dac, bias);
        driver.setIntInitial(integ, 0.0);
        driver.setTimeout(2000);
        driver.cfgCommit();
    }
};

TEST_F(DriverFixture, FullTableOneFlowSolves)
{
    configureLoop(-2.0, 0.5);
    auto res = driver.execStart();
    driver.execStop();
    EXPECT_FALSE(res.any_exception);
    EXPECT_GT(res.analog_time, 0.0);
    EXPECT_NEAR(driver.analogAvg(chip.adcs()[0], 8), 0.25, 0.01);
}

TEST_F(DriverFixture, ReadSerialThroughTheWire)
{
    configureLoop(-2.0, 0.5);
    driver.execStart();
    auto bytes = driver.readSerial();
    ASSERT_EQ(bytes.size(), 2u);
    EXPECT_NEAR(static_cast<double>(bytes[0]),
                (0.25 + 1.0) / 2.0 * 255.0, 3.0);
}

TEST_F(DriverFixture, ReadExpReflectsOverflow)
{
    configureLoop(-0.4, 0.5); // steady state 1.25: overflow
    auto res = driver.execStart();
    EXPECT_TRUE(res.any_exception);
    auto exp = driver.readExp();
    EXPECT_NE(exp[chip.integrators()[0].v], 0);
}

TEST_F(DriverFixture, TraceRecordsEveryInstruction)
{
    configureLoop(-2.0, 0.5);
    // 5 setConn + setMulGain + setDacConstant + setIntInitial +
    // setTimeout + cfgCommit = 10 commands so far.
    EXPECT_EQ(driver.trace().size(), 10u);
    EXPECT_EQ(driver.trace()[0].op, Opcode::SetConn);
    driver.execStart();
    EXPECT_EQ(driver.trace().back().op, Opcode::ExecStart);
}

TEST_F(DriverFixture, LinkAccountsBytes)
{
    configureLoop(-2.0, 0.5);
    EXPECT_GT(driver.link().bytesDown(), 0u);
    EXPECT_GT(driver.link().transactionCount(), 9u);
    EXPECT_GT(driver.link().transferSeconds(), 0.0);
    std::size_t before_up = driver.link().bytesUp();
    driver.execStart();
    driver.readSerial();
    EXPECT_GT(driver.link().bytesUp(), before_up);
}

TEST_F(DriverFixture, SetFunctionShipsQuantizedCodes)
{
    driver.setFunction(chip.luts()[0],
                       [](double x) { return 0.5 * x; });
    const auto &table = chip.netlist().params(chip.luts()[0]).table;
    ASSERT_EQ(table.size(), chip.config().spec.lut_depth);
    EXPECT_NEAR(table.front(), -0.5, 0.01);
    EXPECT_NEAR(table.back(), 0.5, 0.01);
    // The wire command carried exactly lut_depth code bytes.
    EXPECT_EQ(driver.trace().back().table.size(),
              chip.config().spec.lut_depth);
}

TEST_F(DriverFixture, InitRunsCalibration)
{
    EXPECT_FALSE(chip.calibrated());
    driver.init();
    EXPECT_TRUE(chip.calibrated());
}

TEST_F(DriverFixture, WriteParallelLandsInRegister)
{
    driver.writeParallel(0x3c);
    EXPECT_EQ(chip.parallelRegister(), 0x3c);
}

TEST_F(DriverFixture, ClearConfigDropsConnections)
{
    configureLoop(-2.0, 0.5);
    driver.clearConfig();
    EXPECT_TRUE(chip.netlist().connections().empty());
}

TEST_F(DriverFixture, ShadowSkipsRedundantWrites)
{
    configureLoop(-2.0, 0.5);
    std::size_t traced = driver.trace().size();
    std::size_t bytes = driver.link().bytesDown();
    // Re-shipping identical values touches neither the trace nor the
    // wire; the clean cfgCommit is suppressed too.
    configureLoop(-2.0, 0.5);
    EXPECT_EQ(driver.trace().size(), traced);
    EXPECT_EQ(driver.link().bytesDown(), bytes);
    EXPECT_GT(driver.shadowStats().skipped, 0u);
}

TEST_F(DriverFixture, ChangedValueShipsAndDirtiesCommit)
{
    configureLoop(-2.0, 0.5);
    std::size_t traced = driver.trace().size();
    driver.setDacConstant(chip.dacs()[0], 0.25);
    driver.cfgCommit();
    // Exactly the changed register plus its commit travelled.
    EXPECT_EQ(driver.trace().size(), traced + 2);
}

TEST_F(DriverFixture, ConfigBytesCountsConfigTrafficOnly)
{
    configureLoop(-2.0, 0.5);
    std::size_t cfg = driver.configBytes();
    EXPECT_GT(cfg, 0u);
    EXPECT_EQ(cfg, driver.link().bytesDown());
    driver.execStart();
    driver.readSerial();
    // Exec and readout traffic is not configuration traffic.
    EXPECT_EQ(driver.configBytes(), cfg);
    EXPECT_GT(driver.link().bytesDown(), cfg);
}

TEST_F(DriverFixture, ResetShadowForcesReship)
{
    configureLoop(-2.0, 0.5);
    std::size_t traced = driver.trace().size();
    // resetShadow restores full-reconfigure accounting. It must pair
    // with clearConfig: re-shipping a live connection would otherwise
    // double-drive the netlist. clearConfig itself is one extra
    // traced command; everything else re-ships verbatim.
    driver.clearConfig();
    driver.resetShadow();
    configureLoop(-2.0, 0.5);
    EXPECT_EQ(driver.trace().size(), 2 * traced + 1);
}

TEST_F(DriverFixture, ClearConfigForgetsConnectionsOnly)
{
    configureLoop(-2.0, 0.5);
    driver.clearConfig();
    std::size_t traced = driver.trace().size();
    // Connections must re-ship after a clear; the value registers
    // were untouched by it, so they stay shadowed.
    configureLoop(-2.0, 0.5);
    // 5 setConn + cfgCommit (clearConfig dirtied the config).
    EXPECT_EQ(driver.trace().size(), traced + 6);
}

TEST_F(DriverFixture, ExtInStimulusDrivesComputation)
{
    // Feed an external 0.5 bias instead of the DAC.
    auto ext = chip.extIns()[0];
    auto adc = chip.adcs()[0];
    const auto &net = chip.netlist();
    driver.setAnaInputEn(ext, [](double) { return 0.5; });
    driver.setConn(net.out(ext), net.in(adc));
    driver.setTimeout(100);
    driver.cfgCommit();
    driver.execStart();
    EXPECT_NEAR(driver.analogAvg(adc, 4), 0.5, 0.02);
}

} // namespace
} // namespace aa::isa
