#include <gtest/gtest.h>

#include <cmath>

#include "aa/isa/command.hh"

namespace aa::isa {
namespace {

Command
roundTrip(const Command &cmd)
{
    return decodeCommand(encodeCommand(cmd));
}

TEST(Command, NoPayloadOpcodesRoundTrip)
{
    for (Opcode op : {Opcode::Init, Opcode::CfgCommit,
                      Opcode::ExecStart, Opcode::ExecStop,
                      Opcode::ReadSerial, Opcode::ReadExp,
                      Opcode::ClearConfig}) {
        Command cmd;
        cmd.op = op;
        EXPECT_EQ(roundTrip(cmd), cmd) << opcodeName(op);
        EXPECT_EQ(encodeCommand(cmd).size(), 3u);
    }
}

TEST(Command, SetConnCarriesBothPorts)
{
    Command cmd;
    cmd.op = Opcode::SetConn;
    cmd.block = 513;
    cmd.port = 2;
    cmd.block2 = 77;
    cmd.port2 = 1;
    EXPECT_EQ(roundTrip(cmd), cmd);
}

TEST(Command, FloatOperandsExact)
{
    for (Opcode op : {Opcode::SetIntInitial, Opcode::SetMulGain,
                      Opcode::SetDacConstant}) {
        Command cmd;
        cmd.op = op;
        cmd.block = 3;
        cmd.value = -0.123456f;
        Command back = roundTrip(cmd);
        EXPECT_EQ(back.value, cmd.value) << opcodeName(op);
        EXPECT_EQ(back.block, cmd.block);
    }
}

TEST(Command, NegativeZeroAndExtremesSurvive)
{
    Command cmd;
    cmd.op = Opcode::SetMulGain;
    cmd.value = -0.0f;
    EXPECT_EQ(std::signbit(roundTrip(cmd).value), true);
    cmd.value = 3.4e38f;
    EXPECT_EQ(roundTrip(cmd).value, cmd.value);
}

TEST(Command, SetFunctionCarriesTable)
{
    Command cmd;
    cmd.op = Opcode::SetFunction;
    cmd.block = 9;
    for (int i = 0; i < 256; ++i)
        cmd.table.push_back(static_cast<std::uint8_t>(i));
    Command back = roundTrip(cmd);
    EXPECT_EQ(back.table, cmd.table);
    // Frame: header 3 + block 2 + count 2 + 256 codes.
    EXPECT_EQ(encodeCommand(cmd).size(), 263u);
}

TEST(Command, TimeoutCycles32Bit)
{
    Command cmd;
    cmd.op = Opcode::SetTimeout;
    cmd.count = 0xdeadbeef;
    EXPECT_EQ(roundTrip(cmd).count, 0xdeadbeefu);
}

TEST(Command, AnalogAvgCarriesBlockAndCount)
{
    Command cmd;
    cmd.op = Opcode::AnalogAvg;
    cmd.block = 12;
    cmd.count = 64;
    Command back = roundTrip(cmd);
    EXPECT_EQ(back.block, 12u);
    EXPECT_EQ(back.count, 64u);
}

TEST(Command, WriteParallelByte)
{
    Command cmd;
    cmd.op = Opcode::WriteParallel;
    cmd.byte = 0x5a;
    EXPECT_EQ(roundTrip(cmd).byte, 0x5a);
}

TEST(Response, RoundTripWithData)
{
    Response resp;
    resp.status = 0;
    resp.data = {1, 2, 3, 254};
    EXPECT_EQ(decodeResponse(encodeResponse(resp)), resp);
}

TEST(Response, EmptyData)
{
    Response resp;
    EXPECT_EQ(decodeResponse(encodeResponse(resp)), resp);
}

TEST(CommandDeath, ShortFrameFatal)
{
    EXPECT_EXIT(decodeCommand({0x01}), ::testing::ExitedWithCode(1),
                "short frame");
}

TEST(CommandDeath, LengthMismatchFatal)
{
    auto frame = encodeCommand(
        [] {
            Command c;
            c.op = Opcode::SetTimeout;
            c.count = 5;
            return c;
        }());
    frame.pop_back();
    EXPECT_EXIT(decodeCommand(frame), ::testing::ExitedWithCode(1),
                "length mismatch");
}

TEST(Command, OpcodeNamesMatchTableOne)
{
    EXPECT_STREQ(opcodeName(Opcode::Init), "init");
    EXPECT_STREQ(opcodeName(Opcode::SetConn), "setConn");
    EXPECT_STREQ(opcodeName(Opcode::AnalogAvg), "analogAvg");
    EXPECT_STREQ(opcodeName(Opcode::ReadExp), "readExp");
}

} // namespace
} // namespace aa::isa
