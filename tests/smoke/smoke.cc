#include <cstdio>
#include "aa/analog/solver.hh"
#include "aa/analog/refine.hh"
#include "aa/la/direct.hh"

using namespace aa;

int main()
{
    la::DenseMatrix a = la::DenseMatrix::fromRows({{4.0, -1.0}, {-1.0, 3.0}});
    la::Vector b{1.0, 2.0};
    la::Vector exact = la::solveDense(a, b);

    analog::AnalogLinearSolver solver;
    auto out = solver.solve(a, b);
    std::printf("exact  = [%f, %f]\n", exact[0], exact[1]);
    std::printf("analog = [%f, %f] attempts=%zu conv=%d t=%g s\n",
                out.u[0], out.u[1], out.attempts, (int)out.converged,
                out.analog_seconds);

    auto ref = analog::refineSolve(solver, a, b, {.tolerance = 1e-8, .max_passes = 12, .record_history = true});
    std::printf("refined = [%.10f, %.10f] passes=%zu resid=%.3e conv=%d\n",
                ref.u[0], ref.u[1], ref.passes, ref.final_residual, (int)ref.converged);
    for (double r : ref.residual_history) std::printf("  resid %.3e\n", r);
    return 0;
}
