#include <gtest/gtest.h>

#include <cmath>

#include "aa/circuit/simulator.hh"

namespace aa::circuit {
namespace {

AnalogSpec
cleanSpec(SimMode mode = SimMode::Ideal)
{
    AnalogSpec spec;
    spec.variation.enabled = false;
    spec.adc_noise_sigma = 0.0;
    spec.mode = mode;
    return spec;
}

RunOptions
shortRun(double t = 1e-4)
{
    RunOptions o;
    o.timeout = t;
    return o;
}

TEST(Blocks, DacDrivesQuantizedConstant)
{
    Netlist net;
    BlockParams dp;
    dp.level = 0.5;
    BlockId d = net.add(BlockKind::Dac, dp);
    BlockId a = net.add(BlockKind::Adc);
    net.connect(net.out(d), net.in(a));
    Simulator sim(net, cleanSpec(), 1);
    sim.run(shortRun());
    EXPECT_NEAR(sim.inputValue(net.in(a)), 0.5, 2.0 / 255.0);
}

TEST(Blocks, MulGainScalesSignal)
{
    Netlist net;
    BlockParams dp;
    dp.level = 0.25;
    BlockId d = net.add(BlockKind::Dac, dp);
    BlockParams mp;
    mp.gain = 3.0;
    BlockId m = net.add(BlockKind::MulGain, mp);
    BlockId a = net.add(BlockKind::Adc);
    net.connect(net.out(d), net.in(m));
    net.connect(net.out(m), net.in(a));
    Simulator sim(net, cleanSpec(), 1);
    sim.run(shortRun());
    EXPECT_NEAR(sim.inputValue(net.in(a)), 0.75, 0.02);
}

TEST(Blocks, NegativeGainInverts)
{
    Netlist net;
    BlockParams dp;
    dp.level = 0.5;
    BlockId d = net.add(BlockKind::Dac, dp);
    BlockParams mp;
    mp.gain = -1.0;
    BlockId m = net.add(BlockKind::MulGain, mp);
    BlockId a = net.add(BlockKind::Adc);
    net.connect(net.out(d), net.in(m));
    net.connect(net.out(m), net.in(a));
    Simulator sim(net, cleanSpec(), 1);
    sim.run(shortRun());
    EXPECT_NEAR(sim.inputValue(net.in(a)), -0.5, 0.02);
}

TEST(Blocks, MulVarMultipliesTwoSignals)
{
    Netlist net;
    BlockParams d1p, d2p;
    d1p.level = 0.5;
    d2p.level = -0.4;
    BlockId d1 = net.add(BlockKind::Dac, d1p);
    BlockId d2 = net.add(BlockKind::Dac, d2p);
    BlockId m = net.add(BlockKind::MulVar);
    BlockId a = net.add(BlockKind::Adc);
    net.connect(net.out(d1), net.in(m, 0));
    net.connect(net.out(d2), net.in(m, 1));
    net.connect(net.out(m), net.in(a));
    Simulator sim(net, cleanSpec(), 1);
    sim.run(shortRun());
    EXPECT_NEAR(sim.inputValue(net.in(a)), -0.2, 0.02);
}

TEST(Blocks, FanoutCopiesToEachBranch)
{
    Netlist net;
    BlockParams dp;
    dp.level = 0.3;
    BlockId d = net.add(BlockKind::Dac, dp);
    BlockId f = net.add(BlockKind::Fanout);
    BlockId a0 = net.add(BlockKind::Adc);
    BlockId a1 = net.add(BlockKind::Adc);
    net.connect(net.out(d), net.in(f));
    net.connect(net.out(f, 0), net.in(a0));
    net.connect(net.out(f, 1), net.in(a1));
    Simulator sim(net, cleanSpec(), 1);
    sim.run(shortRun());
    EXPECT_NEAR(sim.inputValue(net.in(a0)), 0.3, 0.02);
    EXPECT_NEAR(sim.inputValue(net.in(a1)), 0.3, 0.02);
}

TEST(Blocks, JoiningBranchesSumsCurrents)
{
    Netlist net;
    BlockParams d1p, d2p;
    d1p.level = 0.3;
    d2p.level = 0.25;
    BlockId d1 = net.add(BlockKind::Dac, d1p);
    BlockId d2 = net.add(BlockKind::Dac, d2p);
    BlockId a = net.add(BlockKind::Adc);
    net.connect(net.out(d1), net.in(a));
    net.connect(net.out(d2), net.in(a));
    Simulator sim(net, cleanSpec(), 1);
    sim.run(shortRun());
    EXPECT_NEAR(sim.inputValue(net.in(a)), 0.55, 0.02);
}

TEST(Blocks, LutAppliesNonlinearFunction)
{
    Netlist net;
    BlockParams dp;
    dp.level = 0.5;
    BlockId d = net.add(BlockKind::Dac, dp);
    BlockParams lp;
    // Load sin(pi x / 2) over [-1, 1].
    for (std::size_t i = 0; i < 256; ++i) {
        double x = -1.0 + 2.0 * static_cast<double>(i) / 255.0;
        lp.table.push_back(std::sin(M_PI * x / 2.0));
    }
    BlockId l = net.add(BlockKind::Lut, lp);
    BlockId a = net.add(BlockKind::Adc);
    net.connect(net.out(d), net.in(l));
    net.connect(net.out(l), net.in(a));
    Simulator sim(net, cleanSpec(), 1);
    sim.run(shortRun());
    EXPECT_NEAR(sim.inputValue(net.in(a)),
                std::sin(M_PI * 0.25), 0.02);
}

TEST(Blocks, ExtInStimulusReachesAdc)
{
    Netlist net;
    BlockParams ep;
    ep.ext_in = [](double) { return 0.6; };
    BlockId e = net.add(BlockKind::ExtIn, ep);
    BlockId a = net.add(BlockKind::Adc);
    net.connect(net.out(e), net.in(a));
    Simulator sim(net, cleanSpec(), 1);
    sim.run(shortRun());
    EXPECT_NEAR(sim.inputValue(net.in(a)), 0.6, 0.02);
}

TEST(Blocks, IntegratorRampsAtUnitRate)
{
    // Constant input c makes the integrator ramp at rate * c.
    Netlist net;
    BlockParams dp;
    dp.level = 0.1;
    BlockId d = net.add(BlockKind::Dac, dp);
    BlockId i = net.add(BlockKind::Integrator);
    BlockId a = net.add(BlockKind::Adc);
    net.connect(net.out(d), net.in(i));
    net.connect(net.out(i), net.in(a));
    AnalogSpec spec = cleanSpec();
    Simulator sim(net, spec, 1);
    double t = 0.05 / spec.integratorRate() / 0.1;
    sim.run(shortRun(t));
    EXPECT_NEAR(sim.outputValue(net.out(i)), 0.05, 0.002);
}

TEST(Blocks, IntegratorHoldsInitialCondition)
{
    Netlist net;
    BlockParams ip;
    ip.ic = 0.42;
    BlockId i = net.add(BlockKind::Integrator, ip);
    BlockId a = net.add(BlockKind::Adc);
    net.connect(net.out(i), net.in(a));
    Simulator sim(net, cleanSpec(), 1);
    sim.run(shortRun(1e-6));
    EXPECT_NEAR(sim.outputValue(net.out(i)), 0.42, 1e-6);
}

TEST(Blocks, AdcCodesQuantize)
{
    Netlist net;
    BlockParams dp;
    dp.level = 0.5;
    BlockId d = net.add(BlockKind::Dac, dp);
    BlockId a = net.add(BlockKind::Adc);
    net.connect(net.out(d), net.in(a));
    Simulator sim(net, cleanSpec(), 1);
    sim.run(shortRun());
    auto code = sim.adcReadCode(a);
    EXPECT_NEAR(static_cast<double>(code), 0.75 * 255.0, 2.0);
    EXPECT_NEAR(sim.adcRead(a), 0.5, 0.02);
}

TEST(Blocks, AdcAveragingSuppressesNoise)
{
    Netlist net;
    BlockParams dp;
    dp.level = 0.5;
    BlockId d = net.add(BlockKind::Dac, dp);
    BlockId a = net.add(BlockKind::Adc);
    net.connect(net.out(d), net.in(a));
    AnalogSpec spec = cleanSpec();
    spec.adc_noise_sigma = 0.02; // > 2 LSB of noise
    Simulator sim(net, spec, 7);
    sim.run(shortRun());
    double avg = sim.adcReadAveraged(a, 64);
    EXPECT_NEAR(avg, 0.5, 0.01);
}

TEST(Blocks, KindNamesStable)
{
    EXPECT_STREQ(blockKindName(BlockKind::Integrator), "integrator");
    EXPECT_STREQ(blockKindName(BlockKind::Fanout), "fanout");
    EXPECT_STREQ(blockKindName(BlockKind::ExtOut), "ext_out");
}

} // namespace
} // namespace aa::circuit
