/**
 * @file
 * Equivalence of the compiled evaluation plan against the legacy
 * block-walk evaluator it replaced.
 *
 * Random netlists covering every block kind are evaluated through
 * Simulator::evalRhs (the SoA stage tables), Simulator::evalRhsAos
 * (the retained typed-op walker) and Simulator::evalRhsReference
 * (the pre-plan oracle, rebuilt from the netlist on every call) at
 * random state snapshots — including out-of-range states that fire
 * the overflow comparators. All three derivatives must agree
 * pairwise to 1e-15 and the exception latches must be identical.
 * (Exact bitwise SoA == AoS equality is deliberately not asserted:
 * the identity-stage fast path may return -0.0 where the generic
 * applyStage's `+ 0.0` terms normalize it to +0.0.)
 */

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "aa/circuit/netlist.hh"
#include "aa/circuit/simulator.hh"
#include "aa/circuit/spec.hh"

namespace aa::circuit {
namespace {

double
uniform(std::mt19937_64 &rng, double lo, double hi)
{
    return std::uniform_real_distribution<double>(lo, hi)(rng);
}

/**
 * Grow a random legal netlist containing every block kind.
 *
 * A pool of not-yet-consumed output ports enforces the
 * one-output-drives-one-input rule; combinational blocks only consume
 * outputs that already exist, so the combinational subgraph is a DAG
 * (required under SimMode::Ideal). Leftover outputs are folded back
 * into integrator inputs, exercising multi-driver current summing and
 * state-broken feedback loops.
 */
Netlist
randomNetlist(std::mt19937_64 &rng)
{
    Netlist net;
    std::vector<PortRef> pool;
    std::vector<BlockId> integs;

    std::size_t n_int = 2 + rng() % 3;
    for (std::size_t i = 0; i < n_int; ++i) {
        BlockParams p;
        p.ic = uniform(rng, -0.5, 0.5);
        BlockId id = net.add(BlockKind::Integrator, p);
        integs.push_back(id);
        pool.push_back(net.out(id));
    }
    for (std::size_t i = 0; i < 2; ++i) {
        BlockParams p;
        p.level = uniform(rng, -1.0, 1.0);
        pool.push_back(net.out(net.add(BlockKind::Dac, p)));
    }
    {
        BlockParams p;
        double w = uniform(rng, 1.0, 8.0);
        p.ext_in = [w](double t) { return 0.4 * std::sin(w * t); };
        pool.push_back(net.out(net.add(BlockKind::ExtIn, p)));
    }

    auto takeOut = [&]() {
        if (pool.empty()) {
            BlockParams p;
            p.level = uniform(rng, -1.0, 1.0);
            return net.out(net.add(BlockKind::Dac, p));
        }
        std::size_t i = rng() % pool.size();
        PortRef r = pool[i];
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(i));
        return r;
    };

    std::size_t n_comb = 6 + rng() % 5;
    for (std::size_t i = 0; i < n_comb; ++i) {
        switch (rng() % 4) {
          case 0: {
            BlockParams p;
            p.gain = uniform(rng, -2.0, 2.0);
            BlockId id = net.add(BlockKind::MulGain, p);
            net.connect(takeOut(), net.in(id, 0));
            pool.push_back(net.out(id));
            break;
          }
          case 1: {
            BlockId id = net.add(BlockKind::MulVar);
            net.connect(takeOut(), net.in(id, 0));
            net.connect(takeOut(), net.in(id, 1));
            pool.push_back(net.out(id));
            break;
          }
          case 2: {
            BlockParams p;
            p.copies = 1 + rng() % 4;
            BlockId id = net.add(BlockKind::Fanout, p);
            net.connect(takeOut(), net.in(id, 0));
            for (std::size_t c = 0; c < p.copies; ++c)
                pool.push_back(net.out(id, c));
            break;
          }
          default: {
            BlockParams p;
            double a = uniform(rng, 0.5, 3.0);
            for (std::size_t s = 0; s < 9; ++s) {
                double x = -1.0 + 2.0 * static_cast<double>(s) / 8.0;
                p.table.push_back(std::tanh(a * x));
            }
            BlockId id = net.add(BlockKind::Lut, p);
            net.connect(takeOut(), net.in(id, 0));
            pool.push_back(net.out(id));
            break;
          }
        }
    }

    net.connect(takeOut(), net.in(net.add(BlockKind::Adc), 0));
    net.connect(takeOut(), net.in(net.add(BlockKind::ExtOut), 0));
    while (!pool.empty())
        net.connect(takeOut(),
                    net.in(integs[rng() % integs.size()], 0));
    return net;
}

void
expectPlanMatchesReference(std::uint64_t seed, SimMode mode)
{
    std::mt19937_64 rng(seed);
    Netlist net = randomNetlist(rng);

    AnalogSpec spec = prototypeSpec();
    spec.mode = mode;

    Simulator sim(net, spec, /*die_seed=*/seed * 7919 + 13);
    la::Vector y(sim.stateCount());
    la::Vector d_soa(sim.stateCount());
    la::Vector d_aos(sim.stateCount());
    la::Vector d_ref(sim.stateCount());

    for (int trial = 0; trial < 10; ++trial) {
        // The last trials push states past the clip range so overflow
        // latches must fire (identically) on all paths.
        double scale = trial < 7 ? 0.9 : 3.0;
        for (std::size_t i = 0; i < y.size(); ++i)
            y[i] = uniform(rng, -scale, scale);
        double t = uniform(rng, 0.0, 1.0);

        sim.clearExceptions();
        sim.evalRhs(t, y, d_soa);
        std::vector<std::uint8_t> latch_soa = sim.exceptionLatches();

        sim.clearExceptions();
        sim.evalRhsAos(t, y, d_aos);
        std::vector<std::uint8_t> latch_aos = sim.exceptionLatches();

        sim.clearExceptions();
        sim.evalRhsReference(t, y, d_ref);
        std::vector<std::uint8_t> latch_ref = sim.exceptionLatches();

        EXPECT_LE(la::maxAbsDiff(d_soa, d_ref), 1e-15)
            << "seed " << seed << " trial " << trial;
        EXPECT_LE(la::maxAbsDiff(d_aos, d_ref), 1e-15)
            << "seed " << seed << " trial " << trial;
        EXPECT_LE(la::maxAbsDiff(d_soa, d_aos), 1e-15)
            << "seed " << seed << " trial " << trial;
        EXPECT_EQ(latch_soa, latch_ref)
            << "seed " << seed << " trial " << trial;
        EXPECT_EQ(latch_aos, latch_ref)
            << "seed " << seed << " trial " << trial;
        if (trial >= 7) {
            EXPECT_TRUE(sim.anyException())
                << "seed " << seed << " trial " << trial;
        }
    }
}

TEST(PlanEquivalence, IdealModeRandomNetlists)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed)
        expectPlanMatchesReference(seed, SimMode::Ideal);
}

TEST(PlanEquivalence, BandwidthModeRandomNetlists)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed)
        expectPlanMatchesReference(seed, SimMode::Bandwidth);
}

TEST(PlanEquivalence, IdealVariationDisabled)
{
    std::mt19937_64 rng(42);
    Netlist net = randomNetlist(rng);
    AnalogSpec spec = prototypeSpec();
    spec.mode = SimMode::Ideal;
    spec.variation.enabled = false;

    Simulator sim(net, spec, 1);
    la::Vector y(sim.stateCount()), a(sim.stateCount()),
        b(sim.stateCount()), c(sim.stateCount());
    for (std::size_t i = 0; i < y.size(); ++i)
        y[i] = uniform(rng, -0.8, 0.8);
    // Variation disabled means every output stage is the identity:
    // this exercises the SoA tables' clamp-only fast path.
    sim.evalRhs(0.25, y, a);
    sim.clearExceptions();
    sim.evalRhsAos(0.25, y, c);
    sim.clearExceptions();
    sim.evalRhsReference(0.25, y, b);
    EXPECT_LE(la::maxAbsDiff(a, b), 1e-15);
    EXPECT_LE(la::maxAbsDiff(c, b), 1e-15);
    EXPECT_LE(la::maxAbsDiff(a, c), 1e-15);
}

TEST(PlanEquivalence, SurvivesParamEditAndRewire)
{
    // Gains/DAC levels/LUT tables may change between runs and
    // connections may be re-derived; the plan must track both.
    std::mt19937_64 rng(7);
    Netlist net;
    BlockId integ = net.add(BlockKind::Integrator);
    BlockParams gp;
    gp.gain = 0.5;
    BlockId g = net.add(BlockKind::MulGain, gp);
    BlockParams dp;
    dp.level = 0.25;
    BlockId d = net.add(BlockKind::Dac, dp);
    net.connect(net.out(integ), net.in(g, 0));
    net.connect(net.out(g), net.in(integ, 0));
    net.connect(net.out(d), net.in(integ, 0));

    AnalogSpec spec = prototypeSpec();
    spec.mode = SimMode::Ideal;
    Simulator sim(net, spec, 3);

    la::Vector y(sim.stateCount()), a(sim.stateCount()),
        b(sim.stateCount());
    y[0] = 0.3;

    net.params(g).gain = -1.5;
    net.params(d).level = -0.6;
    // Parameter edits are snapshotted at run()/inputValueAt(); probe
    // once so the plan workspace picks up the new gain and level.
    sim.inputValueAt(net.in(integ, 0), 0.0, y);
    sim.evalRhs(0.0, y, a);
    sim.clearExceptions();
    sim.evalRhsReference(0.0, y, b);
    EXPECT_LE(la::maxAbsDiff(a, b), 1e-15);

    net.disconnectAll(d);
    net.connect(net.out(d), net.in(g, 0));
    sim.refreshWiring();
    sim.evalRhs(0.0, y, a);
    sim.clearExceptions();
    sim.evalRhsReference(0.0, y, b);
    EXPECT_LE(la::maxAbsDiff(a, b), 1e-15);
}

TEST(PlanEquivalence, SoaTracksStageEdits)
{
    // stage()/setTrimCodes mutate output stages after the workspace
    // snapshot; the SoA lanes must be re-synced lazily (not stale)
    // and must then match both oracles, which read the stage structs
    // directly.
    std::mt19937_64 rng(99);
    Netlist net = randomNetlist(rng);
    AnalogSpec spec = prototypeSpec();
    spec.mode = SimMode::Ideal;
    Simulator sim(net, spec, 5);

    la::Vector y(sim.stateCount()), a(sim.stateCount()),
        b(sim.stateCount()), c(sim.stateCount());
    for (std::size_t i = 0; i < y.size(); ++i)
        y[i] = uniform(rng, -0.7, 0.7);

    // Knock a few stages well away from identity.
    std::size_t edited = 0;
    for (std::size_t i = 0; i < net.numBlocks() && edited < 3; ++i) {
        BlockId id{i};
        if (net.outputCount(id) == 0)
            continue; // sinks (ADC, ExtOut) have no output stage
        OutputStage &st = sim.stage(net.out(id));
        st.offset += 0.05;
        st.gain_err -= 0.08;
        st.cubic += 0.02;
        ++edited;
    }
    ASSERT_EQ(edited, 3u);

    sim.clearExceptions();
    sim.evalRhs(0.5, y, a);
    sim.clearExceptions();
    sim.evalRhsAos(0.5, y, c);
    sim.clearExceptions();
    sim.evalRhsReference(0.5, y, b);
    EXPECT_LE(la::maxAbsDiff(a, b), 1e-15);
    EXPECT_LE(la::maxAbsDiff(c, b), 1e-15);
}

} // namespace
} // namespace aa::circuit
