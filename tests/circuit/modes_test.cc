#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "aa/circuit/simulator.hh"

namespace aa::circuit {
namespace {

AnalogSpec
cleanSpec(SimMode mode)
{
    AnalogSpec spec;
    spec.variation.enabled = false;
    spec.adc_noise_sigma = 0.0;
    spec.mode = mode;
    return spec;
}

/** Feedback loop solving u = 0.25 as in Figure 1. */
struct Loop {
    Netlist net;
    BlockId integ, fan, mul, dac;

    Loop()
    {
        integ = net.add(BlockKind::Integrator);
        fan = net.add(BlockKind::Fanout);
        BlockParams mp;
        mp.gain = -2.0;
        mul = net.add(BlockKind::MulGain, mp);
        BlockParams dp;
        dp.level = 0.5;
        dac = net.add(BlockKind::Dac, dp);
        net.connect(net.out(integ), net.in(fan));
        net.connect(net.out(fan, 0), net.in(mul));
        net.connect(net.out(mul), net.in(integ));
        net.connect(net.out(dac), net.in(integ));
    }
};

TEST(Modes, SteadyStatesAgreeAcrossModes)
{
    double results[2];
    int k = 0;
    for (SimMode mode : {SimMode::Ideal, SimMode::Bandwidth}) {
        Loop loop;
        Simulator sim(loop.net, cleanSpec(mode), 1);
        RunOptions opts;
        opts.timeout = std::numeric_limits<double>::infinity();
        opts.steady_rate_tol = 1e-5 * AnalogSpec{}.integratorRate();
        auto res = sim.run(opts);
        EXPECT_EQ(res.reason, ode::StopReason::SteadyState);
        results[k++] = sim.outputValue(loop.net.out(loop.integ));
    }
    EXPECT_NEAR(results[0], 0.25, 2e-3);
    EXPECT_NEAR(results[0], results[1], 2e-3);
}

TEST(Modes, BandwidthModeHasMoreStates)
{
    Loop loop;
    Simulator ideal(loop.net, cleanSpec(SimMode::Ideal), 1);
    Simulator bw(loop.net, cleanSpec(SimMode::Bandwidth), 1);
    EXPECT_EQ(ideal.stateCount(), 1u); // just the integrator
    // integrator + fanout x2 + mul + dac outputs.
    EXPECT_EQ(bw.stateCount(), 5u);
}

TEST(Modes, BandwidthLagSlowsTransient)
{
    // At t = one ideal time constant, the bandwidth-limited circuit
    // lags behind the ideal one (extra poles in the loop).
    double values[2];
    int k = 0;
    for (SimMode mode : {SimMode::Ideal, SimMode::Bandwidth}) {
        Loop loop;
        AnalogSpec spec = cleanSpec(mode);
        spec.lag_margin = 2.0; // pronounced lag for the test
        Simulator sim(loop.net, spec, 1);
        RunOptions opts;
        opts.timeout = 0.5 / (2.0 * spec.integratorRate());
        sim.run(opts);
        values[k++] = sim.outputValue(loop.net.out(loop.integ));
    }
    EXPECT_GT(values[0], values[1]);
}

TEST(Modes, HigherBandwidthConvergesFasterInRealTime)
{
    // The paper's core performance lever: scaling the design
    // bandwidth proportionally shrinks solution time.
    auto settle_time = [&](double bw) {
        Loop loop;
        AnalogSpec spec = cleanSpec(SimMode::Bandwidth);
        spec.bandwidth_hz = bw;
        Simulator sim(loop.net, spec, 1);
        RunOptions opts;
        opts.timeout = std::numeric_limits<double>::infinity();
        opts.steady_rate_tol = 1e-2 * spec.integratorRate();
        auto res = sim.run(opts);
        return res.analog_time;
    };
    double t20k = settle_time(20e3);
    double t80k = settle_time(80e3);
    EXPECT_NEAR(t20k / t80k, 4.0, 0.8);
}

TEST(ModesDeath, AlgebraicLoopFatalInIdealMode)
{
    // A loop through combinational blocks only (fanout -> mul ->
    // fanout) has no integrator: ideal mode cannot evaluate it.
    Netlist net;
    BlockId f = net.add(BlockKind::Fanout);
    BlockParams mp;
    mp.gain = 0.5;
    BlockId m = net.add(BlockKind::MulGain, mp);
    BlockId a = net.add(BlockKind::Adc);
    net.connect(net.out(f, 0), net.in(m));
    net.connect(net.out(m), net.in(f));
    net.connect(net.out(f, 1), net.in(a));
    EXPECT_EXIT(Simulator(net, cleanSpec(SimMode::Ideal), 1),
                ::testing::ExitedWithCode(1), "algebraic loop");
}

TEST(Modes, AlgebraicLoopRunsInBandwidthMode)
{
    // The same loop is fine with physical lags: it settles to zero
    // (loop gain < 1, no source).
    Netlist net;
    BlockId f = net.add(BlockKind::Fanout);
    BlockParams mp;
    mp.gain = 0.5;
    BlockId m = net.add(BlockKind::MulGain, mp);
    BlockId a = net.add(BlockKind::Adc);
    net.connect(net.out(f, 0), net.in(m));
    net.connect(net.out(m), net.in(f));
    net.connect(net.out(f, 1), net.in(a));
    Simulator sim(net, cleanSpec(SimMode::Bandwidth), 1);
    RunOptions opts;
    opts.timeout = 1e-4;
    sim.run(opts);
    EXPECT_NEAR(sim.inputValue(net.in(a)), 0.0, 1e-6);
}

} // namespace
} // namespace aa::circuit
