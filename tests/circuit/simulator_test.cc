#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "aa/circuit/simulator.hh"

namespace aa::circuit {
namespace {

AnalogSpec
cleanSpec(SimMode mode = SimMode::Ideal)
{
    AnalogSpec spec;
    spec.variation.enabled = false;
    spec.adc_noise_sigma = 0.0;
    spec.mode = mode;
    return spec;
}

/**
 * The Figure 1 circuit: one integrator solving du/dt = a*u + b with
 * a = -gain fed back through a fanout and multiplier, bias from the
 * DAC. Steady state: u = -b/a.
 */
struct Fig1Circuit {
    Netlist net;
    BlockId integ, fan, mul, dac, adc;

    Fig1Circuit(double a_coeff, double b_coeff, double uinit)
    {
        BlockParams ip;
        ip.ic = uinit;
        integ = net.add(BlockKind::Integrator, ip);
        fan = net.add(BlockKind::Fanout);
        BlockParams mp;
        mp.gain = a_coeff;
        mul = net.add(BlockKind::MulGain, mp);
        BlockParams dp;
        dp.level = b_coeff;
        dac = net.add(BlockKind::Dac, dp);
        adc = net.add(BlockKind::Adc);

        net.connect(net.out(integ), net.in(fan));
        net.connect(net.out(fan, 0), net.in(adc));
        net.connect(net.out(fan, 1), net.in(mul));
        net.connect(net.out(mul), net.in(integ));
        net.connect(net.out(dac), net.in(integ));
    }
};

TEST(Simulator, Figure1SteadyStateIsMinusBOverA)
{
    Fig1Circuit c(-2.0, 0.5, 0.0);
    Simulator sim(c.net, cleanSpec(), 1);
    RunOptions opts;
    opts.timeout = std::numeric_limits<double>::infinity();
    opts.steady_rate_tol = 1e-5 * AnalogSpec{}.integratorRate();
    auto res = sim.run(opts);
    EXPECT_EQ(res.reason, ode::StopReason::SteadyState);
    EXPECT_NEAR(sim.outputValue(c.net.out(c.integ)), 0.25, 2e-3);
}

TEST(Simulator, Figure1ExponentialApproach)
{
    // u(t) = 0.25 (1 - e^(a * rate * t)) for uinit = 0, a = -2:
    // check the waveform at one time constant.
    Fig1Circuit c(-2.0, 0.5, 0.0);
    AnalogSpec spec = cleanSpec();
    Simulator sim(c.net, spec, 1);
    double tau = 1.0 / (2.0 * spec.integratorRate());
    RunOptions opts;
    opts.timeout = tau;
    sim.run(opts);
    double expected = 0.25 * (1.0 - std::exp(-1.0));
    EXPECT_NEAR(sim.outputValue(c.net.out(c.integ)), expected, 5e-3);
}

TEST(Simulator, Figure1FromNonzeroInitialCondition)
{
    Fig1Circuit c(-1.0, 0.0, 0.8);
    AnalogSpec spec = cleanSpec();
    Simulator sim(c.net, spec, 1);
    double tau = 1.0 / spec.integratorRate();
    RunOptions opts;
    opts.timeout = 2.0 * tau;
    sim.run(opts);
    EXPECT_NEAR(sim.outputValue(c.net.out(c.integ)),
                0.8 * std::exp(-2.0), 5e-3);
}

TEST(Simulator, TwoVariableGradientFlowSolvesLinearSystem)
{
    // Figure 5: du0/dt = b0 - a00 u0 - a01 u1, etc. for
    // A = [[0.8, 0.2], [0.2, 0.6]], b = [0.4, 0.4].
    // Exact: u = A^-1 b = [0.3636..., 0.5454...].
    Netlist net;
    BlockId i0 = net.add(BlockKind::Integrator);
    BlockId i1 = net.add(BlockKind::Integrator);
    BlockParams f3;
    f3.copies = 3;
    BlockId f0 = net.add(BlockKind::Fanout, f3);
    BlockId f1 = net.add(BlockKind::Fanout, f3);

    auto mul = [&](double g) {
        BlockParams p;
        p.gain = g;
        return net.add(BlockKind::MulGain, p);
    };
    BlockId m00 = mul(-0.8), m01 = mul(-0.2);
    BlockId m10 = mul(-0.2), m11 = mul(-0.6);
    BlockParams dp;
    dp.level = 0.4;
    BlockId d0 = net.add(BlockKind::Dac, dp);
    BlockId d1 = net.add(BlockKind::Dac, dp);
    BlockId a0 = net.add(BlockKind::Adc);
    BlockId a1 = net.add(BlockKind::Adc);

    net.connect(net.out(i0), net.in(f0));
    net.connect(net.out(i1), net.in(f1));
    net.connect(net.out(f0, 0), net.in(m00));
    net.connect(net.out(f0, 1), net.in(m10));
    net.connect(net.out(f0, 2), net.in(a0));
    net.connect(net.out(f1, 0), net.in(m01));
    net.connect(net.out(f1, 1), net.in(m11));
    net.connect(net.out(f1, 2), net.in(a1));
    net.connect(net.out(m00), net.in(i0));
    net.connect(net.out(m01), net.in(i0));
    net.connect(net.out(d0), net.in(i0));
    net.connect(net.out(m10), net.in(i1));
    net.connect(net.out(m11), net.in(i1));
    net.connect(net.out(d1), net.in(i1));

    Simulator sim(net, cleanSpec(), 1);
    RunOptions opts;
    opts.timeout = std::numeric_limits<double>::infinity();
    opts.steady_rate_tol = 1e-5 * AnalogSpec{}.integratorRate();
    auto res = sim.run(opts);
    EXPECT_EQ(res.reason, ode::StopReason::SteadyState);
    // Tolerance: the 8-bit DAC quantizes b = 0.4 to ~0.40392, and
    // A^-1 maps that bias error to up to ~0.0053 in u.
    EXPECT_NEAR(sim.outputValue(net.out(i0)), 4.0 / 11.0, 1e-2);
    EXPECT_NEAR(sim.outputValue(net.out(i1)), 6.0 / 11.0, 1e-2);
}

TEST(Simulator, OverflowLatchesStickyException)
{
    // An unstable loop (positive feedback) must clip and latch.
    Fig1Circuit c(+2.0, 0.5, 0.1);
    AnalogSpec spec = cleanSpec();
    Simulator sim(c.net, spec, 1);
    RunOptions opts;
    opts.timeout = 10.0 / spec.integratorRate();
    auto res = sim.run(opts);
    EXPECT_TRUE(res.any_exception);
    EXPECT_TRUE(sim.anyException());
    // The integrator's latch specifically is set.
    EXPECT_NE(sim.exceptionLatches()[c.integ.v], 0);
    sim.clearExceptions();
    EXPECT_FALSE(sim.anyException());
}

TEST(Simulator, IntegratorSaturatesAtClipRange)
{
    Fig1Circuit c(+2.0, 0.5, 0.1);
    AnalogSpec spec = cleanSpec();
    Simulator sim(c.net, spec, 1);
    RunOptions opts;
    opts.timeout = 50.0 / spec.integratorRate();
    sim.run(opts);
    EXPECT_LE(sim.outputValue(c.net.out(c.integ)),
              spec.clip_range + 5e-3);
}

TEST(Simulator, NoExceptionOnHealthyRun)
{
    Fig1Circuit c(-2.0, 0.5, 0.0);
    Simulator sim(c.net, cleanSpec(), 1);
    RunOptions opts;
    opts.timeout = 1e-4;
    auto res = sim.run(opts);
    EXPECT_FALSE(res.any_exception);
}

TEST(Simulator, ProcessVariationShiftsResultReproducibly)
{
    AnalogSpec spec = cleanSpec();
    spec.variation.enabled = true;

    auto result_for = [&](std::uint64_t seed) {
        Fig1Circuit c(-2.0, 0.5, 0.0);
        Simulator sim(c.net, spec, seed);
        RunOptions opts;
        opts.timeout = std::numeric_limits<double>::infinity();
        opts.steady_rate_tol = 1e-5 * AnalogSpec{}.integratorRate();
        sim.run(opts);
        return sim.outputValue(c.net.out(c.integ));
    };
    double die1 = result_for(11);
    double die1_again = result_for(11);
    double die2 = result_for(22);
    EXPECT_DOUBLE_EQ(die1, die1_again); // deterministic per die
    EXPECT_NE(die1, die2);              // dies differ
    // Uncalibrated error stays small but visible.
    EXPECT_NEAR(die1, 0.25, 0.05);
    EXPECT_NE(die1, 0.25);
}

TEST(Simulator, TrimCodesAdjustDcTransfer)
{
    Netlist net;
    BlockParams mp;
    mp.gain = 1.0;
    BlockId m = net.add(BlockKind::MulGain, mp);
    AnalogSpec spec = cleanSpec();
    Simulator sim(net, spec, 1);
    double before = sim.dcTransfer(m, 0.5);
    sim.setTrimCodes(net.out(m), 8, 0);
    double after = sim.dcTransfer(m, 0.5);
    EXPECT_NEAR(after - before, trimOffsetFromCode(spec, 8), 1e-12);
}

TEST(Simulator, ObserverStreamsStates)
{
    Fig1Circuit c(-2.0, 0.5, 0.0);
    Simulator sim(c.net, cleanSpec(), 1);
    std::size_t calls = 0;
    RunOptions opts;
    opts.timeout = 1e-4;
    opts.observer = [&](double, const la::Vector &) { ++calls; };
    auto res = sim.run(opts);
    EXPECT_EQ(calls, res.steps + 1);
}

TEST(Simulator, StateIndexOfIntegrator)
{
    Fig1Circuit c(-2.0, 0.5, 0.0);
    Simulator sim(c.net, cleanSpec(SimMode::Ideal), 1);
    // In ideal mode the single integrator is state 0.
    EXPECT_EQ(sim.stateIndexOf(c.net.out(c.integ)), 0u);
    // A combinational output is not a state in ideal mode.
    EXPECT_EQ(sim.stateIndexOf(c.net.out(c.mul)),
              static_cast<std::size_t>(-1));
}

TEST(Simulator, RefreshWiringFollowsReconfiguration)
{
    Netlist net;
    BlockParams dp;
    dp.level = 0.5;
    BlockId d = net.add(BlockKind::Dac, dp);
    BlockParams dp2;
    dp2.level = -0.25;
    BlockId d2 = net.add(BlockKind::Dac, dp2);
    BlockId a = net.add(BlockKind::Adc);
    net.connect(net.out(d), net.in(a));

    Simulator sim(net, cleanSpec(), 1);
    RunOptions opts;
    opts.timeout = 1e-5;
    sim.run(opts);
    EXPECT_NEAR(sim.inputValue(net.in(a)), 0.5, 0.02);

    net.disconnectAll(d);
    net.connect(net.out(d2), net.in(a));
    sim.refreshWiring();
    sim.run(opts);
    EXPECT_NEAR(sim.inputValue(net.in(a)), -0.25, 0.02);
}

} // namespace
} // namespace aa::circuit
