#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "aa/circuit/simulator.hh"

namespace aa::circuit {
namespace {

AnalogSpec
cleanSpec(SimMode mode = SimMode::Ideal)
{
    AnalogSpec spec;
    spec.variation.enabled = false;
    spec.adc_noise_sigma = 0.0;
    spec.mode = mode;
    return spec;
}

std::vector<double>
tabulate(const std::function<double(double)> &fn, std::size_t depth)
{
    std::vector<double> table(depth);
    for (std::size_t i = 0; i < depth; ++i) {
        double x = -1.0 + 2.0 * static_cast<double>(i) /
                              static_cast<double>(depth - 1);
        table[i] = fn(x);
    }
    return table;
}

TEST(LutDynamics, NonlinearFeedbackFindsRoot)
{
    // du/dt = 0.5 - u - lut(u) with lut = 0.5 u^3: steady state
    // solves u + 0.5 u^3 = 0.5 (root ~0.4746).
    Netlist net;
    BlockId integ = net.add(BlockKind::Integrator);
    BlockParams fp;
    fp.copies = 2;
    BlockId fan = net.add(BlockKind::Fanout, fp);
    BlockParams mp;
    mp.gain = -1.0;
    BlockId mul = net.add(BlockKind::MulGain, mp);
    BlockParams lp;
    lp.table = tabulate(
        [](double x) { return -0.5 * x * x * x; }, 256);
    BlockId lut = net.add(BlockKind::Lut, lp);
    BlockParams dp;
    dp.level = 0.5;
    BlockId dac = net.add(BlockKind::Dac, dp);

    net.connect(net.out(integ), net.in(fan));
    net.connect(net.out(fan, 0), net.in(mul));
    net.connect(net.out(fan, 1), net.in(lut));
    net.connect(net.out(mul), net.in(integ));
    net.connect(net.out(lut), net.in(integ));
    net.connect(net.out(dac), net.in(integ));

    AnalogSpec spec = cleanSpec();
    Simulator sim(net, spec, 1);
    RunOptions opts;
    opts.timeout = std::numeric_limits<double>::infinity();
    opts.steady_rate_tol = 1e-4 * spec.integratorRate();
    auto res = sim.run(opts);
    EXPECT_EQ(res.reason, ode::StopReason::SteadyState);
    // Root of u + 0.5u^3 = 0.5.
    double u = sim.outputValue(net.out(integ));
    EXPECT_NEAR(u + 0.5 * u * u * u, 0.5, 0.01);
}

TEST(LutDynamics, TableQuantizationLimitsAccuracy)
{
    // A LUT loaded with identity deviates from perfect pass-through
    // by at most half an 8-bit step plus interpolation error.
    Netlist net;
    BlockParams dp;
    dp.level = 0.3123;
    BlockId dac = net.add(BlockKind::Dac, dp);
    BlockParams lp;
    lp.table = tabulate([](double x) { return x; }, 256);
    BlockId lut = net.add(BlockKind::Lut, lp);
    BlockId adc = net.add(BlockKind::Adc);
    net.connect(net.out(dac), net.in(lut));
    net.connect(net.out(lut), net.in(adc));

    Simulator sim(net, cleanSpec(), 1);
    RunOptions opts;
    opts.timeout = 1e-4;
    sim.run(opts);
    double in = sim.inputValue(net.in(lut));
    double out = sim.outputValue(net.out(lut));
    EXPECT_NEAR(out, in, 2.0 / 255.0);
    EXPECT_GT(std::fabs(out), 0.0);
}

TEST(MulVarDynamics, QuadraticFeedbackSteadyState)
{
    // du/dt = b - u - u^2 via a variable-variable multiplier fed by
    // two fanout copies of u. Steady state: u^2 + u = b.
    Netlist net;
    BlockId integ = net.add(BlockKind::Integrator);
    BlockParams fp;
    fp.copies = 3;
    BlockId fan = net.add(BlockKind::Fanout, fp);
    BlockId mulvar = net.add(BlockKind::MulVar);
    BlockParams neg;
    neg.gain = -1.0;
    BlockId m_lin = net.add(BlockKind::MulGain, neg);
    BlockId m_sq = net.add(BlockKind::MulGain, neg);
    BlockParams dp;
    dp.level = 0.6;
    BlockId dac = net.add(BlockKind::Dac, dp);

    net.connect(net.out(integ), net.in(fan));
    net.connect(net.out(fan, 0), net.in(mulvar, 0));
    net.connect(net.out(fan, 1), net.in(mulvar, 1));
    net.connect(net.out(fan, 2), net.in(m_lin));
    net.connect(net.out(mulvar), net.in(m_sq));
    net.connect(net.out(m_sq), net.in(integ));
    net.connect(net.out(m_lin), net.in(integ));
    net.connect(net.out(dac), net.in(integ));

    AnalogSpec spec = cleanSpec();
    Simulator sim(net, spec, 1);
    RunOptions opts;
    opts.timeout = std::numeric_limits<double>::infinity();
    opts.steady_rate_tol = 1e-4 * spec.integratorRate();
    auto res = sim.run(opts);
    EXPECT_EQ(res.reason, ode::StopReason::SteadyState);
    double u = sim.outputValue(net.out(integ));
    // u^2 + u = 0.6 -> u = (-1 + sqrt(3.4)) / 2 ~ 0.4220.
    EXPECT_NEAR(u, (-1.0 + std::sqrt(3.4)) / 2.0, 5e-3);
}

TEST(ExtInDynamics, ForcedIntegratorTracksRamp)
{
    // du/dt = rate * ext(t) with ext = step of 0.2: u ramps.
    Netlist net;
    BlockParams ep;
    ep.ext_in = [](double) { return 0.2; };
    BlockId ext = net.add(BlockKind::ExtIn, ep);
    BlockId integ = net.add(BlockKind::Integrator);
    net.connect(net.out(ext), net.in(integ));

    AnalogSpec spec = cleanSpec();
    Simulator sim(net, spec, 1);
    RunOptions opts;
    opts.timeout = 1.0 / spec.integratorRate();
    sim.run(opts);
    EXPECT_NEAR(sim.outputValue(net.out(integ)), 0.2, 5e-3);
}

TEST(ExtInDynamics, SinusoidalForcingFollowsLowPass)
{
    // First-order loop driven by a slow sinusoid: the output follows
    // with the analytic single-pole amplitude.
    Netlist net;
    AnalogSpec spec = cleanSpec(SimMode::Bandwidth);
    double w = 0.2 * spec.integratorRate(); // well below the pole
    BlockParams ep;
    ep.ext_in = [w](double t) { return 0.5 * std::sin(w * t); };
    BlockId ext = net.add(BlockKind::ExtIn, ep);
    BlockId integ = net.add(BlockKind::Integrator);
    BlockId fan = net.add(BlockKind::Fanout);
    BlockParams mp;
    mp.gain = -1.0;
    BlockId mul = net.add(BlockKind::MulGain, mp);
    BlockId adc = net.add(BlockKind::Adc);
    net.connect(net.out(ext), net.in(integ));
    net.connect(net.out(integ), net.in(fan));
    net.connect(net.out(fan, 0), net.in(mul));
    net.connect(net.out(fan, 1), net.in(adc));
    net.connect(net.out(mul), net.in(integ));

    // Run several forcing periods, then check the output amplitude
    // against |H| = 1/sqrt(1 + (w/rate)^2) ~ 0.98.
    Simulator sim(net, spec, 1);
    double peak = 0.0;
    RunOptions opts;
    opts.timeout = 6.0 * 2.0 * M_PI / w;
    std::size_t ii = sim.stateIndexOf(net.out(integ));
    opts.observer = [&](double t, const la::Vector &y) {
        if (t > 3.0 * 2.0 * M_PI / w)
            peak = std::max(peak, std::fabs(y[ii]));
    };
    sim.run(opts);
    double expected = 0.5 / std::sqrt(1.0 + 0.2 * 0.2);
    EXPECT_NEAR(peak, expected, 0.03);
}

} // namespace
} // namespace aa::circuit
