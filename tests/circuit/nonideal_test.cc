#include <gtest/gtest.h>

#include <cmath>

#include "aa/circuit/nonideal.hh"
#include "aa/common/stats.hh"

namespace aa::circuit {
namespace {

TEST(Quantize, CodeRangeAndMidpoints)
{
    EXPECT_EQ(quantizeCode(-1.0, 8), 0);
    EXPECT_EQ(quantizeCode(1.0, 8), 255);
    EXPECT_EQ(quantizeCode(0.0, 8), 128); // rounds up from 127.5
}

TEST(Quantize, ClampsOutOfRange)
{
    EXPECT_EQ(quantizeCode(-5.0, 8), 0);
    EXPECT_EQ(quantizeCode(5.0, 8), 255);
}

TEST(Quantize, RoundTripErrorBoundedByLsb)
{
    for (std::size_t bits : {8u, 12u}) {
        double lsb = 2.0 / static_cast<double>((1 << bits) - 1);
        for (double v = -1.0; v <= 1.0; v += 0.00917) {
            double q = quantizeValue(v, bits);
            EXPECT_LE(std::fabs(q - v), 0.5 * lsb + 1e-12)
                << "bits " << bits << " v " << v;
        }
    }
}

TEST(Quantize, TwelveBitFinerThanEight)
{
    double v = 0.123456;
    EXPECT_LT(std::fabs(quantizeValue(v, 12) - v),
              std::fabs(quantizeValue(v, 8) - v) + 1e-12);
}

TEST(TrimCodes, RangeMatchesBits)
{
    AnalogSpec spec;
    spec.trim_bits = 6;
    EXPECT_EQ(trimCodeMin(spec), -32);
    EXPECT_EQ(trimCodeMax(spec), 31);
}

TEST(TrimCodes, OffsetMappingLinear)
{
    AnalogSpec spec;
    double step = spec.trim_range / 32.0;
    EXPECT_DOUBLE_EQ(trimOffsetFromCode(spec, 0), 0.0);
    EXPECT_DOUBLE_EQ(trimOffsetFromCode(spec, 1), step);
    EXPECT_DOUBLE_EQ(trimOffsetFromCode(spec, -32),
                     -spec.trim_range);
}

TEST(TrimCodes, GainMappingAroundUnity)
{
    AnalogSpec spec;
    EXPECT_DOUBLE_EQ(trimGainFromCode(spec, 0), 1.0);
    EXPECT_GT(trimGainFromCode(spec, 10), 1.0);
    EXPECT_LT(trimGainFromCode(spec, -10), 1.0);
}

TEST(OutputStage, IdealStagePassesThrough)
{
    AnalogSpec spec;
    OutputStage s; // all errors zero
    bool ovf = false;
    EXPECT_DOUBLE_EQ(applyStage(s, spec, 0.5, ovf), 0.5);
    EXPECT_FALSE(ovf);
}

TEST(OutputStage, OffsetAndGainApplied)
{
    AnalogSpec spec;
    OutputStage s;
    s.offset = 0.01;
    s.gain_err = 0.1;
    bool ovf = false;
    EXPECT_NEAR(applyStage(s, spec, 0.5, ovf), 0.5 * 1.1 + 0.01,
                1e-12);
}

TEST(OutputStage, TrimCancelsErrors)
{
    AnalogSpec spec;
    OutputStage s;
    s.offset = 0.02;
    s.trim_offset = -0.02;
    s.gain_err = 0.05;
    s.trim_gain = 1.0 / 1.05;
    bool ovf = false;
    EXPECT_NEAR(applyStage(s, spec, 0.7, ovf), 0.7, 1e-12);
}

TEST(OutputStage, CubicCompressionBendsNearRails)
{
    AnalogSpec spec;
    OutputStage s;
    s.cubic = 0.05;
    bool ovf = false;
    double near_rail = applyStage(s, spec, 0.9, ovf);
    EXPECT_LT(near_rail, 0.9);
    double small = applyStage(s, spec, 0.05, ovf);
    EXPECT_NEAR(small, 0.05, 1e-4); // negligible at small signals
}

TEST(OutputStage, OverflowFlagAndHardClip)
{
    AnalogSpec spec;
    OutputStage s;
    bool ovf = false;
    double v = applyStage(s, spec, 1.05, ovf);
    EXPECT_TRUE(ovf);
    EXPECT_LE(v, spec.clip_range);
    ovf = false;
    v = applyStage(s, spec, -2.0, ovf);
    EXPECT_TRUE(ovf);
    EXPECT_DOUBLE_EQ(v, -spec.clip_range);
}

TEST(OutputStage, SampleStatisticsFollowModel)
{
    VariationModel vm;
    vm.offset_sigma = 0.01;
    vm.gain_err_sigma = 0.05;
    Rng rng(42);
    aa::RunningStats off, gain;
    for (int i = 0; i < 5000; ++i) {
        auto s = OutputStage::sample(vm, rng);
        off.add(s.offset);
        gain.add(s.gain_err);
    }
    EXPECT_NEAR(off.mean(), 0.0, 0.001);
    EXPECT_NEAR(off.stddev(), 0.01, 0.001);
    EXPECT_NEAR(gain.stddev(), 0.05, 0.005);
}

TEST(OutputStage, DisabledVariationIsIdeal)
{
    VariationModel vm;
    vm.enabled = false;
    Rng rng(1);
    auto s = OutputStage::sample(vm, rng);
    EXPECT_DOUBLE_EQ(s.offset, 0.0);
    EXPECT_DOUBLE_EQ(s.gain_err, 0.0);
    EXPECT_DOUBLE_EQ(s.cubic, 0.0);
}

TEST(NonIdealDeath, TrimCodeOutOfRangeFatal)
{
    AnalogSpec spec;
    EXPECT_EXIT(trimOffsetFromCode(spec, 99),
                ::testing::ExitedWithCode(1), "out of range");
}

} // namespace
} // namespace aa::circuit
