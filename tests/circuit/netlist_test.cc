#include <gtest/gtest.h>

#include "aa/circuit/netlist.hh"

namespace aa::circuit {
namespace {

TEST(Netlist, AddAndQueryBlocks)
{
    Netlist net;
    BlockId i = net.add(BlockKind::Integrator);
    BlockId m = net.add(BlockKind::MulGain);
    EXPECT_EQ(net.numBlocks(), 2u);
    EXPECT_EQ(net.kind(i), BlockKind::Integrator);
    EXPECT_EQ(net.kind(m), BlockKind::MulGain);
    EXPECT_EQ(net.inputCount(i), 1u);
    EXPECT_EQ(net.outputCount(i), 1u);
}

TEST(Netlist, FanoutOutputCountFollowsCopies)
{
    Netlist net;
    BlockParams p;
    p.copies = 3;
    BlockId f = net.add(BlockKind::Fanout, p);
    EXPECT_EQ(net.outputCount(f), 3u);
}

TEST(Netlist, CurrentsSumManyToOneInput)
{
    Netlist net;
    BlockId d1 = net.add(BlockKind::Dac);
    BlockId d2 = net.add(BlockKind::Dac);
    BlockId i = net.add(BlockKind::Integrator);
    net.connect(net.out(d1), net.in(i));
    net.connect(net.out(d2), net.in(i));
    EXPECT_EQ(net.driversOf(net.in(i)).size(), 2u);
}

TEST(Netlist, BlocksOfKindInInsertionOrder)
{
    Netlist net;
    BlockId a = net.add(BlockKind::Adc);
    net.add(BlockKind::Dac);
    BlockId b = net.add(BlockKind::Adc);
    auto adcs = net.blocksOfKind(BlockKind::Adc);
    ASSERT_EQ(adcs.size(), 2u);
    EXPECT_EQ(adcs[0], a);
    EXPECT_EQ(adcs[1], b);
}

TEST(Netlist, DisconnectAllRemovesBothDirections)
{
    Netlist net;
    BlockId d = net.add(BlockKind::Dac);
    BlockId m = net.add(BlockKind::MulGain);
    BlockId a = net.add(BlockKind::Adc);
    net.connect(net.out(d), net.in(m));
    net.connect(net.out(m), net.in(a));
    net.disconnectAll(m);
    EXPECT_TRUE(net.connections().empty());
}

TEST(Netlist, OutputInUseTracking)
{
    Netlist net;
    BlockId d = net.add(BlockKind::Dac);
    BlockId i = net.add(BlockKind::Integrator);
    EXPECT_FALSE(net.outputInUse(net.out(d)));
    net.connect(net.out(d), net.in(i));
    EXPECT_TRUE(net.outputInUse(net.out(d)));
}

TEST(NetlistDeath, OutputCannotDriveTwoInputs)
{
    // The key current-mode constraint: copying needs a fanout.
    Netlist net;
    BlockId d = net.add(BlockKind::Dac);
    BlockId i1 = net.add(BlockKind::Integrator);
    BlockId i2 = net.add(BlockKind::Integrator);
    net.connect(net.out(d), net.in(i1));
    EXPECT_EXIT(net.connect(net.out(d), net.in(i2)),
                ::testing::ExitedWithCode(1), "fanout");
}

TEST(NetlistDeath, PortRangeChecked)
{
    Netlist net;
    BlockId m = net.add(BlockKind::MulVar);
    EXPECT_EXIT(net.in(m, 2), ::testing::ExitedWithCode(1),
                "out of range");
    EXPECT_EXIT(net.out(m, 1), ::testing::ExitedWithCode(1),
                "out of range");
}

TEST(NetlistDeath, ValidateCatchesFloatingMulVarInput)
{
    Netlist net;
    BlockId m = net.add(BlockKind::MulVar);
    BlockId d = net.add(BlockKind::Dac);
    BlockId a = net.add(BlockKind::Adc);
    net.connect(net.out(d), net.in(m, 0));
    net.connect(net.out(m), net.in(a));
    // Input 1 floats while the multiplier drives a node.
    EXPECT_EXIT(net.validate(), ::testing::ExitedWithCode(1),
                "floating input");
}

TEST(Netlist, ValidateAllowsUnusedMulVar)
{
    Netlist net;
    net.add(BlockKind::MulVar); // fully unconnected: fine
    net.validate();
}

TEST(NetlistDeath, WiredLutWithoutTableFatal)
{
    Netlist net;
    BlockId l = net.add(BlockKind::Lut);
    BlockId a = net.add(BlockKind::Adc);
    net.connect(net.out(l), net.in(a));
    EXPECT_EXIT(net.validate(), ::testing::ExitedWithCode(1),
                "no function");
}

TEST(NetlistDeath, BadFanoutCopiesFatal)
{
    Netlist net;
    BlockParams p;
    p.copies = 9;
    EXPECT_EXIT(net.add(BlockKind::Fanout, p),
                ::testing::ExitedWithCode(1), "copies");
}

} // namespace
} // namespace aa::circuit
