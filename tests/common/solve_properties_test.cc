/**
 * @file
 * The property harness instantiated: every (workload x lane) pair of
 * the matrix — symmetric stencil, SPICE circuit, nonsymmetric
 * convection-diffusion, controlled-kappa ill-conditioned SPD, each
 * through the auto ladder, verified-analog refinement, the
 * analog-preconditioned Krylov lane, the digital lane, and
 * solveBatch — is held to the three shared properties:
 * accountability (never a silent wrong answer), thread-count
 * invariance (bit identity at dispatch concurrency 1 vs 4), and
 * failure-chain stability under injected faults. Lane counters must
 * partition `ok` in every scenario.
 *
 * The TSan leg of tools/check.sh replays this binary at
 * AASIM_THREADS=1 and =4 (thread counts are also pinned explicitly
 * for the 1-vs-4 comparisons).
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "aa/common/logging.hh"
#include "common/solve_properties.hh"

namespace aa::testutil {
namespace {

const bool g_quiet = [] {
    setLogLevel(LogLevel::Quiet);
    return true;
}();

struct PropertyCase {
    Workload workload;
    LaneCase lane;
};

std::vector<PropertyCase>
allCases()
{
    std::vector<PropertyCase> cases;
    for (const Workload &w : workloadMatrix())
        for (const LaneCase &l : laneMatrix())
            cases.push_back({w, l});
    return cases;
}

std::string
caseName(const ::testing::TestParamInfo<PropertyCase> &info)
{
    return info.param.workload.name + "_" + info.param.lane.name;
}

class SolveProperty : public ::testing::TestWithParam<PropertyCase>
{
  protected:
    /** Scenario defaults shared by every property: small pool, no
     *  deadlines, cheap failure handling (recovery recalibration and
     *  deep retry chains are covered by the chaos suite — here the
     *  doomed workloads should reach the lower ladder rungs fast,
     *  because simulated integration time scales with kappa). */
    ServiceRunSpec
    spec(std::size_t threads) const
    {
        ServiceRunSpec s;
        s.dies = 2;
        s.threads = threads;
        s.service.max_die_recoveries = 0;
        s.service.max_reroutes = 1;
        s.service.precond_max_iters = 12;
        s.service.batch_multi_rhs = GetParam().lane.batch;
        if (GetParam().workload.adc_bits)
            s.solver.spec.adc_bits = GetParam().workload.adc_bits;
        return s;
    }

    std::vector<service::SolveRequest>
    trace(std::size_t count = 3) const
    {
        auto t = laneTrace(GetParam().workload, GetParam().lane, count);
        for (service::SolveRequest &r : t)
            r.max_refine_passes = 2; // keep doomed chains cheap
        return t;
    }
};

TEST_P(SolveProperty, AnswersAreAccountable)
{
    ServiceRunResult run = runServiceTrace(trace(), spec(2));
    expectAllAnswersAccountable(run);
    expectLaneCountersExclusive(run.metrics);
}

TEST_P(SolveProperty, ThreadCountInvariance)
{
    ServiceRunResult serial = runServiceTrace(trace(), spec(1));
    ServiceRunResult threaded = runServiceTrace(trace(), spec(4));
    expectRunsIdentical(serial, threaded);
}

TEST_P(SolveProperty, FailureChainsStableUnderFaults)
{
    // A seeded fault plan on each die; whatever breaks, the stream
    // stays accountable and the failure story replays bit for bit at
    // any thread count.
    std::vector<fault::FaultPlan> plans = sampledFaultPlans(17, 2);
    ServiceRunSpec one = spec(1);
    one.plans = plans;
    ServiceRunSpec four = spec(4);
    four.plans = plans;
    ServiceRunResult serial = runServiceTrace(trace(), one);
    ServiceRunResult threaded = runServiceTrace(trace(), four);
    expectAllAnswersAccountable(serial);
    expectLaneCountersExclusive(serial.metrics);
    expectRunsIdentical(serial, threaded);
}

INSTANTIATE_TEST_SUITE_P(Matrix, SolveProperty,
                         ::testing::ValuesIn(allCases()), caseName);

} // namespace
} // namespace aa::testutil
