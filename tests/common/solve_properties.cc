#include "common/solve_properties.hh"

#include <future>
#include <utility>

#include "aa/analog/die_pool.hh"
#include "aa/la/generate.hh"
#include "aa/pde/convection.hh"
#include "aa/pde/poisson.hh"
#include "aa/spice/generate.hh"
#include "aa/spice/mna.hh"
#include "common/trace_matcher.hh"

namespace aa::testutil {

analog::AnalogSolverOptions
quietSolverOptions()
{
    analog::AnalogSolverOptions opts;
    opts.spec.variation.enabled = false;
    opts.spec.adc_noise_sigma = 0.0;
    opts.auto_calibrate = false;
    return opts;
}

double
relResidual(const la::DenseMatrix &a, const la::Vector &b,
            const la::Vector &u)
{
    la::Vector r = b - a.apply(u);
    return la::norm2(r) / la::norm2(b);
}

void
expectSolutionsBitEqual(const la::Vector &expected,
                        const la::Vector &actual,
                        const std::string &what)
{
    ASSERT_EQ(expected.size(), actual.size()) << what;
    for (std::size_t j = 0; j < expected.size(); ++j)
        EXPECT_EQ(expected[j], actual[j])
            << what << " component " << j;
}

// --- the workload matrix -----------------------------------------

Workload
stencilWorkload()
{
    pde::PoissonProblem p = pde::assemblePoisson(
        2, 3, [](double, double, double) { return 1.0; });
    return {"stencil",
            std::make_shared<const la::DenseMatrix>(p.a.toDense()),
            p.b, true};
}

Workload
circuitWorkload()
{
    spice::AssembleResult r =
        spice::assembleDeck(spice::gridDeck({3, 3}), {});
    EXPECT_TRUE(r.ok) << r.summary();
    return {"circuit",
            std::make_shared<const la::DenseMatrix>(
                r.system.g.toDense()),
            r.system.i, true};
}

Workload
convectionWorkload()
{
    pde::ConvectionDiffusionProblem p =
        pde::convectionBenchmark(2, 3, 0.8, 7);
    return {"convection",
            std::make_shared<const la::DenseMatrix>(p.a.toDense()),
            p.b, false};
}

Workload
illConditionedWorkload()
{
    // kappa = 20 through a 4-bit ADC at n = 8: the raw analog answer
    // lands at rel ~0.3, deterministically over the 0.2 verify bar,
    // so every lane below verified-analog gets exercised — at a
    // fraction of the integration time a kappa ~1e2 instance through
    // the default ADC would burn for the same ladder story.
    auto a = std::make_shared<const la::DenseMatrix>(
        la::spdLogSpectrum(8, 20.0, 11));
    return {"illcond", a, la::seededRhs(8, 13), true, 4};
}

std::vector<Workload>
workloadMatrix()
{
    return {stencilWorkload(), circuitWorkload(),
            convectionWorkload(), illConditionedWorkload()};
}

// --- lane cases ---------------------------------------------------

std::vector<LaneCase>
laneMatrix()
{
    return {
        {"auto", service::LanePreference::Auto, 1e-8, false},
        {"analog", service::LanePreference::AnalogOnly, 1e-8, false},
        {"precond", service::LanePreference::PrecondKrylov, 1e-8,
         false},
        {"digital", service::LanePreference::DigitalOnly, 0.0,
         false},
        {"batch", service::LanePreference::AnalogOnly, 0.0, true},
    };
}

// --- trace running ------------------------------------------------

std::vector<service::SolveRequest>
laneTrace(const Workload &w, const LaneCase &lane, std::size_t count)
{
    std::vector<service::SolveRequest> trace;
    for (std::size_t i = 0; i < count; ++i) {
        service::SolveRequest r;
        r.a = w.a;
        r.b = (1.0 + 0.125 * static_cast<double>(i)) * w.b;
        r.tolerance = lane.tolerance;
        r.lane = lane.lane;
        trace.push_back(std::move(r));
    }
    return trace;
}

ServiceRunResult
runServiceTrace(const std::vector<service::SolveRequest> &trace,
                const ServiceRunSpec &spec)
{
    ServiceRunResult out;
    analog::DiePool pool(spec.dies, spec.solver);
    // Every die gets an injector (an empty plan is inert) so the
    // per-die chain strings always exist for bit comparison.
    for (std::size_t k = 0; k < pool.size(); ++k) {
        fault::FaultPlan plan =
            k < spec.plans.size() ? spec.plans[k] : fault::FaultPlan{};
        pool.attachFaultInjector(
            k, std::make_shared<fault::FaultInjector>(plan));
    }

    service::ServiceOptions sopts = spec.service;
    sopts.threads = spec.threads;
    sopts.start_paused = true;
    service::SolveService svc(pool, sopts);

    out.trace = trace;
    std::vector<std::future<service::SolveResponse>> futures;
    for (const service::SolveRequest &req : trace)
        futures.push_back(svc.submit(service::SolveRequest(req)));
    svc.resume();
    svc.drain();
    svc.stop();
    for (auto &f : futures)
        out.responses.push_back(f.get());
    for (std::size_t k = 0; k < pool.size(); ++k)
        out.die_chains.push_back(pool.faultInjector(k)->chainString());
    out.metrics = svc.metrics();
    return out;
}

// --- the properties -----------------------------------------------

void
expectAllAnswersAccountable(const ServiceRunResult &run)
{
    ASSERT_EQ(run.responses.size(), run.trace.size());
    for (std::size_t i = 0; i < run.responses.size(); ++i) {
        const service::SolveResponse &r = run.responses[i];
        const service::SolveRequest &req = run.trace[i];
        // No deadlines and fallback enabled: everything is answered.
        ASSERT_EQ(r.status, service::RequestStatus::Ok)
            << "request " << i << ": " << r.reason;
        EXPECT_TRUE(r.degraded || r.verified)
            << "request " << i << " returned unaccountable answer";
        EXPECT_NE(r.lane, service::SolveLane::None)
            << "request " << i << " Ok answer claims no lane";
        EXPECT_EQ(r.degraded,
                  r.lane == service::SolveLane::DigitalCg)
            << "request " << i
            << ": degraded iff the digital lane answered";
        // Independently recompute the residual the service claims.
        // A lane that claimed convergence against the request's own
        // tolerance is held to it (2x for recompute round-off);
        // otherwise the raw-verify bar (analog) or the fallback
        // target (digital) applies.
        double bar = r.degraded ? 1e-6 : 0.2 + 1e-9;
        if (r.converged && req.tolerance > 0.0)
            bar = 2.0 * req.tolerance;
        EXPECT_LE(relResidual(*req.a, req.b, r.u), bar)
            << "request " << i
            << (r.degraded ? " (degraded)" : " (verified analog)")
            << " chain: " << r.failure_chain;
    }
}

void
expectResponseOutcomeIdentical(const service::SolveResponse &a,
                               const service::SolveResponse &b,
                               const std::string &what)
{
    EXPECT_EQ(a.status, b.status) << what;
    EXPECT_EQ(a.die, b.die) << what;
    EXPECT_EQ(a.exec_order, b.exec_order) << what;
    EXPECT_EQ(a.converged, b.converged) << what;
    EXPECT_EQ(a.degraded, b.degraded) << what;
    EXPECT_EQ(a.verified, b.verified) << what;
    EXPECT_EQ(a.reroutes, b.reroutes) << what;
    EXPECT_EQ(static_cast<int>(a.lane), static_cast<int>(b.lane))
        << what;
    EXPECT_EQ(a.krylov_iterations, b.krylov_iterations) << what;
    EXPECT_EQ(a.precond_applies, b.precond_applies) << what;
    EXPECT_TRUE(chainsMatch(a.failure_chain, b.failure_chain))
        << what;
    expectSolutionsBitEqual(a.u, b.u, what);
}

void
expectRunsIdentical(const ServiceRunResult &x,
                    const ServiceRunResult &y)
{
    ASSERT_EQ(x.die_chains.size(), y.die_chains.size());
    for (std::size_t k = 0; k < x.die_chains.size(); ++k)
        EXPECT_TRUE(chainsMatch(x.die_chains[k], y.die_chains[k]))
            << "die " << k;

    ASSERT_EQ(x.responses.size(), y.responses.size());
    for (std::size_t i = 0; i < x.responses.size(); ++i)
        expectResponseOutcomeIdentical(
            x.responses[i], y.responses[i],
            "request " + std::to_string(i));

    const service::ServiceMetrics &a = x.metrics;
    const service::ServiceMetrics &b = y.metrics;
    EXPECT_EQ(a.faults_seen, b.faults_seen);
    EXPECT_EQ(a.analog_failures, b.analog_failures);
    EXPECT_EQ(a.recoveries, b.recoveries);
    EXPECT_EQ(a.reroutes, b.reroutes);
    EXPECT_EQ(a.quarantines, b.quarantines);
    EXPECT_EQ(a.fallbacks, b.fallbacks);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.lane_analog, b.lane_analog);
    EXPECT_EQ(a.lane_refined, b.lane_refined);
    EXPECT_EQ(a.lane_precond, b.lane_precond);
    EXPECT_EQ(a.lane_digital, b.lane_digital);
    EXPECT_EQ(a.precond_attempts, b.precond_attempts);
    EXPECT_EQ(a.precond_failures, b.precond_failures);
    EXPECT_EQ(a.krylov_iterations, b.krylov_iterations);
    EXPECT_EQ(a.precond_applies, b.precond_applies);
}

void
expectLaneCountersExclusive(const service::ServiceMetrics &m)
{
    // Every Ok answer claims exactly one lane counter (metrics.hh).
    EXPECT_EQ(m.lane_analog + m.lane_refined + m.lane_precond +
                  m.lane_digital,
              m.ok)
        << "lane counters must partition ok: analog=" << m.lane_analog
        << " refined=" << m.lane_refined
        << " precond=" << m.lane_precond
        << " digital=" << m.lane_digital << " ok=" << m.ok;
    // The digital lane is exactly the degraded-fallback population.
    EXPECT_EQ(m.lane_digital, m.fallbacks);
    // Precond-lane detail: entries split into answers vs
    // fall-throughs, and iteration/apply totals need entries.
    EXPECT_EQ(m.precond_attempts, m.lane_precond + m.precond_failures);
    if (m.precond_attempts == 0) {
        EXPECT_EQ(m.precond_applies, 0u);
    }
}

std::vector<fault::FaultPlan>
sampledFaultPlans(std::uint64_t seed, std::size_t dies)
{
    fault::FaultRates rates;
    rates.stuck_integrator = 0.05;
    rates.gain_drift = 0.05;
    rates.adc_saturation = 0.05;
    rates.calibration_loss = 0.03;
    rates.config_corruption = 0.05;
    rates.die_death = 0.01;
    std::vector<fault::FaultPlan> plans;
    for (std::size_t k = 0; k < dies; ++k)
        plans.push_back(
            fault::FaultPlan::sample(seed * 131 + k, rates, 64));
    return plans;
}

} // namespace aa::testutil
