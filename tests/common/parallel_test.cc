/**
 * @file
 * Work-queue thread pool: full index coverage, reuse across batches,
 * exception propagation, and the AASIM_THREADS override.
 */

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "aa/common/parallel.hh"

namespace aa {
namespace {

TEST(Parallel, CoversEveryIndexExactlyOnce)
{
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    parallelFor(
        n, [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Parallel, SerialFallbackMatches)
{
    // threads == 1 and n < 2 both run inline on the caller.
    std::vector<int> out(17, 0);
    parallelFor(
        out.size(), [&](std::size_t i) { out[i] = static_cast<int>(i); },
        1);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i));

    int single = -1;
    parallelFor(
        1, [&](std::size_t i) { single = static_cast<int>(i); }, 8);
    EXPECT_EQ(single, 0);
}

TEST(Parallel, PoolReusableAcrossBatches)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.threadCount(), 3u);
    for (int round = 0; round < 5; ++round) {
        std::vector<std::atomic<int>> hits(round * 37 + 5);
        pool.parallelFor(hits.size(),
                         [&](std::size_t i) { hits[i].fetch_add(1); });
        for (std::size_t i = 0; i < hits.size(); ++i)
            ASSERT_EQ(hits[i].load(), 1)
                << "round " << round << " index " << i;
    }
}

TEST(Parallel, IndexWritesAreDeterministic)
{
    // Writing results by index makes the merged output independent of
    // scheduling — the contract the bench sweeps rely on.
    std::vector<double> serial(64), threaded(64);
    auto fill = [](std::vector<double> &v) {
        return [&v](std::size_t i) {
            v[i] = static_cast<double>(i) * 1.25 - 3.0;
        };
    };
    parallelFor(serial.size(), fill(serial), 1);
    parallelFor(threaded.size(), fill(threaded), 4);
    EXPECT_EQ(serial, threaded);
}

TEST(Parallel, FirstExceptionPropagates)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(100,
                                  [](std::size_t i) {
                                      if (i == 37)
                                          throw std::runtime_error("x");
                                  }),
                 std::runtime_error);

    // The pool stays usable after a failed batch.
    std::atomic<int> count{0};
    pool.parallelFor(10, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 10);
}

TEST(Parallel, WorkerIndexedExceptionPropagates)
{
    // The worker-indexed path is what the analog scheduler and the
    // solve service dispatch through; a throwing task must surface
    // here, not std::terminate the process.
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelForWorkers(
            64,
            [](std::size_t, std::size_t i) {
                if (i == 11)
                    throw std::runtime_error("worker task failed");
            }),
        std::runtime_error);

    // And the caller thread (worker 0) throwing is no different.
    EXPECT_THROW(pool.parallelForWorkers(
                     1,
                     [](std::size_t worker, std::size_t) {
                         if (worker == 0)
                             throw std::runtime_error("caller task");
                     }),
                 std::runtime_error);

    std::atomic<int> count{0};
    pool.parallelForWorkers(
        10, [&](std::size_t, std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 10);
}

TEST(Parallel, EveryTaskThrowingReportsExactlyOne)
{
    ThreadPool pool(4);
    try {
        pool.parallelFor(32, [](std::size_t i) {
            throw std::runtime_error("task " + std::to_string(i));
        });
        FAIL() << "expected a propagated exception";
    } catch (const std::runtime_error &e) {
        EXPECT_EQ(std::string(e.what()).rfind("task ", 0), 0u);
    }
}

TEST(Parallel, BatchAfterShutdownRunsInline)
{
    // A service draining its teardown path may still push one last
    // batch after the workers are gone; it must complete inline on
    // the caller instead of deadlocking on dead workers.
    ThreadPool pool(4);
    pool.shutdownWorkers();
    std::vector<std::size_t> workers(8, 99);
    pool.parallelForWorkers(workers.size(),
                            [&](std::size_t worker, std::size_t i) {
                                workers[i] = worker;
                            });
    for (std::size_t w : workers)
        EXPECT_EQ(w, 0u); // all ran on the caller

    pool.shutdownWorkers(); // idempotent
    std::atomic<int> count{0};
    pool.parallelFor(5, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 5);
}

TEST(Parallel, WorkerIndexedCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    const std::size_t n = 500;
    std::vector<std::atomic<int>> hits(n);
    std::vector<std::atomic<int>> by_worker(pool.threadCount());
    pool.parallelForWorkers(n, [&](std::size_t worker, std::size_t i) {
        ASSERT_LT(worker, pool.threadCount());
        by_worker[worker].fetch_add(1);
        hits[i].fetch_add(1);
    });
    int total = 0;
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    for (auto &w : by_worker)
        total += w.load();
    EXPECT_EQ(total, static_cast<int>(n));
}

TEST(Parallel, WorkerIdsNeverOverlap)
{
    // Two invocations with the same worker id must never run
    // concurrently: per-worker counters need no synchronization.
    // (TSan verifies the absence of racing increments.)
    ThreadPool pool(4);
    std::vector<int> per_worker(pool.threadCount(), 0);
    pool.parallelForWorkers(200, [&](std::size_t worker, std::size_t) {
        ++per_worker[worker]; // intentionally non-atomic
    });
    int total = 0;
    for (int c : per_worker)
        total += c;
    EXPECT_EQ(total, 200);
}

TEST(Parallel, WorkerIndexedSerialRunsAsWorkerZero)
{
    std::vector<std::size_t> workers(5, 99);
    parallelForWorkers(
        workers.size(),
        [&](std::size_t worker, std::size_t i) {
            workers[i] = worker;
        },
        1);
    for (std::size_t w : workers)
        EXPECT_EQ(w, 0u);
}

TEST(Parallel, ParallelMapMergesByIndex)
{
    auto serial = parallelMap(
        32, [](std::size_t i) { return 3.0 * static_cast<double>(i); },
        1);
    auto threaded = parallelMap(
        32, [](std::size_t i) { return 3.0 * static_cast<double>(i); },
        4);
    EXPECT_EQ(serial, threaded);
    EXPECT_EQ(serial.size(), 32u);
    EXPECT_EQ(serial[7], 21.0);
}

TEST(Parallel, DefaultThreadCountHonorsEnv)
{
    EXPECT_GE(defaultThreadCount(), 1u);

    ::setenv("AASIM_THREADS", "3", 1);
    EXPECT_EQ(defaultThreadCount(), 3u);
    ::setenv("AASIM_THREADS", "0", 1);
    EXPECT_GE(defaultThreadCount(), 1u);
    ::unsetenv("AASIM_THREADS");
}

} // namespace
} // namespace aa
