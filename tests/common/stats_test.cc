#include <gtest/gtest.h>

#include <cmath>

#include "aa/common/stats.hh"

namespace aa {
namespace {

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample)
{
    RunningStats s;
    s.add(3.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, KnownMoments)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance of this classic set is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, NegativeValuesTrackExtrema)
{
    RunningStats s;
    s.add(-10.0);
    s.add(10.0);
    s.add(0.0);
    EXPECT_DOUBLE_EQ(s.min(), -10.0);
    EXPECT_DOUBLE_EQ(s.max(), 10.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(QuantileTracker, EmptyIsZero)
{
    QuantileTracker q;
    EXPECT_EQ(q.count(), 0u);
    EXPECT_EQ(q.retained(), 0u);
    EXPECT_EQ(q.quantile(0.5), 0.0);
    EXPECT_EQ(q.max(), 0.0);
}

TEST(QuantileTracker, NearestRankQuantiles)
{
    QuantileTracker q;
    for (int i = 1; i <= 100; ++i)
        q.add(static_cast<double>(i));
    EXPECT_EQ(q.count(), 100u);
    EXPECT_EQ(q.quantile(0.50), 50.0);
    EXPECT_EQ(q.quantile(0.95), 95.0);
    EXPECT_EQ(q.quantile(0.99), 99.0);
    EXPECT_EQ(q.quantile(1.0), 100.0);
    EXPECT_EQ(q.quantile(0.0), 1.0);
    EXPECT_EQ(q.max(), 100.0);
}

TEST(QuantileTracker, WindowSlidesOverOldSamples)
{
    QuantileTracker q(10);
    for (int i = 0; i < 10; ++i)
        q.add(1000.0); // will all be overwritten
    for (int i = 1; i <= 10; ++i)
        q.add(static_cast<double>(i));
    EXPECT_EQ(q.count(), 20u);
    EXPECT_EQ(q.retained(), 10u);
    EXPECT_EQ(q.quantile(1.0), 10.0); // the spike aged out
    EXPECT_EQ(q.quantile(0.5), 5.0);
}

TEST(FitLine, ExactLine)
{
    std::vector<double> xs = {1, 2, 3, 4, 5};
    std::vector<double> ys;
    for (double x : xs)
        ys.push_back(2.5 * x - 1.0);
    auto fit = fitLine(xs, ys);
    EXPECT_NEAR(fit.slope, 2.5, 1e-12);
    EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitLine, NoisyLineHasLowerR2)
{
    std::vector<double> xs = {1, 2, 3, 4, 5, 6};
    std::vector<double> ys = {1.2, 1.9, 3.4, 3.6, 5.3, 5.8};
    auto fit = fitLine(xs, ys);
    EXPECT_GT(fit.slope, 0.8);
    EXPECT_LT(fit.slope, 1.2);
    EXPECT_LT(fit.r2, 1.0);
    EXPECT_GT(fit.r2, 0.9);
}

TEST(FitLine, ConstantXDegenerates)
{
    std::vector<double> xs = {2, 2, 2};
    std::vector<double> ys = {1, 2, 3};
    auto fit = fitLine(xs, ys);
    EXPECT_DOUBLE_EQ(fit.slope, 0.0);
    EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(FitPowerLaw, RecoversExponent)
{
    // y = 3 x^1.5: the Table III scaling-fit machinery must recover
    // the exponent from samples spanning decades.
    std::vector<double> xs, ys;
    for (double x : {1.0, 4.0, 16.0, 64.0, 256.0}) {
        xs.push_back(x);
        ys.push_back(3.0 * std::pow(x, 1.5));
    }
    auto fit = fitPowerLaw(xs, ys);
    EXPECT_NEAR(fit.slope, 1.5, 1e-9);
    EXPECT_NEAR(std::exp(fit.intercept), 3.0, 1e-9);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitPowerLaw, LinearScalingExponentOne)
{
    std::vector<double> xs, ys;
    for (double x = 10.0; x <= 1e4; x *= 10.0) {
        xs.push_back(x);
        ys.push_back(0.02 * x);
    }
    auto fit = fitPowerLaw(xs, ys);
    EXPECT_NEAR(fit.slope, 1.0, 1e-9);
}

} // namespace
} // namespace aa
