#include <gtest/gtest.h>

#include "aa/common/rng.hh"
#include "aa/common/stats.hh"

namespace aa {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.draw(), b.draw());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 16; ++i)
        any_diff |= (a.draw() != b.draw());
    EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double x = rng.uniform(-2.0, 3.0);
        EXPECT_GE(x, -2.0);
        EXPECT_LT(x, 3.0);
    }
}

TEST(Rng, UniformIntCoversBoundsInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.uniformInt(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo |= (v == 0);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMomentsRoughlyRight)
{
    Rng rng(11);
    RunningStats s;
    for (int i = 0; i < 20000; ++i)
        s.add(rng.gaussian(1.0, 2.0));
    EXPECT_NEAR(s.mean(), 1.0, 0.05);
    EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, ForkIsDeterministicPerStreamId)
{
    Rng parent1(5), parent2(5);
    Rng childa = parent1.fork(3);
    Rng childb = parent2.fork(3);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(childa.draw(), childb.draw());
}

TEST(Rng, ForkedStreamsIndependent)
{
    Rng parent(5);
    Rng child1 = parent.fork(1);
    Rng child2 = parent.fork(2);
    bool any_diff = false;
    for (int i = 0; i < 16; ++i)
        any_diff |= (child1.draw() != child2.draw());
    EXPECT_TRUE(any_diff);
}

} // namespace
} // namespace aa
