/**
 * @file
 * Golden-trace matchers for test assertions over solve outcomes.
 *
 * Two solve paths that claim bit-identity (service vs direct die,
 * threads=1 vs threads=4, replay vs original) should agree on the
 * *structural* story of each solve — config traffic, cache hits,
 * structure reuse — and on fault failure chains. Raw EXPECT_EQ walls
 * bury which field diverged; these matchers compare whole reports and
 * print a readable field-by-field diff on mismatch. Wall-clock phase
 * timings are deliberately excluded: they are never reproducible.
 */

#ifndef AA_TESTS_COMMON_TRACE_MATCHER_HH
#define AA_TESTS_COMMON_TRACE_MATCHER_HH

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "aa/analog/solver.hh"

namespace aa::testutil {

/** One-line structural summary of a phase report (no wall clock):
 *  "config_bytes=184 cache_hits=1 cache_misses=0 reused=yes". */
std::string phaseSignature(const analog::SolvePhaseReport &p);

/** Compare the structural fields of two phase reports; on mismatch
 *  the failure message names each diverging field with both values. */
::testing::AssertionResult
phasesMatch(const analog::SolvePhaseReport &expected,
            const analog::SolvePhaseReport &actual);

/** Compare two sequences of phase reports (for example one per solve
 *  of a replayed trace); reports length divergence and the first
 *  mismatching entry with its index and both signatures. */
::testing::AssertionResult
phaseSequenceMatches(const std::vector<analog::SolvePhaseReport> &expected,
                     const std::vector<analog::SolvePhaseReport> &actual);

/** Compare failure chains ("die 0: ...; die 2: ..." or an injector's
 *  "kind@exec#unit ..." string): reports the first diverging element
 *  and its position instead of two walls of text. */
::testing::AssertionResult chainsMatch(const std::string &expected,
                                       const std::string &actual);

} // namespace aa::testutil

#endif // AA_TESTS_COMMON_TRACE_MATCHER_HH
