#include "common/trace_matcher.hh"

#include <sstream>

namespace aa::testutil {

namespace {

/** Split a "; "- or space-joined chain into its elements. The two
 *  chain grammars in the tree are the service failure chain
 *  ("die 0: why; die 2: why") and the injector chain
 *  ("kind@exec#unit kind@exec#unit"). */
std::vector<std::string>
chainElements(const std::string &chain)
{
    std::vector<std::string> out;
    const bool semis = chain.find(';') != std::string::npos;
    std::string::size_type pos = 0;
    while (pos < chain.size()) {
        std::string::size_type end =
            semis ? chain.find(';', pos) : chain.find(' ', pos);
        if (end == std::string::npos)
            end = chain.size();
        std::string elem = chain.substr(pos, end - pos);
        // Trim the one leading space "; " separators leave behind.
        while (!elem.empty() && elem.front() == ' ')
            elem.erase(elem.begin());
        if (!elem.empty())
            out.push_back(std::move(elem));
        pos = end + 1;
    }
    return out;
}

} // namespace

std::string
phaseSignature(const analog::SolvePhaseReport &p)
{
    std::ostringstream os;
    os << "config_bytes=" << p.config_bytes
       << " cache_hits=" << p.cache_hits
       << " cache_misses=" << p.cache_misses
       << " reused=" << (p.structure_reused ? "yes" : "no");
    return os.str();
}

::testing::AssertionResult
phasesMatch(const analog::SolvePhaseReport &expected,
            const analog::SolvePhaseReport &actual)
{
    std::ostringstream diff;
    auto field = [&diff](const char *name, auto want, auto got) {
        if (want != got)
            diff << "  " << name << ": expected " << want << ", got "
                 << got << "\n";
    };
    field("config_bytes", expected.config_bytes, actual.config_bytes);
    field("cache_hits", expected.cache_hits, actual.cache_hits);
    field("cache_misses", expected.cache_misses, actual.cache_misses);
    field("structure_reused", expected.structure_reused,
          actual.structure_reused);
    if (diff.str().empty())
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "phase reports diverge:\n"
           << diff.str() << "  expected: " << phaseSignature(expected)
           << "\n  actual:   " << phaseSignature(actual);
}

::testing::AssertionResult
phaseSequenceMatches(const std::vector<analog::SolvePhaseReport> &expected,
                     const std::vector<analog::SolvePhaseReport> &actual)
{
    if (expected.size() != actual.size())
        return ::testing::AssertionFailure()
               << "trace length diverges: expected " << expected.size()
               << " solves, got " << actual.size();
    for (std::size_t i = 0; i < expected.size(); ++i) {
        ::testing::AssertionResult r =
            phasesMatch(expected[i], actual[i]);
        if (!r)
            return ::testing::AssertionFailure()
                   << "solve " << i << " of " << expected.size()
                   << " diverges:\n"
                   << r.message();
    }
    return ::testing::AssertionSuccess();
}

::testing::AssertionResult
chainsMatch(const std::string &expected, const std::string &actual)
{
    if (expected == actual)
        return ::testing::AssertionSuccess();
    std::vector<std::string> want = chainElements(expected);
    std::vector<std::string> got = chainElements(actual);
    std::size_t n = want.size() < got.size() ? want.size() : got.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (want[i] != got[i])
            return ::testing::AssertionFailure()
                   << "chains diverge at element " << i
                   << ":\n  expected: \"" << want[i]
                   << "\"\n  actual:   \"" << got[i]
                   << "\"\nfull expected: \"" << expected
                   << "\"\nfull actual:   \"" << actual << "\"";
    }
    return ::testing::AssertionFailure()
           << "chains diverge in length (" << want.size() << " vs "
           << got.size() << " elements) after a common prefix"
           << "\nfull expected: \"" << expected << "\"\nfull actual:   \""
           << actual << "\"";
}

} // namespace aa::testutil
