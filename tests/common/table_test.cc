#include <gtest/gtest.h>

#include <sstream>

#include "aa/common/table.hh"

namespace aa {
namespace {

TEST(TextTable, AlignsColumns)
{
    TextTable t("demo");
    t.setHeader({"N", "time"});
    t.addRow({"10", "1.5"});
    t.addRow({"1000", "2.25"});
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("== demo =="), std::string::npos);
    EXPECT_NE(s.find("   N"), std::string::npos);
    EXPECT_NE(s.find("1000"), std::string::npos);
}

TEST(TextTable, TsvOutput)
{
    TextTable t("demo");
    t.setHeader({"a", "b", "c"});
    t.addRow({"1", "2", "3"});
    std::ostringstream os;
    t.printTsv(os);
    EXPECT_EQ(os.str(), "a\tb\tc\n1\t2\t3\n");
}

TEST(TextTable, RowCountTracksRows)
{
    TextTable t("demo");
    t.setHeader({"x"});
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, NumberFormatters)
{
    EXPECT_EQ(TextTable::num(1.5), "1.5");
    EXPECT_EQ(TextTable::num(2.0 / 3.0, 3), "0.667");
    EXPECT_EQ(TextTable::sci(12345.0, 2), "1.23e+04");
}

TEST(TextTableDeath, RowWidthMismatchPanics)
{
    TextTable t("demo");
    t.setHeader({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

TEST(TextTableDeath, RowsBeforeHeaderPanic)
{
    TextTable t("demo");
    EXPECT_DEATH(t.addRow({"x"}), "set header");
}

} // namespace
} // namespace aa
