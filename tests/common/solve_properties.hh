/**
 * @file
 * Shared solve-property harness: the invariants every lane of the
 * service's degradation ladder must satisfy, extracted from the
 * per-suite copies that used to live in tests/{analog,service,fault,
 * spice} so each suite asserts the same discipline with the same
 * failure messages.
 *
 * The three properties:
 *
 *   1. **Never a silent wrong answer** — every Ok response is either
 *      residual-verified analog (raw, refined, or preconditioned
 *      Krylov) or an explicitly degraded digital fallback, and its
 *      solution independently satisfies the matching residual bar
 *      when recomputed digitally.
 *   2. **Bit identity / thread-count invariance** — the same trace
 *      through the same scenario produces bitwise-identical
 *      responses, failure chains and counters at any dispatch thread
 *      count (barriered mode; pipelined mode's accepted divergences
 *      are documented in tests/service/pipeline_test.cc).
 *   3. **Lane-counter exclusivity** — every Ok answer claims exactly
 *      one of the four lane counters, so their sum equals `ok`
 *      (metrics.hh's mutual-exclusion discipline).
 *
 * Plus the workload matrix the properties are checked over: the
 * symmetric stencil family (Poisson), an irregular circuit matrix
 * through the SPICE front end, the nonsymmetric convection-diffusion
 * family, and a controlled-condition-number dense SPD instance. All
 * instances are small (n <= 9, moderate kappa) because simulated
 * analog integration time scales with the condition number.
 */

#ifndef AA_TESTS_COMMON_SOLVE_PROPERTIES_HH
#define AA_TESTS_COMMON_SOLVE_PROPERTIES_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "aa/analog/solver.hh"
#include "aa/fault/fault.hh"
#include "aa/service/service.hh"

namespace aa::testutil {

/** The analog options every deterministic suite runs under: no
 *  process variation, no ADC noise, no auto-calibration. */
analog::AnalogSolverOptions quietSolverOptions();

/** ||b - A u||_2 / ||b||_2 — the independent recomputation used to
 *  audit what a response claims. */
double relResidual(const la::DenseMatrix &a, const la::Vector &b,
                   const la::Vector &u);

/** Assert two solutions agree bit for bit, with the diverging
 *  component named. `what` prefixes the failure message. */
void expectSolutionsBitEqual(const la::Vector &expected,
                             const la::Vector &actual,
                             const std::string &what);

// --- the workload matrix -----------------------------------------

/** One system of the property matrix. */
struct Workload {
    std::string name;
    std::shared_ptr<const la::DenseMatrix> a;
    la::Vector b;
    bool symmetric = true;
    /** ADC resolution to run the scenario's dies at; 0 = the spec
     *  default. The ill-conditioned instance pairs moderate kappa
     *  with a coarse ADC: what the ladder reacts to is quantization
     *  error amplified by kappa, and integration time scales with
     *  kappa — so low-kappa x coarse-ADC buys the same verify-bar
     *  failure at a fraction of the tier-1 runtime. */
    std::size_t adc_bits = 0;
};

/** 2D Poisson stencil, l = 3 (n = 9): the paper's core workload. */
Workload stencilWorkload();
/** 3x3 RC-grid deck through the SPICE front end (n = 9): irregular
 *  symmetric sparsity at the same size as the stencil. */
Workload circuitWorkload();
/** Convection-diffusion at cell Peclet 0.8 (n = 9): nonsymmetric —
 *  the pure-analog lane's gradient flow spirals, the preconditioned
 *  FGMRES lane's reason to exist. */
Workload convectionWorkload();
/** Dense SPD with log-spaced spectrum, kappa = 20, driven through a
 *  4-bit ADC (n = 8): the raw analog answer deterministically fails
 *  the 0.2 verify bar, so the ladder's lower rungs must answer. */
Workload illConditionedWorkload();

/** All four, in the order above. */
std::vector<Workload> workloadMatrix();

// --- lane cases ---------------------------------------------------

/** One ladder entry point to drive a workload through. */
struct LaneCase {
    std::string name;
    service::LanePreference lane = service::LanePreference::Auto;
    double tolerance = 0.0;   ///< request tolerance (0 = raw path)
    bool batch = false;       ///< run under batch_multi_rhs
};

/** The registered lane cases: auto ladder, verified-analog-refined,
 *  analog-preconditioned Krylov, digital, and solveBatch. */
std::vector<LaneCase> laneMatrix();

// --- trace running ------------------------------------------------

/** Scenario knobs for one service run. */
struct ServiceRunSpec {
    std::size_t dies = 2;
    std::size_t threads = 2;
    service::ServiceOptions service;       ///< threads overridden
    /** Per-die analog options (quiet defaults). */
    analog::AnalogSolverOptions solver = quietSolverOptions();
    std::vector<fault::FaultPlan> plans;   ///< by die; may be short
};

/** Everything a run must reproduce bit for bit. */
struct ServiceRunResult {
    std::vector<service::SolveRequest> trace;
    std::vector<service::SolveResponse> responses;
    std::vector<std::string> die_chains; ///< injector logs, by die
    service::ServiceMetrics metrics;
};

/** `count` requests of one workload through one lane, RHS scaled
 *  per request so every solve is distinct but deterministic. */
std::vector<service::SolveRequest>
laneTrace(const Workload &w, const LaneCase &lane, std::size_t count);

/** Run a trace through a paused-submit/resume/drain service round
 *  trip and collect the reproducibility surface. */
ServiceRunResult runServiceTrace(
    const std::vector<service::SolveRequest> &trace,
    const ServiceRunSpec &spec);

// --- the properties -----------------------------------------------

/** Property 1 over one run: every response Ok, every Ok answer
 *  verified or explicitly degraded, and its residual independently
 *  at or under the matching bar (request tolerance when the lane
 *  claimed convergence against one, else the raw-verify/fallback
 *  bar). */
void expectAllAnswersAccountable(const ServiceRunResult &run);

/** Property 2, single response: the outcome fields two runs of the
 *  same scenario must agree on bit for bit (status, routing, lane,
 *  accounting, failure chain, and every solution component). */
void expectResponseOutcomeIdentical(const service::SolveResponse &a,
                                    const service::SolveResponse &b,
                                    const std::string &what);

/** Property 2 over two whole runs: per-die fault chains, every
 *  response outcome, and the deterministic counters. */
void expectRunsIdentical(const ServiceRunResult &x,
                         const ServiceRunResult &y);

/** Property 3: lane_analog + lane_refined + lane_precond +
 *  lane_digital == ok, lane_digital == fallbacks, and the precond
 *  counters' internal consistency. */
void expectLaneCountersExclusive(const service::ServiceMetrics &m);

/** Per-die fault plans sampled from one seed (chaos rates). */
std::vector<fault::FaultPlan> sampledFaultPlans(std::uint64_t seed,
                                                std::size_t dies);

} // namespace aa::testutil

#endif // AA_TESTS_COMMON_SOLVE_PROPERTIES_HH
