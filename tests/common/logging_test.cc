#include <gtest/gtest.h>

#include "aa/common/logging.hh"

namespace aa {
namespace {

TEST(Logging, LevelRoundTrips)
{
    LogLevel before = logLevel();
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(before);
}

TEST(Logging, ConcatFormatsMixedTypes)
{
    EXPECT_EQ(detail::concat("x=", 42, " y=", 1.5), "x=42 y=1.5");
    EXPECT_EQ(detail::concat(), "");
}

TEST(LoggingDeath, FatalExitsWithStatusOne)
{
    EXPECT_EXIT(fatal("user error: ", 7),
                ::testing::ExitedWithCode(1), "user error: 7");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("internal bug"), "internal bug");
}

TEST(LoggingDeath, PanicIfHonorsCondition)
{
    panicIf(false, "must not fire");
    EXPECT_DEATH(panicIf(true, "fires"), "fires");
}

TEST(LoggingDeath, FatalIfHonorsCondition)
{
    fatalIf(false, "must not fire");
    EXPECT_EXIT(fatalIf(true, "fires"), ::testing::ExitedWithCode(1),
                "fires");
}

} // namespace
} // namespace aa
