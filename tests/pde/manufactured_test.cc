#include <gtest/gtest.h>

#include <cmath>

#include "aa/common/stats.hh"
#include "aa/la/direct.hh"
#include "aa/pde/manufactured.hh"

namespace aa::pde {
namespace {

TEST(Manufactured, FieldVanishesOnBoundary)
{
    auto u = sineProductField(2);
    EXPECT_NEAR(u(0.0, 0.5, 0.0), 0.0, 1e-15);
    EXPECT_NEAR(u(1.0, 0.5, 0.0), 0.0, 1e-12);
    EXPECT_NEAR(u(0.5, 0.5, 0.0), 1.0, 1e-15);
}

TEST(Manufactured, SourceIsScaledField)
{
    auto u = sineProductField(2);
    auto f = sineProductSource(2);
    double k = 2.0 * M_PI * M_PI;
    EXPECT_NEAR(f(0.3, 0.7, 0.0), k * u(0.3, 0.7, 0.0), 1e-12);
}

/** The discrete solve must converge to the analytic field at O(h^2). */
class ManufacturedConvergence
    : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(ManufacturedConvergence, SecondOrderAccuracy)
{
    std::size_t dim = GetParam();
    std::vector<double> hs, errs;
    std::vector<std::size_t> sides =
        dim == 3 ? std::vector<std::size_t>{3, 5, 7}
                 : std::vector<std::size_t>{7, 15, 31};
    for (std::size_t l : sides) {
        auto prob = manufacturedProblem(dim, l);
        la::Vector u = la::solveDense(prob.a.toDense(), prob.b);
        la::Vector exact = manufacturedExact(prob);
        hs.push_back(prob.grid.spacing());
        errs.push_back(la::maxAbsDiff(u, exact));
    }
    auto fit = aa::fitPowerLaw(hs, errs);
    EXPECT_NEAR(fit.slope, 2.0, 0.4) << "dim " << dim;
    // Error must also actually be small on the finest grid.
    EXPECT_LT(errs.back(), 0.05);
}

INSTANTIATE_TEST_SUITE_P(Dims, ManufacturedConvergence,
                         ::testing::Values(1u, 2u, 3u));

TEST(Manufactured, ExactSamplesMatchField)
{
    auto prob = manufacturedProblem(2, 3);
    la::Vector exact = manufacturedExact(prob);
    auto u = sineProductField(2);
    auto p = prob.grid.position(4); // center point (0.5, 0.5)
    EXPECT_NEAR(exact[4], u(p[0], p[1], 0.0), 1e-15);
}

} // namespace
} // namespace aa::pde
