#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numbers>

#include "aa/la/direct.hh"
#include "aa/ode/integrator.hh"
#include "aa/pde/heat.hh"
#include "aa/pde/manufactured.hh"

namespace aa::pde {
namespace {

TEST(Heat, SteadyStateIsEllipticSolution)
{
    // Integrating the heat equation long enough reaches the Poisson
    // solution (Figure 4's parabolic -> elliptic relationship).
    HeatEquationOde heat(1, 7, sineProductSource(1));
    ode::IntegrateOptions opts;
    opts.method = ode::Method::Dopri5;
    opts.dt = 1e-4;
    opts.abs_tol = 1e-12;
    opts.rel_tol = 1e-10;
    // The steady threshold must sit above the integrator's own error
    // floor, which scales with the stiffness |A| ~ 1/h^2.
    opts.steady_tol = 1e-5;
    auto res = ode::integrate(heat, la::Vector(heat.size()), 0.0,
                              std::numeric_limits<double>::infinity(),
                              opts);
    EXPECT_EQ(res.reason, ode::StopReason::SteadyState);

    auto prob = manufacturedProblem(1, 7);
    la::Vector elliptic = la::solveDense(prob.a.toDense(), prob.b);
    EXPECT_LT(la::maxAbsDiff(res.y, elliptic), 1e-5);
}

TEST(Heat, FundamentalModeDecayRate)
{
    // With zero forcing, the slowest mode decays at lambda_min =
    // (4/h^2) sin^2(pi h / 2).
    std::size_t l = 7;
    HeatEquationOde heat(1, l);
    double h = heat.grid().spacing();
    double lambda =
        4.0 / (h * h) *
        std::pow(std::sin(std::numbers::pi * h / 2.0), 2);

    // Start in the fundamental mode.
    la::Vector u0(l);
    for (std::size_t i = 0; i < l; ++i)
        u0[i] = std::sin(std::numbers::pi *
                         static_cast<double>(i + 1) * h);

    double t_end = 0.5 / lambda;
    ode::IntegrateOptions opts;
    opts.method = ode::Method::Dopri5;
    opts.dt = 1e-4;
    opts.abs_tol = 1e-12;
    opts.rel_tol = 1e-10;
    auto res = ode::integrate(heat, u0, 0.0, t_end, opts);
    double expected = std::exp(-lambda * t_end);
    for (std::size_t i = 0; i < l; ++i)
        EXPECT_NEAR(res.y[i], expected * u0[i], 1e-6);
}

TEST(Heat, ForcingVectorMatchesPoissonAssembly)
{
    HeatEquationOde heat(2, 3, sineProductSource(2));
    auto prob = manufacturedProblem(2, 3);
    EXPECT_LT(la::maxAbsDiff(heat.forcing(), prob.b), 1e-15);
}

TEST(Heat, RhsIsForcingMinusStiffness)
{
    HeatEquationOde heat(1, 3);
    la::Vector y{0.1, 0.2, 0.3};
    la::Vector dydt(3);
    heat.rhs(0.0, y, dydt);
    PoissonStencil stencil(1, 3);
    la::Vector au;
    stencil.apply(y, au);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_DOUBLE_EQ(dydt[i], heat.forcing()[i] - au[i]);
}

} // namespace
} // namespace aa::pde
