/**
 * @file
 * Convection-diffusion assembly contract: the zero-velocity limit IS
 * the Poisson matrix, the cell Peclet knob sets |v| h / (2 eps)
 * exactly, the same (dim, l, cell_peclet, seed) rebuilds the system
 * bit for bit, and the sparsity pattern — hence the program cache's
 * sparsityHash — depends on (dim, l) only, so a whole Peclet sweep
 * shares one CompiledStructure per grid.
 */

#include <array>
#include <cmath>

#include <gtest/gtest.h>

#include "aa/compiler/program.hh"
#include "aa/la/dense_matrix.hh"
#include "aa/pde/convection.hh"
#include "aa/pde/poisson.hh"

namespace aa::pde {
namespace {

TEST(Convection, ZeroVelocityIsExactlyThePoissonMatrix)
{
    auto f = [](double, double, double) { return 1.0; };
    ConvectionDiffusionProblem cd =
        assembleConvectionDiffusion(2, 3, 1.0, {0.0, 0.0, 0.0}, f);
    PoissonProblem poisson = assemblePoisson(2, 3, f);

    la::DenseMatrix a = cd.a.toDense();
    la::DenseMatrix p = poisson.a.toDense();
    ASSERT_EQ(a.rows(), p.rows());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            EXPECT_EQ(a(i, j), p(i, j)) << i << "," << j;
    ASSERT_EQ(cd.b.size(), poisson.b.size());
    for (std::size_t i = 0; i < cd.b.size(); ++i)
        EXPECT_EQ(cd.b[i], poisson.b[i]) << i;
}

TEST(Convection, BenchmarkRebuildsBitForBitFromItsKnobs)
{
    ConvectionDiffusionProblem x = convectionBenchmark(2, 3, 0.8, 7);
    ConvectionDiffusionProblem y = convectionBenchmark(2, 3, 0.8, 7);
    la::DenseMatrix a = x.a.toDense();
    la::DenseMatrix b = y.a.toDense();
    ASSERT_EQ(a.rows(), b.rows());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            EXPECT_EQ(a(i, j), b(i, j)) << i << "," << j;
    for (std::size_t i = 0; i < x.b.size(); ++i)
        EXPECT_EQ(x.b[i], y.b[i]) << i;
}

TEST(Convection, PositivePecletBreaksSymmetry)
{
    ConvectionDiffusionProblem p = convectionBenchmark(2, 3, 0.8, 7);
    EXPECT_FALSE(p.a.toDense().isSymmetric());
    // The symmetric part of every neighbor pair is still the
    // diffusion coefficient: a_ij + a_ji = -2 eps / h^2.
    const double h = p.grid.spacing();
    la::DenseMatrix a = p.a.toDense();
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = i + 1; j < a.cols(); ++j)
            if (a(i, j) != 0.0) {
                EXPECT_NEAR(a(i, j) + a(j, i),
                            -2.0 * p.diffusion / (h * h), 1e-9)
                    << i << "," << j;
            }
}

TEST(Convection, CellPecletSetsTheVelocityMagnitudeExactly)
{
    for (double pe : {0.1, 0.8, 1.0}) {
        SCOPED_TRACE(pe);
        ConvectionDiffusionProblem p =
            convectionBenchmark(2, 3, pe, 7);
        double vmag = std::sqrt(p.velocity[0] * p.velocity[0] +
                                p.velocity[1] * p.velocity[1] +
                                p.velocity[2] * p.velocity[2]);
        double h = p.grid.spacing();
        EXPECT_NEAR(vmag * h / (2.0 * p.diffusion), pe, 1e-12);
    }
}

TEST(Convection, SparsityHashDependsOnGridAlone)
{
    // Peclet and seed move the values, never the pattern: one
    // compiled structure serves the whole benchmark family per grid.
    std::uint64_t h = compiler::sparsityHash(
        convectionBenchmark(2, 3, 0.8, 7).a.toDense());
    EXPECT_EQ(h, compiler::sparsityHash(
                     convectionBenchmark(2, 3, 0.4, 99).a.toDense()));
    EXPECT_EQ(h, compiler::sparsityHash(
                     convectionBenchmark(2, 3, 0.0, 7).a.toDense()));
    EXPECT_NE(h, compiler::sparsityHash(
                     convectionBenchmark(2, 4, 0.8, 7).a.toDense()));
    EXPECT_NE(h, compiler::sparsityHash(
                     convectionBenchmark(1, 3, 0.8, 7).a.toDense()));
}

} // namespace
} // namespace aa::pde
