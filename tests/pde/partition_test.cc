#include <gtest/gtest.h>

#include <set>

#include "aa/pde/partition.hh"

namespace aa::pde {
namespace {

void
expectExactCover(const std::vector<IndexSet> &blocks, std::size_t n)
{
    std::set<std::size_t> seen;
    for (const auto &blk : blocks)
        for (std::size_t g : blk) {
            EXPECT_TRUE(seen.insert(g).second)
                << "duplicate index " << g;
            EXPECT_LT(g, n);
        }
    EXPECT_EQ(seen.size(), n);
}

TEST(RangePartition, ExactCoverAndBlockSizes)
{
    auto blocks = rangePartition(10, 4);
    ASSERT_EQ(blocks.size(), 3u);
    EXPECT_EQ(blocks[0].size(), 4u);
    EXPECT_EQ(blocks[2].size(), 2u);
    expectExactCover(blocks, 10);
}

TEST(RangePartition, SingleBlockWhenLarge)
{
    auto blocks = rangePartition(5, 100);
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(blocks[0].size(), 5u);
}

TEST(RangePartition, BlocksAreSorted)
{
    auto blocks = rangePartition(9, 3);
    for (const auto &blk : blocks)
        for (std::size_t k = 1; k < blk.size(); ++k)
            EXPECT_LT(blk[k - 1], blk[k]);
}

TEST(StripPartition, CutsAlongHighestDimension)
{
    // The paper's example: the 3x3 2D problem becomes three 1D
    // subproblems (rows of 3).
    StructuredGrid g(2, 3);
    auto blocks = stripPartition(g, 3);
    ASSERT_EQ(blocks.size(), 3u);
    for (const auto &blk : blocks)
        EXPECT_EQ(blk.size(), 3u);
    expectExactCover(blocks, 9);
    // Each strip is one contiguous row.
    EXPECT_EQ(blocks[0][0], 0u);
    EXPECT_EQ(blocks[0][2], 2u);
    EXPECT_EQ(blocks[1][0], 3u);
}

TEST(StripPartition, BundlesMultipleSlicesWhenTheyFit)
{
    StructuredGrid g(2, 4); // slices of 4
    auto blocks = stripPartition(g, 8);
    ASSERT_EQ(blocks.size(), 2u);
    EXPECT_EQ(blocks[0].size(), 8u);
    expectExactCover(blocks, 16);
}

TEST(StripPartition, FallsBackWhenSliceTooBig)
{
    StructuredGrid g(2, 4); // slice of 4 > cap of 3
    auto blocks = stripPartition(g, 3);
    expectExactCover(blocks, 16);
    for (const auto &blk : blocks)
        EXPECT_LE(blk.size(), 3u);
}

TEST(StripPartition, ThreeDimensionalPlanes)
{
    StructuredGrid g(3, 3); // planes of 9
    auto blocks = stripPartition(g, 9);
    ASSERT_EQ(blocks.size(), 3u);
    expectExactCover(blocks, 27);
}

TEST(PartitionDeath, ZeroCapIsFatal)
{
    EXPECT_EXIT(rangePartition(4, 0), ::testing::ExitedWithCode(1),
                "max_points");
}

} // namespace
} // namespace aa::pde
