#include <gtest/gtest.h>

#include <cmath>

#include "aa/la/direct.hh"
#include "aa/pde/poisson.hh"

namespace aa::pde {
namespace {

TEST(Poisson, PaperSectionIVBMatrixStructure)
{
    // The paper's 3x3 unit-square example: A is pentadiagonal with 4
    // on the (normalized) diagonal and -1 for neighbors, scaled by
    // 1/h^2. With our interior-point convention h = 1/4, so the
    // scale is 16.
    auto prob = assemblePoisson(2, 3);
    const auto &a = prob.a;
    double inv_h2 = 16.0;

    EXPECT_EQ(a.rows(), 9u);
    EXPECT_DOUBLE_EQ(a.at(4, 4), 4.0 * inv_h2); // center
    EXPECT_DOUBLE_EQ(a.at(4, 1), -inv_h2);
    EXPECT_DOUBLE_EQ(a.at(4, 3), -inv_h2);
    EXPECT_DOUBLE_EQ(a.at(4, 5), -inv_h2);
    EXPECT_DOUBLE_EQ(a.at(4, 7), -inv_h2);
    // No diagonal-corner coupling in the 5-point stencil.
    EXPECT_DOUBLE_EQ(a.at(4, 0), 0.0);
    // Row 0 (corner) couples right and up only.
    EXPECT_DOUBLE_EQ(a.at(0, 1), -inv_h2);
    EXPECT_DOUBLE_EQ(a.at(0, 3), -inv_h2);
    EXPECT_DOUBLE_EQ(a.at(0, 2), 0.0);
}

TEST(Poisson, MatrixIsSymmetricPositiveDefinite)
{
    for (std::size_t dim : {1u, 2u, 3u}) {
        auto prob = assemblePoisson(dim, 3);
        EXPECT_TRUE(prob.a.isSymmetric()) << "dim " << dim;
        EXPECT_TRUE(
            la::Cholesky::factor(prob.a.toDense()).has_value())
            << "dim " << dim;
    }
}

TEST(Poisson, NnzMatchesStencil)
{
    auto prob = assemblePoisson(2, 4);
    // N=16; edges = 2 axes * 3*4; nnz = 16 + 2*24 = 64.
    EXPECT_EQ(prob.a.nnz(), 64u);
}

TEST(Poisson, DirichletDataEntersRhs)
{
    BoundaryFn g = [](double x, double, double) {
        return x == 0.0 ? 1.0 : 0.0;
    };
    auto prob = assemblePoisson(2, 3, zeroSource(), g);
    double inv_h2 = 16.0;
    // Left-column nodes see the x=0 boundary.
    EXPECT_DOUBLE_EQ(prob.b[prob.grid.index(0, 0)], inv_h2);
    EXPECT_DOUBLE_EQ(prob.b[prob.grid.index(0, 1)], inv_h2);
    // Interior columns see nothing.
    EXPECT_DOUBLE_EQ(prob.b[prob.grid.index(1, 1)], 0.0);
}

TEST(Poisson, SourceTermSampledAtNodes)
{
    SourceFn f = [](double x, double y, double) { return x + y; };
    auto prob = assemblePoisson(2, 3, f);
    auto p = prob.grid.position(prob.grid.index(1, 2));
    EXPECT_DOUBLE_EQ(prob.b[prob.grid.index(1, 2)], p[0] + p[1]);
}

TEST(Poisson, StencilMatchesAssembledMatrix)
{
    for (std::size_t dim : {1u, 2u, 3u}) {
        std::size_t l = dim == 3 ? 4 : 6;
        auto prob = assemblePoisson(dim, l);
        PoissonStencil stencil(dim, l);
        ASSERT_EQ(stencil.size(), prob.a.rows());

        la::Vector x(stencil.size());
        for (std::size_t i = 0; i < x.size(); ++i)
            x[i] = std::sin(static_cast<double>(i) * 0.7);
        la::Vector via_stencil;
        stencil.apply(x, via_stencil);
        la::Vector via_csr = prob.a.apply(x);
        EXPECT_LT(la::maxAbsDiff(via_stencil, via_csr), 1e-9)
            << "dim " << dim;
    }
}

TEST(Poisson, StencilDiagonalAndFlops)
{
    PoissonStencil s(2, 3);
    la::Vector d = s.diagonal();
    EXPECT_DOUBLE_EQ(d[0], 4.0 * 16.0);
    EXPECT_EQ(s.applyFlops(), 9u * 5u);
}

TEST(Poisson, Figure7ProblemShape)
{
    auto prob = figure7Problem(4);
    EXPECT_EQ(prob.grid.dim(), 3u);
    EXPECT_EQ(prob.a.rows(), 64u);
    // Nodes adjacent to the x = 0 plane get the unit boundary value.
    double inv_h2 = 25.0;
    EXPECT_DOUBLE_EQ(prob.b[prob.grid.index(0, 1, 1)], inv_h2);
    EXPECT_DOUBLE_EQ(prob.b[prob.grid.index(1, 1, 1)], 0.0);
}

TEST(Poisson, SolutionBoundedByBoundaryData)
{
    // Discrete maximum principle: with f = 0 and boundary in [0, 1],
    // the solution stays in [0, 1].
    auto prob = figure7Problem(4);
    la::Vector u = la::solveDense(prob.a.toDense(), prob.b);
    for (std::size_t i = 0; i < u.size(); ++i) {
        EXPECT_GE(u[i], -1e-12);
        EXPECT_LE(u[i], 1.0 + 1e-12);
    }
}

TEST(Poisson, SampleOnGridEvaluatesPositions)
{
    StructuredGrid g(1, 3);
    la::Vector v = sampleOnGrid(g, [](double x, double, double) {
        return 2.0 * x;
    });
    EXPECT_DOUBLE_EQ(v[0], 0.5);
    EXPECT_DOUBLE_EQ(v[1], 1.0);
    EXPECT_DOUBLE_EQ(v[2], 1.5);
}

} // namespace
} // namespace aa::pde
