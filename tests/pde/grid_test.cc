#include <gtest/gtest.h>

#include "aa/pde/grid.hh"

namespace aa::pde {
namespace {

TEST(Grid, SizesPerDimension)
{
    EXPECT_EQ(StructuredGrid(1, 5).totalPoints(), 5u);
    EXPECT_EQ(StructuredGrid(2, 5).totalPoints(), 25u);
    EXPECT_EQ(StructuredGrid(3, 5).totalPoints(), 125u);
}

TEST(Grid, SpacingCountsBoundaries)
{
    StructuredGrid g(1, 3);
    EXPECT_DOUBLE_EQ(g.spacing(), 0.25);
}

TEST(Grid, IndexCoordsRoundTrip2D)
{
    StructuredGrid g(2, 4);
    for (std::size_t j = 0; j < 4; ++j) {
        for (std::size_t i = 0; i < 4; ++i) {
            auto idx = g.index(i, j);
            auto c = g.coords(idx);
            EXPECT_EQ(c[0], i);
            EXPECT_EQ(c[1], j);
            EXPECT_EQ(c[2], 0u);
        }
    }
}

TEST(Grid, IndexCoordsRoundTrip3D)
{
    StructuredGrid g(3, 3);
    for (std::size_t idx = 0; idx < g.totalPoints(); ++idx) {
        auto c = g.coords(idx);
        EXPECT_EQ(g.index(c[0], c[1], c[2]), idx);
    }
}

TEST(Grid, PositionsInteriorOfUnitDomain)
{
    StructuredGrid g(2, 3);
    auto p = g.position(g.index(0, 0));
    EXPECT_DOUBLE_EQ(p[0], 0.25);
    EXPECT_DOUBLE_EQ(p[1], 0.25);
    p = g.position(g.index(2, 2));
    EXPECT_DOUBLE_EQ(p[0], 0.75);
    EXPECT_DOUBLE_EQ(p[1], 0.75);
}

TEST(Grid, InteriorPointHasAllInteriorNeighbors2D)
{
    StructuredGrid g(2, 3);
    std::size_t center = g.index(1, 1);
    std::size_t interior = 0, boundary = 0;
    g.forEachNeighbor(
        center, [&](std::size_t) { ++interior; },
        [&](double, double, double) { ++boundary; });
    EXPECT_EQ(interior, 4u);
    EXPECT_EQ(boundary, 0u);
}

TEST(Grid, CornerTouchesBoundaryTwice2D)
{
    StructuredGrid g(2, 3);
    std::size_t corner = g.index(0, 0);
    std::size_t interior = 0, boundary = 0;
    g.forEachNeighbor(
        corner, [&](std::size_t) { ++interior; },
        [&](double x, double y, double) {
            ++boundary;
            // Boundary neighbors of the low corner sit on x=0 or y=0.
            EXPECT_TRUE(x == 0.0 || y == 0.0);
        });
    EXPECT_EQ(interior, 2u);
    EXPECT_EQ(boundary, 2u);
}

TEST(Grid, Corner3DTouchesThreeBoundaries)
{
    StructuredGrid g(3, 2);
    std::size_t interior = 0, boundary = 0;
    g.forEachNeighbor(
        g.index(0, 0, 0), [&](std::size_t) { ++interior; },
        [&](double, double, double) { ++boundary; });
    EXPECT_EQ(interior, 3u);
    EXPECT_EQ(boundary, 3u);
}

TEST(Grid, BoundaryPositionsLandOnFaces)
{
    StructuredGrid g(1, 3);
    std::vector<double> faces;
    g.forEachNeighbor(
        g.index(0), [](std::size_t) {},
        [&](double x, double, double) { faces.push_back(x); });
    ASSERT_EQ(faces.size(), 1u);
    EXPECT_DOUBLE_EQ(faces[0], 0.0);
}

TEST(GridDeath, BadDimensionIsFatal)
{
    EXPECT_EXIT(StructuredGrid(4, 3), ::testing::ExitedWithCode(1),
                "dim");
    EXPECT_EXIT(StructuredGrid(0, 3), ::testing::ExitedWithCode(1),
                "dim");
}

TEST(GridDeath, IndexOutOfRangePanics)
{
    StructuredGrid g(2, 3);
    EXPECT_DEATH(g.index(3, 0), "out of range");
    EXPECT_DEATH(g.index(0, 0, 1), "out of range");
}

} // namespace
} // namespace aa::pde
