#include <gtest/gtest.h>

#include <cmath>

#include "aa/solver/multigrid.hh"

namespace aa::solver {
namespace {

using transfer::prolongLinear;
using transfer::restrictFullWeighting;

TEST(Transfer, Restrict1DConstantStaysConstant)
{
    la::Vector fine(7, 1.0);
    la::Vector coarse = restrictFullWeighting(1, 7, fine);
    ASSERT_EQ(coarse.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_DOUBLE_EQ(coarse[i], 1.0);
}

TEST(Transfer, Restrict1DWeights)
{
    la::Vector fine{0, 0, 4, 0, 0, 0, 0};
    la::Vector coarse = restrictFullWeighting(1, 7, fine);
    // Fine node 2 contributes 1/4 to coarse 0 (fine 1) via its right
    // neighbor weight and 1/4 to coarse 1 (fine 3).
    EXPECT_DOUBLE_EQ(coarse[0], 1.0);
    EXPECT_DOUBLE_EQ(coarse[1], 1.0);
    EXPECT_DOUBLE_EQ(coarse[2], 0.0);
}

TEST(Transfer, Prolong1DLinearInterpolation)
{
    la::Vector coarse{1.0, 3.0, 5.0};
    la::Vector fine = prolongLinear(1, 3, coarse);
    ASSERT_EQ(fine.size(), 7u);
    EXPECT_DOUBLE_EQ(fine[0], 0.5); // halfway to boundary zero
    EXPECT_DOUBLE_EQ(fine[1], 1.0);
    EXPECT_DOUBLE_EQ(fine[2], 2.0);
    EXPECT_DOUBLE_EQ(fine[3], 3.0);
    EXPECT_DOUBLE_EQ(fine[4], 4.0);
    EXPECT_DOUBLE_EQ(fine[5], 5.0);
    EXPECT_DOUBLE_EQ(fine[6], 2.5);
}

TEST(Transfer, Restrict2DConstant)
{
    la::Vector fine(49, 2.0); // 7x7
    la::Vector coarse = restrictFullWeighting(2, 7, fine);
    ASSERT_EQ(coarse.size(), 9u);
    for (std::size_t i = 0; i < coarse.size(); ++i)
        EXPECT_NEAR(coarse[i], 2.0, 1e-14);
}

TEST(Transfer, Prolong2DConstantInteriorExact)
{
    la::Vector coarse(9, 1.0); // 3x3
    la::Vector fine = prolongLinear(2, 3, coarse);
    ASSERT_EQ(fine.size(), 49u);
    // The center of the fine grid interpolates interior values only.
    EXPECT_DOUBLE_EQ(fine[3 * 7 + 3], 1.0);
    // Fine corners average toward the zero boundary.
    EXPECT_DOUBLE_EQ(fine[0], 0.25);
}

TEST(Transfer, RestrictThenProlongPreservesSmoothMass)
{
    // Transfer operators are (up to scaling) adjoint: for a smooth
    // field, <R v, R v> stays within a constant of <v, v>/2^d.
    la::Vector fine(15);
    for (std::size_t i = 0; i < 15; ++i)
        fine[i] =
            std::sin(M_PI * static_cast<double>(i + 1) / 16.0);
    la::Vector coarse = restrictFullWeighting(1, 15, fine);
    ASSERT_EQ(coarse.size(), 7u);
    la::Vector back = prolongLinear(1, 7, coarse);
    // The smooth field survives the round trip closely.
    EXPECT_LT(la::maxAbsDiff(back, fine), 0.05);
}

TEST(Transfer, ThreeDimensionalShapes)
{
    la::Vector fine(343, 1.0); // 7^3
    la::Vector coarse = restrictFullWeighting(3, 7, fine);
    EXPECT_EQ(coarse.size(), 27u);
    la::Vector up = prolongLinear(3, 3, coarse);
    EXPECT_EQ(up.size(), 343u);
    // Center value exact for the constant field.
    EXPECT_NEAR(coarse[13], 1.0, 1e-14);
}

TEST(TransferDeath, EvenGridPanics)
{
    la::Vector fine(6, 1.0);
    EXPECT_DEATH(restrictFullWeighting(1, 6, fine), "odd");
}

} // namespace
} // namespace aa::solver
