#include <gtest/gtest.h>

#include <cmath>

#include "aa/la/direct.hh"
#include "aa/pde/manufactured.hh"
#include "aa/solver/iterative.hh"
#include "aa/solver/multigrid.hh"

namespace aa::solver {
namespace {

TEST(Multigrid, BuildsExpectedLevelChain)
{
    Multigrid mg(1, 31);
    // 31 -> 15 -> 7 -> 3.
    EXPECT_EQ(mg.levels(), 4u);
    EXPECT_EQ(mg.fineSize(), 31u);
}

TEST(Multigrid, Solves1DPoissonToTightTolerance)
{
    auto prob = pde::manufacturedProblem(1, 31);
    Multigrid mg(1, 31);
    auto res = mg.solve(prob.b);
    EXPECT_TRUE(res.converged);
    la::Vector exact = la::solveDense(prob.a.toDense(), prob.b);
    EXPECT_LT(la::maxAbsDiff(res.x, exact), 1e-8);
}

TEST(Multigrid, Solves2DPoisson)
{
    auto prob = pde::manufacturedProblem(2, 15);
    Multigrid mg(2, 15);
    auto res = mg.solve(prob.b);
    EXPECT_TRUE(res.converged);
    la::Vector exact = la::solveDense(prob.a.toDense(), prob.b);
    EXPECT_LT(la::maxAbsDiff(res.x, exact), 1e-7);
}

TEST(Multigrid, GridIndependentCycleCount)
{
    // The multigrid hallmark: cycles to converge barely grow with
    // problem size.
    MgOptions opts;
    opts.tol = 1e-8;
    std::vector<std::size_t> cycles;
    for (std::size_t l : {15u, 31u, 63u}) {
        auto prob = pde::manufacturedProblem(1, l);
        Multigrid mg(1, l, opts);
        auto res = mg.solve(prob.b);
        EXPECT_TRUE(res.converged);
        cycles.push_back(res.cycles);
    }
    EXPECT_LE(cycles[2], cycles[0] + 3);
}

TEST(Multigrid, BeatsCgInOperatorApplications)
{
    // NOTE: the manufactured sine rhs is an exact eigenvector of the
    // discrete Laplacian (CG would finish in one step), so this
    // comparison uses a rough multi-frequency rhs instead.
    std::size_t l = 31;
    pde::PoissonStencil stencil(2, l);
    la::Vector b(stencil.size());
    for (std::size_t i = 0; i < b.size(); ++i)
        b[i] = std::cos(0.7 * static_cast<double>(i)) +
               0.3 * std::cos(2.9 * static_cast<double>(i));

    MgOptions mopts;
    mopts.tol = 1e-8;
    Multigrid mg(2, l, mopts);
    auto mg_res = mg.solve(b);
    ASSERT_TRUE(mg_res.converged);

    IterOptions copts;
    copts.tol = 1e-8;
    auto cg_res = conjugateGradient(stencil, b, copts);
    ASSERT_TRUE(cg_res.converged);
    EXPECT_LT(mg_res.flops, cg_res.flops);
}

TEST(Multigrid, VcycleOnceReducesResidual)
{
    auto prob = pde::manufacturedProblem(2, 15);
    Multigrid mg(2, 15);
    la::Vector x(prob.b.size());
    double r0 = la::norm2(prob.b);
    x = mg.vcycleOnce(std::move(x), prob.b);
    la::Vector r = prob.b - prob.a.apply(x);
    // One V-cycle should knock the residual down by ~10x or more.
    EXPECT_LT(la::norm2(r), 0.2 * r0);
}

TEST(Multigrid, ResidualHistoryDecaysGeometrically)
{
    auto prob = pde::manufacturedProblem(1, 31);
    MgOptions opts;
    opts.record_residuals = true;
    opts.tol = 1e-10;
    Multigrid mg(1, 31, opts);
    auto res = mg.solve(prob.b);
    ASSERT_GE(res.residual_history.size(), 2u);
    for (std::size_t k = 1; k < res.residual_history.size(); ++k) {
        EXPECT_LT(res.residual_history[k],
                  0.6 * res.residual_history[k - 1]);
    }
}

TEST(Multigrid, CustomCoarseSolverIsUsed)
{
    std::size_t calls = 0;
    MgOptions opts;
    opts.coarse_solver = [&calls](const la::CsrMatrix &a,
                                  const la::Vector &b) {
        ++calls;
        return la::solveDense(a.toDense(), b);
    };
    auto prob = pde::manufacturedProblem(1, 15);
    Multigrid mg(1, 15, opts);
    auto res = mg.solve(prob.b);
    EXPECT_TRUE(res.converged);
    EXPECT_GT(calls, 0u);
}

TEST(Multigrid, ApproximateCoarseSolverStillConverges)
{
    // An intentionally sloppy coarse solver (8-bit rounding) models
    // the analog accelerator; outer cycles absorb the error.
    MgOptions opts;
    opts.tol = 1e-8;
    opts.coarse_solver = [](const la::CsrMatrix &a,
                            const la::Vector &b) {
        la::Vector x = la::solveDense(a.toDense(), b);
        double peak = la::normInf(x);
        if (peak == 0.0)
            return x;
        for (std::size_t i = 0; i < x.size(); ++i) {
            double q = std::round(x[i] / peak * 128.0) / 128.0;
            x[i] = q * peak;
        }
        return x;
    };
    auto prob = pde::manufacturedProblem(2, 15);
    Multigrid mg(2, 15, opts);
    auto res = mg.solve(prob.b);
    EXPECT_TRUE(res.converged);
    la::Vector exact = la::solveDense(prob.a.toDense(), prob.b);
    EXPECT_LT(la::maxAbsDiff(res.x, exact), 1e-6);
}

TEST(Multigrid, WarmStartConvergesFaster)
{
    auto prob = pde::manufacturedProblem(1, 31);
    Multigrid mg(1, 31);
    auto cold = mg.solve(prob.b);
    auto warm = mg.solve(prob.b, cold.x);
    EXPECT_LE(warm.cycles, cold.cycles);
}

TEST(MultigridDeath, NonNestableGridIsFatal)
{
    // l = 8 is even: no coarse chain exists.
    EXPECT_EXIT(Multigrid(1, 8), ::testing::ExitedWithCode(1),
                "2\\^k");
}

} // namespace
} // namespace aa::solver
