#include <gtest/gtest.h>

#include <cmath>

#include "aa/common/rng.hh"
#include "aa/la/direct.hh"
#include "aa/pde/poisson.hh"
#include "aa/solver/iterative.hh"

namespace aa::solver {
namespace {

TEST(Cg, ExactInNStepsInExactArithmetic)
{
    // CG's finite-termination property: n iterations suffice for an
    // n-dimensional SPD system (up to rounding).
    auto a = la::DenseMatrix::fromRows(
        {{6, 1, 0, 0}, {1, 5, 1, 0}, {0, 1, 4, 1}, {0, 0, 1, 3}});
    la::DenseOperator op(a);
    la::Vector b{1, 0, 2, -1};
    IterOptions opts;
    opts.tol = 1e-12;
    auto res = conjugateGradient(op, b, opts);
    EXPECT_TRUE(res.converged);
    EXPECT_LE(res.iterations, 4u);
}

TEST(Cg, MatchesFigure7Ranking)
{
    // Figure 7: on the 3D Poisson problem, the convergence-rate
    // ranking is CG > steepest > SOR(1.5) > GS > Jacobi, measured as
    // iterations to a fixed residual. A small instance preserves it.
    auto prob = pde::figure7Problem(5);
    la::CsrOperator op(prob.a);
    IterOptions opts;
    opts.tol = 1e-8;
    opts.max_iters = 200000;

    auto cg = conjugateGradient(op, prob.b, opts);
    auto st = steepestDescent(op, prob.b, opts);
    auto so = sor(prob.a, prob.b, opts);
    auto gs = gaussSeidel(prob.a, prob.b, opts);
    auto ja = jacobi(op, prob.b, opts);

    EXPECT_TRUE(cg.converged && st.converged && so.converged &&
                gs.converged && ja.converged);
    EXPECT_LT(cg.iterations, st.iterations);
    EXPECT_LT(so.iterations, gs.iterations);
    EXPECT_LT(gs.iterations, ja.iterations);
}

TEST(Cg, IterationsScaleWithSqrtCondition)
{
    // Theory (and the paper's Table III 2D row): CG steps grow like
    // sqrt(kappa) ~ L for 2D Poisson, i.e. iterations roughly double
    // when L doubles.
    IterOptions opts;
    opts.tol = 1e-8;
    std::vector<std::size_t> iters;
    for (std::size_t l : {8u, 16u, 32u}) {
        pde::PoissonStencil stencil(2, l);
        la::Vector b(stencil.size(), 1.0);
        iters.push_back(
            conjugateGradient(stencil, b, opts).iterations);
    }
    double r1 = static_cast<double>(iters[1]) /
                static_cast<double>(iters[0]);
    double r2 = static_cast<double>(iters[2]) /
                static_cast<double>(iters[1]);
    EXPECT_GT(r1, 1.5);
    EXPECT_LT(r1, 3.0);
    EXPECT_GT(r2, 1.5);
    EXPECT_LT(r2, 3.0);
}

TEST(Cg, StencilAndCsrPathsAgree)
{
    auto prob = pde::assemblePoisson(2, 7);
    pde::PoissonStencil stencil(2, 7);
    la::Vector b(prob.a.rows());
    Rng rng(3);
    for (auto &v : b)
        v = rng.uniform(-1.0, 1.0);

    IterOptions opts;
    opts.tol = 1e-12;
    la::CsrOperator op(prob.a);
    auto via_csr = conjugateGradient(op, b, opts);
    auto via_stencil = conjugateGradient(stencil, b, opts);
    EXPECT_LT(la::maxAbsDiff(via_csr.x, via_stencil.x), 1e-9);
}

TEST(Cg, PreconditioningHelpsOnScaledSystem)
{
    // A badly scaled SPD system A = D T D (T tridiagonal SPD, D a
    // wildly varying diagonal): Jacobi preconditioning undoes D.
    std::size_t n = 40;
    la::DenseMatrix a(n, n);
    auto d = [](std::size_t i) {
        return std::pow(10.0, (double)(i % 4) / 2.0);
    };
    for (std::size_t i = 0; i < n; ++i) {
        a(i, i) = 2.0 * d(i) * d(i);
        if (i > 0)
            a(i, i - 1) = -0.5 * d(i) * d(i - 1);
        if (i + 1 < n)
            a(i, i + 1) = -0.5 * d(i) * d(i + 1);
    }
    la::DenseOperator op(a);
    la::Vector b(n, 1.0);
    IterOptions opts;
    opts.tol = 1e-10;
    opts.max_iters = 100000;
    auto plain = conjugateGradient(op, b, opts);
    auto pre = preconditionedCg(op, b, opts);
    EXPECT_TRUE(plain.converged && pre.converged);
    EXPECT_LE(pre.iterations, plain.iterations);
}

TEST(Cg, ZeroRhsReturnsZero)
{
    auto prob = pde::assemblePoisson(1, 5);
    la::CsrOperator op(prob.a);
    auto res = conjugateGradient(op, la::Vector(5), {});
    EXPECT_TRUE(res.converged);
    EXPECT_LT(la::norm2(res.x), 1e-14);
}

} // namespace
} // namespace aa::solver
