#include <gtest/gtest.h>

#include <cmath>

#include "aa/la/direct.hh"
#include "aa/pde/poisson.hh"
#include "aa/solver/newton.hh"

namespace aa::solver {
namespace {

/** -laplacian(u) + c u^3 = f on a small 1D grid. */
NonlinearSystem
cubicPoisson(std::size_t l, double c, double f_value)
{
    auto prob = pde::assemblePoisson(
        1, l, [f_value](double, double, double) { return f_value; });
    NonlinearSystem sys;
    sys.a = prob.a.toDense();
    sys.b = prob.b;
    sys.phi = [c](double u) { return c * u * u * u; };
    sys.phi_prime = [c](double u) { return 3.0 * c * u * u; };
    return sys;
}

TEST(Newton, ScalarCubicRoot)
{
    // u + u^3 = 2 has the root u = 1.
    NonlinearSystem sys;
    sys.a = la::DenseMatrix::fromRows({{1.0}});
    sys.b = la::Vector{2.0};
    sys.phi = [](double u) { return u * u * u; };
    sys.phi_prime = [](double u) { return 3.0 * u * u; };
    auto res = newtonSolve(sys);
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.x[0], 1.0, 1e-12);
}

TEST(Newton, LinearSystemInOneStep)
{
    // With phi = 0 Newton is a single exact linear solve.
    NonlinearSystem sys;
    sys.a = la::DenseMatrix::fromRows({{4, -1}, {-1, 3}});
    sys.b = la::Vector{1, 2};
    auto res = newtonSolve(sys);
    EXPECT_TRUE(res.converged);
    EXPECT_LE(res.iterations, 2u);
    la::Vector exact = la::solveDense(sys.a, sys.b);
    EXPECT_LT(la::maxAbsDiff(res.x, exact), 1e-12);
}

TEST(Newton, CubicPoissonResidualVanishes)
{
    auto sys = cubicPoisson(7, 50.0, 40.0);
    auto res = newtonSolve(sys);
    EXPECT_TRUE(res.converged);
    EXPECT_LT(res.final_residual, 1e-10 * la::norm2(sys.b));
    // The cubic term must actually matter: compare with the pure
    // linear solution.
    la::Vector linear = la::solveDense(sys.a, sys.b);
    EXPECT_GT(la::maxAbsDiff(res.x, linear), 1e-3);
    // And it pushes the solution down (phi > 0 for u > 0).
    EXPECT_LT(la::normInf(res.x), la::normInf(linear));
}

TEST(Newton, QuadraticConvergence)
{
    auto sys = cubicPoisson(5, 10.0, 30.0);
    NewtonOptions opts;
    opts.record_history = true;
    opts.tol = 1e-14;
    auto res = newtonSolve(sys, opts);
    ASSERT_TRUE(res.converged);
    // Once in the basin, the residual roughly squares each step:
    // successive log-residual differences grow.
    const auto &h = res.residual_history;
    ASSERT_GE(h.size(), 4u);
    double drop1 = h[h.size() - 3] / h[h.size() - 2];
    double drop0 = h[1] / h[2];
    EXPECT_GT(drop1, drop0);
}

TEST(Newton, BacktrackingRescuesOvershoot)
{
    // A stiff nonlinearity from a far-off start needs damping.
    NonlinearSystem sys;
    sys.a = la::DenseMatrix::fromRows({{1.0}});
    sys.b = la::Vector{0.5};
    sys.phi = [](double u) { return std::sinh(4.0 * u); };
    sys.phi_prime = [](double u) { return 4.0 * std::cosh(4.0 * u); };
    NewtonOptions opts;
    opts.x0 = la::Vector{3.0};
    opts.max_iters = 100;
    auto res = newtonSolve(sys, opts);
    EXPECT_TRUE(res.converged);
    // Root of u + sinh(4u) = 0.5 is near 0.117.
    EXPECT_NEAR(res.x[0] + std::sinh(4.0 * res.x[0]), 0.5, 1e-9);
}

TEST(Newton, JacobianSolveCountTracksIterations)
{
    auto sys = cubicPoisson(5, 10.0, 30.0);
    auto res = newtonSolve(sys);
    EXPECT_EQ(res.jacobian_solves, res.iterations);
}

TEST(Newton, ResidualAndJacobianShapes)
{
    auto sys = cubicPoisson(4, 2.0, 1.0);
    la::Vector u(4, 0.5);
    la::Vector f = sys.residual(u);
    EXPECT_EQ(f.size(), 4u);
    auto j = sys.jacobian(u);
    // diag(A) + 3 c u^2 on the diagonal.
    EXPECT_NEAR(j(1, 1), sys.a(1, 1) + 3.0 * 2.0 * 0.25, 1e-12);
    EXPECT_DOUBLE_EQ(j(0, 1), sys.a(0, 1));
}

TEST(NewtonDeath, MismatchedPhiPairFatal)
{
    NonlinearSystem sys;
    sys.a = la::DenseMatrix::identity(2);
    sys.b = la::Vector(2);
    sys.phi = [](double u) { return u; };
    EXPECT_EXIT(newtonSolve(sys), ::testing::ExitedWithCode(1),
                "come together");
}

} // namespace
} // namespace aa::solver
