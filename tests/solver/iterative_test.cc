#include <gtest/gtest.h>

#include "aa/la/direct.hh"
#include "aa/pde/poisson.hh"
#include "aa/solver/iterative.hh"

namespace aa::solver {
namespace {

struct Fixture2D {
    pde::PoissonProblem prob = pde::assemblePoisson(
        2, 5,
        [](double x, double y, double) { return x * y + 1.0; });
    la::Vector exact =
        la::solveDense(prob.a.toDense(), prob.b);
};

TEST(Jacobi, ConvergesOnPoisson)
{
    Fixture2D f;
    la::CsrOperator op(f.prob.a);
    IterOptions opts;
    opts.tol = 1e-12;
    auto res = jacobi(op, f.prob.b, opts);
    EXPECT_TRUE(res.converged);
    EXPECT_LT(la::maxAbsDiff(res.x, f.exact), 1e-8);
}

TEST(GaussSeidel, ConvergesFasterThanJacobi)
{
    Fixture2D f;
    la::CsrOperator op(f.prob.a);
    IterOptions opts;
    opts.tol = 1e-10;
    auto jac = jacobi(op, f.prob.b, opts);
    auto gs = gaussSeidel(f.prob.a, f.prob.b, opts);
    EXPECT_TRUE(gs.converged);
    EXPECT_LT(gs.iterations, jac.iterations);
    EXPECT_LT(la::maxAbsDiff(gs.x, f.exact), 1e-7);
}

TEST(Sor, OptimalOmegaBeatsGaussSeidel)
{
    Fixture2D f;
    IterOptions opts;
    opts.tol = 1e-10;
    auto gs = gaussSeidel(f.prob.a, f.prob.b, opts);
    opts.omega = 1.6; // near-optimal for this grid
    auto s = sor(f.prob.a, f.prob.b, opts);
    EXPECT_TRUE(s.converged);
    EXPECT_LT(s.iterations, gs.iterations);
}

TEST(SteepestDescent, ConvergesOnPoisson)
{
    Fixture2D f;
    la::CsrOperator op(f.prob.a);
    IterOptions opts;
    opts.tol = 1e-10;
    opts.max_iters = 20000;
    auto res = steepestDescent(op, f.prob.b, opts);
    EXPECT_TRUE(res.converged);
    EXPECT_LT(la::maxAbsDiff(res.x, f.exact), 1e-7);
}

TEST(AllSolvers, AgreeOnSmallSpdSystem)
{
    auto a_dense = la::DenseMatrix::fromRows(
        {{5, 1, 0}, {1, 4, 1}, {0, 1, 3}});
    auto a = la::CsrMatrix::fromDense(a_dense);
    la::Vector b{1, 2, 3};
    la::Vector exact = la::solveDense(a_dense, b);

    la::CsrOperator op(a);
    IterOptions opts;
    opts.tol = 1e-13;
    opts.max_iters = 100000;
    for (auto res :
         {jacobi(op, b, opts), gaussSeidel(a, b, opts),
          sor(a, b, opts), steepestDescent(op, b, opts),
          conjugateGradient(op, b, opts),
          preconditionedCg(op, b, opts)}) {
        EXPECT_TRUE(res.converged);
        EXPECT_LT(la::maxAbsDiff(res.x, exact), 1e-9);
    }
}

TEST(IterOptions, MaxChangeCriterionStopsAtPaperRule)
{
    // The paper's rule: stop when no element changes by more than
    // 1/256 of full scale.
    Fixture2D f;
    la::CsrOperator op(f.prob.a);
    IterOptions opts;
    opts.criterion = Criterion::MaxChange;
    opts.tol = 1.0 / 256.0;
    auto res = conjugateGradient(op, f.prob.b, opts);
    EXPECT_TRUE(res.converged);
    // Far fewer iterations than a 1e-10 residual solve.
    IterOptions tight;
    tight.tol = 1e-10;
    auto full = conjugateGradient(op, f.prob.b, tight);
    EXPECT_LT(res.iterations, full.iterations);
}

TEST(IterOptions, InitialGuessShortensSolve)
{
    Fixture2D f;
    la::CsrOperator op(f.prob.a);
    IterOptions cold;
    cold.tol = 1e-10;
    auto from_zero = conjugateGradient(op, f.prob.b, cold);

    IterOptions warm = cold;
    warm.x0 = f.exact;
    auto from_exact = conjugateGradient(op, f.prob.b, warm);
    EXPECT_LE(from_exact.iterations, 1u);
}

TEST(IterResult, ResidualHistoryMonotoneForCg)
{
    Fixture2D f;
    la::CsrOperator op(f.prob.a);
    IterOptions opts;
    opts.tol = 1e-10;
    opts.record_residuals = true;
    auto res = conjugateGradient(op, f.prob.b, opts);
    ASSERT_GT(res.residual_history.size(), 2u);
    // CG's residual is not strictly monotone in general, but on this
    // well-conditioned SPD system it must trend down by orders.
    EXPECT_LT(res.residual_history.back(),
              res.residual_history.front() * 1e-6);
}

TEST(IterResult, ErrorHistoryAgainstExact)
{
    Fixture2D f;
    la::CsrOperator op(f.prob.a);
    IterOptions opts;
    opts.tol = 1e-10;
    opts.exact = &f.exact;
    auto res = conjugateGradient(op, f.prob.b, opts);
    ASSERT_FALSE(res.error_history.empty());
    EXPECT_LT(res.error_history.back(),
              res.error_history.front());
}

TEST(IterResult, FlopsAccumulate)
{
    Fixture2D f;
    la::CsrOperator op(f.prob.a);
    IterOptions opts;
    opts.tol = 1e-10;
    auto res = conjugateGradient(op, f.prob.b, opts);
    EXPECT_GT(res.flops, res.iterations * f.prob.a.nnz());
}

TEST(IterDeath, SorOmegaOutOfRangeIsFatal)
{
    Fixture2D f;
    IterOptions opts;
    opts.omega = 2.5;
    EXPECT_EXIT(sor(f.prob.a, f.prob.b, opts),
                ::testing::ExitedWithCode(1), "omega");
}

TEST(IterDeath, CgOnIndefiniteIsFatal)
{
    auto a_dense =
        la::DenseMatrix::fromRows({{1, 2}, {2, 1}}); // indefinite
    la::DenseOperator op(a_dense);
    IterOptions opts;
    // b excites the negative eigenvector (1, -1) so the curvature
    // check p^T A p < 0 trips on the first iteration.
    EXPECT_EXIT(conjugateGradient(op, {1, -1}, opts),
                ::testing::ExitedWithCode(1), "positive definite");
}

TEST(IterDeath, ZeroDiagonalIsFatal)
{
    auto a = la::CsrMatrix::fromTriplets(2, 2,
                                         {{0, 1, 1.0}, {1, 0, 1.0}});
    la::CsrOperator op(a);
    EXPECT_EXIT(jacobi(op, {1, 1}, {}),
                ::testing::ExitedWithCode(1), "diagonal");
}

} // namespace
} // namespace aa::solver
