/**
 * @file
 * Edge cases of the flexible Krylov solvers — the paths a healthy
 * convergence run never visits. Tolerance already met at entry, zero
 * right-hand sides, happy breakdown (invariant Krylov subspace),
 * zero-curvature CG directions on indefinite operators, indefinite
 * preconditioned residuals, FGMRES restart boundaries, max-iteration
 * fall-through, failed preconditioner applies, keep_going
 * interruption, and the nonstationary-preconditioner case that is
 * FGMRES's reason to exist. Every exit path must leave `converged`
 * equal to the *recomputed* true residual's verdict — never the
 * recurrence estimate's.
 */

#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "aa/la/dense_matrix.hh"
#include "aa/la/operator.hh"
#include "aa/la/vector.hh"
#include "aa/solver/krylov.hh"

namespace aa::solver {
namespace {

la::DenseMatrix
laplacian1d(std::size_t n)
{
    la::DenseMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        m(i, i) = 2.0;
        if (i + 1 < n) {
            m(i, i + 1) = -1.0;
            m(i + 1, i) = -1.0;
        }
    }
    return m;
}

/** Nonsymmetric convection-like tridiagonal: -1.2 / 2 / -0.8. */
la::DenseMatrix
upwound1d(std::size_t n)
{
    la::DenseMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        m(i, i) = 2.0;
        if (i + 1 < n) {
            m(i, i + 1) = -0.8;
            m(i + 1, i) = -1.2;
        }
    }
    return m;
}

Vector
ones(std::size_t n)
{
    Vector b(n);
    for (std::size_t i = 0; i < n; ++i)
        b[i] = 1.0;
    return b;
}

double
trueRel(const la::DenseMatrix &a, const Vector &b, const Vector &x)
{
    Vector r = b - a.apply(x);
    return la::norm2(r) / la::norm2(b);
}

// --- tolerance at entry -------------------------------------------

TEST(Krylov, ToleranceMetAtEntryCostsNothing)
{
    la::DenseMatrix a = laplacian1d(6);
    Vector xstar = ones(6);
    Vector b = a.apply(xstar);
    la::DenseOperator op(a);

    KrylovOptions o;
    o.x0 = xstar; // exact solution as the starting guess
    for (auto *solve : {&flexibleCg, &fgmres}) {
        KrylovResult r = solve(op, b, identityPreconditioner(), o);
        EXPECT_TRUE(r.converged);
        EXPECT_EQ(r.stop, KrylovStop::Converged);
        EXPECT_EQ(r.iterations, 0u);
        EXPECT_EQ(r.precond_applies, 0u); // no preconditioner traffic
        EXPECT_EQ(r.restarts, 0u);
    }
}

TEST(Krylov, ZeroRhsConvergesToZeroImmediately)
{
    la::DenseMatrix a = laplacian1d(5);
    la::DenseOperator op(a);
    Vector b(5); // all zeros; residual scale falls back to 1

    for (auto *solve : {&flexibleCg, &fgmres}) {
        KrylovResult r = solve(op, b, identityPreconditioner(), {});
        EXPECT_TRUE(r.converged);
        EXPECT_EQ(r.iterations, 0u);
        EXPECT_EQ(r.final_residual, 0.0);
        for (std::size_t i = 0; i < r.x.size(); ++i)
            EXPECT_EQ(r.x[i], 0.0) << i;
    }
}

// --- breakdown paths ----------------------------------------------

TEST(Krylov, HappyBreakdownExitsEarlyAndExactly)
{
    // b lives in a 2-dimensional invariant subspace of a diagonal
    // operator with two distinct eigenvalues among b's support: the
    // Arnoldi basis dies at j = 2 (happy breakdown) and the projected
    // solve is already exact.
    la::DenseMatrix a(4, 4);
    a(0, 0) = 2.0;
    a(1, 1) = 2.0;
    a(2, 2) = 3.0;
    a(3, 3) = 5.0;
    la::DenseOperator op(a);
    Vector b{1.0, 1.0, 1.0, 0.0}; // eigenvalues {2, 3} represented

    KrylovResult r = fgmres(op, b, identityPreconditioner(), {});
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.stop, KrylovStop::Converged);
    EXPECT_LE(r.iterations, 2u); // dimension of the Krylov space
    EXPECT_EQ(r.restarts, 0u);
    EXPECT_LE(trueRel(a, b, r.x), 1e-12);
}

TEST(Krylov, IdentityOperatorConvergesInOneIteration)
{
    la::DenseMatrix a(3, 3);
    for (std::size_t i = 0; i < 3; ++i)
        a(i, i) = 1.0;
    la::DenseOperator op(a);
    Vector b{1.0, -2.0, 3.0};

    KrylovResult r = fgmres(op, b, identityPreconditioner(), {});
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.iterations, 1u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(r.x[i], b[i], 1e-12);
}

TEST(Krylov, CgStopsOnZeroCurvatureInsteadOfIterating)
{
    // Indefinite diagonal: the first direction p = b has p'Ap < 0.
    // CG must refuse to take the step — Breakdown, not a garbage x.
    la::DenseMatrix a(2, 2);
    a(0, 0) = 1.0;
    a(1, 1) = -1.0;
    la::DenseOperator op(a);
    Vector b{0.0, 1.0};

    KrylovResult r = flexibleCg(op, b, identityPreconditioner(), {});
    EXPECT_FALSE(r.converged);
    EXPECT_EQ(r.stop, KrylovStop::Breakdown);
    EXPECT_EQ(r.stop_detail, "zero-curvature direction");
    EXPECT_EQ(r.iterations, 0u);
    // x untouched: the solver hands back the starting guess.
    for (std::size_t i = 0; i < r.x.size(); ++i)
        EXPECT_EQ(r.x[i], 0.0) << i;
}

TEST(Krylov, CgStopsOnIndefinitePreconditionedResidual)
{
    // A preconditioner that flips the residual's sign makes r'z < 0
    // at entry: flexible CG cannot trust the direction at all.
    la::DenseMatrix a = laplacian1d(4);
    la::DenseOperator op(a);
    PrecondFn flip = [](const Vector &r, Vector &z) {
        z.resize(r.size());
        for (std::size_t i = 0; i < r.size(); ++i)
            z[i] = -r[i];
        return true;
    };

    KrylovResult r = flexibleCg(op, ones(4), flip, {});
    EXPECT_FALSE(r.converged);
    EXPECT_EQ(r.stop, KrylovStop::Breakdown);
    EXPECT_EQ(r.stop_detail, "indefinite preconditioned residual");
    EXPECT_EQ(r.iterations, 0u);
    EXPECT_EQ(r.precond_applies, 1u);
}

// --- restart boundaries -------------------------------------------

TEST(Krylov, FgmresRestartsAndStillConverges)
{
    la::DenseMatrix a = upwound1d(12);
    la::DenseOperator op(a);
    Vector b = ones(12);

    KrylovOptions o;
    o.restart = 3; // far below the Krylov dimension needed
    o.tol = 1e-10;
    KrylovResult r = fgmres(op, b, identityPreconditioner(), o);
    EXPECT_TRUE(r.converged);
    EXPECT_GE(r.restarts, 1u);
    EXPECT_LE(trueRel(a, b, r.x), 1e-10);

    // A full-length cycle needs no restart for the same system.
    KrylovOptions full;
    full.restart = 12;
    full.tol = 1e-10;
    KrylovResult f = fgmres(op, b, identityPreconditioner(), full);
    EXPECT_TRUE(f.converged);
    EXPECT_EQ(f.restarts, 0u);
    // Restarting costs iterations, never correctness.
    EXPECT_GE(r.iterations, f.iterations);
}

TEST(Krylov, RestartZeroIsClampedToCycleLengthOne)
{
    la::DenseMatrix a = upwound1d(6);
    la::DenseOperator op(a);
    KrylovOptions o;
    o.restart = 0; // degenerate input: runs as FGMRES(1)
    o.tol = 1e-8;
    o.max_iters = 2000;
    KrylovResult r = fgmres(op, ones(6), identityPreconditioner(), o);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.restarts + 1, r.iterations); // one iteration per cycle
}

// --- max-iteration fall-through -----------------------------------

TEST(Krylov, MaxIterationsReportsHonestResidual)
{
    la::DenseMatrix a = laplacian1d(20);
    la::DenseOperator op(a);
    Vector b = ones(20);

    KrylovOptions o;
    o.max_iters = 3;
    o.tol = 1e-12;
    for (auto *solve : {&flexibleCg, &fgmres}) {
        KrylovResult r = solve(op, b, identityPreconditioner(), o);
        EXPECT_FALSE(r.converged);
        EXPECT_EQ(r.stop, KrylovStop::MaxIterations);
        EXPECT_EQ(r.iterations, 3u);
        // final_residual is the recomputed truth, not an estimate.
        Vector res = b - a.apply(r.x);
        EXPECT_NEAR(r.final_residual, la::norm2(res),
                    1e-12 * la::norm2(b));
    }
}

// --- preconditioner failure and interruption ----------------------

TEST(Krylov, FailedAppliesFallBackToIdentityBitForBit)
{
    la::DenseMatrix a = laplacian1d(8);
    la::DenseOperator op(a);
    Vector b = ones(8);
    PrecondFn broken = [](const Vector &, Vector &) { return false; };

    for (auto *solve : {&flexibleCg, &fgmres}) {
        KrylovResult bad = solve(op, b, broken, {});
        KrylovResult id = solve(op, b, identityPreconditioner(), {});
        EXPECT_TRUE(bad.converged);
        EXPECT_EQ(bad.precond_failures, bad.precond_applies);
        EXPECT_GE(bad.precond_failures, 1u);
        EXPECT_EQ(id.precond_failures, 0u);
        // z = r substitution IS the identity preconditioner: the two
        // runs must be the same solve, bit for bit.
        EXPECT_EQ(bad.iterations, id.iterations);
        ASSERT_EQ(bad.x.size(), id.x.size());
        for (std::size_t i = 0; i < bad.x.size(); ++i)
            EXPECT_EQ(bad.x[i], id.x[i]) << i;
    }
}

TEST(Krylov, KeepGoingFalseInterruptsWithoutLying)
{
    la::DenseMatrix a = laplacian1d(20);
    la::DenseOperator op(a);
    Vector b = ones(20);

    KrylovOptions o;
    o.tol = 1e-12;
    o.keep_going = [] { return false; }; // deadline already blown
    for (auto *solve : {&flexibleCg, &fgmres}) {
        KrylovResult r = solve(op, b, identityPreconditioner(), o);
        EXPECT_FALSE(r.converged);
        EXPECT_EQ(r.stop, KrylovStop::Interrupted);
        EXPECT_EQ(r.stop_detail, "interrupted by keep_going");
        EXPECT_EQ(r.iterations, 0u);
    }
}

// --- the flexible part --------------------------------------------

TEST(Krylov, NonstationaryPreconditionerStillConverges)
{
    // The analog preconditioner's defining property: a different
    // operator every apply. Alternate M^{-1} = 0.5 I and 2 I — classic
    // right-GMRES loses optimality here; the flexible variants must
    // still converge and must still verify the true residual.
    la::DenseMatrix a = upwound1d(10);
    la::DenseOperator op(a);
    Vector b = ones(10);

    int calls = 0;
    PrecondFn wobble = [&calls](const Vector &r, Vector &z) {
        double s = (calls++ % 2 == 0) ? 0.5 : 2.0;
        z.resize(r.size());
        for (std::size_t i = 0; i < r.size(); ++i)
            z[i] = s * r[i];
        return true;
    };

    KrylovOptions o;
    o.tol = 1e-10;
    KrylovResult r = fgmres(op, b, wobble, o);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.precond_applies, r.iterations);
    EXPECT_LE(trueRel(a, b, r.x), 1e-10);
}

TEST(Krylov, JacobiCutsIterationsOnSkewedDiagonals)
{
    // Diagonal spread 1..4096: identity-preconditioned CG grinds;
    // Jacobi solves it essentially at once.
    const std::size_t n = 12;
    la::DenseMatrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
        a(i, i) = std::pow(2.0, static_cast<double>(i));
    la::DenseOperator op(a);
    Vector b = ones(n);

    KrylovOptions o;
    o.tol = 1e-10;
    KrylovResult id = flexibleCg(op, b, identityPreconditioner(), o);
    KrylovResult jac = flexibleCg(op, b, jacobiPreconditioner(op), o);
    EXPECT_TRUE(jac.converged);
    EXPECT_TRUE(id.converged);
    EXPECT_LT(jac.iterations, id.iterations);
    EXPECT_LE(jac.iterations, 2u);
}

TEST(Krylov, ResidualHistoryStartsAtTheEntryResidual)
{
    la::DenseMatrix a = laplacian1d(8);
    la::DenseOperator op(a);
    Vector b = ones(8);

    KrylovOptions o;
    o.record_residuals = true;
    KrylovResult r = flexibleCg(op, b, identityPreconditioner(), o);
    ASSERT_FALSE(r.residual_history.empty());
    EXPECT_EQ(r.residual_history.front(), la::norm2(b));
    EXPECT_EQ(r.residual_history.size(), r.iterations + 1);
    // CG's recurrence norm at exit agrees with the recomputed truth.
    EXPECT_NEAR(r.residual_history.back(), r.final_residual,
                1e-10 * la::norm2(b));
}

TEST(Krylov, StartingGuessIsHonored)
{
    la::DenseMatrix a = laplacian1d(10);
    la::DenseOperator op(a);
    Vector xstar = ones(10);
    Vector b = a.apply(xstar);

    KrylovOptions cold;
    cold.tol = 1e-10;
    KrylovOptions warm = cold;
    warm.x0 = xstar;
    // Perturb along one eigenvector of the 1-D Laplacian
    // (sin(k pi (i+1) / (n+1)), k = 1): the warm residual's Krylov
    // space is one-dimensional, so the warm solve finishes in a
    // single iteration while the cold one iterates.
    for (std::size_t i = 0; i < warm.x0.size(); ++i)
        warm.x0[i] += 1e-3 * std::sin(M_PI * (i + 1.0) / 11.0);

    for (auto *solve : {&flexibleCg, &fgmres}) {
        KrylovResult c = solve(op, b, identityPreconditioner(), cold);
        KrylovResult w = solve(op, b, identityPreconditioner(), warm);
        EXPECT_TRUE(c.converged);
        EXPECT_TRUE(w.converged);
        EXPECT_LT(w.iterations, c.iterations);
    }
}

} // namespace
} // namespace aa::solver
