#!/usr/bin/env bash
# The whole verify recipe in one command:
#   1. tier-1: configure + build + ctest -L tier1 (must stay green)
#   2. sanitize: ASan/UBSan build of the suites most likely to hide
#      lifetime/UB bugs after pipeline work (compiler + analog, plus
#      the circuit plan-equivalence oracle).
# Usage: tools/check.sh [--tier1-only]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1 =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
ctest --test-dir build -L tier1 --output-on-failure -j"$(nproc)"

if [[ "${1:-}" == "--tier1-only" ]]; then
    exit 0
fi

echo "== sanitize (ASan/UBSan) =="
cmake --preset sanitize >/dev/null
cmake --build build-sanitize -j"$(nproc)" \
    --target compiler_test analog_test circuit_test
for t in compiler_test analog_test circuit_test; do
    ./build-sanitize/tests/"$t" --gtest_brief=1
done
echo "check.sh: all green"
