#!/usr/bin/env bash
# The whole verify recipe in one command:
#   1. tier-1: configure + build + ctest -L tier1 (must stay green),
#      re-run at AASIM_THREADS=1 and =4 — the multi-die scheduler's
#      tables must be bit-identical at any thread count.
#   2. sanitize: ASan/UBSan build of the suites most likely to hide
#      lifetime/UB bugs after pipeline work (compiler + analog, plus
#      the circuit plan-equivalence oracle).
#   3. tsan: ThreadSanitizer build of the thread pool and multi-die
#      scheduler suites (common + analog + decompose_parallel +
#      service).
# The --service leg runs just the solve-request service checks: its
# gtest binary and the chaos suite under TSan at AASIM_THREADS=1 and
# =4, then the cache-affine vs round-robin throughput benchmark,
# recorded into BENCH_service.json.
# The --fleet leg covers the sharded fleet: shard_test under TSan at
# AASIM_THREADS=1 and =4, then the sharded rack-scaling and tenant-
# fairness benchmarks, recorded into BENCH_service.json alongside the
# single-pool scenarios.
# The --spice leg covers the SPICE/MNA front end: spice_test under
# TSan at AASIM_THREADS=1 and =4 (the mixed circuit+stencil service
# trace must stay bit-identical), then the parse/assemble/solve and
# mixed-cache benchmarks, recorded into BENCH_spice.json.
# The --krylov leg covers the preconditioned-Krylov lane: krylov_test
# and the solve-property harness under TSan at AASIM_THREADS=1 and =4
# (every lane of the ladder must stay bit-identical), then the
# analog-preconditioned vs host Krylov iteration-crossover benchmark,
# recorded into BENCH_krylov.json.
# The --coverage leg builds the coverage preset, runs the fault /
# service / fleet / spice / analog / krylov suites, and gates
# src/fault, src/service, src/spice, and src/solver at 85% line
# coverage via tools/coverage.py (emits coverage.xml).
# Usage: tools/check.sh [--tier1-only | --service | --fleet | --spice | --krylov | --coverage]
set -euo pipefail
cd "$(dirname "$0")/.."

# Bench artifacts must come from an optimized build: every gbench
# binary stamps aasim_build_type into its JSON context (the
# "library_build_type" key describes libbenchmark itself). Warn on
# Debug captures of our code, a debug timing library (configure with
# -DAA_BENCHMARK_SOURCE_DIR=<checkout> to sub-build it in Release),
# or pre-stamp artifacts.
warn_debug_bench() {
    local f
    for f in BENCH_*.json; do
        [[ -e "$f" ]] || continue
        if grep -q '"aasim_build_type": "Debug"' "$f"; then
            echo "WARNING: $f was captured from a Debug build;" \
                 "re-record it from the RelWithDebInfo preset" >&2
        elif ! grep -q '"aasim_build_type"' "$f"; then
            echo "WARNING: $f has no aasim_build_type context" \
                 "(stale capture predating the build stamp)" >&2
        fi
        if grep -q '"library_build_type": "debug"' "$f"; then
            echo "WARNING: $f was timed with a debug libbenchmark;" \
                 "configure with -DAA_BENCHMARK_SOURCE_DIR=<checkout>" \
                 "for a Release timing library" >&2
        fi
    done
}

# Re-record a bench artifact, then diff throughput against the prior
# capture: bench_compare.py warns (never fails) on >15% regressions.
record_service_bench() {
    local prev=""
    if [[ -e BENCH_service.json ]]; then
        prev="$(mktemp)"
        cp BENCH_service.json "$prev"
    fi
    AASIM_THREADS=4 ./build/bench/service_gbench \
        --benchmark_min_time=2 \
        --benchmark_out=BENCH_service.json \
        --benchmark_out_format=json
    if [[ -n "$prev" ]]; then
        python3 tools/bench_compare.py "$prev" BENCH_service.json || true
        rm -f "$prev"
    fi
}

# Same re-record + compare flow for the SPICE bench artifact.
record_spice_bench() {
    local prev=""
    if [[ -e BENCH_spice.json ]]; then
        prev="$(mktemp)"
        cp BENCH_spice.json "$prev"
    fi
    AASIM_THREADS=4 ./build/bench/spice_gbench \
        --benchmark_min_time=2 \
        --benchmark_out=BENCH_spice.json \
        --benchmark_out_format=json
    if [[ -n "$prev" ]]; then
        python3 tools/bench_compare.py "$prev" BENCH_spice.json || true
        rm -f "$prev"
    fi
}

if [[ "${1:-}" == "--spice" ]]; then
    echo "== spice (TSan) =="
    cmake --preset tsan >/dev/null
    cmake --build build-tsan -j"$(nproc)" --target spice_test
    for threads in 1 4; do
        echo "-- spice_test @ AASIM_THREADS=$threads"
        AASIM_THREADS=$threads \
            ./build-tsan/tests/spice_test --gtest_brief=1
    done
    echo "== spice front end (BENCH_spice.json) =="
    cmake -B build -S . >/dev/null
    cmake --build build -j"$(nproc)" --target spice_gbench
    record_spice_bench
    warn_debug_bench
    echo "check.sh: spice leg green"
    exit 0
fi

# Same re-record + compare flow for the Krylov crossover artifact.
record_krylov_bench() {
    local prev=""
    if [[ -e BENCH_krylov.json ]]; then
        prev="$(mktemp)"
        cp BENCH_krylov.json "$prev"
    fi
    AASIM_THREADS=4 ./build/bench/krylov_gbench \
        --benchmark_min_time=2 \
        --benchmark_out=BENCH_krylov.json \
        --benchmark_out_format=json
    if [[ -n "$prev" ]]; then
        python3 tools/bench_compare.py "$prev" BENCH_krylov.json || true
        rm -f "$prev"
    fi
}

if [[ "${1:-}" == "--krylov" ]]; then
    echo "== krylov (TSan) =="
    cmake --preset tsan >/dev/null
    cmake --build build-tsan -j"$(nproc)" \
        --target krylov_test solve_properties_test
    for t in krylov_test solve_properties_test; do
        for threads in 1 4; do
            echo "-- $t @ AASIM_THREADS=$threads"
            AASIM_THREADS=$threads \
                ./build-tsan/tests/"$t" --gtest_brief=1
        done
    done
    echo "== krylov crossover (BENCH_krylov.json) =="
    cmake -B build -S . >/dev/null
    cmake --build build -j"$(nproc)" --target krylov_gbench
    record_krylov_bench
    warn_debug_bench
    echo "check.sh: krylov leg green"
    exit 0
fi

if [[ "${1:-}" == "--coverage" ]]; then
    echo "== coverage (gcov) =="
    cmake --preset coverage >/dev/null
    cmake --build build-coverage -j"$(nproc)" \
        --target chaos_test service_test pipeline_test shard_test \
                 analog_test spice_test krylov_test solver_test \
                 solve_properties_test
    find build-coverage -name '*.gcda' -delete
    for t in chaos_test service_test pipeline_test shard_test \
             analog_test spice_test krylov_test solver_test \
             solve_properties_test; do
        echo "-- $t"
        ./build-coverage/tests/"$t" --gtest_brief=1
    done
    python3 tools/coverage.py --build build-coverage \
        --xml build-coverage/coverage.xml \
        --gate src/fault:85 --gate src/service:85 \
        --gate src/spice:85 --gate src/solver:85
    echo "check.sh: coverage leg green"
    exit 0
fi

if [[ "${1:-}" == "--service" ]]; then
    echo "== service (TSan) =="
    cmake --preset tsan >/dev/null
    cmake --build build-tsan -j"$(nproc)" \
        --target service_test pipeline_test chaos_test
    for t in service_test pipeline_test chaos_test; do
        for threads in 1 4; do
            echo "-- $t @ AASIM_THREADS=$threads"
            AASIM_THREADS=$threads \
                ./build-tsan/tests/"$t" --gtest_brief=1
        done
    done
    echo "== service throughput (BENCH_service.json) =="
    cmake -B build -S . >/dev/null
    cmake --build build -j"$(nproc)" --target service_gbench
    record_service_bench
    warn_debug_bench
    echo "check.sh: service leg green"
    exit 0
fi

if [[ "${1:-}" == "--fleet" ]]; then
    echo "== fleet (TSan) =="
    cmake --preset tsan >/dev/null
    cmake --build build-tsan -j"$(nproc)" \
        --target shard_test pipeline_test
    for t in shard_test pipeline_test; do
        for threads in 1 4; do
            echo "-- $t @ AASIM_THREADS=$threads"
            AASIM_THREADS=$threads \
                ./build-tsan/tests/"$t" --gtest_brief=1
        done
    done
    echo "== fleet throughput (BENCH_service.json) =="
    # The sharded scenarios live in service_gbench; re-record the
    # whole artifact so the single-pool and fleet lanes always come
    # from the same build.
    cmake -B build -S . >/dev/null
    cmake --build build -j"$(nproc)" --target service_gbench
    record_service_bench
    warn_debug_bench
    echo "check.sh: fleet leg green"
    exit 0
fi

echo "== tier-1 =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
for threads in 1 4; do
    echo "-- tier-1 @ AASIM_THREADS=$threads"
    AASIM_THREADS=$threads \
        ctest --test-dir build -L tier1 --output-on-failure -j"$(nproc)"
done
warn_debug_bench

if [[ "${1:-}" == "--tier1-only" ]]; then
    exit 0
fi

echo "== sanitize (ASan/UBSan) =="
cmake --preset sanitize >/dev/null
cmake --build build-sanitize -j"$(nproc)" \
    --target compiler_test analog_test circuit_test chaos_test \
             service_test pipeline_test shard_test spice_test \
             krylov_test solve_properties_test
for t in compiler_test analog_test circuit_test chaos_test \
         service_test pipeline_test shard_test spice_test \
         krylov_test solve_properties_test; do
    ./build-sanitize/tests/"$t" --gtest_brief=1
done

echo "== sanitize (TSan) =="
# circuit_test rides along for the SoA plan-equivalence oracle and
# analog_test for solveBatch bit-identity: batched dispatch must stay
# deterministic at any AASIM_THREADS.
cmake --preset tsan >/dev/null
cmake --build build-tsan -j"$(nproc)" \
    --target common_test circuit_test analog_test \
             decompose_parallel_test service_test pipeline_test \
             shard_test chaos_test spice_test \
             solve_properties_test
for t in common_test circuit_test analog_test \
         decompose_parallel_test service_test pipeline_test \
         shard_test chaos_test spice_test \
         solve_properties_test; do
    for threads in 1 4; do
        AASIM_THREADS=$threads \
            ./build-tsan/tests/"$t" --gtest_brief=1
    done
done
echo "check.sh: all green"
