#!/usr/bin/env python3
"""Aggregate gcov line coverage and gate directories on a minimum.

The coverage preset builds with --coverage; running the test binaries
drops .gcda counters next to the objects. This script walks the build
tree, asks `gcov --json-format --stdout` for per-line counts, merges
them per source file, writes a Cobertura-style coverage.xml (for CI
viewers), prints a per-directory summary, and exits nonzero when a
gated directory is under its threshold.

Stdlib only — the container has no gcovr.

Usage:
  tools/coverage.py --build build-coverage --xml coverage.xml \
      --gate src/fault:85 --gate src/service:85
"""

import argparse
import json
import os
import subprocess
import sys
import xml.etree.ElementTree as ET


def find_gcda(build_dir):
    for dirpath, _dirnames, filenames in os.walk(build_dir):
        for fn in filenames:
            if fn.endswith(".gcda"):
                yield os.path.join(dirpath, fn)


def gcov_json_docs(gcda_path):
    """Run gcov on one .gcda and yield the parsed JSON documents."""
    proc = subprocess.run(
        ["gcov", "--json-format", "--stdout", gcda_path],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        check=False,
    )
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            yield json.loads(line)
        except json.JSONDecodeError:
            continue


def collect(build_dir, root):
    """Merge line counts: {relative source path: {line: hits}}."""
    merged = {}
    root = os.path.realpath(root)
    for gcda in find_gcda(build_dir):
        for doc in gcov_json_docs(gcda):
            cwd = doc.get("current_working_directory", "")
            for f in doc.get("files", []):
                path = f.get("file", "")
                if not os.path.isabs(path):
                    path = os.path.join(cwd, path)
                path = os.path.realpath(path)
                if not path.startswith(root + os.sep):
                    continue
                rel = os.path.relpath(path, root)
                lines = merged.setdefault(rel, {})
                for ln in f.get("lines", []):
                    num = ln.get("line_number")
                    count = ln.get("count", 0)
                    if num is None:
                        continue
                    lines[num] = max(lines.get(num, 0), count)
    return merged


def rate(lines):
    total = len(lines)
    hit = sum(1 for c in lines.values() if c > 0)
    return (hit, total, (hit / total) if total else 1.0)


def dir_rate(merged, prefix):
    lines = {}
    prefix = prefix.rstrip("/") + "/"
    for rel, file_lines in merged.items():
        if rel.startswith(prefix):
            for num, count in file_lines.items():
                lines[(rel, num)] = count
    return rate(lines)


def write_cobertura(merged, root, xml_path):
    hit_all, total_all, rate_all = rate(
        {
            (rel, num): count
            for rel, lines in merged.items()
            for num, count in lines.items()
        }
    )
    cov = ET.Element(
        "coverage",
        {
            "line-rate": f"{rate_all:.4f}",
            "lines-covered": str(hit_all),
            "lines-valid": str(total_all),
            "branch-rate": "0",
            "version": "1",
            "timestamp": "0",
        },
    )
    sources = ET.SubElement(cov, "sources")
    ET.SubElement(sources, "source").text = root
    packages = ET.SubElement(cov, "packages")

    by_dir = {}
    for rel in sorted(merged):
        by_dir.setdefault(os.path.dirname(rel), []).append(rel)
    for dirname, files in sorted(by_dir.items()):
        _h, _t, drate = dir_rate(merged, dirname) if dirname else rate(
            {
                (rel, num): count
                for rel in files
                for num, count in merged[rel].items()
            }
        )
        pkg = ET.SubElement(
            packages,
            "package",
            {"name": dirname or ".", "line-rate": f"{drate:.4f}"},
        )
        classes = ET.SubElement(pkg, "classes")
        for rel in files:
            _fh, _ft, frate = rate(merged[rel])
            cls = ET.SubElement(
                classes,
                "class",
                {
                    "name": os.path.basename(rel),
                    "filename": rel,
                    "line-rate": f"{frate:.4f}",
                },
            )
            lines_el = ET.SubElement(cls, "lines")
            for num in sorted(merged[rel]):
                ET.SubElement(
                    lines_el,
                    "line",
                    {"number": str(num), "hits": str(merged[rel][num])},
                )
    ET.ElementTree(cov).write(
        xml_path, encoding="utf-8", xml_declaration=True
    )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build", required=True, help="build tree with .gcda")
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--xml", default="", help="write coverage.xml here")
    ap.add_argument(
        "--gate",
        action="append",
        default=[],
        metavar="DIR:PCT",
        help="fail if DIR line coverage < PCT (repeatable)",
    )
    args = ap.parse_args()

    root = os.path.realpath(args.root)
    merged = collect(args.build, root)
    if not merged:
        print("coverage.py: no coverage data found under", args.build)
        return 2

    if args.xml:
        write_cobertura(merged, root, args.xml)
        print(f"coverage.py: wrote {args.xml}")

    failed = False
    for gate in args.gate:
        dirname, _, pct = gate.rpartition(":")
        threshold = float(pct)
        hit, total, r = dir_rate(merged, dirname)
        status = "ok" if r * 100.0 >= threshold else "FAIL"
        if status == "FAIL":
            failed = True
        print(
            f"coverage.py: {dirname}: {hit}/{total} lines "
            f"({r * 100.0:.1f}%) >= {threshold:.0f}% ... {status}"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
