#!/usr/bin/env python3
"""Compare two google-benchmark JSON artifacts and warn on regressions.

Usage: bench_compare.py BASELINE.json NEW.json [--threshold 0.15]

For every benchmark name present in both files, the throughput rate is
items_per_second when recorded, else 1/real_time. A drop larger than
the threshold prints a WARNING line; the exit code stays 0 either way
(this is a tripwire for tools/check.sh, not a gate — single-core CI
containers are too noisy to fail a build on wall clock). Unreadable
inputs exit 2 so a broken wiring never masquerades as a quiet pass.
"""

import argparse
import json
import sys


def load_rates(path):
    """Map benchmark name -> throughput rate (higher is better)."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    rates = {}
    for b in doc.get("benchmarks", []):
        # Aggregate rows (mean/median/stddev) would double-count the
        # underlying iterations; compare plain runs only.
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name")
        if not name:
            continue
        rate = b.get("items_per_second")
        if not rate:
            real = b.get("real_time")
            rate = 1.0 / real if real else None
        if rate:
            rates[name] = rate
    return rates


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="fractional throughput drop that warns "
                         "(default 0.15)")
    args = ap.parse_args()

    try:
        base = load_rates(args.baseline)
        new = load_rates(args.new)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read inputs: {e}",
              file=sys.stderr)
        return 2

    common = sorted(set(base) & set(new))
    if not common:
        print("bench_compare: no common benchmarks to compare",
              file=sys.stderr)
        return 0

    regressions = 0
    for name in common:
        b, n = base[name], new[name]
        if b <= 0:
            continue
        delta = (n - b) / b
        if delta < -args.threshold:
            regressions += 1
            print(f"WARNING: {name}: throughput {b:.3g} -> {n:.3g} "
                  f"({delta * 100:+.1f}%)", file=sys.stderr)
    print(f"bench_compare: {len(common)} benchmarks compared, "
          f"{regressions} regressed beyond "
          f"{args.threshold * 100:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
