/**
 * @file
 * aasim_solve — command-line front end to the analog accelerator.
 *
 * Reads a system A u = b from Matrix Market files, solves it on a
 * simulated analog accelerator die (optionally with Algorithm-2
 * refinement or as decomposed blocks), and writes the solution as a
 * Matrix Market array. Also reports the digital reference and the
 * accelerator statistics, so the tool doubles as a one-shot
 * paper-style comparison on user-supplied matrices.
 *
 * Usage:
 *   aasim_solve --matrix A.mtx [--rhs b.mtx] [--out u.mtx]
 *               [--bandwidth HZ] [--adc-bits N] [--die-seed S]
 *               [--refine TOL] [--block-vars K] [--quiet]
 *   aasim_solve --netlist deck.sp [--transient DT] [...]
 *
 * --netlist parses a SPICE deck and assembles the (reduced, SPD)
 * MNA system G v = i in place of --matrix/--rhs; --transient uses
 * the backward-Euler companion matrix at step DT instead of DC.
 * --dump-matrix P additionally exports the system being solved as
 * Matrix Market: the matrix to P (symmetric storage when it is),
 * the right-hand side to P with "_b" before the extension — the
 * deck-to-.mtx bridge for external tools.
 *
 * Without --rhs, b defaults to all ones. Exits nonzero on failure.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "aa/analog/decompose.hh"
#include "aa/analog/refine.hh"
#include "aa/analog/solver.hh"
#include "aa/common/logging.hh"
#include "aa/la/direct.hh"
#include "aa/la/io.hh"
#include "aa/spice/mna.hh"

namespace {

struct Args {
    std::string matrix;
    std::string netlist;
    std::string rhs;
    std::string out;
    std::string dump_matrix;
    std::optional<double> transient_dt;
    double bandwidth = 20e3;
    std::size_t adc_bits = 8;
    std::uint64_t die_seed = 1;
    std::optional<double> refine_tol;
    std::optional<std::size_t> block_vars;
    bool quiet = false;
};

void
usage()
{
    std::cerr
        << "usage: aasim_solve --matrix A.mtx [--rhs b.mtx]\n"
           "                   [--out u.mtx] [--bandwidth HZ]\n"
           "                   [--adc-bits N] [--die-seed S]\n"
           "                   [--refine TOL] [--block-vars K]\n"
           "                   [--quiet]\n"
           "       aasim_solve --netlist deck.sp [--transient DT]\n"
           "                   [--dump-matrix out.mtx] [...]\n";
}

Args
parseArgs(int argc, char **argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        auto next = [&]() -> std::string {
            aa::fatalIf(i + 1 >= argc, "missing value for ", flag);
            return argv[++i];
        };
        if (flag == "--matrix") {
            args.matrix = next();
        } else if (flag == "--netlist") {
            args.netlist = next();
        } else if (flag == "--transient") {
            args.transient_dt = std::stod(next());
        } else if (flag == "--dump-matrix") {
            args.dump_matrix = next();
        } else if (flag == "--rhs") {
            args.rhs = next();
        } else if (flag == "--out") {
            args.out = next();
        } else if (flag == "--bandwidth") {
            args.bandwidth = std::stod(next());
        } else if (flag == "--adc-bits") {
            args.adc_bits = std::stoul(next());
        } else if (flag == "--die-seed") {
            args.die_seed = std::stoull(next());
        } else if (flag == "--refine") {
            args.refine_tol = std::stod(next());
        } else if (flag == "--block-vars") {
            args.block_vars = std::stoul(next());
        } else if (flag == "--quiet") {
            args.quiet = true;
        } else if (flag == "--help" || flag == "-h") {
            usage();
            std::exit(0);
        } else {
            std::cerr << "unknown flag: " << flag << "\n";
            usage();
            std::exit(2);
        }
    }
    if (args.matrix.empty() == args.netlist.empty()) {
        // Exactly one input source: a matrix file or a deck.
        usage();
        std::exit(2);
    }
    return args;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace aa;
    Args args = parseArgs(argc, argv);
    if (args.quiet)
        setLogLevel(LogLevel::Quiet);

    la::CsrMatrix a;
    la::Vector b;
    if (!args.netlist.empty()) {
        std::ifstream deck(args.netlist);
        fatalIf(!deck, "aasim_solve: cannot open ", args.netlist);
        std::ostringstream text;
        text << deck.rdbuf();
        spice::MnaOptions mopts;
        if (args.transient_dt) {
            mopts.mode = spice::AnalysisMode::Transient;
            mopts.dt = *args.transient_dt;
        }
        spice::AssembleResult asm_r =
            spice::assembleDeck(text.str(), mopts);
        if (!asm_r.ok) {
            std::cerr << asm_r.summary() << "\n";
            return 1;
        }
        for (const spice::Diagnostic &d : asm_r.diagnostics)
            std::cerr << d.str() << "\n";
        a = asm_r.system.g;
        b = args.rhs.empty() ? asm_r.system.i
                             : la::readVectorMarketFile(args.rhs);
        std::cerr << "assembled " << args.netlist << ": "
                  << a.rows() << " unknowns, " << a.nnz()
                  << " nonzeros\n";
    } else {
        a = la::readMatrixMarketFile(args.matrix);
        b = args.rhs.empty() ? la::Vector(a.rows(), 1.0)
                             : la::readVectorMarketFile(args.rhs);
    }
    fatalIf(a.rows() != a.cols(), "aasim_solve: matrix must be "
                                  "square, got ",
            a.rows(), "x", a.cols());
    fatalIf(b.size() != a.rows(),
            "aasim_solve: rhs size ", b.size(), " != matrix order ",
            a.rows());

    if (!args.dump_matrix.empty()) {
        std::ofstream mf(args.dump_matrix);
        fatalIf(!mf, "aasim_solve: cannot open ", args.dump_matrix);
        la::writeMatrixMarket(a, mf, a.isSymmetric());
        std::string bpath = args.dump_matrix;
        std::size_t dot = bpath.rfind('.');
        bpath.insert(dot == std::string::npos ? bpath.size() : dot,
                     "_b");
        std::ofstream bf(bpath);
        fatalIf(!bf, "aasim_solve: cannot open ", bpath);
        la::writeVectorMarket(b, bf);
        std::cerr << "wrote " << args.dump_matrix << " and " << bpath
                  << "\n";
    }

    analog::AnalogSolverOptions opts;
    opts.spec.bandwidth_hz = args.bandwidth;
    opts.spec.adc_bits = args.adc_bits;
    opts.die_seed = args.die_seed;
    analog::AnalogLinearSolver solver(opts);

    la::Vector u;
    if (args.block_vars) {
        analog::DecomposeOptions dopts;
        dopts.max_block_vars = *args.block_vars;
        dopts.tol = 1.0 / 256.0;
        auto out = args.refine_tol
                       ? analog::solveDecomposed(
                             a, b,
                             pde::rangePartition(a.rows(),
                                                 *args.block_vars),
                             analog::refinedAnalogBlockSolver(
                                 solver, 3, *args.refine_tol),
                             dopts)
                       : analog::solveDecomposedAnalog(solver, a, b,
                                                       dopts);
        fatalIf(!out.converged,
                "aasim_solve: outer iteration did not converge in ",
                dopts.max_outer_iters, " sweeps");
        u = out.u;
        std::cerr << "decomposed: " << out.blocks << " blocks, "
                  << out.outer_iterations << " sweeps, "
                  << out.block_solves << " accelerator runs\n";
    } else if (args.refine_tol) {
        analog::RefineOptions ropts;
        ropts.tolerance = *args.refine_tol;
        auto out = analog::refineSolve(solver, a.toDense(), b, ropts);
        fatalIf(!out.converged,
                "aasim_solve: refinement stalled at relative "
                "residual ",
                out.final_residual / la::norm2(b));
        u = out.u;
        std::cerr << "refined: " << out.passes
                  << " passes, final residual " << out.final_residual
                  << "\n";
    } else {
        auto out = solver.solve(a.toDense(), b);
        u = out.u;
        std::cerr << "single run: " << out.attempts
                  << " attempts, sigma " << out.solution_scale
                  << ", analog time " << out.analog_seconds * 1e6
                  << " us\n";
    }

    la::Vector r = b;
    a.applyAdd(-1.0, u, r);
    std::cerr << "relative residual: "
              << la::norm2(r) / std::max(la::norm2(b), 1e-300)
              << "\n";
    std::cerr << "total analog compute time: "
              << solver.totalAnalogSeconds() * 1e6 << " us\n";

    if (args.out.empty()) {
        la::writeVectorMarket(u, std::cout);
    } else {
        std::ofstream file(args.out);
        fatalIf(!file, "aasim_solve: cannot open ", args.out);
        la::writeVectorMarket(u, file);
        std::cerr << "wrote " << args.out << "\n";
    }
    return 0;
}
