* 2x2 resistive grid with a corner current injection.
* Small enough to eyeball: 4 nodes, node n11 grounded through rg.
r12 n11 n12 1k
r13 n11 n21 1k
r24 n12 n22 1k
r34 n21 n22 1k
rg  n11 0   1k
i1  0 n22 1m
.end
