#include "aa/pde/poisson.hh"

#include <cmath>

#include "aa/common/logging.hh"

namespace aa::pde {

BoundaryFn
zeroBoundary()
{
    return [](double, double, double) { return 0.0; };
}

SourceFn
zeroSource()
{
    return [](double, double, double) { return 0.0; };
}

PoissonProblem
assemblePoisson(std::size_t dim, std::size_t l, const SourceFn &f,
                const BoundaryFn &g)
{
    StructuredGrid grid(dim, l);
    double h = grid.spacing();
    double inv_h2 = 1.0 / (h * h);
    std::size_t n = grid.totalPoints();

    std::vector<la::Triplet> trip;
    trip.reserve(n * (2 * dim + 1));
    la::Vector b(n);

    for (std::size_t i = 0; i < n; ++i) {
        trip.push_back({i, i, 2.0 * static_cast<double>(dim) * inv_h2});
        auto p = grid.position(i);
        b[i] = f(p[0], p[1], p[2]);
        grid.forEachNeighbor(
            i,
            [&](std::size_t j) { trip.push_back({i, j, -inv_h2}); },
            [&](double bx, double by, double bz) {
                b[i] += g(bx, by, bz) * inv_h2;
            });
    }

    return PoissonProblem{grid,
                          la::CsrMatrix::fromTriplets(n, n,
                                                      std::move(trip)),
                          std::move(b)};
}

PoissonProblem
figure7Problem(std::size_t l)
{
    // Boundary condition u(x,y,z) = 1.0 for the plane x = 0,
    // u = 0.0 otherwise (paper, Figure 7 caption).
    BoundaryFn g = [](double x, double, double) {
        return x == 0.0 ? 1.0 : 0.0;
    };
    return assemblePoisson(3, l, zeroSource(), g);
}

PoissonStencil::PoissonStencil(std::size_t dim, std::size_t l)
    : grid(dim, l)
{
    double h = grid.spacing();
    inv_h2 = 1.0 / (h * h);
}

void
PoissonStencil::apply(const la::Vector &x, la::Vector &y) const
{
    panicIf(x.size() != grid.totalPoints(),
            "PoissonStencil::apply: size mismatch");
    y.assign(grid.totalPoints(), 0.0);

    std::size_t l = grid.pointsPerSide();
    std::size_t d = grid.dim();
    double diag = 2.0 * static_cast<double>(d) * inv_h2;

    // Hand-unrolled per dimension: this is the hot loop of every
    // digital baseline, so it avoids the generic neighbor callbacks.
    if (d == 1) {
        for (std::size_t i = 0; i < l; ++i) {
            double acc = diag * x[i];
            if (i > 0)
                acc -= inv_h2 * x[i - 1];
            if (i + 1 < l)
                acc -= inv_h2 * x[i + 1];
            y[i] = acc;
        }
    } else if (d == 2) {
        for (std::size_t j = 0; j < l; ++j) {
            for (std::size_t i = 0; i < l; ++i) {
                std::size_t idx = i + l * j;
                double acc = diag * x[idx];
                if (i > 0)
                    acc -= inv_h2 * x[idx - 1];
                if (i + 1 < l)
                    acc -= inv_h2 * x[idx + 1];
                if (j > 0)
                    acc -= inv_h2 * x[idx - l];
                if (j + 1 < l)
                    acc -= inv_h2 * x[idx + l];
                y[idx] = acc;
            }
        }
    } else {
        std::size_t l2 = l * l;
        for (std::size_t k = 0; k < l; ++k) {
            for (std::size_t j = 0; j < l; ++j) {
                for (std::size_t i = 0; i < l; ++i) {
                    std::size_t idx = i + l * j + l2 * k;
                    double acc = diag * x[idx];
                    if (i > 0)
                        acc -= inv_h2 * x[idx - 1];
                    if (i + 1 < l)
                        acc -= inv_h2 * x[idx + 1];
                    if (j > 0)
                        acc -= inv_h2 * x[idx - l];
                    if (j + 1 < l)
                        acc -= inv_h2 * x[idx + l];
                    if (k > 0)
                        acc -= inv_h2 * x[idx - l2];
                    if (k + 1 < l)
                        acc -= inv_h2 * x[idx + l2];
                    y[idx] = acc;
                }
            }
        }
    }
}

la::Vector
PoissonStencil::diagonal() const
{
    return la::Vector(grid.totalPoints(),
                      2.0 * static_cast<double>(grid.dim()) * inv_h2);
}

std::size_t
PoissonStencil::applyFlops() const
{
    return grid.totalPoints() * (2 * grid.dim() + 1);
}

la::Vector
sampleOnGrid(const StructuredGrid &grid, const SourceFn &f)
{
    la::Vector v(grid.totalPoints());
    for (std::size_t i = 0; i < grid.totalPoints(); ++i) {
        auto p = grid.position(i);
        v[i] = f(p[0], p[1], p[2]);
    }
    return v;
}

} // namespace aa::pde
