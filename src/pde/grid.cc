#include "aa/pde/grid.hh"

#include <cmath>

#include "aa/common/logging.hh"

namespace aa::pde {

StructuredGrid::StructuredGrid(std::size_t dim, std::size_t l)
    : d(dim), l_(l)
{
    fatalIf(dim < 1 || dim > 3, "StructuredGrid: dim must be 1..3");
    fatalIf(l < 1, "StructuredGrid: need at least one interior point");
    n = 1;
    for (std::size_t k = 0; k < dim; ++k)
        n *= l;
    h = 1.0 / static_cast<double>(l + 1);
}

std::size_t
StructuredGrid::index(std::size_t i, std::size_t j, std::size_t k) const
{
    panicIf(i >= l_ || (d < 2 && j) || (d < 3 && k) ||
                (d >= 2 && j >= l_) || (d >= 3 && k >= l_),
            "StructuredGrid::index out of range");
    return i + l_ * (j + l_ * k);
}

std::array<std::size_t, 3>
StructuredGrid::coords(std::size_t idx) const
{
    panicIf(idx >= n, "StructuredGrid::coords out of range");
    std::array<std::size_t, 3> c = {0, 0, 0};
    c[0] = idx % l_;
    if (d >= 2)
        c[1] = (idx / l_) % l_;
    if (d >= 3)
        c[2] = idx / (l_ * l_);
    return c;
}

std::array<double, 3>
StructuredGrid::position(std::size_t idx) const
{
    auto c = coords(idx);
    std::array<double, 3> p = {0.0, 0.0, 0.0};
    for (std::size_t a = 0; a < d; ++a)
        p[a] = static_cast<double>(c[a] + 1) * h;
    return p;
}

void
StructuredGrid::forEachNeighbor(
    std::size_t idx,
    const std::function<void(std::size_t)> &on_interior,
    const std::function<void(double, double, double)> &on_boundary)
    const
{
    auto c = coords(idx);
    for (std::size_t axis = 0; axis < d; ++axis) {
        for (int dir : {-1, +1}) {
            auto nb = c;
            bool outside;
            if (dir < 0) {
                outside = (nb[axis] == 0);
                if (!outside)
                    --nb[axis];
            } else {
                outside = (nb[axis] + 1 == l_);
                if (!outside)
                    ++nb[axis];
            }
            if (!outside) {
                on_interior(index(nb[0], nb[1], nb[2]));
            } else if (on_boundary) {
                std::array<double, 3> p = {0.0, 0.0, 0.0};
                for (std::size_t a = 0; a < d; ++a)
                    p[a] = static_cast<double>(c[a] + 1) * h;
                p[axis] = dir < 0 ? 0.0 : 1.0;
                on_boundary(p[0], p[1], p[2]);
            }
        }
    }
}

} // namespace aa::pde
