/**
 * @file
 * Grid partitioning for domain decomposition.
 *
 * The paper (Section IV-B) splits a 2D problem into 1D strips that fit
 * the accelerator, solves the strips independently, and recovers
 * global convergence with an outer iteration across the subproblems.
 * This header produces those index sets.
 */

#ifndef AA_PDE_PARTITION_HH
#define AA_PDE_PARTITION_HH

#include <vector>

#include "aa/pde/grid.hh"

namespace aa::pde {

/** One subdomain: sorted global indices of its interior points. */
using IndexSet = std::vector<std::size_t>;

/**
 * Partition the grid into contiguous blocks of at most max_points
 * variables each, cutting along the highest-order dimension so each
 * block is a bundle of full lower-dimensional slices (rows/planes).
 * Every point appears in exactly one block.
 */
std::vector<IndexSet> stripPartition(const StructuredGrid &grid,
                                     std::size_t max_points);

/**
 * Simple 1D range partition of n unknowns into blocks of at most
 * max_points (for non-grid matrices).
 */
std::vector<IndexSet> rangePartition(std::size_t n,
                                     std::size_t max_points);

} // namespace aa::pde

#endif // AA_PDE_PARTITION_HH
