#include "aa/pde/convection.hh"

#include <cmath>

#include "aa/common/logging.hh"
#include "aa/common/rng.hh"

namespace aa::pde {

ConvectionDiffusionProblem
assembleConvectionDiffusion(std::size_t dim, std::size_t l,
                            double diffusion,
                            const std::array<double, 3> &velocity,
                            const SourceFn &f, const BoundaryFn &g)
{
    fatalIf(diffusion <= 0.0,
            "assembleConvectionDiffusion: diffusion must be positive");
    StructuredGrid grid(dim, l);
    const double h = grid.spacing();
    const double inv_h2 = diffusion / (h * h);
    const std::size_t n = grid.totalPoints();

    std::vector<la::Triplet> trip;
    trip.reserve(n * (2 * dim + 1));
    la::Vector b(n);

    for (std::size_t i = 0; i < n; ++i) {
        trip.push_back(
            {i, i, 2.0 * static_cast<double>(dim) * inv_h2});
        auto p = grid.position(i);
        b[i] = f(p[0], p[1], p[2]);
        auto c = grid.coords(i);
        for (std::size_t a = 0; a < dim; ++a) {
            const double conv = velocity[a] / (2.0 * h);
            // Central differences: the minus-side neighbor multiplies
            // -eps/h^2 - v_a/(2h), the plus side -eps/h^2 + v_a/(2h).
            const double c_minus = -inv_h2 - conv;
            const double c_plus = -inv_h2 + conv;
            auto at = [&](std::size_t coord) {
                auto cc = c;
                cc[a] = coord;
                return cc;
            };
            if (c[a] > 0) {
                auto cc = at(c[a] - 1);
                trip.push_back(
                    {i, grid.index(cc[0], cc[1], cc[2]), c_minus});
            } else {
                auto pos = p;
                pos[a] = 0.0;
                b[i] -= c_minus * g(pos[0], pos[1], pos[2]);
            }
            if (c[a] + 1 < l) {
                auto cc = at(c[a] + 1);
                trip.push_back(
                    {i, grid.index(cc[0], cc[1], cc[2]), c_plus});
            } else {
                auto pos = p;
                pos[a] = 1.0;
                b[i] -= c_plus * g(pos[0], pos[1], pos[2]);
            }
        }
    }

    ConvectionDiffusionProblem out{
        grid,
        la::CsrMatrix::fromTriplets(n, n, std::move(trip)),
        std::move(b), diffusion, velocity};
    return out;
}

ConvectionDiffusionProblem
convectionBenchmark(std::size_t dim, std::size_t l,
                    double cell_peclet, std::uint64_t seed)
{
    fatalIf(cell_peclet < 0.0,
            "convectionBenchmark: cell_peclet must be >= 0");
    StructuredGrid probe(dim, l);
    const double h = probe.spacing();
    const double eps = 1.0;
    const double vmag = cell_peclet * 2.0 * eps / h;

    // Unit direction from the seed; deterministic and stable across
    // platforms (Rng is a fixed-width mt19937-64 recipe).
    Rng rng(seed);
    std::array<double, 3> v{};
    double norm = 0.0;
    for (std::size_t a = 0; a < dim; ++a) {
        v[a] = rng.gaussian(0.0, 1.0);
        norm += v[a] * v[a];
    }
    norm = std::sqrt(norm);
    if (norm == 0.0) {
        v[0] = 1.0;
        norm = 1.0;
    }
    for (std::size_t a = 0; a < dim; ++a)
        v[a] *= vmag / norm;

    SourceFn one = [](double, double, double) { return 1.0; };
    return assembleConvectionDiffusion(dim, l, eps, v, one);
}

} // namespace aa::pde
