/**
 * @file
 * Manufactured solutions for convergence testing.
 *
 * u(x) = prod_a sin(pi x_a) vanishes on the unit-domain boundary and
 * satisfies -laplacian(u) = d * pi^2 * u, so the discrete solve can be
 * checked against the analytic field and must converge at O(h^2).
 */

#ifndef AA_PDE_MANUFACTURED_HH
#define AA_PDE_MANUFACTURED_HH

#include "aa/pde/poisson.hh"

namespace aa::pde {

/** The analytic field u(x) = prod_a sin(pi x_a) for dim axes. */
SourceFn sineProductField(std::size_t dim);

/** Its Poisson source f = dim * pi^2 * u. */
SourceFn sineProductSource(std::size_t dim);

/** A Poisson problem whose exact solution is sineProductField. */
PoissonProblem manufacturedProblem(std::size_t dim, std::size_t l);

/** The exact solution sampled on the problem's grid. */
la::Vector manufacturedExact(const PoissonProblem &problem);

} // namespace aa::pde

#endif // AA_PDE_MANUFACTURED_HH
