/**
 * @file
 * Structured grids over the unit line/square/cube.
 *
 * The paper's workloads discretize the unit domain with L increments
 * per side (N = L^d interior node variables) using second-order
 * central finite differences. This class owns the index arithmetic:
 * linearization, neighbor walks, and physical coordinates.
 */

#ifndef AA_PDE_GRID_HH
#define AA_PDE_GRID_HH

#include <array>
#include <cstddef>
#include <functional>

namespace aa::pde {

/**
 * Interior points of a uniform grid on the unit domain. With l points
 * per side the spacing is h = 1/(l+1); interior point i sits at
 * (i+1)*h, and the domain boundary carries Dirichlet data.
 */
class StructuredGrid
{
  public:
    /** dim in {1, 2, 3}; l >= 1 interior points per side. */
    StructuredGrid(std::size_t dim, std::size_t l);

    std::size_t dim() const { return d; }
    std::size_t pointsPerSide() const { return l_; }
    std::size_t totalPoints() const { return n; }
    double spacing() const { return h; }

    /** Linear index of (i[, j[, k]]); unused coords must be 0. */
    std::size_t index(std::size_t i, std::size_t j = 0,
                      std::size_t k = 0) const;

    /** Inverse of index(). */
    std::array<std::size_t, 3> coords(std::size_t idx) const;

    /** Physical position of an interior point. */
    std::array<double, 3> position(std::size_t idx) const;

    /**
     * Visit the 2*dim stencil neighbors of interior point idx.
     * Interior neighbors invoke on_interior with their linear index;
     * neighbors that fall on the domain boundary invoke on_boundary
     * with the boundary point's physical position.
     */
    void forEachNeighbor(
        std::size_t idx,
        const std::function<void(std::size_t)> &on_interior,
        const std::function<void(double, double, double)> &on_boundary)
        const;

  private:
    std::size_t d;
    std::size_t l_;
    std::size_t n;
    double h;
};

} // namespace aa::pde

#endif // AA_PDE_GRID_HH
