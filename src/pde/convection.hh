/**
 * @file
 * Convection-diffusion discretization: the repo's first *nonsymmetric*
 * workload family.
 *
 *     -eps * laplacian(u) + v . grad(u) = f   on the unit domain,
 *
 * Dirichlet data on the boundary, second-order central differences on
 * a StructuredGrid. The diffusion part reproduces the Poisson stencil
 * (symmetric); the first-order convection term adds +-v_a/(2h) to the
 * off-diagonal pairs, which breaks symmetry — A's eigenvalues move
 * off the real axis, so the accelerator's du/dt = b - A u gradient
 * flow spirals instead of descending and the pure analog(+refinement)
 * lane stalls. This is exactly the workload the analog-preconditioned
 * FGMRES lane exists for (DESIGN.md 5k).
 *
 * The discrete operator stays a (complex-)positive-stable M-matrix
 * while the cell Peclet number Pe_h = |v| h / (2 eps) is at or below
 * 1; convectionBenchmark() is parameterized directly by Pe_h so tests
 * can dial nonsymmetry from "almost SPD" to "central scheme at its
 * stability edge" deterministically.
 */

#ifndef AA_PDE_CONVECTION_HH
#define AA_PDE_CONVECTION_HH

#include <array>
#include <cstdint>

#include "aa/la/csr_matrix.hh"
#include "aa/la/vector.hh"
#include "aa/pde/grid.hh"
#include "aa/pde/poisson.hh"

namespace aa::pde {

/** A discretized convection-diffusion problem: A u = b, A nonsym. */
struct ConvectionDiffusionProblem {
    StructuredGrid grid;
    la::CsrMatrix a;
    la::Vector b;
    double diffusion = 1.0;             ///< eps
    std::array<double, 3> velocity{};   ///< v (constant field)
};

/**
 * Assemble -eps laplacian(u) + v . grad(u) = f with Dirichlet data g.
 * Diagonal 2 dim eps / h^2; the axis-a neighbor pair carries
 * -eps/h^2 -+ v_a/(2h) (minus side gets the +v term). Boundary
 * neighbors fold their coefficient times g into b.
 */
ConvectionDiffusionProblem
assembleConvectionDiffusion(std::size_t dim, std::size_t l,
                            double diffusion,
                            const std::array<double, 3> &velocity,
                            const SourceFn &f = zeroSource(),
                            const BoundaryFn &g = zeroBoundary());

/**
 * Deterministic benchmark instance: a unit-magnitude velocity
 * direction drawn from `seed`, diffusion fixed at 1, and the velocity
 * magnitude chosen so the cell Peclet number |v| h / (2 eps) equals
 * `cell_peclet`. Source f = 1 (nonzero rhs), zero boundary. The same
 * (dim, l, cell_peclet, seed) always builds the same matrix bit for
 * bit, and the sparsity pattern — hence sparsityHash — depends on
 * (dim, l) only.
 */
ConvectionDiffusionProblem convectionBenchmark(std::size_t dim,
                                               std::size_t l,
                                               double cell_peclet,
                                               std::uint64_t seed);

} // namespace aa::pde

#endif // AA_PDE_CONVECTION_HH
