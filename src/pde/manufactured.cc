#include "aa/pde/manufactured.hh"

#include <cmath>
#include <numbers>

namespace aa::pde {

SourceFn
sineProductField(std::size_t dim)
{
    return [dim](double x, double y, double z) {
        double u = std::sin(std::numbers::pi * x);
        if (dim >= 2)
            u *= std::sin(std::numbers::pi * y);
        if (dim >= 3)
            u *= std::sin(std::numbers::pi * z);
        return u;
    };
}

SourceFn
sineProductSource(std::size_t dim)
{
    SourceFn u = sineProductField(dim);
    double k = static_cast<double>(dim) * std::numbers::pi *
               std::numbers::pi;
    return [u, k](double x, double y, double z) {
        return k * u(x, y, z);
    };
}

PoissonProblem
manufacturedProblem(std::size_t dim, std::size_t l)
{
    return assemblePoisson(dim, l, sineProductSource(dim),
                           zeroBoundary());
}

la::Vector
manufacturedExact(const PoissonProblem &problem)
{
    return sampleOnGrid(problem.grid, sineProductField(
                                          problem.grid.dim()));
}

} // namespace aa::pde
