/**
 * @file
 * Poisson equation discretization: -laplacian(u) = f with Dirichlet
 * boundary data, discretized with the second-order central stencil on
 * a StructuredGrid. Produces A u = b with A symmetric positive
 * definite (the sign convention makes A = -laplacian_h, so the
 * accelerator's gradient flow du/dt = b - A u converges).
 *
 * Includes the paper's two named instances:
 *  - the 3x3 unit-square example of Section IV-B, and
 *  - the Figure 7 problem (3D, 16 points/side, u = 1 on the x = 0
 *    plane, zero elsewhere).
 */

#ifndef AA_PDE_POISSON_HH
#define AA_PDE_POISSON_HH

#include <functional>

#include "aa/la/csr_matrix.hh"
#include "aa/la/operator.hh"
#include "aa/la/vector.hh"
#include "aa/pde/grid.hh"

namespace aa::pde {

/** Dirichlet boundary data g(x, y, z) on the unit-domain boundary. */
using BoundaryFn = std::function<double(double, double, double)>;

/** Source term f(x, y, z). */
using SourceFn = std::function<double(double, double, double)>;

/** Zero boundary / zero source defaults. */
BoundaryFn zeroBoundary();
SourceFn zeroSource();

/** A discretized Poisson problem: A u = b on a structured grid. */
struct PoissonProblem {
    StructuredGrid grid;
    la::CsrMatrix a;
    la::Vector b;
};

/**
 * Assemble A and b for -laplacian(u) = f on the grid with Dirichlet
 * data g. A has 2*dim/h^2 on the diagonal and -1/h^2 for interior
 * neighbors; boundary neighbors contribute g/h^2 to b.
 */
PoissonProblem assemblePoisson(std::size_t dim, std::size_t l,
                               const SourceFn &f = zeroSource(),
                               const BoundaryFn &g = zeroBoundary());

/** The Figure 7 workload: 3D, l per side, u = 1 on the x = 0 plane. */
PoissonProblem figure7Problem(std::size_t l = 16);

/**
 * Matrix-free Poisson operator — the paper's "implemented using
 * stencils to capture the sparse structure of the matrix, without
 * having to allocate memory for the full matrix".
 */
class PoissonStencil : public la::LinearOperator
{
  public:
    PoissonStencil(std::size_t dim, std::size_t l);

    std::size_t size() const override { return grid.totalPoints(); }
    void apply(const la::Vector &x, la::Vector &y) const override;
    la::Vector diagonal() const override;
    std::size_t applyFlops() const override;

    const StructuredGrid &gridRef() const { return grid; }

  private:
    StructuredGrid grid;
    double inv_h2;
};

/**
 * Evaluate a smooth function on every interior grid point (used for
 * manufactured-solution convergence tests and for rendering fields).
 */
la::Vector sampleOnGrid(const StructuredGrid &grid, const SourceFn &f);

} // namespace aa::pde

#endif // AA_PDE_POISSON_HH
