/**
 * @file
 * Time-dependent heat equation du/dt = laplacian(u) + f as an
 * OdeSystem — the paper's embedded-systems use case where the analog
 * accelerator is the *explicit* time stepper and the time-varying
 * waveform itself is the useful output (Section II, Figure 4's
 * "explicit time stepping (e.g., RK4, analog)" path).
 */

#ifndef AA_PDE_HEAT_HH
#define AA_PDE_HEAT_HH

#include "aa/ode/system.hh"
#include "aa/pde/poisson.hh"

namespace aa::pde {

/**
 * Semi-discretized parabolic PDE: du/dt = -A u + b where A is the
 * (positive definite) discrete -laplacian and b carries source and
 * boundary data. Reuses the Poisson assembly.
 */
class HeatEquationOde : public ode::OdeSystem
{
  public:
    HeatEquationOde(std::size_t dim, std::size_t l,
                    const SourceFn &f = zeroSource(),
                    const BoundaryFn &g = zeroBoundary());

    std::size_t size() const override;
    void rhs(double t, const la::Vector &y,
             la::Vector &dydt) const override;

    const StructuredGrid &grid() const { return stencil.gridRef(); }
    /** Steady state solves A u = b: the elliptic limit. */
    const la::Vector &forcing() const { return b; }

  private:
    PoissonStencil stencil;
    la::Vector b;
};

} // namespace aa::pde

#endif // AA_PDE_HEAT_HH
