#include "aa/pde/heat.hh"

namespace aa::pde {

HeatEquationOde::HeatEquationOde(std::size_t dim, std::size_t l,
                                 const SourceFn &f, const BoundaryFn &g)
    : stencil(dim, l)
{
    // The assembly's b already folds f and the boundary data together.
    b = assemblePoisson(dim, l, f, g).b;
}

std::size_t
HeatEquationOde::size() const
{
    return stencil.size();
}

void
HeatEquationOde::rhs(double, const la::Vector &y,
                     la::Vector &dydt) const
{
    stencil.apply(y, dydt);
    for (std::size_t i = 0; i < dydt.size(); ++i)
        dydt[i] = b[i] - dydt[i];
}

} // namespace aa::pde
