#include "aa/pde/partition.hh"

#include "aa/common/logging.hh"

namespace aa::pde {

std::vector<IndexSet>
rangePartition(std::size_t n, std::size_t max_points)
{
    fatalIf(max_points == 0, "rangePartition: max_points must be > 0");
    std::vector<IndexSet> blocks;
    for (std::size_t start = 0; start < n; start += max_points) {
        std::size_t stop = std::min(n, start + max_points);
        IndexSet set;
        set.reserve(stop - start);
        for (std::size_t i = start; i < stop; ++i)
            set.push_back(i);
        blocks.push_back(std::move(set));
    }
    return blocks;
}

std::vector<IndexSet>
stripPartition(const StructuredGrid &grid, std::size_t max_points)
{
    fatalIf(max_points == 0, "stripPartition: max_points must be > 0");
    std::size_t l = grid.pointsPerSide();
    std::size_t slice = grid.totalPoints() / l; // points per top slice

    if (slice > max_points) {
        // Even one slice does not fit; fall back to flat ranges
        // (the linearized order keeps lower-dimension locality).
        return rangePartition(grid.totalPoints(), max_points);
    }

    std::size_t slices_per_block = std::max<std::size_t>(
        1, max_points / slice);
    std::vector<IndexSet> blocks;
    for (std::size_t s0 = 0; s0 < l; s0 += slices_per_block) {
        std::size_t s1 = std::min(l, s0 + slices_per_block);
        IndexSet set;
        set.reserve((s1 - s0) * slice);
        for (std::size_t idx = s0 * slice; idx < s1 * slice; ++idx)
            set.push_back(idx);
        blocks.push_back(std::move(set));
    }
    return blocks;
}

} // namespace aa::pde
