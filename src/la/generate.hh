/**
 * @file
 * Deterministic dense test-matrix generators with controlled
 * conditioning.
 *
 * The refinement-vs-preconditioning study (EXPERIMENTS.md) needs SPD
 * systems whose condition number is an *input*, not an accident of
 * discretization: spdLogSpectrum builds A = Q D Q^T with D's
 * eigenvalues log-spaced across [1/kappa, 1] and Q a seeded product
 * of Householder reflections, so kappa(A) = kappa exactly (up to
 * round-off) and the same (n, kappa, seed) reproduces the same matrix
 * bit for bit on a given platform. Entries are generically all
 * nonzero, so sparsityHash depends only on n — every instance of a
 * size shares one CompiledStructure in the program cache.
 */

#ifndef AA_LA_GENERATE_HH
#define AA_LA_GENERATE_HH

#include <cstdint>

#include "aa/la/dense_matrix.hh"
#include "aa/la/vector.hh"

namespace aa::la {

/**
 * Dense SPD matrix with eigenvalues lambda_i = kappa^{-i/(n-1)},
 * i = 0..n-1 (log-spaced in [1/kappa, 1], so ||A||_2 = 1 and
 * cond_2(A) = kappa), rotated by a seeded orthogonal similarity.
 * kappa >= 1; n >= 1 (n == 1 gives the 1x1 identity).
 */
DenseMatrix spdLogSpectrum(std::size_t n, double kappa,
                           std::uint64_t seed);

/** Seeded right-hand side: unit-2-norm vector of gaussian draws. */
Vector seededRhs(std::size_t n, std::uint64_t seed);

} // namespace aa::la

#endif // AA_LA_GENERATE_HH
