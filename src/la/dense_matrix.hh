/**
 * @file
 * Row-major dense matrix. Used for small systems mapped whole onto the
 * accelerator, for the direct (Cholesky/LU) validation solvers, and as
 * the exchange format of the compiler's scaling analysis.
 */

#ifndef AA_LA_DENSE_MATRIX_HH
#define AA_LA_DENSE_MATRIX_HH

#include <cstddef>
#include <vector>

#include "aa/la/vector.hh"

namespace aa::la {

/** Row-major dense matrix of doubles. */
class DenseMatrix
{
  public:
    DenseMatrix() = default;
    DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0)
        : r(rows), c(cols), a(rows * cols, fill)
    {}

    /** Build from nested initializer rows; all rows must be equal. */
    static DenseMatrix
    fromRows(std::initializer_list<std::initializer_list<double>> rows);

    /** n-by-n identity. */
    static DenseMatrix identity(std::size_t n);

    std::size_t rows() const { return r; }
    std::size_t cols() const { return c; }

    double operator()(std::size_t i, std::size_t j) const
    {
        return a[i * c + j];
    }
    double &operator()(std::size_t i, std::size_t j)
    {
        return a[i * c + j];
    }

    /** y = A x. */
    Vector apply(const Vector &x) const;
    /** y = A^T x. */
    Vector applyTranspose(const Vector &x) const;

    DenseMatrix transpose() const;
    DenseMatrix operator*(const DenseMatrix &rhs) const;
    DenseMatrix operator+(const DenseMatrix &rhs) const;
    DenseMatrix operator-(const DenseMatrix &rhs) const;
    DenseMatrix &operator*=(double s);

    /** Largest |a_ij|; the compiler's gain-range analysis uses this. */
    double maxAbs() const;

    /** True when the matrix equals its transpose within tol. */
    bool isSymmetric(double tol = 1e-12) const;

    /** Frobenius norm of (this - rhs). */
    double frobeniusDiff(const DenseMatrix &rhs) const;

  private:
    std::size_t r = 0;
    std::size_t c = 0;
    std::vector<double> a;
};

} // namespace aa::la

#endif // AA_LA_DENSE_MATRIX_HH
