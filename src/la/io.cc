#include "aa/la/io.hh"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "aa/common/logging.hh"

namespace aa::la {

namespace {

/** Read the banner + skip comments; returns the banner tokens. */
std::vector<std::string>
readBanner(std::istream &in, std::string &first_data_line)
{
    std::string line;
    fatalIf(!std::getline(in, line),
            "matrix market: empty stream");
    fatalIf(line.rfind("%%MatrixMarket", 0) != 0,
            "matrix market: missing %%MatrixMarket banner");
    std::istringstream banner(line);
    std::vector<std::string> tokens;
    std::string tok;
    while (banner >> tok) {
        std::transform(tok.begin(), tok.end(), tok.begin(),
                       [](unsigned char c) {
                           return static_cast<char>(
                               std::tolower(c));
                       });
        tokens.push_back(tok);
    }
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] != '%') {
            first_data_line = line;
            return tokens;
        }
    }
    fatal("matrix market: no size line");
}

} // namespace

CsrMatrix
readMatrixMarket(std::istream &in)
{
    std::string size_line;
    auto banner = readBanner(in, size_line);
    fatalIf(banner.size() < 5, "matrix market: short banner");
    fatalIf(banner[1] != "matrix" || banner[2] != "coordinate",
            "matrix market: expected 'matrix coordinate'");
    fatalIf(banner[3] != "real" && banner[3] != "integer",
            "matrix market: only real/integer entries supported");
    bool symmetric = banner[4] == "symmetric";
    fatalIf(!symmetric && banner[4] != "general",
            "matrix market: only general/symmetric supported");

    std::istringstream size(size_line);
    std::size_t rows = 0, cols = 0, entries = 0;
    fatalIf(!(size >> rows >> cols >> entries),
            "matrix market: bad size line '", size_line, "'");

    std::vector<Triplet> trip;
    trip.reserve(symmetric ? 2 * entries : entries);
    for (std::size_t k = 0; k < entries; ++k) {
        std::size_t i = 0, j = 0;
        double v = 0.0;
        fatalIf(!(in >> i >> j >> v),
                "matrix market: truncated at entry ", k + 1, " of ",
                entries);
        fatalIf(i < 1 || j < 1 || i > rows || j > cols,
                "matrix market: entry (", i, ",", j,
                ") outside ", rows, "x", cols);
        trip.push_back({i - 1, j - 1, v});
        if (symmetric && i != j)
            trip.push_back({j - 1, i - 1, v});
    }
    return CsrMatrix::fromTriplets(rows, cols, std::move(trip));
}

CsrMatrix
readMatrixMarketFile(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "matrix market: cannot open ", path);
    return readMatrixMarket(in);
}

Vector
readVectorMarket(std::istream &in)
{
    std::string size_line;
    auto banner = readBanner(in, size_line);
    fatalIf(banner.size() < 4, "matrix market: short banner");
    fatalIf(banner[1] != "matrix" || banner[2] != "array",
            "vector market: expected 'matrix array'");

    std::istringstream size(size_line);
    std::size_t rows = 0, cols = 0;
    fatalIf(!(size >> rows >> cols),
            "vector market: bad size line");
    fatalIf(cols != 1, "vector market: expected a single column, got ",
            cols);

    Vector v(rows);
    for (std::size_t k = 0; k < rows; ++k)
        fatalIf(!(in >> v[k]), "vector market: truncated at row ",
                k + 1);
    return v;
}

Vector
readVectorMarketFile(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "vector market: cannot open ", path);
    return readVectorMarket(in);
}

void
writeMatrixMarket(const CsrMatrix &m, std::ostream &out,
                  bool symmetric)
{
    std::size_t entries = m.nnz();
    if (symmetric) {
        fatalIf(m.rows() != m.cols(),
                "matrix market: symmetric output needs a square "
                "matrix, got ",
                m.rows(), "x", m.cols());
        entries = 0;
        for (std::size_t i = 0; i < m.rows(); ++i) {
            auto cols = m.rowCols(i);
            auto vals = m.rowVals(i);
            for (std::size_t k = 0; k < cols.size(); ++k) {
                fatalIf(vals[k] != m.at(cols[k], i),
                        "matrix market: entry (", i + 1, ",",
                        cols[k] + 1,
                        ") breaks symmetry; write as general");
                if (cols[k] <= i)
                    ++entries;
            }
        }
    }
    out << "%%MatrixMarket matrix coordinate real "
        << (symmetric ? "symmetric" : "general") << "\n";
    out << m.rows() << " " << m.cols() << " " << entries << "\n";
    out << std::setprecision(17);
    for (std::size_t i = 0; i < m.rows(); ++i) {
        auto cols = m.rowCols(i);
        auto vals = m.rowVals(i);
        for (std::size_t k = 0; k < cols.size(); ++k) {
            if (symmetric && cols[k] > i)
                continue; // upper triangle is implied
            out << i + 1 << " " << cols[k] + 1 << " " << vals[k]
                << "\n";
        }
    }
    out.flush();
}

void
writeVectorMarket(const Vector &v, std::ostream &out)
{
    out << "%%MatrixMarket matrix array real general\n";
    out << v.size() << " 1\n";
    out << std::setprecision(17);
    for (std::size_t i = 0; i < v.size(); ++i)
        out << v[i] << "\n";
    out.flush();
}

} // namespace aa::la
