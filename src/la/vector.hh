/**
 * @file
 * Dense real vector and the BLAS-1 style kernels the solvers use.
 *
 * A thin value type over contiguous doubles. Iterative solvers in
 * aa_solver and the circuit simulator state in aa_circuit are all
 * expressed against these kernels.
 */

#ifndef AA_LA_VECTOR_HH
#define AA_LA_VECTOR_HH

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace aa::la {

/** Dense vector of doubles with arithmetic helpers. */
class Vector
{
  public:
    Vector() = default;
    explicit Vector(std::size_t n, double fill = 0.0) : v(n, fill) {}
    Vector(std::initializer_list<double> init) : v(init) {}
    explicit Vector(std::vector<double> data) : v(std::move(data)) {}

    std::size_t size() const { return v.size(); }
    bool empty() const { return v.empty(); }
    void resize(std::size_t n, double fill = 0.0) { v.resize(n, fill); }
    void assign(std::size_t n, double fill) { v.assign(n, fill); }

    double operator[](std::size_t i) const { return v[i]; }
    double &operator[](std::size_t i) { return v[i]; }
    /** Bounds-checked access; panics on out-of-range (simulator bug). */
    double at(std::size_t i) const;
    double &at(std::size_t i);

    double *data() { return v.data(); }
    const double *data() const { return v.data(); }
    auto begin() { return v.begin(); }
    auto end() { return v.end(); }
    auto begin() const { return v.begin(); }
    auto end() const { return v.end(); }

    const std::vector<double> &raw() const { return v; }

    Vector &operator+=(const Vector &rhs);
    Vector &operator-=(const Vector &rhs);
    Vector &operator*=(double s);

    bool operator==(const Vector &rhs) const { return v == rhs.v; }

  private:
    std::vector<double> v;
};

Vector operator+(Vector lhs, const Vector &rhs);
Vector operator-(Vector lhs, const Vector &rhs);
Vector operator*(double s, Vector rhs);

/** Inner product <x, y>; sizes must match. */
double dot(const Vector &x, const Vector &y);

/** Euclidean norm. */
double norm2(const Vector &x);

/** Max-abs norm. */
double normInf(const Vector &x);

/** L1 norm. */
double norm1(const Vector &x);

/** y <- a*x + y. */
void axpy(double a, const Vector &x, Vector &y);

/** y <- x + b*y (BLAS xpby, used by CG's direction update). */
void xpby(const Vector &x, double b, Vector &y);

/** Elementwise scale: y <- a*x. */
void scale(double a, const Vector &x, Vector &y);

/** Largest absolute element difference between two vectors. */
double maxAbsDiff(const Vector &x, const Vector &y);

} // namespace aa::la

#endif // AA_LA_VECTOR_HH
