/**
 * @file
 * Matrix Market I/O — the interchange format the scientific-computing
 * ecosystem the paper targets actually uses. Supports the coordinate
 * format with `real` entries and `general` or `symmetric` storage
 * (symmetric files are expanded on read), plus dense vector ("array")
 * files for right-hand sides.
 */

#ifndef AA_LA_IO_HH
#define AA_LA_IO_HH

#include <iosfwd>
#include <string>

#include "aa/la/csr_matrix.hh"
#include "aa/la/vector.hh"

namespace aa::la {

/** Parse a Matrix Market coordinate stream into CSR.
 *  fatal()s on malformed input (user error). */
CsrMatrix readMatrixMarket(std::istream &in);

/** Parse a Matrix Market file by path. */
CsrMatrix readMatrixMarketFile(const std::string &path);

/** Parse a Matrix Market dense array stream as a vector. */
Vector readVectorMarket(std::istream &in);
Vector readVectorMarketFile(const std::string &path);

/**
 * Write a CSR matrix in Matrix Market coordinate format. With
 * `symmetric` the file stores only the lower triangle under the
 * `symmetric` banner — half the size for the SPD systems MNA
 * assembly and the stencil family produce, and the storage SuiteSparse
 * circuit sets ship in. fatal()s if `symmetric` is requested for a
 * matrix that is not numerically symmetric.
 */
void writeMatrixMarket(const CsrMatrix &m, std::ostream &out,
                       bool symmetric = false);

/** Write a vector as a Matrix Market dense array. */
void writeVectorMarket(const Vector &v, std::ostream &out);

} // namespace aa::la

#endif // AA_LA_IO_HH
