#include "aa/la/operator.hh"

#include "aa/common/logging.hh"

namespace aa::la {

CsrOperator::CsrOperator(const CsrMatrix &m) : mat(m)
{
    fatalIf(m.rows() != m.cols(),
            "CsrOperator: operator must be square, got ", m.rows(), "x",
            m.cols());
}

void
CsrOperator::apply(const Vector &x, Vector &y) const
{
    y.assign(mat.rows(), 0.0);
    mat.applyAdd(1.0, x, y);
}

DenseOperator::DenseOperator(const DenseMatrix &m) : mat(m)
{
    fatalIf(m.rows() != m.cols(),
            "DenseOperator: operator must be square, got ", m.rows(),
            "x", m.cols());
}

void
DenseOperator::apply(const Vector &x, Vector &y) const
{
    y = mat.apply(x);
}

Vector
DenseOperator::diagonal() const
{
    Vector d(mat.rows());
    for (std::size_t i = 0; i < mat.rows(); ++i)
        d[i] = mat(i, i);
    return d;
}

} // namespace aa::la
