#include "aa/la/dense_matrix.hh"

#include <cmath>

#include "aa/common/logging.hh"

namespace aa::la {

DenseMatrix
DenseMatrix::fromRows(
    std::initializer_list<std::initializer_list<double>> rows)
{
    DenseMatrix m(rows.size(), rows.size() ? rows.begin()->size() : 0);
    std::size_t i = 0;
    for (const auto &row : rows) {
        panicIf(row.size() != m.cols(), "fromRows: ragged rows");
        std::size_t j = 0;
        for (double x : row)
            m(i, j++) = x;
        ++i;
    }
    return m;
}

DenseMatrix
DenseMatrix::identity(std::size_t n)
{
    DenseMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

Vector
DenseMatrix::apply(const Vector &x) const
{
    panicIf(x.size() != c, "DenseMatrix::apply: size mismatch");
    Vector y(r);
    for (std::size_t i = 0; i < r; ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < c; ++j)
            acc += a[i * c + j] * x[j];
        y[i] = acc;
    }
    return y;
}

Vector
DenseMatrix::applyTranspose(const Vector &x) const
{
    panicIf(x.size() != r, "applyTranspose: size mismatch");
    Vector y(c);
    for (std::size_t i = 0; i < r; ++i)
        for (std::size_t j = 0; j < c; ++j)
            y[j] += a[i * c + j] * x[i];
    return y;
}

DenseMatrix
DenseMatrix::transpose() const
{
    DenseMatrix t(c, r);
    for (std::size_t i = 0; i < r; ++i)
        for (std::size_t j = 0; j < c; ++j)
            t(j, i) = (*this)(i, j);
    return t;
}

DenseMatrix
DenseMatrix::operator*(const DenseMatrix &rhs) const
{
    panicIf(c != rhs.r, "DenseMatrix *: inner dims mismatch");
    DenseMatrix p(r, rhs.c);
    for (std::size_t i = 0; i < r; ++i)
        for (std::size_t k = 0; k < c; ++k) {
            double aik = a[i * c + k];
            if (aik == 0.0)
                continue;
            for (std::size_t j = 0; j < rhs.c; ++j)
                p(i, j) += aik * rhs(k, j);
        }
    return p;
}

DenseMatrix
DenseMatrix::operator+(const DenseMatrix &rhs) const
{
    panicIf(r != rhs.r || c != rhs.c, "DenseMatrix +: dims mismatch");
    DenseMatrix s = *this;
    for (std::size_t i = 0; i < a.size(); ++i)
        s.a[i] += rhs.a[i];
    return s;
}

DenseMatrix
DenseMatrix::operator-(const DenseMatrix &rhs) const
{
    panicIf(r != rhs.r || c != rhs.c, "DenseMatrix -: dims mismatch");
    DenseMatrix s = *this;
    for (std::size_t i = 0; i < a.size(); ++i)
        s.a[i] -= rhs.a[i];
    return s;
}

DenseMatrix &
DenseMatrix::operator*=(double s)
{
    for (auto &x : a)
        x *= s;
    return *this;
}

double
DenseMatrix::maxAbs() const
{
    double m = 0.0;
    for (double x : a)
        m = std::max(m, std::fabs(x));
    return m;
}

bool
DenseMatrix::isSymmetric(double tol) const
{
    if (r != c)
        return false;
    for (std::size_t i = 0; i < r; ++i)
        for (std::size_t j = i + 1; j < c; ++j)
            if (std::fabs((*this)(i, j) - (*this)(j, i)) > tol)
                return false;
    return true;
}

double
DenseMatrix::frobeniusDiff(const DenseMatrix &rhs) const
{
    panicIf(r != rhs.r || c != rhs.c, "frobeniusDiff: dims mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        double d = a[i] - rhs.a[i];
        acc += d * d;
    }
    return std::sqrt(acc);
}

} // namespace aa::la
