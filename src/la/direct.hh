/**
 * @file
 * Dense direct solvers: Cholesky and partially pivoted LU.
 *
 * The paper notes analog computers are unsuitable for direct methods
 * (§IV-A); we implement them digitally as ground truth for tests and
 * for the eigenvalue estimation (inverse power iteration) the analog
 * convergence-time model needs.
 */

#ifndef AA_LA_DIRECT_HH
#define AA_LA_DIRECT_HH

#include <optional>

#include "aa/la/dense_matrix.hh"
#include "aa/la/vector.hh"

namespace aa::la {

/**
 * Cholesky factorization A = L L^T of an SPD matrix.
 * Construction fails (returns nullopt) when A is not positive
 * definite — which is also how tests check positive definiteness.
 */
class Cholesky
{
  public:
    /** Factor; nullopt when a non-positive pivot is met. */
    static std::optional<Cholesky> factor(const DenseMatrix &a);

    /** Solve A x = b via forward/back substitution. */
    Vector solve(const Vector &b) const;

    /** log(det A) = 2 * sum log l_ii (A is SPD so det > 0). */
    double logDet() const;

    const DenseMatrix &lower() const { return l; }

  private:
    explicit Cholesky(DenseMatrix lower) : l(std::move(lower)) {}
    DenseMatrix l;
};

/** LU factorization with partial pivoting, P A = L U. */
class Lu
{
  public:
    /** Factor; nullopt when the matrix is numerically singular. */
    static std::optional<Lu> factor(const DenseMatrix &a);

    Vector solve(const Vector &b) const;
    double determinant() const;

  private:
    Lu(DenseMatrix lu_packed, std::vector<std::size_t> pivots,
       int pivot_sign)
        : lu(std::move(lu_packed)), piv(std::move(pivots)),
          sign(pivot_sign)
    {}

    DenseMatrix lu; ///< L (unit diag, below) and U (on/above) packed
    std::vector<std::size_t> piv;
    int sign;
};

/** One-shot dense solve via LU; fatal() on singular input. */
Vector solveDense(const DenseMatrix &a, const Vector &b);

/** Dense inverse via LU column solves; fatal() on singular input. */
DenseMatrix inverse(const DenseMatrix &a);

} // namespace aa::la

#endif // AA_LA_DIRECT_HH
