#include "aa/la/direct.hh"

#include <cmath>

#include "aa/common/logging.hh"

namespace aa::la {

std::optional<Cholesky>
Cholesky::factor(const DenseMatrix &a)
{
    panicIf(a.rows() != a.cols(), "Cholesky: matrix not square");
    std::size_t n = a.rows();
    DenseMatrix l(n, n);
    for (std::size_t j = 0; j < n; ++j) {
        double diag = a(j, j);
        for (std::size_t k = 0; k < j; ++k)
            diag -= l(j, k) * l(j, k);
        if (diag <= 0.0 || !std::isfinite(diag))
            return std::nullopt;
        l(j, j) = std::sqrt(diag);
        for (std::size_t i = j + 1; i < n; ++i) {
            double acc = a(i, j);
            for (std::size_t k = 0; k < j; ++k)
                acc -= l(i, k) * l(j, k);
            l(i, j) = acc / l(j, j);
        }
    }
    return Cholesky(std::move(l));
}

Vector
Cholesky::solve(const Vector &b) const
{
    std::size_t n = l.rows();
    panicIf(b.size() != n, "Cholesky::solve: size mismatch");

    // Forward substitution L y = b.
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i) {
        double acc = b[i];
        for (std::size_t k = 0; k < i; ++k)
            acc -= l(i, k) * y[k];
        y[i] = acc / l(i, i);
    }
    // Back substitution L^T x = y.
    Vector x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double acc = y[ii];
        for (std::size_t k = ii + 1; k < n; ++k)
            acc -= l(k, ii) * x[k];
        x[ii] = acc / l(ii, ii);
    }
    return x;
}

double
Cholesky::logDet() const
{
    double acc = 0.0;
    for (std::size_t i = 0; i < l.rows(); ++i)
        acc += std::log(l(i, i));
    return 2.0 * acc;
}

std::optional<Lu>
Lu::factor(const DenseMatrix &a)
{
    panicIf(a.rows() != a.cols(), "Lu: matrix not square");
    std::size_t n = a.rows();
    DenseMatrix lu = a;
    std::vector<std::size_t> piv(n);
    int sign = 1;

    for (std::size_t k = 0; k < n; ++k) {
        // Partial pivot: largest magnitude in column k at/below k.
        std::size_t p = k;
        double best = std::fabs(lu(k, k));
        for (std::size_t i = k + 1; i < n; ++i) {
            if (std::fabs(lu(i, k)) > best) {
                best = std::fabs(lu(i, k));
                p = i;
            }
        }
        if (best == 0.0 || !std::isfinite(best))
            return std::nullopt;
        piv[k] = p;
        if (p != k) {
            sign = -sign;
            for (std::size_t j = 0; j < n; ++j)
                std::swap(lu(k, j), lu(p, j));
        }
        for (std::size_t i = k + 1; i < n; ++i) {
            lu(i, k) /= lu(k, k);
            double lik = lu(i, k);
            for (std::size_t j = k + 1; j < n; ++j)
                lu(i, j) -= lik * lu(k, j);
        }
    }
    return Lu(std::move(lu), std::move(piv), sign);
}

Vector
Lu::solve(const Vector &b) const
{
    std::size_t n = lu.rows();
    panicIf(b.size() != n, "Lu::solve: size mismatch");

    Vector x = b;
    // The factorization swapped whole rows (L part included), so the
    // full permutation applies before substitution begins.
    for (std::size_t k = 0; k < n; ++k)
        std::swap(x[k], x[piv[k]]);
    // Forward substitution (unit lower).
    for (std::size_t k = 0; k < n; ++k)
        for (std::size_t i = k + 1; i < n; ++i)
            x[i] -= lu(i, k) * x[k];
    // Back substitution (upper).
    for (std::size_t ii = n; ii-- > 0;) {
        for (std::size_t j = ii + 1; j < n; ++j)
            x[ii] -= lu(ii, j) * x[j];
        x[ii] /= lu(ii, ii);
    }
    return x;
}

double
Lu::determinant() const
{
    double det = sign;
    for (std::size_t i = 0; i < lu.rows(); ++i)
        det *= lu(i, i);
    return det;
}

Vector
solveDense(const DenseMatrix &a, const Vector &b)
{
    auto lu = Lu::factor(a);
    fatalIf(!lu, "solveDense: singular matrix");
    return lu->solve(b);
}

DenseMatrix
inverse(const DenseMatrix &a)
{
    auto lu = Lu::factor(a);
    fatalIf(!lu, "inverse: singular matrix");
    std::size_t n = a.rows();
    DenseMatrix inv(n, n);
    for (std::size_t j = 0; j < n; ++j) {
        Vector e(n);
        e[j] = 1.0;
        Vector col = lu->solve(e);
        for (std::size_t i = 0; i < n; ++i)
            inv(i, j) = col[i];
    }
    return inv;
}

} // namespace aa::la
