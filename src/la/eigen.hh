/**
 * @file
 * Eigenvalue extremes of symmetric operators.
 *
 * The analog solve-time model depends on lambda_min of the (scaled)
 * coefficient matrix: the continuous-time gradient flow converges as
 * exp(-lambda_min * t). Condition number kappa = lmax/lmin likewise
 * drives the digital CG iteration-count model (~sqrt(kappa)).
 */

#ifndef AA_LA_EIGEN_HH
#define AA_LA_EIGEN_HH

#include <cstdint>

#include "aa/la/operator.hh"
#include "aa/la/vector.hh"

namespace aa::la {

/** Options for the power-iteration routines. */
struct EigenOptions {
    std::size_t max_iters = 2000;
    double tol = 1e-10;   ///< relative eigenvalue change to stop
    std::uint64_t seed = 12345; ///< start-vector seed
};

/** Result of an extremal-eigenvalue estimate. */
struct EigenEstimate {
    double value = 0.0;
    std::size_t iterations = 0;
    bool converged = false;
};

/** Largest eigenvalue of a symmetric operator via power iteration. */
EigenEstimate largestEigenvalue(const LinearOperator &op,
                                const EigenOptions &opts = {});

/**
 * Smallest eigenvalue of a symmetric positive definite dense matrix
 * via inverse power iteration on a Cholesky factorization.
 */
EigenEstimate smallestEigenvalueSpd(const DenseMatrix &a,
                                    const EigenOptions &opts = {});

/** kappa = lmax / lmin of an SPD dense matrix. */
double conditionNumberSpd(const DenseMatrix &a,
                          const EigenOptions &opts = {});

} // namespace aa::la

#endif // AA_LA_EIGEN_HH
