#include "aa/la/csr_matrix.hh"

#include <algorithm>
#include <cmath>

#include "aa/common/logging.hh"

namespace aa::la {

CsrMatrix
CsrMatrix::fromTriplets(std::size_t rows, std::size_t cols,
                        std::vector<Triplet> triplets)
{
    for (const auto &t : triplets) {
        fatalIf(t.row >= rows || t.col >= cols,
                "CsrMatrix::fromTriplets: entry (", t.row, ",", t.col,
                ") outside ", rows, "x", cols);
    }
    std::sort(triplets.begin(), triplets.end(),
              [](const Triplet &a, const Triplet &b) {
                  return a.row != b.row ? a.row < b.row : a.col < b.col;
              });

    CsrMatrix m;
    m.nrows = rows;
    m.ncols = cols;
    m.rowptr.assign(rows + 1, 0);
    m.colidx.reserve(triplets.size());
    m.vals.reserve(triplets.size());

    std::size_t i = 0;
    for (std::size_t r = 0; r < rows; ++r) {
        m.rowptr[r] = m.vals.size();
        while (i < triplets.size() && triplets[i].row == r) {
            std::size_t col = triplets[i].col;
            double acc = 0.0;
            while (i < triplets.size() && triplets[i].row == r &&
                   triplets[i].col == col) {
                acc += triplets[i].value;
                ++i;
            }
            m.colidx.push_back(col);
            m.vals.push_back(acc);
        }
    }
    m.rowptr[rows] = m.vals.size();
    return m;
}

CsrMatrix
CsrMatrix::fromDense(const DenseMatrix &dense, double drop_tol)
{
    std::vector<Triplet> t;
    for (std::size_t i = 0; i < dense.rows(); ++i)
        for (std::size_t j = 0; j < dense.cols(); ++j)
            if (std::fabs(dense(i, j)) > drop_tol)
                t.push_back({i, j, dense(i, j)});
    return fromTriplets(dense.rows(), dense.cols(), std::move(t));
}

CsrMatrix
CsrMatrix::identity(std::size_t n)
{
    std::vector<Triplet> t;
    t.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        t.push_back({i, i, 1.0});
    return fromTriplets(n, n, std::move(t));
}

Vector
CsrMatrix::apply(const Vector &x) const
{
    panicIf(x.size() != ncols, "CsrMatrix::apply: size mismatch");
    Vector y(nrows);
    for (std::size_t i = 0; i < nrows; ++i) {
        double acc = 0.0;
        for (std::size_t k = rowptr[i]; k < rowptr[i + 1]; ++k)
            acc += vals[k] * x[colidx[k]];
        y[i] = acc;
    }
    return y;
}

void
CsrMatrix::applyAdd(double alpha, const Vector &x, Vector &y) const
{
    panicIf(x.size() != ncols || y.size() != nrows,
            "CsrMatrix::applyAdd: size mismatch");
    for (std::size_t i = 0; i < nrows; ++i) {
        double acc = 0.0;
        for (std::size_t k = rowptr[i]; k < rowptr[i + 1]; ++k)
            acc += vals[k] * x[colidx[k]];
        y[i] += alpha * acc;
    }
}

std::span<const std::size_t>
CsrMatrix::rowCols(std::size_t i) const
{
    panicIf(i >= nrows, "rowCols: row out of range");
    return {colidx.data() + rowptr[i], rowptr[i + 1] - rowptr[i]};
}

std::span<const double>
CsrMatrix::rowVals(std::size_t i) const
{
    panicIf(i >= nrows, "rowVals: row out of range");
    return {vals.data() + rowptr[i], rowptr[i + 1] - rowptr[i]};
}

double
CsrMatrix::at(std::size_t i, std::size_t j) const
{
    panicIf(i >= nrows || j >= ncols, "CsrMatrix::at out of range");
    for (std::size_t k = rowptr[i]; k < rowptr[i + 1]; ++k)
        if (colidx[k] == j)
            return vals[k];
    return 0.0;
}

Vector
CsrMatrix::diagonal() const
{
    Vector d(std::min(nrows, ncols));
    for (std::size_t i = 0; i < d.size(); ++i)
        d[i] = at(i, i);
    return d;
}

double
CsrMatrix::maxAbs() const
{
    double m = 0.0;
    for (double v : vals)
        m = std::max(m, std::fabs(v));
    return m;
}

void
CsrMatrix::scaleValues(double s)
{
    for (auto &v : vals)
        v *= s;
}

bool
CsrMatrix::isSymmetric(double tol) const
{
    if (nrows != ncols)
        return false;
    for (std::size_t i = 0; i < nrows; ++i)
        for (std::size_t k = rowptr[i]; k < rowptr[i + 1]; ++k) {
            std::size_t j = colidx[k];
            if (std::fabs(vals[k] - at(j, i)) > tol)
                return false;
        }
    return true;
}

bool
CsrMatrix::isDiagonallyDominant() const
{
    if (nrows != ncols)
        return false;
    for (std::size_t i = 0; i < nrows; ++i) {
        double diag = 0.0;
        double off = 0.0;
        for (std::size_t k = rowptr[i]; k < rowptr[i + 1]; ++k) {
            if (colidx[k] == i)
                diag = std::fabs(vals[k]);
            else
                off += std::fabs(vals[k]);
        }
        if (diag < off)
            return false;
    }
    return true;
}

DenseMatrix
CsrMatrix::toDense() const
{
    DenseMatrix d(nrows, ncols);
    for (std::size_t i = 0; i < nrows; ++i)
        for (std::size_t k = rowptr[i]; k < rowptr[i + 1]; ++k)
            d(i, colidx[k]) += vals[k];
    return d;
}

CsrMatrix
CsrMatrix::principalSubmatrix(
    const std::vector<std::size_t> &indices) const
{
    panicIf(nrows != ncols, "principalSubmatrix: matrix not square");
    for (std::size_t k = 1; k < indices.size(); ++k)
        panicIf(indices[k - 1] >= indices[k],
                "principalSubmatrix: indices must be sorted unique");

    // Map global index -> local position.
    std::vector<std::size_t> local(nrows, static_cast<std::size_t>(-1));
    for (std::size_t k = 0; k < indices.size(); ++k) {
        panicIf(indices[k] >= nrows, "principalSubmatrix: out of range");
        local[indices[k]] = k;
    }

    std::vector<Triplet> t;
    for (std::size_t k = 0; k < indices.size(); ++k) {
        std::size_t gi = indices[k];
        auto cols = rowCols(gi);
        auto vs = rowVals(gi);
        for (std::size_t e = 0; e < cols.size(); ++e) {
            std::size_t lj = local[cols[e]];
            if (lj != static_cast<std::size_t>(-1))
                t.push_back({k, lj, vs[e]});
        }
    }
    return fromTriplets(indices.size(), indices.size(), std::move(t));
}

} // namespace aa::la
