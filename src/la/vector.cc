#include "aa/la/vector.hh"

#include <cmath>

#include "aa/common/logging.hh"

namespace aa::la {

double
Vector::at(std::size_t i) const
{
    panicIf(i >= v.size(), "Vector::at(", i, ") size ", v.size());
    return v[i];
}

double &
Vector::at(std::size_t i)
{
    panicIf(i >= v.size(), "Vector::at(", i, ") size ", v.size());
    return v[i];
}

Vector &
Vector::operator+=(const Vector &rhs)
{
    panicIf(v.size() != rhs.size(), "Vector +=: size mismatch");
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] += rhs[i];
    return *this;
}

Vector &
Vector::operator-=(const Vector &rhs)
{
    panicIf(v.size() != rhs.size(), "Vector -=: size mismatch");
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] -= rhs[i];
    return *this;
}

Vector &
Vector::operator*=(double s)
{
    for (auto &x : v)
        x *= s;
    return *this;
}

Vector
operator+(Vector lhs, const Vector &rhs)
{
    lhs += rhs;
    return lhs;
}

Vector
operator-(Vector lhs, const Vector &rhs)
{
    lhs -= rhs;
    return lhs;
}

Vector
operator*(double s, Vector rhs)
{
    rhs *= s;
    return rhs;
}

double
dot(const Vector &x, const Vector &y)
{
    panicIf(x.size() != y.size(), "dot: size mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
        acc += x[i] * y[i];
    return acc;
}

double
norm2(const Vector &x)
{
    return std::sqrt(dot(x, x));
}

double
normInf(const Vector &x)
{
    double m = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
        m = std::max(m, std::fabs(x[i]));
    return m;
}

double
norm1(const Vector &x)
{
    double s = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
        s += std::fabs(x[i]);
    return s;
}

void
axpy(double a, const Vector &x, Vector &y)
{
    panicIf(x.size() != y.size(), "axpy: size mismatch");
    for (std::size_t i = 0; i < x.size(); ++i)
        y[i] += a * x[i];
}

void
xpby(const Vector &x, double b, Vector &y)
{
    panicIf(x.size() != y.size(), "xpby: size mismatch");
    for (std::size_t i = 0; i < x.size(); ++i)
        y[i] = x[i] + b * y[i];
}

void
scale(double a, const Vector &x, Vector &y)
{
    y.resize(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        y[i] = a * x[i];
}

double
maxAbsDiff(const Vector &x, const Vector &y)
{
    panicIf(x.size() != y.size(), "maxAbsDiff: size mismatch");
    double m = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
        m = std::max(m, std::fabs(x[i] - y[i]));
    return m;
}

} // namespace aa::la
