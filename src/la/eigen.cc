#include "aa/la/eigen.hh"

#include <cmath>

#include "aa/common/logging.hh"
#include "aa/common/rng.hh"
#include "aa/la/direct.hh"

namespace aa::la {

namespace {

/** Random unit start vector. */
Vector
randomUnit(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    Vector v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = rng.gaussian(0.0, 1.0);
    double nrm = norm2(v);
    panicIf(nrm == 0.0, "randomUnit: zero draw");
    v *= 1.0 / nrm;
    return v;
}

} // namespace

EigenEstimate
largestEigenvalue(const LinearOperator &op, const EigenOptions &opts)
{
    EigenEstimate est;
    Vector v = randomUnit(op.size(), opts.seed);
    Vector av;
    double prev = 0.0;
    for (std::size_t it = 0; it < opts.max_iters; ++it) {
        op.apply(v, av);
        double lambda = dot(v, av); // Rayleigh quotient
        double nrm = norm2(av);
        est.iterations = it + 1;
        if (nrm == 0.0) {
            // v is in the null space; lambda_max >= 0 trivially.
            est.value = 0.0;
            est.converged = true;
            return est;
        }
        av *= 1.0 / nrm;
        v = av;
        if (it > 0 &&
            std::fabs(lambda - prev) <=
                opts.tol * std::max(1.0, std::fabs(lambda))) {
            est.value = lambda;
            est.converged = true;
            return est;
        }
        prev = lambda;
        est.value = lambda;
    }
    return est;
}

EigenEstimate
smallestEigenvalueSpd(const DenseMatrix &a, const EigenOptions &opts)
{
    EigenEstimate est;
    auto chol = Cholesky::factor(a);
    fatalIf(!chol, "smallestEigenvalueSpd: matrix not SPD");

    Vector v = randomUnit(a.rows(), opts.seed);
    double prev = 0.0;
    for (std::size_t it = 0; it < opts.max_iters; ++it) {
        Vector w = chol->solve(v); // w = A^-1 v
        double mu = dot(v, w);     // Rayleigh quotient of A^-1
        double nrm = norm2(w);
        panicIf(nrm == 0.0, "inverse power iteration: zero vector");
        w *= 1.0 / nrm;
        v = w;
        est.iterations = it + 1;
        double lambda = 1.0 / mu;
        if (it > 0 && std::fabs(mu - prev) <=
                          opts.tol * std::max(1.0, std::fabs(mu))) {
            est.value = lambda;
            est.converged = true;
            return est;
        }
        prev = mu;
        est.value = lambda;
    }
    return est;
}

double
conditionNumberSpd(const DenseMatrix &a, const EigenOptions &opts)
{
    DenseOperator op(a);
    auto lmax = largestEigenvalue(op, opts);
    auto lmin = smallestEigenvalueSpd(a, opts);
    fatalIf(lmin.value <= 0.0,
            "conditionNumberSpd: nonpositive lambda_min");
    return lmax.value / lmin.value;
}

} // namespace aa::la
