/**
 * @file
 * Abstract linear operator.
 *
 * The digital iterative solvers only need y = A x, so they are written
 * against this interface. Concrete implementations: CsrOperator,
 * DenseOperator here; matrix-free Poisson stencils in aa_pde (the
 * paper's CG "implemented using stencils ... without having to
 * allocate memory for the full matrix").
 */

#ifndef AA_LA_OPERATOR_HH
#define AA_LA_OPERATOR_HH

#include <cstddef>

#include "aa/la/csr_matrix.hh"
#include "aa/la/dense_matrix.hh"
#include "aa/la/vector.hh"

namespace aa::la {

/** Square linear operator interface used by the iterative solvers. */
class LinearOperator
{
  public:
    virtual ~LinearOperator() = default;

    /** Number of rows (== cols; operators here are square). */
    virtual std::size_t size() const = 0;

    /** y <- A x; y is resized as needed. */
    virtual void apply(const Vector &x, Vector &y) const = 0;

    /** Main diagonal, needed by Jacobi/GS/SOR smoothers. */
    virtual Vector diagonal() const = 0;

    /** Convenience allocation form of apply. */
    Vector
    applyCopy(const Vector &x) const
    {
        Vector y;
        apply(x, y);
        return y;
    }

    /**
     * Rough flop weight of one apply: number of scalar multiply-adds.
     * The energy models (aa_cost) charge per-apply work with this.
     */
    virtual std::size_t applyFlops() const = 0;
};

/** LinearOperator view over a CsrMatrix (not owning). */
class CsrOperator : public LinearOperator
{
  public:
    explicit CsrOperator(const CsrMatrix &m);

    std::size_t size() const override { return mat.rows(); }
    void apply(const Vector &x, Vector &y) const override;
    Vector diagonal() const override { return mat.diagonal(); }
    std::size_t applyFlops() const override { return mat.nnz(); }

    const CsrMatrix &matrix() const { return mat; }

  private:
    const CsrMatrix &mat;
};

/** LinearOperator view over a DenseMatrix (not owning). */
class DenseOperator : public LinearOperator
{
  public:
    explicit DenseOperator(const DenseMatrix &m);

    std::size_t size() const override { return mat.rows(); }
    void apply(const Vector &x, Vector &y) const override;
    Vector diagonal() const override;
    std::size_t applyFlops() const override
    {
        return mat.rows() * mat.cols();
    }

  private:
    const DenseMatrix &mat;
};

} // namespace aa::la

#endif // AA_LA_OPERATOR_HH
