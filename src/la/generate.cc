#include "aa/la/generate.hh"

#include <cmath>

#include "aa/common/logging.hh"
#include "aa/common/rng.hh"

namespace aa::la {

DenseMatrix
spdLogSpectrum(std::size_t n, double kappa, std::uint64_t seed)
{
    fatalIf(n == 0, "spdLogSpectrum: n must be positive");
    fatalIf(kappa < 1.0, "spdLogSpectrum: kappa must be >= 1");

    DenseMatrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        double t = n > 1 ? static_cast<double>(i) /
                               static_cast<double>(n - 1)
                         : 0.0;
        a(i, i) = std::pow(kappa, -t);
    }

    // Similarity by a few seeded Householder reflections
    // H = I - 2 w w^T: A <- H A H keeps the spectrum exactly and
    // fills the matrix in. Three reflections already make every
    // entry generically nonzero.
    Rng rng(seed);
    Vector w(n), t(n);
    for (std::size_t pass = 0; pass < 3; ++pass) {
        double norm = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            w[i] = rng.gaussian(0.0, 1.0);
            norm += w[i] * w[i];
        }
        norm = std::sqrt(norm);
        if (norm == 0.0)
            continue;
        for (std::size_t i = 0; i < n; ++i)
            w[i] /= norm;

        // t = A w, s = w^T t;  A <- A - 2 w t^T - 2 t w^T + 4 s w w^T
        double s = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            double acc = 0.0;
            for (std::size_t j = 0; j < n; ++j)
                acc += a(i, j) * w[j];
            t[i] = acc;
        }
        for (std::size_t i = 0; i < n; ++i)
            s += w[i] * t[i];
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j)
                a(i, j) += -2.0 * w[i] * t[j] - 2.0 * t[i] * w[j] +
                           4.0 * s * w[i] * w[j];
    }

    // Exact symmetry by construction can drift at the last ulp;
    // average the halves so isSymmetric() holds bit-tight.
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j) {
            double m = 0.5 * (a(i, j) + a(j, i));
            a(i, j) = m;
            a(j, i) = m;
        }
    return a;
}

Vector
seededRhs(std::size_t n, std::uint64_t seed)
{
    fatalIf(n == 0, "seededRhs: n must be positive");
    Rng rng(seed);
    Vector b(n);
    double norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        b[i] = rng.gaussian(0.0, 1.0);
        norm += b[i] * b[i];
    }
    norm = std::sqrt(norm);
    if (norm == 0.0) {
        b[0] = 1.0;
        return b;
    }
    for (std::size_t i = 0; i < n; ++i)
        b[i] /= norm;
    return b;
}

} // namespace aa::la
