/**
 * @file
 * Compressed sparse row matrix.
 *
 * The paper's workloads are sparse pentadiagonal (2D) and heptadiagonal
 * (3D) Poisson systems. The digital baselines run either matrix-free
 * (stencil) or on this CSR form; the compiler consumes CSR to count
 * nonzeros, allocate multipliers, and emit per-edge gains.
 */

#ifndef AA_LA_CSR_MATRIX_HH
#define AA_LA_CSR_MATRIX_HH

#include <cstddef>
#include <span>
#include <vector>

#include "aa/la/dense_matrix.hh"
#include "aa/la/vector.hh"

namespace aa::la {

/** One (row, col, value) entry used while assembling. */
struct Triplet {
    std::size_t row;
    std::size_t col;
    double value;
};

/** CSR sparse matrix; duplicate triplets are summed on build. */
class CsrMatrix
{
  public:
    CsrMatrix() = default;

    /**
     * Build from triplets. Duplicates are coalesced by summation;
     * explicit zeros are kept (they still cost a multiplier on the
     * accelerator unless pruned).
     */
    static CsrMatrix fromTriplets(std::size_t rows, std::size_t cols,
                                  std::vector<Triplet> triplets);

    static CsrMatrix fromDense(const DenseMatrix &dense,
                               double drop_tol = 0.0);
    static CsrMatrix identity(std::size_t n);

    std::size_t rows() const { return nrows; }
    std::size_t cols() const { return ncols; }
    std::size_t nnz() const { return vals.size(); }

    /** y = A x. */
    Vector apply(const Vector &x) const;
    /** y += alpha * A x (no temporary). */
    void applyAdd(double alpha, const Vector &x, Vector &y) const;

    /** Column indices of row i. */
    std::span<const std::size_t> rowCols(std::size_t i) const;
    /** Values of row i. */
    std::span<const double> rowVals(std::size_t i) const;

    /** Entry lookup (O(row nnz)); returns 0 for structural zeros. */
    double at(std::size_t i, std::size_t j) const;

    /** Main diagonal as a vector; zero where structurally absent. */
    Vector diagonal() const;

    /** Largest |a_ij| over stored entries. */
    double maxAbs() const;

    /** Scale all values by s (the compiler's value scaling). */
    void scaleValues(double s);

    bool isSymmetric(double tol = 1e-12) const;

    /**
     * True when the matrix is strictly or irreducibly diagonally
     * dominant in every row (a cheap sufficient check some tests use).
     */
    bool isDiagonallyDominant() const;

    DenseMatrix toDense() const;

    /**
     * Extract the principal submatrix for the given index set, plus
     * the coupling entries that leave the set (needed by the domain
     * decomposition's outer iteration). indices must be sorted and
     * unique.
     */
    CsrMatrix principalSubmatrix(const std::vector<std::size_t> &indices)
        const;

  private:
    std::size_t nrows = 0;
    std::size_t ncols = 0;
    std::vector<std::size_t> rowptr; ///< size nrows + 1
    std::vector<std::size_t> colidx;
    std::vector<double> vals;
};

} // namespace aa::la

#endif // AA_LA_CSR_MATRIX_HH
