#include "aa/common/logging.hh"

#include <atomic>
#include <cstdio>

namespace aa {

namespace {

// Atomic so parallel sweep workers can read the level while a driver
// thread (re)sets it, without a TSan-visible race.
std::atomic<LogLevel> global_level{LogLevel::Normal};

} // namespace

LogLevel
logLevel()
{
    return global_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    global_level.store(level, std::memory_order_relaxed);
}

namespace detail {

void
emitLog(const char *prefix, const std::string &message)
{
    std::fprintf(stderr, "%s: %s\n", prefix, message.c_str());
    std::fflush(stderr);
}

void
exitFatal()
{
    std::exit(1);
}

void
abortPanic()
{
    std::abort();
}

} // namespace detail

} // namespace aa
