#include "aa/common/logging.hh"

#include <cstdio>

namespace aa {

namespace {

LogLevel global_level = LogLevel::Normal;

} // namespace

LogLevel
logLevel()
{
    return global_level;
}

void
setLogLevel(LogLevel level)
{
    global_level = level;
}

namespace detail {

void
emitLog(const char *prefix, const std::string &message)
{
    std::fprintf(stderr, "%s: %s\n", prefix, message.c_str());
    std::fflush(stderr);
}

void
exitFatal()
{
    std::exit(1);
}

void
abortPanic()
{
    std::abort();
}

} // namespace detail

} // namespace aa
