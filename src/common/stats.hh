/**
 * @file
 * Lightweight statistics helpers used by tests and benches: running
 * mean/variance, min/max tracking, and least-squares fits for the
 * scaling-exponent measurements in Table III.
 */

#ifndef AA_COMMON_STATS_HH
#define AA_COMMON_STATS_HH

#include <cstddef>
#include <vector>

namespace aa {

/** Welford running mean / variance / extrema accumulator. */
class RunningStats
{
  public:
    void add(double x);

    std::size_t count() const { return n; }
    double mean() const { return n ? mu : 0.0; }
    /** Unbiased sample variance (0 for fewer than two samples). */
    double variance() const;
    double stddev() const;
    double min() const { return lo; }
    double max() const { return hi; }

  private:
    std::size_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * Nearest-rank quantile estimator over a sliding window of the most
 * recent samples. The solve-request service records per-request
 * latencies here and reports p50/p95/p99; a bounded window keeps the
 * memory of a long-running service constant while still tracking the
 * current traffic mix.
 */
class QuantileTracker
{
  public:
    explicit QuantileTracker(std::size_t window = 4096);

    void add(double x);

    /** Samples ever added (not just those retained). */
    std::size_t count() const { return total; }
    /** Samples currently retained (min(count, window)). */
    std::size_t retained() const { return ring.size(); }

    /**
     * Nearest-rank quantile of the retained window, q in [0, 1]
     * (q = 0.5 is the median, 1.0 the max). 0 when empty.
     */
    double quantile(double q) const;

    double max() const;

  private:
    std::size_t window_;
    std::vector<double> ring; ///< grows to window_, then wraps
    std::size_t next = 0;     ///< ring write cursor
    std::size_t total = 0;
};

/** Result of an ordinary least-squares line fit y = slope*x + icept. */
struct LineFit {
    double slope = 0.0;
    double intercept = 0.0;
    double r2 = 0.0; ///< coefficient of determination
};

/** Least-squares fit of y against x; requires xs.size() >= 2. */
LineFit fitLine(const std::vector<double> &xs,
                const std::vector<double> &ys);

/**
 * Fit y = c * x^p by regressing log y on log x; returns {p, log c, r2}
 * in LineFit{slope, intercept, r2}. All samples must be positive.
 * Used to verify the empirical scaling exponents of Table III.
 */
LineFit fitPowerLaw(const std::vector<double> &xs,
                    const std::vector<double> &ys);

} // namespace aa

#endif // AA_COMMON_STATS_HH
