/**
 * @file
 * Lightweight statistics helpers used by tests and benches: running
 * mean/variance, min/max tracking, and least-squares fits for the
 * scaling-exponent measurements in Table III.
 */

#ifndef AA_COMMON_STATS_HH
#define AA_COMMON_STATS_HH

#include <cstddef>
#include <vector>

namespace aa {

/** Welford running mean / variance / extrema accumulator. */
class RunningStats
{
  public:
    void add(double x);

    std::size_t count() const { return n; }
    double mean() const { return n ? mu : 0.0; }
    /** Unbiased sample variance (0 for fewer than two samples). */
    double variance() const;
    double stddev() const;
    double min() const { return lo; }
    double max() const { return hi; }

  private:
    std::size_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/** Result of an ordinary least-squares line fit y = slope*x + icept. */
struct LineFit {
    double slope = 0.0;
    double intercept = 0.0;
    double r2 = 0.0; ///< coefficient of determination
};

/** Least-squares fit of y against x; requires xs.size() >= 2. */
LineFit fitLine(const std::vector<double> &xs,
                const std::vector<double> &ys);

/**
 * Fit y = c * x^p by regressing log y on log x; returns {p, log c, r2}
 * in LineFit{slope, intercept, r2}. All samples must be positive.
 * Used to verify the empirical scaling exponents of Table III.
 */
LineFit fitPowerLaw(const std::vector<double> &xs,
                    const std::vector<double> &ys);

} // namespace aa

#endif // AA_COMMON_STATS_HH
