/**
 * @file
 * A small work-queue thread pool for embarrassingly parallel sweeps.
 *
 * The figure/table benches run one independent solve per grid size and
 * die seed; parallelFor() fans those out across a persistent worker
 * pool while the caller thread participates too. Results must be
 * written by index into caller-owned storage, which keeps the merged
 * output deterministic regardless of scheduling.
 *
 * Worker count comes from the AASIM_THREADS environment variable when
 * set (0 or unset = one worker per hardware thread). With one thread
 * the loop runs inline, so single-core runs pay no synchronization.
 */

#ifndef AA_COMMON_PARALLEL_HH
#define AA_COMMON_PARALLEL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace aa {

/**
 * Number of concurrent workers a pool defaults to: AASIM_THREADS if
 * set to a positive integer, else std::thread::hardware_concurrency()
 * (never less than 1).
 */
std::size_t defaultThreadCount();

/**
 * Fixed-size pool of workers executing index-chunked loops.
 *
 * One pool may be reused for many parallelFor() calls; workers sleep
 * between batches. parallelFor() itself is not reentrant and must be
 * called from one thread at a time (the benches' sweep driver).
 */
class ThreadPool
{
  public:
    /** threads = total concurrency including the caller; 0 = default. */
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total concurrency (worker threads + the participating caller). */
    std::size_t threadCount() const { return workers.size() + 1; }

    /**
     * Run fn(i) for every i in [0, n), distributing indices across the
     * pool; blocks until all complete. The first exception thrown by
     * fn is rethrown here after the batch drains. fn must synchronize
     * any shared state itself; writing result[i] per index needs no
     * locking.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

  private:
    void workerLoop();
    void runBatch();

    std::vector<std::thread> workers;

    std::mutex mu;
    std::condition_variable cv_work;
    std::condition_variable cv_done;
    std::uint64_t generation = 0; ///< batch counter, guarded by mu
    std::size_t busy = 0;         ///< workers inside current batch
    bool shutdown = false;

    // Current batch (valid while generation is live).
    const std::function<void(std::size_t)> *batch_fn = nullptr;
    std::size_t batch_n = 0;
    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
};

/**
 * One-shot helper: run fn(i) for i in [0, n) with `threads` total
 * workers (0 = default). Serial (no threads spawned) when the count
 * is 1 or n < 2.
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &fn,
                 std::size_t threads = 0);

} // namespace aa

#endif // AA_COMMON_PARALLEL_HH
