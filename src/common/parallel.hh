/**
 * @file
 * A small work-queue thread pool for embarrassingly parallel sweeps.
 *
 * The figure/table benches run one independent solve per grid size and
 * die seed, and the analog scheduler runs one independent block solve
 * per die; parallelFor() fans those out across a persistent worker
 * pool while the caller thread participates too. Results must be
 * written by index into caller-owned storage, which keeps the merged
 * output deterministic regardless of scheduling.
 *
 * Tasks that own per-thread resources (a die, a scratch buffer) use
 * the worker-indexed form: every concurrently running invocation gets
 * a distinct worker id in [0, threadCount()), stable for the thread's
 * lifetime, so resources indexed by worker are never shared.
 *
 * Worker count comes from the AASIM_THREADS environment variable when
 * set (0 or unset = one worker per hardware thread). With one thread
 * the loop runs inline, so single-core runs pay no synchronization.
 */

#ifndef AA_COMMON_PARALLEL_HH
#define AA_COMMON_PARALLEL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace aa {

/**
 * Number of concurrent workers a pool defaults to: AASIM_THREADS if
 * set to a positive integer, else std::thread::hardware_concurrency()
 * (never less than 1).
 */
std::size_t defaultThreadCount();

/** A loop body receiving (worker id, loop index). */
using WorkerIndexedFn =
    std::function<void(std::size_t worker, std::size_t i)>;

/**
 * Fixed-size pool of workers executing index-chunked loops.
 *
 * One pool may be reused for many parallelFor() calls; workers sleep
 * between batches. parallelFor() itself is not reentrant and must be
 * called from one thread at a time (the benches' sweep driver, the
 * analog multi-die scheduler).
 */
class ThreadPool
{
  public:
    /** threads = total concurrency including the caller; 0 = default. */
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total concurrency (worker threads + the participating caller). */
    std::size_t threadCount() const { return workers.size() + 1; }

    /**
     * Join and discard the worker threads. Batches submitted after
     * shutdown run inline on the caller instead of deadlocking on
     * workers that no longer exist — the degrade path a draining
     * service relies on when late work races its teardown. Idempotent;
     * the destructor calls it. Must not be called while a batch is in
     * flight.
     */
    void shutdownWorkers();

    /**
     * Run fn(i) for every i in [0, n), distributing indices across the
     * pool; blocks until all complete. The first exception thrown by
     * fn is rethrown here after the batch drains. fn must synchronize
     * any shared state itself; writing result[i] per index needs no
     * locking.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Worker-indexed form: run fn(worker, i) for every i in [0, n).
     * The caller participates as worker 0; pool threads are workers
     * 1..threadCount()-1. Two invocations with the same worker id
     * never overlap, so state indexed by worker (one die per worker,
     * one scratch arena per worker) needs no locking.
     */
    void parallelForWorkers(std::size_t n, const WorkerIndexedFn &fn);

  private:
    void workerLoop(std::size_t worker);
    void runBatch(std::size_t worker);

    std::vector<std::thread> workers;

    std::mutex mu;
    std::condition_variable cv_work;
    std::condition_variable cv_done;
    std::uint64_t generation = 0; ///< batch counter, guarded by mu
    std::size_t busy = 0;         ///< workers inside current batch
    bool shutdown = false;

    // Current batch (valid while generation is live).
    const WorkerIndexedFn *batch_fn = nullptr;
    std::size_t batch_n = 0;
    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
};

/**
 * One-shot helper: run fn(i) for i in [0, n) with `threads` total
 * workers (0 = default). Serial (no threads spawned) when the count
 * is 1 or n < 2.
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &fn,
                 std::size_t threads = 0);

/** One-shot worker-indexed helper; see ThreadPool::parallelForWorkers. */
void parallelForWorkers(std::size_t n, const WorkerIndexedFn &fn,
                        std::size_t threads = 0);

/**
 * Parallel sweep: results[i] = fn(i) with one independent task per
 * index, fanned across `threads` workers (0 = AASIM_THREADS default;
 * 1 runs inline). Each task must own all mutable solver state — one
 * Simulator/die per task, netlists shared read-only — and results
 * merge by index, so emitted tables are identical whatever the thread
 * count. This is the single pool/merge implementation shared by the
 * bench sweeps and the library schedulers.
 */
template <typename Fn>
auto
parallelMap(std::size_t n, Fn &&fn, std::size_t threads = 0)
{
    using T = decltype(fn(std::size_t{0}));
    std::vector<T> out(n);
    parallelFor(
        n, [&](std::size_t i) { out[i] = fn(i); }, threads);
    return out;
}

} // namespace aa

#endif // AA_COMMON_PARALLEL_HH
