/**
 * @file
 * Aligned text-table printer. Every bench binary regenerating one of
 * the paper's figures or tables prints its series through this so the
 * output is uniform and machine-parsable (TSV mode).
 */

#ifndef AA_COMMON_TABLE_HH
#define AA_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace aa {

/** A simple column-aligned table with a title and column headers. */
class TextTable
{
  public:
    explicit TextTable(std::string title) : title_(std::move(title)) {}

    /** Set column headers; fixes the column count. */
    void setHeader(std::vector<std::string> names);

    /** Append one row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format doubles with the given precision. */
    static std::string num(double v, int precision = 6);
    /** Convenience: format with scientific notation. */
    static std::string sci(double v, int precision = 3);

    /** Render column-aligned with a rule under the header. */
    void print(std::ostream &os) const;
    /** Render as tab-separated values (no title, header row first). */
    void printTsv(std::ostream &os) const;

    std::size_t rows() const { return body.size(); }

  private:
    std::string title_;
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> body;
};

} // namespace aa

#endif // AA_COMMON_TABLE_HH
