/**
 * @file
 * Status and error reporting in the gem5 idiom.
 *
 * fatal() terminates with exit(1) for user errors (bad configuration,
 * unsatisfiable resource request); panic() aborts for internal
 * simulator bugs. inform()/warn() report status without stopping.
 */

#ifndef AA_COMMON_LOGGING_HH
#define AA_COMMON_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace aa {

/** Verbosity levels for status messages. */
enum class LogLevel {
    Quiet,   ///< suppress inform(); warnings still shown
    Normal,  ///< default: inform() and warn()
    Debug    ///< additionally show debugLog() messages
};

/** Global log level; benches lower it, tests usually set Quiet. */
LogLevel logLevel();
void setLogLevel(LogLevel level);

namespace detail {

/** Emit one formatted line with a severity prefix to stderr. */
void emitLog(const char *prefix, const std::string &message);

[[noreturn]] void exitFatal();
[[noreturn]] void abortPanic();

/** Fold a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Informative message the user should see but not worry about. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logLevel() != LogLevel::Quiet)
        detail::emitLog("info", detail::concat(args...));
}

/** Something may be wrong but simulation can continue. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitLog("warn", detail::concat(args...));
}

/** Debug-level chatter, visible only at LogLevel::Debug. */
template <typename... Args>
void
debugLog(Args &&...args)
{
    if (logLevel() == LogLevel::Debug)
        detail::emitLog("debug", detail::concat(args...));
}

/**
 * The simulation cannot continue because of a user-level error
 * (invalid argument, resource limit). Exits with status 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::emitLog("fatal", detail::concat(args...));
    detail::exitFatal();
}

/**
 * Something happened that should never happen regardless of user
 * input: an aasim bug. Aborts so a core dump / debugger can attach.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::emitLog("panic", detail::concat(args...));
    detail::abortPanic();
}

/** panic() unless the invariant holds. */
template <typename... Args>
void
panicIf(bool condition, Args &&...args)
{
    if (condition)
        panic(args...);
}

/** fatal() unless the user-facing precondition holds. */
template <typename... Args>
void
fatalIf(bool condition, Args &&...args)
{
    if (condition)
        fatal(args...);
}

} // namespace aa

#endif // AA_COMMON_LOGGING_HH
