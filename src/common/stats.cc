#include "aa/common/stats.hh"

#include <algorithm>
#include <cmath>

#include "aa/common/logging.hh"

namespace aa {

void
RunningStats::add(double x)
{
    if (n == 0) {
        lo = hi = x;
    } else {
        if (x < lo) lo = x;
        if (x > hi) hi = x;
    }
    ++n;
    double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
}

double
RunningStats::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

QuantileTracker::QuantileTracker(std::size_t window)
    : window_(window)
{
    panicIf(window_ == 0, "QuantileTracker: window must be positive");
}

void
QuantileTracker::add(double x)
{
    if (ring.size() < window_) {
        ring.push_back(x);
    } else {
        ring[next] = x;
        next = (next + 1) % window_;
    }
    ++total;
}

double
QuantileTracker::quantile(double q) const
{
    if (ring.empty())
        return 0.0;
    panicIf(q < 0.0 || q > 1.0, "quantile: q out of [0, 1]");
    std::vector<double> sorted = ring;
    // Nearest-rank: the smallest value with at least ceil(q * n)
    // samples at or below it.
    std::size_t rank =
        static_cast<std::size_t>(std::ceil(
            q * static_cast<double>(sorted.size())));
    std::size_t k = rank > 0 ? rank - 1 : 0;
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<std::ptrdiff_t>(k),
                     sorted.end());
    return sorted[k];
}

double
QuantileTracker::max() const
{
    if (ring.empty())
        return 0.0;
    return *std::max_element(ring.begin(), ring.end());
}

LineFit
fitLine(const std::vector<double> &xs, const std::vector<double> &ys)
{
    panicIf(xs.size() != ys.size(), "fitLine: size mismatch");
    panicIf(xs.size() < 2, "fitLine: need at least two samples");

    double n = static_cast<double>(xs.size());
    double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
        syy += ys[i] * ys[i];
    }
    double denom = n * sxx - sx * sx;
    LineFit fit;
    if (denom == 0.0) {
        fit.slope = 0.0;
        fit.intercept = sy / n;
        fit.r2 = 0.0;
        return fit;
    }
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;

    double ss_tot = syy - sy * sy / n;
    double ss_res = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        double r = ys[i] - (fit.slope * xs[i] + fit.intercept);
        ss_res += r * r;
    }
    fit.r2 = (ss_tot > 0) ? 1.0 - ss_res / ss_tot : 1.0;
    return fit;
}

LineFit
fitPowerLaw(const std::vector<double> &xs, const std::vector<double> &ys)
{
    std::vector<double> lx(xs.size()), ly(ys.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        panicIf(xs[i] <= 0 || ys[i] <= 0,
                "fitPowerLaw: samples must be positive");
        lx[i] = std::log(xs[i]);
        ly[i] = std::log(ys[i]);
    }
    return fitLine(lx, ly);
}

} // namespace aa
