#include "aa/common/parallel.hh"

#include <cstdlib>

namespace aa {

std::size_t
defaultThreadCount()
{
    if (const char *env = std::getenv("AASIM_THREADS")) {
        char *end = nullptr;
        unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<std::size_t>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0)
        threads = defaultThreadCount();
    for (std::size_t i = 0; i + 1 < threads; ++i)
        workers.emplace_back([this, i] { workerLoop(i + 1); });
}

ThreadPool::~ThreadPool()
{
    shutdownWorkers();
}

void
ThreadPool::shutdownWorkers()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        shutdown = true;
    }
    cv_work.notify_all();
    for (auto &w : workers)
        w.join();
    workers.clear();
}

void
ThreadPool::runBatch(std::size_t worker)
{
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < batch_n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
        try {
            (*batch_fn)(worker, i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mu);
            if (!first_error)
                first_error = std::current_exception();
        }
    }
}

void
ThreadPool::workerLoop(std::size_t worker)
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mu);
            cv_work.wait(lock, [&] {
                return shutdown || generation != seen;
            });
            if (shutdown)
                return;
            seen = generation;
        }
        runBatch(worker);
        {
            std::lock_guard<std::mutex> lock(mu);
            --busy;
        }
        cv_done.notify_one();
    }
}

void
ThreadPool::parallelForWorkers(std::size_t n, const WorkerIndexedFn &fn)
{
    if (n == 0)
        return;
    if (workers.empty() || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(0, i);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu);
        batch_fn = &fn;
        batch_n = n;
        next.store(0, std::memory_order_relaxed);
        first_error = nullptr;
        busy = workers.size();
        ++generation;
    }
    cv_work.notify_all();
    runBatch(0); // the caller is worker 0
    std::unique_lock<std::mutex> lock(mu);
    cv_done.wait(lock, [&] { return busy == 0; });
    batch_fn = nullptr;
    if (first_error)
        std::rethrow_exception(first_error);
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    parallelForWorkers(n,
                       [&fn](std::size_t, std::size_t i) { fn(i); });
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn,
            std::size_t threads)
{
    parallelForWorkers(
        n, [&fn](std::size_t, std::size_t i) { fn(i); }, threads);
}

void
parallelForWorkers(std::size_t n, const WorkerIndexedFn &fn,
                   std::size_t threads)
{
    if (threads == 0)
        threads = defaultThreadCount();
    if (threads <= 1 || n < 2) {
        for (std::size_t i = 0; i < n; ++i)
            fn(0, i);
        return;
    }
    ThreadPool pool(threads);
    pool.parallelForWorkers(n, fn);
}

} // namespace aa
