/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic element in the simulator (process variation, noise)
 * draws from an explicitly seeded Rng so runs are reproducible. Chips
 * derive per-instance streams from a die seed; see chip/chip.hh.
 */

#ifndef AA_COMMON_RNG_HH
#define AA_COMMON_RNG_HH

#include <cstdint>
#include <random>

namespace aa {

/**
 * A seeded mt19937-64 wrapper with the distributions the simulator
 * needs. Copyable so a consumer can fork an independent stream via
 * fork().
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : engine(seed) {}

    /** Uniform in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine);
    }

    /** Standard normal scaled to the given sigma and mean. */
    double
    gaussian(double mean, double sigma)
    {
        return std::normal_distribution<double>(mean, sigma)(engine);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine);
    }

    /** Raw 64-bit draw. */
    std::uint64_t draw() { return engine(); }

    /**
     * Derive an independent child stream. The child seed mixes the
     * parent's next draw with a caller-supplied stream id so that the
     * same parent seed always yields the same family of children.
     */
    Rng
    fork(std::uint64_t stream_id)
    {
        std::uint64_t mix = draw() ^ (stream_id * 0x9e3779b97f4a7c15ull);
        return Rng(mix);
    }

  private:
    std::mt19937_64 engine;
};

} // namespace aa

#endif // AA_COMMON_RNG_HH
