#include "aa/common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "aa/common/logging.hh"

namespace aa {

void
TextTable::setHeader(std::vector<std::string> names)
{
    panicIf(!header.empty(), "TextTable: header already set");
    header = std::move(names);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    panicIf(header.empty(), "TextTable: set header before adding rows");
    panicIf(cells.size() != header.size(),
            "TextTable: row width ", cells.size(), " != header width ",
            header.size());
    body.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream os;
    os << std::setprecision(precision) << v;
    return os.str();
}

std::string
TextTable::sci(double v, int precision)
{
    std::ostringstream os;
    os << std::scientific << std::setprecision(precision) << v;
    return os.str();
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> width(header.size(), 0);
    for (std::size_t c = 0; c < header.size(); ++c)
        width[c] = header[c].size();
    for (const auto &row : body)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    os << "== " << title_ << " ==\n";
    auto put_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::setw(static_cast<int>(width[c])) << row[c];
            os << (c + 1 == row.size() ? "\n" : "  ");
        }
    };
    put_row(header);
    std::size_t total = 0;
    for (auto w : width)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto &row : body)
        put_row(row);
    os.flush();
}

void
TextTable::printTsv(std::ostream &os) const
{
    auto put_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << row[c] << (c + 1 == row.size() ? "\n" : "\t");
    };
    put_row(header);
    for (const auto &row : body)
        put_row(row);
    os.flush();
}

} // namespace aa
