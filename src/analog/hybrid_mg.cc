#include "aa/analog/hybrid_mg.hh"

namespace aa::analog {

solver::CoarseSolverFn
analogCoarseSolver(AnalogLinearSolver &solver)
{
    return [&solver](const la::CsrMatrix &a, const la::Vector &b) {
        return solver.solve(a.toDense(), b).u;
    };
}

solver::Multigrid
makeHybridMultigrid(AnalogLinearSolver &solver, std::size_t dim,
                    std::size_t l_finest, std::size_t coarse_side,
                    solver::MgOptions opts)
{
    opts.min_points_per_side = coarse_side;
    opts.coarse_solver = analogCoarseSolver(solver);
    return solver::Multigrid(dim, l_finest, std::move(opts));
}

} // namespace aa::analog
