#include "aa/analog/hybrid_mg.hh"

namespace aa::analog {

solver::CoarseSolverFn
analogCoarseSolver(AnalogLinearSolver &solver)
{
    return [&solver](const la::CsrMatrix &a, const la::Vector &b) {
        return solver.solve(a.toDense(), b).u;
    };
}

solver::CoarseSolverFn
poolCoarseSolver(DiePool &pool, DecomposeOptions decompose)
{
    // The coarsest operator is fixed for a Multigrid's lifetime, so
    // the compiled sweep is cached across visits; a size change
    // (another Multigrid reusing the hook) rebuilds it.
    struct State {
        std::unique_ptr<BlockJacobiScheduler> sched;
        std::size_t n = 0;
    };
    auto state = std::make_shared<State>();
    return [&pool, decompose, state](const la::CsrMatrix &a,
                                     const la::Vector &b) {
        if (a.rows() <= decompose.max_block_vars) {
            // Fits one die: a single run, exactly like the
            // single-die hook (but counted in the pool report).
            return pool.dieSolver(0)(a.toDense(), b);
        }
        if (!state->sched || state->n != a.rows()) {
            auto partition =
                pde::rangePartition(a.rows(),
                                    decompose.max_block_vars);
            state->sched = std::make_unique<BlockJacobiScheduler>(
                a, std::move(partition), pool.blockSolvers(),
                decompose);
            state->n = a.rows();
        }
        return state->sched->solve(b).u;
    };
}

solver::Multigrid
makeHybridMultigrid(AnalogLinearSolver &solver, std::size_t dim,
                    std::size_t l_finest, std::size_t coarse_side,
                    solver::MgOptions opts)
{
    opts.min_points_per_side = coarse_side;
    opts.coarse_solver = analogCoarseSolver(solver);
    return solver::Multigrid(dim, l_finest, std::move(opts));
}

solver::Multigrid
makeHybridMultigrid(DiePool &pool, std::size_t dim,
                    std::size_t l_finest, std::size_t coarse_side,
                    solver::MgOptions opts, DecomposeOptions decompose)
{
    opts.min_points_per_side = coarse_side;
    opts.coarse_solver = poolCoarseSolver(pool, std::move(decompose));
    return solver::Multigrid(dim, l_finest, std::move(opts));
}

} // namespace aa::analog
