/**
 * @file
 * Precision refinement — Algorithm 2 of the paper.
 *
 * One accelerator run yields only as many solution bits as the ADC
 * converts. Refinement builds arbitrary precision from low-precision
 * runs: solve A u_final = residual, accumulate u_precise += u_final,
 * recompute residual = b - A u_precise digitally in double precision,
 * and repeat — rescaling each pass so the shrinking residual keeps
 * using the full dynamic range. "Precision of the results obtained
 * from analog computing can be increased arbitrarily irrespective of
 * the resolution of the analog-to-digital converter" (Section I).
 */

#ifndef AA_ANALOG_REFINE_HH
#define AA_ANALOG_REFINE_HH

#include <functional>
#include <vector>

#include "aa/analog/solver.hh"

namespace aa::analog {

/** Options for the refinement loop. */
struct RefineOptions {
    /** Stop when ||b - A u||_2 <= tolerance * ||b||_2. */
    double tolerance = 1e-10;
    std::size_t max_passes = 20;
    /** Record per-pass residual norms. */
    bool record_history = true;
    /**
     * Checked before every pass after the first; returning false stops
     * the loop with whatever precision has accumulated. The solve
     * service uses this to cap a request's wall-clock by its deadline
     * without forking the re-scaling/refinement path. Unset = run to
     * tolerance or max_passes (fully deterministic).
     */
    std::function<bool()> keep_going;
};

/** Outcome of a refined solve. */
struct RefineOutcome {
    la::Vector u;
    bool converged = false;
    std::size_t passes = 0;
    double final_residual = 0.0;       ///< ||b - A u||_2
    std::vector<double> residual_history; ///< after each pass
    /** Config traffic each pass shipped (record_history only). The
     *  first pass compiles and ships the structure; later passes
     *  rebind DAC biases on the cached program, so entries past the
     *  first collapse to the delta. */
    std::vector<std::size_t> config_bytes_history;
    double analog_seconds = 0.0;
    /** Per-phase totals accumulated across all passes. */
    SolvePhaseReport phases;
};

/**
 * Algorithm 2: accumulate accelerator solves of the residual system
 * until the digitally computed residual is below tolerance.
 */
RefineOutcome refineSolve(AnalogLinearSolver &solver,
                          const la::DenseMatrix &a, const la::Vector &b,
                          const RefineOptions &opts = {});

/**
 * Refine K right-hand sides of one matrix in lockstep: each pass
 * batches the still-active members' residual systems through
 * solveBatch, so the structure fetch and eigen analysis are paid once
 * per pass (not once per member) and the members' near-identical
 * residual ranges bind onto the same stretched gain plane — config
 * traffic per member collapses the same way batched raw solves do.
 *
 * Members converge independently: one reaching tolerance drops out of
 * later passes while the rest continue. Per-member numerics follow
 * the same hint/re-scale path as refineSolve; keep_going (when set)
 * gates whole passes, like the single-RHS loop.
 */
std::vector<RefineOutcome>
refineSolveBatch(AnalogLinearSolver &solver, const la::DenseMatrix &a,
                 const std::vector<la::Vector> &bs,
                 const RefineOptions &opts = {});

} // namespace aa::analog

#endif // AA_ANALOG_REFINE_HH
