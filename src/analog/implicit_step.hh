/**
 * @file
 * Implicit time stepping on the accelerator — the Figure 4 pipeline
 * at pool scale. Backward Euler on du/dt = -A u + b solves
 *     (I + dt A) u_{n+1} = u_n + dt b
 * once per step: the same matrix M every time, only the right-hand
 * side moves. That makes it the repo's archetypal "many independent
 * analog solves per outer iteration" workload: each step's block
 * solves fan out across a DiePool through one BlockJacobiScheduler
 * compiled once for the whole trajectory, so every die keeps its
 * program for M hot (delta reconfiguration ships only the DAC
 * biases) and each step's sweep runs concurrently across dies.
 *
 * Determinism: steps are sequential (u_{n+1} depends on u_n), but
 * within a step the scheduler's contract applies — the trajectory is
 * bit-identical at any thread count.
 */

#ifndef AA_ANALOG_IMPLICIT_STEP_HH
#define AA_ANALOG_IMPLICIT_STEP_HH

#include "aa/analog/decompose.hh"
#include "aa/analog/die_pool.hh"

namespace aa::analog {

/** Options for the decomposed backward-Euler driver. */
struct ImplicitStepOptions {
    double dt = 0.01;        ///< implicit step (beyond explicit limit)
    std::size_t steps = 10;  ///< steps to march
    /** Inner solve controls: block size, outer tolerance, threads. */
    DecomposeOptions decompose;
    /** Keep u after every step (waveform output), not just the last. */
    bool record_trajectory = false;
};

/** Outcome of a decomposed implicit march. */
struct ImplicitStepOutcome {
    la::Vector u;                 ///< state after the last step
    std::size_t steps = 0;
    std::size_t block_solves = 0; ///< accelerator runs, all steps
    std::size_t outer_sweeps = 0; ///< block-Jacobi sweeps, all steps
    bool all_converged = true;    ///< every step met decompose.tol
    /** Block solves per die, merged by die index across steps. */
    std::vector<std::size_t> per_die_solves;
    std::vector<la::Vector> trajectory; ///< record_trajectory only
};

/**
 * March `steps` backward-Euler steps of du/dt = -A u + b from u0
 * (empty = zero), solving each step's system over the given solver
 * bank with block i on die (i mod dies). The step matrix
 * M = I + dt A is assembled and the sweep compiled once up front.
 */
ImplicitStepOutcome backwardEulerDecomposed(
    const la::CsrMatrix &a, const la::Vector &b, const la::Vector &u0,
    const std::vector<pde::IndexSet> &partition,
    std::vector<BlockSolverFn> die_solvers,
    const ImplicitStepOptions &opts);

/**
 * Convenience: decompose 1D-range style into blocks of at most
 * opts.decompose.max_block_vars and march across every die in the
 * pool.
 */
ImplicitStepOutcome backwardEulerPool(DiePool &pool,
                                      const la::CsrMatrix &a,
                                      const la::Vector &b,
                                      const la::Vector &u0,
                                      const ImplicitStepOptions &opts);

} // namespace aa::analog

#endif // AA_ANALOG_IMPLICIT_STEP_HH
