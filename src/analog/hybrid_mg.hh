/**
 * @file
 * Hybrid multigrid: analog accelerator inside a digital V-cycle.
 *
 * "Because perfect convergence is not required, less stable,
 * inaccurate, low precision techniques, such as analog acceleration,
 * may also be used to support multigrid" (Section IV-A). The coarsest
 * level of the geometric multigrid solver is handed to the analog
 * accelerator; the outer digital cycles absorb its limited precision.
 */

#ifndef AA_ANALOG_HYBRID_MG_HH
#define AA_ANALOG_HYBRID_MG_HH

#include "aa/analog/die_pool.hh"
#include "aa/analog/solver.hh"
#include "aa/solver/multigrid.hh"

namespace aa::analog {

/** A coarse-solver hook backed by the analog accelerator. */
solver::CoarseSolverFn analogCoarseSolver(AnalogLinearSolver &solver);

/**
 * A coarse-solver hook backed by a whole DiePool: when the coarse
 * system exceeds one die (decompose.max_block_vars), it is cut into
 * blocks and swept through the multi-die BlockJacobiScheduler —
 * every V-cycle's coarse visit becomes a bank of concurrent block
 * solves. The compiled sweep (submatrices, workspaces, per-die
 * program caches) is built on the first visit and reused by every
 * later cycle, since the coarsest operator never changes. Systems
 * that fit one die go straight to die 0, as the single-die hook
 * does. Deterministic at any decompose.threads setting.
 */
solver::CoarseSolverFn
poolCoarseSolver(DiePool &pool, DecomposeOptions decompose = {});

/**
 * Build a Multigrid whose coarsest level is solved on the analog
 * accelerator. `coarse_side` picks how many points per side remain
 * when the accelerator takes over (larger = more analog work).
 */
solver::Multigrid makeHybridMultigrid(AnalogLinearSolver &solver,
                                      std::size_t dim,
                                      std::size_t l_finest,
                                      std::size_t coarse_side = 7,
                                      solver::MgOptions opts = {});

/**
 * Pool-backed hybrid multigrid: the coarsest level is decomposed
 * across every die in `pool` via poolCoarseSolver().
 */
solver::Multigrid makeHybridMultigrid(DiePool &pool, std::size_t dim,
                                      std::size_t l_finest,
                                      std::size_t coarse_side = 7,
                                      solver::MgOptions opts = {},
                                      DecomposeOptions decompose = {});

} // namespace aa::analog

#endif // AA_ANALOG_HYBRID_MG_HH
