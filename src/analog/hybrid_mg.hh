/**
 * @file
 * Hybrid multigrid: analog accelerator inside a digital V-cycle.
 *
 * "Because perfect convergence is not required, less stable,
 * inaccurate, low precision techniques, such as analog acceleration,
 * may also be used to support multigrid" (Section IV-A). The coarsest
 * level of the geometric multigrid solver is handed to the analog
 * accelerator; the outer digital cycles absorb its limited precision.
 */

#ifndef AA_ANALOG_HYBRID_MG_HH
#define AA_ANALOG_HYBRID_MG_HH

#include "aa/analog/solver.hh"
#include "aa/solver/multigrid.hh"

namespace aa::analog {

/** A coarse-solver hook backed by the analog accelerator. */
solver::CoarseSolverFn analogCoarseSolver(AnalogLinearSolver &solver);

/**
 * Build a Multigrid whose coarsest level is solved on the analog
 * accelerator. `coarse_side` picks how many points per side remain
 * when the accelerator takes over (larger = more analog work).
 */
solver::Multigrid makeHybridMultigrid(AnalogLinearSolver &solver,
                                      std::size_t dim,
                                      std::size_t l_finest,
                                      std::size_t coarse_side = 7,
                                      solver::MgOptions opts = {});

} // namespace aa::analog

#endif // AA_ANALOG_HYBRID_MG_HH
