/**
 * @file
 * A pool of accelerator dies. The paper's decomposition story says
 * subproblems "can be solved separately on multiple accelerators, or
 * multiple runs of the same accelerator" — this is the multiple-
 * accelerators variant. Each die in the pool is an independent
 * process-variation corner with its own calibration, RNG stream, and
 * program cache, so heterogeneity across chips is part of the
 * experiment rather than averaged away.
 *
 * Die ownership rules (the parallel-dispatch contract): the per-die
 * solvers returned by dieSolver()/blockSolvers() each touch only
 * their own die's state, so BlockJacobiScheduler may run them on
 * different threads concurrently — as long as each die's solver is
 * invoked from one task at a time, which the scheduler's static
 * block-to-die assignment guarantees. The legacy round-robin
 * nextDie()/blockSolver() path guards its shared cursor with a mutex,
 * so *handing out* dies is thread-safe; callers that run more
 * concurrent solves than there are dies can still alias a die and
 * must serialize those solves themselves.
 */

#ifndef AA_ANALOG_DIE_POOL_HH
#define AA_ANALOG_DIE_POOL_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "aa/analog/decompose.hh"
#include "aa/analog/solver.hh"

namespace aa::fault {
class FaultInjector;
}

namespace aa::analog {

/** What one die did since construction (or the last resetUsage()). */
struct DieUsage {
    std::size_t solves = 0;        ///< accelerator runs issued
    /** Multi-RHS batches dispatched (each batch is one configure
     *  amortized over its members; members count under solves). */
    std::size_t batches = 0;
    double analog_seconds = 0.0;   ///< analog compute time
    SolvePhaseReport phases;       ///< per-phase host time/traffic
    /** Program-cache counters (lifetime totals, from the die). */
    std::size_t cache_hits = 0;
    std::size_t cache_misses = 0;
    std::size_t cache_evictions = 0;
};

/** Pool-level aggregation of every die's usage. */
struct PoolReport {
    std::vector<DieUsage> dies; ///< by die index
    DieUsage total() const;     ///< summed over dies
};

/** When a die gets benched and when it is allowed back. */
struct DieHealthPolicy {
    /** Consecutive verification failures before quarantine. */
    std::size_t quarantine_after = 3;
    /** Scheduler rounds a first quarantine lasts. */
    std::size_t cooldown_rounds = 4;
    /** Each re-quarantine multiplies the cooldown by this. */
    double cooldown_growth = 2.0;
    std::size_t max_cooldown_rounds = 64;
};

/**
 * Health state machine of one die:
 * Healthy -> (quarantine_after consecutive failures) -> Quarantined
 * -> (cooldown expires) -> Probation -> success -> Healthy, or
 * failure -> Quarantined again with a grown cooldown. Dead is
 * terminal: a die that stopped answering is never readmitted.
 */
enum class DieState { Healthy, Quarantined, Probation, Dead };
const char *name(DieState state);

struct DieHealth {
    DieState state = DieState::Healthy;
    std::size_t consecutive_failures = 0;
    std::size_t failures = 0;    ///< lifetime verification failures
    std::size_t successes = 0;   ///< lifetime verified solves
    std::size_t quarantines = 0; ///< times benched
    std::size_t cooldown_remaining = 0; ///< rounds until probation
};

/** A pool of independently fabricated dies. */
class DiePool
{
  public:
    /**
     * Create `dies` solvers sharing the electrical spec of `base`
     * but with distinct die seeds derived from base.die_seed.
     */
    DiePool(std::size_t dies, AnalogSolverOptions base = {},
            DieHealthPolicy health_policy = {});

    std::size_t size() const { return solvers.size(); }
    AnalogLinearSolver &die(std::size_t k);

    /** DEPRECATED legacy round-robin path — nextDie()/blockSolver()/
     *  refinedBlockSolver() survive only for old single-threaded
     *  callers and their tests. Routing is owned by the service's
     *  placement layer now; dieSolver(k)/blockSolvers() (explicitly
     *  pinned dies) are the supported entry points, and new code
     *  must not grow round-robin call sites. The cursor is
     *  mutex-guarded, so concurrent handout is safe; see the file
     *  comment for the aliasing caveat. */
    AnalogLinearSolver &nextDie();

    /** Block solver that dispatches each call to the next die
     *  (deprecated with nextDie(); see above). */
    BlockSolverFn blockSolver();

    /** Block solver with Algorithm-2 boosting on each die
     *  (single-threaded use only; deprecated with nextDie()). */
    BlockSolverFn refinedBlockSolver(std::size_t refine_passes = 2,
                                     double tolerance = 1e-6);

    /** Block solver pinned to die k; accumulates that die's usage.
     *  Safe to run concurrently with other dies' solvers. */
    BlockSolverFn dieSolver(std::size_t k);

    /** Algorithm-2 boosted solver pinned to die k. */
    BlockSolverFn refinedDieSolver(std::size_t k,
                                   std::size_t refine_passes = 2,
                                   double tolerance = 1e-6);

    /** One pinned solver per die — the BlockJacobiScheduler bank. */
    std::vector<BlockSolverFn> blockSolvers();

    /** One boosted pinned solver per die. */
    std::vector<BlockSolverFn>
    refinedBlockSolvers(std::size_t refine_passes = 2,
                        double tolerance = 1e-6);

    /**
     * True when die k's program cache holds a compiled structure for
     * (pattern_hash, n) under any geometry. Read-only (LRU order and
     * counters untouched); safe to call while die k is mid-solve —
     * the query goes through the solver's locked accessor, so the
     * pipelined service can route while executors run.
     */
    bool dieHasPattern(std::size_t k, std::uint64_t pattern_hash,
                       std::size_t n) const;

    /** Dies whose cache holds (pattern_hash, n), ascending index. */
    std::vector<std::size_t>
    diesWithPattern(std::uint64_t pattern_hash, std::size_t n) const;

    // --- explicit placement --------------------------------------
    // The placement layer's primitives. Same ownership contract as
    // availableDies()/tickRound(): call between dispatch rounds,
    // while no worker is driving a die.

    /** Geometry key of die k's chip (0 until its first solve builds
     *  one). Structures replicate only across equal geometries. */
    std::uint64_t dieGeometryKey(std::size_t k) const;

    /** Prefetch-install a compiled structure into die k's program
     *  cache (pinned by default); false on geometry mismatch. */
    bool installPattern(
        std::size_t k,
        std::shared_ptr<const compiler::CompiledStructure> cs,
        bool pin = true);

    /**
     * Replicate (pattern_hash, n) onto die dst: copy the compiled
     * structure out of any die whose cache holds it — compiled
     * structures are host-side and survive quarantine, so a benched
     * die can still seed its replacement — and install it pinned.
     * Returns false when dst already holds the pattern or no
     * geometry-compatible source exists.
     */
    bool replicatePattern(std::size_t dst,
                          std::uint64_t pattern_hash, std::size_t n);

    /** Drop (pattern_hash, n) from die k's cache (placement shed);
     *  returns entries removed. */
    std::size_t dropPattern(std::size_t k, std::uint64_t pattern_hash,
                            std::size_t n);

    /**
     * Account solves run directly on die(k) — the solve service calls
     * die(k).solve()/refineSolve() itself to keep the full outcome,
     * then records the usage here so report() stays authoritative.
     * Same contract as dieSolver(): one task per die at a time.
     */
    void recordUsage(std::size_t k, std::size_t solves,
                     double analog_seconds,
                     const SolvePhaseReport &phases);

    /**
     * Account one K-member solveBatch run on die(k): K solves, one
     * batch. The phases argument is the members' reports already
     * folded together (the shared structure fetch sits in member 0's,
     * so the sum is the batch's true total).
     */
    void recordBatchUsage(std::size_t k, std::size_t members,
                          double analog_seconds,
                          const SolvePhaseReport &phases);

    // --- health tracking -----------------------------------------
    // Usage and health records are guarded by an internal lock, so
    // per-die executors may record concurrently with each other and
    // with the scheduler's availableDies/tickRound — the pipelined
    // dispatch contract (records still land at well-defined points:
    // a die's executor records between its own solves).

    /** A verified solve on die k: clears the failure streak, and a
     *  die on probation earns its way back to Healthy. */
    void recordSuccess(std::size_t k);

    /** A failed (unverifiable) solve on die k; dead=true marks the
     *  die permanently lost (it stopped answering). Enough
     *  consecutive failures — or any failure on probation —
     *  quarantines it with an exponentially growing cooldown.
     *  Returns true when THIS call benched the die (quarantined or
     *  marked it dead) — the atomic read-back concurrent callers
     *  need for bench accounting. */
    bool recordFailure(std::size_t k, bool dead = false);

    /** May the scheduler route work to die k this round? Healthy and
     *  Probation dies yes; Quarantined and Dead no. */
    bool dieAvailable(std::size_t k) const;

    /** Routable dies, ascending index. */
    std::vector<std::size_t> availableDies() const;

    /** Pinned block solvers for the routable dies only (the
     *  decomposition bank a fault-aware caller should use). */
    std::vector<BlockSolverFn> availableBlockSolvers();

    /** End of a scheduling round: cooldowns tick down, expired
     *  quarantines move to probation. Deterministic — health evolves
     *  with rounds, never wall clock. */
    void tickRound();

    const DieHealth &health(std::size_t k) const;
    const DieHealthPolicy &healthPolicy() const { return policy_; }

    /**
     * Attach a fault injector to die k; the pool shares ownership so
     * the injector outlives any chip regrow. Null detaches.
     */
    void attachFaultInjector(
        std::size_t k, std::shared_ptr<fault::FaultInjector> injector);
    fault::FaultInjector *faultInjector(std::size_t k) const;

    /** Total fault events fired across all attached injectors. */
    std::size_t faultsSeen() const;

    /** Per-die and pool-level usage/cache report. */
    PoolReport report() const;

    /** Zero the usage counters (cache stats stay with the dies). */
    void resetUsage();

    /** Total analog compute time across the pool. */
    double totalAnalogSeconds() const;

  private:
    void quarantineLocked(std::size_t k);
    bool dieAvailableLocked(std::size_t k) const
    {
        return health_[k].state == DieState::Healthy ||
               health_[k].state == DieState::Probation;
    }

    std::vector<std::unique_ptr<AnalogLinearSolver>> solvers;
    /** Guards usage_ and health_ against concurrent per-die
     *  executors and the routing scheduler (pipelined dispatch). */
    mutable std::mutex state_mu_;
    std::vector<DieUsage> usage_;
    std::vector<DieHealth> health_;
    std::vector<std::shared_ptr<fault::FaultInjector>> injectors_;
    DieHealthPolicy policy_;
    std::mutex cursor_mu; ///< guards the round-robin cursor
    std::size_t cursor = 0;
};

} // namespace aa::analog

#endif // AA_ANALOG_DIE_POOL_HH
