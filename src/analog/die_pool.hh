/**
 * @file
 * A pool of accelerator dies. The paper's decomposition story says
 * subproblems "can be solved separately on multiple accelerators, or
 * multiple runs of the same accelerator" — this is the multiple-
 * accelerators variant. Each die in the pool is an independent
 * process-variation corner with its own calibration; block solves
 * round-robin across them, so heterogeneity across chips is part of
 * the experiment rather than averaged away.
 */

#ifndef AA_ANALOG_DIE_POOL_HH
#define AA_ANALOG_DIE_POOL_HH

#include <memory>
#include <vector>

#include "aa/analog/decompose.hh"
#include "aa/analog/solver.hh"

namespace aa::analog {

/** A round-robin pool of independently fabricated dies. */
class DiePool
{
  public:
    /**
     * Create `dies` solvers sharing the electrical spec of `base`
     * but with distinct die seeds derived from base.die_seed.
     */
    DiePool(std::size_t dies, AnalogSolverOptions base = {});

    std::size_t size() const { return solvers.size(); }
    AnalogLinearSolver &die(std::size_t k);

    /** Next die in round-robin order. */
    AnalogLinearSolver &nextDie();

    /** Block solver that dispatches each call to the next die. */
    BlockSolverFn blockSolver();

    /** Block solver with Algorithm-2 boosting on each die. */
    BlockSolverFn refinedBlockSolver(std::size_t refine_passes = 2,
                                     double tolerance = 1e-6);

    /** Total analog compute time across the pool. */
    double totalAnalogSeconds() const;

  private:
    std::vector<std::unique_ptr<AnalogLinearSolver>> solvers;
    std::size_t cursor = 0;
};

} // namespace aa::analog

#endif // AA_ANALOG_DIE_POOL_HH
