#include "aa/analog/die_pool.hh"

#include "aa/analog/refine.hh"
#include "aa/common/logging.hh"

namespace aa::analog {

DieUsage
PoolReport::total() const
{
    DieUsage t;
    for (const DieUsage &d : dies) {
        t.solves += d.solves;
        t.analog_seconds += d.analog_seconds;
        t.phases.add(d.phases);
        t.cache_hits += d.cache_hits;
        t.cache_misses += d.cache_misses;
    }
    return t;
}

DiePool::DiePool(std::size_t dies, AnalogSolverOptions base)
{
    fatalIf(dies == 0, "DiePool: need at least one die");
    solvers.reserve(dies);
    for (std::size_t k = 0; k < dies; ++k) {
        AnalogSolverOptions opts = base;
        // Distinct fabrication corners per die, derived
        // deterministically from the base seed.
        opts.die_seed =
            base.die_seed * 1000003ull + 7919ull * (k + 1);
        solvers.push_back(
            std::make_unique<AnalogLinearSolver>(opts));
    }
    usage_.resize(dies);
}

AnalogLinearSolver &
DiePool::die(std::size_t k)
{
    fatalIf(k >= solvers.size(), "DiePool: die ", k, " of ",
            solvers.size());
    return *solvers[k];
}

AnalogLinearSolver &
DiePool::nextDie()
{
    std::lock_guard<std::mutex> lock(cursor_mu);
    AnalogLinearSolver &s = *solvers[cursor];
    cursor = (cursor + 1) % solvers.size();
    return s;
}

BlockSolverFn
DiePool::blockSolver()
{
    return [this](const la::DenseMatrix &a, const la::Vector &rhs) {
        return nextDie().solve(a, rhs).u;
    };
}

BlockSolverFn
DiePool::refinedBlockSolver(std::size_t refine_passes,
                            double tolerance)
{
    fatalIf(refine_passes == 0,
            "DiePool: need at least one refinement pass");
    return [this, refine_passes,
            tolerance](const la::DenseMatrix &a,
                       const la::Vector &rhs) {
        RefineOptions opts;
        opts.tolerance = tolerance;
        opts.max_passes = refine_passes;
        opts.record_history = false;
        return refineSolve(nextDie(), a, rhs, opts).u;
    };
}

BlockSolverFn
DiePool::dieSolver(std::size_t k)
{
    fatalIf(k >= solvers.size(), "DiePool: die ", k, " of ",
            solvers.size());
    // Touches only die k's solver and usage slot: concurrent calls
    // for *different* k never share state.
    return [this, k](const la::DenseMatrix &a, const la::Vector &rhs) {
        AnalogSolveOutcome out = solvers[k]->solve(a, rhs);
        DieUsage &u = usage_[k];
        ++u.solves;
        u.analog_seconds += out.analog_seconds;
        u.phases.add(out.phases);
        return std::move(out.u);
    };
}

BlockSolverFn
DiePool::refinedDieSolver(std::size_t k, std::size_t refine_passes,
                          double tolerance)
{
    fatalIf(k >= solvers.size(), "DiePool: die ", k, " of ",
            solvers.size());
    fatalIf(refine_passes == 0,
            "DiePool: need at least one refinement pass");
    return [this, k, refine_passes,
            tolerance](const la::DenseMatrix &a,
                       const la::Vector &rhs) {
        RefineOptions opts;
        opts.tolerance = tolerance;
        opts.max_passes = refine_passes;
        opts.record_history = false;
        RefineOutcome out = refineSolve(*solvers[k], a, rhs, opts);
        DieUsage &u = usage_[k];
        u.solves += out.passes;
        u.analog_seconds += out.analog_seconds;
        u.phases.add(out.phases);
        return std::move(out.u);
    };
}

std::vector<BlockSolverFn>
DiePool::blockSolvers()
{
    std::vector<BlockSolverFn> bank;
    bank.reserve(solvers.size());
    for (std::size_t k = 0; k < solvers.size(); ++k)
        bank.push_back(dieSolver(k));
    return bank;
}

std::vector<BlockSolverFn>
DiePool::refinedBlockSolvers(std::size_t refine_passes,
                             double tolerance)
{
    std::vector<BlockSolverFn> bank;
    bank.reserve(solvers.size());
    for (std::size_t k = 0; k < solvers.size(); ++k)
        bank.push_back(refinedDieSolver(k, refine_passes, tolerance));
    return bank;
}

bool
DiePool::dieHasPattern(std::size_t k, std::uint64_t pattern_hash,
                       std::size_t n) const
{
    fatalIf(k >= solvers.size(), "DiePool: die ", k, " of ",
            solvers.size());
    return solvers[k]->programCache().contains(pattern_hash, n);
}

std::vector<std::size_t>
DiePool::diesWithPattern(std::uint64_t pattern_hash,
                         std::size_t n) const
{
    std::vector<std::size_t> out;
    for (std::size_t k = 0; k < solvers.size(); ++k)
        if (solvers[k]->programCache().contains(pattern_hash, n))
            out.push_back(k);
    return out;
}

void
DiePool::recordUsage(std::size_t k, std::size_t solves,
                     double analog_seconds,
                     const SolvePhaseReport &phases)
{
    fatalIf(k >= solvers.size(), "DiePool: die ", k, " of ",
            solvers.size());
    DieUsage &u = usage_[k];
    u.solves += solves;
    u.analog_seconds += analog_seconds;
    u.phases.add(phases);
}

PoolReport
DiePool::report() const
{
    PoolReport rep;
    rep.dies = usage_;
    for (std::size_t k = 0; k < solvers.size(); ++k) {
        const compiler::CacheStats &cs = solvers[k]->cacheStats();
        rep.dies[k].cache_hits = cs.hits;
        rep.dies[k].cache_misses = cs.misses;
    }
    return rep;
}

void
DiePool::resetUsage()
{
    usage_.assign(solvers.size(), DieUsage{});
}

double
DiePool::totalAnalogSeconds() const
{
    double total = 0.0;
    for (const auto &s : solvers)
        total += s->totalAnalogSeconds();
    return total;
}

} // namespace aa::analog
