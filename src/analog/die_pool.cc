#include "aa/analog/die_pool.hh"

#include "aa/analog/refine.hh"
#include "aa/common/logging.hh"

namespace aa::analog {

DiePool::DiePool(std::size_t dies, AnalogSolverOptions base)
{
    fatalIf(dies == 0, "DiePool: need at least one die");
    solvers.reserve(dies);
    for (std::size_t k = 0; k < dies; ++k) {
        AnalogSolverOptions opts = base;
        // Distinct fabrication corners per die, derived
        // deterministically from the base seed.
        opts.die_seed =
            base.die_seed * 1000003ull + 7919ull * (k + 1);
        solvers.push_back(
            std::make_unique<AnalogLinearSolver>(opts));
    }
}

AnalogLinearSolver &
DiePool::die(std::size_t k)
{
    fatalIf(k >= solvers.size(), "DiePool: die ", k, " of ",
            solvers.size());
    return *solvers[k];
}

AnalogLinearSolver &
DiePool::nextDie()
{
    AnalogLinearSolver &s = *solvers[cursor];
    cursor = (cursor + 1) % solvers.size();
    return s;
}

BlockSolverFn
DiePool::blockSolver()
{
    return [this](const la::DenseMatrix &a, const la::Vector &rhs) {
        return nextDie().solve(a, rhs).u;
    };
}

BlockSolverFn
DiePool::refinedBlockSolver(std::size_t refine_passes,
                            double tolerance)
{
    fatalIf(refine_passes == 0,
            "DiePool: need at least one refinement pass");
    return [this, refine_passes,
            tolerance](const la::DenseMatrix &a,
                       const la::Vector &rhs) {
        RefineOptions opts;
        opts.tolerance = tolerance;
        opts.max_passes = refine_passes;
        opts.record_history = false;
        return refineSolve(nextDie(), a, rhs, opts).u;
    };
}

double
DiePool::totalAnalogSeconds() const
{
    double total = 0.0;
    for (const auto &s : solvers)
        total += s->totalAnalogSeconds();
    return total;
}

} // namespace aa::analog
