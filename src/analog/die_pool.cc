#include "aa/analog/die_pool.hh"

#include <algorithm>
#include <cmath>

#include "aa/analog/refine.hh"
#include "aa/common/logging.hh"
#include "aa/fault/fault.hh"

namespace aa::analog {

const char *
name(DieState state)
{
    switch (state) {
      case DieState::Healthy:
        return "healthy";
      case DieState::Quarantined:
        return "quarantined";
      case DieState::Probation:
        return "probation";
      case DieState::Dead:
        return "dead";
    }
    return "unknown";
}

DieUsage
PoolReport::total() const
{
    DieUsage t;
    for (const DieUsage &d : dies) {
        t.solves += d.solves;
        t.batches += d.batches;
        t.analog_seconds += d.analog_seconds;
        t.phases.add(d.phases);
        t.cache_hits += d.cache_hits;
        t.cache_misses += d.cache_misses;
        t.cache_evictions += d.cache_evictions;
    }
    return t;
}

DiePool::DiePool(std::size_t dies, AnalogSolverOptions base,
                 DieHealthPolicy health_policy)
    : policy_(health_policy)
{
    fatalIf(dies == 0, "DiePool: need at least one die");
    solvers.reserve(dies);
    for (std::size_t k = 0; k < dies; ++k) {
        AnalogSolverOptions opts = base;
        // Distinct fabrication corners per die, derived
        // deterministically from the base seed.
        opts.die_seed =
            base.die_seed * 1000003ull + 7919ull * (k + 1);
        solvers.push_back(
            std::make_unique<AnalogLinearSolver>(opts));
    }
    usage_.resize(dies);
    health_.resize(dies);
    injectors_.resize(dies);
}

AnalogLinearSolver &
DiePool::die(std::size_t k)
{
    fatalIf(k >= solvers.size(), "DiePool: die ", k, " of ",
            solvers.size());
    return *solvers[k];
}

AnalogLinearSolver &
DiePool::nextDie()
{
    std::lock_guard<std::mutex> lock(cursor_mu);
    AnalogLinearSolver &s = *solvers[cursor];
    cursor = (cursor + 1) % solvers.size();
    return s;
}

BlockSolverFn
DiePool::blockSolver()
{
    return [this](const la::DenseMatrix &a, const la::Vector &rhs) {
        return nextDie().solve(a, rhs).u;
    };
}

BlockSolverFn
DiePool::refinedBlockSolver(std::size_t refine_passes,
                            double tolerance)
{
    fatalIf(refine_passes == 0,
            "DiePool: need at least one refinement pass");
    return [this, refine_passes,
            tolerance](const la::DenseMatrix &a,
                       const la::Vector &rhs) {
        RefineOptions opts;
        opts.tolerance = tolerance;
        opts.max_passes = refine_passes;
        opts.record_history = false;
        return refineSolve(nextDie(), a, rhs, opts).u;
    };
}

BlockSolverFn
DiePool::dieSolver(std::size_t k)
{
    fatalIf(k >= solvers.size(), "DiePool: die ", k, " of ",
            solvers.size());
    // Touches only die k's solver and usage slot: concurrent calls
    // for *different* k never share state.
    return [this, k](const la::DenseMatrix &a, const la::Vector &rhs) {
        AnalogSolveOutcome out = solvers[k]->solve(a, rhs);
        DieUsage &u = usage_[k];
        ++u.solves;
        u.analog_seconds += out.analog_seconds;
        u.phases.add(out.phases);
        return std::move(out.u);
    };
}

BlockSolverFn
DiePool::refinedDieSolver(std::size_t k, std::size_t refine_passes,
                          double tolerance)
{
    fatalIf(k >= solvers.size(), "DiePool: die ", k, " of ",
            solvers.size());
    fatalIf(refine_passes == 0,
            "DiePool: need at least one refinement pass");
    return [this, k, refine_passes,
            tolerance](const la::DenseMatrix &a,
                       const la::Vector &rhs) {
        RefineOptions opts;
        opts.tolerance = tolerance;
        opts.max_passes = refine_passes;
        opts.record_history = false;
        RefineOutcome out = refineSolve(*solvers[k], a, rhs, opts);
        DieUsage &u = usage_[k];
        u.solves += out.passes;
        u.analog_seconds += out.analog_seconds;
        u.phases.add(out.phases);
        return std::move(out.u);
    };
}

std::vector<BlockSolverFn>
DiePool::blockSolvers()
{
    std::vector<BlockSolverFn> bank;
    bank.reserve(solvers.size());
    for (std::size_t k = 0; k < solvers.size(); ++k)
        bank.push_back(dieSolver(k));
    return bank;
}

std::vector<BlockSolverFn>
DiePool::refinedBlockSolvers(std::size_t refine_passes,
                             double tolerance)
{
    std::vector<BlockSolverFn> bank;
    bank.reserve(solvers.size());
    for (std::size_t k = 0; k < solvers.size(); ++k)
        bank.push_back(refinedDieSolver(k, refine_passes, tolerance));
    return bank;
}

bool
DiePool::dieHasPattern(std::size_t k, std::uint64_t pattern_hash,
                       std::size_t n) const
{
    fatalIf(k >= solvers.size(), "DiePool: die ", k, " of ",
            solvers.size());
    return solvers[k]->hasPattern(pattern_hash, n);
}

std::vector<std::size_t>
DiePool::diesWithPattern(std::uint64_t pattern_hash,
                         std::size_t n) const
{
    std::vector<std::size_t> out;
    for (std::size_t k = 0; k < solvers.size(); ++k)
        if (solvers[k]->hasPattern(pattern_hash, n))
            out.push_back(k);
    return out;
}

std::uint64_t
DiePool::dieGeometryKey(std::size_t k) const
{
    fatalIf(k >= solvers.size(), "DiePool: die ", k, " of ",
            solvers.size());
    return solvers[k]->geometryKey();
}

bool
DiePool::installPattern(
    std::size_t k,
    std::shared_ptr<const compiler::CompiledStructure> cs, bool pin)
{
    fatalIf(k >= solvers.size(), "DiePool: die ", k, " of ",
            solvers.size());
    return solvers[k]->installStructure(std::move(cs), pin);
}

bool
DiePool::replicatePattern(std::size_t dst,
                          std::uint64_t pattern_hash, std::size_t n)
{
    fatalIf(dst >= solvers.size(), "DiePool: die ", dst, " of ",
            solvers.size());
    if (solvers[dst]->hasPattern(pattern_hash, n))
        return false;
    for (std::size_t src = 0; src < solvers.size(); ++src) {
        if (src == dst)
            continue;
        auto cs = solvers[src]->peekStructure(pattern_hash, n);
        if (cs && solvers[dst]->installStructure(std::move(cs)))
            return true;
    }
    return false;
}

std::size_t
DiePool::dropPattern(std::size_t k, std::uint64_t pattern_hash,
                     std::size_t n)
{
    fatalIf(k >= solvers.size(), "DiePool: die ", k, " of ",
            solvers.size());
    return solvers[k]->dropStructure(pattern_hash, n);
}

void
DiePool::recordUsage(std::size_t k, std::size_t solves,
                     double analog_seconds,
                     const SolvePhaseReport &phases)
{
    fatalIf(k >= solvers.size(), "DiePool: die ", k, " of ",
            solvers.size());
    std::lock_guard<std::mutex> lock(state_mu_);
    DieUsage &u = usage_[k];
    u.solves += solves;
    u.analog_seconds += analog_seconds;
    u.phases.add(phases);
}

void
DiePool::recordBatchUsage(std::size_t k, std::size_t members,
                          double analog_seconds,
                          const SolvePhaseReport &phases)
{
    fatalIf(k >= solvers.size(), "DiePool: die ", k, " of ",
            solvers.size());
    std::lock_guard<std::mutex> lock(state_mu_);
    DieUsage &u = usage_[k];
    u.solves += members;
    u.analog_seconds += analog_seconds;
    u.phases.add(phases);
    ++u.batches;
}

void
DiePool::recordSuccess(std::size_t k)
{
    fatalIf(k >= health_.size(), "DiePool: die ", k, " of ",
            health_.size());
    std::lock_guard<std::mutex> lock(state_mu_);
    DieHealth &h = health_[k];
    h.consecutive_failures = 0;
    ++h.successes;
    if (h.state == DieState::Probation) {
        debugLog("die pool: die ", k, " passed probation");
        h.state = DieState::Healthy;
    }
}

void
DiePool::quarantineLocked(std::size_t k)
{
    DieHealth &h = health_[k];
    ++h.quarantines;
    // Cooldown doubles (by default) with every re-quarantine, capped:
    // a die that keeps failing probation spends most rounds benched.
    double len = static_cast<double>(policy_.cooldown_rounds) *
                 std::pow(policy_.cooldown_growth,
                          static_cast<double>(h.quarantines - 1));
    h.cooldown_remaining = static_cast<std::size_t>(std::min(
        len, static_cast<double>(policy_.max_cooldown_rounds)));
    h.state = DieState::Quarantined;
    h.consecutive_failures = 0;
    inform("die pool: quarantining die ", k, " for ",
           h.cooldown_remaining, " rounds (quarantine #",
           h.quarantines, ")");
}

bool
DiePool::recordFailure(std::size_t k, bool dead)
{
    fatalIf(k >= health_.size(), "DiePool: die ", k, " of ",
            health_.size());
    std::lock_guard<std::mutex> lock(state_mu_);
    DieHealth &h = health_[k];
    ++h.failures;
    ++h.consecutive_failures;
    if (dead) {
        bool was_dead = h.state == DieState::Dead;
        if (!was_dead)
            inform("die pool: die ", k, " is dead");
        h.state = DieState::Dead;
        return !was_dead;
    }
    if (h.state == DieState::Dead)
        return false;
    // Requests already in flight when the die tripped keep failing
    // on the bench; one quarantine is enough — re-benching would
    // extend the cooldown and double-count the event.
    if (h.state == DieState::Quarantined)
        return false;
    // A probation probe exists to answer one question; failing it
    // re-benches immediately. Healthy dies get the full streak.
    if (h.state == DieState::Probation ||
        h.consecutive_failures >= policy_.quarantine_after) {
        quarantineLocked(k);
        return true;
    }
    return false;
}

bool
DiePool::dieAvailable(std::size_t k) const
{
    fatalIf(k >= health_.size(), "DiePool: die ", k, " of ",
            health_.size());
    std::lock_guard<std::mutex> lock(state_mu_);
    return dieAvailableLocked(k);
}

std::vector<std::size_t>
DiePool::availableDies() const
{
    std::lock_guard<std::mutex> lock(state_mu_);
    std::vector<std::size_t> out;
    for (std::size_t k = 0; k < health_.size(); ++k)
        if (dieAvailableLocked(k))
            out.push_back(k);
    return out;
}

std::vector<BlockSolverFn>
DiePool::availableBlockSolvers()
{
    std::vector<BlockSolverFn> bank;
    for (std::size_t k : availableDies())
        bank.push_back(dieSolver(k));
    return bank;
}

void
DiePool::tickRound()
{
    std::lock_guard<std::mutex> lock(state_mu_);
    for (std::size_t k = 0; k < health_.size(); ++k) {
        DieHealth &h = health_[k];
        if (h.state != DieState::Quarantined)
            continue;
        if (h.cooldown_remaining > 0)
            --h.cooldown_remaining;
        if (h.cooldown_remaining == 0) {
            debugLog("die pool: die ", k, " enters probation");
            h.state = DieState::Probation;
        }
    }
}

const DieHealth &
DiePool::health(std::size_t k) const
{
    fatalIf(k >= health_.size(), "DiePool: die ", k, " of ",
            health_.size());
    return health_[k];
}

void
DiePool::attachFaultInjector(
    std::size_t k, std::shared_ptr<fault::FaultInjector> injector)
{
    fatalIf(k >= solvers.size(), "DiePool: die ", k, " of ",
            solvers.size());
    injectors_[k] = std::move(injector);
    solvers[k]->setFaultInjector(injectors_[k].get());
}

fault::FaultInjector *
DiePool::faultInjector(std::size_t k) const
{
    fatalIf(k >= injectors_.size(), "DiePool: die ", k, " of ",
            injectors_.size());
    return injectors_[k].get();
}

std::size_t
DiePool::faultsSeen() const
{
    std::size_t total = 0;
    for (const auto &inj : injectors_)
        if (inj)
            total += inj->firedCount();
    return total;
}

PoolReport
DiePool::report() const
{
    PoolReport rep;
    {
        std::lock_guard<std::mutex> lock(state_mu_);
        rep.dies = usage_;
    }
    for (std::size_t k = 0; k < solvers.size(); ++k) {
        const compiler::CacheStats cs = solvers[k]->cacheStats();
        rep.dies[k].cache_hits = cs.hits;
        rep.dies[k].cache_misses = cs.misses;
        rep.dies[k].cache_evictions = cs.evictions;
    }
    return rep;
}

void
DiePool::resetUsage()
{
    std::lock_guard<std::mutex> lock(state_mu_);
    usage_.assign(solvers.size(), DieUsage{});
}

double
DiePool::totalAnalogSeconds() const
{
    double total = 0.0;
    for (const auto &s : solvers)
        total += s->totalAnalogSeconds();
    return total;
}

} // namespace aa::analog
