#include "aa/analog/ode_runner.hh"

#include <cmath>

#include "aa/common/logging.hh"
#include "aa/compiler/scaling.hh"
#include "aa/ode/trajectory.hh"

namespace aa::analog {

std::vector<double>
OdeWaveform::component(std::size_t i) const
{
    std::vector<double> w;
    w.reserve(states.size());
    for (const auto &s : states) {
        panicIf(i >= s.size(), "OdeWaveform::component out of range");
        w.push_back(s[i]);
    }
    return w;
}

AnalogOdeSolver::AnalogOdeSolver(AnalogSolverOptions options)
    : opts(std::move(options))
{}

AnalogOdeSolver::~AnalogOdeSolver() = default;

void
AnalogOdeSolver::ensureCapacity(const compiler::ResourceDemand &demand)
{
    if (chip_ && demand.fitsOn(chip_->config().geometry))
        return;
    fatalIf(chip_ && !opts.allow_regrow,
            "AnalogOdeSolver: system exceeds the die");
    chip::ChipConfig cfg;
    cfg.geometry = compiler::geometryFor(demand);
    cfg.spec = opts.spec;
    cfg.die_seed = opts.die_seed;
    chip_ = std::make_unique<chip::Chip>(cfg);
    driver_ = std::make_unique<isa::AcceleratorDriver>(*chip_);
    last_structure_.reset();
    if (opts.auto_calibrate)
        driver_->init();
}

OdeWaveform
AnalogOdeSolver::simulate(const la::DenseMatrix &a, const la::Vector &b,
                          const la::Vector &u0, double t_end,
                          const OdeRunOptions &run_opts)
{
    fatalIf(a.rows() != a.cols() || a.rows() != b.size() ||
                (!u0.empty() && u0.size() != b.size()),
            "AnalogOdeSolver::simulate: dimension mismatch");
    fatalIf(t_end <= 0.0, "AnalogOdeSolver: t_end must be positive");

    ensureCapacity(compiler::demandOf(a, b));

    // The SLE mapping realizes du/dt = rate*(b_s - A_s u); feeding it
    // -A keeps the ODE's natural sign: du/dt = rate*(b_s + (A/s) u).
    la::DenseMatrix neg_a = a;
    neg_a *= -1.0;

    // Overflow retries rescale values only — compile the structure
    // once (cached across simulate() calls of the same pattern).
    std::shared_ptr<const compiler::CompiledStructure> structure =
        cache_.fetch(neg_a, *chip_);

    OdeWaveform wave;
    double sigma = run_opts.solution_bound;
    for (std::size_t attempt = 0; attempt < run_opts.max_attempts;
         ++attempt) {
        ++wave.attempts;
        // The solution bound is the run's *contract* (waveform samples
        // are only meaningful inside it): always honor it, stretching
        // time if the forcing vector would overrun the DAC range.
        compiler::ScaledSystem scaled = compiler::scaleSystem(
            neg_a, b, u0, opts.spec, sigma,
            compiler::BiasPolicy::StretchTime);
        // Dynamics runs are legitimately non-SPD; the diagonal rate
        // bound (expect_spd = false) is O(n) per attempt.
        compiler::ParameterBinding binding(
            *structure, scaled,
            compiler::estimateConvergenceRate(scaled.a,
                                              /*expect_spd=*/false));
        if (structure.get() != last_structure_.get()) {
            structure->configureStructure(*driver_);
            last_structure_ = structure;
        }
        binding.apply(*structure, *driver_);

        // t_problem = (rate / s) * t_analog.
        double s = scaled.plan.gain_scale;
        double time_scale = opts.spec.integratorRate() / s;
        double t_analog_end = t_end / time_scale;

        const auto &cfg = chip_->config();
        auto cycles = static_cast<std::uint32_t>(
            std::ceil(t_analog_end * cfg.ctrl_clock_hz));
        driver_->setTimeout(std::max<std::uint32_t>(cycles, 1));
        chip_->setSteadyDetect(-1.0); // run the full span
        chip_->clearExceptions();

        // Readout path: either the modelling scope over integrator
        // states, or the chip's own ADCs sampling at the rate the
        // requested output density implies (Section II-B trade-off).
        std::vector<std::size_t> probe(b.size());
        auto &sim = chip_->simulator();
        const auto &net = chip_->netlist();
        for (std::size_t i = 0; i < b.size(); ++i) {
            probe[i] = sim.stateIndexOf(
                net.out(structure->integratorOf(i), 0));
            panicIf(probe[i] == static_cast<std::size_t>(-1),
                    "ode_runner: integrator not a state");
        }
        ode::Trajectory traj;
        if (run_opts.read_via_adc) {
            double rate = static_cast<double>(run_opts.samples) /
                          t_analog_end;
            std::vector<chip::BlockId> adcs;
            for (std::size_t i = 0; i < b.size(); ++i)
                adcs.push_back(structure->adcOf(i));
            chip_->enableWaveformCapture(rate, std::move(adcs));
        } else {
            // traj outlives the run; its observer captures only the
            // Trajectory pointer, so hand it over whole (wrapping it
            // in a ref-capturing lambda would dangle past this block).
            chip_->setExecObserver(traj.observer());
        }

        chip::ExecResult er = driver_->execStart();
        driver_->execStop();
        chip_->setExecObserver(nullptr);
        chip_->disableWaveformCapture();
        wave.analog_seconds += er.analog_time;

        if (chip_->anyException()) {
            sigma *= 2.0;
            debugLog("ode run: overflow, solution bound -> ", sigma);
            continue;
        }

        wave.time_scale = time_scale;
        wave.times.clear();
        wave.states.clear();

        if (run_opts.read_via_adc) {
            const auto &cap = chip_->capturedWaveform();
            wave.effective_adc_bits = cap.effective_bits;
            for (std::size_t k = 0; k < cap.times.size(); ++k) {
                la::Vector u(b.size());
                for (std::size_t i = 0; i < b.size(); ++i)
                    u[i] = scaled.plan.solution_scale *
                           cap.samples[k][i];
                wave.times.push_back(cap.times[k] * time_scale);
                wave.states.push_back(std::move(u));
            }
            return wave;
        }

        // Resample the scope capture uniformly in problem time.
        double span = std::min(t_analog_end, er.analog_time);
        for (std::size_t k = 0; k < run_opts.samples; ++k) {
            double ta = span * static_cast<double>(k) /
                        static_cast<double>(run_opts.samples - 1);
            la::Vector y = traj.sampleAt(ta);
            la::Vector u(b.size());
            for (std::size_t i = 0; i < b.size(); ++i)
                u[i] = scaled.plan.solution_scale * y[probe[i]];
            wave.times.push_back(ta * time_scale);
            wave.states.push_back(std::move(u));
        }
        return wave;
    }
    fatal("AnalogOdeSolver: dynamics kept overflowing; the system may "
          "be unstable (positive eigenvalues)");
}

} // namespace aa::analog
