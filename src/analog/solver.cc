#include "aa/analog/solver.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "aa/common/logging.hh"
#include "aa/compiler/scaling.hh"
#include "aa/fault/fault.hh"

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // namespace

namespace aa::analog {

AnalogLinearSolver::AnalogLinearSolver(AnalogSolverOptions options)
    : opts(std::move(options)),
      struct_mu_(std::make_unique<std::mutex>()),
      cache_mu_(std::make_unique<std::mutex>()),
      cache_(opts.program_cache_capacity)
{}

AnalogLinearSolver::~AnalogLinearSolver() = default;
AnalogLinearSolver::AnalogLinearSolver(AnalogLinearSolver &&) noexcept =
    default;
AnalogLinearSolver &
AnalogLinearSolver::operator=(AnalogLinearSolver &&) noexcept = default;

void
AnalogLinearSolver::ensureCapacity(
    const compiler::ResourceDemand &demand)
{
    std::lock_guard<std::mutex> lk(*struct_mu_);
    if (chip_ && demand.fitsOn(chip_->config().geometry))
        return;
    fatalIf(chip_ && !opts.allow_regrow,
            "AnalogLinearSolver: problem exceeds the die and regrow "
            "is disabled; decompose the problem (Section IV-B)");

    chip::ChipConfig cfg;
    cfg.geometry = compiler::geometryFor(demand);
    cfg.spec = opts.spec;
    cfg.die_seed = opts.die_seed;
    inform("analog solver: building a ", cfg.geometry.macroblocks,
           "-macroblock die (", cfg.geometry.integrators(),
           " integrators)");
    chip_ = std::make_unique<chip::Chip>(cfg);
    chip_->setFaultInjector(injector_); // injector follows the solver
    driver_ = std::make_unique<isa::AcceleratorDriver>(*chip_);
    // A fresh die carries no configuration: forget what was live on
    // the old one. Cached structures stay valid (block ids are
    // deterministic per geometry) but must be re-shipped. Prepared
    // solves staged against the old die die with it.
    last_structure_.reset();
    ++generation_;
    if (opts.auto_calibrate)
        driver_->init();
}

AnalogSolveOutcome
AnalogLinearSolver::solve(const la::DenseMatrix &a, const la::Vector &b,
                          const la::Vector &u0)
{
    fatalIf(a.rows() != a.cols() || a.rows() != b.size(),
            "AnalogLinearSolver::solve: dimension mismatch");
    fatalIf(b.empty(), "AnalogLinearSolver::solve: empty system");

    ensureCapacity(compiler::demandOf(a, b));

    // Structure depends only on the pattern and the geometry — shared
    // across every attempt of this solve (and, via the cache, across
    // solves of the same pattern).
    // Hit/miss attribution happens inside the fetch's own critical
    // section: a wider window would charge this solve for fetches a
    // concurrent pipeline stager makes on the same die.
    compiler::CacheStats fetch_delta;
    auto t_compile = Clock::now();
    SolveShared shared;
    {
        std::lock_guard<std::mutex> ck(*cache_mu_);
        compiler::CacheStats before = cache_.stats();
        shared.structure = cache_.fetch(a, *chip_);
        fetch_delta.hits = cache_.stats().hits - before.hits;
        fetch_delta.misses = cache_.stats().misses - before.misses;
    }
    double fetch_seconds = secondsSince(t_compile);

    // A scale hint (set by refinement) is consumed once; block
    // sequences with wildly different magnitudes (domain
    // decomposition strips) must each rediscover their own range.
    double hint = sticky_solution_scale;
    sticky_solution_scale = 0.0;

    AnalogSolveOutcome out = solveOne(a, b, u0, hint, shared);
    out.phases.compile_seconds += fetch_seconds;
    out.phases.cache_hits = fetch_delta.hits;
    out.phases.cache_misses = fetch_delta.misses;
    return out;
}

std::vector<AnalogSolveOutcome>
AnalogLinearSolver::solveBatch(const la::DenseMatrix &a,
                               const std::vector<la::Vector> &bs,
                               const std::vector<la::Vector> &u0s,
                               const std::vector<double> &scale_hints)
{
    fatalIf(bs.empty(), "AnalogLinearSolver::solveBatch: empty batch");
    fatalIf(!u0s.empty() && u0s.size() != bs.size(),
            "AnalogLinearSolver::solveBatch: u0 count mismatch");
    fatalIf(!scale_hints.empty() && scale_hints.size() != bs.size(),
            "AnalogLinearSolver::solveBatch: hint count mismatch");
    for (const la::Vector &b : bs) {
        fatalIf(a.rows() != a.cols() || a.rows() != b.size(),
                "AnalogLinearSolver::solveBatch: dimension mismatch");
        fatalIf(b.empty(),
                "AnalogLinearSolver::solveBatch: empty system");
    }

    ensureCapacity(compiler::demandOf(a, bs.front()));

    // One fetch, one eigen analysis (inside SolveShared) for the
    // whole batch; members 1..K-1 pay neither. Attribution stays
    // inside the fetch's critical section so a concurrent stager's
    // fetches are never charged to this batch.
    compiler::CacheStats fetch_delta;
    auto t_compile = Clock::now();
    SolveShared shared;
    {
        std::lock_guard<std::mutex> ck(*cache_mu_);
        compiler::CacheStats before = cache_.stats();
        shared.structure = cache_.fetch(a, *chip_);
        fetch_delta.hits = cache_.stats().hits - before.hits;
        fetch_delta.misses = cache_.stats().misses - before.misses;
    }
    double fetch_seconds = secondsSince(t_compile);

    std::vector<AnalogSolveOutcome> outs;
    outs.reserve(bs.size());
    static const la::Vector no_u0;
    double prev_sigma = 0.0, prev_bpeak = 0.0;
    for (std::size_t k = 0; k < bs.size(); ++k) {
        double hint = 0.0;
        if (!scale_hints.empty()) {
            hint = scale_hints[k];
        } else if (k == 0) {
            hint = sticky_solution_scale; // like the 1st of K solves
            sticky_solution_scale = 0.0;
        } else if (prev_sigma > 0.0 && prev_bpeak > 0.0) {
            // Derived range reuse: the previous member's ladder ended
            // on a working rung; rescaling its sigma by the RHS
            // magnitude ratio reproduces that rung exactly for a
            // proportional right-hand side (the pow2 stretch and
            // b_s = b / (s sigma) are both ratio-invariant), so the
            // member binds the registers the die already holds and
            // runs once. Non-proportional members start from an
            // informed guess and let the ladder correct from there.
            double bpeak = la::normInf(bs[k]);
            if (bpeak > 0.0)
                hint = prev_sigma * (bpeak / prev_bpeak);
        }
        outs.push_back(solveOne(a, bs[k],
                                u0s.empty() ? no_u0 : u0s[k], hint,
                                shared));
        prev_sigma = outs.back().solution_scale;
        prev_bpeak = la::normInf(bs[k]);
    }

    // Batch-shared compile work lands on member 0 (so per-member
    // phase reports still sum to the batch's true totals).
    outs.front().phases.compile_seconds += fetch_seconds;
    outs.front().phases.cache_hits = fetch_delta.hits;
    outs.front().phases.cache_misses = fetch_delta.misses;
    return outs;
}

AnalogSolveOutcome
AnalogLinearSolver::solveOne(const la::DenseMatrix &a,
                             const la::Vector &b, const la::Vector &u0,
                             double hint, SolveShared &shared,
                             PreparedSolve *prepared)
{
    AnalogSolveOutcome out;
    std::size_t config_bytes_before = driver_->configBytes();
    const std::shared_ptr<const compiler::CompiledStructure>
        &structure = shared.structure;

    bool hinted = hint > 0.0;
    double sigma = hinted ? hint : opts.initial_solution_scale;
    bool saw_overflow = false;
    double overflow_growth = 2.0;

    // lambdaMin(A / s) = lambdaMin(A) / s: run the eigen analysis on
    // the first attempt's scaled matrix only and rescale for retries
    // instead of re-running the power iteration. The reference lives
    // in SolveShared so a batch pays for it exactly once.
    bool &have_lambda = shared.have_lambda;
    double &lambda_ref = shared.lambda_ref;
    double &s_ref = shared.s_ref;
    auto t_compile = Clock::now();

    // Range-memory fast start. A residual-magnitude hint keeps b_s at
    // full DAC scale, so the first attempt overflows whenever
    // max|u| > hint — for refinement passes that attempt is a pure
    // tax (the ladder then settles one doubling up). When the last
    // hinted solve of this structure realized exactly one doubling,
    // start at 2 x hint in the ladder state that attempt would have
    // left behind. The skip is validated after the run: a readout
    // peak >= 0.51 proves the steady state at the raw hint exceeds
    // the linear range (steady scales exactly with 1/sigma), i.e. the
    // skipped attempt would have latched; anything less falls back to
    // replaying the canonical ladder from the raw hint.
    bool predicted = false;
    std::uint64_t range_key =
        structure->patternHash() * 1099511628211ULL ^
        structure->geometryKey();
    if (hinted) {
        auto it = range_memory_.find(range_key);
        if (it != range_memory_.end() && it->second == 2.0) {
            predicted = true;
            sigma *= 2.0;          // the ladder's second rung, exactly
            saw_overflow = true;   // presumed (validated below)
            overflow_growth = 4.0; // ladder state after one latch
            if (!have_lambda) {
                // Keep the eigen analysis bit-identical to the
                // canonical ladder: reference the raw-hint scaling,
                // not the fast-started one. (A / s is independent of
                // sigma, so a lambda shared from an earlier batch
                // member is the same number already.)
                t_compile = Clock::now();
                compiler::ScaledSystem canon = compiler::scaleSystem(
                    a, b, u0, opts.spec, hint,
                    compiler::BiasPolicy::StretchTime);
                lambda_ref = compiler::estimateConvergenceRate(
                    canon.a, /*expect_spd=*/true);
                s_ref = canon.plan.gain_scale;
                have_lambda = true;
                out.phases.compile_seconds += secondsSince(t_compile);
            }
        }
    }

    la::Vector u_hat;
    compiler::ScalingPlan plan;
    // An unhinted opening rung floors sigma on the DAC range (gains
    // stay a pure function of A — the cheap-rebind default for fresh
    // and batched traffic). Every other sigma is *informed* — a
    // caller's hint, or a retry derived from a real readout or latch
    // — so those rungs honor it exactly and stretch time instead
    // when b would not fit.
    bool first_rung = true;
    for (std::size_t attempt = 0; attempt < opts.max_attempts;
         ++attempt) {
        compiler::ScalingPlan attempt_plan;
        double lambda;
        if (prepared && attempt == 0) {
            // Prepared fast path: scaling, eigen analysis, binding,
            // and the config delta already happened off-thread.
            // sigma is the effective opening rung the canonical
            // FloorSigma attempt would have adopted; the ladder
            // continues from here exactly as if attempt 0 had run
            // the serial stages.
            first_rung = false;
            sigma = prepared->sigma;
            attempt_plan = prepared->binding.plan();
            lambda = lambda_ref * (s_ref / attempt_plan.gain_scale);
            ++out.attempts;

            auto t_configure = Clock::now();
            bool want_structure =
                structure.get() != last_structure_.get();
            // The staged delta only fits if the preparer predicted
            // the live structure right AND nothing reconfigured the
            // die since (the driver's epoch check). Otherwise fall
            // back to the canonical direct configuration — same
            // wire traffic, no overlap.
            bool flushed =
                prepared->staged_structure == want_structure &&
                driver_->flushStaged(prepared->staged);
            if (want_structure) {
                if (!flushed)
                    structure->configureStructure(*driver_);
                last_structure_ = structure;
            } else {
                out.phases.structure_reused = true;
            }
            if (!flushed)
                prepared->binding.apply(*structure, *driver_);
            out.phases.configure_seconds +=
                secondsSince(t_configure);
        } else {
            compiler::ScaledSystem scaled = compiler::scaleSystem(
                a, b, u0, opts.spec, sigma,
                first_rung && !hinted
                    ? compiler::BiasPolicy::FloorSigma
                    : compiler::BiasPolicy::StretchTime);
            first_rung = false;
            // Adopt the effective sigma (FloorSigma may have raised
            // it) so the retry ladder and range memory track what
            // actually ran, not what was asked for.
            sigma = scaled.plan.solution_scale;
            attempt_plan = scaled.plan;
            ++out.attempts;

            if (!have_lambda) {
                t_compile = Clock::now();
                lambda_ref = compiler::estimateConvergenceRate(
                    scaled.a, /*expect_spd=*/true);
                out.phases.compile_seconds += secondsSince(t_compile);
                s_ref = scaled.plan.gain_scale;
                have_lambda = true;
            }
            lambda = lambda_ref * (s_ref / scaled.plan.gain_scale);

            auto t_configure = Clock::now();
            compiler::ParameterBinding binding(*structure, scaled,
                                               lambda);
            if (structure.get() != last_structure_.get()) {
                structure->configureStructure(*driver_);
                last_structure_ = structure;
            } else {
                out.phases.structure_reused = true;
            }
            binding.apply(*structure, *driver_);
            out.phases.configure_seconds +=
                secondsSince(t_configure);
        }

        // Stop when every element's drift implies a residual error
        // below half an ADC LSB (the readout cannot see more).
        double lsb = opts.spec.linear_range /
                     static_cast<double>(1 << opts.spec.adc_bits);
        double rate_tol = 0.5 * lsb * opts.spec.integratorRate() *
                          std::max(lambda, 1e-9);
        chip_->setSteadyDetect(rate_tol);
        chip_->clearExceptions();

        auto t_run = Clock::now();
        chip::ExecResult er = driver_->execStart();
        driver_->execStop();
        out.analog_seconds += er.analog_time;
        total_analog_s += er.analog_time;

        auto exceptions = driver_->readExp();
        out.phases.run_seconds += secondsSince(t_run);
        bool overflow = std::any_of(exceptions.begin(),
                                    exceptions.end(),
                                    [](auto v) { return v != 0; });
        if (overflow) {
            // A unit left its linear range: the problem does not fit
            // the dynamic range at this sigma. Scale the solution
            // down (sigma up) and reattempt (Section III-B).
            // A latch at 2 x hint proves a fortiori that the skipped
            // raw-hint attempt would have latched too (steady state
            // scales with 1/sigma): the fast start stands validated
            // and the escalation below continues the canonical
            // ladder exactly.
            predicted = false;
            saw_overflow = true;
            ++out.overflow_retries;
            // Escalate on consecutive overflows: while the bias range
            // bounds the scaling, b_s is pinned at full scale and
            // modest sigma increases change nothing, so the step size
            // itself must grow.
            sigma *= overflow_growth;
            overflow_growth *= 2.0;
            debugLog("analog solve: overflow, sigma -> ", sigma);
            continue;
        }

        auto t_readout = Clock::now();
        u_hat = structure->readSolution(*driver_, opts.adc_samples);
        out.phases.readout_seconds += secondsSince(t_readout);
        plan = attempt_plan;
        out.converged = er.steady;

        double peak = la::normInf(u_hat);
        if (predicted) {
            predicted = false;
            if (peak < 0.51) {
                // Unproven: the raw-hint attempt might not have
                // latched. Replay the canonical ladder from the raw
                // hint; the fast-started run was a wasted probe.
                debugLog("analog solve: fast start unproven (peak ",
                         peak, "), replaying from the hint");
                sigma = hint;
                first_rung = true; // replay opens the canonical ladder
                saw_overflow = false;
                overflow_growth = 2.0;
                continue;
            }
            // peak >= 0.51 at 2 x hint means the steady state at the
            // raw hint tops 1.02 linear ranges — comfortably past the
            // latch threshold even after readout quantization/noise
            // (<< 0.01 of full scale). The skipped attempt would have
            // overflowed; proceed exactly as the ladder would have.
        }
        bool can_tighten = !saw_overflow &&
                           opts.underrange_threshold > 0.0 &&
                           attempt + 1 < opts.max_attempts;
        overflow_growth = 2.0; // a clean run resets the escalation
        if (can_tighten && peak > 0.0 &&
            peak < opts.underrange_threshold) {
            // Dynamic range underused: most ADC codes are wasted.
            // Scale the solution up toward ~0.7 of full scale.
            ++out.underrange_retries;
            sigma *= std::max(peak / 0.7, 1.0 / 64.0);
            debugLog("analog solve: underrange peak ", peak,
                     ", sigma -> ", sigma);
            continue;
        }
        break;
    }

    if (u_hat.empty())
        throw SolveRangeError();

    if (hinted) {
        // final sigma / hint is exact in fp for pure doublings, so
        // the == 2.0 fast-start test above is safe.
        range_memory_[range_key] = plan.solution_scale / hint;
        if (range_memory_.size() > 256)
            range_memory_.clear(); // drop stale patterns, stay tiny
    }

    out.u = compiler::unscaleSolution(u_hat, plan);
    out.solution_scale = plan.solution_scale;
    out.gain_scale = plan.gain_scale;
    out.phases.config_bytes =
        driver_->configBytes() - config_bytes_before;
    // Cache hit/miss attribution lives in solve()/solveBatch(): the
    // fetch is per-solve there but per-batch here.
    return out;
}

PreparedSolve
AnalogLinearSolver::prepareSolve(
    const la::DenseMatrix &a, const la::Vector &b,
    const la::Vector &u0,
    const compiler::CompiledStructure *predicted_live)
{
    PreparedSolve prep;
    if (a.rows() != a.cols() || a.rows() != b.size() || b.empty())
        return prep;
    if (!u0.empty() && u0.size() != b.size())
        return prep;

    // The heavy, pure host math first — no die state touched, no
    // lock held. These are exactly the stages the canonical unhinted
    // attempt 0 would run (FloorSigma at the initial scale), so the
    // consumer continues the ladder bit-identically.
    auto t_compile = Clock::now();
    compiler::ScaledSystem scaled = compiler::scaleSystem(
        a, b, u0, opts.spec, opts.initial_solution_scale,
        compiler::BiasPolicy::FloorSigma);
    prep.sigma = scaled.plan.solution_scale;
    prep.lambda_ref = compiler::estimateConvergenceRate(
        scaled.a, /*expect_spd=*/true);
    prep.s_ref = scaled.plan.gain_scale;
    prep.phases.compile_seconds += secondsSince(t_compile);

    std::lock_guard<std::mutex> lk(*struct_mu_);
    // A preparer never regrows: a problem that does not fit the
    // current die (or a die not built yet) takes the cold path on
    // the executor instead.
    if (!chip_ ||
        !compiler::demandOf(a, b).fitsOn(chip_->config().geometry))
        return prep;

    // Observational lookup only: a prepare must never move the LRU
    // order or claim the hit/miss — preps race the executor (and can
    // be discarded on a generation bump), so attribution here would
    // depend on stager/executor interleaving. The consumer's
    // execute-time fetch owns the attribution, taking this privately
    // compiled structure as a donor on a miss.
    auto t_fetch = Clock::now();
    {
        std::lock_guard<std::mutex> ck(*cache_mu_);
        prep.structure = cache_.lookup(a, *chip_);
    }
    if (!prep.structure)
        prep.structure =
            std::make_shared<const compiler::CompiledStructure>(
                a, *chip_);
    prep.phases.compile_seconds += secondsSince(t_fetch);

    auto t_configure = Clock::now();
    prep.binding = compiler::ParameterBinding(*prep.structure, scaled,
                                              prep.lambda_ref);
    prep.staged_structure = prep.structure.get() != predicted_live;
    driver_->beginStaging(prep.staged);
    if (prep.staged_structure)
        prep.structure->configureStructure(*driver_);
    prep.binding.apply(*prep.structure, *driver_);
    driver_->endStaging();
    prep.phases.configure_seconds += secondsSince(t_configure);

    prep.generation = generation_;
    prep.valid = true;
    return prep;
}

AnalogSolveOutcome
AnalogLinearSolver::solvePrepared(const la::DenseMatrix &a,
                                  const la::Vector &b,
                                  const la::Vector &u0,
                                  PreparedSolve &&prepared)
{
    fatalIf(a.rows() != a.cols() || a.rows() != b.size(),
            "AnalogLinearSolver::solve: dimension mismatch");
    fatalIf(b.empty(), "AnalogLinearSolver::solve: empty system");

    ensureCapacity(compiler::demandOf(a, b));

    bool usable;
    {
        std::lock_guard<std::mutex> lk(*struct_mu_);
        usable = prepared.valid && prepared.generation == generation_;
    }
    // A pending solution-scale hint means the caller wants the hinted
    // ladder, which the preparation (unhinted by construction) did
    // not stage. Fall back wholesale — identical result, no overlap.
    if (!usable || sticky_solution_scale != 0.0)
        return solve(a, b, u0);

    SolveShared shared;
    // The canonical structure fetch happens here, on the executor, in
    // stamped order — the prepare only donated a compile. A hit hands
    // back the resident object (pointer-identical to what the
    // unprepared path would use, which the live-structure check
    // relies on); a miss installs the donor.
    {
        std::lock_guard<std::mutex> ck(*cache_mu_);
        compiler::CacheStats before = cache_.stats();
        shared.structure = cache_.fetch(a, *chip_, prepared.structure);
        prepared.phases.cache_hits =
            cache_.stats().hits - before.hits;
        prepared.phases.cache_misses =
            cache_.stats().misses - before.misses;
    }
    prepared.structure = shared.structure;
    shared.have_lambda = true;
    shared.lambda_ref = prepared.lambda_ref;
    shared.s_ref = prepared.s_ref;

    AnalogSolveOutcome out = solveOne(a, b, u0, 0.0, shared,
                                      &prepared);
    // The prepared host work is real solve work — fold it into the
    // phase report exactly where the serial path would have spent it.
    out.phases.compile_seconds += prepared.phases.compile_seconds;
    out.phases.configure_seconds += prepared.phases.configure_seconds;
    out.phases.cache_hits = prepared.phases.cache_hits;
    out.phases.cache_misses = prepared.phases.cache_misses;
    return out;
}

void
AnalogLinearSolver::setFaultInjector(fault::FaultInjector *injector)
{
    injector_ = injector;
    if (chip_)
        chip_->setFaultInjector(injector);
}

void
AnalogLinearSolver::recover()
{
    if (!driver_)
        return;
    // Forget every shortcut the host would otherwise take: the shadow
    // file (so persisted corrupt registers get genuinely rewritten),
    // the live-structure pointer (so the crossbar reconfigures), and
    // the range memory (its doubling record came from a run that can
    // no longer be trusted). Then recalibrate, which also repairs a
    // calibration-loss fault.
    driver_->resetShadow();
    last_structure_.reset();
    range_memory_.clear();
    sticky_solution_scale = 0.0;
    driver_->init(); // throws DieDeadError through transact if dead
}

VerifiedSolveOutcome
AnalogLinearSolver::solveVerified(const la::DenseMatrix &a,
                                  const la::Vector &b,
                                  const la::Vector &u0,
                                  const VerifyOptions &verify,
                                  PreparedSolve *prepared)
{
    VerifiedSolveOutcome v;
    const double b_norm = la::norm2(b);
    AnalogSolveOutcome folded; // bookkeeping from rejected tries
    for (std::size_t rep = 0;; ++rep) {
        try {
            // Only the first try can consume the prepared stages; a
            // recovery retry reconfigures from scratch by design.
            AnalogSolveOutcome out =
                rep == 0 && prepared
                    ? solvePrepared(a, b, u0, std::move(*prepared))
                    : solve(a, b, u0);
            // Believe nothing until the digital residual agrees.
            la::Vector r = a.apply(out.u);
            for (std::size_t i = 0; i < r.size(); ++i)
                r[i] = b[i] - r[i];
            v.rel_residual = b_norm > 0.0 ? la::norm2(r) / b_norm
                                          : la::norm2(r);
            out.attempts += folded.attempts;
            out.overflow_retries += folded.overflow_retries;
            out.underrange_retries += folded.underrange_retries;
            out.analog_seconds += folded.analog_seconds;
            out.phases.add(folded.phases);
            v.outcome = std::move(out);
            if (v.rel_residual <= verify.rel_residual) {
                v.ok = true;
                v.reason.clear();
                return v;
            }
            folded = v.outcome; // keep bookkeeping for the next try
            v.reason = "residual check failed (rel residual " +
                       std::to_string(v.rel_residual) + " > " +
                       std::to_string(verify.rel_residual) + ")";
        } catch (const SolveRangeError &err) {
            v.reason = err.what();
        }
        if (rep >= verify.max_recoveries)
            return v; // ok stays false; reason says why
        ++v.recoveries;
        debugLog("analog solve: verification failed (", v.reason,
                 "), recovering (", v.recoveries, ")");
        recover(); // DieDeadError propagates: nothing local helps
    }
}

std::uint64_t
AnalogLinearSolver::geometryKey() const
{
    std::lock_guard<std::mutex> lk(*struct_mu_);
    return chip_ ? compiler::geometryKeyOf(chip_->config().geometry)
                 : 0;
}

bool
AnalogLinearSolver::installStructure(
    std::shared_ptr<const compiler::CompiledStructure> cs, bool pin)
{
    if (!cs)
        return false;
    std::lock_guard<std::mutex> lk(*struct_mu_);
    // A die that has built its chip only accepts structures compiled
    // for that geometry; a die with no chip yet takes the structure
    // on faith (fetch keys include geometry, so a mismatched install
    // simply never hits).
    if (chip_ && cs->geometryKey() !=
                     compiler::geometryKeyOf(chip_->config().geometry))
        return false;
    std::lock_guard<std::mutex> ck(*cache_mu_);
    cache_.install(std::move(cs), pin);
    return true;
}

std::size_t
AnalogLinearSolver::dropStructure(std::uint64_t pattern_hash,
                                  std::size_t n)
{
    std::lock_guard<std::mutex> ck(*cache_mu_);
    return cache_.erase(pattern_hash, n);
}

std::size_t
AnalogLinearSolver::configBytes() const
{
    return driver_ ? driver_->configBytes() : 0;
}

chip::Chip &
AnalogLinearSolver::chipRef()
{
    fatalIf(!chip_, "chipRef: no die built yet (solve first)");
    return *chip_;
}

isa::AcceleratorDriver &
AnalogLinearSolver::driverRef()
{
    fatalIf(!driver_, "driverRef: no die built yet (solve first)");
    return *driver_;
}

} // namespace aa::analog
