#include "aa/analog/solver.hh"

#include <algorithm>
#include <cmath>

#include "aa/common/logging.hh"
#include "aa/compiler/scaling.hh"

namespace aa::analog {

AnalogLinearSolver::AnalogLinearSolver(AnalogSolverOptions options)
    : opts(std::move(options))
{}

AnalogLinearSolver::~AnalogLinearSolver() = default;
AnalogLinearSolver::AnalogLinearSolver(AnalogLinearSolver &&) noexcept =
    default;
AnalogLinearSolver &
AnalogLinearSolver::operator=(AnalogLinearSolver &&) noexcept = default;

void
AnalogLinearSolver::ensureCapacity(
    const compiler::ResourceDemand &demand)
{
    if (chip_ && demand.fitsOn(chip_->config().geometry))
        return;
    fatalIf(chip_ && !opts.allow_regrow,
            "AnalogLinearSolver: problem exceeds the die and regrow "
            "is disabled; decompose the problem (Section IV-B)");

    chip::ChipConfig cfg;
    cfg.geometry = compiler::geometryFor(demand);
    cfg.spec = opts.spec;
    cfg.die_seed = opts.die_seed;
    inform("analog solver: building a ", cfg.geometry.macroblocks,
           "-macroblock die (", cfg.geometry.integrators(),
           " integrators)");
    chip_ = std::make_unique<chip::Chip>(cfg);
    driver_ = std::make_unique<isa::AcceleratorDriver>(*chip_);
    if (opts.auto_calibrate)
        driver_->init();
}

AnalogSolveOutcome
AnalogLinearSolver::solve(const la::DenseMatrix &a, const la::Vector &b,
                          const la::Vector &u0)
{
    fatalIf(a.rows() != a.cols() || a.rows() != b.size(),
            "AnalogLinearSolver::solve: dimension mismatch");
    fatalIf(b.empty(), "AnalogLinearSolver::solve: empty system");

    ensureCapacity(compiler::demandOf(a, b));

    AnalogSolveOutcome out;
    // A scale hint (set by refinement) is consumed once; block
    // sequences with wildly different magnitudes (domain
    // decomposition strips) must each rediscover their own range.
    double sigma = sticky_solution_scale > 0.0
                       ? sticky_solution_scale
                       : opts.initial_solution_scale;
    sticky_solution_scale = 0.0;
    bool saw_overflow = false;
    double overflow_growth = 2.0;

    la::Vector u_hat;
    compiler::ScalingPlan plan;
    for (std::size_t attempt = 0; attempt < opts.max_attempts;
         ++attempt) {
        ++out.attempts;
        compiler::ScaledSystem scaled =
            compiler::scaleSystem(a, b, u0, opts.spec, sigma);
        compiler::SleMapping mapping(scaled, *chip_);
        mapping.configure(*driver_);

        // Stop when every element's drift implies a residual error
        // below half an ADC LSB (the readout cannot see more).
        double lsb = opts.spec.linear_range /
                     static_cast<double>(1 << opts.spec.adc_bits);
        double rate_tol = 0.5 * lsb * opts.spec.integratorRate() *
                          std::max(mapping.lambdaMin(), 1e-9);
        chip_->setSteadyDetect(rate_tol);
        chip_->clearExceptions();

        chip::ExecResult er = driver_->execStart();
        driver_->execStop();
        out.analog_seconds += er.analog_time;
        total_analog_s += er.analog_time;

        auto exceptions = driver_->readExp();
        bool overflow = std::any_of(exceptions.begin(),
                                    exceptions.end(),
                                    [](auto v) { return v != 0; });
        if (overflow) {
            // A unit left its linear range: the problem does not fit
            // the dynamic range at this sigma. Scale the solution
            // down (sigma up) and reattempt (Section III-B).
            saw_overflow = true;
            ++out.overflow_retries;
            // Escalate on consecutive overflows: while the bias range
            // bounds the scaling, b_s is pinned at full scale and
            // modest sigma increases change nothing, so the step size
            // itself must grow.
            sigma *= overflow_growth;
            overflow_growth *= 2.0;
            debugLog("analog solve: overflow, sigma -> ", sigma);
            continue;
        }

        u_hat = mapping.readSolution(*driver_, opts.adc_samples);
        plan = mapping.plan();
        out.converged = er.steady;

        double peak = la::normInf(u_hat);
        bool can_tighten = !saw_overflow &&
                           opts.underrange_threshold > 0.0 &&
                           attempt + 1 < opts.max_attempts;
        overflow_growth = 2.0; // a clean run resets the escalation
        if (can_tighten && peak > 0.0 &&
            peak < opts.underrange_threshold) {
            // Dynamic range underused: most ADC codes are wasted.
            // Scale the solution up toward ~0.7 of full scale.
            ++out.underrange_retries;
            sigma *= std::max(peak / 0.7, 1.0 / 64.0);
            debugLog("analog solve: underrange peak ", peak,
                     ", sigma -> ", sigma);
            continue;
        }
        break;
    }

    fatalIf(u_hat.empty(),
            "AnalogLinearSolver: every attempt overflowed; matrix may "
            "not be positive definite");

    out.u = compiler::unscaleSolution(u_hat, plan);
    out.solution_scale = plan.solution_scale;
    out.gain_scale = plan.gain_scale;
    return out;
}

std::size_t
AnalogLinearSolver::configBytes() const
{
    return driver_ ? driver_->link().bytesDown() : 0;
}

chip::Chip &
AnalogLinearSolver::chipRef()
{
    fatalIf(!chip_, "chipRef: no die built yet (solve first)");
    return *chip_;
}

isa::AcceleratorDriver &
AnalogLinearSolver::driverRef()
{
    fatalIf(!driver_, "driverRef: no die built yet (solve first)");
    return *driver_;
}

} // namespace aa::analog
