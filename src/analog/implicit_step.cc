#include "aa/analog/implicit_step.hh"

#include "aa/common/logging.hh"

namespace aa::analog {

namespace {

/** M = I + dt A (SPD whenever A is). */
la::CsrMatrix
backwardEulerMatrix(const la::CsrMatrix &a, double dt)
{
    std::vector<la::Triplet> trips;
    trips.reserve(a.nnz() + a.rows());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        auto cols = a.rowCols(i);
        auto vals = a.rowVals(i);
        for (std::size_t e = 0; e < cols.size(); ++e)
            trips.push_back({i, cols[e], dt * vals[e]});
        trips.push_back({i, i, 1.0});
    }
    return la::CsrMatrix::fromTriplets(a.rows(), a.cols(),
                                       std::move(trips));
}

} // namespace

ImplicitStepOutcome
backwardEulerDecomposed(const la::CsrMatrix &a, const la::Vector &b,
                        const la::Vector &u0,
                        const std::vector<pde::IndexSet> &partition,
                        std::vector<BlockSolverFn> die_solvers,
                        const ImplicitStepOptions &opts)
{
    fatalIf(a.rows() != a.cols() || a.rows() != b.size(),
            "backwardEulerDecomposed: dimension mismatch");
    fatalIf(opts.dt <= 0.0, "backwardEulerDecomposed: dt must be > 0");

    // One compiled sweep for the whole march: M never changes, so
    // per-block submatrices, workspaces, and each die's program stay
    // valid from the first step to the last.
    la::CsrMatrix m = backwardEulerMatrix(a, opts.dt);
    BlockJacobiScheduler sched(m, partition, std::move(die_solvers),
                               opts.decompose);

    ImplicitStepOutcome out;
    out.u = u0.empty() ? la::Vector(a.rows()) : u0;
    out.per_die_solves.assign(sched.dies(), 0);

    la::Vector rhs(a.rows());
    for (std::size_t n = 0; n < opts.steps; ++n) {
        rhs = out.u;
        la::axpy(opts.dt, b, rhs);
        // Warm start from u_n: the outer iteration only has to move
        // the solution by one step's worth of dynamics.
        DecomposeOutcome step = sched.solve(rhs, out.u);
        out.u = std::move(step.u);
        ++out.steps;
        out.block_solves += step.block_solves;
        out.outer_sweeps += step.outer_iterations;
        out.all_converged = out.all_converged && step.converged;
        for (std::size_t d = 0; d < step.per_die_solves.size(); ++d)
            out.per_die_solves[d] += step.per_die_solves[d];
        if (opts.record_trajectory)
            out.trajectory.push_back(out.u);
    }
    return out;
}

ImplicitStepOutcome
backwardEulerPool(DiePool &pool, const la::CsrMatrix &a,
                  const la::Vector &b, const la::Vector &u0,
                  const ImplicitStepOptions &opts)
{
    auto partition =
        pde::rangePartition(a.rows(), opts.decompose.max_block_vars);
    return backwardEulerDecomposed(a, b, u0, partition,
                                   pool.blockSolvers(), opts);
}

} // namespace aa::analog
