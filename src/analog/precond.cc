/**
 * @file
 * AnalogLinearSolver::solvePreconditioned — the analog-preconditioned
 * Krylov lane. The host runs the outer iteration (flexible CG /
 * FGMRES, src/solver/krylov.hh); this file supplies the inner
 * preconditioner: one unrefined analog solve per apply against a
 * SolveShared context that persists across the whole outer loop, so
 * the structure fetch and eigen analysis happen once and each apply
 * is a pure rebind-of-b with a derived range hint — the solveBatch
 * amortization, applied to a residual sequence instead of a batch.
 */

#include <chrono>
#include <cmath>

#include "aa/analog/solver.hh"
#include "aa/common/logging.hh"
#include "aa/la/operator.hh"
#include "aa/solver/krylov.hh"

namespace aa::analog {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // namespace

PreconditionedSolveOutcome
AnalogLinearSolver::solvePreconditioned(const la::DenseMatrix &a,
                                        const la::Vector &b,
                                        const PrecondSolveOptions &popts)
{
    fatalIf(a.rows() != a.cols() || a.rows() != b.size(),
            "AnalogLinearSolver::solvePreconditioned: dimension "
            "mismatch");
    fatalIf(b.empty(),
            "AnalogLinearSolver::solvePreconditioned: empty system");

    ensureCapacity(compiler::demandOf(a, b));

    PreconditionedSolveOutcome out;

    // One structure fetch for the entire outer iteration, with
    // hit/miss attribution inside the fetch's own critical section
    // (same discipline as solve()/solveBatch()).
    compiler::CacheStats fetch_delta;
    auto t_compile = Clock::now();
    SolveShared shared;
    {
        std::lock_guard<std::mutex> ck(*cache_mu_);
        compiler::CacheStats before = cache_.stats();
        shared.structure = cache_.fetch(a, *chip_);
        fetch_delta.hits = cache_.stats().hits - before.hits;
        fetch_delta.misses = cache_.stats().misses - before.misses;
    }
    out.phases.compile_seconds += secondsSince(t_compile);
    out.phases.cache_hits = fetch_delta.hits;
    out.phases.cache_misses = fetch_delta.misses;

    // A sticky solution-scale hint is a contract with the *next
    // solve*; consume it for the first apply like solve() would.
    double prev_sigma = sticky_solution_scale;
    sticky_solution_scale = 0.0;
    double prev_rpeak = 0.0;

    static const la::Vector no_u0;
    solver::PrecondFn analog_apply = [&](const la::Vector &r,
                                         la::Vector &z) {
        ++out.precond_applies;
        const double rpeak = la::normInf(r);
        if (rpeak == 0.0) {
            z = r; // exact residual: nothing to precondition
            return true;
        }
        // Derived range reuse across applies: the Krylov residual
        // sequence shrinks roughly geometrically, so the previous
        // apply's working rung rescaled by the residual-peak ratio
        // is the right opening rung — a proportional rebind lands in
        // one attempt and ships only DAC-bias deltas.
        double hint = 0.0;
        if (prev_sigma > 0.0 && prev_rpeak > 0.0)
            hint = prev_sigma * (rpeak / prev_rpeak);
        else if (prev_sigma > 0.0)
            hint = prev_sigma;
        try {
            AnalogSolveOutcome o = solveOne(a, r, no_u0, hint, shared);
            out.analog_seconds += o.analog_seconds;
            out.phases.add(o.phases);
            prev_sigma = o.solution_scale;
            prev_rpeak = rpeak;
            z = std::move(o.u);
            return true;
        } catch (const SolveRangeError &) {
            // This apply is unservable at any scale the ladder
            // tried; the outer iteration continues with z = r. The
            // recorded range state is no longer trustworthy.
            ++out.precond_fallbacks;
            prev_sigma = 0.0;
            prev_rpeak = 0.0;
            return false;
        }
        // DieDeadError (and anything else) propagates: the caller
        // owns rerouting and degradation.
    };

    const bool symmetric = a.isSymmetric();
    const bool use_cg =
        popts.method == PrecondSolveOptions::Method::Cg ||
        (popts.method == PrecondSolveOptions::Method::Auto &&
         symmetric);
    out.used_fgmres = !use_cg;

    la::DenseOperator op(a);
    solver::KrylovOptions ko;
    ko.max_iters = popts.max_iters;
    ko.tol = popts.tolerance;
    ko.restart = popts.restart;
    ko.record_residuals = popts.record_history;
    ko.keep_going = popts.keep_going;
    solver::KrylovResult kr =
        use_cg ? solver::flexibleCg(op, b, analog_apply, ko)
               : solver::fgmres(op, b, analog_apply, ko);

    out.u = std::move(kr.x);
    out.converged = kr.converged;
    out.iterations = kr.iterations;
    out.restarts = kr.restarts;
    out.stop_detail = kr.converged ? std::string() : kr.stop_detail;
    if (!kr.converged && out.stop_detail.empty())
        out.stop_detail =
            kr.stop == solver::KrylovStop::MaxIterations
                ? "krylov iteration budget exhausted"
                : "krylov did not converge";
    const double bnorm = la::norm2(b);
    out.final_residual =
        kr.final_residual / (bnorm > 0.0 ? bnorm : 1.0);
    out.residual_history = std::move(kr.residual_history);
    return out;
}

} // namespace aa::analog
