/**
 * @file
 * Nonlinear systems on the analog accelerator — the paper's closing
 * conjecture (Section VI-F): "Other numerical subroutines, such as
 * those used in finding solutions to nonlinear systems of equations
 * ... may show promise for analog computing."
 *
 * Two routes are implemented for F(u) = A u + phi(u) - b = 0 with an
 * elementwise monotone nonlinearity phi:
 *
 *  1. The direct continuous-time flow du/dt = b - A u - phi(u),
 *     realized in hardware with one SRAM lookup table per variable
 *     (the chip's "arbitrary nonlinear functions" units). One analog
 *     run replaces the entire Newton iteration.
 *
 *  2. Hybrid Newton: the digital host iterates Newton-Raphson and
 *     offloads each Jacobian solve J delta = -F to the analog LINEAR
 *     solver — the paper's "implicit solvers that require solving
 *     systems of algebraic equations at each time step".
 */

#ifndef AA_ANALOG_NONLINEAR_HH
#define AA_ANALOG_NONLINEAR_HH

#include "aa/analog/solver.hh"
#include "aa/solver/newton.hh"

namespace aa::analog {

/** Options for the direct nonlinear flow. */
struct NonlinearFlowOptions {
    /** Expected bound on max |u| at the root (sigma start). */
    double initial_solution_scale = 1.0;
    std::size_t max_attempts = 8;
    std::size_t adc_samples = 4;
};

/** Outcome of a nonlinear flow solve. */
struct NonlinearFlowOutcome {
    la::Vector u;
    bool converged = false;
    std::size_t attempts = 0;
    double analog_seconds = 0.0;
    double solution_scale = 1.0;
    double gain_scale = 1.0;
    double final_residual = 0.0; ///< ||F(u)||_2, digitally checked
};

/**
 * Solves F(u) = A u + phi(u) - b = 0 by running the continuous-time
 * flow on the accelerator: per variable one integrator, one LUT leaf
 * carrying -phi, plus the usual linear mapping. Convergence requires
 * A SPD and phi monotone non-decreasing (the flow's Jacobian is then
 * negative definite everywhere).
 */
class AnalogNonlinearSolver
{
  public:
    explicit AnalogNonlinearSolver(AnalogSolverOptions opts = {});
    ~AnalogNonlinearSolver();

    NonlinearFlowOutcome solve(const solver::NonlinearSystem &sys,
                               const NonlinearFlowOptions &flow = {});

    double totalAnalogSeconds() const { return total_analog_s; }
    chip::Chip &chipRef();

  private:
    void ensureCapacity(const compiler::ResourceDemand &demand);

    AnalogSolverOptions opts;
    std::unique_ptr<chip::Chip> chip_;
    std::unique_ptr<isa::AcceleratorDriver> driver_;
    double total_analog_s = 0.0;
};

/** Options for hybrid Newton. */
struct HybridNewtonOptions {
    std::size_t max_iters = 30;
    double tol = 1e-6; ///< on ||F||_2 relative to ||b||_2 (or 1)
    /** Digital backtracking line search on the analog step (residual
     *  evaluations are digital and cheap; the step is reused). */
    std::size_t max_backtracks = 8;
    bool record_history = false;
};

/** Outcome of a hybrid Newton solve. */
struct HybridNewtonOutcome {
    la::Vector u;
    bool converged = false;
    std::size_t iterations = 0;
    std::size_t analog_linear_solves = 0;
    double final_residual = 0.0;
    std::vector<double> residual_history;
};

/**
 * Newton-Raphson with every Jacobian solve offloaded to the analog
 * linear solver. The ~8-bit accuracy of each analog delta acts like
 * an inexact Newton step: convergence degrades from quadratic to
 * linear but proceeds as long as the step error stays contractive.
 */
HybridNewtonOutcome hybridNewtonSolve(AnalogLinearSolver &linear,
                                      const solver::NonlinearSystem &sys,
                                      const HybridNewtonOptions &opts =
                                          {});

} // namespace aa::analog

#endif // AA_ANALOG_NONLINEAR_HH
