#include "aa/analog/nonlinear.hh"

#include <algorithm>
#include <cmath>
#include <deque>

#include "aa/common/logging.hh"
#include "aa/compiler/scaling.hh"
#include "aa/la/direct.hh"
#include "aa/la/eigen.hh"

namespace aa::analog {

using chip::BlockId;
using chip::PortRef;

namespace {

/** Demand of a nonlinear mapping: linear demand + one LUT per
 *  variable and one extra fanout leaf per tree. */
compiler::ResourceDemand
nonlinearDemand(const la::DenseMatrix &a, const la::Vector &b,
                std::size_t fanout_copies = 2)
{
    compiler::ResourceDemand d;
    std::size_t n = b.size();
    d.integrators = n;
    d.adcs = n;
    d.dacs = n;
    d.luts = n;
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t col_nnz = 0;
        for (std::size_t j = 0; j < n; ++j) {
            if (a(j, i) != 0.0) {
                ++col_nnz;
                ++d.multipliers;
            }
        }
        // Leaves: column multipliers + ADC + LUT input.
        std::size_t leaves = col_nnz + 2;
        d.fanout_blocks += (leaves - 2) / (fanout_copies - 1) + 1;
    }
    return d;
}

/** Peak of |phi| over the input interval [-m, m] (sampled). */
double
phiPeak(const std::function<double(double)> &phi, double m)
{
    double peak = 0.0;
    for (int k = -64; k <= 64; ++k) {
        double x = m * static_cast<double>(k) / 64.0;
        peak = std::max(peak, std::fabs(phi(x)));
    }
    return peak;
}

} // namespace

AnalogNonlinearSolver::AnalogNonlinearSolver(AnalogSolverOptions o)
    : opts(std::move(o))
{}

AnalogNonlinearSolver::~AnalogNonlinearSolver() = default;

chip::Chip &
AnalogNonlinearSolver::chipRef()
{
    fatalIf(!chip_, "chipRef: no die built yet (solve first)");
    return *chip_;
}

void
AnalogNonlinearSolver::ensureCapacity(
    const compiler::ResourceDemand &demand)
{
    if (chip_ && demand.fitsOn(chip_->config().geometry))
        return;
    fatalIf(chip_ && !opts.allow_regrow,
            "AnalogNonlinearSolver: problem exceeds the die");
    chip::ChipConfig cfg;
    cfg.geometry = compiler::geometryFor(demand);
    cfg.spec = opts.spec;
    cfg.die_seed = opts.die_seed;
    inform("analog nonlinear solver: building a ",
           cfg.geometry.macroblocks, "-macroblock die");
    chip_ = std::make_unique<chip::Chip>(cfg);
    driver_ = std::make_unique<isa::AcceleratorDriver>(*chip_);
    if (opts.auto_calibrate)
        driver_->init();
}

NonlinearFlowOutcome
AnalogNonlinearSolver::solve(const solver::NonlinearSystem &sys,
                             const NonlinearFlowOptions &flow)
{
    std::size_t n = sys.size();
    fatalIf(sys.a.rows() != n || sys.a.cols() != n,
            "AnalogNonlinearSolver: dimension mismatch");
    fatalIf(!sys.phi, "AnalogNonlinearSolver: no nonlinearity; use "
                      "AnalogLinearSolver");

    ensureCapacity(nonlinearDemand(sys.a, sys.b));
    const auto &net = chip_->netlist();
    const auto &spec = chip_->config().spec;

    NonlinearFlowOutcome out;
    double sigma = flow.initial_solution_scale;
    double growth = 2.0;

    for (std::size_t attempt = 0; attempt < flow.max_attempts;
         ++attempt) {
        ++out.attempts;

        // Scaling: the usual gain/bias constraints plus the LUT
        // output range: |phi(sigma x)| / (s sigma) <= 0.95.
        constexpr double headroom = 0.95;
        double s = 1.0;
        if (sys.a.maxAbs() > 0.0)
            s = std::max(s, sys.a.maxAbs() /
                                (headroom * spec.max_gain));
        double b_peak = la::normInf(sys.b) / sigma;
        if (b_peak > 0.0)
            s = std::max(s, b_peak / headroom);
        double p_peak = phiPeak(sys.phi, sigma) / sigma;
        if (p_peak > 0.0)
            s = std::max(s, p_peak / headroom);

        // Configure: per variable an integrator, a fanout tree with
        // column multipliers + ADC + LUT leaves, DAC bias, and the
        // LUT carrying -phi(sigma x)/(s sigma).
        driver_->clearConfig();
        std::size_t next_mul = 0, next_fan = 0;
        for (std::size_t i = 0; i < n; ++i) {
            BlockId integ = chip_->integrators()[i];
            driver_->setIntInitial(integ, 0.0);
            driver_->setDacConstant(chip_->dacs()[i],
                                    sys.b[i] / (s * sigma));
            driver_->setFunction(
                chip_->luts()[i], [&, s, sigma](double x) {
                    return -sys.phi(sigma * x) / (s * sigma);
                });

            std::vector<PortRef> consumers;
            for (std::size_t j = 0; j < n; ++j) {
                if (sys.a(j, i) == 0.0)
                    continue;
                panicIf(next_mul >= chip_->multipliers().size(),
                        "nonlinear mapper: multiplier pool");
                BlockId m = chip_->multipliers()[next_mul++];
                driver_->setMulGain(m, -sys.a(j, i) / s);
                consumers.push_back(net.in(m, 0));
                driver_->setConn(net.out(m, 0),
                                 net.in(chip_->integrators()[j], 0));
            }
            consumers.push_back(net.in(chip_->adcs()[i], 0));
            consumers.push_back(net.in(chip_->luts()[i], 0));
            driver_->setConn(net.out(chip_->luts()[i], 0),
                             net.in(integ, 0));
            driver_->setConn(net.out(chip_->dacs()[i], 0),
                             net.in(integ, 0));

            std::deque<PortRef> available;
            available.push_back(net.out(integ, 0));
            while (available.size() < consumers.size()) {
                panicIf(next_fan >= chip_->fanouts().size(),
                        "nonlinear mapper: fanout pool");
                BlockId f = chip_->fanouts()[next_fan++];
                PortRef feed = available.front();
                available.pop_front();
                driver_->setConn(feed, net.in(f, 0));
                for (std::size_t o = 0; o < net.outputCount(f); ++o)
                    available.push_back(net.out(f, o));
            }
            for (std::size_t k = 0; k < consumers.size(); ++k)
                driver_->setConn(available[k], consumers[k]);
        }

        // Convergence rate bound from the linear part alone (phi
        // monotone only speeds the flow up).
        la::DenseMatrix a_s = sys.a;
        a_s *= 1.0 / s;
        double lambda_min = 1e-6;
        if (la::Cholesky::factor(a_s).has_value())
            lambda_min = la::smallestEigenvalueSpd(a_s).value;

        double lsb = spec.linear_range /
                     static_cast<double>(1 << spec.adc_bits);
        double decades =
            std::log(2.0 * spec.linear_range / (0.5 * lsb));
        double timeout_s =
            1.5 * decades /
            (spec.integratorRate() * std::max(lambda_min, 1e-9));
        auto cycles = static_cast<std::uint32_t>(std::ceil(
            timeout_s * chip_->config().ctrl_clock_hz));
        driver_->setTimeout(std::max<std::uint32_t>(cycles, 1));
        driver_->cfgCommit();

        chip_->setSteadyDetect(0.5 * lsb * spec.integratorRate() *
                               std::max(lambda_min, 1e-9));
        chip_->clearExceptions();
        chip::ExecResult er = driver_->execStart();
        driver_->execStop();
        out.analog_seconds += er.analog_time;
        total_analog_s += er.analog_time;

        auto exceptions = driver_->readExp();
        bool overflow = std::any_of(exceptions.begin(),
                                    exceptions.end(),
                                    [](auto v) { return v != 0; });
        if (overflow) {
            sigma *= growth;
            growth *= 2.0;
            debugLog("nonlinear flow: overflow, sigma -> ", sigma);
            continue;
        }

        la::Vector u_hat(n);
        for (std::size_t i = 0; i < n; ++i)
            u_hat[i] = driver_->analogAvg(chip_->adcs()[i],
                                          flow.adc_samples);
        la::scale(sigma, u_hat, out.u);
        out.converged = er.steady;
        out.solution_scale = sigma;
        out.gain_scale = s;
        out.final_residual = la::norm2(sys.residual(out.u));
        return out;
    }
    fatal("AnalogNonlinearSolver: every attempt overflowed; is A SPD "
          "and phi monotone non-decreasing?");
}

HybridNewtonOutcome
hybridNewtonSolve(AnalogLinearSolver &linear,
                  const solver::NonlinearSystem &sys,
                  const HybridNewtonOptions &opts)
{
    fatalIf(bool(sys.phi) != bool(sys.phi_prime),
            "hybridNewtonSolve: phi and phi_prime must come together");

    HybridNewtonOutcome out;
    out.u = la::Vector(sys.size());
    double scale = la::norm2(sys.b);
    if (scale == 0.0)
        scale = 1.0;

    la::Vector f = sys.residual(out.u);
    double fnorm = la::norm2(f);
    for (std::size_t it = 0; it < opts.max_iters; ++it) {
        if (opts.record_history)
            out.residual_history.push_back(fnorm);
        if (fnorm <= opts.tol * scale) {
            out.converged = true;
            break;
        }
        la::DenseMatrix j = sys.jacobian(out.u);
        la::Vector minus_f = f;
        minus_f *= -1.0;
        // The inexact Newton step: solved on the accelerator at
        // ~ADC precision.
        linear.setSolutionScaleHint(
            std::max(la::normInf(minus_f) /
                         std::max(j.maxAbs(), 1e-12),
                     1e-9));
        la::Vector delta = linear.solve(j, minus_f).u;
        ++out.analog_linear_solves;

        // Digital backtracking over the analog step.
        double step = 1.0;
        la::Vector u_try;
        la::Vector f_try;
        double fnorm_try = fnorm;
        for (std::size_t bt = 0; bt <= opts.max_backtracks; ++bt) {
            u_try = out.u;
            la::axpy(step, delta, u_try);
            f_try = sys.residual(u_try);
            fnorm_try = la::norm2(f_try);
            if (fnorm_try < fnorm || opts.max_backtracks == 0)
                break;
            step *= 0.5;
        }
        out.u = std::move(u_try);
        f = std::move(f_try);
        fnorm = fnorm_try;
        out.iterations = it + 1;
    }
    out.final_residual = fnorm;
    if (!out.converged)
        out.converged = fnorm <= opts.tol * scale;
    if (opts.record_history)
        out.residual_history.push_back(fnorm);
    return out;
}

} // namespace aa::analog
