#include "aa/analog/decompose.hh"

#include <cmath>

#include "aa/analog/refine.hh"
#include "aa/common/logging.hh"
#include "aa/la/direct.hh"

namespace aa::analog {

BlockSolverFn
choleskyBlockSolver()
{
    return [](const la::DenseMatrix &a, const la::Vector &rhs) {
        auto chol = la::Cholesky::factor(a);
        fatalIf(!chol, "choleskyBlockSolver: block not SPD");
        return chol->solve(rhs);
    };
}

BlockSolverFn
analogBlockSolver(AnalogLinearSolver &solver)
{
    return [&solver](const la::DenseMatrix &a, const la::Vector &rhs) {
        return solver.solve(a, rhs).u;
    };
}

BlockSolverFn
refinedAnalogBlockSolver(AnalogLinearSolver &solver,
                         std::size_t refine_passes, double tolerance)
{
    fatalIf(refine_passes == 0,
            "refinedAnalogBlockSolver: need at least one pass");
    return [&solver, refine_passes,
            tolerance](const la::DenseMatrix &a,
                       const la::Vector &rhs) {
        RefineOptions opts;
        opts.tolerance = tolerance;
        opts.max_passes = refine_passes;
        opts.record_history = false;
        return refineSolve(solver, a, rhs, opts).u;
    };
}

DecomposeOutcome
solveDecomposed(const la::CsrMatrix &a, const la::Vector &b,
                const std::vector<pde::IndexSet> &partition,
                const BlockSolverFn &block_solver,
                const DecomposeOptions &opts)
{
    fatalIf(a.rows() != a.cols() || a.rows() != b.size(),
            "solveDecomposed: dimension mismatch");
    fatalIf(!block_solver, "solveDecomposed: no block solver");

    std::size_t n = a.rows();

    // Coverage check: each row in exactly one block.
    std::vector<std::uint8_t> seen(n, 0);
    for (const auto &blk : partition) {
        for (std::size_t g : blk) {
            fatalIf(g >= n, "solveDecomposed: index out of range");
            fatalIf(seen[g], "solveDecomposed: row ", g,
                    " appears in two blocks");
            seen[g] = 1;
        }
    }
    for (std::size_t g = 0; g < n; ++g)
        fatalIf(!seen[g], "solveDecomposed: row ", g, " uncovered");

    // Pre-extract each block's dense principal submatrix once: the
    // accelerator is reconfigured per block, but the coefficients do
    // not change between outer sweeps.
    std::vector<la::DenseMatrix> block_a;
    block_a.reserve(partition.size());
    for (const auto &blk : partition)
        block_a.push_back(a.principalSubmatrix(blk).toDense());

    DecomposeOutcome out;
    out.blocks = partition.size();
    out.u = la::Vector(n);
    la::Vector u_next(n);

    for (std::size_t it = 0; it < opts.max_outer_iters; ++it) {
        double max_change = 0.0;
        // Block-Jacobi: every block's rhs is gathered against the
        // previous sweep's solution, so block solves are independent
        // ("solved separately on multiple accelerators, or multiple
        // runs of the same accelerator").
        for (std::size_t p = 0; p < partition.size(); ++p) {
            const auto &blk = partition[p];
            la::Vector rhs(blk.size());
            for (std::size_t k = 0; k < blk.size(); ++k) {
                std::size_t g = blk[k];
                double acc = b[g];
                auto cols = a.rowCols(g);
                auto vals = a.rowVals(g);
                for (std::size_t e = 0; e < cols.size(); ++e) {
                    // Subtract couplings that leave the block.
                    std::size_t j = cols[e];
                    bool inside =
                        std::binary_search(blk.begin(), blk.end(), j);
                    if (!inside)
                        acc -= vals[e] * out.u[j];
                }
                rhs[k] = acc;
            }
            la::Vector x = block_solver(block_a[p], rhs);
            ++out.block_solves;
            fatalIf(x.size() != blk.size(),
                    "solveDecomposed: block solver size mismatch");
            for (std::size_t k = 0; k < blk.size(); ++k) {
                std::size_t g = blk[k];
                max_change = std::max(max_change,
                                      std::fabs(x[k] - out.u[g]));
                u_next[g] = x[k];
            }
        }
        out.u = u_next;
        ++out.outer_iterations;
        if (opts.record_history)
            out.change_history.push_back(max_change);
        if (max_change <= opts.tol) {
            out.converged = true;
            break;
        }
    }
    return out;
}

DecomposeOutcome
solveDecomposedAnalog(AnalogLinearSolver &solver, const la::CsrMatrix &a,
                      const la::Vector &b, const DecomposeOptions &opts)
{
    auto partition = pde::rangePartition(a.rows(), opts.max_block_vars);
    return solveDecomposed(a, b, partition, analogBlockSolver(solver),
                           opts);
}

} // namespace aa::analog
