#include "aa/analog/decompose.hh"

#include <algorithm>
#include <cmath>

#include "aa/analog/refine.hh"
#include "aa/common/logging.hh"
#include "aa/la/direct.hh"

namespace aa::analog {

BlockSolverFn
choleskyBlockSolver()
{
    return [](const la::DenseMatrix &a, const la::Vector &rhs) {
        auto chol = la::Cholesky::factor(a);
        fatalIf(!chol, "choleskyBlockSolver: block not SPD");
        return chol->solve(rhs);
    };
}

BlockSolverFn
analogBlockSolver(AnalogLinearSolver &solver)
{
    return [&solver](const la::DenseMatrix &a, const la::Vector &rhs) {
        return solver.solve(a, rhs).u;
    };
}

BlockSolverFn
refinedAnalogBlockSolver(AnalogLinearSolver &solver,
                         std::size_t refine_passes, double tolerance)
{
    fatalIf(refine_passes == 0,
            "refinedAnalogBlockSolver: need at least one pass");
    return [&solver, refine_passes,
            tolerance](const la::DenseMatrix &a,
                       const la::Vector &rhs) {
        RefineOptions opts;
        opts.tolerance = tolerance;
        opts.max_passes = refine_passes;
        opts.record_history = false;
        return refineSolve(solver, a, rhs, opts).u;
    };
}

/**
 * The compiled sweep. Everything the steady gather/scatter path needs
 * is built once here; solve() re-walks it without allocating.
 */
struct BlockJacobiScheduler::Impl {
    /** Per-block state: owned submatrix and reused workspaces. */
    struct BlockWork {
        la::DenseMatrix a;  ///< dense principal submatrix
        la::Vector rhs;     ///< gathered right-hand side
        la::Vector x;       ///< inner solve result
        double change = 0.0; ///< max |x - u_prev| this sweep
    };

    la::CsrMatrix a; ///< owned: the scheduler may outlive the caller's
    std::vector<pde::IndexSet> partition;
    std::vector<BlockSolverFn> die_solvers;
    DecomposeOptions opts;

    std::vector<BlockWork> work;
    /** die_blocks[d] = blocks owned by die d (i mod dies), ascending. */
    std::vector<std::vector<std::size_t>> die_blocks;
    /** Workers actually worth running (<= dies with work). */
    std::unique_ptr<ThreadPool> pool;

    la::Vector u, u_next;

    Impl(const la::CsrMatrix &a_in,
         std::vector<pde::IndexSet> partition_in,
         std::vector<BlockSolverFn> die_solvers_in,
         DecomposeOptions opts_in)
        : a(a_in), partition(std::move(partition_in)),
          die_solvers(std::move(die_solvers_in)),
          opts(std::move(opts_in))
    {
        fatalIf(a.rows() != a.cols(),
                "solveDecomposed: matrix not square");
        fatalIf(die_solvers.empty(),
                "solveDecomposed: no block solver");
        for (const auto &s : die_solvers)
            fatalIf(!s, "solveDecomposed: no block solver");

        std::size_t n = a.rows();

        // Coverage check: each row in exactly one block.
        std::vector<std::uint8_t> seen(n, 0);
        for (const auto &blk : partition) {
            for (std::size_t g : blk) {
                fatalIf(g >= n,
                        "solveDecomposed: index out of range");
                fatalIf(seen[g], "solveDecomposed: row ", g,
                        " appears in two blocks");
                seen[g] = 1;
            }
        }
        for (std::size_t g = 0; g < n; ++g)
            fatalIf(!seen[g], "solveDecomposed: row ", g,
                    " uncovered");

        // Pre-extract each block's dense principal submatrix and its
        // workspaces once: the accelerator is reconfigured per block,
        // but the coefficients do not change between outer sweeps,
        // and the gather/scatter buffers are reused by every sweep.
        work.reserve(partition.size());
        for (const auto &blk : partition) {
            BlockWork w;
            w.a = a.principalSubmatrix(blk).toDense();
            w.rhs = la::Vector(blk.size());
            w.x = la::Vector(blk.size());
            work.push_back(std::move(w));
        }

        // Deterministic ownership: block i belongs to die (i mod
        // dies) for the scheduler's whole lifetime, never to whichever
        // die finishes first.
        die_blocks.resize(die_solvers.size());
        for (std::size_t i = 0; i < partition.size(); ++i)
            die_blocks[i % die_solvers.size()].push_back(i);

        std::size_t busy_dies = 0;
        for (const auto &blks : die_blocks)
            busy_dies += !blks.empty();
        std::size_t threads = opts.threads == 0
                                  ? defaultThreadCount()
                                  : opts.threads;
        threads = std::min(threads, busy_dies);
        if (threads > 1)
            pool = std::make_unique<ThreadPool>(threads);

        u = la::Vector(n);
        u_next = la::Vector(n);
    }

    DecomposeOutcome
    solve(const la::Vector &b, const la::Vector &u0)
    {
        std::size_t n = a.rows();
        fatalIf(n != b.size(), "solveDecomposed: dimension mismatch");
        fatalIf(!u0.empty() && u0.size() != n,
                "solveDecomposed: initial guess size mismatch");

        if (u0.empty())
            u.assign(n, 0.0);
        else
            u = u0;

        DecomposeOutcome out;
        out.blocks = partition.size();
        out.dies = die_solvers.size();
        out.per_die_solves.assign(die_solvers.size(), 0);

        auto sweep_die = [&](std::size_t d) {
            for (std::size_t i : die_blocks[d]) {
                const auto &blk = partition[i];
                BlockWork &w = work[i];
                // Block-Jacobi: every block's rhs is gathered against
                // the previous sweep's solution, so block solves are
                // independent ("solved separately on multiple
                // accelerators, or multiple runs of the same
                // accelerator").
                for (std::size_t k = 0; k < blk.size(); ++k) {
                    std::size_t g = blk[k];
                    double acc = b[g];
                    auto cols = a.rowCols(g);
                    auto vals = a.rowVals(g);
                    for (std::size_t e = 0; e < cols.size(); ++e) {
                        // Subtract couplings that leave the block.
                        std::size_t j = cols[e];
                        bool inside = std::binary_search(
                            blk.begin(), blk.end(), j);
                        if (!inside)
                            acc -= vals[e] * u[j];
                    }
                    w.rhs[k] = acc;
                }
                w.x = die_solvers[d](w.a, w.rhs);
                fatalIf(w.x.size() != blk.size(),
                        "solveDecomposed: block solver size mismatch");
                double change = 0.0;
                for (std::size_t k = 0; k < blk.size(); ++k) {
                    std::size_t g = blk[k];
                    change = std::max(change,
                                      std::fabs(w.x[k] - u[g]));
                    u_next[g] = w.x[k];
                }
                w.change = change;
            }
        };

        for (std::size_t it = 0; it < opts.max_outer_iters; ++it) {
            if (pool)
                pool->parallelForWorkers(
                    die_blocks.size(),
                    [&](std::size_t, std::size_t d) {
                        sweep_die(d);
                    });
            else
                for (std::size_t d = 0; d < die_blocks.size(); ++d)
                    sweep_die(d);

            // Merge by index: counters per die, change per block —
            // never in completion order.
            double max_change = 0.0;
            for (const BlockWork &w : work)
                max_change = std::max(max_change, w.change);
            for (std::size_t d = 0; d < die_blocks.size(); ++d)
                out.per_die_solves[d] += die_blocks[d].size();
            out.block_solves += partition.size();

            std::swap(u, u_next);
            ++out.outer_iterations;
            if (opts.record_history)
                out.change_history.push_back(max_change);
            if (max_change <= opts.tol) {
                out.converged = true;
                break;
            }
        }
        out.u = u;
        return out;
    }
};

BlockJacobiScheduler::BlockJacobiScheduler(
    const la::CsrMatrix &a, std::vector<pde::IndexSet> partition,
    std::vector<BlockSolverFn> die_solvers, DecomposeOptions opts)
    : impl(std::make_unique<Impl>(a, std::move(partition),
                                  std::move(die_solvers),
                                  std::move(opts)))
{}

BlockJacobiScheduler::~BlockJacobiScheduler() = default;
BlockJacobiScheduler::BlockJacobiScheduler(
    BlockJacobiScheduler &&) noexcept = default;
BlockJacobiScheduler &
BlockJacobiScheduler::operator=(BlockJacobiScheduler &&) noexcept =
    default;

DecomposeOutcome
BlockJacobiScheduler::solve(const la::Vector &b, const la::Vector &u0)
{
    return impl->solve(b, u0);
}

std::size_t
BlockJacobiScheduler::blocks() const
{
    return impl->partition.size();
}

std::size_t
BlockJacobiScheduler::dies() const
{
    return impl->die_solvers.size();
}

DecomposeOutcome
solveDecomposed(const la::CsrMatrix &a, const la::Vector &b,
                const std::vector<pde::IndexSet> &partition,
                const BlockSolverFn &block_solver,
                const DecomposeOptions &opts)
{
    fatalIf(!block_solver, "solveDecomposed: no block solver");
    // A single shared solver is one logical die: serial by
    // construction, identical to the historical sequential path.
    DecomposeOptions serial = opts;
    serial.threads = 1;
    BlockJacobiScheduler sched(a, partition, {block_solver}, serial);
    return sched.solve(b);
}

DecomposeOutcome
solveDecomposed(const la::CsrMatrix &a, const la::Vector &b,
                const std::vector<pde::IndexSet> &partition,
                std::vector<BlockSolverFn> die_solvers,
                const DecomposeOptions &opts)
{
    BlockJacobiScheduler sched(a, partition, std::move(die_solvers),
                               opts);
    return sched.solve(b);
}

DecomposeOutcome
solveDecomposedAnalog(AnalogLinearSolver &solver, const la::CsrMatrix &a,
                      const la::Vector &b, const DecomposeOptions &opts)
{
    auto partition = pde::rangePartition(a.rows(), opts.max_block_vars);
    return solveDecomposed(a, b, partition, analogBlockSolver(solver),
                           opts);
}

} // namespace aa::analog
