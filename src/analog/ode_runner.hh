/**
 * @file
 * The accelerator as an ODE-dynamics solver — its native role
 * (Sections II and VI-F: "the analog accelerator is fundamentally an
 * ODE dynamics simulator, meaning useful computational results are in
 * the dynamic output waveform").
 *
 * Runs du/dt = A u + b from u(0) = u0 and captures the time-varying
 * waveform, with the compiler's value/time scaling mapping problem
 * time onto analog time: programming A/s stretches analog time by s,
 * and the integrator rate (2*pi*bandwidth) converts between the two.
 */

#ifndef AA_ANALOG_ODE_RUNNER_HH
#define AA_ANALOG_ODE_RUNNER_HH

#include <memory>
#include <vector>

#include "aa/analog/solver.hh"

namespace aa::analog {

/** A captured waveform in problem time units. */
struct OdeWaveform {
    std::vector<double> times;       ///< problem-time sample points
    std::vector<la::Vector> states;  ///< u at each sample
    double analog_seconds = 0.0;     ///< physical chip time used
    double time_scale = 1.0;  ///< t_problem = time_scale * t_analog
    std::size_t attempts = 0; ///< overflow-driven rescale retries
    /** Conversion width of the readout path (ADC reads only; the
     *  scope probe reports 0 = unquantized). */
    std::size_t effective_adc_bits = 0;

    /** One variable's waveform. */
    std::vector<double> component(std::size_t i) const;
};

/** Options for a dynamics run. */
struct OdeRunOptions {
    /** Expected bound on max |u(t)| over the run; overflow exceptions
     *  raise it automatically. */
    double solution_bound = 1.0;
    /** Number of uniform output samples of the waveform. */
    std::size_t samples = 200;
    std::size_t max_attempts = 6;

    /**
     * Read the waveform through the chip's ADCs (with the Section
     * II-B rate/resolution trade-off) instead of the ideal scope
     * probe. The effective resolution then depends on how fast the
     * requested samples force the ADCs to convert.
     */
    bool read_via_adc = false;
};

/** Owns a die and runs linear ODE systems on it. */
class AnalogOdeSolver
{
  public:
    explicit AnalogOdeSolver(AnalogSolverOptions opts = {});
    ~AnalogOdeSolver();

    /**
     * Simulate du/dt = A u + b, u(0) = u0, over problem time
     * [0, t_end], returning the sampled waveform.
     */
    OdeWaveform simulate(const la::DenseMatrix &a, const la::Vector &b,
                         const la::Vector &u0, double t_end,
                         const OdeRunOptions &run_opts = {});

  private:
    void ensureCapacity(const compiler::ResourceDemand &demand);

    AnalogSolverOptions opts;
    std::unique_ptr<chip::Chip> chip_;
    std::unique_ptr<isa::AcceleratorDriver> driver_;
    compiler::ProgramCache cache_;
    std::shared_ptr<const compiler::CompiledStructure> last_structure_;
};

} // namespace aa::analog

#endif // AA_ANALOG_ODE_RUNNER_HH
