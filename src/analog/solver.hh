/**
 * @file
 * The analog linear-equation solver — the paper's core contribution.
 *
 * Hosts hand it A u = b; it scales the system into the hardware's
 * dynamic range, compiles a chip configuration, calibrates the die
 * once, runs the continuous-time gradient flow du/dt = b - A u to
 * steady state, reads the solution through the ADCs, and — centrally
 * to the paper's architecture story — reacts to range-overflow
 * exceptions by re-scaling and retrying, and to underused dynamic
 * range by scaling back up (Section III-B "Exceptions").
 */

#ifndef AA_ANALOG_SOLVER_HH
#define AA_ANALOG_SOLVER_HH

#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "aa/chip/chip.hh"
#include "aa/compiler/mapper.hh"
#include "aa/compiler/program.hh"
#include "aa/isa/driver.hh"
#include "aa/la/dense_matrix.hh"
#include "aa/la/vector.hh"

namespace aa::fault {
class FaultInjector;
}

namespace aa::analog {

/**
 * Every retry attempt of a solve latched a range-overflow exception.
 * On a healthy die this means the matrix is not positive definite;
 * under fault injection a corrupted or drifting gain produces the
 * same symptom on a perfectly good problem — so it must be a
 * recoverable error (re-route, fall back), never process death.
 */
class SolveRangeError : public std::runtime_error
{
  public:
    SolveRangeError()
        : std::runtime_error(
              "analog solve: every attempt overflowed the dynamic "
              "range")
    {}
};

/** Solver configuration. */
struct AnalogSolverOptions {
    circuit::AnalogSpec spec; ///< design point (defaults: prototype)
    std::uint64_t die_seed = 1;

    /** Exception-driven retry budget (scale up/down attempts). */
    std::size_t max_attempts = 8;
    /** ADC conversions averaged per variable at readout. */
    std::size_t adc_samples = 4;
    /** Starting estimate of max|u| (sigma); 1.0 = trust the range. */
    double initial_solution_scale = 1.0;
    /** Readout peaks below this fraction of full scale trigger a
     *  scale-up retry for precision (<= 0 disables). */
    double underrange_threshold = 0.25;
    /** Run `init` (calibration) when a die is first built. */
    bool auto_calibrate = true;
    /** Build a larger die when a problem does not fit (the paper's
     *  projected accelerators); false = fatal on overflow of the
     *  current geometry. */
    bool allow_regrow = true;
    /** Compiled structures the die's program cache retains (the
     *  on-die program memory budget). Small values make the cache
     *  contended — the regime where scheduler affinity matters. */
    std::size_t program_cache_capacity = 16;
};

/** Where one solve's host time and traffic went, phase by phase. */
struct SolvePhaseReport {
    double compile_seconds = 0.0;   ///< structure + eigen analysis
    double configure_seconds = 0.0; ///< binding + shipping config
    double run_seconds = 0.0;       ///< execStart..readExp (host wall)
    double readout_seconds = 0.0;   ///< ADC averaging reads
    std::size_t config_bytes = 0;   ///< config traffic this solve
    std::size_t cache_hits = 0;     ///< program-cache hits this solve
    std::size_t cache_misses = 0;   ///< program-cache compiles
    bool structure_reused = false;  ///< crossbar left as-is

    /** Fold another solve's breakdown in (die-usage aggregation). */
    void
    add(const SolvePhaseReport &o)
    {
        compile_seconds += o.compile_seconds;
        configure_seconds += o.configure_seconds;
        run_seconds += o.run_seconds;
        readout_seconds += o.readout_seconds;
        config_bytes += o.config_bytes;
        cache_hits += o.cache_hits;
        cache_misses += o.cache_misses;
        structure_reused = structure_reused || o.structure_reused;
    }
};

/** Acceptance policy for residual-verified solves. */
struct VerifyOptions {
    /** Accept when ||b - A u|| / ||b|| is at or below this. The
     *  prototype's 8-bit readout bounds a clean solve near 1/2^8;
     *  faults push it orders of magnitude past that. */
    double rel_residual = 0.05;
    /** Local repairs (recalibrate + full reprogram) before giving
     *  the die up as unhealthy. */
    std::size_t max_recoveries = 2;
};

/** Outcome of one analog solve. */
struct AnalogSolveOutcome {
    la::Vector u;            ///< solution in problem units
    bool converged = false;  ///< integrators settled before timeout
    std::size_t attempts = 0; ///< configuration+run attempts
    std::size_t overflow_retries = 0;
    std::size_t underrange_retries = 0;
    double analog_seconds = 0.0; ///< total analog compute time
    double solution_scale = 1.0; ///< final sigma used
    double gain_scale = 1.0;     ///< final s used
    SolvePhaseReport phases;     ///< per-phase time/traffic breakdown
};

/** Options for the analog-preconditioned Krylov path. */
struct PrecondSolveOptions {
    /** Convergence target ||b - A u||_2 <= tolerance * ||b||_2. */
    double tolerance = 1e-8;
    /** Outer Krylov iterations (= analog preconditioner applies on
     *  the happy path). */
    std::size_t max_iters = 200;
    /** FGMRES restart length (ignored on the CG path). */
    std::size_t restart = 30;
    /** Which outer iteration to run; Auto picks CG for symmetric
     *  matrices and FGMRES otherwise. */
    enum class Method { Auto, Cg, Fgmres } method = Method::Auto;
    /** Record the outer residual history. */
    bool record_history = false;
    /** Checked between outer iterations; false = stop (deadline
     *  gating, like RefineOptions::keep_going). */
    std::function<bool()> keep_going;
};

/**
 * Outcome of solvePreconditioned: host-side Krylov wrapped around
 * analog preconditioner applies. `converged` is a digital fact —
 * the outer loop recomputes ||b - A u|| at exit.
 */
struct PreconditionedSolveOutcome {
    la::Vector u;
    bool converged = false;
    bool used_fgmres = false;     ///< else flexible CG
    std::size_t iterations = 0;   ///< outer Krylov iterations
    std::size_t restarts = 0;     ///< FGMRES cycles beyond the first
    /** Relative ||b - A u||_2 / ||b||_2 at exit. */
    double final_residual = 0.0;
    /** Why the outer loop stopped when not converged (stable text
     *  for failure chains; empty on convergence). */
    std::string stop_detail;

    std::size_t precond_applies = 0;   ///< analog applies attempted
    /** Applies the analog ladder could not serve (range exhaustion):
     *  the outer iteration used z = r instead. All-fallback outcomes
     *  carried no analog contribution at all. */
    std::size_t precond_fallbacks = 0;

    double analog_seconds = 0.0; ///< integration time across applies
    /** Summed phase/config-byte accounting across every apply; the
     *  structure fetch and eigen analysis appear exactly once. */
    SolvePhaseReport phases;
    std::vector<double> residual_history;
};

/** An analog solve whose answer was checked against the digital
 *  residual before being believed. */
struct VerifiedSolveOutcome {
    AnalogSolveOutcome outcome;
    bool ok = false;            ///< residual under the threshold
    double rel_residual = 0.0;  ///< last measured ||b - A u|| / ||b||
    std::size_t recoveries = 0; ///< local repairs performed
    std::string reason;         ///< why not ok (empty when ok)
};

/**
 * The host-side half of one solve, computed off the die's execution
 * thread: scaling + eigen analysis, structure fetch, parameter
 * binding, and the staged configuration delta. Built by
 * prepareSolve() (typically while the die integrates the previous
 * request) and consumed by solvePrepared(). An invalid or stale
 * prepared solve is harmless — the consumer falls back to the
 * canonical path, so the result is identical either way; only the
 * overlap is lost.
 */
struct PreparedSolve {
    bool valid = false;
    /** Die generation (regrow counter) the delta was staged for. */
    std::uint64_t generation = 0;
    std::shared_ptr<const compiler::CompiledStructure> structure;
    compiler::ParameterBinding binding;
    isa::StagedConfig staged;
    /** The staged delta includes the crossbar reconfiguration (the
     *  preparer predicted the structure would not be live). */
    bool staged_structure = false;
    double sigma = 1.0;      ///< effective opening solution scale
    double lambda_ref = 0.0; ///< convergence estimate of scaled A
    double s_ref = 1.0;      ///< gain scale the estimate refers to
    SolvePhaseReport phases; ///< host work spent preparing
};

/**
 * Owns one accelerator die (chip + driver) and solves systems on it.
 * The die persists across solves: calibration happens once, and
 * domain decomposition reuses the same hardware for every block —
 * "multiple runs of the same accelerator" (Section IV-B).
 */
class AnalogLinearSolver
{
  public:
    explicit AnalogLinearSolver(AnalogSolverOptions opts = {});
    ~AnalogLinearSolver();
    AnalogLinearSolver(AnalogLinearSolver &&) noexcept;
    AnalogLinearSolver &operator=(AnalogLinearSolver &&) noexcept;

    /** Solve A u = b (A must be SPD for convergence). */
    AnalogSolveOutcome solve(const la::DenseMatrix &a,
                             const la::Vector &b,
                             const la::Vector &u0 = {});

    /**
     * Solve A u_k = b_k for K right-hand sides back to back on the
     * one configured die. The structure is fetched (and the eigen
     * analysis run) once for the whole batch; since the gain scale
     * depends only on A, every member binds identical multiplier
     * registers and the shadow file reduces each rebind to the DAC
     * biases — configuration traffic amortizes to ~1/K per member.
     *
     * Member 0 is bit-identical to a solo solve(a, bs[0], u0s[0]) —
     * it walks the canonical re-scaling ladder, consuming a sticky
     * solution-scale hint (setSolutionScaleHint) if one is set.
     * Members after it reuse the range the ladder just discovered:
     * each starts from the derived hint sigma_prev * |b_k| / |b_prev|
     * (infinity norms), which for a right-hand side proportional to
     * its predecessor reproduces the working rung exactly — the
     * pow2 gain stretch and b_s = b / (s sigma) are ratio-invariant
     * — so the member binds the registers the die already holds,
     * runs once, and ships no configuration bytes. Non-proportional
     * members treat it as an informed first rung and let the ladder
     * correct; each member k is exactly solve(a, bs[k], u0s[k])
     * under that hint (same code path as a hinted sequential solve).
     * When scale_hints is non-empty it overrides the derivation and
     * gives every member its caller-chosen hint (the refinement
     * path), 0.0 meaning the canonical unhinted ladder.
     *
     * Outcomes carry per-member phase breakdowns; the batch-shared
     * compile work (structure fetch, cache hit/miss) is attributed
     * to member 0. Throws SolveRangeError if any member exhausts its
     * attempts; members before it completed, members after it did
     * not run.
     */
    std::vector<AnalogSolveOutcome>
    solveBatch(const la::DenseMatrix &a,
               const std::vector<la::Vector> &bs,
               const std::vector<la::Vector> &u0s = {},
               const std::vector<double> &scale_hints = {});

    /**
     * Host-side Krylov iteration (flexible CG for symmetric A,
     * FGMRES(m) otherwise) with this die as the preconditioner: each
     * apply z ~= A^{-1} r is one *unrefined* analog solve. The
     * compiled structure is fetched — and the eigen analysis run —
     * once for the whole outer iteration, and every apply after the
     * first starts from the derived range hint
     * sigma_prev * |r_k| / |r_prev| (infinity norms), exactly the
     * solveBatch recipe: Krylov residuals shrink roughly
     * geometrically, so each apply rebinds only the DAC biases of a
     * proportionally-scaled right-hand side and configuration
     * traffic amortizes to ~zero per iteration.
     *
     * The flexible outer iterations are what make this sound: the
     * analog apply is nonstationary (re-scaling ladder, range
     * memory, ADC quantization differ per apply), which plain
     * right-preconditioned GMRES does not tolerate. An apply whose
     * ladder exhausts its attempts (SolveRangeError) degrades that
     * iteration to z = r and is counted in precond_fallbacks;
     * DieDeadError propagates — a dead die cannot answer.
     *
     * This opens the systems the pure du/dt = b - A u mapping cannot
     * serve: nonsymmetric operators (convection-diffusion) and
     * badly-conditioned SPD systems where refinement's contraction
     * stalls near the ADC noise floor.
     */
    PreconditionedSolveOutcome
    solvePreconditioned(const la::DenseMatrix &a, const la::Vector &b,
                        const PrecondSolveOptions &popts = {});

    /**
     * Solve and verify the readout against the digital residual
     * before returning it. A failed check (or a range-overflow
     * exhaustion) triggers local recovery — shadow reset, full
     * reprogram, recalibration — and a retry, up to
     * VerifyOptions::max_recoveries. Never ok=false silently: the
     * outcome says whether the answer deserves trust. DieDeadError
     * propagates (nothing local repairs a dead die).
     */
    VerifiedSolveOutcome solveVerified(const la::DenseMatrix &a,
                                       const la::Vector &b,
                                       const la::Vector &u0 = {},
                                       const VerifyOptions &verify = {},
                                       PreparedSolve *prepared = nullptr);

    /**
     * Run the host-side stages of solve(a, b, u0) without touching
     * the die: scale + eigen-analyze the system, fetch the compiled
     * structure, bind parameters, and diff the configuration against
     * the shadow register file into a staged buffer. Safe to call
     * from a thread other than the die's executor while the die
     * integrates — nothing goes over the wire. `predicted_live` is
     * the structure the caller expects to be live on the die when the
     * prepared solve executes (null = expect a reconfigure); a wrong
     * prediction is corrected at consume time at the cost of the
     * overlap. Returns an invalid PreparedSolve (consume falls back
     * to the canonical path) when the problem is malformed, does not
     * fit the current die, or no die has been built yet.
     */
    PreparedSolve prepareSolve(
        const la::DenseMatrix &a, const la::Vector &b,
        const la::Vector &u0 = {},
        const compiler::CompiledStructure *predicted_live = nullptr);

    /**
     * Consume a PreparedSolve: flush the staged configuration delta
     * (or rebind directly when it went stale) and run the canonical
     * retry ladder from the prepared opening rung. Bit-identical to
     * solve(a, b, u0) for the same inputs — the prepared stages are
     * the same computation, just earlier and off-thread. Falls back
     * to solve() wholesale when the prepared solve is invalid, was
     * built for a regrown die, or a solution-scale hint is pending.
     */
    AnalogSolveOutcome solvePrepared(const la::DenseMatrix &a,
                                     const la::Vector &b,
                                     const la::Vector &u0,
                                     PreparedSolve &&prepared);

    /**
     * Attach a fault injector to this die (null detaches). Wired to
     * the chip's device-side hooks and the driver's liveness check;
     * survives a regrow (the injector follows the solver, not the
     * chip instance). The caller keeps the injector alive.
     */
    void setFaultInjector(fault::FaultInjector *injector);
    fault::FaultInjector *faultInjector() const { return injector_; }

    /**
     * Forget all host-side state that lets reconfiguration take
     * shortcuts: shadow registers, live-structure tracking, range
     * memory. The next solve reships and relatches everything —
     * repairing transient config corruption — and init() re-runs
     * calibration. The program cache survives (structures are
     * geometry-derived, not device state).
     */
    void recover();

    /**
     * Seed the next solve's solution scale (sigma); consumed by that
     * one solve. Precision refinement passes the expected residual
     * magnitude here so each pass starts near the right range instead
     * of rediscovering it through underrange retries.
     */
    void
    setSolutionScaleHint(double sigma)
    {
        sticky_solution_scale = sigma;
    }

    /** Cumulative analog compute time across all solves. */
    double totalAnalogSeconds() const { return total_analog_s; }
    /** Cumulative configuration traffic actually shipped (bytes of
     *  config-class commands over the SPI link — delta traffic, since
     *  the driver's shadow registers suppress unchanged writes). */
    std::size_t configBytes() const;
    /** Program-cache counters (structure compiles vs reuses). By
     *  value under the cache lock: safe against a concurrent fetch
     *  on the die's executor thread. */
    compiler::CacheStats cacheStats() const
    {
        std::lock_guard<std::mutex> lk(*cache_mu_);
        return cache_.stats();
    }
    /** Residency query without touching LRU order — the locked
     *  equivalent of programCache().contains() for schedulers that
     *  run concurrently with this die's executor. */
    bool hasPattern(std::uint64_t pattern_hash, std::size_t n) const
    {
        std::lock_guard<std::mutex> lk(*cache_mu_);
        return cache_.contains(pattern_hash, n);
    }
    /** Locked peek (no LRU touch); null when not resident. */
    std::shared_ptr<const compiler::CompiledStructure>
    peekStructure(std::uint64_t pattern_hash, std::size_t n) const
    {
        std::lock_guard<std::mutex> lk(*cache_mu_);
        return cache_.peek(pattern_hash, n);
    }
    /** Read-only view of the die's program cache; contains()/keys()
     *  let tests inspect residency without touching LRU order. Not
     *  synchronized — only for quiescent dies (use hasPattern /
     *  peekStructure while an executor may be running). */
    const compiler::ProgramCache &programCache() const
    {
        return cache_;
    }

    /** Geometry key of the die's current chip; compiled structures
     *  are valid on any die of equal geometry, which is what lets
     *  the placement layer replicate them across a pool. */
    std::uint64_t geometryKey() const;

    /**
     * Install a compiled structure into this die's program cache —
     * the placement layer's explicit prefetch: the next solve of the
     * pattern starts from a cache hit instead of a compile. Returns
     * false (and installs nothing) when the structure was compiled
     * for a different chip geometry than this die's. `pin` protects
     * the entry from LRU eviction by demand traffic.
     */
    bool installStructure(
        std::shared_ptr<const compiler::CompiledStructure> cs,
        bool pin = true);

    /** Drop (pattern_hash, n) from the program cache (placement
     *  shed); returns entries removed. Device state is untouched —
     *  a later solve of the pattern recompiles and reconfigures. */
    std::size_t dropStructure(std::uint64_t pattern_hash,
                              std::size_t n);

    const AnalogSolverOptions &options() const { return opts; }
    chip::Chip &chipRef();
    isa::AcceleratorDriver &driverRef();

  private:
    void ensureCapacity(const compiler::ResourceDemand &demand);

    /**
     * State one batch's members share: the compiled structure and
     * the convergence-rate analysis. lambdaMin(A / s) is independent
     * of sigma (s reads only A), so one power iteration serves every
     * member and every retry — rescaled by s_ref / s, which is 1 in
     * practice but kept for form.
     */
    struct SolveShared {
        std::shared_ptr<const compiler::CompiledStructure> structure;
        bool have_lambda = false;
        double lambda_ref = 0.0;
        double s_ref = 1.0;
    };

    /** One member's full retry ladder against a fetched structure.
     *  `hint` > 0 seeds sigma (a consumed scale hint). `prepared`,
     *  when non-null, supplies attempt 0's scaling/binding and the
     *  staged config delta (the pipelined fast path). */
    AnalogSolveOutcome solveOne(const la::DenseMatrix &a,
                                const la::Vector &b,
                                const la::Vector &u0, double hint,
                                SolveShared &shared,
                                PreparedSolve *prepared = nullptr);

    AnalogSolverOptions opts;
    // Lock order: struct_mu_ -> cache_mu_ -> (driver's shadow_mu_).
    // struct_mu_ guards the chip/driver instance pointers and the
    // regrow generation counter against off-thread prepareSolve();
    // cache_mu_ guards the program cache against scheduler residency
    // queries. unique_ptr so the solver stays movable.
    std::unique_ptr<std::mutex> struct_mu_;
    std::unique_ptr<std::mutex> cache_mu_;
    /** Bumped when a regrow rebuilds chip + driver: prepared solves
     *  staged against the old die are rejected at consume time. */
    std::uint64_t generation_ = 0;
    std::unique_ptr<chip::Chip> chip_;
    std::unique_ptr<isa::AcceleratorDriver> driver_;
    compiler::ProgramCache cache_;
    /** Structure whose connections are live on the die (null after a
     *  regrow rebuilds chip + driver). */
    std::shared_ptr<const compiler::CompiledStructure> last_structure_;
    /** Range memory: per (pattern, geometry), the sigma growth the
     *  last hinted solve realized (final sigma / hint). A recorded
     *  single doubling lets the next hinted solve fast-start at
     *  2 x hint — skipping the attempt the hint always loses — with
     *  the skip validated from the readout peak (see solve()). */
    std::unordered_map<std::uint64_t, double> range_memory_;
    double total_analog_s = 0.0;
    double sticky_solution_scale = 0.0; ///< reuse across solves
    fault::FaultInjector *injector_ = nullptr;
};

} // namespace aa::analog

#endif // AA_ANALOG_SOLVER_HH
