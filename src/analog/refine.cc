#include "aa/analog/refine.hh"

#include "aa/common/logging.hh"

namespace aa::analog {

RefineOutcome
refineSolve(AnalogLinearSolver &solver, const la::DenseMatrix &a,
            const la::Vector &b, const RefineOptions &opts)
{
    fatalIf(a.rows() != a.cols() || a.rows() != b.size(),
            "refineSolve: dimension mismatch");

    RefineOutcome out;
    out.u = la::Vector(b.size());
    la::Vector residual = b;
    double bnorm = la::norm2(b);
    if (bnorm == 0.0)
        bnorm = 1.0;

    double analog_before = solver.totalAnalogSeconds();
    for (std::size_t pass = 0; pass < opts.max_passes; ++pass) {
        out.final_residual = la::norm2(residual);
        if (opts.record_history && pass > 0)
            out.residual_history.push_back(out.final_residual);
        if (out.final_residual <= opts.tolerance * bnorm) {
            out.converged = true;
            break;
        }
        if (pass > 0 && opts.keep_going && !opts.keep_going())
            break; // deadline: keep what has accumulated so far

        // Each pass solves A u_final = residual with the dynamic
        // range re-centred on the residual's magnitude.
        double peak = la::normInf(residual);
        if (peak > 0.0) {
            // Rough range estimate: |u_final| <~ |A^-1| * peak; let
            // the solver's retry loop correct it from there.
            solver.setSolutionScaleHint(
                std::max(peak / std::max(a.maxAbs(), 1e-12), 1e-9));
        }
        AnalogSolveOutcome pass_out = solver.solve(a, residual);
        out.phases.add(pass_out.phases);
        la::axpy(1.0, pass_out.u, out.u);
        if (opts.record_history)
            out.config_bytes_history.push_back(
                pass_out.phases.config_bytes);
        ++out.passes;

        // Digital double-precision residual update.
        residual = b - a.apply(out.u);
    }
    out.final_residual = la::norm2(b - a.apply(out.u));
    if (opts.record_history)
        out.residual_history.push_back(out.final_residual);
    out.converged = out.final_residual <= opts.tolerance * bnorm;
    out.analog_seconds = solver.totalAnalogSeconds() - analog_before;
    return out;
}

std::vector<RefineOutcome>
refineSolveBatch(AnalogLinearSolver &solver, const la::DenseMatrix &a,
                 const std::vector<la::Vector> &bs,
                 const RefineOptions &opts)
{
    fatalIf(bs.empty(), "refineSolveBatch: empty batch");
    for (const la::Vector &b : bs)
        fatalIf(a.rows() != a.cols() || a.rows() != b.size(),
                "refineSolveBatch: dimension mismatch");

    const std::size_t count = bs.size();
    std::vector<RefineOutcome> outs(count);
    std::vector<la::Vector> residuals(bs);
    std::vector<double> bnorms(count);
    std::vector<char> active(count, 1);
    for (std::size_t k = 0; k < count; ++k) {
        outs[k].u = la::Vector(bs[k].size());
        bnorms[k] = la::norm2(bs[k]);
        if (bnorms[k] == 0.0)
            bnorms[k] = 1.0;
    }

    std::vector<std::size_t> members; // active indices, pass-local
    std::vector<la::Vector> pass_rhs;
    std::vector<double> pass_hints;
    for (std::size_t pass = 0; pass < opts.max_passes; ++pass) {
        members.clear();
        pass_rhs.clear();
        pass_hints.clear();
        for (std::size_t k = 0; k < count; ++k) {
            if (!active[k])
                continue;
            RefineOutcome &out = outs[k];
            out.final_residual = la::norm2(residuals[k]);
            if (opts.record_history && pass > 0)
                out.residual_history.push_back(out.final_residual);
            if (out.final_residual <= opts.tolerance * bnorms[k]) {
                out.converged = true;
                active[k] = 0;
                continue;
            }
            double peak = la::normInf(residuals[k]);
            members.push_back(k);
            pass_rhs.push_back(residuals[k]);
            pass_hints.push_back(
                peak > 0.0
                    ? std::max(peak / std::max(a.maxAbs(), 1e-12),
                               1e-9)
                    : 0.0);
        }
        if (members.empty())
            break;
        if (pass > 0 && opts.keep_going && !opts.keep_going())
            break; // deadline: keep what has accumulated so far

        // One batch per pass: the structure fetch and eigen analysis
        // are shared; members bind back to back on the live program.
        auto pass_outs =
            solver.solveBatch(a, pass_rhs, {}, pass_hints);
        for (std::size_t i = 0; i < members.size(); ++i) {
            std::size_t k = members[i];
            RefineOutcome &out = outs[k];
            out.phases.add(pass_outs[i].phases);
            out.analog_seconds += pass_outs[i].analog_seconds;
            la::axpy(1.0, pass_outs[i].u, out.u);
            if (opts.record_history)
                out.config_bytes_history.push_back(
                    pass_outs[i].phases.config_bytes);
            ++out.passes;
            residuals[k] = bs[k] - a.apply(out.u);
        }
    }
    for (std::size_t k = 0; k < count; ++k) {
        RefineOutcome &out = outs[k];
        out.final_residual = la::norm2(bs[k] - a.apply(out.u));
        if (opts.record_history)
            out.residual_history.push_back(out.final_residual);
        out.converged =
            out.final_residual <= opts.tolerance * bnorms[k];
    }
    return outs;
}

} // namespace aa::analog
