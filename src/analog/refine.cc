#include "aa/analog/refine.hh"

#include "aa/common/logging.hh"

namespace aa::analog {

RefineOutcome
refineSolve(AnalogLinearSolver &solver, const la::DenseMatrix &a,
            const la::Vector &b, const RefineOptions &opts)
{
    fatalIf(a.rows() != a.cols() || a.rows() != b.size(),
            "refineSolve: dimension mismatch");

    RefineOutcome out;
    out.u = la::Vector(b.size());
    la::Vector residual = b;
    double bnorm = la::norm2(b);
    if (bnorm == 0.0)
        bnorm = 1.0;

    double analog_before = solver.totalAnalogSeconds();
    for (std::size_t pass = 0; pass < opts.max_passes; ++pass) {
        out.final_residual = la::norm2(residual);
        if (opts.record_history && pass > 0)
            out.residual_history.push_back(out.final_residual);
        if (out.final_residual <= opts.tolerance * bnorm) {
            out.converged = true;
            break;
        }
        if (pass > 0 && opts.keep_going && !opts.keep_going())
            break; // deadline: keep what has accumulated so far

        // Each pass solves A u_final = residual with the dynamic
        // range re-centred on the residual's magnitude.
        double peak = la::normInf(residual);
        if (peak > 0.0) {
            // Rough range estimate: |u_final| <~ |A^-1| * peak; let
            // the solver's retry loop correct it from there.
            solver.setSolutionScaleHint(
                std::max(peak / std::max(a.maxAbs(), 1e-12), 1e-9));
        }
        AnalogSolveOutcome pass_out = solver.solve(a, residual);
        out.phases.add(pass_out.phases);
        la::axpy(1.0, pass_out.u, out.u);
        if (opts.record_history)
            out.config_bytes_history.push_back(
                pass_out.phases.config_bytes);
        ++out.passes;

        // Digital double-precision residual update.
        residual = b - a.apply(out.u);
    }
    out.final_residual = la::norm2(b - a.apply(out.u));
    if (opts.record_history)
        out.residual_history.push_back(out.final_residual);
    out.converged = out.final_residual <= opts.tolerance * bnorm;
    out.analog_seconds = solver.totalAnalogSeconds() - analog_before;
    return out;
}

} // namespace aa::analog
