/**
 * @file
 * Domain decomposition — Section IV-B of the paper.
 *
 * Problems with more variables than the accelerator has integrators
 * are cut into blocks (e.g. a 2D grid into 1D strips). Each block's
 * principal submatrix is solved on the accelerator; an outer
 * block-Jacobi iteration across the subproblems recovers global
 * convergence: "the set of subproblems would be solved several times,
 * using a larger iteration across the subproblems".
 */

#ifndef AA_ANALOG_DECOMPOSE_HH
#define AA_ANALOG_DECOMPOSE_HH

#include <functional>
#include <vector>

#include "aa/analog/solver.hh"
#include "aa/la/csr_matrix.hh"
#include "aa/pde/partition.hh"

namespace aa::analog {

/** Pluggable block solver: x_block = A_bb^-1 rhs_block. */
using BlockSolverFn = std::function<la::Vector(
    const la::DenseMatrix &a_block, const la::Vector &rhs_block)>;

/** Options for the decomposition driver. */
struct DecomposeOptions {
    /** Largest block mapped onto the accelerator at once. */
    std::size_t max_block_vars = 16;
    /** Outer iteration stop: max element change below this. */
    double tol = 1.0 / 256.0;
    std::size_t max_outer_iters = 500;
    bool record_history = false;
};

/** Outcome of a decomposed solve. */
struct DecomposeOutcome {
    la::Vector u;
    bool converged = false;
    std::size_t outer_iterations = 0;
    std::size_t blocks = 0;
    std::size_t block_solves = 0;
    std::vector<double> change_history; ///< max change per sweep
};

/**
 * Block-Jacobi outer iteration with an arbitrary inner solver.
 * `partition` entries must cover every row exactly once.
 */
DecomposeOutcome solveDecomposed(
    const la::CsrMatrix &a, const la::Vector &b,
    const std::vector<pde::IndexSet> &partition,
    const BlockSolverFn &block_solver, const DecomposeOptions &opts);

/**
 * Convenience: decompose with the analog accelerator as the block
 * solver, partitioning 1D-range style into blocks of at most
 * opts.max_block_vars.
 */
DecomposeOutcome solveDecomposedAnalog(AnalogLinearSolver &solver,
                                       const la::CsrMatrix &a,
                                       const la::Vector &b,
                                       const DecomposeOptions &opts);

/** The exact digital reference block solver (dense Cholesky). */
BlockSolverFn choleskyBlockSolver();

/** Analog accelerator block solver over an existing die. */
BlockSolverFn analogBlockSolver(AnalogLinearSolver &solver);

/**
 * Analog block solver with Algorithm 2 accuracy boosting: each block
 * solve runs up to `refine_passes` residual passes, so the block
 * error drops below the single-run ADC floor and the outer iteration
 * can reach the paper's 1/256 rule. This is the Figure 6 pipeline:
 * "domain decomposition ... in conjunction to accuracy boosting".
 */
BlockSolverFn refinedAnalogBlockSolver(AnalogLinearSolver &solver,
                                       std::size_t refine_passes = 2,
                                       double tolerance = 1e-6);

} // namespace aa::analog

#endif // AA_ANALOG_DECOMPOSE_HH
