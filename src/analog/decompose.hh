/**
 * @file
 * Domain decomposition — Section IV-B of the paper.
 *
 * Problems with more variables than the accelerator has integrators
 * are cut into blocks (e.g. a 2D grid into 1D strips). Each block's
 * principal submatrix is solved on the accelerator; an outer
 * block-Jacobi iteration across the subproblems recovers global
 * convergence: "the set of subproblems would be solved several times,
 * using a larger iteration across the subproblems".
 *
 * Within one sweep the block solves are independent ("solved
 * separately on multiple accelerators, or multiple runs of the same
 * accelerator"); BlockJacobiScheduler exploits that by fanning a
 * sweep across a bank of per-die solvers on a common::ThreadPool.
 *
 * Determinism contract: block i is always solved by die (i mod bank
 * size), and a die executes its blocks in increasing block order, so
 * every die sees the same solve sequence — and its calibration, RNG
 * stream, and program cache evolve identically — at any thread count.
 * Sweep results (solution, change history, counters) are merged by
 * block/die index, never by completion order, so a DecomposeOutcome
 * is bit-identical whatever AASIM_THREADS says.
 */

#ifndef AA_ANALOG_DECOMPOSE_HH
#define AA_ANALOG_DECOMPOSE_HH

#include <functional>
#include <memory>
#include <vector>

#include "aa/analog/solver.hh"
#include "aa/common/parallel.hh"
#include "aa/la/csr_matrix.hh"
#include "aa/pde/partition.hh"

namespace aa::analog {

/** Pluggable block solver: x_block = A_bb^-1 rhs_block. */
using BlockSolverFn = std::function<la::Vector(
    const la::DenseMatrix &a_block, const la::Vector &rhs_block)>;

/** Options for the decomposition driver. */
struct DecomposeOptions {
    /** Largest block mapped onto the accelerator at once. */
    std::size_t max_block_vars = 16;
    /** Outer iteration stop: max element change below this. */
    double tol = 1.0 / 256.0;
    std::size_t max_outer_iters = 500;
    bool record_history = false;
    /**
     * Total sweep concurrency: 0 = AASIM_THREADS default, 1 = run
     * inline on the caller. Never affects the emitted numbers — only
     * how many dies solve their block queues at the same time.
     */
    std::size_t threads = 1;
};

/** Outcome of a decomposed solve. */
struct DecomposeOutcome {
    la::Vector u;
    bool converged = false;
    std::size_t outer_iterations = 0;
    std::size_t blocks = 0;
    std::size_t block_solves = 0;
    /** Solver-bank size the sweep was scheduled over (1 = serial). */
    std::size_t dies = 0;
    /** Block solves issued to each die, merged by die index. */
    std::vector<std::size_t> per_die_solves;
    std::vector<double> change_history; ///< max change per sweep
};

/**
 * The multi-die sweep scheduler. Construction compiles the sweep:
 * it validates the partition, pre-extracts every block's dense
 * principal submatrix, builds per-block RHS/solution workspaces
 * (the steady-sweep gather/scatter path allocates nothing), assigns
 * block i to die (i mod die_solvers.size()), and sizes a ThreadPool
 * to min(opts.threads, dies). solve() may then be called many times
 * — one implicit timestep or multigrid coarse visit per call —
 * reusing every workspace and each die's warm program cache.
 *
 * Each entry of `die_solvers` must own disjoint mutable state (its
 * own die); the scheduler guarantees a die's solver is only ever
 * invoked from one task at a time.
 */
class BlockJacobiScheduler
{
  public:
    BlockJacobiScheduler(const la::CsrMatrix &a,
                         std::vector<pde::IndexSet> partition,
                         std::vector<BlockSolverFn> die_solvers,
                         DecomposeOptions opts = {});
    ~BlockJacobiScheduler();
    BlockJacobiScheduler(BlockJacobiScheduler &&) noexcept;
    BlockJacobiScheduler &operator=(BlockJacobiScheduler &&) noexcept;

    /**
     * Run the outer block-Jacobi iteration for right-hand side b,
     * starting from u0 (empty = zero). Deterministic at any thread
     * count; see the file comment for the contract.
     */
    DecomposeOutcome solve(const la::Vector &b,
                           const la::Vector &u0 = {});

    std::size_t blocks() const;
    std::size_t dies() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

/**
 * Block-Jacobi outer iteration with an arbitrary inner solver.
 * `partition` entries must cover every row exactly once.
 */
DecomposeOutcome solveDecomposed(
    const la::CsrMatrix &a, const la::Vector &b,
    const std::vector<pde::IndexSet> &partition,
    const BlockSolverFn &block_solver, const DecomposeOptions &opts);

/**
 * Multi-die form: block i goes to die_solvers[i mod dies], sweeps
 * fan out across opts.threads workers, and the outcome is
 * bit-identical at any thread count. One-shot wrapper over
 * BlockJacobiScheduler.
 */
DecomposeOutcome solveDecomposed(
    const la::CsrMatrix &a, const la::Vector &b,
    const std::vector<pde::IndexSet> &partition,
    std::vector<BlockSolverFn> die_solvers,
    const DecomposeOptions &opts);

/**
 * Convenience: decompose with the analog accelerator as the block
 * solver, partitioning 1D-range style into blocks of at most
 * opts.max_block_vars.
 */
DecomposeOutcome solveDecomposedAnalog(AnalogLinearSolver &solver,
                                       const la::CsrMatrix &a,
                                       const la::Vector &b,
                                       const DecomposeOptions &opts);

/** The exact digital reference block solver (dense Cholesky). */
BlockSolverFn choleskyBlockSolver();

/** Analog accelerator block solver over an existing die. */
BlockSolverFn analogBlockSolver(AnalogLinearSolver &solver);

/**
 * Analog block solver with Algorithm 2 accuracy boosting: each block
 * solve runs up to `refine_passes` residual passes, so the block
 * error drops below the single-run ADC floor and the outer iteration
 * can reach the paper's 1/256 rule. This is the Figure 6 pipeline:
 * "domain decomposition ... in conjunction to accuracy boosting".
 */
BlockSolverFn refinedAnalogBlockSolver(AnalogLinearSolver &solver,
                                       std::size_t refine_passes = 2,
                                       double tolerance = 1e-6);

} // namespace aa::analog

#endif // AA_ANALOG_DECOMPOSE_HH
